// Package carbonedge is a from-scratch Go implementation of
// "Carbon-Neutralizing Edge AI Inference for Data Streams via Model Control
// and Allowance Trading" (ICDCS 2025): switching-aware bandit model
// selection (Algorithm 1) joined with online primal-dual carbon-allowance
// trading (Algorithm 2), plus every substrate the paper's evaluation needs —
// a pure-Go neural-network stack, synthetic data streams, a diurnal workload
// generator, a carbon spot market, and a cloud-edge topology.
//
// The implementation lives under internal/; the runnable surfaces are the
// commands in cmd/ (carbonsim, benchgen), the examples/ programs, and the
// benchmarks in bench_test.go, which regenerate the paper's Figures 3-14.
package carbonedge
