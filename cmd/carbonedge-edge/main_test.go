package main

import (
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-id", "-1"}, &out); err == nil {
		t.Error("expected error for negative id")
	}
	if err := run([]string{"-pool", "0"}, &out); err == nil {
		t.Error("expected error for zero pool")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
	// Nothing is listening on this port.
	if err := run([]string{"-connect", "127.0.0.1:1", "-pool", "5"}, &out); err == nil {
		t.Error("expected connection error")
	}
}
