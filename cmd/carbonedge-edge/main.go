// Command carbonedge-edge runs one edge agent of the distributed
// deployment: it connects to a carbonedge-cloud, draws its private local
// data pool from the shared distribution, rebuilds model architectures
// locally, installs the checkpoints the cloud ships, and serves slots until
// the cloud signals completion.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/deploy"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/nn"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "carbonedge-edge:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("carbonedge-edge", flag.ContinueOnError)
	var (
		connect = fs.String("connect", "127.0.0.1:7070", "cloud address")
		id      = fs.Int("id", 0, "this edge's id (0-based, unique per edge)")
		seed    = fs.Int64("seed", 1, "random seed (must match the cloud's)")
		pool    = fs.Int("pool", 300, "local data-pool size")
		load    = fs.Int("load", 20, "base samples per slot")
		resumes = fs.Int("resumes", 0, "reconnect-and-resume budget when the cloud connection drops")
		int8M   = fs.Bool("int8", false, "serve slots through the true-INT8 inference engine (weights quantized at install time)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id < 0 {
		return fmt.Errorf("edge id must be non-negative")
	}
	if *pool <= 0 || *load < 0 {
		return fmt.Errorf("invalid pool/load")
	}

	spec := dataset.MNISTLike
	// The distribution seed stream matches the cloud's, so both parties
	// sample the same D.
	dist, err := dataset.NewDistribution(spec, numeric.SplitRNG(*seed, "dist"))
	if err != nil {
		return err
	}
	rng := numeric.SplitRNG(*seed, fmt.Sprintf("edge-%d", *id))
	localPool := dist.Pool(*pool, rng)
	build := func(modelID int) (*nn.Network, error) {
		return models.NewFamilyNetwork(spec, modelID, numeric.SplitRNG(*seed, "arch"))
	}
	baseLoad := *load
	edgeID := *id
	rt, err := deploy.NewNNRuntime(
		build,
		localPool,
		func(slot int) int { return baseLoad + (slot+edgeID)%15 },
		func(modelID int) float64 { return 0.025 + 0.02*float64(modelID) },
		rng,
	)
	if err != nil {
		return err
	}
	rt.Int8 = *int8M

	if *resumes < 0 {
		return fmt.Errorf("negative resume budget")
	}
	if *resumes == 0 {
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			return err
		}
		defer conn.Close()
		fmt.Fprintf(stdout, "edge %d connected to %s\n", *id, *connect)
		if err := deploy.RunEdge(conn, *id, rt); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "edge %d done\n", *id)
		return nil
	}
	dials := 0
	dial := func() (net.Conn, error) {
		conn, err := net.Dial("tcp", *connect)
		if err != nil {
			return nil, err
		}
		dials++
		if dials == 1 {
			fmt.Fprintf(stdout, "edge %d connected to %s\n", *id, *connect)
		} else {
			fmt.Fprintf(stdout, "edge %d reconnected to %s (resume %d)\n", *id, *connect, dials-1)
		}
		return conn, nil
	}
	if err := deploy.RunEdgeResumable(dial, *id, rt, *resumes); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "edge %d done\n", *id)
	return nil
}
