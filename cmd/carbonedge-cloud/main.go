// Command carbonedge-cloud runs the cloud side of the distributed
// deployment: it trains the model zoo, listens for edge agents, and drives
// the full horizon — Algorithm 1 placements, checkpoint shipping, and
// Algorithm 2 allowance trading — printing a run summary at the end.
//
// Pair it with carbonedge-edge processes (one per edge, possibly on other
// machines):
//
//	carbonedge-cloud -listen :7070 -edges 4 -horizon 40 &
//	for i in 0 1 2 3; do carbonedge-edge -connect host:7070 -id $i & done
//
// For fleets too large for one admission point, -mode root/region splits
// the deployment into a root cloud plus regional coordinators. The root
// runs the controller and the global trade/ledger accounting; each region
// owns one contiguous shard of the fleet, admits its edges itself, and
// streams per-slot shard deltas upstream. The summary is bit-identical to
// the monolithic run over the same fleet:
//
//	carbonedge-cloud -mode root -listen :7070 -edges 4 -regions 2 -horizon 40 &
//	carbonedge-cloud -mode region -region-id 0 -connect host:7070 -listen :7171 &
//	carbonedge-cloud -mode region -region-id 1 -connect host:7070 -listen :7272 &
//	for i in 0 1; do carbonedge-edge -connect host:7171 -id $i & done
//	for i in 2 3; do carbonedge-edge -connect host:7272 -id $i & done
//
// The regional tier is elastic: give the root -degrade plus a per-link
// retry budget (-region-retries) and regions a -resumes budget, and a
// coordinator whose upstream link fails redials the root, resumes from its
// shard watermark, and the run completes with the same summary bytes. A
// coordinator started with -leave-before N departs gracefully before slot
// N and the root rebalances its shard onto a surviving region (or degrades
// it when fewer than -quorum regions remain). See README.md "Killing a
// region's link mid-run".
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/deploy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "carbonedge-cloud:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("carbonedge-cloud", flag.ContinueOnError)
	var (
		mode     = fs.String("mode", "standalone", "standalone | root | region")
		listen   = fs.String("listen", "127.0.0.1:7070", "address to listen on (for edges; in root mode, for regions)")
		edges    = fs.Int("edges", 2, "number of edge agents to expect (standalone/root)")
		regions  = fs.Int("regions", 2, "number of regional coordinators (root mode)")
		regionID = fs.Int("region-id", 0, "this coordinator's region id (region mode)")
		connect  = fs.String("connect", "", "root address to report to (region mode)")
		horizon  = fs.Int("horizon", 40, "number of time slots")
		seed     = fs.Int64("seed", 1, "random seed (must match the edges' and every region's)")
		cap      = fs.Float64("cap", 0.002, "initial allowance cap in grams")
		rate     = fs.Float64("rate", 500, "emission rate g/kWh")
		trainN   = fs.Int("train", 600, "zoo training-pool size")
		epochs   = fs.Int("epochs", 2, "zoo training epochs")
		retries  = fs.Int("retries", 0, "per-slot transient-failure retry budget per edge")
		degrade  = fs.Bool("degrade", false, "complete the run without edges that fail beyond their retry budget (default: abort)")
		rgRetry  = fs.Int("region-retries", 0, "per-slot transient-failure retry budget per region link (root mode)")
		quorum   = fs.Int("quorum", 0, "live regions required to rebalance a lost shard instead of degrading it (root mode, 0 = 1)")
		resumes  = fs.Int("resumes", 0, "times this coordinator redials the root and resumes after a link failure (region mode)")
		leaveAt  = fs.Int("leave-before", 0, "announce a graceful departure before serving this slot (region mode, 0 = never)")
		hsTO     = fs.Duration("handshake-timeout", 0, "handshake deadline for new connections (0 = 30s default, negative disables)")
		slotTO   = fs.Duration("slot-timeout", 0, "per-slot exchange deadline per edge (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *horizon <= 0 {
		return fmt.Errorf("need positive horizon")
	}
	if *retries < 0 || *rgRetry < 0 {
		return fmt.Errorf("negative retry budget")
	}
	if *quorum < 0 || *resumes < 0 || *leaveAt < 0 {
		return fmt.Errorf("negative elasticity parameter")
	}
	policy := engine.FailFast
	if *degrade {
		policy = engine.Degrade
	}

	switch *mode {
	case "standalone":
		if *edges <= 0 {
			return fmt.Errorf("need positive edges")
		}
		return runStandalone(stdout, *listen, *edges, *horizon, *seed, *cap, *rate,
			*trainN, *epochs, *retries, policy, *hsTO, *slotTO)
	case "root":
		if *edges <= 0 {
			return fmt.Errorf("need positive edges")
		}
		return runRoot(stdout, *listen, *edges, *regions, *horizon, *seed, *cap, *rate, policy,
			*rgRetry, *quorum, *hsTO, *slotTO)
	case "region":
		if *connect == "" {
			return fmt.Errorf("region mode needs -connect <root address>")
		}
		return runRegion(stdout, *listen, *connect, *regionID, *seed,
			*trainN, *epochs, *retries, *resumes, *leaveAt, *hsTO, *slotTO)
	default:
		return fmt.Errorf("unknown mode %q (standalone | root | region)", *mode)
	}
}

// trainSource trains the deployment's model zoo from the shared seed. Every
// process that ships checkpoints (standalone cloud, each region) trains the
// identical zoo because the training streams are derived from the seed alone.
func trainSource(stdout io.Writer, seed int64, trainN, epochs int) (deploy.ModelSource, error) {
	spec := dataset.MNISTLike
	dist, err := dataset.NewDistribution(spec, numeric.SplitRNG(seed, "dist"))
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(stdout, "training the model zoo...")
	zoo, err := models.NewTrainedZoo(models.TrainedZooConfig{
		Dataset: spec,
		Dist:    dist,
		TrainN:  trainN, TestN: trainN, Epochs: epochs, LR: 0.05, BatchSize: 16,
	}, numeric.SplitRNG(seed, "zoo"))
	if err != nil {
		return nil, err
	}
	return deploy.NewZooSource(zoo)
}

// deploymentPrices generates the allowance price series from the shared seed.
func deploymentPrices(seed int64, horizon int) (*market.Prices, error) {
	return market.GeneratePrices(market.DefaultPriceConfig(), horizon,
		numeric.SplitRNG(seed, "prices"))
}

// deploymentCosts is u_i per global edge id, shared by every mode so a
// root+regions run prices switches exactly as the monolithic cloud would.
func deploymentCosts(edges int) []float64 {
	costs := make([]float64, edges)
	for i := range costs {
		costs[i] = 0.8 + 0.3*float64(i)
	}
	return costs
}

func runStandalone(stdout io.Writer, listen string, edges, horizon int, seed int64,
	cap, rate float64, trainN, epochs, retries int, policy engine.ErrorPolicy,
	hsTO, slotTO time.Duration) error {
	source, err := trainSource(stdout, seed, trainN, epochs)
	if err != nil {
		return err
	}
	prices, err := deploymentPrices(seed, horizon)
	if err != nil {
		return err
	}
	cloud, err := deploy.NewCloud(deploy.CloudConfig{
		Edges:         edges,
		Horizon:       horizon,
		DownloadCosts: deploymentCosts(edges),
		InitialCap:    cap,
		EmissionRate:  rate,
		Prices:        prices,
		EmissionScale: 2e-4,
		Seed:          seed,
		SlotTimeout:   slotTO,

		HandshakeTimeout: hsTO,
		Retry:            deploy.RetryConfig{Attempts: retries},
		Policy:           policy,
	}, source)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "listening on %s for %d edges\n", ln.Addr(), edges)

	summary, err := cloud.Serve(ln)
	if err != nil {
		return err
	}
	printSummary(stdout, summary)
	return nil
}

// runRoot serves the root cloud of a regional deployment. The root never
// ships checkpoints — the regions hold the zoo — so it skips training and
// only needs the family size the trained zoos will have.
func runRoot(stdout io.Writer, listen string, edges, regions, horizon int, seed int64,
	cap, rate float64, policy engine.ErrorPolicy, rgRetry, quorum int,
	hsTO, slotTO time.Duration) error {
	prices, err := deploymentPrices(seed, horizon)
	if err != nil {
		return err
	}
	root, err := deploy.NewRoot(deploy.RootConfig{
		Edges:         edges,
		Regions:       regions,
		Horizon:       horizon,
		DownloadCosts: deploymentCosts(edges),
		InitialCap:    cap,
		EmissionRate:  rate,
		Prices:        prices,
		EmissionScale: 2e-4,
		Seed:          seed,
		NumModels:     models.FamilySize(),
		Policy:        policy,

		SlotTimeout:      slotTO,
		HandshakeTimeout: hsTO,
		Retry:            deploy.RetryConfig{Attempts: rgRetry},
		RegionQuorum:     quorum,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "root listening on %s for %d regions (%d edges total)\n", ln.Addr(), regions, edges)

	summary, err := root.Serve(ln)
	if err != nil {
		return err
	}
	printSummary(stdout, summary)
	return nil
}

// runRegion runs one regional coordinator: it trains the zoo (identical to
// every other region's, by seed), claims its shard from the root, and admits
// the shard's edges on its own listener. A positive resume budget makes the
// coordinator redial the root and resume from its shard watermark when the
// upstream link fails, exactly as carbonedge-edge -resumes does for edges.
func runRegion(stdout io.Writer, listen, connect string, regionID int, seed int64,
	trainN, epochs, retries, resumes, leaveAt int, hsTO, slotTO time.Duration) error {
	source, err := trainSource(stdout, seed, trainN, epochs)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "region %d listening on %s, root at %s\n", regionID, ln.Addr(), connect)

	cfg := deploy.RegionConfig{
		RegionID: regionID,
		Source:   source,
		Seed:     seed,

		SlotTimeout:      slotTO,
		HandshakeTimeout: hsTO,
		Retry:            deploy.RetryConfig{Attempts: retries},
		LeaveBeforeSlot:  leaveAt,
	}
	if resumes == 0 {
		upstream, err := net.Dial("tcp", connect)
		if err != nil {
			return fmt.Errorf("connect to root: %w", err)
		}
		defer upstream.Close()
		if err := deploy.RunRegion(upstream, ln, cfg); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "region %d complete\n", regionID)
		return nil
	}
	dials := 0
	dial := func() (net.Conn, error) {
		conn, err := net.Dial("tcp", connect)
		if err != nil {
			return nil, fmt.Errorf("connect to root: %w", err)
		}
		dials++
		if dials == 1 {
			fmt.Fprintf(stdout, "region %d connected to root at %s\n", regionID, connect)
		} else {
			fmt.Fprintf(stdout, "region %d reconnected to root (resume %d)\n", regionID, dials-1)
		}
		return conn, nil
	}
	if err := deploy.RunRegionResumable(dial, ln, cfg, resumes); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "region %d complete\n", regionID)
	return nil
}

// printSummary reports a completed run, including fault accounting when any
// fault machinery fired.
func printSummary(stdout io.Writer, summary *deploy.Summary) {
	total := 0.0
	for _, e := range summary.Emissions {
		total += e
	}
	fmt.Fprintf(stdout, "run complete: loss=%.2f downloads=%d accuracy=%.3f emissions=%.4fg trade=%.4f fit=%.5fg\n",
		summary.ObservedLoss, summary.Switches, summary.Accuracy, total, summary.TradingCost, summary.Fit)
	retriesTotal, resumesTotal := 0, 0
	for i := range summary.Retries {
		retriesTotal += summary.Retries[i]
		resumesTotal += summary.Resumes[i]
	}
	if retriesTotal > 0 || resumesTotal > 0 || summary.DroppedSlots > 0 {
		fmt.Fprintf(stdout, "faults: retries=%d resumes=%d droppedSlots=%d\n",
			retriesTotal, resumesTotal, summary.DroppedSlots)
		for i, reason := range summary.DownErrors {
			if reason != "" {
				fmt.Fprintf(stdout, "  edge %d down for %d slots: %s\n", i, summary.Downtime[i], reason)
			}
		}
	}
}
