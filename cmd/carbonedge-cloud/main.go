// Command carbonedge-cloud runs the cloud side of the distributed
// deployment: it trains the model zoo, listens for edge agents, and drives
// the full horizon — Algorithm 1 placements, checkpoint shipping, and
// Algorithm 2 allowance trading — printing a run summary at the end.
//
// Pair it with carbonedge-edge processes (one per edge, possibly on other
// machines):
//
//	carbonedge-cloud -listen :7070 -edges 4 -horizon 40 &
//	for i in 0 1 2 3; do carbonedge-edge -connect host:7070 -id $i & done
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/deploy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "carbonedge-cloud:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("carbonedge-cloud", flag.ContinueOnError)
	var (
		listen  = fs.String("listen", "127.0.0.1:7070", "address to listen on")
		edges   = fs.Int("edges", 2, "number of edge agents to expect")
		horizon = fs.Int("horizon", 40, "number of time slots")
		seed    = fs.Int64("seed", 1, "random seed (must match the edges')")
		cap     = fs.Float64("cap", 0.002, "initial allowance cap in grams")
		rate    = fs.Float64("rate", 500, "emission rate g/kWh")
		trainN  = fs.Int("train", 600, "zoo training-pool size")
		epochs  = fs.Int("epochs", 2, "zoo training epochs")
		retries = fs.Int("retries", 0, "per-slot transient-failure retry budget per edge")
		degrade = fs.Bool("degrade", false, "complete the run without edges that fail beyond their retry budget (default: abort)")
		hsTO    = fs.Duration("handshake-timeout", 0, "handshake deadline for new connections (0 = 30s default, negative disables)")
		slotTO  = fs.Duration("slot-timeout", 0, "per-slot exchange deadline per edge (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *edges <= 0 || *horizon <= 0 {
		return fmt.Errorf("need positive edges/horizon")
	}
	if *retries < 0 {
		return fmt.Errorf("negative retry budget")
	}
	policy := engine.FailFast
	if *degrade {
		policy = engine.Degrade
	}

	spec := dataset.MNISTLike
	dist, err := dataset.NewDistribution(spec, numeric.SplitRNG(*seed, "dist"))
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "training the model zoo...")
	zoo, err := models.NewTrainedZoo(models.TrainedZooConfig{
		Dataset: spec,
		Dist:    dist,
		TrainN:  *trainN, TestN: *trainN, Epochs: *epochs, LR: 0.05, BatchSize: 16,
	}, numeric.SplitRNG(*seed, "zoo"))
	if err != nil {
		return err
	}
	source, err := deploy.NewZooSource(zoo)
	if err != nil {
		return err
	}
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), *horizon,
		numeric.SplitRNG(*seed, "prices"))
	if err != nil {
		return err
	}
	downloadCosts := make([]float64, *edges)
	for i := range downloadCosts {
		downloadCosts[i] = 0.8 + 0.3*float64(i)
	}
	cloud, err := deploy.NewCloud(deploy.CloudConfig{
		Edges:         *edges,
		Horizon:       *horizon,
		DownloadCosts: downloadCosts,
		InitialCap:    *cap,
		EmissionRate:  *rate,
		Prices:        prices,
		EmissionScale: 2e-4,
		Seed:          *seed,
		SlotTimeout:   *slotTO,

		HandshakeTimeout: *hsTO,
		Retry:            deploy.RetryConfig{Attempts: *retries},
		Policy:           policy,
	}, source)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Fprintf(stdout, "listening on %s for %d edges\n", ln.Addr(), *edges)

	summary, err := cloud.Serve(ln)
	if err != nil {
		return err
	}
	total := 0.0
	for _, e := range summary.Emissions {
		total += e
	}
	fmt.Fprintf(stdout, "run complete: loss=%.2f downloads=%d accuracy=%.3f emissions=%.4fg trade=%.4f fit=%.5fg\n",
		summary.ObservedLoss, summary.Switches, summary.Accuracy, total, summary.TradingCost, summary.Fit)
	retriesTotal, resumesTotal := 0, 0
	for i := range summary.Retries {
		retriesTotal += summary.Retries[i]
		resumesTotal += summary.Resumes[i]
	}
	if retriesTotal > 0 || resumesTotal > 0 || summary.DroppedSlots > 0 {
		fmt.Fprintf(stdout, "faults: retries=%d resumes=%d droppedSlots=%d\n",
			retriesTotal, resumesTotal, summary.DroppedSlots)
		for i, reason := range summary.DownErrors {
			if reason != "" {
				fmt.Fprintf(stdout, "  edge %d down for %d slots: %s\n", i, summary.Downtime[i], reason)
			}
		}
	}
	return nil
}
