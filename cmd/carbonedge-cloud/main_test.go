package main

import (
	"strings"
	"testing"
)

func TestRunFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-edges", "0"}, &out); err == nil {
		t.Error("expected error for zero edges")
	}
	if err := run([]string{"-horizon", "0"}, &out); err == nil {
		t.Error("expected error for zero horizon")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
	if err := run([]string{"-listen", "999.999.999.999:0", "-train", "50", "-epochs", "1"}, &out); err == nil {
		t.Error("expected error for bad listen address")
	}
}
