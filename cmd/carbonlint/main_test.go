package main

import (
	"testing"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// TestSuiteComplete pins the analyzer roster: DESIGN.md's "Static
// invariants" section documents exactly these eight.
func TestSuiteComplete(t *testing.T) {
	want := map[string]bool{
		"deltapure":   true,
		"errtaxonomy": true,
		"floateq":     true,
		"hotalloc":    true,
		"maporder":    true,
		"nodeterm":    true,
		"panicpolicy": true,
		"simdcover":   true,
	}
	for _, a := range All {
		if !want[a.Name] {
			t.Errorf("undocumented analyzer %q: update DESIGN.md and this test", a.Name)
		}
		delete(want, a.Name)
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing Doc or Run", a.Name)
		}
	}
	for name := range want {
		t.Errorf("analyzer %q missing from the suite", name)
	}
}

// TestRepoIsClean makes the invariant gate part of the tier-1 suite: the
// repository must lint clean, so a violation breaks `go test ./...` too,
// not just `make lint`. Fix the finding or annotate it with
// //lint:allow <analyzer> <reason> (see DESIGN.md "Static invariants").
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go list -export")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunAnalyzers(pkgs, All)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
