// Command carbonlint is the repository's invariant gate: a multichecker
// over the custom analyzers in internal/analysis that encode the engine's
// determinism and numeric rules as build-breaking checks.
//
//	go run ./cmd/carbonlint ./...
//
// runs every analyzer over the matched packages (test files excluded) and
// exits nonzero if any finding survives //lint:allow suppression. See
// DESIGN.md ("Static invariants") for the analyzer catalogue and the
// annotation convention.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/carbonedge/carbonedge/internal/analysis"
	"github.com/carbonedge/carbonedge/internal/analysis/floateq"
	"github.com/carbonedge/carbonedge/internal/analysis/maporder"
	"github.com/carbonedge/carbonedge/internal/analysis/nodeterm"
	"github.com/carbonedge/carbonedge/internal/analysis/panicpolicy"
)

// All is the analyzer suite carbonlint runs, in diagnostic-name order.
var All = []*analysis.Analyzer{
	floateq.Analyzer,
	maporder.Analyzer,
	nodeterm.Analyzer,
	panicpolicy.Analyzer,
}

func main() {
	list := flag.Bool("l", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: carbonlint [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repository's determinism and numeric invariant analyzers.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range All {
			fmt.Printf("%-12s %s\n", a.Name, strings.SplitN(a.Doc, ";", 2)[0])
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	findings, err := analysis.RunAnalyzers(pkgs, All)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s\n", f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "carbonlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
