// Command carbonlint is the repository's invariant gate: a multichecker
// over the custom analyzers in internal/analysis that encode the engine's
// determinism, numeric, hot-path, and wire-protocol rules as build-breaking
// checks.
//
//	go run ./cmd/carbonlint ./...
//
// runs every analyzer over the matched packages (test files excluded) and
// exits nonzero if any finding survives //lint:allow suppression. The
// call-graph analyzers (hotalloc, errtaxonomy) anchor on //lint:hotroot
// annotations and whole-program reachability, so carbonlint should be run
// over ./... rather than single packages. See DESIGN.md ("Static
// invariants") for the analyzer catalogue and the annotation convention.
//
// Flags:
//
//	-l             list the analyzers and exit
//	-json          emit findings as a JSON array on stdout (CI consumes this)
//	-cache DIR     reuse per-package summaries cached under DIR, keyed on
//	               export-data identity (see internal/analysis/cache.go)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/carbonedge/carbonedge/internal/analysis"
	"github.com/carbonedge/carbonedge/internal/analysis/deltapure"
	"github.com/carbonedge/carbonedge/internal/analysis/errtaxonomy"
	"github.com/carbonedge/carbonedge/internal/analysis/floateq"
	"github.com/carbonedge/carbonedge/internal/analysis/hotalloc"
	"github.com/carbonedge/carbonedge/internal/analysis/maporder"
	"github.com/carbonedge/carbonedge/internal/analysis/nodeterm"
	"github.com/carbonedge/carbonedge/internal/analysis/panicpolicy"
	"github.com/carbonedge/carbonedge/internal/analysis/simdcover"
)

// All is the analyzer suite carbonlint runs, in diagnostic-name order.
var All = []*analysis.Analyzer{
	deltapure.Analyzer,
	errtaxonomy.Analyzer,
	floateq.Analyzer,
	hotalloc.Analyzer,
	maporder.Analyzer,
	nodeterm.Analyzer,
	panicpolicy.Analyzer,
	simdcover.Analyzer,
}

// jsonFinding is the stable shape CI smoke gates parse; field names are
// part of the tool's interface, keep them in sync with .github/workflows.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("l", false, "list the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	cacheDir := flag.String("cache", "", "directory for per-package summary caching (empty disables)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: carbonlint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repository's determinism and numeric invariant analyzers.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range All {
			fmt.Printf("%-12s %s\n", a.Name, strings.SplitN(a.Doc, ";", 2)[0])
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var findings []analysis.Finding
	var err error
	if *cacheDir != "" {
		var stats analysis.CacheStats
		findings, stats, err = analysis.LintCached(".", *cacheDir, All, patterns...)
		if err == nil {
			fmt.Fprintf(os.Stderr, "carbonlint: cache %d hit(s), %d miss(es)\n", stats.Hits, stats.Misses)
		}
	} else {
		var pkgs []*analysis.Package
		pkgs, err = analysis.Load(".", patterns...)
		if err == nil {
			findings, err = analysis.RunAnalyzers(pkgs, All)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				Analyzer: f.Analyzer,
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Column:   f.Pos.Column,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s\n", f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "carbonlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
