// Command benchgen regenerates the data series behind every figure in the
// paper's evaluation (Figs. 3-14) and prints them as aligned text tables.
//
// Usage:
//
//	benchgen                 # all figures with default options
//	benchgen -fig 5          # only Fig. 5
//	benchgen -runs 10        # average over 10 seeds (the paper's setting)
//	benchgen -edges 10 -horizon 160 -seed 1
//	benchgen -out results.txt
//	benchgen -workers 8          # parallel generation, identical output
//	benchgen -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/carbonedge/carbonedge/internal/figures"
	"github.com/carbonedge/carbonedge/internal/profiling"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("benchgen", flag.ContinueOnError)
	var (
		fig      = fs.Int("fig", 0, "figure number (3-14); 0 runs all")
		ablation = fs.String("ablation", "", "run an ablation instead: all | "+strings.Join(figures.AblationNames(), " | "))
		runs     = fs.Int("runs", 3, "seeds to average over (paper: 10)")
		edges    = fs.Int("edges", 10, "number of edges")
		horizon  = fs.Int("horizon", 160, "number of time slots")
		seed     = fs.Int64("seed", 1, "base random seed")
		outPath  = fs.String("out", "", "also write output to this file")
		workers  = fs.Int("workers", 1, "simulation workers (1 = serial; output is byte-identical for any count)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write an allocs heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()
	opts := figures.Options{Runs: *runs, Seed: *seed, Edges: *edges, Horizon: *horizon, Workers: *workers}

	var rendered string
	switch {
	case *ablation != "":
		names := figures.AblationNames()
		if *ablation != "all" {
			names = []string{*ablation}
		}
		gens := figures.Ablations()
		var b strings.Builder
		for _, name := range names {
			gen, ok := gens[name]
			if !ok {
				return fmt.Errorf("unknown ablation %q (valid: all, %s)", name, strings.Join(figures.AblationNames(), ", "))
			}
			f, err := gen(opts)
			if err != nil {
				return fmt.Errorf("ablation %s: %w", name, err)
			}
			b.WriteString(figures.Render(f))
			b.WriteString("\n")
		}
		rendered = b.String()
	case *fig == 0:
		all, err := figures.RenderAll(opts)
		if err != nil {
			return err
		}
		rendered = all
	default:
		gen, ok := figures.All()[*fig]
		if !ok {
			return fmt.Errorf("unknown figure %d (valid: 3-14)", *fig)
		}
		f, err := gen(opts)
		if err != nil {
			return err
		}
		rendered = figures.Render(f)
	}
	if _, err := io.WriteString(stdout, rendered); err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(rendered), 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *outPath, err)
		}
	}
	return nil
}
