package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-fig", "14", "-runs", "1", "-edges", "5", "-horizon", "20"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"Fig14", "Algorithm1", "Algorithm2"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFigureWithSimulation(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-fig", "3", "-runs", "1", "-edges", "3", "-horizon", "30"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Fig3") {
		t.Errorf("missing Fig3 header:\n%s", out.String())
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results.txt")
	var out strings.Builder
	err := run([]string{"-fig", "14", "-runs", "1", "-edges", "3", "-horizon", "10", "-out", path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read output file: %v", err)
	}
	if string(data) != out.String() {
		t.Error("file content differs from stdout")
	}
}

func TestRunAblation(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-ablation", "stepsizes", "-runs", "1", "-edges", "3", "-horizon", "30"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "AblStepSizes") {
		t.Errorf("missing ablation header:\n%s", out.String())
	}
	if err := run([]string{"-ablation", "nope"}, &out); err == nil {
		t.Error("expected error for unknown ablation")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "2"}, &out); err == nil {
		t.Error("expected error for unknown figure")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
	if err := run([]string{"-fig", "14", "-out", "/nonexistent-dir/x.txt"}, &out); err == nil {
		t.Error("expected error for unwritable output path")
	}
}
