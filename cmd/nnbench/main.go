// Command nnbench records the NN hot path's performance baseline as
// machine-readable JSON. It runs the kernel, forward-pass, slot-step, and
// figure-regeneration benchmarks via testing.Benchmark and writes one entry
// per benchmark with ns/op, B/op, and allocs/op, so the perf trajectory is
// tracked in-repo (`make bench` refreshes BENCH_nn.json).
//
// Usage:
//
//	nnbench                      # print the JSON to stdout
//	nnbench -out BENCH_nn.json   # also write it to a file
//	nnbench -benchtime 10x       # longer runs for stabler numbers
//	nnbench -diff BENCH_nn.json  # rerun and fail on >25% ns/op regressions
//
// Besides the per-entry absolute diff, -diff enforces the relative int8
// contract: QuantSlotStep must beat SlotStep and QuantForwardBatch must beat
// ForwardBatch, so the quantized path losing to the float path fails the
// gate even when no single entry moved >25%. Every available INT8 kernel
// tier also gets its own QdotBatch_<tier> entry, keeping per-tier
// trajectories visible when dispatch would mask a slower tier.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/deploy"
	"github.com/carbonedge/carbonedge/internal/figures"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/nn"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/sim"
)

// entry is one benchmark's recorded result.
type entry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "nnbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("nnbench", flag.ContinueOnError)
	outPath := fs.String("out", "", "also write the JSON baseline to this file")
	benchtime := fs.String("benchtime", "", "forwarded to testing (e.g. 10x or 2s); empty keeps the default 1s")
	diffPath := fs.String("diff", "", "compare against this committed baseline and fail on >25% ns/op regressions")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchtime != "" {
		testing.Init() // registers the test.* flags outside `go test`
		if err := flag.Set("test.benchtime", *benchtime); err != nil {
			return err
		}
	}

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"GEMM", benchGEMM},
		{"ConvForward", benchConvForward},
		{"QuantConvForward", benchQuantConvForward},
		{"ForwardBatch", benchForwardBatch},
		{"QuantForwardBatch", benchQuantForwardBatch},
		{"TrainEpoch", benchTrainEpoch},
		{"ZooBuild", benchZooBuild},
		{"SlotStep", benchSlotStep},
		{"QuantSlotStep", benchQuantSlotStep},
		{"EngineSlot", benchEngineSlot},
		{"Fig3Regen", benchFig3},
		{"Fig12Regen", benchFig12},
	}
	// One micro-benchmark per INT8 kernel tier available on this host
	// (generic reference, then sse2/avx2/vnni on amd64 or neon on arm64).
	// Dispatch always runs the fastest tier, which would hide a regression in
	// any slower one; benching every tier keeps each kernel's own trajectory
	// visible in BENCH_nn.json. The entry set is host-dependent by design —
	// diffBaseline treats one-sided entries as informational, never failures.
	for _, tier := range nn.QdotTiers() {
		tier := tier
		benches = append(benches, struct {
			name string
			fn   func(*testing.B)
		}{"QdotBatch_" + tier.Name, func(b *testing.B) { benchQdotBatch(b, tier) }})
	}
	entries := make([]entry, 0, len(benches))
	for _, bm := range benches {
		r := testing.Benchmark(bm.fn)
		entries = append(entries, entry{
			Name:        bm.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	blob, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if _, err := stdout.Write(blob); err != nil {
		return err
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *outPath, err)
		}
	}
	// The relative gate runs on every invocation and is ENFORCED in -diff
	// mode: absolute ns/op thresholds once let the int8 path silently decay
	// to parity with the float path (each entry regressed <25% per change,
	// so QuantSlotStep drifting from ~0.5x to ~1.0x of SlotStep never
	// tripped the diff). The quantized path existing at all is justified by
	// being faster, so quant >= float is a failure, not a data point.
	if err := checkInt8Wins(stdout, entries, *diffPath != ""); err != nil {
		return err
	}
	if *diffPath != "" {
		return diffBaseline(stdout, *diffPath, entries)
	}
	return nil
}

// checkInt8Wins prints the int8-vs-float speedup for each quant/float
// benchmark pair and, when enforce is set, fails if the quantized side is
// not strictly faster than its float twin.
func checkInt8Wins(stdout io.Writer, entries []entry, enforce bool) error {
	byName := make(map[string]entry, len(entries))
	for _, e := range entries {
		byName[e.Name] = e
	}
	var losing []string
	for _, pair := range [][2]string{
		{"QuantSlotStep", "SlotStep"},
		{"QuantForwardBatch", "ForwardBatch"},
	} {
		q, okQ := byName[pair[0]]
		f, okF := byName[pair[1]]
		if !okQ || !okF || q.NsPerOp <= 0 {
			continue
		}
		speedup := f.NsPerOp / q.NsPerOp
		status := "int8 wins"
		if speedup <= 1 {
			status = "INT8 NOT FASTER"
			losing = append(losing, fmt.Sprintf("%s %.2fx vs %s", pair[0], speedup, pair[1]))
		}
		fmt.Fprintf(stdout, "int8 speedup %-18s %.2fx  (%s %.0f ns/op, %s %.0f ns/op)  %s\n",
			pair[0], speedup, pair[0], q.NsPerOp, pair[1], f.NsPerOp, status)
	}
	if enforce && len(losing) > 0 {
		return fmt.Errorf("int8 path lost to the float path: %v", losing)
	}
	return nil
}

// regressionFactor is the ns/op growth over the committed baseline that
// -diff treats as a regression. 1.25 leaves headroom for host noise while
// still catching real slowdowns of the tracked hot paths.
const regressionFactor = 1.25

// Sub-microsecond entries (the QdotBatch kernel tiers) swing ±40% run to
// run with identical code: the AVX-512 tiers' throughput tracks the CPU's
// frequency license, which depends on thermal and neighbor state, and at
// a few hundred ns/op that noise dwarfs the 25% band. Entries below
// tinyNsFloor get the doubled band instead — still a real gate, because a
// kernel whose vector loop stops engaging regresses 2x or more.
const (
	tinyNsFloor          = 5000
	tinyRegressionFactor = 2.0
)

// diffBaseline compares freshly measured entries against the committed
// baseline JSON and errors when any shared benchmark's ns/op regressed by
// more than regressionFactor. Benchmarks present on only one side are
// reported but never fail the diff, so adding a benchmark does not require
// refreshing the baseline in the same change.
func diffBaseline(stdout io.Writer, path string, fresh []entry) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var baseline []entry
	if err := json.Unmarshal(blob, &baseline); err != nil {
		return fmt.Errorf("parse baseline %s: %w", path, err)
	}
	base := make(map[string]entry, len(baseline))
	for _, e := range baseline {
		base[e.Name] = e
	}
	var regressed []string
	fmt.Fprintf(stdout, "diff vs %s (fail above %.0f%% ns/op growth):\n", path, (regressionFactor-1)*100)
	for _, e := range fresh {
		b, ok := base[e.Name]
		if !ok {
			fmt.Fprintf(stdout, "  %-14s %14.0f ns/op  (not in baseline)\n", e.Name, e.NsPerOp)
			continue
		}
		ratio := e.NsPerOp / b.NsPerOp
		factor := regressionFactor
		if b.NsPerOp < tinyNsFloor {
			factor = tinyRegressionFactor
		}
		status := "ok"
		if ratio > factor {
			status = "REGRESSED"
			regressed = append(regressed, e.Name)
		}
		fmt.Fprintf(stdout, "  %-18s %14.0f ns/op  baseline %14.0f  x%.2f  %s\n",
			e.Name, e.NsPerOp, b.NsPerOp, ratio, status)
	}
	for _, b := range baseline {
		found := false
		for _, e := range fresh {
			if e.Name == b.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(stdout, "  %-14s (baseline only; not measured)\n", b.Name)
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("ns/op regressed >%.0f%%: %v", (regressionFactor-1)*100, regressed)
	}
	return nil
}

// benchGEMM mirrors internal/nn's BenchmarkGEMM: the blocked kernel on a
// Dense-sized problem.
func benchGEMM(b *testing.B) {
	const m, n, k = 64, 64, 256
	rng := numeric.SplitRNG(3, "nnbench-gemm")
	a := randSlice(rng, m*k)
	w := randSlice(rng, n*k)
	bias := randSlice(rng, n)
	out := make([]float64, m*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nn.GemmNTBiasJ(out, a, w, bias, m, n, k)
	}
}

// benchConvForward mirrors internal/nn's BenchmarkConvForward: the im2col
// conv layer at the CNN family's mid-layer shape.
func benchConvForward(b *testing.B) {
	rng := numeric.SplitRNG(4, "nnbench-conv")
	conv := nn.NewConv2D(6, 16, 5, rng)
	in := nn.NewTensor(6, 14, 14)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(in)
	}
}

// benchQuantConvForward tracks the INT8 engine on a conv-dominated network
// at benchConvForward's layer shape (6->16 channels, 5x5 kernel, 14x14
// input: ~94% of the MACs are the convolution). Measured through the public
// QuantizedNetwork engine — quantized im2col + integer GEMM + requantize —
// so the entry moves with the int8 kernels, not the float oracle.
func benchQuantConvForward(b *testing.B) {
	rng := numeric.SplitRNG(4, "nnbench-qconv")
	net := nn.NewNetwork("nnbench-qconv", []int{6, 14, 14},
		nn.NewConv2D(6, 16, 5, rng),
		nn.NewFlatten(),
		nn.NewDense(16*10*10, 10, rng),
	)
	qw := nn.QuantizeWeights(net)
	if err := qw.ApplyTo(net); err != nil {
		b.Fatal(err)
	}
	calib := nn.NewTensor(8, 6, 14, 14)
	for i := range calib.Data {
		calib.Data[i] = rng.NormFloat64()
	}
	qn, err := nn.NewQuantizedNetwork(net, qw, calib)
	if err != nil {
		b.Fatal(err)
	}
	in := nn.NewTensor(1, 6, 14, 14)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	arena := nn.NewArena()
	arena.Reset()
	qn.ForwardBatch(in, arena) // warm the arena: steady state is 0 allocs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		qn.ForwardBatch(in, arena)
	}
}

// benchForwardBatch mirrors internal/nn's BenchmarkNetworkForwardBatch: the
// float engine on the bench CNN at batch 32 — the float half of the
// QuantForwardBatch/ForwardBatch pair checkInt8Wins enforces.
func benchForwardBatch(b *testing.B) {
	rng := numeric.SplitRNG(3, "nnbench-fwdbatch")
	net := nn.BuildCNN("bench-cnn", []int{1, 14, 14}, 8, 16, 64, 10, rng)
	arena := nn.NewArena()
	const batch = 32
	in := arena.Tensor(batch, 1, 14, 14)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	net.ForwardBatch(in, arena) // warm the arena: steady state is 0 allocs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		in := arena.Tensor(batch, 1, 14, 14)
		net.ForwardBatch(in, arena)
	}
}

// benchQuantForwardBatch is benchForwardBatch through the INT8 engine: same
// architecture, same batch, quantized execution — the batch path the tiled
// qgemmNT / fused-requantize work optimizes end to end.
func benchQuantForwardBatch(b *testing.B) {
	rng := numeric.SplitRNG(3, "nnbench-qfwdbatch")
	net := nn.BuildCNN("bench-cnn", []int{1, 14, 14}, 8, 16, 64, 10, rng)
	qw := nn.QuantizeWeights(net)
	if err := qw.ApplyTo(net); err != nil {
		b.Fatal(err)
	}
	calib := nn.NewTensor(8, 1, 14, 14)
	for i := range calib.Data {
		calib.Data[i] = rng.NormFloat64()
	}
	qn, err := nn.NewQuantizedNetwork(net, qw, calib)
	if err != nil {
		b.Fatal(err)
	}
	arena := nn.NewArena()
	const batch = 32
	in := arena.Tensor(batch, 1, 14, 14)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	qn.ForwardBatch(in, arena) // warm the arena: steady state is 0 allocs
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		in := arena.Tensor(batch, 1, 14, 14)
		qn.ForwardBatch(in, arena)
	}
}

// benchQdotBatch measures one INT8 kernel tier on a GEMM-interior shape: two
// 128-wide activation rows against 100 weight rows, the dual-row b-sharing
// sweep qgemmNT drives. k=128 sits above every dispatch threshold, so each
// tier runs its full vector main loop.
func benchQdotBatch(b *testing.B, tier nn.QdotTier) {
	const n, k = 100, 128
	rng := numeric.SplitRNG(6, "nnbench-qdot-"+tier.Name)
	a0 := randInt8Slice(rng, k)
	a1 := randInt8Slice(rng, k)
	bm := randInt8Slice(rng, n*k)
	out0 := make([]int32, n)
	out1 := make([]int32, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tier.Qdot2(out0, out1, a0, a1, bm, n, k)
	}
}

// benchTrainEpoch mirrors internal/nn's BenchmarkTrainEpoch: one batched
// SGD epoch over 256 samples on the family's small-CNN shape.
func benchTrainEpoch(b *testing.B) {
	rng := numeric.SplitRNG(21, "nnbench-train")
	net := nn.BuildCNN("bench-train", []int{1, 14, 14}, 8, 16, 32, 10, rng)
	samples := make([]nn.Sample, 256)
	for i := range samples {
		x := nn.NewTensor(1, 14, 14)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		samples[i] = nn.Sample{X: x, Label: rng.Intn(10)}
	}
	cfg := nn.TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.05}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nn.Train(net, samples, cfg, numeric.SplitRNG(22, "nnbench-train-order")); err != nil {
			b.Fatal(err)
		}
	}
}

// benchZooBuild measures a cold six-model zoo build (train + score) at the
// root bench suite's reduced dataset sizes. It calls NewTrainedZoo directly
// rather than the keyed cache, so every iteration pays the full training
// cost the cache would otherwise absorb.
func benchZooBuild(b *testing.B) {
	cfg := models.DefaultTrainedZooConfig(dataset.MNISTLike)
	cfg.TrainN, cfg.TestN, cfg.Epochs = 200, 200, 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := models.NewTrainedZoo(cfg, numeric.SplitRNG(1, "bench-zoo-build")); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSlotStep mirrors internal/deploy's BenchmarkNNRuntimeSlot: one
// steady-state RunSlot on a warmed runtime (the zero-alloc path).
func benchSlotStep(b *testing.B) {
	rt, err := benchRuntime(false)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.RunSlot(0, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.RunSlot(i+1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchQuantSlotStep is benchSlotStep with the runtime in INT8 mode: the
// same slot serving, but every forward pass runs the integer kernels.
func benchQuantSlotStep(b *testing.B) {
	rt, err := benchRuntime(true)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.RunSlot(0, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.RunSlot(i+1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngineSlot measures the sharded engine's per-slot cost on a 256-edge
// fleet at a small per-edge workload: b.N is the horizon, so ns/op is the
// cost of one full slot — selection, four shards stepping 64 edges each,
// the canonical-order accounting fold, and the trade/ledger update.
func benchEngineSlot(b *testing.B) {
	cfg := sim.DefaultConfig(256)
	cfg.Horizon = b.N
	cfg.MeanPeakWorkload = 2
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(5, "nnbench-engine-zoo"))
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.NewScenario(cfg, zoo)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := sim.RunSharded(s, "Ours", sim.PolicyOurs, sim.TraderOurs, 4, 1); err != nil {
		b.Fatal(err)
	}
}

// benchRuntime builds the same one-model runtime as the deploy benchmark,
// optionally in INT8 execution mode.
func benchRuntime(int8Mode bool) (*deploy.NNRuntime, error) {
	spec := dataset.MNISTLike
	rng := numeric.SplitRNG(7, "bench-runtime")
	dist, err := dataset.NewDistribution(spec, rng)
	if err != nil {
		return nil, err
	}
	pool := dist.Pool(64, rng)
	build := func(modelID int) (*nn.Network, error) {
		return models.NewFamilyNetwork(spec, modelID, numeric.SplitRNG(9, "bench-arch"))
	}
	rt, err := deploy.NewNNRuntime(
		build,
		pool,
		func(int) int { return 20 },
		func(int) float64 { return 0.03 },
		rng,
	)
	if err != nil {
		return nil, err
	}
	rt.Int8 = int8Mode
	metas := make([]deploy.ModelMeta, models.FamilySize())
	for i := range metas {
		metas[i] = deploy.ModelMeta{Name: "bench", PhiKWh: 0.001}
	}
	if err := rt.Welcome(metas); err != nil {
		return nil, err
	}
	net, err := build(0)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := nn.WriteWeights(&buf, net); err != nil {
		return nil, err
	}
	if err := rt.LoadModel(0, buf.Bytes()); err != nil {
		return nil, err
	}
	return rt, nil
}

// benchFig3 regenerates Fig. 3 at the root bench suite's reduced options.
func benchFig3(b *testing.B) {
	o := figures.Options{Runs: 1, Seed: 1, Edges: 5, Horizon: 80}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig3CumulativeCost(o); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFig12 regenerates the trained-zoo accuracy figure end to end (zoo
// training + streams + all five schemes) at the root suite's tiny settings.
func benchFig12(b *testing.B) {
	o := figures.Options{Runs: 1, Seed: 1, Edges: 2, Horizon: 40}
	zooCfg := models.DefaultTrainedZooConfig(dataset.MNISTLike)
	zooCfg.TrainN, zooCfg.TestN, zooCfg.Epochs = 200, 200, 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Fig12At(o, zooCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func randInt8Slice(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(rng.Intn(255) - 127) // [-127, 127]
	}
	return s
}
