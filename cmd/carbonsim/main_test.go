package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultSmall(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-edges", "3", "-horizon", "40", "-seed", "2"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"scenario:", "Ours", "Offline", "UCB-LY", "total"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunSingleCombo(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-edges", "2", "-horizon", "30", "-combo", "Ours"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Ours") || !strings.Contains(got, "Offline") {
		t.Errorf("output missing schemes:\n%s", got)
	}
	if strings.Contains(got, "UCB-LY") {
		t.Errorf("single-combo run should not include baselines:\n%s", got)
	}
}

func TestRunOverrides(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-edges", "2", "-horizon", "30",
		"-cap", "7", "-rate", "900", "-switch-weight", "3", "-combo", "Ours",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "cap=7") || !strings.Contains(got, "rate=900") {
		t.Errorf("overrides not reflected:\n%s", got)
	}
}

func TestRunTraceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	// Export the traces of a small scenario...
	err := run([]string{
		"-edges", "3", "-horizon", "25", "-combo", "Ours",
		"-export-traces", dir,
	}, &out)
	if err != nil {
		t.Fatalf("export run: %v", err)
	}
	// ...then feed them back in; the scenario dimensions must come from the
	// traces.
	out.Reset()
	err = run([]string{
		"-edges", "99", "-horizon", "99", "-combo", "Ours",
		"-workload-csv", filepath.Join(dir, "workload.csv"),
		"-prices-csv", filepath.Join(dir, "prices.csv"),
	}, &out)
	if err != nil {
		t.Fatalf("import run: %v", err)
	}
	if !strings.Contains(out.String(), "3 edges, 25 slots") {
		t.Errorf("trace dimensions not honored:\n%s", out.String())
	}
}

func TestRunJSONExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out strings.Builder
	err := run([]string{"-edges", "2", "-horizon", "20", "-combo", "Ours", "-json", path}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "Ours"`, `"name": "Offline"`, `"cumTotal"`, `"fit"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("json missing %q", want)
		}
	}
	if err := run([]string{"-edges", "2", "-horizon", "10", "-json", "/nonexistent-dir/x.json", "-combo", "Ours"}, &out); err == nil {
		t.Error("expected error for unwritable json path")
	}
}

func TestRunTraceErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-workload-csv", "/nonexistent.csv"}, &out); err == nil {
		t.Error("expected error for missing workload csv")
	}
	if err := run([]string{"-prices-csv", "/nonexistent.csv"}, &out); err == nil {
		t.Error("expected error for missing price csv")
	}
	if err := run([]string{"-edges", "2", "-horizon", "10", "-export-traces", "/proc/forbidden/x"}, &out); err == nil {
		t.Error("expected error for unwritable export dir")
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-combo", "NoSuch"}, &out); err == nil {
		t.Error("expected error for unknown combo")
	}
	if err := run([]string{"-zoo", "nope"}, &out); err == nil {
		t.Error("expected error for unknown zoo")
	}
	if err := run([]string{"-edges", "0"}, &out); err == nil {
		t.Error("expected error for zero edges")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("expected flag parse error")
	}
}
