// Command carbonsim runs one scenario of the carbon-neutral edge-inference
// system and prints a cost comparison across every policy/trader combination
// plus the clairvoyant Offline scheme.
//
// Usage:
//
//	carbonsim                          # default 10-edge, 160-slot scenario
//	carbonsim -edges 50 -horizon 320
//	carbonsim -combo Ours              # run a single combination
//	carbonsim -cap 5 -rate 1000 -switch-weight 4
//	carbonsim -zoo mnist               # use a trained neural-network zoo
//	carbonsim -edges 100000 -horizon 8 -mean-workload 4 -combo Ours -shards 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"text/tabwriter"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/profiling"
	"github.com/carbonedge/carbonedge/internal/sim"
	"github.com/carbonedge/carbonedge/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "carbonsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("carbonsim", flag.ContinueOnError)
	var (
		edges        = fs.Int("edges", 10, "number of edges")
		horizon      = fs.Int("horizon", 160, "number of 15-minute slots")
		seed         = fs.Int64("seed", 1, "random seed")
		cap          = fs.Float64("cap", -1, "initial carbon cap in grams (-1 = default)")
		rate         = fs.Float64("rate", -1, "carbon emission rate g/kWh (-1 = default 500)")
		switchWeight = fs.Float64("switch-weight", 1, "weight on the model switching cost")
		combo        = fs.String("combo", "", "run only this combination (e.g. Ours, UCB-LY)")
		workers      = fs.Int("workers", 1, "edge-stepping workers per shard (1 = serial; results are identical for any count)")
		shards       = fs.Int("shards", 1, "contiguous edge shards per slot (results are identical for any count)")
		meanWorkload = fs.Float64("mean-workload", -1, "average peak samples/slot per edge (-1 = default 200; lower it for very large fleets)")
		zooKind      = fs.String("zoo", "surrogate", "model zoo: surrogate | mnist | cifar")
		int8M        = fs.Bool("int8", false, "score -q8 zoo arms through the true-INT8 engine instead of the fake-quant float oracle")
		jsonOut      = fs.String("json", "", "write full per-slot results (JSON lines, one object per scheme) to this file")
		workloadCSV  = fs.String("workload-csv", "", "load the workload trace from this CSV instead of generating it")
		pricesCSV    = fs.String("prices-csv", "", "load the allowance price trace from this CSV instead of generating it")
		exportTraces = fs.String("export-traces", "", "write the scenario's workload.csv and prices.csv into this directory")
		cpuProf      = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf      = fs.String("memprofile", "", "write an allocs heap profile to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProf(); perr != nil && err == nil {
			err = perr
		}
	}()

	cfg := sim.DefaultConfig(*edges)
	cfg.Horizon = *horizon
	cfg.Seed = *seed
	cfg.SwitchWeight = *switchWeight
	if *cap >= 0 {
		cfg.InitialCap = *cap
	}
	if *rate >= 0 {
		cfg.EmissionRate = *rate
	}
	if *meanWorkload >= 0 {
		cfg.MeanPeakWorkload = *meanWorkload
	}

	zoo, err := buildZoo(*zooKind, *seed, *int8M)
	if err != nil {
		return err
	}
	workloadTrace, priceTrace, err := loadTraces(*workloadCSV, *pricesCSV)
	if err != nil {
		return err
	}
	if workloadTrace != nil {
		cfg.Horizon = len(workloadTrace)
		cfg.Edges = len(workloadTrace[0])
	}
	if priceTrace != nil {
		cfg.Horizon = priceTrace.Horizon()
	}
	scenario, err := sim.NewScenarioWithTraces(cfg, zoo, workloadTrace, priceTrace)
	if err != nil {
		return err
	}
	if *exportTraces != "" {
		if err := exportScenarioTraces(*exportTraces, scenario); err != nil {
			return err
		}
	}

	var results []*sim.Result
	if *combo != "" {
		c, err := sim.ComboByName(*combo)
		if err != nil {
			return err
		}
		res, err := sim.RunSharded(scenario, c.Name, c.Policy, c.Trader, *shards, *workers)
		if err != nil {
			return err
		}
		results = append(results, res)
	} else {
		for _, c := range sim.Combos() {
			res, err := sim.RunSharded(scenario, c.Name, c.Policy, c.Trader, *shards, *workers)
			if err != nil {
				return fmt.Errorf("run %s: %w", c.Name, err)
			}
			results = append(results, res)
		}
	}
	offline, err := sim.Offline(scenario)
	if err != nil {
		return err
	}
	results = append(results, offline)

	sort.Slice(results, func(i, j int) bool {
		return results[i].Cost.Total() < results[j].Cost.Total()
	})

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		for _, r := range results {
			if err := r.WriteJSON(f); err != nil {
				return err
			}
		}
	}

	fmt.Fprintf(stdout, "scenario: %d edges, %d slots, cap=%.3g g, rate=%.4g g/kWh, seed=%d, zoo=%s\n\n",
		cfg.Edges, cfg.Horizon, cfg.InitialCap, cfg.EmissionRate, cfg.Seed, *zooKind)
	tw := tabwriter.NewWriter(stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\ttotal\tinfer-loss\tcompute\tswitching\ttrading\tfit\tswitches\taccuracy")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.4f\t%d\t%.3f\n",
			r.Name, r.Cost.Total(), r.Cost.InferLoss, r.Cost.Compute,
			r.Cost.Switching, r.Cost.Trading, r.Fit, r.Switches, r.OverallAccuracy)
	}
	return tw.Flush()
}

// loadTraces reads the optional workload/price CSVs.
func loadTraces(workloadPath, pricesPath string) ([][]int, *market.Prices, error) {
	var workloadTrace [][]int
	var priceTrace *market.Prices
	if workloadPath != "" {
		f, err := os.Open(workloadPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		workloadTrace, err = trace.ReadWorkload(f)
		if err != nil {
			return nil, nil, fmt.Errorf("read workload trace: %w", err)
		}
	}
	if pricesPath != "" {
		f, err := os.Open(pricesPath)
		if err != nil {
			return nil, nil, err
		}
		defer f.Close()
		priceTrace, err = trace.ReadPrices(f)
		if err != nil {
			return nil, nil, fmt.Errorf("read price trace: %w", err)
		}
	}
	return workloadTrace, priceTrace, nil
}

// exportScenarioTraces writes the scenario's realized traces as CSV.
func exportScenarioTraces(dir string, s *sim.Scenario) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	wf, err := os.Create(filepath.Join(dir, "workload.csv"))
	if err != nil {
		return err
	}
	defer wf.Close()
	if err := trace.WriteWorkload(wf, s.Workload); err != nil {
		return fmt.Errorf("write workload trace: %w", err)
	}
	pf, err := os.Create(filepath.Join(dir, "prices.csv"))
	if err != nil {
		return err
	}
	defer pf.Close()
	if err := trace.WritePrices(pf, s.Prices); err != nil {
		return fmt.Errorf("write price trace: %w", err)
	}
	return nil
}

// buildZoo constructs the requested model zoo. The "-q8" variants double
// the arm set with int8-quantized siblings (quantization-aware selection);
// int8Mode scores those siblings through the true-INT8 engine instead of
// the fake-quant float oracle.
func buildZoo(kind string, seed int64, int8Mode bool) (models.Zoo, error) {
	if int8Mode && kind != "mnist-q8" && kind != "cifar-q8" {
		return nil, fmt.Errorf("-int8 requires a quantized zoo (mnist-q8 | cifar-q8), got %q", kind)
	}
	switch kind {
	case "surrogate":
		return models.DefaultSurrogateZoo(numeric.SplitRNG(seed, "zoo"))
	case "mnist":
		return models.CachedTrainedZoo(
			models.DefaultTrainedZooConfig(dataset.MNISTLike), seed, "zoo")
	case "cifar":
		return models.CachedTrainedZoo(
			models.DefaultTrainedZooConfig(dataset.CIFARLike), seed, "zoo")
	case "mnist-q8", "cifar-q8":
		spec := dataset.MNISTLike
		if kind == "cifar-q8" {
			spec = dataset.CIFARLike
		}
		cfg := models.DefaultTrainedZooConfig(spec)
		cfg.Int8 = int8Mode
		return models.CachedQuantizedTrainedZoo(cfg, seed, "zoo")
	default:
		return nil, fmt.Errorf("unknown zoo %q (surrogate | mnist | cifar | mnist-q8 | cifar-q8)", kind)
	}
}
