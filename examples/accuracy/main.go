// Accuracy runs the Figs. 12-13 pipeline over genuinely trained neural
// networks: it builds the MNIST-like model zoo (six networks of three
// architectures trained from scratch in pure Go), streams synthetic data to
// the edges, and reports the per-scheme inference accuracy alongside total
// cost — showing that the bandit's loss-driven selection also wins on the
// metric users feel.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "accuracy:", err)
		os.Exit(1)
	}
}

func run() error {
	const seed = 3
	fmt.Println("training the MNIST-like model zoo (6 networks)...")
	zooCfg := models.DefaultTrainedZooConfig(dataset.MNISTLike)
	zooCfg.TrainN = 800
	zooCfg.TestN = 1000
	zooCfg.Epochs = 2
	zoo, err := models.NewTrainedZoo(zooCfg, numeric.SplitRNG(seed, "zoo"))
	if err != nil {
		return err
	}
	fmt.Println("\nmodel zoo:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tparams (KB)\tenergy (kWh/sample)\tmean loss\taccuracy")
	for n := 0; n < zoo.NumModels(); n++ {
		info := zoo.Info(n)
		fmt.Fprintf(tw, "%s\t%.0f\t%.2g\t%.3f\t%.3f\n",
			info.Name, float64(info.SizeBytes)/1e3, info.PhiKWh, zoo.MeanLoss(n), zoo.MeanAccuracy(n))
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	cfg := sim.DefaultConfig(5)
	cfg.Seed = seed
	scenario, err := sim.NewScenario(cfg, zoo)
	if err != nil {
		return err
	}

	fmt.Println("\nstreaming inference (160 slots, 5 edges):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\taccuracy\ttotal cost\tfit (g)")
	for _, name := range []string{"Ours", "Greedy-Ran", "TINF-Ran", "UCB-Ran"} {
		combo, err := sim.ComboByName(name)
		if err != nil {
			return err
		}
		res, err := sim.Run(scenario, combo.Name, combo.Policy, combo.Trader)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f\t%.3f\n", name, res.OverallAccuracy, res.Cost.Total(), res.Fit)
	}
	off, err := sim.Offline(scenario)
	if err != nil {
		return err
	}
	fmt.Fprintf(tw, "Offline\t%.3f\t%.1f\t%.3f\n", off.OverallAccuracy, off.Cost.Total(), off.Fit)
	return tw.Flush()
}
