// Citywide simulates the paper's largest deployment: 50 edges co-located
// with base stations across a metropolitan region, a two-day horizon of
// 15-minute slots, and the full cross product of model-selection and
// carbon-trading schemes. It prints the Fig. 4-style comparison for one
// system scale.
package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "citywide:", err)
		os.Exit(1)
	}
}

func run() error {
	const edges = 50
	cfg := sim.DefaultConfig(edges)
	cfg.Seed = 7
	// The allowance cap scales with the fleet so the trading subproblem
	// keeps its character at city scale.
	cfg.InitialCap *= float64(edges) / 10

	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(cfg.Seed, "zoo"))
	if err != nil {
		return err
	}
	scenario, err := sim.NewScenario(cfg, zoo)
	if err != nil {
		return err
	}

	type row struct {
		name  string
		total float64
		fit   float64
		acc   float64
	}
	var rows []row
	for _, combo := range sim.Combos() {
		res, err := sim.Run(scenario, combo.Name, combo.Policy, combo.Trader)
		if err != nil {
			return fmt.Errorf("run %s: %w", combo.Name, err)
		}
		rows = append(rows, row{combo.Name, res.Cost.Total(), res.Fit, res.OverallAccuracy})
	}
	off, err := sim.Offline(scenario)
	if err != nil {
		return err
	}
	rows = append(rows, row{"Offline", off.Cost.Total(), off.Fit, off.OverallAccuracy})

	sort.Slice(rows, func(i, j int) bool { return rows[i].total < rows[j].total })
	fmt.Printf("citywide deployment: %d edges, %d slots, cap %.1f g\n\n",
		cfg.Edges, cfg.Horizon, cfg.InitialCap)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tscheme\ttotal cost\tvs Ours\tfit (g)\taccuracy")
	var oursTotal float64
	for _, r := range rows {
		if r.name == "Ours" {
			oursTotal = r.total
		}
	}
	for i, r := range rows {
		rel := (r.total/oursTotal - 1) * 100
		fmt.Fprintf(tw, "%d\t%s\t%.1f\t%+.1f%%\t%.3f\t%.3f\n", i+1, r.name, r.total, rel, r.fit, r.acc)
	}
	return tw.Flush()
}
