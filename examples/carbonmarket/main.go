// Carbonmarket isolates the trading subproblem P2: a fixed inference fleet
// emits carbon while allowance prices fluctuate and occasionally jump. The
// example pits Algorithm 2 (online primal-dual) against the Lyapunov,
// Threshold, and Random baselines and the clairvoyant per-slot optimum,
// reporting trading cost and constraint violation — the Fig. 9/11 story in
// miniature, including robustness to a mid-horizon price shock.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/trading"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "carbonmarket:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		horizon    = 320
		initialCap = 4.0 // grams
	)
	rng := numeric.SplitRNG(11, "carbonmarket")

	// Price series with shocks (a volatile compliance period).
	priceCfg := market.DefaultPriceConfig()
	priceCfg.ShockProb = 0.05
	priceCfg.ShockSize = 2.5
	prices, err := market.GeneratePrices(priceCfg, horizon, rng)
	if err != nil {
		return err
	}

	// Emission series: diurnal double hump plus noise, mean ~0.04 g/slot,
	// so the horizon total (~12.8 g) far exceeds the cap: a structural
	// deficit that must be bought.
	emissions := make([]float64, horizon)
	for t := range emissions {
		base := 0.02 + 0.04*humps(t)
		emissions[t] = base * (0.8 + 0.4*rng.Float64())
	}

	scale := mean(emissions)
	traders := []trading.Trader{
		mustPrimalDual(initialCap, horizon, scale, mean(prices.Buy)),
		mustLyapunov(initialCap, horizon, scale, mean(prices.Buy)),
		mustThreshold(prices, scale),
		mustRandom(scale, rng),
		mustOneShot(emissions, initialCap),
	}

	fmt.Printf("carbon market: %d slots, cap %.1f g, total emissions %.1f g\n",
		horizon, initialCap, sum(emissions))
	fmt.Printf("prices: %.1f-%.1f (shocks enabled)\n\n", minOf(prices.Buy), maxOf(prices.Buy))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "trader\ttrading cost\tfit (g)\tbought\tsold")
	for _, tr := range traders {
		cost, fit, bought, sold, err := play(tr, emissions, prices, initialCap)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\t%.2f\t%.2f\n", tr.Name(), cost, fit, bought, sold)
	}
	return tw.Flush()
}

// play runs one trader over the series.
func play(tr trading.Trader, emissions []float64, prices *market.Prices, cap float64) (cost, fit, bought, sold float64, err error) {
	decisions := make([]trading.Decision, len(emissions))
	for t := range emissions {
		q := trading.Quote{Buy: prices.Buy[t], Sell: prices.Sell[t]}
		d := tr.Decide(t, q)
		decisions[t] = d
		cost += d.Cost(q)
		bought += d.Buy
		sold += d.Sell
		tr.Observe(t, emissions[t], q, d)
	}
	fit, err = trading.Fit(emissions, decisions, cap)
	return cost, fit, bought, sold, err
}

func mustPrimalDual(cap float64, horizon int, scale, avgPrice float64) trading.Trader {
	cfg := trading.DefaultPrimalDualConfig(cap, horizon)
	inv3 := 1.0 / math.Cbrt(float64(horizon))
	cfg.Gamma1 = 4 * inv3 * avgPrice / scale
	cfg.Gamma2 = 4 * inv3 * scale / avgPrice
	cfg.ZMax = 20 * scale
	tr, err := trading.NewPrimalDual(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}

func mustLyapunov(cap float64, horizon int, scale, avgPrice float64) trading.Trader {
	tr, err := trading.NewLyapunovTrader(scale/avgPrice*3, 2*scale, cap, horizon)
	if err != nil {
		panic(err)
	}
	return tr
}

func mustThreshold(p *market.Prices, scale float64) trading.Trader {
	mid := (minOf(p.Buy) + maxOf(p.Buy)) / 2
	tr, err := trading.NewThresholdTrader(mid, scale, mid*0.9, scale)
	if err != nil {
		panic(err)
	}
	return tr
}

func mustRandom(scale float64, rng *rand.Rand) trading.Trader {
	tr, err := trading.NewRandomTrader(4*scale, rng)
	if err != nil {
		panic(err)
	}
	return tr
}

func mustOneShot(emissions []float64, cap float64) trading.Trader {
	tr, err := trading.NewOneShotTrader(emissions, cap)
	if err != nil {
		panic(err)
	}
	return tr
}

// humps is a double-peak diurnal intensity in [0, 1].
func humps(t int) float64 {
	day := t % 96
	am := gauss(float64(day-34), 8)
	pm := gauss(float64(day-72), 8)
	if am > pm {
		return am
	}
	return pm
}

func gauss(d, sigma float64) float64 {
	x := d / sigma
	return math.Exp(-x * x / 2)
}

func mean(xs []float64) float64 { return sum(xs) / float64(len(xs)) }

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
