// Distributed runs the paper's Fig. 1 system for real: a cloud process
// listens on TCP, four edge agents connect, and the full protocol plays out
// — the cloud trains the model zoo, runs Algorithm 1 (per-edge model
// selection) and Algorithm 2 (allowance trading), and ships serialized
// model checkpoints over the wire whenever an edge must switch; the edges
// hold their own private data pools and run genuine neural-network
// inference, reporting only losses and energy.
//
// Everything runs in one OS process for convenience, but the parties
// communicate exclusively through the TCP loopback — move the edge
// goroutines to other machines and nothing changes.
package main

import (
	"fmt"
	"net"
	"os"
	"sync"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/deploy"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/nn"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "distributed:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		seed    = 11
		edges   = 4
		horizon = 40
	)
	spec := dataset.MNISTLike

	// The distribution D is the one thing cloud and edges share.
	dist, err := dataset.NewDistribution(spec, numeric.SplitRNG(seed, "dist"))
	if err != nil {
		return err
	}

	fmt.Println("cloud: training the model zoo...")
	zoo, err := models.NewTrainedZoo(models.TrainedZooConfig{
		Dataset: spec,
		Dist:    dist,
		TrainN:  600, TestN: 600, Epochs: 2, LR: 0.05, BatchSize: 16,
	}, numeric.SplitRNG(seed, "zoo"))
	if err != nil {
		return err
	}
	source, err := deploy.NewZooSource(zoo)
	if err != nil {
		return err
	}
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), horizon,
		numeric.SplitRNG(seed, "prices"))
	if err != nil {
		return err
	}
	downloadCosts := make([]float64, edges)
	for i := range downloadCosts {
		downloadCosts[i] = 0.8 + 0.3*float64(i)
	}
	cloud, err := deploy.NewCloud(deploy.CloudConfig{
		Edges:         edges,
		Horizon:       horizon,
		DownloadCosts: downloadCosts,
		InitialCap:    0.002, // grams; tiny system, tiny cap
		EmissionRate:  500,
		Prices:        prices,
		EmissionScale: 2e-4,
		Seed:          seed,
	}, source)
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("cloud: listening on %s, expecting %d edges\n", ln.Addr(), edges)

	var wg sync.WaitGroup
	edgeErrs := make([]error, edges)
	for i := 0; i < edges; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			edgeErrs[i] = runEdgeAgent(ln.Addr().String(), i, spec, dist, seed)
		}(i)
	}

	summary, err := cloud.Serve(ln)
	if err != nil {
		return err
	}
	wg.Wait()
	for i, err := range edgeErrs {
		if err != nil {
			return fmt.Errorf("edge %d: %w", i, err)
		}
	}

	totalEmission := 0.0
	for _, e := range summary.Emissions {
		totalEmission += e
	}
	fmt.Println("\nrun complete:")
	fmt.Printf("  slots:             %d x %d edges\n", horizon, edges)
	fmt.Printf("  observed loss+v:   %.2f\n", summary.ObservedLoss)
	fmt.Printf("  model downloads:   %d (checkpoints shipped over TCP)\n", summary.Switches)
	fmt.Printf("  inference accuracy:%.3f\n", summary.Accuracy)
	fmt.Printf("  emissions:         %.4f g (cap %.4f g)\n", totalEmission, 0.002)
	fmt.Printf("  trading cost:      %.4f  fit: %.5f g\n", summary.TradingCost, summary.Fit)
	return nil
}

// runEdgeAgent connects one edge to the cloud and serves until Done.
func runEdgeAgent(addr string, id int, spec dataset.Spec, dist *dataset.Distribution, seed int64) error {
	rng := numeric.SplitRNG(seed, fmt.Sprintf("edge-%d", id))
	pool := dist.Pool(300, rng) // the edge's private stream pool
	build := func(modelID int) (*nn.Network, error) {
		return models.NewFamilyNetwork(spec, modelID, numeric.SplitRNG(seed, "arch"))
	}
	rt, err := deploy.NewNNRuntime(
		build,
		pool,
		func(slot int) int { return 20 + (slot+id)%15 },
		func(modelID int) float64 { return 0.025 + 0.02*float64(modelID) },
		rng,
	)
	if err != nil {
		return err
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	return deploy.RunEdge(conn, id, rt)
}
