// Llmedge explores the paper's second future-work direction: serving Large
// Language Models at the edge with quantization-aware carbon/energy control.
// The model zoo holds two LLM families, each in fp16 / int8 / int4
// quantizations — multi-gigabyte downloads, per-request energy thousands of
// times the CNN numbers, and a quality/energy trade-off per quantization
// level. The same Algorithm 1 + Algorithm 2 controller handles it untouched:
// the block schedule stretches to amortize the huge download cost, and the
// trader covers the correspondingly larger emissions.
package main

import (
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "llmedge:", err)
		os.Exit(1)
	}
}

// llmZoo builds six LLM variants: two base models x three quantizations.
// Loss here is 1 - answer quality; energy is kWh per request (an edge LLM
// inference costs on the order of 1e-4 kWh, ~1000x a CNN classification);
// sizes are the quantized checkpoint sizes.
func llmZoo() (models.Zoo, error) {
	ms := []models.SurrogateModel{
		{Name: "llm7b-fp16", MeanLoss: 0.30, LossSigma: 0.15, Accuracy: 0.74,
			SizeBytes: 14e9, PhiKWh: 4.0e-4, BaseLatencySec: 1.8},
		{Name: "llm7b-int8", MeanLoss: 0.33, LossSigma: 0.15, Accuracy: 0.71,
			SizeBytes: 7e9, PhiKWh: 2.4e-4, BaseLatencySec: 1.1},
		{Name: "llm7b-int4", MeanLoss: 0.40, LossSigma: 0.16, Accuracy: 0.64,
			SizeBytes: 3.5e9, PhiKWh: 1.5e-4, BaseLatencySec: 0.7},
		{Name: "llm3b-fp16", MeanLoss: 0.42, LossSigma: 0.16, Accuracy: 0.62,
			SizeBytes: 6e9, PhiKWh: 1.9e-4, BaseLatencySec: 0.9},
		{Name: "llm3b-int8", MeanLoss: 0.46, LossSigma: 0.17, Accuracy: 0.58,
			SizeBytes: 3e9, PhiKWh: 1.2e-4, BaseLatencySec: 0.55},
		{Name: "llm3b-int4", MeanLoss: 0.55, LossSigma: 0.18, Accuracy: 0.50,
			SizeBytes: 1.5e9, PhiKWh: 0.8e-4, BaseLatencySec: 0.35},
	}
	return models.NewSurrogateZoo(ms, 8000)
}

func run() error {
	zoo, err := llmZoo()
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig(8)
	cfg.Seed = 5
	// LLM requests are fewer but heavier than CNN classifications.
	cfg.MeanPeakWorkload = 20
	// Shipping a multi-GB checkpoint over the backhaul takes minutes, so
	// switching is drastically more expensive than for CNNs.
	cfg.SwitchWeight = 60
	// Emissions are ~1000x larger; the cap scales accordingly.
	cfg.InitialCap = 300

	scenario, err := sim.NewScenario(cfg, zoo)
	if err != nil {
		return err
	}

	fmt.Println("LLM-at-the-edge: 8 edges, quantized model zoo")
	fmt.Println("model           size     kWh/req   quality-loss")
	for n := 0; n < zoo.NumModels(); n++ {
		info := zoo.Info(n)
		fmt.Printf("%-14s  %4.1f GB  %.1e   %.2f\n",
			info.Name, float64(info.SizeBytes)/1e9, info.PhiKWh, zoo.MeanLoss(n))
	}
	fmt.Println()

	type row struct {
		name     string
		total    float64
		switches int
		fit      float64
	}
	var rows []row
	for _, name := range []string{"Ours", "TINF-LY", "UCB-LY", "Greedy-LY"} {
		combo, err := sim.ComboByName(name)
		if err != nil {
			return err
		}
		res, err := sim.Run(scenario, combo.Name, combo.Policy, combo.Trader)
		if err != nil {
			return err
		}
		rows = append(rows, row{name, res.Cost.Total(), res.Switches, res.Fit})
	}
	off, err := sim.Offline(scenario)
	if err != nil {
		return err
	}
	rows = append(rows, row{"Offline", off.Cost.Total(), off.Switches, off.Fit})

	sort.Slice(rows, func(i, j int) bool { return rows[i].total < rows[j].total })
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\ttotal cost\tmodel downloads\tfit (g)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%d\t%.3f\n", r.name, r.total, r.switches, r.fit)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Println("\nwith minute-scale downloads, the block schedule is what keeps")
	fmt.Println("the learned placement viable: compare the download counts above.")
	return nil
}
