// Quickstart drives the paper's framework end to end through the public
// core.Controller API: three edges, six models, 160 slots of synthetic
// inference traffic and carbon prices. It is the smallest complete usage of
// the library — everything else (the simulator, the figure harness) is
// built from the same calls.
package main

import (
	"fmt"
	"os"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/trading"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		horizon = 160
		edges   = 3
		nModels = 6
	)
	// Per-slot emission of this toy system is around 0.02 g; the cap covers
	// roughly half the horizon, so the controller must buy allowances.
	ctrl, err := core.New(core.Config{
		NumModels:     nModels,
		DownloadCosts: []float64{1.2, 0.9, 1.5}, // seconds to ship a model
		Horizon:       horizon,
		InitialCap:    1.5,
		EmissionScale: 0.02,
		PriceScale:    8,
		Seed:          42,
	})
	if err != nil {
		return err
	}

	// Synthetic world: model quality and prices.
	meanLoss := []float64{1.1, 0.7, 0.55, 0.42, 0.38, 0.30}
	phi := []float64{6e-8, 7e-8, 7.5e-8, 8.2e-8, 9e-8, 1e-7} // kWh/sample
	rng := numeric.SplitRNG(42, "quickstart")
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), horizon, rng)
	if err != nil {
		return err
	}

	totalCost, totalEmission := 0.0, 0.0
	var decisions []trading.Decision
	emissions := make([]float64, horizon)
	for t := 0; t < horizon; t++ {
		// 1. Place one model per edge.
		arms, err := ctrl.SelectModels()
		if err != nil {
			return err
		}
		// 2. Trade allowances (Algorithm 2 ignores the current quote).
		q := trading.Quote{Buy: prices.Buy[t], Sell: prices.Sell[t]}
		d, err := ctrl.DecideTrade(q)
		if err != nil {
			return err
		}
		decisions = append(decisions, d)
		totalCost += d.Cost(q)

		// 3. "Run inference": draw losses and count energy.
		losses := make([]float64, edges)
		slotEmission := 0.0
		for i, arm := range arms {
			m := 50 + rng.Intn(100) // samples this slot
			losses[i] = meanLoss[arm] + rng.NormFloat64()*0.2
			totalCost += meanLoss[arm]
			slotEmission += phi[arm] * float64(m) * 500 // g, at 500 g/kWh
		}
		emissions[t] = slotEmission
		totalEmission += slotEmission

		// 4. Feed the observations back.
		if err := ctrl.CompleteSlot(losses, slotEmission); err != nil {
			return err
		}
	}

	fit, err := trading.Fit(emissions, decisions, 1.5)
	if err != nil {
		return err
	}
	fmt.Printf("ran %d slots on %d edges\n", horizon, edges)
	fmt.Printf("total cost:          %.2f\n", totalCost)
	fmt.Printf("total emissions:     %.3f g (cap %.1f g)\n", totalEmission, 1.5)
	fmt.Printf("constraint violation (fit): %.4f g\n", fit)
	fmt.Printf("model switches:      %d\n", ctrl.Switches())
	fmt.Printf("final dual price λ:  %.2f\n", ctrl.Lambda())
	sel := ctrl.Selections()
	for i, row := range sel {
		fmt.Printf("edge %d selections:   %v\n", i, row)
	}
	return nil
}
