// Top-level integration tests: the whole system exercised through its
// public seams — scenario construction, every scheme combination, the
// Offline comparator, JSON export, trace round-trips, and the headline
// cost ordering the paper reports.
package carbonedge_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/metrics"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/sim"
	"github.com/carbonedge/carbonedge/internal/trace"
)

func TestEndToEndSurrogatePipeline(t *testing.T) {
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(42, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(6)
	cfg.Horizon = 120
	cfg.Seed = 42
	scenario, err := sim.NewScenario(cfg, zoo)
	if err != nil {
		t.Fatal(err)
	}

	totals := make(map[string]float64)
	for _, combo := range sim.Combos() {
		res, err := sim.Run(scenario, combo.Name, combo.Policy, combo.Trader)
		if err != nil {
			t.Fatalf("%s: %v", combo.Name, err)
		}
		totals[combo.Name] = res.Cost.Total()
	}
	offline, err := sim.Offline(scenario)
	if err != nil {
		t.Fatal(err)
	}
	totals["Offline"] = offline.Cost.Total()

	// The paper's headline ordering: Offline < Ours < every online
	// baseline.
	reductions, err := metrics.CompareRuns("Ours", totals)
	if err != nil {
		t.Fatal(err)
	}
	for name, red := range reductions {
		switch name {
		case "Ours":
		case "Offline":
			if red > 0 {
				t.Errorf("Offline (%v) should beat Ours", totals[name])
			}
		default:
			if red <= 0 {
				t.Errorf("Ours does not beat %s (%.1f vs %.1f)", name, totals["Ours"], totals[name])
			}
		}
	}
}

func TestEndToEndJSONAndTraceRoundTrip(t *testing.T) {
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(7, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(3)
	cfg.Horizon = 40
	cfg.Seed = 7
	scenario, err := sim.NewScenario(cfg, zoo)
	if err != nil {
		t.Fatal(err)
	}

	// Export the scenario's traces and reload them; the rebuilt scenario
	// must produce the identical run.
	var wbuf, pbuf bytes.Buffer
	if err := trace.WriteWorkload(&wbuf, scenario.Workload); err != nil {
		t.Fatal(err)
	}
	if err := trace.WritePrices(&pbuf, scenario.Prices); err != nil {
		t.Fatal(err)
	}
	wl, err := trace.ReadWorkload(&wbuf)
	if err != nil {
		t.Fatal(err)
	}
	prices, err := trace.ReadPrices(&pbuf)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := sim.NewScenarioWithTraces(cfg, zoo, wl, prices)
	if err != nil {
		t.Fatal(err)
	}

	res1, err := sim.Run(scenario, "Ours", sim.PolicyOurs, sim.TraderOurs)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim.Run(rebuilt, "Ours", sim.PolicyOurs, sim.TraderOurs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res1.Cost.Total()-res2.Cost.Total()) > 1e-9 {
		t.Errorf("trace round-trip changed the run: %v vs %v", res1.Cost.Total(), res2.Cost.Total())
	}

	// JSON export parses back and carries the headline numbers.
	var jbuf bytes.Buffer
	if err := res1.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(jbuf.Bytes(), &decoded); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if decoded["name"] != "Ours" {
		t.Errorf("json name = %v", decoded["name"])
	}
	if got := decoded["totalCost"].(float64); math.Abs(got-res1.Cost.Total()) > 1e-9 {
		t.Errorf("json totalCost = %v, want %v", got, res1.Cost.Total())
	}
}

func TestEndToEndTrainedZooPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a neural zoo")
	}
	zooCfg := models.TrainedZooConfig{
		Dataset: dataset.MNISTLike,
		TrainN:  300, TestN: 300, Epochs: 1, LR: 0.05, BatchSize: 16,
	}
	zoo, err := models.NewTrainedZoo(zooCfg, numeric.SplitRNG(5, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(3)
	cfg.Horizon = 60
	cfg.Seed = 5
	scenario, err := sim.NewScenario(cfg, zoo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(scenario, "Ours", sim.PolicyOurs, sim.TraderOurs)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverallAccuracy <= 0.2 {
		t.Errorf("trained-zoo accuracy = %v, want well above chance", res.OverallAccuracy)
	}
	off, err := sim.Offline(scenario)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverallAccuracy > off.OverallAccuracy+0.05 {
		t.Errorf("online accuracy %v implausibly above Offline %v", res.OverallAccuracy, off.OverallAccuracy)
	}
}
