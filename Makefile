# Developer entry points for the carbonedge repo.
#
#   make build   - compile everything
#   make test    - tier-1 gate: full test suite
#   make vet     - go vet across all packages
#   make race    - race-detector pass over the internal packages (the shared
#                  engine's parallel edge stepping must stay data-race free)
#   make bench   - the engine's serial-vs-parallel slot-stepping benchmark
#   make check   - vet + race + full tests: the pre-commit gate
#   make sim     - run the default 10-edge scenario comparison

GO ?= go

.PHONY: build test vet race bench check sim

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test ./internal/sim/ -run XX -bench BenchmarkSlotStepParallel -benchtime 3x

check: vet race test

sim:
	$(GO) run ./cmd/carbonsim
