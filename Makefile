# Developer entry points for the carbonedge repo.
#
#   make build   - compile everything
#   make test    - tier-1 gate: full test suite
#   make vet     - go vet across all packages
#   make lint    - carbonlint: the repo's custom determinism/numeric
#                  invariant analyzers (see DESIGN.md "Static invariants")
#   make race    - race-detector pass over the internal packages (the shared
#                  engine's parallel edge stepping must stay data-race free)
#   make chaos   - fault-tolerance suite under the race detector: deterministic
#                  fault injection, kill/resume, degradation (see DESIGN.md
#                  "Failure model")
#   make chaos-region - elastic-regional-tier suite under the race detector:
#                  region kill/resume, torn delta frames, graceful departure
#                  with mid-run shard rebalancing, quorum degradation, and the
#                  randomized-schedule parity property
#   make bench   - refresh the machine-readable NN perf baseline
#                  (BENCH_nn.json) plus the engine's serial-vs-parallel
#                  slot-stepping benchmark
#   make bench-diff - rerun the nnbench suite and fail when any benchmark's
#                  ns/op regressed >25% against the committed BENCH_nn.json
#   make check   - vet + lint + race + full tests: the pre-commit gate
#   make sim     - run the default 10-edge scenario comparison

GO ?= go

.PHONY: build test vet lint race chaos chaos-region bench bench-diff check sim

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/carbonlint -cache .lintcache ./...

race:
	$(GO) test -race ./internal/...

chaos:
	$(GO) test -race -count=1 -run 'TestChaos|TestCloud' ./internal/deploy/
	$(GO) test -race -count=1 ./internal/faults/

chaos-region:
	$(GO) test -race -count=1 -run 'TestRegionChaos|TestRegional|TestShardDeltaReplay' ./internal/deploy/

bench:
	$(GO) run ./cmd/nnbench -out BENCH_nn.json
	$(GO) test ./internal/sim/ -run XX -bench 'BenchmarkSlotStepParallel|BenchmarkEngineSharded' -benchtime 3x

bench-diff:
	$(GO) run ./cmd/nnbench -diff BENCH_nn.json

check: vet lint race test

sim:
	$(GO) run ./cmd/carbonsim
