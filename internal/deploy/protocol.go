// Package deploy is a runnable distributed deployment of the paper's
// system (its Fig. 1): a cloud process hosts the model zoo and runs the
// joint online controller (Algorithm 1 per edge + Algorithm 2), while edge
// agents — connected over any net.Conn, e.g. TCP — receive serialized model
// checkpoints, run real inference on their local data streams, and report
// per-slot losses and energy. This realizes the paper's third future-work
// item ("deploying our system in real-world cloud-edge environments") at
// protocol fidelity: models are actually shipped as bytes, losses are only
// observed after inference, and the cloud sees nothing about an edge's data.
//
// The wire protocol is length-prefixed JSON: every frame is a 4-byte
// big-endian length followed by a JSON-encoded Message. JSON keeps frames
// inspectable; the dominant payload (model weights) is []byte, which
// encoding/json base64-encodes.
package deploy

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/carbonedge/carbonedge/internal/engine"
)

// MsgType discriminates protocol messages.
type MsgType int

// Protocol message types.
const (
	// MsgHello is the edge's first frame: it announces its identity.
	MsgHello MsgType = iota + 1
	// MsgWelcome is the cloud's reply: zoo metadata the edge needs.
	MsgWelcome
	// MsgAssign starts a slot on an edge: the model to serve, with the
	// serialized checkpoint when the edge must download it.
	MsgAssign
	// MsgReport is the edge's end-of-slot observation.
	MsgReport
	// MsgDone ends the run.
	MsgDone
	// MsgError aborts the run with a reason.
	MsgError

	// Regional-aggregator tier (root cloud <-> regional coordinator). A
	// coordinator owns one contiguous shard of the fleet: it admits its
	// edges exactly as the monolithic cloud would, steps them per slot, and
	// streams the shard's SlotDelta back to the root, which merges deltas in
	// canonical shard order and folds them bit-identically to a single
	// in-process run (see engine.RunSharded).

	// MsgRegionHello is a coordinator's first frame: it announces RegionID.
	MsgRegionHello
	// MsgRegionWelcome is the root's reply: the shard's edge range, the
	// horizon, the zoo size, and the error policy the shard must apply.
	MsgRegionWelcome
	// MsgShardAssign starts a slot on a region: the shard-local model
	// placement and download schedule.
	MsgShardAssign
	// MsgShardDelta is the region's end-of-slot shard reduction.
	MsgShardDelta
	// MsgRegionLeave is a coordinator's graceful departure: sent in reply to
	// a ShardAssign it will not serve, it tells the root to rebalance the
	// region's shards onto survivors. The departing region then releases its
	// edge connections so the edges can redial the adopter and resume.
	MsgRegionLeave
	// MsgShardAdopt hands an orphaned shard to a surviving (or newly joined)
	// coordinator: it carries the engine.ShardCheckpoint the adopter needs to
	// rebuild the shard's links, tokens, and down state mid-run.
	MsgShardAdopt
)

// maxFrame bounds a single frame (weights of a large checkpoint dominate).
const maxFrame = 1 << 30

// Message is the single wire envelope; unused fields stay zero.
type Message struct {
	Type MsgType `json:"type"`

	// Hello / Welcome.
	EdgeID    int         `json:"edgeId,omitempty"`
	NumModels int         `json:"numModels,omitempty"`
	Models    []ModelMeta `json:"models,omitempty"`

	// Session resume (Hello / Welcome). A first Hello carries neither field;
	// the Welcome answers with the session's ResumeToken. A reconnecting
	// edge sends Hello with Resume set, the token it was issued, and
	// DoneSlots = number of slots it has completed reports for — so the
	// cloud can re-assign the in-flight slot without re-shipping zoo
	// metadata (the resume Welcome omits Models) and without double-counting
	// a slot whose report was lost in flight (the edge answers a duplicate
	// assign from its report cache instead of re-serving it).
	Resume      bool   `json:"resume,omitempty"`
	ResumeToken string `json:"resumeToken,omitempty"`
	DoneSlots   int    `json:"doneSlots,omitempty"`

	// Assign.
	Slot    int    `json:"slot,omitempty"`
	ModelID int    `json:"modelId,omitempty"`
	Switch  bool   `json:"switch,omitempty"`
	Weights []byte `json:"weights,omitempty"`

	// Report.
	AvgLoss     float64 `json:"avgLoss,omitempty"`
	Correct     int     `json:"correct,omitempty"`
	Samples     int     `json:"samples,omitempty"`
	EnergyKWh   float64 `json:"energyKwh,omitempty"`
	CompSeconds float64 `json:"compSeconds,omitempty"`

	// Error.
	Reason string `json:"reason,omitempty"`

	// Regional tier. RegionHello carries RegionID; RegionWelcome answers
	// with the shard's global edge range [Start, Start+Count), the run
	// Horizon, NumModels (shared field above), and Degrade (whether the
	// shard absorbs edge failures instead of failing fast). ShardAssign
	// carries the shard-local Arms/Downloads for Slot; ShardDelta answers
	// with the shard's per-slot reduction. encoding/json round-trips float64
	// exactly, so a delta that crossed this hop folds to the same bits as
	// one that never left the root's process.
	RegionID  int               `json:"regionId,omitempty"`
	Start     int               `json:"start,omitempty"`
	Count     int               `json:"count,omitempty"`
	Horizon   int               `json:"horizon,omitempty"`
	Degrade   bool              `json:"degrade,omitempty"`
	Arms      []int             `json:"arms,omitempty"`
	Downloads []bool            `json:"downloads,omitempty"`
	Delta     *engine.SlotDelta `json:"delta,omitempty"`

	// Region elasticity. A RegionHello announces Seed (the coordinator's
	// fleet seed, so the root can later checkpoint the shard's token and
	// jitter derivations for an adopter); a resuming RegionHello reuses the
	// shared Resume/ResumeToken/DoneSlots fields above, exactly as edges do.
	// ShardAssign carries Start/Count so a coordinator owning several ranges
	// after an adoption can route the slot; ShardAdopt carries the orphaned
	// shard's Checkpoint.
	Seed       int64                   `json:"seed,omitempty"`
	Checkpoint *engine.ShardCheckpoint `json:"checkpoint,omitempty"`
}

// ModelMeta is the per-model metadata the cloud announces to edges.
type ModelMeta struct {
	Name      string  `json:"name"`
	PhiKWh    float64 `json:"phiKwh"`
	SizeBytes int64   `json:"sizeBytes"`
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("deploy: marshal: %w", err)
	}
	if len(body) > maxFrame {
		return protocolErrorf("frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("deploy: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("deploy: write body: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message. Failures follow the error taxonomy
// in errors.go: truncated reads are transient I/O errors (the connection
// died, possibly mid-frame — a resume can heal it), while an impossible
// frame length, undecodable JSON, or an unknown message type is a fatal
// *ProtocolError (the peer is broken; retrying cannot help).
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("deploy: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, protocolErrorf("frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("deploy: read body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, protocolErrorf("unmarshal: %v", err)
	}
	if m.Type < MsgHello || m.Type > MsgShardAdopt {
		return nil, protocolErrorf("unknown message type %d", m.Type)
	}
	return &m, nil
}

// ValidateReport defensively checks a MsgReport before its numbers reach
// the engine's accounting: non-finite or negative losses, energies, and
// counts would silently poison the carbon ledger and the bandit state, so
// they are rejected as fatal protocol errors at the wire boundary.
func ValidateReport(m *Message) error {
	if m.Type != MsgReport {
		return protocolErrorf("expected Report, got type %d", m.Type)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"avgLoss", m.AvgLoss},
		{"energyKwh", m.EnergyKWh},
		{"compSeconds", m.CompSeconds},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return protocolErrorf("report slot %d: %s is not finite (%v)", m.Slot, f.name, f.v)
		}
		if f.v < 0 {
			return protocolErrorf("report slot %d: negative %s (%v)", m.Slot, f.name, f.v)
		}
	}
	if m.Samples < 0 {
		return protocolErrorf("report slot %d: negative sample count %d", m.Slot, m.Samples)
	}
	if m.Correct < 0 || m.Correct > m.Samples {
		return protocolErrorf("report slot %d: %d correct of %d samples", m.Slot, m.Correct, m.Samples)
	}
	return nil
}

// ValidateDelta defensively checks a MsgShardDelta before its terms reach
// the root's accounting fold: the delta must cover exactly the shard's edge
// range for the expected slot, and every numeric term must be finite and
// non-negative, for the same reason ValidateReport polices edge reports —
// one poisoned term would silently corrupt the carbon ledger.
func ValidateDelta(m *Message, start, count, slot int) error {
	if m.Type != MsgShardDelta {
		return protocolErrorf("expected ShardDelta, got type %d", m.Type)
	}
	if m.Slot != slot {
		return protocolErrorf("shard delta for slot %d, want %d", m.Slot, slot)
	}
	if m.Delta == nil {
		return protocolErrorf("shard delta slot %d: missing delta", slot)
	}
	if m.Delta.Start != start || len(m.Delta.Edges) != count {
		return protocolErrorf("shard delta slot %d covers [%d,%d), want [%d,%d)",
			slot, m.Delta.Start, m.Delta.Start+len(m.Delta.Edges), start, start+count)
	}
	for j := range m.Delta.Edges {
		ed := &m.Delta.Edges[j]
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"loss", ed.Loss},
			{"inferLoss", ed.InferLoss},
			{"compute", ed.Compute},
			{"inferKwh", ed.InferKWh},
			{"transferKwh", ed.TransferKWh},
		} {
			if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
				return protocolErrorf("shard delta slot %d edge %d: %s is not finite (%v)", slot, start+j, f.name, f.v)
			}
			if f.v < 0 {
				return protocolErrorf("shard delta slot %d edge %d: negative %s (%v)", slot, start+j, f.name, f.v)
			}
		}
		if ed.Samples < 0 {
			return protocolErrorf("shard delta slot %d edge %d: negative sample count %d", slot, start+j, ed.Samples)
		}
		if ed.Correct < 0 || ed.Correct > ed.Samples {
			return protocolErrorf("shard delta slot %d edge %d: %d correct of %d samples", slot, start+j, ed.Correct, ed.Samples)
		}
		if ed.Retries < 0 {
			return protocolErrorf("shard delta slot %d edge %d: negative retry count %d", slot, start+j, ed.Retries)
		}
	}
	return nil
}

// ValidateAdopt defensively checks a MsgShardAdopt before its checkpoint
// rebuilds shard state in the adopting coordinator: a malformed checkpoint is
// a fatal protocol error at the wire boundary, like any other bad frame.
func ValidateAdopt(m *Message) error {
	if m.Type != MsgShardAdopt {
		return protocolErrorf("expected ShardAdopt, got type %d", m.Type)
	}
	if m.Checkpoint == nil {
		return protocolErrorf("shard adopt: missing checkpoint")
	}
	if err := m.Checkpoint.Validate(); err != nil {
		return protocolErrorf("shard adopt: %v", err)
	}
	return nil
}
