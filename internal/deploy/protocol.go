// Package deploy is a runnable distributed deployment of the paper's
// system (its Fig. 1): a cloud process hosts the model zoo and runs the
// joint online controller (Algorithm 1 per edge + Algorithm 2), while edge
// agents — connected over any net.Conn, e.g. TCP — receive serialized model
// checkpoints, run real inference on their local data streams, and report
// per-slot losses and energy. This realizes the paper's third future-work
// item ("deploying our system in real-world cloud-edge environments") at
// protocol fidelity: models are actually shipped as bytes, losses are only
// observed after inference, and the cloud sees nothing about an edge's data.
//
// The wire protocol is length-prefixed JSON: every frame is a 4-byte
// big-endian length followed by a JSON-encoded Message. JSON keeps frames
// inspectable; the dominant payload (model weights) is []byte, which
// encoding/json base64-encodes.
package deploy

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MsgType discriminates protocol messages.
type MsgType int

// Protocol message types.
const (
	// MsgHello is the edge's first frame: it announces its identity.
	MsgHello MsgType = iota + 1
	// MsgWelcome is the cloud's reply: zoo metadata the edge needs.
	MsgWelcome
	// MsgAssign starts a slot on an edge: the model to serve, with the
	// serialized checkpoint when the edge must download it.
	MsgAssign
	// MsgReport is the edge's end-of-slot observation.
	MsgReport
	// MsgDone ends the run.
	MsgDone
	// MsgError aborts the run with a reason.
	MsgError
)

// maxFrame bounds a single frame (weights of a large checkpoint dominate).
const maxFrame = 1 << 30

// Message is the single wire envelope; unused fields stay zero.
type Message struct {
	Type MsgType `json:"type"`

	// Hello / Welcome.
	EdgeID    int         `json:"edgeId,omitempty"`
	NumModels int         `json:"numModels,omitempty"`
	Models    []ModelMeta `json:"models,omitempty"`

	// Assign.
	Slot    int    `json:"slot,omitempty"`
	ModelID int    `json:"modelId,omitempty"`
	Switch  bool   `json:"switch,omitempty"`
	Weights []byte `json:"weights,omitempty"`

	// Report.
	AvgLoss     float64 `json:"avgLoss,omitempty"`
	Correct     int     `json:"correct,omitempty"`
	Samples     int     `json:"samples,omitempty"`
	EnergyKWh   float64 `json:"energyKwh,omitempty"`
	CompSeconds float64 `json:"compSeconds,omitempty"`

	// Error.
	Reason string `json:"reason,omitempty"`
}

// ModelMeta is the per-model metadata the cloud announces to edges.
type ModelMeta struct {
	Name      string  `json:"name"`
	PhiKWh    float64 `json:"phiKwh"`
	SizeBytes int64   `json:"sizeBytes"`
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m *Message) error {
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("deploy: marshal: %w", err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("deploy: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("deploy: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("deploy: write body: %w", err)
	}
	return nil
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("deploy: read header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("deploy: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("deploy: read body: %w", err)
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("deploy: unmarshal: %w", err)
	}
	if m.Type < MsgHello || m.Type > MsgError {
		return nil, fmt.Errorf("deploy: unknown message type %d", m.Type)
	}
	return &m, nil
}
