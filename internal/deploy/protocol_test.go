package deploy

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/carbonedge/carbonedge/internal/numeric"
)

func TestMessageRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		msg  Message
	}{
		{"hello", Message{Type: MsgHello, EdgeID: 3}},
		{"welcome", Message{Type: MsgWelcome, NumModels: 2, Models: []ModelMeta{
			{Name: "a", PhiKWh: 7e-8, SizeBytes: 100},
			{Name: "b", PhiKWh: 9e-8, SizeBytes: 200},
		}}},
		{"assign with weights", Message{Type: MsgAssign, Slot: 5, ModelID: 1, Switch: true, Weights: []byte{1, 2, 3}}},
		{"report", Message{Type: MsgReport, Slot: 5, EdgeID: 2, AvgLoss: 0.4, Correct: 30, Samples: 50, EnergyKWh: 1e-6, CompSeconds: 0.05}},
		{"done", Message{Type: MsgDone}},
		{"error", Message{Type: MsgError, Reason: "boom"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteMessage(&buf, &tt.msg); err != nil {
				t.Fatalf("WriteMessage: %v", err)
			}
			got, err := ReadMessage(&buf)
			if err != nil {
				t.Fatalf("ReadMessage: %v", err)
			}
			if got.Type != tt.msg.Type || got.EdgeID != tt.msg.EdgeID ||
				got.Slot != tt.msg.Slot || got.ModelID != tt.msg.ModelID ||
				got.Switch != tt.msg.Switch || got.Reason != tt.msg.Reason {
				t.Errorf("round trip mismatch: %+v vs %+v", got, tt.msg)
			}
			if !bytes.Equal(got.Weights, tt.msg.Weights) {
				t.Error("weights mismatch")
			}
			if len(tt.msg.Models) != len(got.Models) {
				t.Error("models mismatch")
			}
		})
	}
}

func TestReadMessageErrors(t *testing.T) {
	// Truncated header.
	if _, err := ReadMessage(strings.NewReader("ab")); err == nil {
		t.Error("expected error for short header")
	}
	// Oversized frame.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(maxFrame+1))
	buf.Write(hdr[:])
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("expected error for oversized frame")
	}
	// Truncated body.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("{}")
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("expected error for short body")
	}
	// Invalid JSON.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 3)
	buf.Write(hdr[:])
	buf.WriteString("{{{")
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("expected error for bad json")
	}
	// Unknown type.
	buf.Reset()
	body := []byte(`{"type":99}`)
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("expected error for unknown type")
	}
}

func TestResumeFieldsRoundTrip(t *testing.T) {
	msg := Message{Type: MsgHello, EdgeID: 2, Resume: true, ResumeToken: "tok-2", DoneSlots: 17}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &msg); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Resume || got.ResumeToken != "tok-2" || got.DoneSlots != 17 {
		t.Errorf("resume fields lost in transit: %+v", got)
	}
	// A plain hello keeps the resume fields off the wire entirely.
	buf.Reset()
	if err := WriteMessage(&buf, &Message{Type: MsgHello, EdgeID: 1}); err != nil {
		t.Fatal(err)
	}
	if s := buf.String(); strings.Contains(s, "resume") {
		t.Errorf("non-resume hello leaks resume fields: %s", s)
	}
}

func TestValidateReport(t *testing.T) {
	ok := Message{Type: MsgReport, Slot: 3, AvgLoss: 0.4, Correct: 3, Samples: 5, EnergyKWh: 1e-6, CompSeconds: 0.02}
	tests := []struct {
		name   string
		mutate func(*Message)
		valid  bool
	}{
		{"valid", func(*Message) {}, true},
		{"zero samples", func(m *Message) { m.Samples, m.Correct = 0, 0 }, true},
		{"wrong type", func(m *Message) { m.Type = MsgDone }, false},
		{"nan loss", func(m *Message) { m.AvgLoss = math.NaN() }, false},
		{"inf loss", func(m *Message) { m.AvgLoss = math.Inf(1) }, false},
		{"negative loss", func(m *Message) { m.AvgLoss = -0.1 }, false},
		{"nan energy", func(m *Message) { m.EnergyKWh = math.NaN() }, false},
		{"negative energy", func(m *Message) { m.EnergyKWh = -1e-9 }, false},
		{"negative compute", func(m *Message) { m.CompSeconds = -0.01 }, false},
		{"nan compute", func(m *Message) { m.CompSeconds = math.NaN() }, false},
		{"negative samples", func(m *Message) { m.Samples = -1 }, false},
		{"negative correct", func(m *Message) { m.Correct = -1 }, false},
		{"correct exceeds samples", func(m *Message) { m.Correct = 6 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := ok
			tt.mutate(&m)
			err := ValidateReport(&m)
			if tt.valid {
				if err != nil {
					t.Fatalf("ValidateReport: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatal("expected rejection")
			}
			// Invalid physics is a peer bug: fatal, never retried.
			var pe *ProtocolError
			if !errors.As(err, &pe) {
				t.Errorf("err = %v, want *ProtocolError", err)
			}
			if Transient(err) {
				t.Error("validation failures must not be transient")
			}
		})
	}
}

func TestTransientTaxonomy(t *testing.T) {
	timeoutErr := &net.OpError{Op: "read", Err: &timeoutError{}}
	tests := []struct {
		name      string
		err       error
		transient bool
	}{
		{"nil", nil, false},
		{"eof", io.EOF, true},
		{"mid-frame eof", io.ErrUnexpectedEOF, true},
		{"wrapped eof", fmt.Errorf("deploy: read body: %w", io.ErrUnexpectedEOF), true},
		{"closed conn", net.ErrClosed, true},
		{"net timeout", timeoutErr, true},
		{"protocol error", protocolErrorf("bad frame"), false},
		{"wrapped protocol error", fmt.Errorf("edge 1: %w", protocolErrorf("bad frame")), false},
		{"edge error", &EdgeError{EdgeID: 2, Reason: "oom"}, false},
		{"unknown error", errors.New("mystery"), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Transient(tt.err); got != tt.transient {
				t.Errorf("Transient(%v) = %v, want %v", tt.err, got, tt.transient)
			}
		})
	}
}

// timeoutError is a minimal net.Error with Timeout() == true.
type timeoutError struct{}

func (timeoutError) Error() string   { return "i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// TestReadMessageErrorTaxonomy pins which wire failures are worth a retry: a
// connection that died mid-frame is transient; a peer that frames garbage is
// not.
func TestReadMessageErrorTaxonomy(t *testing.T) {
	// Truncated body: transient (the peer may resume and resend).
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("{}")
	_, err := ReadMessage(&buf)
	if err == nil || !Transient(err) {
		t.Errorf("truncated body: err = %v, want transient", err)
	}
	// Undecodable frame: fatal protocol error.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 3)
	buf.Write(hdr[:])
	buf.WriteString("{{{")
	_, err = ReadMessage(&buf)
	var pe *ProtocolError
	if err == nil || !errors.As(err, &pe) || Transient(err) {
		t.Errorf("bad json: err = %v, want fatal *ProtocolError", err)
	}
	// Impossible frame length: fatal protocol error.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], uint32(maxFrame+1))
	buf.Write(hdr[:])
	_, err = ReadMessage(&buf)
	if err == nil || !errors.As(err, &pe) || Transient(err) {
		t.Errorf("oversized frame: err = %v, want fatal *ProtocolError", err)
	}
}

func TestBackoffDelayDeterministicAndCapped(t *testing.T) {
	cfg := RetryConfig{Attempts: 5}.withDefaults()
	seq := func() []time.Duration {
		rng := numeric.SplitRNG(3, "backoff-test")
		var out []time.Duration
		for k := 1; k <= 8; k++ {
			out = append(out, backoffDelay(cfg, k, rng))
		}
		return out
	}
	first := seq()
	if !reflect.DeepEqual(first, seq()) {
		t.Error("backoff sequence not deterministic for a fixed stream")
	}
	for k, d := range first {
		if d < cfg.BaseDelay/2 || d > cfg.MaxDelay {
			t.Errorf("attempt %d delay %v outside [base/2, max]", k+1, d)
		}
	}
	// Late attempts saturate at the cap's jitter window [max/2, max].
	if last := first[len(first)-1]; last < cfg.MaxDelay/2 {
		t.Errorf("saturated delay %v below half the cap", last)
	}
}
