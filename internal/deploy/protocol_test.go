package deploy

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestMessageRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		msg  Message
	}{
		{"hello", Message{Type: MsgHello, EdgeID: 3}},
		{"welcome", Message{Type: MsgWelcome, NumModels: 2, Models: []ModelMeta{
			{Name: "a", PhiKWh: 7e-8, SizeBytes: 100},
			{Name: "b", PhiKWh: 9e-8, SizeBytes: 200},
		}}},
		{"assign with weights", Message{Type: MsgAssign, Slot: 5, ModelID: 1, Switch: true, Weights: []byte{1, 2, 3}}},
		{"report", Message{Type: MsgReport, Slot: 5, EdgeID: 2, AvgLoss: 0.4, Correct: 30, Samples: 50, EnergyKWh: 1e-6, CompSeconds: 0.05}},
		{"done", Message{Type: MsgDone}},
		{"error", Message{Type: MsgError, Reason: "boom"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteMessage(&buf, &tt.msg); err != nil {
				t.Fatalf("WriteMessage: %v", err)
			}
			got, err := ReadMessage(&buf)
			if err != nil {
				t.Fatalf("ReadMessage: %v", err)
			}
			if got.Type != tt.msg.Type || got.EdgeID != tt.msg.EdgeID ||
				got.Slot != tt.msg.Slot || got.ModelID != tt.msg.ModelID ||
				got.Switch != tt.msg.Switch || got.Reason != tt.msg.Reason {
				t.Errorf("round trip mismatch: %+v vs %+v", got, tt.msg)
			}
			if !bytes.Equal(got.Weights, tt.msg.Weights) {
				t.Error("weights mismatch")
			}
			if len(tt.msg.Models) != len(got.Models) {
				t.Error("models mismatch")
			}
		})
	}
}

func TestReadMessageErrors(t *testing.T) {
	// Truncated header.
	if _, err := ReadMessage(strings.NewReader("ab")); err == nil {
		t.Error("expected error for short header")
	}
	// Oversized frame.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(maxFrame+1))
	buf.Write(hdr[:])
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("expected error for oversized frame")
	}
	// Truncated body.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("{}")
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("expected error for short body")
	}
	// Invalid JSON.
	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], 3)
	buf.Write(hdr[:])
	buf.WriteString("{{{")
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("expected error for bad json")
	}
	// Unknown type.
	buf.Reset()
	body := []byte(`{"type":99}`)
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	buf.Write(hdr[:])
	buf.Write(body)
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("expected error for unknown type")
	}
}
