package deploy

import (
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/faults"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// The chaos tests drive the real TCP cloud through injected connection
// faults and assert the three fault-tolerance layers end to end:
// deterministic injection (internal/faults), retry + session resume
// (internal/deploy), and graceful degradation (internal/engine). Every
// schedule is slot-indexed and every random choice comes from a SplitRNG
// stream, so each scenario is asserted to reproduce bit-for-bit.

// chaosRuntime arms the fault injector's slot index as slots begin serving
// on the edge, so schedules fire relative to protocol progress, not wall
// time.
type chaosRuntime struct {
	Runtime
	mu sync.Mutex
	fc *faults.Conn
}

func (r *chaosRuntime) setConn(fc *faults.Conn) {
	r.mu.Lock()
	r.fc = fc
	r.mu.Unlock()
}

func (r *chaosRuntime) RunSlot(slot, modelID int) (SlotReport, error) {
	r.mu.Lock()
	if r.fc != nil {
		r.fc.SetSlot(slot)
	}
	r.mu.Unlock()
	return r.Runtime.RunSlot(slot, modelID)
}

// chaosCloud builds a parity-world cloud with the given fault-tolerance
// configuration and a no-op backoff sleeper (delays stay in the schedule;
// the test does not pay them in wall time).
func chaosCloud(t *testing.T, w *parityWorld, edges, horizon int, seed int64, retry RetryConfig, policy engine.ErrorPolicy) (*Cloud, *market.Prices) {
	t.Helper()
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), horizon, numeric.SplitRNG(seed, "chaos-prices"))
	if err != nil {
		t.Fatal(err)
	}
	downloadCosts := make([]float64, edges)
	for i := range downloadCosts {
		downloadCosts[i] = 0.4 + 0.2*float64(i)
	}
	cloud, err := NewCloud(CloudConfig{
		Edges:         edges,
		Horizon:       horizon,
		DownloadCosts: downloadCosts,
		InitialCap:    0.01,
		EmissionRate:  500,
		Prices:        prices,
		EmissionScale: 1e-3,
		Seed:          seed,
		Retry:         retry,
		Policy:        policy,
	}, &paritySource{w: w})
	if err != nil {
		t.Fatal(err)
	}
	cloud.sleep = func(time.Duration) {} // deterministic: no wall-clock backoff
	return cloud, prices
}

// TestChaosKillResumeDeterministic is the acceptance scenario: one edge's
// connection is cut mid-run, the edge redials and resumes its session, and
// the run completes with the exact result a fault-free run produces — plus
// nonzero retry and resume counters. Two full executions must agree
// bit-for-bit.
func TestChaosKillResumeDeterministic(t *testing.T) {
	const (
		edges    = 2
		horizon  = 12
		seed     = int64(21)
		cutSlot  = 5
		hurtEdge = 1
	)

	runOnce := func(inject bool) *Summary {
		w := newParityWorld(seed)
		cloud, _ := chaosCloud(t, w, edges, horizon, seed,
			RetryConfig{Attempts: 3, ResumeWait: 30 * time.Second}, engine.Degrade)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()

		var wg sync.WaitGroup
		edgeErrs := make([]error, edges)
		for i := 0; i < edges; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rt := &parityRuntime{w: w, edge: i, rng: w.edgeRNG(i)}
				if i != hurtEdge || !inject {
					conn, err := net.Dial("tcp", ln.Addr().String())
					if err != nil {
						edgeErrs[i] = err
						return
					}
					defer conn.Close()
					edgeErrs[i] = RunEdge(conn, i, rt)
					return
				}
				// The hurt edge: its first connection is cut while reading the
				// assign after cutSlot; every later dial is clean, so the
				// session resumes exactly once.
				crt := &chaosRuntime{Runtime: rt}
				dials := 0
				dial := func() (net.Conn, error) {
					conn, err := net.Dial("tcp", ln.Addr().String())
					if err != nil {
						return nil, err
					}
					dials++
					if dials > 1 {
						crt.setConn(nil)
						return conn, nil
					}
					fc, err := faults.New(conn, faults.Schedule{{Slot: cutSlot, Kind: faults.CutRead}},
						numeric.SplitRNG(seed, "chaos-fault"), func(time.Duration) {})
					if err != nil {
						conn.Close()
						return nil, err
					}
					crt.setConn(fc)
					return fc, nil
				}
				edgeErrs[i] = RunEdgeResumable(dial, i, crt, 3)
			}(i)
		}

		sum, err := cloud.Serve(ln)
		if err != nil {
			t.Fatalf("cloud.Serve: %v", err)
		}
		wg.Wait()
		for i, err := range edgeErrs {
			if err != nil {
				t.Fatalf("edge %d: %v", i, err)
			}
		}
		return sum
	}

	chaos := runOnce(true)
	if chaos.DroppedSlots != 0 {
		t.Errorf("DroppedSlots = %d, want 0 (the resume healed the cut)", chaos.DroppedSlots)
	}
	if chaos.Retries[hurtEdge] == 0 {
		t.Error("hurt edge burned no retries despite the cut")
	}
	if got, want := chaos.Resumes, []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("Resumes = %v, want %v", got, want)
	}
	for i, d := range chaos.Downtime {
		if d != 0 {
			t.Errorf("Downtime[%d] = %d, want 0", i, d)
		}
	}

	// Same seed, same schedule: the whole summary must reproduce exactly.
	if again := runOnce(true); !reflect.DeepEqual(chaos, again) {
		t.Errorf("chaos run not deterministic:\n first: %+v\n again: %+v", chaos, again)
	}

	// The resume must be observation-transparent: every accounting field
	// matches the fault-free run (only the fault counters differ).
	clean := runOnce(false)
	if !reflect.DeepEqual(chaos.Selections, clean.Selections) {
		t.Errorf("selections diverge from fault-free run:\n chaos: %v\n clean: %v", chaos.Selections, clean.Selections)
	}
	if !reflect.DeepEqual(chaos.Emissions, clean.Emissions) {
		t.Error("emission series diverge from fault-free run")
	}
	if !reflect.DeepEqual(chaos.Decisions, clean.Decisions) {
		t.Error("trade decisions diverge from fault-free run")
	}
	if chaos.ObservedLoss != clean.ObservedLoss || chaos.TradingCost != clean.TradingCost ||
		chaos.Fit != clean.Fit || chaos.Switches != clean.Switches || chaos.Accuracy != clean.Accuracy {
		t.Error("scalar accounting diverges from fault-free run")
	}
}

// deadStepper mirrors the in-process side of a permanently dead edge: it
// serves the parity observations until failAt, then fails every slot,
// reporting the retry budget the TCP stepper would have burned.
type deadStepper struct {
	*parityStepper
	failAt  int
	retries int
}

func (s *deadStepper) Step(slot, arm int, download bool) (engine.Observation, error) {
	if slot >= s.failAt {
		return engine.Observation{Retries: s.retries}, fmt.Errorf("edge dead")
	}
	return s.parityStepper.Step(slot, arm, download)
}

// TestChaosDeadEdgeDegrades kills one edge permanently (cut, no resume) and
// pins the graceful-degradation accounting of the real TCP deployment
// against the in-process engine running the identical failure: same
// selections, same emission series, same downtime — proving a down edge
// contributes exactly the documented fallback and nothing else.
func TestChaosDeadEdgeDegrades(t *testing.T) {
	const (
		edges    = 2
		horizon  = 10
		seed     = int64(33)
		cutSlot  = 4
		deadEdge = 1
		attempts = 2
	)
	// The edge completes cutSlot, then its read of the next assign is cut:
	// the cloud first fails at slot cutSlot+1.
	const downFrom = cutSlot + 1

	runTCP := func() *Summary {
		w := newParityWorld(seed)
		cloud, _ := chaosCloud(t, w, edges, horizon, seed,
			RetryConfig{Attempts: attempts, ResumeWait: time.Millisecond}, engine.Degrade)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()

		var wg sync.WaitGroup
		edgeErrs := make([]error, edges)
		for i := 0; i < edges; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				conn, err := net.Dial("tcp", ln.Addr().String())
				if err != nil {
					edgeErrs[i] = err
					return
				}
				defer conn.Close()
				rt := &parityRuntime{w: w, edge: i, rng: w.edgeRNG(i)}
				if i != deadEdge {
					edgeErrs[i] = RunEdge(conn, i, rt)
					return
				}
				crt := &chaosRuntime{Runtime: rt}
				fc, err := faults.New(conn, faults.Schedule{{Slot: cutSlot, Kind: faults.CutRead}},
					numeric.SplitRNG(seed, "chaos-dead"), func(time.Duration) {})
				if err != nil {
					edgeErrs[i] = err
					return
				}
				crt.setConn(fc)
				// No resume: the edge dies with the connection.
				edgeErrs[i] = RunEdge(fc, i, crt)
			}(i)
		}
		sum, err := cloud.Serve(ln)
		if err != nil {
			t.Fatalf("cloud.Serve: %v", err)
		}
		wg.Wait()
		if edgeErrs[deadEdge] == nil {
			t.Error("dead edge reported a clean run")
		}
		for i, err := range edgeErrs {
			if i != deadEdge && err != nil {
				t.Fatalf("surviving edge %d: %v", i, err)
			}
		}
		return sum
	}

	sum := runTCP()
	if got, want := sum.Downtime[deadEdge], horizon-downFrom; got != want {
		t.Errorf("Downtime[%d] = %d, want %d", deadEdge, got, want)
	}
	if got, want := sum.DroppedSlots, horizon-downFrom; got != want {
		t.Errorf("DroppedSlots = %d, want %d", got, want)
	}
	if got := sum.Retries[deadEdge]; got != attempts {
		t.Errorf("Retries[%d] = %d, want the whole budget %d", deadEdge, got, attempts)
	}
	if sum.DownErrors[deadEdge] == "" {
		t.Error("no down error recorded for the dead edge")
	}
	if sum.DownErrors[0] != "" || sum.Downtime[0] != 0 {
		t.Error("surviving edge shows fault accounting")
	}
	served := 0
	for _, c := range sum.Selections[deadEdge] {
		served += c
	}
	if served != downFrom {
		t.Errorf("dead edge served %d slots in Selections, want %d", served, downFrom)
	}

	// Determinism: the whole summary reproduces.
	if again := runTCP(); !reflect.DeepEqual(sum, again) {
		t.Errorf("degraded run not deterministic:\n first: %+v\n again: %+v", sum, again)
	}

	// Engine parity: the in-process engine with the identical failure under
	// Degrade must produce the identical accounting.
	w := newParityWorld(seed)
	_, prices := chaosCloud(t, w, edges, horizon, seed, RetryConfig{}, engine.Degrade)
	downloadCosts := []float64{0.4, 0.6}
	avgPrice := 0.0
	for t2 := 0; t2 < horizon; t2++ {
		avgPrice += prices.Buy[t2]
	}
	avgPrice /= float64(horizon)
	ctrl, err := core.New(core.Config{
		NumModels:     len(w.metas),
		DownloadCosts: downloadCosts,
		Horizon:       horizon,
		InitialCap:    0.01,
		EmissionScale: 1e-3,
		PriceScale:    avgPrice,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	steppers := make([]engine.EdgeStepper, edges)
	for i := range steppers {
		ps := &parityStepper{w: w, edge: i, rng: w.edgeRNG(i)}
		if i == deadEdge {
			steppers[i] = &deadStepper{parityStepper: ps, failAt: downFrom, retries: attempts}
		} else {
			steppers[i] = ps
		}
	}
	res, err := engine.Run(engine.Config{
		Name:         "chaos-local",
		Horizon:      horizon,
		NumModels:    len(w.metas),
		InitialCap:   0.01,
		EmissionRate: 500,
		Prices:       prices,
		SwitchCosts:  downloadCosts,
		Workers:      edges,
		Policy:       engine.Degrade,
	}, ctrl, steppers)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Selections, sum.Selections) {
		t.Errorf("degraded selections diverge:\n engine: %v\n deploy: %v", res.Selections, sum.Selections)
	}
	if !reflect.DeepEqual(res.Emissions, sum.Emissions) {
		t.Error("degraded emission series diverge")
	}
	if !reflect.DeepEqual(res.Decisions, sum.Decisions) {
		t.Error("degraded trade decisions diverge")
	}
	if !reflect.DeepEqual(res.Downtime, sum.Downtime) || res.DroppedSlots != sum.DroppedSlots {
		t.Error("downtime accounting diverges")
	}
	if sum.Fit != res.Fit || sum.Switches != res.Switches || sum.Accuracy != res.OverallAccuracy {
		t.Error("scalar accounting diverges between engine and deploy degradation")
	}
}

// TestChaosDeadEdgeFailsFastByDefault pins that the zero-value policy keeps
// the historical semantics: the same dead edge aborts the whole run.
func TestChaosDeadEdgeFailsFastByDefault(t *testing.T) {
	const (
		edges   = 2
		horizon = 10
		seed    = int64(33)
		cutSlot = 4
	)
	w := newParityWorld(seed)
	cloud, _ := chaosCloud(t, w, edges, horizon, seed,
		RetryConfig{Attempts: 1, ResumeWait: time.Millisecond}, engine.FailFast)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	for i := 0; i < edges; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			rt := &parityRuntime{w: w, edge: i, rng: w.edgeRNG(i)}
			if i != 1 {
				_ = RunEdge(conn, i, rt) // aborted by the cloud; error expected
				return
			}
			crt := &chaosRuntime{Runtime: rt}
			fc, err := faults.New(conn, faults.Schedule{{Slot: cutSlot, Kind: faults.CutRead}},
				numeric.SplitRNG(seed, "chaos-ff"), func(time.Duration) {})
			if err != nil {
				return
			}
			crt.setConn(fc)
			_ = RunEdge(fc, i, crt)
		}(i)
	}
	_, err = cloud.Serve(ln)
	wg.Wait()
	if err == nil {
		t.Fatal("expected the run to abort under FailFast")
	}
	if !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Errorf("err = %v, want it to report the exhausted retry budget", err)
	}
}

// TestChaosFatalEdgeErrorSkipsRetry pins the error taxonomy end to end: an
// application-level edge failure (MsgError) is fatal, so the retry budget is
// never spent on it and the edge goes down in the failing slot itself.
func TestChaosFatalEdgeErrorSkipsRetry(t *testing.T) {
	const (
		edges    = 2
		horizon  = 8
		seed     = int64(5)
		failSlot = 3
	)
	w := newParityWorld(seed)
	cloud, _ := chaosCloud(t, w, edges, horizon, seed,
		RetryConfig{Attempts: 5, ResumeWait: time.Millisecond}, engine.Degrade)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	for i := 0; i < edges; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			defer conn.Close()
			rt := Runtime(&parityRuntime{w: w, edge: i, rng: w.edgeRNG(i)})
			if i == 1 {
				rt = &failingRuntime{Runtime: rt, failSlot: failSlot}
			}
			_ = RunEdge(conn, i, rt)
		}(i)
	}
	sum, err := cloud.Serve(ln)
	if err != nil {
		t.Fatalf("cloud.Serve: %v", err)
	}
	wg.Wait()
	if got := sum.Retries[1]; got != 0 {
		t.Errorf("Retries[1] = %d, want 0: fatal errors must not consume the retry budget", got)
	}
	if got, want := sum.Downtime[1], horizon-failSlot; got != want {
		t.Errorf("Downtime[1] = %d, want %d (down in the failing slot itself)", got, want)
	}
	if !strings.Contains(sum.DownErrors[1], "edge 1 failed") {
		t.Errorf("DownErrors[1] = %q, want the EdgeError taxonomy", sum.DownErrors[1])
	}
}

// failingRuntime reports an application failure at one slot.
type failingRuntime struct {
	Runtime
	failSlot int
}

func (r *failingRuntime) RunSlot(slot, modelID int) (SlotReport, error) {
	if slot == r.failSlot {
		return SlotReport{}, fmt.Errorf("sensor offline")
	}
	return r.Runtime.RunSlot(slot, modelID)
}

// TestCloudHandshakeTimeoutRejectsSilentClient pins the bounded handshake: a
// client that connects and never speaks is dropped at the deadline while the
// real fleet proceeds, so Serve cannot be wedged by a silent dialer.
func TestCloudHandshakeTimeoutRejectsSilentClient(t *testing.T) {
	const (
		edges   = 1
		horizon = 4
		seed    = int64(9)
	)
	w := newParityWorld(seed)
	cloud, _ := chaosCloud(t, w, edges, horizon, seed, RetryConfig{}, engine.FailFast)
	cloud.cfg.HandshakeTimeout = 150 * time.Millisecond
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// The silent client connects first and never sends a byte.
	silent, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		done <- RunEdge(conn, 0, &parityRuntime{w: w, edge: 0, rng: w.edgeRNG(0)})
	}()

	serveDone := make(chan error, 1)
	go func() {
		_, err := cloud.Serve(ln)
		serveDone <- err
	}()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("cloud.Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve wedged by a silent client")
	}
	if err := <-done; err != nil {
		t.Fatalf("edge: %v", err)
	}
	// The deadline must have closed the silent connection.
	silent.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := silent.Read(make([]byte, 1)); err == nil {
		t.Error("silent connection still open after the handshake deadline")
	}
}

// TestCloudRejectsBadHandshakes covers admission hardening: bad edge ids,
// forged resume tokens, and duplicate initial connections are rejected with
// a typed MsgError while the real fleet completes undisturbed.
func TestCloudRejectsBadHandshakes(t *testing.T) {
	const (
		edges   = 1
		horizon = 4
		seed    = int64(11)
	)
	w := newParityWorld(seed)
	cloud, _ := chaosCloud(t, w, edges, horizon, seed, RetryConfig{}, engine.FailFast)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	expectRejected := func(hello *Message, wantFrag string) {
		t.Helper()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := WriteMessage(conn, hello); err != nil {
			t.Fatal(err)
		}
		reply, err := ReadMessage(conn)
		if err != nil {
			t.Fatalf("no rejection reply: %v", err)
		}
		if reply.Type != MsgError || !strings.Contains(reply.Reason, wantFrag) {
			t.Errorf("reply = %+v, want MsgError mentioning %q", reply, wantFrag)
		}
	}

	edgeDone := make(chan error, 1)
	serveDone := make(chan error, 1)
	go func() {
		_, err := cloud.Serve(ln)
		serveDone <- err
	}()

	// Rejections racing admission of the real edge must not disturb it.
	expectRejected(&Message{Type: MsgHello, EdgeID: 7}, "bad edge id")
	expectRejected(&Message{Type: MsgHello, EdgeID: 0, Resume: true, ResumeToken: "forged"}, "bad resume token")
	expectRejected(&Message{Type: MsgDone}, "expected Hello")

	// The real edge parks in its last slot until released, so the duplicate
	// probe below is guaranteed to race an in-progress run, not a finished
	// one.
	release := make(chan struct{})
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			edgeDone <- err
			return
		}
		defer conn.Close()
		rt := &gatedRuntime{
			Runtime:  &parityRuntime{w: w, edge: 0, rng: w.edgeRNG(0)},
			gateSlot: horizon - 1,
			release:  release,
		}
		edgeDone <- RunEdge(conn, 0, rt)
	}()
	// Wait for the real edge to claim its slot, then try to steal it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		link := cloud.linkFor(0)
		link.mu.Lock()
		claimed := link.claimed
		link.mu.Unlock()
		if claimed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("real edge never claimed its slot")
		}
		time.Sleep(time.Millisecond)
	}
	expectRejected(&Message{Type: MsgHello, EdgeID: 0}, "duplicate edge id")
	close(release)

	if err := <-serveDone; err != nil {
		t.Fatalf("cloud.Serve: %v", err)
	}
	if err := <-edgeDone; err != nil {
		t.Fatalf("edge: %v", err)
	}
}

// gatedRuntime parks one slot until released, holding a run open.
type gatedRuntime struct {
	Runtime
	gateSlot int
	release  <-chan struct{}
}

func (r *gatedRuntime) RunSlot(slot, modelID int) (SlotReport, error) {
	if slot == r.gateSlot {
		<-r.release
	}
	return r.Runtime.RunSlot(slot, modelID)
}
