package deploy

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// runMonolithic serves the parity world through the single-process Cloud.
func runMonolithic(t *testing.T, w *parityWorld, cfg CloudConfig) *Summary {
	t.Helper()
	cloud, err := NewCloud(cfg, &paritySource{w: w})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	edgeErrs := make([]error, cfg.Edges)
	for i := 0; i < cfg.Edges; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				edgeErrs[i] = err
				return
			}
			defer conn.Close()
			edgeErrs[i] = RunEdge(conn, i, &parityRuntime{w: w, edge: i, rng: w.edgeRNG(i)})
		}(i)
	}
	sum, err := cloud.Serve(ln)
	if err != nil {
		t.Fatalf("cloud.Serve: %v", err)
	}
	wg.Wait()
	for i, err := range edgeErrs {
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
	}
	return sum
}

// runRegional serves the same world through a root plus `regions` regional
// coordinators, each admitting its shard's edges on its own listener.
func runRegional(t *testing.T, w *parityWorld, cfg CloudConfig, regions int) *Summary {
	t.Helper()
	root, err := NewRoot(RootConfig{
		Edges:         cfg.Edges,
		Regions:       regions,
		Horizon:       cfg.Horizon,
		DownloadCosts: cfg.DownloadCosts,
		InitialCap:    cfg.InitialCap,
		EmissionRate:  cfg.EmissionRate,
		Prices:        cfg.Prices,
		EmissionScale: cfg.EmissionScale,
		Seed:          cfg.Seed,
		NumModels:     len(w.metas),
		Policy:        cfg.Policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootLn.Close()

	ranges := engine.PartitionEdges(cfg.Edges, regions)
	var wg sync.WaitGroup
	regionErrs := make([]error, regions)
	edgeErrs := make([]error, cfg.Edges)
	for r, rg := range ranges {
		edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer edgeLn.Close()
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			upstream, err := net.Dial("tcp", rootLn.Addr().String())
			if err != nil {
				regionErrs[r] = err
				return
			}
			defer upstream.Close()
			regionErrs[r] = RunRegion(upstream, edgeLn, RegionConfig{
				RegionID: r,
				Source:   &paritySource{w: w},
				Seed:     cfg.Seed + int64(r),
			})
		}(r)
		for i := rg.Start; i < rg.Start+rg.Count; i++ {
			wg.Add(1)
			go func(i int, addr string) {
				defer wg.Done()
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					edgeErrs[i] = err
					return
				}
				defer conn.Close()
				edgeErrs[i] = RunEdge(conn, i, &parityRuntime{w: w, edge: i, rng: w.edgeRNG(i)})
			}(i, edgeLn.Addr().String())
		}
	}
	sum, err := root.Serve(rootLn)
	if err != nil {
		t.Fatalf("root.Serve: %v", err)
	}
	wg.Wait()
	for r, err := range regionErrs {
		if err != nil {
			t.Fatalf("region %d: %v", r, err)
		}
	}
	for i, err := range edgeErrs {
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
	}
	return sum
}

// TestRegionalCloudParity is the regional tier's bit-identity pin: a root
// with two (and three) regional coordinators over loopback TCP must produce
// exactly the monolithic cloud's Summary — selections, trades, emissions,
// fit, accuracy, everything — because the shard deltas carry per-edge terms
// that the root folds in the canonical serial order.
func TestRegionalCloudParity(t *testing.T) {
	const (
		edges   = 5
		horizon = 20
		seed    = int64(33)
	)
	w := newParityWorld(seed)
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), horizon, numeric.SplitRNG(seed, "parity-prices"))
	if err != nil {
		t.Fatal(err)
	}
	downloadCosts := make([]float64, edges)
	for i := range downloadCosts {
		downloadCosts[i] = 0.4 + 0.2*float64(i)
	}
	cfg := CloudConfig{
		Edges:         edges,
		Horizon:       horizon,
		DownloadCosts: downloadCosts,
		InitialCap:    0.01,
		EmissionRate:  500,
		Prices:        prices,
		EmissionScale: 1e-3,
		Seed:          seed,
	}

	mono := runMonolithic(t, w, cfg)
	for _, regions := range []int{2, 3} {
		regional := runRegional(t, w, cfg, regions)
		if !reflect.DeepEqual(mono, regional) {
			t.Errorf("regions=%d: regional Summary diverged from monolithic:\n mono: %+v\n regn: %+v",
				regions, mono, regional)
		}
	}
}

// TestRootValidation covers the root's configuration checks.
func TestRootValidation(t *testing.T) {
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), 10, numeric.SplitRNG(1, "prices"))
	if err != nil {
		t.Fatal(err)
	}
	base := RootConfig{
		Edges: 4, Regions: 2, Horizon: 10,
		DownloadCosts: []float64{1, 1, 1, 1},
		InitialCap:    1, EmissionRate: 500,
		Prices: prices, Seed: 1, NumModels: 3,
	}
	if _, err := NewRoot(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, mutate := range map[string]func(*RootConfig){
		"no edges":       func(c *RootConfig) { c.Edges = 0 },
		"no regions":     func(c *RootConfig) { c.Regions = 0 },
		"too many":       func(c *RootConfig) { c.Regions = 5 },
		"costs mismatch": func(c *RootConfig) { c.DownloadCosts = []float64{1} },
		"nil prices":     func(c *RootConfig) { c.Prices = nil },
		"no models":      func(c *RootConfig) { c.NumModels = 0 },
		"bad policy":     func(c *RootConfig) { c.Policy = engine.ErrorPolicy(7) },
		"bad rate":       func(c *RootConfig) { c.EmissionRate = -1 },
		"short prices":   func(c *RootConfig) { c.Horizon = 99 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := NewRoot(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestRunRegionRejectsZooMismatch pins the welcome validation: a region
// whose zoo size disagrees with the root's announcement must refuse to run.
func TestRunRegionRejectsZooMismatch(t *testing.T) {
	w := newParityWorld(5)
	rootSide, regionSide := net.Pipe()
	defer rootSide.Close()
	done := make(chan error, 1)
	go func() {
		done <- RunRegion(regionSide, nil, RegionConfig{RegionID: 0, Source: &paritySource{w: w}, Seed: 5})
	}()
	if m, err := ReadMessage(rootSide); err != nil || m.Type != MsgRegionHello {
		t.Fatalf("hello: %v %v", m, err)
	}
	if err := WriteMessage(rootSide, &Message{
		Type: MsgRegionWelcome, Start: 0, Count: 2, Horizon: 5, NumModels: len(w.metas) + 1,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected zoo-mismatch error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("region hung on zoo mismatch")
	}
}

// TestRegionalFailFastMatchesMonolithicError pins the error path: an edge
// that fails mid-run under FailFast aborts the regional run with the exact
// error string the engine reports, forwarded verbatim through the region.
func TestRegionalFailFastMatchesMonolithicError(t *testing.T) {
	const edges, horizon, seed = 4, 12, int64(9)
	w := newParityWorld(seed)
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), horizon, numeric.SplitRNG(seed, "parity-prices"))
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, edges)
	for i := range costs {
		costs[i] = 0.5
	}
	root, err := NewRoot(RootConfig{
		Edges: edges, Regions: 2, Horizon: horizon,
		DownloadCosts: costs, InitialCap: 0.01, EmissionRate: 500,
		Prices: prices, Seed: seed, NumModels: len(w.metas),
	})
	if err != nil {
		t.Fatal(err)
	}
	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootLn.Close()

	const failEdge, failSlot = 2, 4
	ranges := engine.PartitionEdges(edges, 2)
	var wg sync.WaitGroup
	for r, rg := range ranges {
		edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer edgeLn.Close()
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			upstream, err := net.Dial("tcp", rootLn.Addr().String())
			if err != nil {
				return
			}
			defer upstream.Close()
			_ = RunRegion(upstream, edgeLn, RegionConfig{RegionID: r, Source: &paritySource{w: w}, Seed: seed})
		}(r)
		for i := rg.Start; i < rg.Start+rg.Count; i++ {
			wg.Add(1)
			go func(i int, addr string) {
				defer wg.Done()
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				defer conn.Close()
				var rt Runtime = &parityRuntime{w: w, edge: i, rng: w.edgeRNG(i)}
				if i == failEdge {
					rt = &failingRuntime{Runtime: rt, failSlot: failSlot}
				}
				_ = RunEdge(conn, i, rt)
			}(i, edgeLn.Addr().String())
		}
	}
	_, err = root.Serve(rootLn)
	wg.Wait()
	if err == nil {
		t.Fatal("expected the failing edge to abort the run")
	}
	want := fmt.Sprintf("engine: edge %d slot %d:", failEdge, failSlot)
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Errorf("error %q does not carry the engine's FailFast prefix %q", got, want)
	}
}
