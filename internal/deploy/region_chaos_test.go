package deploy

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/faults"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// The region-tier chaos suite: a root plus regional coordinators over
// loopback TCP, with deterministic fault schedules on the region links —
// connections cut between slots, delta frames truncated mid-body, graceful
// departures with mid-run shard rebalancing, standby coordinators adopting
// orphaned shards, and quorum-loss degradation. The contract under test is
// the elastic tier's bit-identity promise: any schedule that keeps every
// slot served must reproduce the fault-free Summary exactly, and a degraded
// run must reproduce the equivalent in-process engine.Degrade run exactly.

// regionChaosSpec parameterizes one regional run under a fault schedule.
type regionChaosSpec struct {
	edges, regions, horizon int
	seed                    int64
	policy                  engine.ErrorPolicy
	quorum                  int
	target                  func(shard int, live []int) int
	rootRetry, regionRetry  RetryConfig

	// spares lists standby coordinator ids (>= regions) that join at start
	// and serve only what rebalancing adopts into them.
	spares []int
	// leaveBefore makes a coordinator announce departure instead of serving
	// its first assign at or past the given slot.
	leaveBefore map[int]int
	// cutUpstream wraps a coordinator's first upstream connection in a
	// faults.Conn with the given schedule; redials are clean.
	cutUpstream map[int]faults.Schedule
	// adoptTo names the listener a departed coordinator's released edges
	// redial (the expected adopter). Absent means nobody adopts the shard —
	// its edges are expected to fail.
	adoptTo map[int]int
}

// regionChaosRun is everything one harness run observed.
type regionChaosRun struct {
	sum        *Summary
	rootErr    error
	regionErrs map[int]error
	edgeErrs   []error
}

func defaultChaosRetry() RetryConfig {
	return RetryConfig{
		Attempts:   3,
		BaseDelay:  time.Millisecond,
		MaxDelay:   4 * time.Millisecond,
		ResumeWait: 30 * time.Second,
	}
}

// runRegionChaos drives one full regional deployment under the spec's fault
// schedule and returns everything it observed. Error assertions are the
// caller's: which errors are expected depends on the schedule.
func runRegionChaos(t *testing.T, spec regionChaosSpec) *regionChaosRun {
	t.Helper()
	if spec.rootRetry == (RetryConfig{}) {
		spec.rootRetry = defaultChaosRetry()
	}
	if spec.regionRetry == (RetryConfig{}) {
		spec.regionRetry = defaultChaosRetry()
	}
	w := newParityWorld(spec.seed)
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), spec.horizon, numeric.SplitRNG(spec.seed, "region-chaos-prices"))
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, spec.edges)
	for i := range costs {
		costs[i] = 0.4 + 0.2*float64(i)
	}
	root, err := NewRoot(RootConfig{
		Edges:           spec.edges,
		Regions:         spec.regions,
		Horizon:         spec.horizon,
		DownloadCosts:   costs,
		InitialCap:      0.01,
		EmissionRate:    500,
		Prices:          prices,
		EmissionScale:   1e-3,
		Seed:            spec.seed,
		NumModels:       len(w.metas),
		Policy:          spec.policy,
		Retry:           spec.rootRetry,
		RegionQuorum:    spec.quorum,
		RebalanceTarget: spec.target,
	})
	if err != nil {
		t.Fatal(err)
	}
	root.sleep = func(time.Duration) {} // backoff replays with zero wall clock

	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootLn.Close()

	ids := make([]int, 0, spec.regions+len(spec.spares))
	for r := 0; r < spec.regions; r++ {
		ids = append(ids, r)
	}
	ids = append(ids, spec.spares...)

	edgeLns := make(map[int]net.Listener, len(ids))
	gone := make(map[int]chan struct{}, len(ids))
	for _, id := range ids {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close() //nolint:errcheck // departed coordinators already closed theirs
		edgeLns[id] = ln
		gone[id] = make(chan struct{})
	}

	out := &regionChaosRun{
		regionErrs: make(map[int]error, len(ids)),
		edgeErrs:   make([]error, spec.edges),
	}
	var regionMu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			var fcMu sync.Mutex
			var fc *faults.Conn
			sched := spec.cutUpstream[id]
			dials := 0
			dial := func() (net.Conn, error) {
				conn, err := net.Dial("tcp", rootLn.Addr().String())
				if err != nil {
					return nil, err
				}
				dials++
				if dials == 1 && len(sched) > 0 {
					f, ferr := faults.New(conn, sched, numeric.SplitRNG(spec.seed, fmt.Sprintf("region-chaos-fault-%d", id)), func(time.Duration) {})
					if ferr != nil {
						conn.Close()
						return nil, ferr
					}
					fcMu.Lock()
					fc = f
					fcMu.Unlock()
					return f, nil
				}
				fcMu.Lock()
				fc = nil // redials are clean
				fcMu.Unlock()
				return conn, nil
			}
			err := RunRegionResumable(dial, edgeLns[id], RegionConfig{
				RegionID:        id,
				Source:          &paritySource{w: w},
				Seed:            spec.seed + int64(id),
				Retry:           spec.regionRetry,
				LeaveBeforeSlot: spec.leaveBefore[id],
				OnSlot: func(slot int) {
					fcMu.Lock()
					if fc != nil {
						fc.SetSlot(slot)
					}
					fcMu.Unlock()
				},
			}, 5)
			// Stop accepting edges before announcing the coordinator gone: a
			// released edge that redials a closed listener fails fast instead
			// of sitting unanswered in the accept backlog.
			edgeLns[id].Close()
			close(gone[id])
			regionMu.Lock()
			out.regionErrs[id] = err
			regionMu.Unlock()
		}()
	}

	for r, rg := range engine.PartitionEdges(spec.edges, spec.regions) {
		for i := rg.Start; i < rg.Start+rg.Count; i++ {
			i, home := i, r
			wg.Add(1)
			go func() {
				defer wg.Done()
				dials := 0
				dial := func() (net.Conn, error) {
					dials++
					if dials == 1 {
						return net.Dial("tcp", edgeLns[home].Addr().String())
					}
					// In this suite edges have no faults of their own, so an
					// edge only ever redials because its home coordinator
					// released it: wait out the departure, then follow the
					// shard to its adopter.
					<-gone[home]
					adopter, ok := spec.adoptTo[home]
					if !ok {
						return nil, fmt.Errorf("edge %d: home region %d left and nobody adopted its shard", i, home)
					}
					time.Sleep(2 * time.Millisecond) // let the adopt frame land before this attempt
					return net.Dial("tcp", edgeLns[adopter].Addr().String())
				}
				out.edgeErrs[i] = RunEdgeResumable(dial, i, &parityRuntime{w: w, edge: i, rng: w.edgeRNG(i)}, 50)
			}()
		}
	}

	out.sum, out.rootErr = root.Serve(rootLn)
	wg.Wait()
	return out
}

// requireQuiet asserts the run completed with no root, region, or edge
// errors.
func requireQuiet(t *testing.T, run *regionChaosRun) {
	t.Helper()
	if run.rootErr != nil {
		t.Fatalf("root.Serve: %v", run.rootErr)
	}
	for id, err := range run.regionErrs {
		if err != nil {
			t.Fatalf("region %d: %v", id, err)
		}
	}
	for i, err := range run.edgeErrs {
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
	}
}

// stripElasticity clears the region-tier fault accounting so a recovered
// run's Summary can be compared deep-equal against a fault-free one.
func stripElasticity(s *Summary) *Summary {
	cp := *s
	cp.RegionResumes = nil
	cp.RegionRetries = nil
	cp.Rebalances = nil
	return &cp
}

// TestRegionChaosKillResumeDeterministic cuts one coordinator's upstream
// link between slots: the coordinator redials, resumes from the root's fold
// watermark, and the run completes with the fault-free Summary bit for bit.
// The recovery itself must also replay deterministically.
func TestRegionChaosKillResumeDeterministic(t *testing.T) {
	const cutSlot = 5
	base := regionChaosSpec{edges: 4, regions: 2, horizon: 12, seed: 41, policy: engine.Degrade}
	clean := runRegionChaos(t, base)
	requireQuiet(t, clean)
	if clean.sum.RegionResumes != nil || clean.sum.RegionRetries != nil || clean.sum.Rebalances != nil {
		t.Fatalf("fault-free run reports elasticity accounting: %+v", clean.sum)
	}

	spec := base
	spec.cutUpstream = map[int]faults.Schedule{1: faults.KillAt(cutSlot)}
	chaos := runRegionChaos(t, spec)
	requireQuiet(t, chaos)
	if got, want := chaos.sum.RegionResumes, map[int]int{1: 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("RegionResumes = %v, want %v", got, want)
	}
	if got := chaos.sum.RegionRetries; len(got) != 2 || got[0] != 0 || got[1] == 0 {
		t.Errorf("RegionRetries = %v, want retries burned on shard 1 only", got)
	}
	if chaos.sum.Rebalances != nil {
		t.Errorf("Rebalances = %v, want nil (the link resumed in place)", chaos.sum.Rebalances)
	}
	if chaos.sum.DroppedSlots != 0 {
		t.Errorf("recovered run dropped %d slots", chaos.sum.DroppedSlots)
	}
	if !reflect.DeepEqual(stripElasticity(chaos.sum), clean.sum) {
		t.Errorf("recovered Summary diverged from fault-free run:\n chaos: %+v\n clean: %+v",
			stripElasticity(chaos.sum), clean.sum)
	}

	again := runRegionChaos(t, spec)
	requireQuiet(t, again)
	if !reflect.DeepEqual(chaos.sum, again.sum) {
		t.Errorf("chaos recovery is not deterministic:\n first:  %+v\n second: %+v", chaos.sum, again.sum)
	}
}

// TestRegionChaosTruncatedDelta tears a ShardDelta frame mid-body: the root
// sees a mid-frame EOF, the coordinator (whose own write already failed)
// resumes and answers the root's repeated assign from its delta cache
// instead of re-stepping the slot, so nothing is double-drawn or
// double-folded.
func TestRegionChaosTruncatedDelta(t *testing.T) {
	const tearSlot = 4
	base := regionChaosSpec{edges: 4, regions: 2, horizon: 12, seed: 42, policy: engine.Degrade}
	clean := runRegionChaos(t, base)
	requireQuiet(t, clean)

	spec := base
	spec.cutUpstream = map[int]faults.Schedule{1: faults.TruncateAt(tearSlot)}
	chaos := runRegionChaos(t, spec)
	requireQuiet(t, chaos)
	if got, want := chaos.sum.RegionResumes, map[int]int{1: 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("RegionResumes = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(stripElasticity(chaos.sum), clean.sum) {
		t.Errorf("recovered Summary diverged from fault-free run:\n chaos: %+v\n clean: %+v",
			stripElasticity(chaos.sum), clean.sum)
	}
}

// TestRegionChaosLeaveRebalance makes one coordinator depart gracefully
// mid-run: the root re-cuts at the slot boundary, hands the orphaned shard
// to the survivor via a ShardCheckpoint, the released edges redial the
// adopter and resume their sessions, and the Summary still matches the
// fault-free run bit for bit.
func TestRegionChaosLeaveRebalance(t *testing.T) {
	const leaveSlot = 6
	base := regionChaosSpec{edges: 4, regions: 2, horizon: 12, seed: 43, policy: engine.Degrade}
	clean := runRegionChaos(t, base)
	requireQuiet(t, clean)

	spec := base
	spec.leaveBefore = map[int]int{1: leaveSlot}
	spec.adoptTo = map[int]int{1: 0}
	chaos := runRegionChaos(t, spec)
	requireQuiet(t, chaos)
	if got, want := chaos.sum.Rebalances, []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("Rebalances = %v, want %v", got, want)
	}
	if chaos.sum.RegionResumes != nil {
		t.Errorf("RegionResumes = %v, want nil (departure is not a resume)", chaos.sum.RegionResumes)
	}
	if chaos.sum.DroppedSlots != 0 {
		t.Errorf("rebalanced run dropped %d slots", chaos.sum.DroppedSlots)
	}
	if !reflect.DeepEqual(stripElasticity(chaos.sum), clean.sum) {
		t.Errorf("rebalanced Summary diverged from fault-free run:\n chaos: %+v\n clean: %+v",
			stripElasticity(chaos.sum), clean.sum)
	}

	again := runRegionChaos(t, spec)
	requireQuiet(t, again)
	if !reflect.DeepEqual(chaos.sum, again.sum) {
		t.Errorf("rebalance is not deterministic:\n first:  %+v\n second: %+v", chaos.sum, again.sum)
	}
}

// TestRegionChaosLateJoinAdoption adds a standby coordinator (id above the
// initial membership) that joins at start with an empty shard; when a
// coordinator departs, RebalanceTarget steers the orphaned shard onto the
// newcomer instead of the surviving initial region.
func TestRegionChaosLateJoinAdoption(t *testing.T) {
	const leaveSlot = 5
	base := regionChaosSpec{edges: 4, regions: 2, horizon: 12, seed: 44, policy: engine.Degrade}
	clean := runRegionChaos(t, base)
	requireQuiet(t, clean)

	spec := base
	spec.spares = []int{2}
	spec.leaveBefore = map[int]int{1: leaveSlot}
	spec.adoptTo = map[int]int{1: 2}
	spec.target = func(shard int, live []int) int { return 2 }
	chaos := runRegionChaos(t, spec)
	requireQuiet(t, chaos)
	if got, want := chaos.sum.Rebalances, []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("Rebalances = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(stripElasticity(chaos.sum), clean.sum) {
		t.Errorf("late-join Summary diverged from fault-free run:\n chaos: %+v\n clean: %+v",
			stripElasticity(chaos.sum), clean.sum)
	}
}

// lostShardStepper fails like an edge whose region link vanished: it serves
// normally until failSlot and then returns the canonical degrade reason.
type lostShardStepper struct {
	inner    engine.EdgeStepper
	failSlot int
	reason   string
}

func (s *lostShardStepper) Step(slot, arm int, download bool) (engine.Observation, error) {
	if slot >= s.failSlot {
		return engine.Observation{}, errors.New(s.reason)
	}
	return s.inner.Step(slot, arm, download)
}

// TestRegionChaosQuorumDegrade drops the live membership below RegionQuorum:
// instead of rebalancing the departed coordinator's shard, the root degrades
// it with the engine's down-slot semantics. The accounting is pinned against
// an in-process sharded run whose steppers fail with the same canonical
// reason at the same slot — byte-identical Summaries.
func TestRegionChaosQuorumDegrade(t *testing.T) {
	const (
		edges     = 4
		regions   = 2
		horizon   = 12
		seed      = int64(47)
		leaveSlot = 6
	)
	spec := regionChaosSpec{
		edges: edges, regions: regions, horizon: horizon, seed: seed,
		policy:      engine.Degrade,
		quorum:      2, // one survivor is below quorum: degrade, don't rebalance
		leaveBefore: map[int]int{1: leaveSlot},
		// no adoptTo: the departed shard's edges are orphaned for good
	}
	chaos := runRegionChaos(t, spec)
	if chaos.rootErr != nil {
		t.Fatalf("root.Serve: %v", chaos.rootErr)
	}
	for id := 0; id < regions; id++ {
		if err := chaos.regionErrs[id]; err != nil {
			t.Fatalf("region %d: %v", id, err)
		}
	}
	ranges := engine.PartitionEdges(edges, regions)
	for i := 0; i < edges; i++ {
		err := chaos.edgeErrs[i]
		if i < ranges[1].Start && err != nil {
			t.Fatalf("surviving edge %d: %v", i, err)
		}
		if i >= ranges[1].Start && err == nil {
			t.Fatalf("orphaned edge %d finished cleanly, expected a dropped session", i)
		}
	}
	if chaos.sum.RegionResumes != nil || chaos.sum.Rebalances != nil {
		t.Errorf("degraded run reports resumes/rebalances: %+v", chaos.sum)
	}
	reason := fmt.Sprintf("deploy: region link 1 lost at slot %d", leaveSlot)
	for i := ranges[1].Start; i < edges; i++ {
		if got := chaos.sum.DownErrors[i]; got != reason {
			t.Errorf("edge %d down error = %q, want %q", i, got, reason)
		}
		if got, want := chaos.sum.Downtime[i], horizon-leaveSlot; got != want {
			t.Errorf("edge %d downtime = %d, want %d", i, got, want)
		}
	}

	// The in-process pin: same world, same controller, shard 1's steppers
	// fail with the canonical reason at the degrade slot.
	w := newParityWorld(seed)
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), horizon, numeric.SplitRNG(seed, "region-chaos-prices"))
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, edges)
	for i := range costs {
		costs[i] = 0.4 + 0.2*float64(i)
	}
	ctrl, err := core.New(core.Config{
		NumModels:     len(w.metas),
		DownloadCosts: costs,
		Horizon:       horizon,
		InitialCap:    0.01,
		EmissionScale: 1e-3,
		PriceScale:    avgBuyPrice(prices, horizon),
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]engine.ShardStepper, regions)
	for k, rg := range ranges {
		steppers := make([]engine.EdgeStepper, rg.Count)
		for j := 0; j < rg.Count; j++ {
			i := rg.Start + j
			var es engine.EdgeStepper = &parityStepper{w: w, edge: i, rng: w.edgeRNG(i)}
			if k == 1 {
				es = &lostShardStepper{inner: es, failSlot: leaveSlot, reason: reason}
			}
			steppers[j] = es
		}
		sh, err := engine.NewShard(engine.ShardConfig{Start: rg.Start, Workers: rg.Count, Policy: engine.Degrade}, steppers)
		if err != nil {
			t.Fatal(err)
		}
		shards[k] = sh
	}
	res, err := engine.RunSharded(engine.Config{
		Name:         "deploy",
		Horizon:      horizon,
		NumModels:    len(w.metas),
		InitialCap:   0.01,
		EmissionRate: 500,
		Prices:       prices,
		SwitchCosts:  costs,
		Policy:       engine.Degrade,
	}, ctrl, shards)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryFromResult(res, make([]int, edges))
	if !reflect.DeepEqual(chaos.sum, want) {
		t.Errorf("degraded Summary diverged from the in-process Degrade run:\n tcp:    %+v\n engine: %+v",
			chaos.sum, want)
	}
}

// TestRegionChaosFailFastAbortsOnDeparture pins the conservative policy: a
// departing coordinator under engine.FailFast aborts the run instead of
// rebalancing.
func TestRegionChaosFailFastAbortsOnDeparture(t *testing.T) {
	const leaveSlot = 5
	spec := regionChaosSpec{
		edges: 4, regions: 2, horizon: 12, seed: 49,
		policy:      engine.FailFast,
		leaveBefore: map[int]int{1: leaveSlot},
	}
	chaos := runRegionChaos(t, spec)
	if chaos.rootErr == nil {
		t.Fatal("expected the departure to abort the FailFast run")
	}
	want := fmt.Sprintf("region link 1 departed at slot %d", leaveSlot)
	if !strings.Contains(chaos.rootErr.Error(), want) {
		t.Errorf("root error %q does not name the departure %q", chaos.rootErr, want)
	}
}

// TestRegionChaosPropertySchedules is the tentpole's property pin: for
// random (kill slot, killed region, failure mode, rebalance target)
// schedules, the root's final Summary is byte-identical to the fault-free
// run over the same world.
func TestRegionChaosPropertySchedules(t *testing.T) {
	const (
		edges   = 6
		regions = 3
		horizon = 12
	)
	rng := numeric.SplitRNG(61, "region-chaos-schedules")
	for trial := 0; trial < 6; trial++ {
		seed := int64(100 + trial)
		mode := "resume"
		if rng.Intn(2) == 1 {
			mode = "leave"
		}
		victim := rng.Intn(regions)
		slot := 2 + rng.Intn(horizon-4)
		base := regionChaosSpec{edges: edges, regions: regions, horizon: horizon, seed: seed, policy: engine.Degrade}
		spec := base
		name := fmt.Sprintf("trial%d-%s-region%d-slot%d", trial, mode, victim, slot)
		if mode == "resume" {
			spec.cutUpstream = map[int]faults.Schedule{victim: faults.KillAt(slot)}
		} else {
			target := (victim + 1 + rng.Intn(regions-1)) % regions
			spec.leaveBefore = map[int]int{victim: slot}
			spec.adoptTo = map[int]int{victim: target}
			spec.target = func(shard int, live []int) int { return target }
			name += fmt.Sprintf("-adopt%d", target)
		}
		t.Run(name, func(t *testing.T) {
			clean := runRegionChaos(t, base)
			requireQuiet(t, clean)
			chaos := runRegionChaos(t, spec)
			requireQuiet(t, chaos)
			if !reflect.DeepEqual(stripElasticity(chaos.sum), clean.sum) {
				t.Errorf("summary diverged from the fault-free run:\n chaos: %+v\n clean: %+v",
					stripElasticity(chaos.sum), clean.sum)
			}
		})
	}
}

// TestShardDeltaReplayFoldsToCleanBytes pins the root's delta-dedup
// discipline at the unit level: duplicate, reordered, and partially
// overlapping replayed MsgShardDelta streams must fold to exactly the bytes
// of the clean stream — each slot validated and admitted once, every replay
// skipped.
func TestShardDeltaReplayFoldsToCleanBytes(t *testing.T) {
	const start, count, slots = 3, 2, 5
	mk := func(slot int) *Message {
		d := &engine.SlotDelta{Start: start}
		for j := 0; j < count; j++ {
			d.Edges = append(d.Edges, engine.EdgeDelta{
				Loss:      1.25*float64(slot) + 0.5*float64(j),
				InferLoss: float64(slot) + 0.25*float64(j),
				Compute:   0.25,
				Correct:   slot + j,
				Samples:   slot + j + 2,
				InferKWh:  1e-5 * float64(slot+1),
				Served:    true,
			})
		}
		return &Message{Type: MsgShardDelta, Slot: slot, Delta: d}
	}
	// fold replays the root's admission loop over a stream of slot numbers
	// and returns the JSON bytes of the folded sequence.
	fold := func(t *testing.T, stream []int) []byte {
		t.Helper()
		var dedup engine.SlotDeduper
		var folded []engine.SlotDelta
		for _, s := range stream {
			m := mk(s)
			slot := dedup.Next() // the slot the root is waiting on
			if m.Slot != slot && dedup.Seen(m.Slot) {
				continue // replayed duplicate of an already-folded slot
			}
			if err := ValidateDelta(m, start, count, slot); err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			if !dedup.Admit(slot) {
				t.Fatalf("slot %d rejected by its own watermark", slot)
			}
			folded = append(folded, *m.Delta)
		}
		if got := dedup.Next(); got != slots {
			t.Fatalf("folded %d slots, want %d", got, slots)
		}
		b, err := json.Marshal(folded)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	clean := fold(t, []int{0, 1, 2, 3, 4})
	for name, stream := range map[string][]int{
		"duplicate every frame": {0, 0, 1, 1, 2, 2, 3, 3, 4, 4},
		"reordered replay":      {0, 1, 2, 2, 1, 0, 3, 4},
		"partially overlapping": {0, 1, 2, 1, 2, 3, 2, 3, 4},
	} {
		if got := fold(t, stream); !bytes.Equal(got, clean) {
			t.Errorf("%s: replayed fold diverged from the clean fold", name)
		}
	}
}
