package deploy

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"

	"github.com/carbonedge/carbonedge/internal/nn"
)

// Runtime is the edge-local inference engine: it loads shipped checkpoints
// and serves one slot of traffic.
type Runtime interface {
	// Welcome delivers the cloud's model metadata before the first slot.
	Welcome(models []ModelMeta) error
	// LoadModel installs the checkpoint for modelID (called on switches).
	LoadModel(modelID int, checkpoint []byte) error
	// RunSlot serves the slot's local traffic with the given model and
	// returns the observation the cloud needs.
	RunSlot(slot, modelID int) (SlotReport, error)
}

// SlotReport is an edge's end-of-slot observation.
type SlotReport struct {
	AvgLoss     float64 // average squared inference loss L_{i,n}^t
	Correct     int
	Samples     int
	EnergyKWh   float64 // inference energy consumed this slot
	CompSeconds float64 // measured per-sample computation cost v_{i,n}
}

// RunEdge connects an edge agent: handshake, then serve Assign frames until
// Done. It returns nil on a clean Done and an error otherwise. It makes a
// single attempt on a single connection; fault-tolerant agents use an
// EdgeSession (or RunEdgeResumable) to survive connection loss.
func RunEdge(conn net.Conn, edgeID int, rt Runtime) error {
	s, err := NewEdgeSession(edgeID, rt)
	if err != nil {
		return err
	}
	_, err = s.Run(conn)
	return err
}

// EdgeSession is the resumable edge-side state of one cloud run: the zoo
// metadata and resume token from the initial Welcome, plus a cache of the
// last completed report. The session outlives any single connection — when a
// connection drops, redial and call Run again; the session re-handshakes
// with Resume set (skipping the zoo metadata) and answers a duplicate Assign
// from its report cache instead of re-serving the slot, so the edge's
// stochastic serving stream is never double-drawn and the cloud never
// double-counts a slot whose report was lost in flight.
type EdgeSession struct {
	edgeID int
	rt     Runtime

	welcomed  bool
	token     string
	doneSlots int      // completed slots (reports produced, possibly unacked)
	last      *Message // cached report of slot doneSlots-1
}

// NewEdgeSession builds a fresh session for one run.
func NewEdgeSession(edgeID int, rt Runtime) (*EdgeSession, error) {
	if rt == nil {
		return nil, fmt.Errorf("deploy: nil runtime")
	}
	if edgeID < 0 {
		return nil, fmt.Errorf("deploy: negative edge id %d", edgeID)
	}
	return &EdgeSession{edgeID: edgeID, rt: rt}, nil
}

// Run serves the session over one connection until it ends. done reports
// whether the session is over: a clean Done (err == nil), a cloud abort, or
// a fatal local/protocol failure. done == false means the connection itself
// failed (err is the transient cause) and the caller may redial and call Run
// again to resume the session.
func (s *EdgeSession) Run(conn net.Conn) (done bool, err error) {
	if err := s.handshake(conn); err != nil {
		return !Transient(err), err
	}
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return !Transient(err), fmt.Errorf("deploy: read: %w", err)
		}
		switch m.Type {
		case MsgDone:
			return true, nil
		case MsgError:
			return true, fmt.Errorf("deploy: cloud aborted: %s", m.Reason) //lint:allow errtaxonomy abort reason is forwarded verbatim and the session is already terminal
		case MsgAssign:
			if s.last != nil && m.Slot == s.last.Slot {
				// Duplicate assign: the cloud never saw our report for this
				// slot. Answer from the cache — re-serving would double-draw
				// the edge's stochastic stream and double-count the slot.
				if err := WriteMessage(conn, s.last); err != nil {
					return !Transient(err), fmt.Errorf("deploy: report (resend): %w", err)
				}
				continue
			}
			if m.Switch {
				if err := s.rt.LoadModel(m.ModelID, m.Weights); err != nil {
					_ = WriteMessage(conn, &Message{Type: MsgError, Reason: err.Error()})
					return true, fmt.Errorf("deploy: load model %d: %w", m.ModelID, err)
				}
			}
			rep, err := s.rt.RunSlot(m.Slot, m.ModelID)
			if err != nil {
				_ = WriteMessage(conn, &Message{Type: MsgError, Reason: err.Error()})
				return true, fmt.Errorf("deploy: run slot %d: %w", m.Slot, err)
			}
			out := &Message{
				Type:        MsgReport,
				Slot:        m.Slot,
				EdgeID:      s.edgeID,
				ModelID:     m.ModelID,
				AvgLoss:     rep.AvgLoss,
				Correct:     rep.Correct,
				Samples:     rep.Samples,
				EnergyKWh:   rep.EnergyKWh,
				CompSeconds: rep.CompSeconds,
			}
			// Cache before writing: if the write dies mid-frame the slot is
			// still completed, and the resumed connection resends it.
			s.last = out
			s.doneSlots++
			if err := WriteMessage(conn, out); err != nil {
				return !Transient(err), fmt.Errorf("deploy: report: %w", err)
			}
		default:
			return true, protocolErrorf("unexpected message type %d", m.Type)
		}
	}
}

// handshake performs the initial or resume Hello/Welcome exchange.
func (s *EdgeSession) handshake(conn net.Conn) error {
	hello := &Message{Type: MsgHello, EdgeID: s.edgeID}
	if s.welcomed {
		hello.Resume = true
		hello.ResumeToken = s.token
		hello.DoneSlots = s.doneSlots
	}
	if err := WriteMessage(conn, hello); err != nil {
		return fmt.Errorf("deploy: hello: %w", err)
	}
	welcome, err := ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("deploy: welcome: %w", err)
	}
	if welcome.Type == MsgError {
		return protocolErrorf("cloud rejected handshake: %s", welcome.Reason)
	}
	if welcome.Type != MsgWelcome {
		return protocolErrorf("expected Welcome, got type %d", welcome.Type)
	}
	if s.welcomed {
		return nil // resume Welcome carries no zoo metadata
	}
	if err := s.rt.Welcome(welcome.Models); err != nil {
		return fmt.Errorf("deploy: runtime welcome: %w", err)
	}
	s.token = welcome.ResumeToken
	s.welcomed = true
	return nil
}

// RunEdgeResumable runs a full edge session with automatic reconnect: when a
// connection fails transiently, it redials and resumes, up to maxResumes
// times. dial is also what paces reconnection — a dialer may sleep or back
// off internally; RunEdgeResumable itself never waits, so deterministic
// harnesses stay in control of time.
func RunEdgeResumable(dial func() (net.Conn, error), edgeID int, rt Runtime, maxResumes int) error {
	if dial == nil {
		return fmt.Errorf("deploy: nil dialer") //lint:allow errtaxonomy argument validation before any wire traffic
	}
	s, err := NewEdgeSession(edgeID, rt)
	if err != nil {
		return err
	}
	resumes := 0
	var lastErr error
	for {
		conn, err := dial()
		if err == nil {
			var done bool
			done, err = s.Run(conn)
			conn.Close()
			if done {
				return err
			}
		}
		lastErr = err
		if resumes >= maxResumes {
			return fmt.Errorf("deploy: edge %d: resume budget exhausted after %d resumes: %w", edgeID, resumes, lastErr)
		}
		resumes++
	}
}

// slotChunk bounds how many of a slot's M_i^t samples go through one
// batched forward pass, so peak activation scratch is one chunk's worth
// regardless of slot size. Chunking does not affect results: samples are
// independent and the loss accumulates in draw order either way.
const slotChunk = 64

// NNRuntime is a full-fidelity edge runtime: it holds the edge's local
// labeled data pool, rebuilds each model's architecture locally, installs
// checkpoints shipped by the cloud via nn.ReadWeights, and runs genuine
// forward passes. The cloud never sees the data; the edge never sees the
// training pipeline — exactly the paper's split.
type NNRuntime struct {
	// BuildNet constructs the (untrained) architecture for a model id;
	// weights arrive from the cloud.
	BuildNet func(modelID int) (*nn.Network, error)
	// Pool is the edge's local stream pool.
	Pool []nn.Sample
	// SamplesPerSlot draws M_i^t.
	SamplesPerSlot func(slot int) int
	// CompSecondsPerSample simulates the measured computation latency of
	// one inference (posterior, observed while serving).
	CompSecondsPerSample func(modelID int) float64

	// Int8 runs every installed checkpoint through the true-INT8 engine
	// (nn.QuantizedNetwork): LoadModel quantizes the shipped float weights
	// on arrival and RunSlot serves integer kernels. This is an edge
	// execution mode — the wire format and the cloud are unchanged. Set it
	// before the first LoadModel; it is not a per-model switch.
	Int8 bool

	rng     *rand.Rand
	metas   []ModelMeta
	loaded  map[int]*nn.Network
	qloaded map[int]*nn.QuantizedNetwork
	calib   *nn.Tensor // INT8 calibration batch, built once from the pool head

	// Batched-inference scratch, owned by this runtime (one runtime per
	// edge, never shared across goroutines). All three are grow-only, so a
	// steady-state RunSlot performs zero heap allocations
	// (BenchmarkNNRuntimeSlot's ReportAllocs gate).
	arena      *nn.Arena
	idx        []int
	batchShape []int
}

var _ Runtime = (*NNRuntime)(nil)

// NewNNRuntime creates a runtime over a local pool.
func NewNNRuntime(build func(int) (*nn.Network, error), pool []nn.Sample,
	samplesPerSlot func(int) int, compSeconds func(int) float64, rng *rand.Rand) (*NNRuntime, error) {
	if build == nil || samplesPerSlot == nil || compSeconds == nil || rng == nil {
		return nil, fmt.Errorf("deploy: nil runtime dependency")
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("deploy: empty data pool")
	}
	return &NNRuntime{
		BuildNet:             build,
		Pool:                 pool,
		SamplesPerSlot:       samplesPerSlot,
		CompSecondsPerSample: compSeconds,
		rng:                  rng,
		loaded:               make(map[int]*nn.Network),
		qloaded:              make(map[int]*nn.QuantizedNetwork),
		arena:                nn.NewArena(),
	}, nil
}

// Welcome implements Runtime.
func (r *NNRuntime) Welcome(models []ModelMeta) error {
	if len(models) == 0 {
		return fmt.Errorf("deploy: empty model metadata")
	}
	r.metas = models
	return nil
}

// LoadModel implements Runtime: rebuild the architecture and install the
// shipped weights.
func (r *NNRuntime) LoadModel(modelID int, checkpoint []byte) error {
	if modelID < 0 || modelID >= len(r.metas) {
		return fmt.Errorf("deploy: model id %d out of range", modelID)
	}
	if _, ok := r.loaded[modelID]; ok && len(checkpoint) == 0 && (!r.Int8 || r.qloaded[modelID] != nil) {
		return nil // cached copy, nothing shipped
	}
	net, err := r.BuildNet(modelID)
	if err != nil {
		return err
	}
	if len(checkpoint) > 0 {
		if err := nn.ReadWeights(bytes.NewReader(checkpoint), net); err != nil {
			return err
		}
	}
	if r.Int8 {
		// Quantize the shipped float weights at install time and compile the
		// INT8 engine, exactly the zoo's quantization path: fake-quant the
		// float net (the accuracy oracle), then bind the integer kernels to
		// the same int8 buffers.
		qw := nn.QuantizeWeights(net)
		if err := qw.ApplyTo(net); err != nil {
			return fmt.Errorf("deploy: quantize model %d: %w", modelID, err)
		}
		qn, err := nn.NewQuantizedNetwork(net, qw, r.calibInput())
		if err != nil {
			return fmt.Errorf("deploy: compile INT8 model %d: %w", modelID, err)
		}
		r.qloaded[modelID] = qn
	}
	r.loaded[modelID] = net
	return nil
}

// calibInput assembles the INT8 engines' calibration batch from the head of
// the edge's local pool — deterministic, representative of the stream the
// activation scales will see, and built once per runtime.
func (r *NNRuntime) calibInput() *nn.Tensor {
	if r.calib != nil {
		return r.calib
	}
	b := slotChunk
	if b > len(r.Pool) {
		b = len(r.Pool)
	}
	sampleLen := r.Pool[0].X.Len()
	t := nn.NewTensor(append([]int{b}, r.Pool[0].X.Shape...)...)
	for j := 0; j < b; j++ {
		copy(t.Data[j*sampleLen:(j+1)*sampleLen], r.Pool[j].X.Data)
	}
	r.calib = t
	return t
}

// RunSlot implements Runtime: serve M samples with the loaded model.
//
//lint:hotroot steady-state slot serving must report 0 allocs/op (bench_test.go pins it)
func (r *NNRuntime) RunSlot(slot, modelID int) (SlotReport, error) {
	net, ok := r.loaded[modelID]
	if !ok {
		return SlotReport{}, fmt.Errorf("deploy: model %d assigned but never downloaded", modelID)
	}
	var qn *nn.QuantizedNetwork
	if r.Int8 {
		if qn = r.qloaded[modelID]; qn == nil {
			return SlotReport{}, fmt.Errorf("deploy: model %d loaded before Int8 mode was enabled", modelID)
		}
	}
	m := r.SamplesPerSlot(slot)
	if m < 0 {
		return SlotReport{}, fmt.Errorf("deploy: negative sample count %d", m)
	}
	var rep SlotReport
	rep.Samples = m
	// Draw all sample indices up front — the same RNG call sequence as the
	// old per-sample loop, so the stream each edge sees is unchanged — then
	// serve them in fixed-size batched forward passes. All scratch comes
	// from the runtime-owned grow-only arena: steady state is 0 allocs/op.
	if cap(r.idx) < m {
		r.idx = make([]int, m) //lint:allow hotalloc grow-only index buffer; steady state reuses capacity
	}
	idx := r.idx[:m]
	for j := range idx {
		idx[j] = r.rng.Intn(len(r.Pool))
	}
	sampleLen := r.Pool[0].X.Len()
	totalLoss := 0.0
	for start := 0; start < m; start += slotChunk {
		end := start + slotChunk
		if end > m {
			end = m
		}
		b := end - start
		r.arena.Reset()
		r.batchShape = append(r.batchShape[:0], b)                //lint:allow hotalloc appends into the recycled shape buffer; capacity is grown once and reused
		r.batchShape = append(r.batchShape, r.Pool[0].X.Shape...) //lint:allow hotalloc appends into the recycled shape buffer; capacity is grown once and reused
		in := r.arena.Tensor(r.batchShape...)
		for j := 0; j < b; j++ {
			copy(in.Data[j*sampleLen:(j+1)*sampleLen], r.Pool[idx[start+j]].X.Data)
		}
		var logits *nn.Tensor
		if qn != nil {
			logits = qn.ForwardBatch(in, r.arena)
		} else {
			logits = net.ForwardBatch(in, r.arena)
		}
		classes := logits.Shape[1]
		scratch := r.arena.Floats(classes)
		for j := 0; j < b; j++ {
			row := logits.Data[j*classes : (j+1)*classes]
			label := r.Pool[idx[start+j]].Label
			totalLoss += nn.SquaredLossRow(row, label, scratch)
			if nn.ArgmaxRow(row) == label {
				rep.Correct++
			}
		}
	}
	if m > 0 {
		rep.AvgLoss = totalLoss / float64(m)
	}
	rep.EnergyKWh = r.metas[modelID].PhiKWh * float64(m)
	rep.CompSeconds = r.CompSecondsPerSample(modelID)
	return rep, nil
}
