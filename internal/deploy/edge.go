package deploy

import (
	"bytes"
	"fmt"
	"math/rand"
	"net"

	"github.com/carbonedge/carbonedge/internal/nn"
)

// Runtime is the edge-local inference engine: it loads shipped checkpoints
// and serves one slot of traffic.
type Runtime interface {
	// Welcome delivers the cloud's model metadata before the first slot.
	Welcome(models []ModelMeta) error
	// LoadModel installs the checkpoint for modelID (called on switches).
	LoadModel(modelID int, checkpoint []byte) error
	// RunSlot serves the slot's local traffic with the given model and
	// returns the observation the cloud needs.
	RunSlot(slot, modelID int) (SlotReport, error)
}

// SlotReport is an edge's end-of-slot observation.
type SlotReport struct {
	AvgLoss     float64 // average squared inference loss L_{i,n}^t
	Correct     int
	Samples     int
	EnergyKWh   float64 // inference energy consumed this slot
	CompSeconds float64 // measured per-sample computation cost v_{i,n}
}

// RunEdge connects an edge agent: handshake, then serve Assign frames until
// Done. It returns nil on a clean Done and an error otherwise.
func RunEdge(conn net.Conn, edgeID int, rt Runtime) error {
	if rt == nil {
		return fmt.Errorf("deploy: nil runtime")
	}
	if err := WriteMessage(conn, &Message{Type: MsgHello, EdgeID: edgeID}); err != nil {
		return fmt.Errorf("deploy: hello: %w", err)
	}
	welcome, err := ReadMessage(conn)
	if err != nil {
		return fmt.Errorf("deploy: welcome: %w", err)
	}
	if welcome.Type != MsgWelcome {
		return fmt.Errorf("deploy: expected Welcome, got type %d", welcome.Type)
	}
	if err := rt.Welcome(welcome.Models); err != nil {
		return fmt.Errorf("deploy: runtime welcome: %w", err)
	}
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return fmt.Errorf("deploy: read: %w", err)
		}
		switch m.Type {
		case MsgDone:
			return nil
		case MsgError:
			return fmt.Errorf("deploy: cloud aborted: %s", m.Reason)
		case MsgAssign:
			if m.Switch {
				if err := rt.LoadModel(m.ModelID, m.Weights); err != nil {
					_ = WriteMessage(conn, &Message{Type: MsgError, Reason: err.Error()})
					return fmt.Errorf("deploy: load model %d: %w", m.ModelID, err)
				}
			}
			rep, err := rt.RunSlot(m.Slot, m.ModelID)
			if err != nil {
				_ = WriteMessage(conn, &Message{Type: MsgError, Reason: err.Error()})
				return fmt.Errorf("deploy: run slot %d: %w", m.Slot, err)
			}
			out := &Message{
				Type:        MsgReport,
				Slot:        m.Slot,
				EdgeID:      edgeID,
				ModelID:     m.ModelID,
				AvgLoss:     rep.AvgLoss,
				Correct:     rep.Correct,
				Samples:     rep.Samples,
				EnergyKWh:   rep.EnergyKWh,
				CompSeconds: rep.CompSeconds,
			}
			if err := WriteMessage(conn, out); err != nil {
				return fmt.Errorf("deploy: report: %w", err)
			}
		default:
			return fmt.Errorf("deploy: unexpected message type %d", m.Type)
		}
	}
}

// NNRuntime is a full-fidelity edge runtime: it holds the edge's local
// labeled data pool, rebuilds each model's architecture locally, installs
// checkpoints shipped by the cloud via nn.ReadWeights, and runs genuine
// forward passes. The cloud never sees the data; the edge never sees the
// training pipeline — exactly the paper's split.
type NNRuntime struct {
	// BuildNet constructs the (untrained) architecture for a model id;
	// weights arrive from the cloud.
	BuildNet func(modelID int) (*nn.Network, error)
	// Pool is the edge's local stream pool.
	Pool []nn.Sample
	// SamplesPerSlot draws M_i^t.
	SamplesPerSlot func(slot int) int
	// CompSecondsPerSample simulates the measured computation latency of
	// one inference (posterior, observed while serving).
	CompSecondsPerSample func(modelID int) float64

	rng    *rand.Rand
	metas  []ModelMeta
	loaded map[int]*nn.Network
}

var _ Runtime = (*NNRuntime)(nil)

// NewNNRuntime creates a runtime over a local pool.
func NewNNRuntime(build func(int) (*nn.Network, error), pool []nn.Sample,
	samplesPerSlot func(int) int, compSeconds func(int) float64, rng *rand.Rand) (*NNRuntime, error) {
	if build == nil || samplesPerSlot == nil || compSeconds == nil || rng == nil {
		return nil, fmt.Errorf("deploy: nil runtime dependency")
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("deploy: empty data pool")
	}
	return &NNRuntime{
		BuildNet:             build,
		Pool:                 pool,
		SamplesPerSlot:       samplesPerSlot,
		CompSecondsPerSample: compSeconds,
		rng:                  rng,
		loaded:               make(map[int]*nn.Network),
	}, nil
}

// Welcome implements Runtime.
func (r *NNRuntime) Welcome(models []ModelMeta) error {
	if len(models) == 0 {
		return fmt.Errorf("deploy: empty model metadata")
	}
	r.metas = models
	return nil
}

// LoadModel implements Runtime: rebuild the architecture and install the
// shipped weights.
func (r *NNRuntime) LoadModel(modelID int, checkpoint []byte) error {
	if modelID < 0 || modelID >= len(r.metas) {
		return fmt.Errorf("deploy: model id %d out of range", modelID)
	}
	if _, ok := r.loaded[modelID]; ok && len(checkpoint) == 0 {
		return nil // cached copy, nothing shipped
	}
	net, err := r.BuildNet(modelID)
	if err != nil {
		return err
	}
	if len(checkpoint) > 0 {
		if err := nn.ReadWeights(bytes.NewReader(checkpoint), net); err != nil {
			return err
		}
	}
	r.loaded[modelID] = net
	return nil
}

// RunSlot implements Runtime: serve M samples with the loaded model.
func (r *NNRuntime) RunSlot(slot, modelID int) (SlotReport, error) {
	net, ok := r.loaded[modelID]
	if !ok {
		return SlotReport{}, fmt.Errorf("deploy: model %d assigned but never downloaded", modelID)
	}
	m := r.SamplesPerSlot(slot)
	if m < 0 {
		return SlotReport{}, fmt.Errorf("deploy: negative sample count %d", m)
	}
	var rep SlotReport
	rep.Samples = m
	totalLoss := 0.0
	for j := 0; j < m; j++ {
		s := r.Pool[r.rng.Intn(len(r.Pool))]
		logits := net.Forward(s.X)
		loss, _ := nn.SquaredLoss(logits, s.Label)
		totalLoss += loss
		if logits.MaxIndex() == s.Label {
			rep.Correct++
		}
	}
	if m > 0 {
		rep.AvgLoss = totalLoss / float64(m)
	}
	rep.EnergyKWh = r.metas[modelID].PhiKWh * float64(m)
	rep.CompSeconds = r.CompSecondsPerSample(modelID)
	return rep, nil
}
