// The regional-aggregator tier: a root cloud process runs the controller
// and the global trade/ledger accounting, while regional coordinator
// processes each own one contiguous shard of the fleet — admitting their
// edges over TCP exactly as the monolithic cloud would — and stream per-slot
// SlotDeltas back to the root. Because deltas carry per-edge terms (never
// partial float sums) and encoding/json round-trips float64 exactly, the
// root's fold is bit-identical to a single-process run over the same fleet;
// the monolithic/regional parity test pins this.
//
// The tier is elastic: the root's listener stays open for the whole run, so
// a dropped coordinator can redial and resume its session from the root's
// per-shard fold watermark (mirroring the edge Hello{Resume} machinery, with
// replayed ShardDeltas deduped idempotently), a departing coordinator's
// shard is handed to a surviving or newly joined one via a serialized
// ShardCheckpoint (the shard decomposition itself never changes, so the fold
// still replays canonical edge-index order), and below a configurable region
// quorum the root degrades the orphaned shard instead of aborting. Every
// recovery path preserves the bit-identical-results contract: serving-
// preserving schedules reproduce the fault-free summary exactly, and
// degraded runs reproduce the equivalent in-process Degrade run exactly.
package deploy

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// errRegionLeft marks a region link that is gone for good — the coordinator
// announced departure, or its retry budget ran dry — as opposed to one that
// merely dropped a connection (which session resume heals in place). The
// root reacts by rebalancing the link's shards or degrading them, depending
// on policy and quorum.
var errRegionLeft = errors.New("deploy: region left")

// RootConfig parameterizes the root cloud of a regional deployment.
type RootConfig struct {
	// Edges is the total fleet size across all regions; Regions is the
	// number of coordinators that join initially. Edges are partitioned into
	// Regions contiguous shards with engine.PartitionEdges: region r owns
	// shard r at the start of the run. Additional coordinators with ids >=
	// Regions may join mid-run as standby capacity for rebalancing.
	Edges   int
	Regions int
	// Horizon is the number of slots to run.
	Horizon int
	// DownloadCosts holds u_i per global edge id; length must equal Edges.
	DownloadCosts []float64
	// InitialCap (grams) and EmissionRate (g/kWh) configure the carbon side.
	InitialCap   float64
	EmissionRate float64
	// Prices is the allowance price series (length >= Horizon).
	Prices *market.Prices
	// EmissionScale hints the expected per-slot emission for Algorithm 2's
	// step sizes (0 = 1).
	EmissionScale float64
	// Seed drives the controller's sampling, the region resume-token issue,
	// and the per-shard backoff jitter streams.
	Seed int64
	// NumModels is the zoo size N. The root never ships checkpoints — the
	// regions hold the zoo — so it only needs the count.
	NumModels int
	// Policy is the per-edge failure reaction the regions must apply
	// (engine.Degrade marks failed edges down shard-locally; the zero value
	// engine.FailFast aborts the run on the first edge failure). It also
	// selects the root's reaction to a lost region link: under FailFast the
	// run aborts (the historical behavior); under Degrade the root rebalances
	// the link's shards onto surviving coordinators, or — below RegionQuorum —
	// degrades them with the engine's down-slot semantics.
	Policy engine.ErrorPolicy
	// SlotTimeout bounds each per-region exchange (assign + delta). Zero
	// disables deadlines.
	SlotTimeout time.Duration
	// HandshakeTimeout bounds each connection's RegionHello/RegionWelcome
	// exchange. Zero selects DefaultHandshakeTimeout; negative disables the
	// deadline.
	HandshakeTimeout time.Duration
	// Retry is the per-slot transient-failure budget of each region link:
	// how many times a shard's exchange is retried (under the same
	// deterministic capped-exponential backoff the edge fleet uses) and how
	// long each try waits for a dropped coordinator to redial and resume.
	// The zero value disables retries, preserving the historical
	// one-strike-fatal link semantics under FailFast.
	Retry RetryConfig
	// RegionQuorum is the minimum number of live coordinators required to
	// rebalance a lost link's shards instead of degrading them (only
	// meaningful under engine.Degrade). 0 defaults to 1: rebalance onto any
	// survivor, degrade only when none remain.
	RegionQuorum int
	// RebalanceTarget optionally picks the adopter for an orphaned shard:
	// it receives the shard index and the sorted ids of the live candidate
	// links and returns the chosen id. A nil function (or an id not in the
	// candidate list) selects the lowest live id.
	RebalanceTarget func(shard int, live []int) int
}

// Root is the root cloud: the controller plus one regionStepper per shard,
// multiplexed over a membership of region links that can shrink and grow
// mid-run.
type Root struct {
	cfg    RootConfig
	ctrl   *core.Controller
	ranges []engine.Range

	// sleep performs retry backoff; injectable so chaos tests replay with
	// zero wall time. Defaults to time.Sleep.
	sleep func(time.Duration)

	// mu guards links and tokenRNG: admission mutates membership
	// concurrently with stepper-side elections.
	mu       sync.Mutex
	links    map[int]*regionLink
	tokenRNG *rand.Rand

	// initial and acceptErr carry initial-admission progress from the
	// acceptor to awaitRegions.
	initial   chan int
	acceptErr chan error

	// done flips once the run is over: the acceptor stops admitting.
	done atomic.Bool
}

// NewRoot validates the configuration and builds the controller.
func NewRoot(cfg RootConfig) (*Root, error) {
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("deploy: need at least one edge, got %d", cfg.Edges)
	}
	if cfg.Regions <= 0 || cfg.Regions > cfg.Edges {
		return nil, fmt.Errorf("deploy: %d regions for %d edges", cfg.Regions, cfg.Edges)
	}
	if len(cfg.DownloadCosts) != cfg.Edges {
		return nil, fmt.Errorf("deploy: %d download costs for %d edges", len(cfg.DownloadCosts), cfg.Edges)
	}
	if cfg.Prices == nil || cfg.Prices.Horizon() < cfg.Horizon {
		return nil, fmt.Errorf("deploy: price series shorter than horizon")
	}
	if cfg.NumModels <= 0 {
		return nil, fmt.Errorf("deploy: NumModels must be positive, got %d", cfg.NumModels)
	}
	if cfg.Policy != engine.FailFast && cfg.Policy != engine.Degrade {
		return nil, fmt.Errorf("deploy: unknown error policy %d", cfg.Policy)
	}
	if cfg.Retry.Attempts < 0 {
		return nil, fmt.Errorf("deploy: negative retry budget %d", cfg.Retry.Attempts)
	}
	if cfg.Retry.BaseDelay < 0 || cfg.Retry.MaxDelay < 0 || cfg.Retry.ResumeWait < 0 {
		return nil, fmt.Errorf("deploy: negative retry delays")
	}
	if cfg.RegionQuorum < 0 {
		return nil, fmt.Errorf("deploy: negative region quorum %d", cfg.RegionQuorum)
	}
	ctrl, err := core.New(core.Config{
		NumModels:     cfg.NumModels,
		DownloadCosts: cfg.DownloadCosts,
		Horizon:       cfg.Horizon,
		InitialCap:    cfg.InitialCap,
		EmissionScale: cfg.EmissionScale,
		PriceScale:    avgBuyPrice(cfg.Prices, cfg.Horizon),
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: controller: %w", err)
	}
	if _, err := energy.NewMeter(cfg.EmissionRate); err != nil {
		return nil, err
	}
	r := &Root{
		cfg:       cfg,
		ctrl:      ctrl,
		ranges:    engine.PartitionEdges(cfg.Edges, cfg.Regions),
		tokenRNG:  numeric.SplitRNG(cfg.Seed, "deploy-region-token"),
		links:     make(map[int]*regionLink, cfg.Regions),
		initial:   make(chan int, cfg.Regions+1),
		acceptErr: make(chan error, 1),
	}
	//lint:allow nodeterm retry backoff is real wall-clock waiting; chaos tests inject a zero-time sleep
	r.sleep = time.Sleep
	// Initial links (and their resume tokens) are built in id order so the
	// token stream is deterministic; spares joining mid-run draw later
	// positions in arrival order (tokens never reach Results).
	for id := 0; id < cfg.Regions; id++ {
		r.links[id] = newRegionLink(id, fmt.Sprintf("%016x-%02d", r.tokenRNG.Uint64(), id))
	}
	return r, nil
}

// Serve runs a full regional deployment over ln: it admits the cfg.Regions
// initial coordinators, runs the full horizon through engine.RunSharded with
// one regionStepper per shard, and returns the summary. The listener stays
// open for the whole run so dropped coordinators can redial and resume, and
// standby coordinators (ids >= Regions) can join to adopt rebalanced shards;
// it is not closed (the caller owns it), but Serve unblocks its own acceptor
// on return when the listener supports deadlines (as TCP listeners do).
func (r *Root) Serve(ln net.Listener) (*Summary, error) {
	go r.acceptLoop(ln)
	defer func() {
		r.done.Store(true)
		// Unblock a blocked Accept without closing the caller's listener: a
		// deadline in the distant past forces an immediate timeout.
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Unix(1, 0)) //nolint:errcheck // best-effort unblock
		}
		for _, l := range r.sortedLinks() {
			l.retire()
		}
	}()
	if err := r.awaitRegions(); err != nil {
		return nil, err
	}

	steppers := make([]*regionStepper, len(r.ranges))
	shards := make([]engine.ShardStepper, len(r.ranges))
	for k, rg := range r.ranges {
		r.mu.Lock()
		l := r.links[k]
		r.mu.Unlock()
		steppers[k] = &regionStepper{
			root:      r,
			index:     k,
			rng:       rg,
			link:      l,
			fleetSeed: l.fleetSeed(),
			jitter:    numeric.SplitRNG(r.cfg.Seed, fmt.Sprintf("deploy-region-retry-%d", k)),
			down:      make([]bool, rg.Count),
			downErrs:  make([]string, rg.Count),
			draws:     make([]int, rg.Count),
			buf:       make([]engine.EdgeDelta, 0, rg.Count),
		}
		shards[k] = steppers[k]
	}
	res, err := engine.RunSharded(engine.Config{
		Name:         "deploy",
		Horizon:      r.cfg.Horizon,
		NumModels:    r.cfg.NumModels,
		InitialCap:   r.cfg.InitialCap,
		EmissionRate: r.cfg.EmissionRate,
		Prices:       r.cfg.Prices,
		SwitchCosts:  r.cfg.DownloadCosts,
		Policy:       r.cfg.Policy,
	}, r.ctrl, shards)
	if err != nil {
		msg := &Message{Type: MsgError, Reason: err.Error()}
		for _, l := range r.sortedLinks() {
			if conn := l.current(); conn != nil {
				_ = WriteMessage(conn, msg) // best effort; we are already failing
			}
		}
		return nil, err
	}
	var finishErrs []error
	for _, l := range r.sortedLinks() {
		if l.isDead() {
			continue // departed mid-run; nobody to notify
		}
		conn := l.current()
		if conn == nil {
			continue
		}
		if werr := WriteMessage(conn, &Message{Type: MsgDone}); werr != nil {
			finishErrs = append(finishErrs, fmt.Errorf("deploy: send done to region %d: %w", l.id, werr))
		}
	}
	if err := errors.Join(finishErrs...); err != nil && r.cfg.Policy == engine.FailFast {
		return nil, err
	}
	// Edge resumes are region-local; the root does not observe them.
	sum := summaryFromResult(res, make([]int, r.cfg.Edges))
	r.fillElasticity(sum, steppers)
	return sum, nil
}

// awaitRegions blocks until the cfg.Regions initial coordinators are
// admitted.
func (r *Root) awaitRegions() error {
	connected := 0
	for connected < len(r.ranges) {
		select {
		case <-r.initial:
			connected++
		case err := <-r.acceptErr:
			for {
				select {
				case <-r.initial:
					connected++
					continue
				default:
				}
				break
			}
			if connected < len(r.ranges) {
				return fmt.Errorf("deploy: accept: %w", err)
			}
		}
	}
	return nil
}

// sortedLinks snapshots the membership in ascending id order, so every
// iteration over the link map is deterministic.
func (r *Root) sortedLinks() []*regionLink {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]int, 0, len(r.links))
	for id := range r.links {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]*regionLink, len(ids))
	for k, id := range ids {
		out[k] = r.links[id]
	}
	return out
}

// fillElasticity records the run's region-level fault accounting on the
// summary. Every field stays nil on a fault-free run, so fault-free regional
// summaries compare deep-equal to monolithic ones.
func (r *Root) fillElasticity(sum *Summary, steppers []*regionStepper) {
	resumes := make(map[int]int)
	for _, l := range r.sortedLinks() {
		if n := l.resumeCount(); n > 0 {
			resumes[l.id] = n
		}
	}
	if len(resumes) > 0 {
		sum.RegionResumes = resumes
	}
	retries := make([]int, len(steppers))
	rebalances := make([]int, len(steppers))
	anyRetry, anyRebalance := false, false
	for k, rs := range steppers {
		retries[k] = rs.retries
		rebalances[k] = rs.rebalances
		anyRetry = anyRetry || rs.retries > 0
		anyRebalance = anyRebalance || rs.rebalances > 0
	}
	if anyRetry {
		sum.RegionRetries = retries
	}
	if anyRebalance {
		sum.Rebalances = rebalances
	}
}

// acceptLoop admits coordinator connections for the whole run: initial
// handshakes first, session resumes and standby joins once the run is
// underway. Admissions run concurrently so one slow (or silent) dialer
// cannot wedge the tier.
func (r *Root) acceptLoop(ln net.Listener) {
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait() // let in-flight admissions finish before reporting
			if !r.done.Load() {
				select {
				case r.acceptErr <- err:
				default:
				}
			}
			return
		}
		if r.done.Load() {
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.admitRegion(conn)
		}()
	}
}

// admitRegion performs one coordinator's handshake under the handshake
// deadline and delivers the connection to its region link. Bad dialers are
// rejected and closed without disturbing the run.
func (r *Root) admitRegion(conn net.Conn) {
	ok := false
	defer func() {
		if !ok {
			conn.Close()
		}
	}()
	timeout := r.cfg.HandshakeTimeout
	if timeout == 0 {
		timeout = DefaultHandshakeTimeout
	}
	if timeout > 0 {
		//lint:allow nodeterm real I/O deadline on a live connection; wall time is the only clock the kernel honors
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
	}
	m, err := ReadMessage(conn)
	if err != nil {
		return
	}
	if m.Type != MsgRegionHello {
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: "expected RegionHello"})
		return
	}
	if m.RegionID < 0 {
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("bad region id %d", m.RegionID)})
		return
	}

	if m.Resume {
		r.mu.Lock()
		l := r.links[m.RegionID]
		r.mu.Unlock()
		if l == nil {
			_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("unknown region id %d", m.RegionID)})
			return
		}
		reject := l.resumeReject(m.ResumeToken)
		if reject == "" && (m.DoneSlots < 0 || m.DoneSlots > r.cfg.Horizon) {
			reject = fmt.Sprintf("implausible resume position %d", m.DoneSlots)
		}
		if reject != "" {
			_ = WriteMessage(conn, &Message{Type: MsgError, Reason: reject})
			return
		}
		if err := WriteMessage(conn, &Message{Type: MsgRegionWelcome, RegionID: m.RegionID, Resume: true}); err != nil {
			return
		}
		if timeout > 0 {
			conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
		}
		l.markResumed()
		l.deliver(conn)
		ok = true
		return
	}

	r.mu.Lock()
	l := r.links[m.RegionID]
	if l == nil {
		// A standby coordinator joining mid-run: it gets an empty shard and
		// serves only what rebalancing adopts into it.
		l = newRegionLink(m.RegionID, fmt.Sprintf("%016x-%02d", r.tokenRNG.Uint64(), m.RegionID))
		r.links[m.RegionID] = l
	}
	r.mu.Unlock()
	if !l.claim(m.Seed) {
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("duplicate region id %d", m.RegionID)})
		return
	}
	welcome := &Message{
		Type:        MsgRegionWelcome,
		RegionID:    m.RegionID,
		Horizon:     r.cfg.Horizon,
		NumModels:   r.cfg.NumModels,
		Degrade:     r.cfg.Policy == engine.Degrade,
		ResumeToken: l.token,
	}
	if m.RegionID < len(r.ranges) {
		rg := r.ranges[m.RegionID]
		welcome.Start, welcome.Count = rg.Start, rg.Count
	}
	if err := WriteMessage(conn, welcome); err != nil {
		l.unclaim()
		return
	}
	if timeout > 0 {
		conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	l.deliver(conn)
	if m.RegionID < len(r.ranges) {
		r.initial <- m.RegionID
	}
	ok = true
}

// electTarget picks the adopter for an orphaned shard: the lowest live link
// id (or RebalanceTarget's validated choice), or nil when the live
// membership is below the region quorum — the caller then degrades the
// shard instead of rebalancing it.
func (r *Root) electTarget(shard int) *regionLink {
	links := r.sortedLinks()
	live := make([]int, 0, len(links))
	byID := make(map[int]*regionLink, len(links))
	for _, l := range links {
		if l.isLive() {
			live = append(live, l.id)
			byID[l.id] = l
		}
	}
	quorum := r.cfg.RegionQuorum
	if quorum <= 0 {
		quorum = 1
	}
	if len(live) < quorum {
		return nil
	}
	pick := live[0]
	if r.cfg.RebalanceTarget != nil {
		want := r.cfg.RebalanceTarget(shard, append([]int(nil), live...))
		if _, ok := byID[want]; ok {
			pick = want
		}
	}
	return byID[pick]
}

// regionLink is the root-side connection slot of one coordinator: the
// acceptor delivers handshaken connections (initial and resumed) into
// incoming, and the shards routed over the link consume them. A dropped
// coordinator leaves its link empty until a resume arrives; a departed one
// is marked dead and its shards move elsewhere.
type regionLink struct {
	id       int
	token    string
	incoming chan net.Conn

	// xmu serializes assign/delta round trips on the link: after an
	// adoption, several shards may share one coordinator, and each exchange
	// must own the connection for its full write+read.
	xmu sync.Mutex

	mu      sync.Mutex
	conn    net.Conn
	claimed bool
	dead    bool
	seed    int64
	resumes int
}

func newRegionLink(id int, token string) *regionLink {
	return &regionLink{id: id, token: token, incoming: make(chan net.Conn, 1)}
}

// deliver hands a fresh connection to the link, replacing any stale one that
// was never consumed (latest connection wins).
func (l *regionLink) deliver(conn net.Conn) {
	for {
		select {
		case l.incoming <- conn:
			return
		default:
			select {
			case stale := <-l.incoming:
				stale.Close()
			default:
			}
		}
	}
}

// claim marks the link's initial admission and records the coordinator's
// announced fleet seed (what a future ShardCheckpoint derives the shard's
// edge tokens from). It reports false when the link was already claimed.
func (l *regionLink) claim(seed int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.claimed {
		return false
	}
	l.claimed = true
	l.seed = seed
	return true
}

// unclaim rolls a failed admission back.
func (l *regionLink) unclaim() {
	l.mu.Lock()
	l.claimed = false
	l.mu.Unlock()
}

// resumeReject validates a resume attempt, returning the rejection reason
// ("" to accept).
func (l *regionLink) resumeReject(token string) string {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case !l.claimed:
		return fmt.Sprintf("region id %d never joined", l.id)
	case l.dead:
		return fmt.Sprintf("region id %d retired", l.id)
	case token != l.token:
		return "bad resume token"
	}
	return ""
}

func (l *regionLink) markResumed() {
	l.mu.Lock()
	l.resumes++
	l.mu.Unlock()
}

func (l *regionLink) resumeCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.resumes
}

func (l *regionLink) fleetSeed() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seed
}

// acquire returns the link's live connection: the current one while it
// lasts, otherwise the next delivered resume, waiting up to wait for the
// coordinator to redial. The current connection is deliberately used until
// an exchange fails on it (exactly the edge fleet's discipline) — switching
// to a fresher delivery eagerly would make the retry accounting depend on
// how quickly the coordinator redialed. Called with xmu held.
func (l *regionLink) acquire(wait time.Duration) net.Conn {
	if conn := l.current(); conn != nil {
		return conn
	}
	select {
	case conn := <-l.incoming:
		l.replace(conn)
		return l.current()
	default:
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case conn := <-l.incoming:
		l.replace(conn)
		return l.current()
	case <-t.C:
		return nil
	}
}

func (l *regionLink) replace(conn net.Conn) {
	l.mu.Lock()
	if l.dead {
		l.mu.Unlock()
		conn.Close()
		return
	}
	if l.conn != nil {
		l.conn.Close()
	}
	l.conn = conn
	l.mu.Unlock()
}

func (l *regionLink) current() net.Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.conn
}

// drop discards a connection whose exchange failed; the next acquire waits
// for a resumed one.
func (l *regionLink) drop() {
	l.mu.Lock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.mu.Unlock()
}

// markDead takes the link out of the rebalancing election without closing
// its connection: a departing coordinator releases its edges only once the
// root closes the link (see retire), so the edges cannot redial the adopter
// before the adopt frame installs their range.
func (l *regionLink) markDead() {
	l.mu.Lock()
	l.dead = true
	l.mu.Unlock()
}

// retire marks the link dead and closes everything it holds. Safe to call
// repeatedly.
func (l *regionLink) retire() {
	l.mu.Lock()
	l.dead = true
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
	l.mu.Unlock()
	for {
		select {
		case c := <-l.incoming:
			c.Close()
		default:
			return
		}
	}
}

func (l *regionLink) isDead() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dead
}

func (l *regionLink) isLive() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.claimed && !l.dead
}

// regionStepper is the root-side engine.ShardStepper of one shard: Step is
// one ShardAssign/ShardDelta round trip on the shard's current region link,
// with transient failures retried across session resumes, lost links
// rebalanced onto survivors, and — below quorum — the shard degraded with
// the engine's down-slot semantics.
type regionStepper struct {
	root      *Root
	index     int
	rng       engine.Range
	fleetSeed int64
	jitter    *rand.Rand // deterministic backoff jitter stream
	link      *regionLink

	// dedup is the shard's fold watermark: a resumed link's replayed deltas
	// are admitted at most once per slot.
	dedup engine.SlotDeduper

	// Root-side mirror of the shard's per-edge fault state, folded from the
	// deltas as they are admitted. It is everything a ShardCheckpoint needs:
	// no state is ever shipped from a dead coordinator. Only integer, bool,
	// and string delta fields are read — the float terms pass through to the
	// engine's fold untouched.
	down     []bool
	downErrs []string
	draws    []int

	// degraded carries the canonical down reason once the shard fell below
	// quorum ("" while serving).
	degraded string

	retries    int
	rebalances int
	buf        []engine.EdgeDelta
}

var _ engine.ShardStepper = (*regionStepper)(nil)

// Range implements engine.ShardStepper.
func (rs *regionStepper) Range() (start, count int) { return rs.rng.Start, rs.rng.Count }

// Step implements engine.ShardStepper. A fatal exchange error (protocol
// violation, forwarded shard error) aborts the run regardless of policy; a
// lost link is rebalanced or degraded under engine.Degrade and aborts under
// engine.FailFast.
func (rs *regionStepper) Step(slot int, arms []int, downloads []bool) (engine.SlotDelta, error) {
	if rs.degraded != "" {
		return rs.degradeDelta(slot), nil
	}
	for {
		d, lost, err := rs.attemptSlot(slot, arms, downloads)
		if err == nil {
			rs.observe(&d)
			return d, nil
		}
		if !lost {
			return engine.SlotDelta{}, err
		}
		// The link is gone for good (departed, or out of retry budget). Take
		// it out of the election, but keep its connection open until the
		// shard has a new home — a departing coordinator holds its edges
		// until the root closes the link.
		rs.link.markDead()
		if rs.root.cfg.Policy != engine.Degrade {
			rs.link.retire()
			return engine.SlotDelta{}, err
		}
		for {
			target := rs.root.electTarget(rs.index)
			if target == nil {
				rs.degraded = fmt.Sprintf("deploy: region link %d lost at slot %d", rs.link.id, slot)
				rs.link.retire()
				return rs.degradeDelta(slot), nil
			}
			if aerr := rs.adoptInto(target, slot); aerr != nil {
				target.retire()
				continue
			}
			rs.link.retire()
			rs.link = target
			rs.rebalances++
			break
		}
	}
}

// attemptSlot runs one slot's exchange on the shard's current link,
// spending the full retry budget on transient failures. lost reports that
// the link itself is gone (departure, or budget exhausted) — the caller
// rebalances or degrades; a false lost with a non-nil error is fatal.
func (rs *regionStepper) attemptSlot(slot int, arms []int, downloads []bool) (d engine.SlotDelta, lost bool, err error) {
	retry := rs.root.cfg.Retry.withDefaults()
	attempts := 0
	var lastErr error
	for {
		d, err := rs.exchange(slot, arms, downloads, retry.ResumeWait)
		if err == nil {
			return d, false, nil
		}
		if errors.Is(err, errRegionLeft) {
			return engine.SlotDelta{}, true, err
		}
		if !Transient(err) {
			return engine.SlotDelta{}, false, err
		}
		lastErr = err
		if attempts >= rs.root.cfg.Retry.Attempts {
			return engine.SlotDelta{}, true,
				fmt.Errorf("deploy: shard %d region link %d slot %d: retry budget exhausted after %d retries: %w",
					rs.index, rs.link.id, slot, attempts, lastErr)
		}
		attempts++
		rs.retries++
		rs.root.sleep(backoffDelay(retry, attempts, rs.jitter))
	}
}

// exchange runs one assign/delta round trip on the shard's link, owning the
// link for the duration (shards sharing a link after an adoption serialize
// here).
func (rs *regionStepper) exchange(slot int, arms []int, downloads []bool, wait time.Duration) (engine.SlotDelta, error) {
	l := rs.link
	l.xmu.Lock()
	defer l.xmu.Unlock()
	if l.isDead() {
		// A sibling shard already saw the departure; don't burn budget
		// re-discovering it.
		return engine.SlotDelta{}, fmt.Errorf("deploy: region link %d: %w", l.id, errRegionLeft)
	}
	conn := l.acquire(wait)
	if conn == nil {
		return engine.SlotDelta{}, Transientf("region link %d: no live connection within %v", l.id, wait)
	}
	d, err := rs.exchangeOn(conn, slot, arms, downloads)
	if err != nil && !errors.Is(err, errRegionLeft) {
		// Keep a departed link's connection open: closing it (retire, once the
		// shard has a new home) is what releases the coordinator's edges, so
		// they never redial the adopter before the adopt frame installs them.
		l.drop()
	}
	return d, err
}

// exchangeOn runs the round trip on one connection.
func (rs *regionStepper) exchangeOn(conn net.Conn, slot int, arms []int, downloads []bool) (engine.SlotDelta, error) {
	if t := rs.root.cfg.SlotTimeout; t > 0 {
		//lint:allow nodeterm real I/O deadline on a live TCP connection; wall time is the only clock the kernel honors
		if err := conn.SetDeadline(time.Now().Add(t)); err != nil {
			return engine.SlotDelta{}, fmt.Errorf("deploy: region link %d deadline: %w", rs.link.id, err)
		}
		defer conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	assign := &Message{
		Type:      MsgShardAssign,
		Slot:      slot,
		Start:     rs.rng.Start,
		Count:     rs.rng.Count,
		Arms:      arms,
		Downloads: downloads,
	}
	if err := WriteMessage(conn, assign); err != nil {
		return engine.SlotDelta{}, fmt.Errorf("deploy: shard %d assign: %w", rs.index, err)
	}
	for {
		m, err := ReadMessage(conn)
		if err != nil {
			return engine.SlotDelta{}, fmt.Errorf("deploy: shard %d delta: %w", rs.index, err)
		}
		switch m.Type {
		case MsgError:
			// The region forwards its shard's error verbatim (e.g. the
			// engine's FailFast "engine: edge %d slot %d: ..." wrapping), so
			// the root run fails with the same error string a monolithic run
			// would report.
			return engine.SlotDelta{}, errors.New(m.Reason) //lint:allow errtaxonomy the shard error string must round-trip verbatim so distributed and monolithic runs fail identically
		case MsgRegionLeave:
			return engine.SlotDelta{}, fmt.Errorf("deploy: region link %d departed at slot %d: %w", rs.link.id, slot, errRegionLeft)
		case MsgShardDelta:
			if m.Slot != slot && rs.dedup.Seen(m.Slot) {
				continue // replayed duplicate of an already-folded slot
			}
			if err := ValidateDelta(m, rs.rng.Start, rs.rng.Count, slot); err != nil {
				return engine.SlotDelta{}, fmt.Errorf("deploy: shard %d: %w", rs.index, err)
			}
			rs.dedup.Admit(slot)
			return *m.Delta, nil
		default:
			return engine.SlotDelta{}, protocolErrorf("unexpected message type %d from region %d", m.Type, rs.link.id)
		}
	}
}

// adoptInto hands the shard to target: one ShardAdopt frame carrying the
// checkpoint. No ack is read — the connection's ordering guarantees the
// adopt frame is processed before the shard's next assign on the same link.
func (rs *regionStepper) adoptInto(target *regionLink, slot int) error {
	target.xmu.Lock()
	defer target.xmu.Unlock()
	if target.isDead() {
		return fmt.Errorf("deploy: region link %d: %w", target.id, errRegionLeft)
	}
	wait := rs.root.cfg.Retry.withDefaults().ResumeWait
	conn := target.acquire(wait)
	if conn == nil {
		return Transientf("region link %d: no live connection within %v", target.id, wait)
	}
	msg := &Message{Type: MsgShardAdopt, Slot: slot, Checkpoint: rs.checkpoint()}
	if err := WriteMessage(conn, msg); err != nil {
		target.drop()
		return fmt.Errorf("deploy: shard %d adopt into region link %d: %w", rs.index, target.id, err)
	}
	return nil
}

// checkpoint serializes the shard's root-tracked state for an adopter.
func (rs *regionStepper) checkpoint() *engine.ShardCheckpoint {
	return &engine.ShardCheckpoint{
		Start:       rs.rng.Start,
		Count:       rs.rng.Count,
		DoneSlots:   rs.dedup.Next(),
		FleetSeed:   rs.fleetSeed,
		Down:        append([]bool(nil), rs.down...),
		DownErrors:  append([]string(nil), rs.downErrs...),
		JitterDraws: append([]int(nil), rs.draws...),
	}
}

// observe folds an admitted delta's fault bookkeeping into the root-side
// shard mirror. Only integer/bool/string fields are touched; the float terms
// flow to the engine untouched.
func (rs *regionStepper) observe(d *engine.SlotDelta) {
	for j := range d.Edges {
		ed := &d.Edges[j]
		rs.draws[j] += ed.Retries
		if ed.WentDown {
			rs.downErrs[j] = ed.DownError
		}
		if !ed.Served {
			rs.down[j] = true
		}
	}
}

// degradeDelta synthesizes the shard's delta once it fell below quorum:
// every edge contributes the engine's down fallback (Served=false, zero
// terms), with edges that were still up announcing WentDown exactly once
// with the canonical degrade reason — byte-identical to an in-process
// Degrade run whose steppers fail with that reason at the same slot.
func (rs *regionStepper) degradeDelta(slot int) engine.SlotDelta {
	rs.dedup.Admit(slot)
	d := engine.SlotDelta{Start: rs.rng.Start, Edges: rs.buf[:0]}
	for j := 0; j < rs.rng.Count; j++ {
		ed := engine.EdgeDelta{}
		if !rs.down[j] {
			ed.WentDown = true
			ed.DownError = rs.degraded
			rs.down[j] = true
			rs.downErrs[j] = rs.degraded
		}
		d.Edges = append(d.Edges, ed)
	}
	rs.buf = d.Edges[:0]
	return d
}

// RegionConfig parameterizes a regional coordinator.
type RegionConfig struct {
	// RegionID identifies the shard this coordinator claims from the root.
	// Ids below the root's Regions claim an initial shard; higher ids join
	// as standby capacity and serve only what rebalancing adopts into them.
	RegionID int
	// Source supplies the region's model zoo. Its size must match the
	// root's NumModels; the region ships checkpoints to its edges itself.
	Source ModelSource
	// Seed drives the region's edge resume-token issue and backoff jitter.
	// It is announced to the root so a mid-run handoff can reconstruct the
	// shard's token and jitter derivations on the adopter.
	Seed int64
	// Workers bounds how many of the region's edges step concurrently
	// (0 = one per edge).
	Workers int
	// SlotTimeout and HandshakeTimeout bound the per-edge exchanges and the
	// edge handshakes, exactly as CloudConfig's fields do.
	SlotTimeout      time.Duration
	HandshakeTimeout time.Duration
	// Retry is the region-local per-slot transient-failure budget.
	Retry RetryConfig
	// LeaveBeforeSlot, when positive, makes the coordinator announce a
	// graceful departure instead of serving the first assign for a slot >=
	// LeaveBeforeSlot: it replies MsgRegionLeave, waits for the root to
	// close the link (which it does once the shard has a new home), releases
	// its edges so they can redial the adopter, and returns cleanly. 0 never
	// leaves.
	LeaveBeforeSlot int
	// OnSlot, when non-nil, observes every ShardAssign the coordinator
	// receives (including duplicate replays after a resume) before it is
	// served — a hook for chaos schedules and metrics.
	OnSlot func(slot int)
}

// validateRegionConfig checks a RegionConfig before any wire traffic. It is
// deliberately a separate function: it never reaches the wire, so its plain
// validation errors stay outside the wire error taxonomy.
func validateRegionConfig(cfg RegionConfig) error {
	if cfg.Source == nil {
		return fmt.Errorf("deploy: nil model source")
	}
	if cfg.RegionID < 0 {
		return fmt.Errorf("deploy: negative region id %d", cfg.RegionID)
	}
	if cfg.Retry.Attempts < 0 {
		return fmt.Errorf("deploy: negative retry budget %d", cfg.Retry.Attempts)
	}
	if cfg.LeaveBeforeSlot < 0 {
		return fmt.Errorf("deploy: negative leave slot %d", cfg.LeaveBeforeSlot)
	}
	return nil
}

// regionShard is one contiguous edge range a coordinator serves: the initial
// shard from its RegionWelcome, plus one per adopted checkpoint.
type regionShard struct {
	start, count int
	shard        *engine.Shard
	tcp          []*tcpStepper
	done         int      // fold watermark: slots completed (cache holds done-1)
	last         *Message // cached ShardDelta of slot done-1
}

// RegionSession is the resumable coordinator-side state of one root run: the
// shard geometry and resume token from the initial RegionWelcome, the edge
// fleet, and the per-shard delta caches. The session outlives any single
// upstream connection — when the root link drops, redial and call Run again;
// the session re-handshakes with Resume set and answers duplicate
// ShardAssigns from its delta caches instead of re-stepping them, so the
// edges' serving streams are never double-drawn and the root never
// double-folds a slot whose delta was lost in flight.
type RegionSession struct {
	cfg RegionConfig
	ln  net.Listener

	welcomed  bool
	token     string
	horizon   int
	numModels int
	policy    engine.ErrorPolicy

	fleet  *edgeFleet
	stop   func()
	shards []*regionShard
}

// NewRegionSession builds a fresh session. ln is where the session admits
// its shard's edges (it must outlive the session; the session stops its own
// acceptor but never closes ln).
func NewRegionSession(ln net.Listener, cfg RegionConfig) (*RegionSession, error) {
	if err := validateRegionConfig(cfg); err != nil {
		return nil, err
	}
	return &RegionSession{cfg: cfg, ln: ln}, nil
}

// assignOutcome classifies one handled ShardAssign. The explicit enum keeps
// the dispatch honest: a shard Step error can wrap a transient cause (a
// retry budget exhausted on a transient failure), so Transient(err) must not
// decide whether the session is over.
type assignOutcome int

const (
	assignOK       assignOutcome = iota
	assignLeft                   // graceful departure announced
	assignConnLost               // upstream write failed; resume can heal it
	assignFatal                  // shard or protocol failure; the run is over
)

// Run serves the session over one upstream connection until it ends. done
// reports whether the session is over: a clean Done (err == nil), a root
// abort, a graceful departure, or a fatal local/protocol failure. done ==
// false means the upstream connection itself failed (err is the transient
// cause) and the caller may redial and call Run again to resume the session
// — the edge fleet stays connected across the gap.
func (s *RegionSession) Run(upstream net.Conn) (done bool, err error) {
	if err := s.handshake(upstream); err != nil {
		if Transient(err) {
			return false, err
		}
		s.release()
		return true, err
	}
	for {
		m, err := ReadMessage(upstream)
		if err != nil {
			err = fmt.Errorf("deploy: region %d upstream: %w", s.cfg.RegionID, err)
			if Transient(err) {
				return false, err // fleet stays up; a resumed Run continues it
			}
			s.abortAll(err)
			return true, err
		}
		switch m.Type {
		case MsgShardAssign:
			outcome, aerr := s.handleAssign(upstream, m)
			switch outcome {
			case assignOK:
			case assignLeft:
				// Hold the edges until the root closes the link: by then the
				// adopter has the shard, so the edges redial into a fleet
				// that knows them.
				_, _ = ReadMessage(upstream)
				s.release()
				return true, nil
			case assignConnLost:
				return false, aerr
			case assignFatal:
				s.abortAll(aerr)
				return true, aerr
			}
		case MsgShardAdopt:
			if aerr := s.handleAdopt(m); aerr != nil {
				_ = WriteMessage(upstream, &Message{Type: MsgError, Reason: aerr.Error()})
				s.abortAll(aerr)
				return true, aerr
			}
		case MsgDone:
			ferr := s.finishAll()
			if ferr != nil && s.policy == engine.FailFast {
				return true, ferr
			}
			return true, nil
		case MsgError:
			aerr := fmt.Errorf("deploy: root aborted: %s", m.Reason) //lint:allow errtaxonomy abort reason is forwarded verbatim and the run is already terminal
			s.abortAll(aerr)
			return true, aerr
		default:
			aerr := protocolErrorf("unexpected message type %d from root", m.Type)
			_ = WriteMessage(upstream, &Message{Type: MsgError, Reason: aerr.Error()})
			s.abortAll(aerr)
			return true, aerr
		}
	}
}

// handshake performs the initial or resume RegionHello/RegionWelcome
// exchange. The initial exchange builds the edge fleet and the initial
// shard; a resume exchange re-binds the existing session to the new
// connection.
func (s *RegionSession) handshake(upstream net.Conn) error {
	hello := &Message{Type: MsgRegionHello, RegionID: s.cfg.RegionID, Seed: s.cfg.Seed}
	if s.welcomed {
		hello.Resume = true
		hello.ResumeToken = s.token
		hello.DoneSlots = s.minDone()
	}
	if err := WriteMessage(upstream, hello); err != nil {
		return fmt.Errorf("deploy: region hello: %w", err)
	}
	w, err := ReadMessage(upstream)
	if err != nil {
		return fmt.Errorf("deploy: region welcome: %w", err)
	}
	if w.Type == MsgError {
		return fmt.Errorf("deploy: root rejected region %d: %s", s.cfg.RegionID, w.Reason) //lint:allow errtaxonomy rejection reason is forwarded verbatim and the handshake is already terminal
	}
	if w.Type != MsgRegionWelcome {
		return protocolErrorf("expected RegionWelcome, got type %d", w.Type)
	}
	if s.welcomed {
		return nil // resume Welcome carries no shard geometry
	}
	if w.Count < 0 || w.Start < 0 || w.Horizon <= 0 {
		return protocolErrorf("implausible shard [%d,%d) over %d slots", w.Start, w.Start+w.Count, w.Horizon)
	}
	if w.NumModels != s.cfg.Source.NumModels() {
		return protocolErrorf("root announces %d models, region zoo has %d", w.NumModels, s.cfg.Source.NumModels())
	}
	s.policy = engine.FailFast
	if w.Degrade {
		s.policy = engine.Degrade
	}
	s.horizon = w.Horizon
	s.numModels = w.NumModels
	s.token = w.ResumeToken

	// Count == 0 is a standby welcome: the fleet starts empty and gains its
	// ranges only through mid-run shard adoption.
	s.fleet = newEdgeFleet(fleetConfig{
		count:   w.Count,
		offset:  w.Start,
		horizon: w.Horizon,
		seed:    s.cfg.Seed,
		timeouts: func() (time.Duration, time.Duration) {
			return s.cfg.HandshakeTimeout, s.cfg.SlotTimeout
		},
		retry: s.cfg.Retry,
	}, s.cfg.Source)
	s.stop = s.fleet.start(s.ln)
	if err := s.fleet.awaitInitial(); err != nil {
		return err
	}
	if w.Count > 0 {
		tcp := s.fleet.steppers()
		shard, err := s.buildShard(w.Start, tcp)
		if err != nil {
			return err
		}
		s.shards = append(s.shards, &regionShard{start: w.Start, count: w.Count, shard: shard, tcp: tcp})
	}
	s.welcomed = true
	return nil
}

// buildShard wraps a range's steppers into an engine Shard.
func (s *RegionSession) buildShard(start int, tcp []*tcpStepper) (*engine.Shard, error) {
	steppers := make([]engine.EdgeStepper, len(tcp))
	for i, st := range tcp {
		steppers[i] = st
	}
	workers := s.cfg.Workers
	if workers <= 0 {
		workers = len(steppers)
	}
	return engine.NewShard(engine.ShardConfig{Start: start, Workers: workers, Policy: s.policy}, steppers)
}

// shardAt resolves an assign's range start to the session's shard.
func (s *RegionSession) shardAt(start int) *regionShard {
	for _, sh := range s.shards {
		if sh.start == start {
			return sh
		}
	}
	return nil
}

// minDone is the session's resume watermark: the smallest per-shard fold
// position (0 with no shards).
func (s *RegionSession) minDone() int {
	min := 0
	for k, sh := range s.shards {
		if k == 0 || sh.done < min {
			min = sh.done
		}
	}
	return min
}

// handleAssign serves one ShardAssign: route it to its shard, answer a
// duplicate from the delta cache, honor a scheduled departure, otherwise
// step the shard and stream the delta back.
func (s *RegionSession) handleAssign(upstream net.Conn, m *Message) (assignOutcome, error) {
	sh := s.shardAt(m.Start)
	if sh == nil {
		err := protocolErrorf("shard assign slot %d: unknown range start %d", m.Slot, m.Start)
		_ = WriteMessage(upstream, &Message{Type: MsgError, Reason: err.Error()})
		return assignFatal, err
	}
	if len(m.Arms) != sh.count || len(m.Downloads) != sh.count {
		err := protocolErrorf("shard assign slot %d: %d arms / %d downloads for %d edges",
			m.Slot, len(m.Arms), len(m.Downloads), sh.count)
		_ = WriteMessage(upstream, &Message{Type: MsgError, Reason: err.Error()})
		return assignFatal, err
	}
	if s.cfg.OnSlot != nil {
		s.cfg.OnSlot(m.Slot)
	}
	if sh.last != nil && m.Slot == sh.last.Slot {
		// Duplicate assign: the root never saw our delta for this slot.
		// Answer from the cache — re-stepping would double-draw the edges'
		// serving streams and double-fold the slot.
		if err := WriteMessage(upstream, sh.last); err != nil {
			return assignConnLost, fmt.Errorf("deploy: region %d delta (resend): %w", s.cfg.RegionID, err)
		}
		return assignOK, nil
	}
	if s.cfg.LeaveBeforeSlot > 0 && m.Slot >= s.cfg.LeaveBeforeSlot {
		_ = WriteMessage(upstream, &Message{Type: MsgRegionLeave, Slot: m.Slot})
		return assignLeft, nil
	}
	delta, err := sh.shard.Step(m.Slot, m.Arms, m.Downloads)
	if err != nil {
		// Forward the shard's error verbatim so the root aborts with the
		// exact error a monolithic run would report.
		_ = WriteMessage(upstream, &Message{Type: MsgError, Reason: err.Error()})
		return assignFatal, err
	}
	// Deep-copy into the cache: the shard recycles its delta buffer on the
	// next Step, but the cache must survive until the root acks the next
	// slot.
	cp := engine.SlotDelta{Start: delta.Start, Edges: append([]engine.EdgeDelta(nil), delta.Edges...)}
	sh.last = &Message{Type: MsgShardDelta, Slot: m.Slot, Delta: &cp}
	sh.done = m.Slot + 1
	if err := WriteMessage(upstream, sh.last); err != nil {
		return assignConnLost, fmt.Errorf("deploy: region %d delta: %w", s.cfg.RegionID, err)
	}
	return assignOK, nil
}

// handleAdopt installs an orphaned shard from its checkpoint: rebuild the
// range's links and tokens from the original fleet seed, restore the
// per-edge down state, and start serving assigns for the range. The shard's
// edges redial this coordinator's listener and resume their sessions.
func (s *RegionSession) handleAdopt(m *Message) error {
	if err := ValidateAdopt(m); err != nil {
		return err
	}
	ck := m.Checkpoint
	tcp, err := s.fleet.adopt(ck)
	if err != nil {
		return err
	}
	shard, err := s.buildShard(ck.Start, tcp)
	if err != nil {
		return err
	}
	if err := shard.RestoreDown(ck.Down); err != nil {
		return err
	}
	s.shards = append(s.shards, &regionShard{
		start: ck.Start,
		count: ck.Count,
		shard: shard,
		tcp:   tcp,
		done:  ck.DoneSlots,
	})
	return nil
}

// release stops the acceptor and silently closes every edge connection: the
// edges see a transient drop and can redial whoever serves them next.
func (s *RegionSession) release() {
	if s.stop != nil {
		s.stop()
		s.stop = nil
	}
	if s.fleet == nil {
		return
	}
	for _, sh := range s.shards {
		s.fleet.closeAll(sh.tcp)
	}
}

// finishAll notifies every still-connected edge that the run is over, then
// releases the fleet.
func (s *RegionSession) finishAll() error {
	var errs []error
	for _, sh := range s.shards {
		if err := s.fleet.finish(sh.tcp); err != nil {
			errs = append(errs, err)
		}
	}
	s.release()
	return errors.Join(errs...)
}

// abortAll tells every still-connected edge the run failed, then releases
// the fleet.
func (s *RegionSession) abortAll(err error) {
	if s.fleet != nil {
		for _, sh := range s.shards {
			_ = s.fleet.abort(sh.tcp, err)
		}
	}
	s.release()
}

// RunRegion runs one regional coordinator to completion over a single
// upstream connection: it claims its shard from the root, admits the
// shard's edges from ln (global edge ids, exactly the monolithic cloud's
// admission protocol), and serves ShardAssign/ShardDelta rounds until the
// root sends Done or Error. The returned error is nil on a completed run; a
// transient upstream failure is an error here (use RunRegionResumable to
// survive it).
func RunRegion(upstream net.Conn, ln net.Listener, cfg RegionConfig) error {
	s, err := NewRegionSession(ln, cfg)
	if err != nil {
		return err
	}
	done, err := s.Run(upstream)
	if !done {
		s.abortAll(err)
	}
	return err
}

// RunRegionResumable runs a full coordinator session with automatic
// reconnect: when the upstream connection fails transiently, it redials and
// resumes, up to maxResumes times. dial is also what paces reconnection — a
// dialer may sleep or back off internally; RunRegionResumable itself never
// waits, so deterministic harnesses stay in control of time.
func RunRegionResumable(dial func() (net.Conn, error), ln net.Listener, cfg RegionConfig, maxResumes int) error {
	if dial == nil {
		return fmt.Errorf("deploy: nil dialer") //lint:allow errtaxonomy argument validation before any wire traffic
	}
	s, err := NewRegionSession(ln, cfg)
	if err != nil {
		return err
	}
	resumes := 0
	var lastErr error
	for {
		conn, err := dial()
		if err == nil {
			var done bool
			done, err = s.Run(conn)
			conn.Close()
			if done {
				return err
			}
		}
		lastErr = err
		if resumes >= maxResumes {
			// Release (don't abort) the edges: the root may already have
			// rebalanced this session's shards, and the edges can still
			// migrate to the adopter.
			s.release()
			return fmt.Errorf("deploy: region %d: resume budget exhausted after %d resumes: %w", s.cfg.RegionID, resumes, lastErr)
		}
		resumes++
	}
}
