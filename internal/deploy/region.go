// The regional-aggregator tier: a root cloud process runs the controller
// and the global trade/ledger accounting, while regional coordinator
// processes each own one contiguous shard of the fleet — admitting their
// edges over TCP exactly as the monolithic cloud would — and stream per-slot
// SlotDeltas back to the root. Because deltas carry per-edge terms (never
// partial float sums) and encoding/json round-trips float64 exactly, the
// root's fold is bit-identical to a single-process run over the same fleet;
// the monolithic/regional parity test pins this.
//
// Scope boundary: edges resume within their region (the fleet's retry and
// resume machinery is region-local), but a lost region link is fatal to the
// run — the tier distributes throughput, not region-level fault tolerance.
package deploy

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/market"
)

// RootConfig parameterizes the root cloud of a regional deployment.
type RootConfig struct {
	// Edges is the total fleet size across all regions; Regions is the
	// number of coordinators that will connect. Edges are partitioned into
	// Regions contiguous shards with engine.PartitionEdges: region r owns
	// shard r.
	Edges   int
	Regions int
	// Horizon is the number of slots to run.
	Horizon int
	// DownloadCosts holds u_i per global edge id; length must equal Edges.
	DownloadCosts []float64
	// InitialCap (grams) and EmissionRate (g/kWh) configure the carbon side.
	InitialCap   float64
	EmissionRate float64
	// Prices is the allowance price series (length >= Horizon).
	Prices *market.Prices
	// EmissionScale hints the expected per-slot emission for Algorithm 2's
	// step sizes (0 = 1).
	EmissionScale float64
	// Seed drives the controller's sampling.
	Seed int64
	// NumModels is the zoo size N. The root never ships checkpoints — the
	// regions hold the zoo — so it only needs the count.
	NumModels int
	// Policy is the per-edge failure reaction the regions must apply
	// (engine.Degrade marks failed edges down shard-locally; the zero value
	// engine.FailFast aborts the run on the first edge failure). Shard-level
	// failures — a lost region link — abort the run regardless.
	Policy engine.ErrorPolicy
	// SlotTimeout bounds each per-region exchange (assign + delta). Zero
	// disables deadlines.
	SlotTimeout time.Duration
	// HandshakeTimeout bounds each connection's RegionHello/RegionWelcome
	// exchange. Zero selects DefaultHandshakeTimeout; negative disables the
	// deadline.
	HandshakeTimeout time.Duration
}

// Root is the root cloud: the controller plus one regionStepper per shard.
type Root struct {
	cfg    RootConfig
	ctrl   *core.Controller
	ranges []engine.Range
	done   atomic.Bool
}

// NewRoot validates the configuration and builds the controller.
func NewRoot(cfg RootConfig) (*Root, error) {
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("deploy: need at least one edge, got %d", cfg.Edges)
	}
	if cfg.Regions <= 0 || cfg.Regions > cfg.Edges {
		return nil, fmt.Errorf("deploy: %d regions for %d edges", cfg.Regions, cfg.Edges)
	}
	if len(cfg.DownloadCosts) != cfg.Edges {
		return nil, fmt.Errorf("deploy: %d download costs for %d edges", len(cfg.DownloadCosts), cfg.Edges)
	}
	if cfg.Prices == nil || cfg.Prices.Horizon() < cfg.Horizon {
		return nil, fmt.Errorf("deploy: price series shorter than horizon")
	}
	if cfg.NumModels <= 0 {
		return nil, fmt.Errorf("deploy: NumModels must be positive, got %d", cfg.NumModels)
	}
	if cfg.Policy != engine.FailFast && cfg.Policy != engine.Degrade {
		return nil, fmt.Errorf("deploy: unknown error policy %d", cfg.Policy)
	}
	ctrl, err := core.New(core.Config{
		NumModels:     cfg.NumModels,
		DownloadCosts: cfg.DownloadCosts,
		Horizon:       cfg.Horizon,
		InitialCap:    cfg.InitialCap,
		EmissionScale: cfg.EmissionScale,
		PriceScale:    avgBuyPrice(cfg.Prices, cfg.Horizon),
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: controller: %w", err)
	}
	if _, err := energy.NewMeter(cfg.EmissionRate); err != nil {
		return nil, err
	}
	return &Root{cfg: cfg, ctrl: ctrl, ranges: engine.PartitionEdges(cfg.Edges, cfg.Regions)}, nil
}

// Serve admits cfg.Regions coordinators from ln, runs the full horizon
// through engine.RunSharded with one regionStepper per shard, and returns
// the summary. Unlike the monolithic cloud's listener, ln only admits the
// initial coordinator handshakes — a dropped region cannot redial (a lost
// region link is fatal), so the acceptor stops once the fleet is complete.
func (r *Root) Serve(ln net.Listener) (*Summary, error) {
	regions := make([]*regionStepper, len(r.ranges))
	admitted := make(chan *regionStepper, len(r.ranges))
	acceptErr := make(chan error, 1)
	go r.acceptLoop(ln, admitted, acceptErr)
	defer func() {
		r.done.Store(true)
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Unix(1, 0)) //nolint:errcheck // best-effort unblock
		}
	}()
	connected := 0
	for connected < len(regions) {
		select {
		case rs := <-admitted:
			regions[rs.index] = rs
			connected++
		case err := <-acceptErr:
			for {
				select {
				case rs := <-admitted:
					regions[rs.index] = rs
					connected++
					continue
				default:
				}
				break
			}
			if connected < len(regions) {
				return nil, fmt.Errorf("deploy: accept: %w", err)
			}
		}
	}
	defer func() {
		for _, rs := range regions {
			rs.conn.Close()
		}
	}()

	shards := make([]engine.ShardStepper, len(regions))
	for k, rs := range regions {
		shards[k] = rs
	}
	res, err := engine.RunSharded(engine.Config{
		Name:         "deploy",
		Horizon:      r.cfg.Horizon,
		NumModels:    r.cfg.NumModels,
		InitialCap:   r.cfg.InitialCap,
		EmissionRate: r.cfg.EmissionRate,
		Prices:       r.cfg.Prices,
		SwitchCosts:  r.cfg.DownloadCosts,
		Policy:       r.cfg.Policy,
	}, r.ctrl, shards)
	if err != nil {
		msg := &Message{Type: MsgError, Reason: err.Error()}
		for _, rs := range regions {
			_ = WriteMessage(rs.conn, msg) // best effort; we are already failing
		}
		return nil, err
	}
	var finishErrs []error
	for _, rs := range regions {
		if werr := WriteMessage(rs.conn, &Message{Type: MsgDone}); werr != nil {
			finishErrs = append(finishErrs, fmt.Errorf("deploy: send done to region %d: %w", rs.index, werr))
		}
	}
	if err := errors.Join(finishErrs...); err != nil && r.cfg.Policy == engine.FailFast {
		return nil, err
	}
	// Edge resumes are region-local; the root does not observe them.
	return summaryFromResult(res, make([]int, r.cfg.Edges)), nil
}

// acceptLoop admits the coordinators' initial handshakes concurrently.
func (r *Root) acceptLoop(ln net.Listener, admitted chan<- *regionStepper, acceptErr chan<- error) {
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	claimed := make([]bool, len(r.ranges))
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if !r.done.Load() {
				select {
				case acceptErr <- err:
				default:
				}
			}
			return
		}
		if r.done.Load() {
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.admit(conn, claimed, &mu, admitted)
		}()
	}
}

// admit performs one coordinator's handshake under the handshake deadline.
func (r *Root) admit(conn net.Conn, claimed []bool, mu *sync.Mutex, admitted chan<- *regionStepper) {
	ok := false
	defer func() {
		if !ok {
			conn.Close()
		}
	}()
	timeout := r.cfg.HandshakeTimeout
	if timeout == 0 {
		timeout = DefaultHandshakeTimeout
	}
	if timeout > 0 {
		//lint:allow nodeterm real I/O deadline on a live connection; wall time is the only clock the kernel honors
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
	}
	m, err := ReadMessage(conn)
	if err != nil {
		return
	}
	if m.Type != MsgRegionHello {
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: "expected RegionHello"})
		return
	}
	if m.RegionID < 0 || m.RegionID >= len(r.ranges) {
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("bad region id %d", m.RegionID)})
		return
	}
	mu.Lock()
	if claimed[m.RegionID] {
		mu.Unlock()
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("duplicate region id %d", m.RegionID)})
		return
	}
	claimed[m.RegionID] = true
	mu.Unlock()
	rg := r.ranges[m.RegionID]
	welcome := &Message{
		Type:      MsgRegionWelcome,
		RegionID:  m.RegionID,
		Start:     rg.Start,
		Count:     rg.Count,
		Horizon:   r.cfg.Horizon,
		NumModels: r.cfg.NumModels,
		Degrade:   r.cfg.Policy == engine.Degrade,
	}
	if err := WriteMessage(conn, welcome); err != nil {
		mu.Lock()
		claimed[m.RegionID] = false
		mu.Unlock()
		return
	}
	if timeout > 0 {
		conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	admitted <- &regionStepper{root: r, index: m.RegionID, rng: rg, conn: conn}
	ok = true
}

// regionStepper is the root-side engine.ShardStepper of one region: Step is
// one ShardAssign/ShardDelta round trip on the region link.
type regionStepper struct {
	root  *Root
	index int
	rng   engine.Range
	conn  net.Conn
	delta engine.SlotDelta // decoded in place per slot; valid until next Step
}

var _ engine.ShardStepper = (*regionStepper)(nil)

// Range implements engine.ShardStepper.
func (rs *regionStepper) Range() (start, count int) { return rs.rng.Start, rs.rng.Count }

// Step implements engine.ShardStepper. A failed exchange is a shard-level
// error — it aborts the run regardless of policy (a lost region link is
// fatal; per-edge failures were already resolved inside the region's shard).
func (rs *regionStepper) Step(slot int, arms []int, downloads []bool) (engine.SlotDelta, error) {
	if t := rs.root.cfg.SlotTimeout; t > 0 {
		//lint:allow nodeterm real I/O deadline on a live TCP connection; wall time is the only clock the kernel honors
		if err := rs.conn.SetDeadline(time.Now().Add(t)); err != nil {
			return engine.SlotDelta{}, fmt.Errorf("deploy: region %d deadline: %w", rs.index, err)
		}
		defer rs.conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	assign := &Message{Type: MsgShardAssign, Slot: slot, Arms: arms, Downloads: downloads}
	if err := WriteMessage(rs.conn, assign); err != nil {
		return engine.SlotDelta{}, fmt.Errorf("deploy: region %d assign: %w", rs.index, err)
	}
	m, err := ReadMessage(rs.conn)
	if err != nil {
		return engine.SlotDelta{}, fmt.Errorf("deploy: region %d delta: %w", rs.index, err)
	}
	if m.Type == MsgError {
		// The region forwards its shard's error verbatim (e.g. the engine's
		// FailFast "engine: edge %d slot %d: ..." wrapping), so the root run
		// fails with the same error string a monolithic run would report.
		return engine.SlotDelta{}, errors.New(m.Reason) //lint:allow errtaxonomy the shard error string must round-trip verbatim so distributed and monolithic runs fail identically
	}
	if err := ValidateDelta(m, rs.rng.Start, rs.rng.Count, slot); err != nil {
		return engine.SlotDelta{}, fmt.Errorf("deploy: region %d: %w", rs.index, err)
	}
	rs.delta = *m.Delta
	return rs.delta, nil
}

// RegionConfig parameterizes a regional coordinator.
type RegionConfig struct {
	// RegionID identifies the shard this coordinator claims from the root.
	RegionID int
	// Source supplies the region's model zoo. Its size must match the
	// root's NumModels; the region ships checkpoints to its edges itself.
	Source ModelSource
	// Seed drives the region's resume-token issue and backoff jitter.
	Seed int64
	// Workers bounds how many of the region's edges step concurrently
	// (0 = one per edge).
	Workers int
	// SlotTimeout and HandshakeTimeout bound the per-edge exchanges and the
	// edge handshakes, exactly as CloudConfig's fields do.
	SlotTimeout      time.Duration
	HandshakeTimeout time.Duration
	// Retry is the region-local per-slot transient-failure budget.
	Retry RetryConfig
}

// validateRegionConfig checks a RegionConfig before any wire traffic. It is
// deliberately a separate function: it never reaches the wire, so its plain
// validation errors stay outside the wire error taxonomy.
func validateRegionConfig(cfg RegionConfig) error {
	if cfg.Source == nil {
		return fmt.Errorf("deploy: nil model source")
	}
	if cfg.RegionID < 0 {
		return fmt.Errorf("deploy: negative region id %d", cfg.RegionID)
	}
	if cfg.Retry.Attempts < 0 {
		return fmt.Errorf("deploy: negative retry budget %d", cfg.Retry.Attempts)
	}
	return nil
}

// RunRegion runs one regional coordinator to completion: it claims its
// shard from the root over upstream, admits the shard's edges from ln
// (global edge ids, exactly the monolithic cloud's admission protocol), and
// serves ShardAssign/ShardDelta rounds until the root sends Done or Error.
// The returned error is nil on a completed run.
func RunRegion(upstream net.Conn, ln net.Listener, cfg RegionConfig) error {
	if err := validateRegionConfig(cfg); err != nil {
		return err
	}
	if err := WriteMessage(upstream, &Message{Type: MsgRegionHello, RegionID: cfg.RegionID}); err != nil {
		return fmt.Errorf("deploy: region hello: %w", err)
	}
	w, err := ReadMessage(upstream)
	if err != nil {
		return fmt.Errorf("deploy: region welcome: %w", err)
	}
	if w.Type == MsgError {
		return fmt.Errorf("deploy: root rejected region %d: %s", cfg.RegionID, w.Reason) //lint:allow errtaxonomy rejection reason is forwarded verbatim and the handshake is already terminal
	}
	if w.Type != MsgRegionWelcome {
		return protocolErrorf("expected RegionWelcome, got type %d", w.Type)
	}
	if w.Count <= 0 || w.Start < 0 || w.Horizon <= 0 {
		return protocolErrorf("implausible shard [%d,%d) over %d slots", w.Start, w.Start+w.Count, w.Horizon)
	}
	if w.NumModels != cfg.Source.NumModels() {
		return protocolErrorf("root announces %d models, region zoo has %d", w.NumModels, cfg.Source.NumModels())
	}
	policy := engine.FailFast
	if w.Degrade {
		policy = engine.Degrade
	}

	fleet := newEdgeFleet(fleetConfig{
		count:   w.Count,
		offset:  w.Start,
		horizon: w.Horizon,
		seed:    cfg.Seed,
		timeouts: func() (time.Duration, time.Duration) {
			return cfg.HandshakeTimeout, cfg.SlotTimeout
		},
		retry: cfg.Retry,
	}, cfg.Source)
	stop, err := fleet.awaitFleet(ln)
	if err != nil {
		return err
	}
	defer stop()
	tcp := fleet.steppers()
	defer fleet.closeAll(tcp)
	steppers := make([]engine.EdgeStepper, len(tcp))
	for i, s := range tcp {
		steppers[i] = s
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = len(steppers)
	}
	shard, err := engine.NewShard(engine.ShardConfig{Start: w.Start, Workers: workers, Policy: policy}, steppers)
	if err != nil {
		return err
	}

	for {
		m, err := ReadMessage(upstream)
		if err != nil {
			err = fmt.Errorf("deploy: region %d upstream: %w", cfg.RegionID, err)
			return fleet.abort(tcp, err)
		}
		switch m.Type {
		case MsgShardAssign:
			if len(m.Arms) != w.Count || len(m.Downloads) != w.Count {
				err := protocolErrorf("shard assign slot %d: %d arms / %d downloads for %d edges",
					m.Slot, len(m.Arms), len(m.Downloads), w.Count)
				_ = WriteMessage(upstream, &Message{Type: MsgError, Reason: err.Error()})
				return fleet.abort(tcp, err)
			}
			delta, err := shard.Step(m.Slot, m.Arms, m.Downloads)
			if err != nil {
				// Forward the shard's error verbatim so the root aborts with
				// the exact error a monolithic run would report.
				_ = WriteMessage(upstream, &Message{Type: MsgError, Reason: err.Error()})
				return fleet.abort(tcp, err)
			}
			if err := WriteMessage(upstream, &Message{Type: MsgShardDelta, Slot: m.Slot, Delta: &delta}); err != nil {
				err = fmt.Errorf("deploy: region %d delta: %w", cfg.RegionID, err)
				return fleet.abort(tcp, err)
			}
		case MsgDone:
			if err := fleet.finish(tcp); err != nil && policy == engine.FailFast {
				return err
			}
			return nil
		case MsgError:
			err := fmt.Errorf("deploy: root aborted: %s", m.Reason) //lint:allow errtaxonomy abort reason is forwarded verbatim and the run is already terminal
			_ = fleet.abort(tcp, err)
			return err
		default:
			err := protocolErrorf("unexpected message type %d from root", m.Type)
			_ = WriteMessage(upstream, &Message{Type: MsgError, Reason: err.Error()})
			return fleet.abort(tcp, err)
		}
	}
}
