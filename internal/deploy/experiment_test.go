package deploy

// The elastic-regional-tier scale experiment behind the EXPERIMENTS.md
// "Elastic regional tier at 100k edges" entry. It is not part of the tier-1
// suite: set CARBONEDGE_EXPERIMENT=1 to run it (and optionally
// CARBONEDGE_EXPERIMENT_EDGES to change the fleet size):
//
//	CARBONEDGE_EXPERIMENT=1 go test -run TestExperimentElasticRegionScale \
//	    -v -timeout 60m ./internal/deploy/
//
// The run drives the real root + regional coordinators over loopback TCP
// (root links) while the fleet's edge links are in-memory net.Pipe pairs —
// the host's fd ceiling (20k here) makes 100k real sockets impossible in
// one process, and the deploy layer only ever sees net.Conn either way.
// Mid-run, one coordinator's upstream link is cut; it redials, resumes from
// its shard watermark, and the final summary must equal the fault-free
// run's bytes once the elasticity counters are stripped.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/faults"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// chanListener serves pre-created in-memory connections: Accept drains the
// queue, then blocks until Close.
type chanListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newChanListener(capacity int) *chanListener {
	return &chanListener{conns: make(chan net.Conn, capacity), done: make(chan struct{})}
}

func (l *chanListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *chanListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *chanListener) Addr() net.Addr { return &net.IPAddr{} }

// runElasticScale drives one root+regions run over the parity world and
// returns the summary and its wall time. killRegion < 0 runs fault-free;
// otherwise that coordinator's first upstream connection is cut at
// killSlot and it must redial and resume.
func runElasticScale(t *testing.T, edges, regions, horizon int, seed int64, killRegion, killSlot int) (*Summary, time.Duration) {
	t.Helper()
	w := newParityWorld(seed)
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), horizon, numeric.SplitRNG(seed, "scale-prices"))
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, edges)
	for i := range costs {
		costs[i] = 0.4 + 0.2*float64(i%16)
	}
	retry := defaultChaosRetry()
	root, err := NewRoot(RootConfig{
		Edges:         edges,
		Regions:       regions,
		Horizon:       horizon,
		DownloadCosts: costs,
		InitialCap:    0.01,
		EmissionRate:  500,
		Prices:        prices,
		EmissionScale: 1e-3,
		Seed:          seed,
		NumModels:     len(w.metas),
		Policy:        engine.Degrade,
		Retry:         retry,
	})
	if err != nil {
		t.Fatal(err)
	}
	root.sleep = func(time.Duration) {}

	rootLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rootLn.Close()

	start := time.Now()
	var wg sync.WaitGroup
	ranges := engine.PartitionEdges(edges, regions)
	regionErrs := make([]error, regions)
	edgeErrs := make([]error, edges)
	for r := range ranges {
		rg := ranges[r]
		ln := newChanListener(rg.Count)
		for i := rg.Start; i < rg.Start+rg.Count; i++ {
			regionSide, edgeSide := net.Pipe()
			ln.conns <- regionSide
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer edgeSide.Close()
				edgeErrs[i] = RunEdge(edgeSide, i, &parityRuntime{w: w, edge: i, rng: w.edgeRNG(i)})
			}()
		}
		id := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ln.Close()
			var fcMu sync.Mutex
			var fc *faults.Conn
			dials := 0
			dial := func() (net.Conn, error) {
				conn, err := net.Dial("tcp", rootLn.Addr().String())
				if err != nil {
					return nil, err
				}
				dials++
				if dials == 1 && id == killRegion {
					f, ferr := faults.New(conn, faults.KillAt(killSlot), numeric.SplitRNG(seed, fmt.Sprintf("scale-fault-%d", id)), func(time.Duration) {})
					if ferr != nil {
						conn.Close()
						return nil, ferr
					}
					fcMu.Lock()
					fc = f
					fcMu.Unlock()
					return f, nil
				}
				fcMu.Lock()
				fc = nil // redials are clean
				fcMu.Unlock()
				return conn, nil
			}
			regionErrs[id] = RunRegionResumable(dial, ln, RegionConfig{
				RegionID: id,
				Source:   &paritySource{w: w},
				Seed:     seed + int64(id),
				Retry:    retry,
				OnSlot: func(slot int) {
					fcMu.Lock()
					if fc != nil {
						fc.SetSlot(slot)
					}
					fcMu.Unlock()
				},
			}, 3)
		}()
	}

	sum, err := root.Serve(rootLn)
	if err != nil {
		t.Fatalf("root.Serve: %v", err)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for id, err := range regionErrs {
		if err != nil {
			t.Fatalf("region %d: %v", id, err)
		}
	}
	for i, err := range edgeErrs {
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
	}
	return sum, elapsed
}

// peakRSSMiB reads the process high-water resident set from the kernel.
func peakRSSMiB(t *testing.T) float64 {
	t.Helper()
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		t.Logf("peak RSS unavailable: %v", err)
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		kb, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			break
		}
		return kb / 1024
	}
	return 0
}

func TestExperimentElasticRegionScale(t *testing.T) {
	if os.Getenv("CARBONEDGE_EXPERIMENT") == "" {
		t.Skip("set CARBONEDGE_EXPERIMENT=1 to run the elastic-tier scale experiment")
	}
	edges := 100000
	if v := os.Getenv("CARBONEDGE_EXPERIMENT_EDGES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad CARBONEDGE_EXPERIMENT_EDGES %q", v)
		}
		edges = n
	}
	const (
		regions = 8
		horizon = 8
		seed    = int64(71)
		killAt  = 4
		killed  = 3
	)

	clean, cleanTime := runElasticScale(t, edges, regions, horizon, seed, -1, 0)
	chaos, chaosTime := runElasticScale(t, edges, regions, horizon, seed, killed, killAt)

	if got := chaos.RegionResumes[killed]; got != 1 {
		t.Errorf("RegionResumes[%d] = %d, want 1", killed, got)
	}
	if !reflect.DeepEqual(stripElasticity(chaos), clean) {
		t.Error("recovered summary diverged from the fault-free run")
	}
	cleanJSON, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	chaosJSON, err := json.Marshal(stripElasticity(chaos))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("edges=%d regions=%d horizon=%d", edges, regions, horizon)
	t.Logf("fault-free: %v   kill+resume: %v   peak RSS: %.0f MiB", cleanTime, chaosTime, peakRSSMiB(t))
	t.Logf("summary diff: %d bytes vs %d bytes, equal=%v", len(cleanJSON), len(chaosJSON), string(cleanJSON) == string(chaosJSON))
	total := 0.0
	for _, e := range clean.Emissions {
		total += e
	}
	t.Logf("loss=%.2f switches=%d emissions=%.4fg trade=%.4f fit=%.5fg",
		clean.ObservedLoss, clean.Switches, total, clean.TradingCost, clean.Fit)
}
