package deploy

import (
	"fmt"
	"net"
	"time"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// ModelSource supplies the cloud's model zoo: metadata plus serialized
// checkpoints to ship to edges.
type ModelSource interface {
	// NumModels returns N.
	NumModels() int
	// Meta returns the announced metadata of model n.
	Meta(n int) ModelMeta
	// Checkpoint returns the serialized weights of model n (what a switch
	// actually downloads). May be empty for surrogate sources.
	Checkpoint(n int) ([]byte, error)
}

// DefaultHandshakeTimeout bounds the Hello/Welcome exchange of a new
// connection when CloudConfig.HandshakeTimeout is zero: a client that
// connects and never speaks must not wedge admission.
const DefaultHandshakeTimeout = 30 * time.Second

// CloudConfig parameterizes a cloud server.
type CloudConfig struct {
	// Edges is the number of edge agents that will connect.
	Edges int
	// Horizon is the number of slots to run.
	Horizon int
	// DownloadCosts holds u_i per edge id; length must equal Edges.
	DownloadCosts []float64
	// InitialCap (grams) and EmissionRate (g/kWh) configure the carbon side.
	InitialCap   float64
	EmissionRate float64
	// Prices is the allowance price series (length >= Horizon).
	Prices *market.Prices
	// EmissionScale hints the expected per-slot emission for Algorithm 2's
	// step sizes (0 = 1).
	EmissionScale float64
	// Seed drives the controller's sampling, the resume-token issue, and the
	// deterministic backoff jitter streams.
	Seed int64
	// SlotTimeout bounds each per-edge exchange (assign + report). Zero
	// disables deadlines. A slow or hung edge then fails its slot instead
	// of stalling the whole fleet.
	SlotTimeout time.Duration
	// HandshakeTimeout bounds each connection's Hello/Welcome exchange.
	// Zero selects DefaultHandshakeTimeout; negative disables the deadline.
	HandshakeTimeout time.Duration
	// Retry is the per-slot transient-failure budget: how many times an
	// edge's exchange is retried (under deterministic capped-exponential
	// backoff) and how long each try waits for a dropped edge to redial and
	// resume. The zero value disables retries.
	Retry RetryConfig
	// Policy selects the engine's reaction to an edge that fails beyond its
	// retry budget: engine.FailFast (zero value, historical behavior) aborts
	// the run; engine.Degrade marks the edge down and completes the run on
	// the surviving fleet with exact accounting over the slots served.
	Policy engine.ErrorPolicy
}

// Summary is what a completed distributed run reports.
type Summary struct {
	// ObservedLoss accumulates the reported per-slot average losses
	// (including the measured computation time, the paper's L + v).
	ObservedLoss float64
	// TradingCost is sum z c - w r.
	TradingCost float64
	// Emissions[t] is grams emitted in slot t; Decisions aligns with it.
	Emissions []float64
	Decisions []trading.Decision
	// Fit is the long-term constraint violation.
	Fit float64
	// Switches counts model downloads shipped (including initial ones).
	Switches int
	// Accuracy is the overall fraction of correct predictions reported.
	Accuracy float64
	// Selections[i][n] counts slots edge i spent on model n.
	Selections [][]int

	// Fault-tolerance accounting (all zero on a fault-free run).
	//
	// Downtime[i] counts slots edge i did not serve; DroppedSlots is their
	// sum. Retries[i] counts transient-failure retries burned for edge i.
	// Resumes[i] counts accepted session resumes. DownErrors[i] records why
	// edge i was marked down ("" while up).
	Downtime     []int
	DroppedSlots int
	Retries      []int
	Resumes      []int
	DownErrors   []string

	// Region-tier elasticity accounting (all nil on a fault-free run, so
	// fault-free regional summaries compare deep-equal to monolithic ones;
	// only the Root fills them). RegionResumes[id] counts accepted session
	// resumes of region link id. RegionRetries[k] counts transient retries
	// burned by shard k's exchanges. Rebalances[k] counts mid-run handoffs
	// of shard k to a new region link.
	RegionResumes map[int]int
	RegionRetries []int
	Rebalances    []int
}

// summaryFromResult translates an engine Result into the deployment Summary.
func summaryFromResult(res *engine.Result, resumes []int) *Summary {
	return &Summary{
		ObservedLoss: res.Cost.InferLoss + res.Cost.Compute,
		TradingCost:  res.Cost.Trading,
		Emissions:    res.Emissions,
		Decisions:    res.Decisions,
		Fit:          res.Fit,
		Switches:     res.Switches,
		Accuracy:     res.OverallAccuracy,
		Selections:   res.Selections,
		Downtime:     res.Downtime,
		DroppedSlots: res.DroppedSlots,
		Retries:      res.Retries,
		Resumes:      resumes,
		DownErrors:   res.DownErrors,
	}
}

// Cloud hosts the models and the online controller. Its TCP-facing fleet
// machinery (admission, resume, retries, the per-slot exchange) lives in the
// embedded edgeFleet, which the regional-aggregator tier reuses verbatim.
type Cloud struct {
	cfg    CloudConfig
	source ModelSource
	ctrl   *core.Controller
	*edgeFleet
}

// NewCloud validates the configuration and builds the controller.
func NewCloud(cfg CloudConfig, source ModelSource) (*Cloud, error) {
	if source == nil {
		return nil, fmt.Errorf("deploy: nil model source")
	}
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("deploy: need at least one edge, got %d", cfg.Edges)
	}
	if len(cfg.DownloadCosts) != cfg.Edges {
		return nil, fmt.Errorf("deploy: %d download costs for %d edges", len(cfg.DownloadCosts), cfg.Edges)
	}
	if cfg.Prices == nil || cfg.Prices.Horizon() < cfg.Horizon {
		return nil, fmt.Errorf("deploy: price series shorter than horizon")
	}
	if cfg.Retry.Attempts < 0 {
		return nil, fmt.Errorf("deploy: negative retry budget %d", cfg.Retry.Attempts)
	}
	if cfg.Retry.BaseDelay < 0 || cfg.Retry.MaxDelay < 0 || cfg.Retry.ResumeWait < 0 {
		return nil, fmt.Errorf("deploy: negative retry delays")
	}
	if cfg.Policy != engine.FailFast && cfg.Policy != engine.Degrade {
		return nil, fmt.Errorf("deploy: unknown error policy %d", cfg.Policy)
	}
	ctrl, err := core.New(core.Config{
		NumModels:     source.NumModels(),
		DownloadCosts: cfg.DownloadCosts,
		Horizon:       cfg.Horizon,
		InitialCap:    cfg.InitialCap,
		EmissionScale: cfg.EmissionScale,
		PriceScale:    avgBuyPrice(cfg.Prices, cfg.Horizon),
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: controller: %w", err)
	}
	// The engine builds the run's meter; validate the rate up front so a
	// bad configuration fails before any edge connects.
	if _, err := energy.NewMeter(cfg.EmissionRate); err != nil {
		return nil, err
	}
	c := &Cloud{cfg: cfg, source: source, ctrl: ctrl}
	c.edgeFleet = newEdgeFleet(fleetConfig{
		count:   cfg.Edges,
		offset:  0,
		horizon: cfg.Horizon,
		seed:    cfg.Seed,
		timeouts: func() (time.Duration, time.Duration) {
			return c.cfg.HandshakeTimeout, c.cfg.SlotTimeout
		},
		retry: cfg.Retry,
	}, source)
	return c, nil
}

// avgBuyPrice is the mean buy quote over the horizon: the price scale the
// cloud-side controllers (Cloud and Root) hand Algorithm 2.
func avgBuyPrice(p *market.Prices, horizon int) float64 {
	avg := 0.0
	for t := 0; t < horizon; t++ {
		avg += p.Buy[t]
	}
	if horizon > 0 {
		avg /= float64(horizon)
	}
	return avg
}

// Serve admits cfg.Edges edge sessions from ln, runs the full horizon, and
// returns the summary. The listener stays open for the whole run so dropped
// edges can redial and resume their session mid-run; it is not closed (the
// caller owns it), but Serve unblocks its own acceptor on return when the
// listener supports deadlines (as TCP listeners do).
func (c *Cloud) Serve(ln net.Listener) (*Summary, error) {
	stop, err := c.awaitFleet(ln)
	if err != nil {
		return nil, err
	}
	defer stop()
	return c.run()
}

// run drives all slots through the shared engine: the TCP exchange with
// each edge is one EdgeStepper, so the distributed deployment executes the
// exact protocol the in-process simulator does. One worker per edge keeps
// every edge's assign/report exchange in flight concurrently, as before;
// the retry layer and the error policy decide what a failed exchange means.
func (c *Cloud) run() (*Summary, error) {
	tcp := c.steppers()
	steppers := make([]engine.EdgeStepper, len(tcp))
	for i, s := range tcp {
		steppers[i] = s
	}
	defer c.closeAll(tcp)
	res, err := engine.Run(engine.Config{
		Name:         "deploy",
		Horizon:      c.cfg.Horizon,
		NumModels:    c.source.NumModels(),
		InitialCap:   c.cfg.InitialCap,
		EmissionRate: c.cfg.EmissionRate,
		Prices:       c.cfg.Prices,
		SwitchCosts:  c.cfg.DownloadCosts,
		Workers:      len(tcp),
		Policy:       c.cfg.Policy,
	}, c.ctrl, steppers)
	if err != nil {
		return nil, c.abort(tcp, err)
	}

	if err := c.finish(tcp); err != nil && c.cfg.Policy == engine.FailFast {
		return nil, err
	}
	return summaryFromResult(res, c.resumes()), nil
}
