package deploy

import (
	"fmt"
	"net"
	"time"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// ModelSource supplies the cloud's model zoo: metadata plus serialized
// checkpoints to ship to edges.
type ModelSource interface {
	// NumModels returns N.
	NumModels() int
	// Meta returns the announced metadata of model n.
	Meta(n int) ModelMeta
	// Checkpoint returns the serialized weights of model n (what a switch
	// actually downloads). May be empty for surrogate sources.
	Checkpoint(n int) ([]byte, error)
}

// CloudConfig parameterizes a cloud server.
type CloudConfig struct {
	// Edges is the number of edge agents that will connect.
	Edges int
	// Horizon is the number of slots to run.
	Horizon int
	// DownloadCosts holds u_i per edge id; length must equal Edges.
	DownloadCosts []float64
	// InitialCap (grams) and EmissionRate (g/kWh) configure the carbon side.
	InitialCap   float64
	EmissionRate float64
	// Prices is the allowance price series (length >= Horizon).
	Prices *market.Prices
	// EmissionScale hints the expected per-slot emission for Algorithm 2's
	// step sizes (0 = 1).
	EmissionScale float64
	// Seed drives the controller's sampling.
	Seed int64
	// SlotTimeout bounds each per-edge exchange (assign + report). Zero
	// disables deadlines. A slow or hung edge then fails its slot instead
	// of stalling the whole fleet.
	SlotTimeout time.Duration
}

// Summary is what a completed distributed run reports.
type Summary struct {
	// ObservedLoss accumulates the reported per-slot average losses
	// (including the measured computation time, the paper's L + v).
	ObservedLoss float64
	// TradingCost is sum z c - w r.
	TradingCost float64
	// Emissions[t] is grams emitted in slot t; Decisions aligns with it.
	Emissions []float64
	Decisions []trading.Decision
	// Fit is the long-term constraint violation.
	Fit float64
	// Switches counts model downloads shipped (including initial ones).
	Switches int
	// Accuracy is the overall fraction of correct predictions reported.
	Accuracy float64
	// Selections[i][n] counts slots edge i spent on model n.
	Selections [][]int
}

// Cloud hosts the models and the online controller.
type Cloud struct {
	cfg    CloudConfig
	source ModelSource
	ctrl   *core.Controller
}

// NewCloud validates the configuration and builds the controller.
func NewCloud(cfg CloudConfig, source ModelSource) (*Cloud, error) {
	if source == nil {
		return nil, fmt.Errorf("deploy: nil model source")
	}
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("deploy: need at least one edge, got %d", cfg.Edges)
	}
	if len(cfg.DownloadCosts) != cfg.Edges {
		return nil, fmt.Errorf("deploy: %d download costs for %d edges", len(cfg.DownloadCosts), cfg.Edges)
	}
	if cfg.Prices == nil || cfg.Prices.Horizon() < cfg.Horizon {
		return nil, fmt.Errorf("deploy: price series shorter than horizon")
	}
	avgPrice := 0.0
	for t := 0; t < cfg.Horizon; t++ {
		avgPrice += cfg.Prices.Buy[t]
	}
	if cfg.Horizon > 0 {
		avgPrice /= float64(cfg.Horizon)
	}
	ctrl, err := core.New(core.Config{
		NumModels:     source.NumModels(),
		DownloadCosts: cfg.DownloadCosts,
		Horizon:       cfg.Horizon,
		InitialCap:    cfg.InitialCap,
		EmissionScale: cfg.EmissionScale,
		PriceScale:    avgPrice,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: controller: %w", err)
	}
	// The engine builds the run's meter; validate the rate up front so a
	// bad configuration fails before any edge connects.
	if _, err := energy.NewMeter(cfg.EmissionRate); err != nil {
		return nil, err
	}
	return &Cloud{cfg: cfg, source: source, ctrl: ctrl}, nil
}

// edgeConn is one connected edge after the handshake.
type edgeConn struct {
	id   int
	conn net.Conn
}

// Serve accepts exactly cfg.Edges connections from ln, runs the full
// horizon, and returns the summary. The listener is not closed.
func (c *Cloud) Serve(ln net.Listener) (*Summary, error) {
	edges := make([]*edgeConn, c.cfg.Edges)
	for i := 0; i < c.cfg.Edges; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("deploy: accept: %w", err)
		}
		ec, err := c.handshake(conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if ec.id < 0 || ec.id >= c.cfg.Edges || edges[ec.id] != nil {
			conn.Close()
			return nil, fmt.Errorf("deploy: bad or duplicate edge id %d", ec.id)
		}
		edges[ec.id] = ec
	}
	defer func() {
		for _, e := range edges {
			if e != nil {
				e.conn.Close()
			}
		}
	}()
	return c.run(edges)
}

// handshake reads Hello and answers Welcome.
func (c *Cloud) handshake(conn net.Conn) (*edgeConn, error) {
	m, err := ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("deploy: handshake read: %w", err)
	}
	if m.Type != MsgHello {
		return nil, fmt.Errorf("deploy: expected Hello, got type %d", m.Type)
	}
	metas := make([]ModelMeta, c.source.NumModels())
	for n := range metas {
		metas[n] = c.source.Meta(n)
	}
	welcome := &Message{
		Type:      MsgWelcome,
		EdgeID:    m.EdgeID,
		NumModels: len(metas),
		Models:    metas,
	}
	if err := WriteMessage(conn, welcome); err != nil {
		return nil, fmt.Errorf("deploy: handshake write: %w", err)
	}
	return &edgeConn{id: m.EdgeID, conn: conn}, nil
}

// run drives all slots through the shared engine: the TCP exchange with
// each edge is one EdgeStepper, so the distributed deployment executes the
// exact protocol the in-process simulator does. One worker per edge keeps
// every edge's assign/report exchange in flight concurrently, as before.
func (c *Cloud) run(edges []*edgeConn) (*Summary, error) {
	steppers := make([]engine.EdgeStepper, len(edges))
	for i, e := range edges {
		steppers[i] = &tcpStepper{cloud: c, edge: e, id: i}
	}
	res, err := engine.Run(engine.Config{
		Name:         "deploy",
		Horizon:      c.cfg.Horizon,
		NumModels:    c.source.NumModels(),
		InitialCap:   c.cfg.InitialCap,
		EmissionRate: c.cfg.EmissionRate,
		Prices:       c.cfg.Prices,
		SwitchCosts:  c.cfg.DownloadCosts,
		Workers:      len(edges),
	}, c.ctrl, steppers)
	if err != nil {
		return nil, c.abort(edges, err)
	}

	for _, e := range edges {
		if err := WriteMessage(e.conn, &Message{Type: MsgDone}); err != nil {
			return nil, fmt.Errorf("deploy: send done: %w", err)
		}
	}
	return &Summary{
		ObservedLoss: res.Cost.InferLoss + res.Cost.Compute,
		TradingCost:  res.Cost.Trading,
		Emissions:    res.Emissions,
		Decisions:    res.Decisions,
		Fit:          res.Fit,
		Switches:     res.Switches,
		Accuracy:     res.OverallAccuracy,
		Selections:   res.Selections,
	}, nil
}

// tcpStepper runs one edge's slot over its connection: ship the assignment
// (plus checkpoint on a switch), wait for the report, translate it into the
// engine's observation. The reported average loss stands in for both the
// bandit feedback and the accounting term — the deployment has no posterior
// mean, only what the edge measured.
type tcpStepper struct {
	cloud *Cloud
	edge  *edgeConn
	id    int
}

// Step implements engine.EdgeStepper.
func (s *tcpStepper) Step(slot, arm int, download bool) (engine.Observation, error) {
	c, e, i := s.cloud, s.edge, s.id
	if c.cfg.SlotTimeout > 0 {
		//lint:allow nodeterm real I/O deadline on a live TCP connection; wall time is the only clock the kernel honors
		if err := e.conn.SetDeadline(time.Now().Add(c.cfg.SlotTimeout)); err != nil {
			return engine.Observation{}, fmt.Errorf("edge %d deadline: %w", i, err)
		}
		defer e.conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	assign := &Message{
		Type:    MsgAssign,
		Slot:    slot,
		ModelID: arm,
		Switch:  download,
	}
	if download {
		ckpt, err := c.source.Checkpoint(arm)
		if err != nil {
			return engine.Observation{}, fmt.Errorf("checkpoint model %d: %w", arm, err)
		}
		assign.Weights = ckpt
	}
	if err := WriteMessage(e.conn, assign); err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d assign: %w", i, err)
	}
	rep, err := ReadMessage(e.conn)
	if err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d report: %w", i, err)
	}
	if rep.Type == MsgError {
		return engine.Observation{}, fmt.Errorf("edge %d failed: %s", i, rep.Reason)
	}
	if rep.Type != MsgReport || rep.Slot != slot {
		return engine.Observation{}, fmt.Errorf("edge %d: unexpected reply type %d slot %d", i, rep.Type, rep.Slot)
	}
	return engine.Observation{
		Loss:      rep.AvgLoss + rep.CompSeconds,
		InferLoss: rep.AvgLoss,
		Compute:   rep.CompSeconds,
		Correct:   rep.Correct,
		Samples:   rep.Samples,
		InferKWh:  rep.EnergyKWh,
		TransferKWh: energy.TransferEnergy(
			energy.TransferEnergyPerByte, c.source.Meta(arm).SizeBytes),
	}, nil
}

// abort tells every edge the run failed and returns the error.
func (c *Cloud) abort(edges []*edgeConn, err error) error {
	msg := &Message{Type: MsgError, Reason: err.Error()}
	for _, e := range edges {
		_ = WriteMessage(e.conn, msg) // best effort; we are already failing
	}
	return err
}
