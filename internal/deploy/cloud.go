package deploy

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// ModelSource supplies the cloud's model zoo: metadata plus serialized
// checkpoints to ship to edges.
type ModelSource interface {
	// NumModels returns N.
	NumModels() int
	// Meta returns the announced metadata of model n.
	Meta(n int) ModelMeta
	// Checkpoint returns the serialized weights of model n (what a switch
	// actually downloads). May be empty for surrogate sources.
	Checkpoint(n int) ([]byte, error)
}

// DefaultHandshakeTimeout bounds the Hello/Welcome exchange of a new
// connection when CloudConfig.HandshakeTimeout is zero: a client that
// connects and never speaks must not wedge admission.
const DefaultHandshakeTimeout = 30 * time.Second

// CloudConfig parameterizes a cloud server.
type CloudConfig struct {
	// Edges is the number of edge agents that will connect.
	Edges int
	// Horizon is the number of slots to run.
	Horizon int
	// DownloadCosts holds u_i per edge id; length must equal Edges.
	DownloadCosts []float64
	// InitialCap (grams) and EmissionRate (g/kWh) configure the carbon side.
	InitialCap   float64
	EmissionRate float64
	// Prices is the allowance price series (length >= Horizon).
	Prices *market.Prices
	// EmissionScale hints the expected per-slot emission for Algorithm 2's
	// step sizes (0 = 1).
	EmissionScale float64
	// Seed drives the controller's sampling, the resume-token issue, and the
	// deterministic backoff jitter streams.
	Seed int64
	// SlotTimeout bounds each per-edge exchange (assign + report). Zero
	// disables deadlines. A slow or hung edge then fails its slot instead
	// of stalling the whole fleet.
	SlotTimeout time.Duration
	// HandshakeTimeout bounds each connection's Hello/Welcome exchange.
	// Zero selects DefaultHandshakeTimeout; negative disables the deadline.
	HandshakeTimeout time.Duration
	// Retry is the per-slot transient-failure budget: how many times an
	// edge's exchange is retried (under deterministic capped-exponential
	// backoff) and how long each try waits for a dropped edge to redial and
	// resume. The zero value disables retries.
	Retry RetryConfig
	// Policy selects the engine's reaction to an edge that fails beyond its
	// retry budget: engine.FailFast (zero value, historical behavior) aborts
	// the run; engine.Degrade marks the edge down and completes the run on
	// the surviving fleet with exact accounting over the slots served.
	Policy engine.ErrorPolicy
}

// Summary is what a completed distributed run reports.
type Summary struct {
	// ObservedLoss accumulates the reported per-slot average losses
	// (including the measured computation time, the paper's L + v).
	ObservedLoss float64
	// TradingCost is sum z c - w r.
	TradingCost float64
	// Emissions[t] is grams emitted in slot t; Decisions aligns with it.
	Emissions []float64
	Decisions []trading.Decision
	// Fit is the long-term constraint violation.
	Fit float64
	// Switches counts model downloads shipped (including initial ones).
	Switches int
	// Accuracy is the overall fraction of correct predictions reported.
	Accuracy float64
	// Selections[i][n] counts slots edge i spent on model n.
	Selections [][]int

	// Fault-tolerance accounting (all zero on a fault-free run).
	//
	// Downtime[i] counts slots edge i did not serve; DroppedSlots is their
	// sum. Retries[i] counts transient-failure retries burned for edge i.
	// Resumes[i] counts accepted session resumes. DownErrors[i] records why
	// edge i was marked down ("" while up).
	Downtime     []int
	DroppedSlots int
	Retries      []int
	Resumes      []int
	DownErrors   []string
}

// Cloud hosts the models and the online controller.
type Cloud struct {
	cfg    CloudConfig
	source ModelSource
	ctrl   *core.Controller
	links  []*edgeLink
	// sleep performs retry backoff; injectable so chaos tests replay with
	// zero wall time. Defaults to time.Sleep.
	sleep func(time.Duration)
	// done flips once the run is over: the acceptor stops admitting.
	done atomic.Bool
}

// NewCloud validates the configuration and builds the controller.
func NewCloud(cfg CloudConfig, source ModelSource) (*Cloud, error) {
	if source == nil {
		return nil, fmt.Errorf("deploy: nil model source")
	}
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("deploy: need at least one edge, got %d", cfg.Edges)
	}
	if len(cfg.DownloadCosts) != cfg.Edges {
		return nil, fmt.Errorf("deploy: %d download costs for %d edges", len(cfg.DownloadCosts), cfg.Edges)
	}
	if cfg.Prices == nil || cfg.Prices.Horizon() < cfg.Horizon {
		return nil, fmt.Errorf("deploy: price series shorter than horizon")
	}
	if cfg.Retry.Attempts < 0 {
		return nil, fmt.Errorf("deploy: negative retry budget %d", cfg.Retry.Attempts)
	}
	if cfg.Retry.BaseDelay < 0 || cfg.Retry.MaxDelay < 0 || cfg.Retry.ResumeWait < 0 {
		return nil, fmt.Errorf("deploy: negative retry delays")
	}
	if cfg.Policy != engine.FailFast && cfg.Policy != engine.Degrade {
		return nil, fmt.Errorf("deploy: unknown error policy %d", cfg.Policy)
	}
	avgPrice := 0.0
	for t := 0; t < cfg.Horizon; t++ {
		avgPrice += cfg.Prices.Buy[t]
	}
	if cfg.Horizon > 0 {
		avgPrice /= float64(cfg.Horizon)
	}
	ctrl, err := core.New(core.Config{
		NumModels:     source.NumModels(),
		DownloadCosts: cfg.DownloadCosts,
		Horizon:       cfg.Horizon,
		InitialCap:    cfg.InitialCap,
		EmissionScale: cfg.EmissionScale,
		PriceScale:    avgPrice,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: controller: %w", err)
	}
	// The engine builds the run's meter; validate the rate up front so a
	// bad configuration fails before any edge connects.
	if _, err := energy.NewMeter(cfg.EmissionRate); err != nil {
		return nil, err
	}
	// Resume tokens are deterministic from the seed: they bind a redialing
	// connection to the session it claims (mis-binding protection inside a
	// trusted deployment), not an authentication secret.
	tokenRNG := numeric.SplitRNG(cfg.Seed, "deploy-resume-token")
	links := make([]*edgeLink, cfg.Edges)
	for i := range links {
		links[i] = &edgeLink{
			id:       i,
			token:    fmt.Sprintf("%016x-%02d", tokenRNG.Uint64(), i),
			incoming: make(chan net.Conn, 1),
		}
	}
	return &Cloud{cfg: cfg, source: source, ctrl: ctrl, links: links, sleep: time.Sleep}, nil
}

// edgeLink is the cloud-side connection slot of one edge: the acceptor
// delivers handshaken connections (initial and resumed) into incoming, and
// the edge's stepper consumes them. A dropped edge leaves its link empty
// until a resume arrives.
type edgeLink struct {
	id       int
	token    string
	incoming chan net.Conn

	mu      sync.Mutex
	claimed bool // initial connection admitted
	resumes int
}

// deliver hands a fresh connection to the stepper, replacing any stale one
// that was never consumed (latest connection wins).
func (l *edgeLink) deliver(conn net.Conn) {
	for {
		select {
		case l.incoming <- conn:
			return
		default:
			select {
			case stale := <-l.incoming:
				stale.Close()
			default:
			}
		}
	}
}

// Serve admits cfg.Edges edge sessions from ln, runs the full horizon, and
// returns the summary. The listener stays open for the whole run so dropped
// edges can redial and resume their session mid-run; it is not closed (the
// caller owns it), but Serve unblocks its own acceptor on return when the
// listener supports deadlines (as TCP listeners do).
func (c *Cloud) Serve(ln net.Listener) (*Summary, error) {
	initial := make(chan int, c.cfg.Edges)
	acceptErr := make(chan error, 1)
	go c.acceptLoop(ln, initial, acceptErr)
	defer func() {
		c.done.Store(true)
		// Unblock a blocked Accept without closing the caller's listener: a
		// deadline in the distant past forces an immediate timeout.
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Unix(1, 0)) //nolint:errcheck // best-effort unblock
		}
	}()

	connected := 0
	for connected < c.cfg.Edges {
		select {
		case <-initial:
			connected++
		case err := <-acceptErr:
			// The acceptor is gone; drain admissions that completed before
			// it died, then fail if the fleet is still short.
			for {
				select {
				case <-initial:
					connected++
					continue
				default:
				}
				break
			}
			if connected < c.cfg.Edges {
				return nil, fmt.Errorf("deploy: accept: %w", err)
			}
		}
	}
	return c.run()
}

// acceptLoop admits connections for the whole run: initial handshakes first,
// session resumes once the run is underway. Admissions run concurrently so
// one slow (or silent) client cannot wedge the fleet.
func (c *Cloud) acceptLoop(ln net.Listener, initial chan<- int, acceptErr chan<- error) {
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait() // let in-flight admissions finish before reporting
			if !c.done.Load() {
				select {
				case acceptErr <- err:
				default:
				}
			}
			return
		}
		if c.done.Load() {
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.admit(conn, initial)
		}()
	}
}

// admit performs one connection's handshake under the handshake deadline and
// delivers the connection to its edge's link. Bad clients are rejected and
// closed without disturbing the fleet.
func (c *Cloud) admit(conn net.Conn, initial chan<- int) {
	admitted := false
	defer func() {
		if !admitted {
			conn.Close()
		}
	}()
	timeout := c.cfg.HandshakeTimeout
	if timeout == 0 {
		timeout = DefaultHandshakeTimeout
	}
	if timeout > 0 {
		//lint:allow nodeterm real I/O deadline on a live connection; wall time is the only clock the kernel honors
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
	}
	m, err := ReadMessage(conn)
	if err != nil {
		return
	}
	if m.Type != MsgHello {
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: "expected Hello"})
		return
	}
	if m.EdgeID < 0 || m.EdgeID >= len(c.links) {
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("bad edge id %d", m.EdgeID)})
		return
	}
	link := c.links[m.EdgeID]

	if m.Resume {
		if m.ResumeToken != link.token {
			_ = WriteMessage(conn, &Message{Type: MsgError, Reason: "bad resume token"})
			return
		}
		if m.DoneSlots < 0 || m.DoneSlots > c.cfg.Horizon {
			_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("implausible resume position %d", m.DoneSlots)})
			return
		}
		// The resume Welcome intentionally omits the zoo metadata: the edge
		// already holds it (and its loaded checkpoints) from the session.
		if err := WriteMessage(conn, &Message{Type: MsgWelcome, EdgeID: m.EdgeID, Resume: true}); err != nil {
			return
		}
		if timeout > 0 {
			conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
		}
		link.mu.Lock()
		link.resumes++
		link.mu.Unlock()
		link.deliver(conn)
		admitted = true
		return
	}

	link.mu.Lock()
	if link.claimed {
		link.mu.Unlock()
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("duplicate edge id %d", m.EdgeID)})
		return
	}
	link.claimed = true
	link.mu.Unlock()
	metas := make([]ModelMeta, c.source.NumModels())
	for n := range metas {
		metas[n] = c.source.Meta(n)
	}
	welcome := &Message{
		Type:        MsgWelcome,
		EdgeID:      m.EdgeID,
		NumModels:   len(metas),
		Models:      metas,
		ResumeToken: link.token,
	}
	if err := WriteMessage(conn, welcome); err != nil {
		link.mu.Lock()
		link.claimed = false
		link.mu.Unlock()
		return
	}
	if timeout > 0 {
		conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	link.deliver(conn)
	initial <- m.EdgeID
	admitted = true
}

// run drives all slots through the shared engine: the TCP exchange with
// each edge is one EdgeStepper, so the distributed deployment executes the
// exact protocol the in-process simulator does. One worker per edge keeps
// every edge's assign/report exchange in flight concurrently, as before;
// the retry layer and the error policy decide what a failed exchange means.
func (c *Cloud) run() (*Summary, error) {
	tcp := make([]*tcpStepper, len(c.links))
	steppers := make([]engine.EdgeStepper, len(c.links))
	for i, link := range c.links {
		tcp[i] = &tcpStepper{
			cloud: c,
			link:  link,
			id:    i,
			rng:   numeric.SplitRNG(c.cfg.Seed, fmt.Sprintf("deploy-retry-%d", i)),
		}
		steppers[i] = tcp[i]
	}
	defer func() {
		for _, s := range tcp {
			if conn := s.liveConn(); conn != nil {
				conn.Close()
			}
		}
	}()
	res, err := engine.Run(engine.Config{
		Name:         "deploy",
		Horizon:      c.cfg.Horizon,
		NumModels:    c.source.NumModels(),
		InitialCap:   c.cfg.InitialCap,
		EmissionRate: c.cfg.EmissionRate,
		Prices:       c.cfg.Prices,
		SwitchCosts:  c.cfg.DownloadCosts,
		Workers:      len(c.links),
		Policy:       c.cfg.Policy,
	}, c.ctrl, steppers)
	if err != nil {
		return nil, c.abort(tcp, err)
	}

	if err := c.finish(tcp); err != nil && c.cfg.Policy == engine.FailFast {
		return nil, err
	}
	resumes := make([]int, len(c.links))
	for i, link := range c.links {
		link.mu.Lock()
		resumes[i] = link.resumes
		link.mu.Unlock()
	}
	return &Summary{
		ObservedLoss: res.Cost.InferLoss + res.Cost.Compute,
		TradingCost:  res.Cost.Trading,
		Emissions:    res.Emissions,
		Decisions:    res.Decisions,
		Fit:          res.Fit,
		Switches:     res.Switches,
		Accuracy:     res.OverallAccuracy,
		Selections:   res.Selections,
		Downtime:     res.Downtime,
		DroppedSlots: res.DroppedSlots,
		Retries:      res.Retries,
		Resumes:      resumes,
		DownErrors:   res.DownErrors,
	}, nil
}

// finish notifies every still-connected edge that the run is over. The loop
// is best-effort by design: one dead edge must not leave the others hanging
// until their read deadlines, so every edge is attempted and the failures
// are reported joined (and ignored entirely under Degrade).
func (c *Cloud) finish(steppers []*tcpStepper) error {
	var errs []error
	for _, s := range steppers {
		conn := s.liveConn()
		if conn == nil {
			continue // edge is down; nobody to notify
		}
		if err := WriteMessage(conn, &Message{Type: MsgDone}); err != nil {
			errs = append(errs, fmt.Errorf("deploy: send done to edge %d: %w", s.id, err))
		}
	}
	return errors.Join(errs...)
}

// abort tells every still-connected edge the run failed and returns the
// error. Like finish, it attempts every edge before returning.
func (c *Cloud) abort(steppers []*tcpStepper, err error) error {
	msg := &Message{Type: MsgError, Reason: err.Error()}
	for _, s := range steppers {
		if conn := s.liveConn(); conn != nil {
			_ = WriteMessage(conn, msg) // best effort; we are already failing
		}
	}
	return err
}

// tcpStepper runs one edge's slot over its current connection: ship the
// assignment (plus checkpoint on a switch), wait for the report, translate
// it into the engine's observation. The reported average loss stands in for
// both the bandit feedback and the accounting term — the deployment has no
// posterior mean, only what the edge measured.
//
// Transient failures (resets, timeouts, mid-frame EOFs) consume the
// per-slot retry budget: each retry backs off deterministically and waits
// for the edge to redial and resume before re-running the exchange. Fatal
// failures (protocol violations, invalid report numbers, edge application
// errors) fail the slot immediately.
type tcpStepper struct {
	cloud *Cloud
	link  *edgeLink
	id    int
	rng   *rand.Rand // deterministic backoff jitter stream
	conn  net.Conn   // current connection; nil while the edge is down
}

// Step implements engine.EdgeStepper.
func (s *tcpStepper) Step(slot, arm int, download bool) (engine.Observation, error) {
	retry := s.cloud.cfg.Retry.withDefaults()
	attempts := 0
	var lastErr error
	for {
		if s.conn == nil {
			if conn := s.await(retry.ResumeWait); conn != nil {
				s.conn = conn
			} else {
				lastErr = fmt.Errorf("edge %d: no live connection within %v", s.id, retry.ResumeWait)
			}
		}
		if s.conn != nil {
			obs, err := s.exchange(s.conn, slot, arm, download)
			if err == nil {
				obs.Retries = attempts
				return obs, nil
			}
			s.conn.Close()
			s.conn = nil
			if !Transient(err) {
				return engine.Observation{Retries: attempts}, err
			}
			lastErr = err
		}
		if attempts >= s.cloud.cfg.Retry.Attempts {
			return engine.Observation{Retries: attempts},
				fmt.Errorf("edge %d slot %d: retry budget exhausted after %d retries: %w", s.id, slot, attempts, lastErr)
		}
		attempts++
		s.cloud.sleep(backoffDelay(retry, attempts, s.rng))
	}
}

// await waits up to d for the acceptor to deliver a (re)connection.
func (s *tcpStepper) await(d time.Duration) net.Conn {
	select {
	case conn := <-s.link.incoming:
		return conn
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case conn := <-s.link.incoming:
		return conn
	case <-t.C:
		return nil
	}
}

// liveConn returns the stepper's current connection, consuming a freshly
// resumed one if the acceptor delivered it after the last step. Callers
// must not race Step (the engine has returned, or never started).
func (s *tcpStepper) liveConn() net.Conn {
	select {
	case conn := <-s.link.incoming:
		if s.conn != nil {
			s.conn.Close()
		}
		s.conn = conn
	default:
	}
	return s.conn
}

// exchange runs one assign/report round trip on conn.
func (s *tcpStepper) exchange(conn net.Conn, slot, arm int, download bool) (engine.Observation, error) {
	c, i := s.cloud, s.id
	if c.cfg.SlotTimeout > 0 {
		//lint:allow nodeterm real I/O deadline on a live TCP connection; wall time is the only clock the kernel honors
		if err := conn.SetDeadline(time.Now().Add(c.cfg.SlotTimeout)); err != nil {
			return engine.Observation{}, fmt.Errorf("edge %d deadline: %w", i, err)
		}
		defer conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	assign := &Message{
		Type:    MsgAssign,
		Slot:    slot,
		ModelID: arm,
		Switch:  download,
	}
	if download {
		ckpt, err := c.source.Checkpoint(arm)
		if err != nil {
			return engine.Observation{}, fmt.Errorf("checkpoint model %d: %w", arm, err)
		}
		assign.Weights = ckpt
	}
	if err := WriteMessage(conn, assign); err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d assign: %w", i, err)
	}
	rep, err := ReadMessage(conn)
	if err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d report: %w", i, err)
	}
	if rep.Type == MsgError {
		return engine.Observation{}, &EdgeError{EdgeID: i, Reason: rep.Reason}
	}
	if err := ValidateReport(rep); err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d: %w", i, err)
	}
	if rep.Slot != slot {
		return engine.Observation{}, protocolErrorf("edge %d: report for slot %d, want %d", i, rep.Slot, slot)
	}
	return engine.Observation{
		Loss:      rep.AvgLoss + rep.CompSeconds,
		InferLoss: rep.AvgLoss,
		Compute:   rep.CompSeconds,
		Correct:   rep.Correct,
		Samples:   rep.Samples,
		InferKWh:  rep.EnergyKWh,
		TransferKWh: energy.TransferEnergy(
			energy.TransferEnergyPerByte, c.source.Meta(arm).SizeBytes),
	}, nil
}
