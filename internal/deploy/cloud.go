package deploy

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// ModelSource supplies the cloud's model zoo: metadata plus serialized
// checkpoints to ship to edges.
type ModelSource interface {
	// NumModels returns N.
	NumModels() int
	// Meta returns the announced metadata of model n.
	Meta(n int) ModelMeta
	// Checkpoint returns the serialized weights of model n (what a switch
	// actually downloads). May be empty for surrogate sources.
	Checkpoint(n int) ([]byte, error)
}

// CloudConfig parameterizes a cloud server.
type CloudConfig struct {
	// Edges is the number of edge agents that will connect.
	Edges int
	// Horizon is the number of slots to run.
	Horizon int
	// DownloadCosts holds u_i per edge id; length must equal Edges.
	DownloadCosts []float64
	// InitialCap (grams) and EmissionRate (g/kWh) configure the carbon side.
	InitialCap   float64
	EmissionRate float64
	// Prices is the allowance price series (length >= Horizon).
	Prices *market.Prices
	// EmissionScale hints the expected per-slot emission for Algorithm 2's
	// step sizes (0 = 1).
	EmissionScale float64
	// Seed drives the controller's sampling.
	Seed int64
	// SlotTimeout bounds each per-edge exchange (assign + report). Zero
	// disables deadlines. A slow or hung edge then fails its slot instead
	// of stalling the whole fleet.
	SlotTimeout time.Duration
}

// Summary is what a completed distributed run reports.
type Summary struct {
	// ObservedLoss accumulates the reported per-slot average losses
	// (including the measured computation time, the paper's L + v).
	ObservedLoss float64
	// TradingCost is sum z c - w r.
	TradingCost float64
	// Emissions[t] is grams emitted in slot t; Decisions aligns with it.
	Emissions []float64
	Decisions []trading.Decision
	// Fit is the long-term constraint violation.
	Fit float64
	// Switches counts model downloads shipped (including initial ones).
	Switches int
	// Accuracy is the overall fraction of correct predictions reported.
	Accuracy float64
}

// Cloud hosts the models and the online controller.
type Cloud struct {
	cfg    CloudConfig
	source ModelSource
	ctrl   *core.Controller
	meter  *energy.Meter
}

// NewCloud validates the configuration and builds the controller.
func NewCloud(cfg CloudConfig, source ModelSource) (*Cloud, error) {
	if source == nil {
		return nil, fmt.Errorf("deploy: nil model source")
	}
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("deploy: need at least one edge, got %d", cfg.Edges)
	}
	if len(cfg.DownloadCosts) != cfg.Edges {
		return nil, fmt.Errorf("deploy: %d download costs for %d edges", len(cfg.DownloadCosts), cfg.Edges)
	}
	if cfg.Prices == nil || cfg.Prices.Horizon() < cfg.Horizon {
		return nil, fmt.Errorf("deploy: price series shorter than horizon")
	}
	avgPrice := 0.0
	for t := 0; t < cfg.Horizon; t++ {
		avgPrice += cfg.Prices.Buy[t]
	}
	if cfg.Horizon > 0 {
		avgPrice /= float64(cfg.Horizon)
	}
	ctrl, err := core.New(core.Config{
		NumModels:     source.NumModels(),
		DownloadCosts: cfg.DownloadCosts,
		Horizon:       cfg.Horizon,
		InitialCap:    cfg.InitialCap,
		EmissionScale: cfg.EmissionScale,
		PriceScale:    avgPrice,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("deploy: controller: %w", err)
	}
	meter, err := energy.NewMeter(cfg.EmissionRate)
	if err != nil {
		return nil, err
	}
	return &Cloud{cfg: cfg, source: source, ctrl: ctrl, meter: meter}, nil
}

// edgeConn is one connected edge after the handshake.
type edgeConn struct {
	id   int
	conn net.Conn
}

// Serve accepts exactly cfg.Edges connections from ln, runs the full
// horizon, and returns the summary. The listener is not closed.
func (c *Cloud) Serve(ln net.Listener) (*Summary, error) {
	edges := make([]*edgeConn, c.cfg.Edges)
	for i := 0; i < c.cfg.Edges; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return nil, fmt.Errorf("deploy: accept: %w", err)
		}
		ec, err := c.handshake(conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if ec.id < 0 || ec.id >= c.cfg.Edges || edges[ec.id] != nil {
			conn.Close()
			return nil, fmt.Errorf("deploy: bad or duplicate edge id %d", ec.id)
		}
		edges[ec.id] = ec
	}
	defer func() {
		for _, e := range edges {
			if e != nil {
				e.conn.Close()
			}
		}
	}()
	return c.run(edges)
}

// handshake reads Hello and answers Welcome.
func (c *Cloud) handshake(conn net.Conn) (*edgeConn, error) {
	m, err := ReadMessage(conn)
	if err != nil {
		return nil, fmt.Errorf("deploy: handshake read: %w", err)
	}
	if m.Type != MsgHello {
		return nil, fmt.Errorf("deploy: expected Hello, got type %d", m.Type)
	}
	metas := make([]ModelMeta, c.source.NumModels())
	for n := range metas {
		metas[n] = c.source.Meta(n)
	}
	welcome := &Message{
		Type:      MsgWelcome,
		EdgeID:    m.EdgeID,
		NumModels: len(metas),
		Models:    metas,
	}
	if err := WriteMessage(conn, welcome); err != nil {
		return nil, fmt.Errorf("deploy: handshake write: %w", err)
	}
	return &edgeConn{id: m.EdgeID, conn: conn}, nil
}

// run drives all slots and the controller.
func (c *Cloud) run(edges []*edgeConn) (*Summary, error) {
	sum := &Summary{
		Emissions: make([]float64, c.cfg.Horizon),
		Decisions: make([]trading.Decision, c.cfg.Horizon),
	}
	totalCorrect, totalSamples := 0, 0
	for t := 0; t < c.cfg.Horizon; t++ {
		arms, err := c.ctrl.SelectModels()
		if err != nil {
			return nil, c.abort(edges, err)
		}
		downloads, err := c.ctrl.Downloads()
		if err != nil {
			return nil, c.abort(edges, err)
		}

		reports := make([]*Message, len(edges))
		errs := make([]error, len(edges))
		var wg sync.WaitGroup
		for i, e := range edges {
			wg.Add(1)
			go func(i int, e *edgeConn) {
				defer wg.Done()
				if c.cfg.SlotTimeout > 0 {
					if err := e.conn.SetDeadline(time.Now().Add(c.cfg.SlotTimeout)); err != nil {
						errs[i] = fmt.Errorf("edge %d deadline: %w", i, err)
						return
					}
					defer e.conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
				}
				assign := &Message{
					Type:    MsgAssign,
					Slot:    t,
					ModelID: arms[i],
					Switch:  downloads[i],
				}
				if downloads[i] {
					ckpt, err := c.source.Checkpoint(arms[i])
					if err != nil {
						errs[i] = fmt.Errorf("checkpoint model %d: %w", arms[i], err)
						return
					}
					assign.Weights = ckpt
				}
				if err := WriteMessage(e.conn, assign); err != nil {
					errs[i] = fmt.Errorf("edge %d assign: %w", i, err)
					return
				}
				rep, err := ReadMessage(e.conn)
				if err != nil {
					errs[i] = fmt.Errorf("edge %d report: %w", i, err)
					return
				}
				if rep.Type == MsgError {
					errs[i] = fmt.Errorf("edge %d failed: %s", i, rep.Reason)
					return
				}
				if rep.Type != MsgReport || rep.Slot != t {
					errs[i] = fmt.Errorf("edge %d: unexpected reply type %d slot %d", i, rep.Type, rep.Slot)
					return
				}
				reports[i] = rep
			}(i, e)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, c.abort(edges, err)
			}
		}

		// Account the slot: losses (L + measured v), energy, emissions.
		losses := make([]float64, len(edges))
		slotEmission := 0.0
		for i, rep := range reports {
			losses[i] = rep.AvgLoss + rep.CompSeconds
			sum.ObservedLoss += losses[i]
			slotEmission += c.meter.RecordInference(rep.EnergyKWh)
			if downloads[i] {
				sum.Switches++
				slotEmission += c.meter.RecordTransfer(
					energy.TransferEnergy(energy.TransferEnergyPerByte, c.source.Meta(arms[i]).SizeBytes))
			}
			totalCorrect += rep.Correct
			totalSamples += rep.Samples
		}

		q := trading.Quote{Buy: c.cfg.Prices.Buy[t], Sell: c.cfg.Prices.Sell[t]}
		d, err := c.ctrl.DecideTrade(q)
		if err != nil {
			return nil, c.abort(edges, err)
		}
		if err := c.ctrl.CompleteSlot(losses, slotEmission); err != nil {
			return nil, c.abort(edges, err)
		}
		sum.TradingCost += d.Cost(q)
		sum.Emissions[t] = slotEmission
		sum.Decisions[t] = d
	}

	for _, e := range edges {
		if err := WriteMessage(e.conn, &Message{Type: MsgDone}); err != nil {
			return nil, fmt.Errorf("deploy: send done: %w", err)
		}
	}
	fit, err := trading.Fit(sum.Emissions, sum.Decisions, c.cfg.InitialCap)
	if err != nil {
		return nil, err
	}
	sum.Fit = fit
	if totalSamples > 0 {
		sum.Accuracy = float64(totalCorrect) / float64(totalSamples)
	}
	return sum, nil
}

// abort tells every edge the run failed and returns the error.
func (c *Cloud) abort(edges []*edgeConn, err error) error {
	msg := &Message{Type: MsgError, Reason: err.Error()}
	for _, e := range edges {
		_ = WriteMessage(e.conn, msg) // best effort; we are already failing
	}
	return err
}
