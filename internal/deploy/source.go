package deploy

import (
	"bytes"
	"fmt"
	"sync"

	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/nn"
)

// ZooSource adapts a trained model zoo as a ModelSource: checkpoints are
// the real serialized network weights, produced lazily and cached (the same
// bytes ship to every edge, as in the paper where the cloud holds one copy
// of each model).
type ZooSource struct {
	zoo *models.TrainedZoo

	mu    sync.Mutex
	cache map[int][]byte
}

var _ ModelSource = (*ZooSource)(nil)

// NewZooSource wraps a trained zoo.
func NewZooSource(zoo *models.TrainedZoo) (*ZooSource, error) {
	if zoo == nil {
		return nil, fmt.Errorf("deploy: nil zoo")
	}
	return &ZooSource{zoo: zoo, cache: make(map[int][]byte)}, nil
}

// NumModels implements ModelSource.
func (z *ZooSource) NumModels() int { return z.zoo.NumModels() }

// Meta implements ModelSource.
func (z *ZooSource) Meta(n int) ModelMeta {
	info := z.zoo.Info(n)
	return ModelMeta{
		Name:      info.Name,
		PhiKWh:    info.PhiKWh,
		SizeBytes: info.SizeBytes,
	}
}

// Checkpoint implements ModelSource.
func (z *ZooSource) Checkpoint(n int) ([]byte, error) {
	z.mu.Lock()
	defer z.mu.Unlock()
	if b, ok := z.cache[n]; ok {
		return b, nil
	}
	var buf bytes.Buffer
	if err := nn.WriteWeights(&buf, z.zoo.Network(n)); err != nil {
		return nil, fmt.Errorf("deploy: serialize model %d: %w", n, err)
	}
	z.cache[n] = buf.Bytes()
	return z.cache[n], nil
}
