package deploy

import (
	"errors"
	"fmt"
	"io"
	"net"
)

// The deployment's error taxonomy. Every failure in a cloud-edge exchange is
// either
//
//   - transient: the connection misbehaved (reset, timeout, mid-frame EOF)
//     but the protocol state is intact — a reconnect plus session resume can
//     heal it, so the retry layer may spend budget on it; or
//   - fatal: the peer violated the protocol (bad frame length, undecodable
//     frame, out-of-order message, a report carrying NaN/negative physics)
//     or reported an application failure — retrying cannot help and would
//     only mask a bug, so the edge fails immediately (aborting the run under
//     engine.FailFast, marking the edge down under engine.Degrade).
//
// ProtocolError and EdgeError mark the fatal classes; Transient classifies.

// ProtocolError is a fatal wire-protocol violation.
type ProtocolError struct {
	Reason string
}

// Error implements error.
func (e *ProtocolError) Error() string { return "deploy: protocol: " + e.Reason } //lint:allow hotalloc error formatting runs on failure paths only

// protocolErrorf builds a ProtocolError.
func protocolErrorf(format string, args ...any) error {
	return &ProtocolError{Reason: fmt.Sprintf(format, args...)}
}

// EdgeError is a fatal application-level failure reported by an edge via
// MsgError (e.g. its runtime could not load a checkpoint or serve a slot).
type EdgeError struct {
	EdgeID int
	Reason string
}

// Error implements error.
func (e *EdgeError) Error() string {
	return fmt.Sprintf("deploy: edge %d failed: %s", e.EdgeID, e.Reason)
}

// TransientError marks a failure the retry layer may spend budget on even
// though it is not itself a connection-level I/O error — e.g. no live
// connection arrived within the resume window. Error is a passthrough so
// wrapping a message in the taxonomy never changes its string.
type TransientError struct {
	Reason string
}

// Error implements error.
func (e *TransientError) Error() string { return e.Reason }

// Transientf builds a TransientError.
func Transientf(format string, args ...any) error {
	return &TransientError{Reason: fmt.Sprintf(format, args...)}
}

// Transient reports whether err is worth retrying over a fresh connection.
// Fatal taxonomy members are never transient; explicit TransientError and
// connection-level I/O failures (net.Error, closed/reset connections, EOF
// and mid-frame EOF) are.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var te *TransientError
	if errors.As(err, &te) {
		return true
	}
	var pe *ProtocolError
	if errors.As(err, &pe) {
		return false
	}
	var ee *EdgeError
	if errors.As(err, &ee) {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	// Remaining plumbing errors (e.g. syscall-level resets surfaced as
	// *net.OpError already match net.Error above). Anything unrecognized is
	// treated as fatal: spending retry budget on an unknown failure mode
	// hides bugs, while a genuinely flaky link always surfaces as I/O.
	return false
}
