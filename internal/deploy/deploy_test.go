package deploy

import (
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/nn"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// buildDistributedWorld constructs a trained zoo, a cloud, and edge
// runtimes that share only the dataset specification — the cloud never
// sees edge data, edges never see the training pool.
func buildDistributedWorld(t *testing.T, edges, horizon int) (*Cloud, []*NNRuntime) {
	t.Helper()
	spec := dataset.MNISTLike
	// The cloud and all edges share the distribution D but sample it
	// independently — the paper's data model.
	dist, err := dataset.NewDistribution(spec, numeric.SplitRNG(1, "deploy-dist"))
	if err != nil {
		t.Fatal(err)
	}
	zooCfg := models.TrainedZooConfig{
		Dataset: spec,
		Dist:    dist,
		TrainN:  200, TestN: 200, Epochs: 1, LR: 0.05, BatchSize: 16,
	}
	zoo, err := models.NewTrainedZoo(zooCfg, numeric.SplitRNG(1, "deploy-zoo"))
	if err != nil {
		t.Fatal(err)
	}
	source, err := NewZooSource(zoo)
	if err != nil {
		t.Fatal(err)
	}
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), horizon, numeric.SplitRNG(1, "deploy-prices"))
	if err != nil {
		t.Fatal(err)
	}
	downloadCosts := make([]float64, edges)
	for i := range downloadCosts {
		downloadCosts[i] = 0.5 + 0.2*float64(i)
	}
	cloud, err := NewCloud(CloudConfig{
		Edges:         edges,
		Horizon:       horizon,
		DownloadCosts: downloadCosts,
		InitialCap:    0.001,
		EmissionRate:  500,
		Prices:        prices,
		EmissionScale: 1e-4,
		Seed:          1,
	}, source)
	if err != nil {
		t.Fatal(err)
	}

	runtimes := make([]*NNRuntime, edges)
	for i := range runtimes {
		edgeRNG := numeric.SplitRNG(1, fmt.Sprintf("deploy-edge-%d", i))
		// Each edge draws its own local data pool from the shared
		// distribution.
		pool := dist.Pool(120, edgeRNG)
		build := func(modelID int) (*nn.Network, error) {
			return models.NewFamilyNetwork(spec, modelID, numeric.SplitRNG(9, "arch"))
		}
		rt, err := NewNNRuntime(
			build,
			pool,
			func(slot int) int { return 5 + slot%5 },
			func(modelID int) float64 { return 0.03 + 0.01*float64(modelID) },
			edgeRNG,
		)
		if err != nil {
			t.Fatal(err)
		}
		runtimes[i] = rt
	}
	return cloud, runtimes
}

func TestDistributedEndToEndOverTCP(t *testing.T) {
	const (
		edges   = 3
		horizon = 12
	)
	cloud, runtimes := buildDistributedWorld(t, edges, horizon)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	edgeErrs := make([]error, edges)
	for i := 0; i < edges; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				edgeErrs[i] = err
				return
			}
			defer conn.Close()
			edgeErrs[i] = RunEdge(conn, i, runtimes[i])
		}(i)
	}

	summary, err := cloud.Serve(ln)
	if err != nil {
		t.Fatalf("cloud.Serve: %v", err)
	}
	wg.Wait()
	for i, err := range edgeErrs {
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
	}

	if len(summary.Emissions) != horizon {
		t.Fatalf("emissions length %d", len(summary.Emissions))
	}
	if summary.Switches < edges {
		t.Errorf("switches = %d, want at least one initial download per edge", summary.Switches)
	}
	if summary.ObservedLoss <= 0 {
		t.Error("no loss observed")
	}
	if summary.Accuracy <= 0.1 || summary.Accuracy > 1 {
		t.Errorf("accuracy = %v, want above chance", summary.Accuracy)
	}
	for _, e := range summary.Emissions {
		if e < 0 {
			t.Fatal("negative emission")
		}
	}
}

func TestDistributedCheckpointFidelity(t *testing.T) {
	// A single edge over an in-memory pipe: the model it reconstructs from
	// the shipped checkpoint must classify exactly like the cloud's copy.
	cloud, runtimes := buildDistributedWorld(t, 1, 3)
	cloudSide, edgeSide := net.Pipe()
	ln := &pipeListener{conns: []net.Conn{cloudSide}}
	done := make(chan error, 1)
	go func() {
		done <- RunEdge(edgeSide, 0, runtimes[0])
	}()
	summary, err := cloud.Serve(ln)
	if err != nil {
		t.Fatalf("cloud.Serve: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("edge: %v", err)
	}
	if summary.ObservedLoss <= 0 {
		t.Error("no observed loss through pipe transport")
	}
}

// pipeListener adapts pre-made conns to net.Listener.
type pipeListener struct {
	conns []net.Conn
	idx   int
}

func (l *pipeListener) Accept() (net.Conn, error) {
	if l.idx >= len(l.conns) {
		return nil, fmt.Errorf("no more conns")
	}
	c := l.conns[l.idx]
	l.idx++
	return c, nil
}

func (l *pipeListener) Close() error   { return nil }
func (l *pipeListener) Addr() net.Addr { return &net.IPAddr{} }

func TestCloudSlotTimeoutAbortsOnHungEdge(t *testing.T) {
	// A cloud with a short slot timeout and an "edge" that completes the
	// handshake but never answers an Assign must fail fast instead of
	// hanging forever.
	cloud, _ := buildDistributedWorld(t, 1, 5)
	cloud.cfg.SlotTimeout = 200 * time.Millisecond

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer conn.Close()
		// Handshake, then go silent.
		if err := WriteMessage(conn, &Message{Type: MsgHello, EdgeID: 0}); err != nil {
			return
		}
		if _, err := ReadMessage(conn); err != nil {
			return
		}
		select {} // never respond
	}()

	done := make(chan error, 1)
	go func() {
		_, err := cloud.Serve(ln)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected timeout error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cloud hung despite slot timeout")
	}
}

func TestNewCloudErrors(t *testing.T) {
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	zoo, err := models.NewTrainedZoo(models.TrainedZooConfig{
		Dataset: dataset.MNISTLike, TrainN: 50, TestN: 50, Epochs: 1, LR: 0.05,
	}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	source, err := NewZooSource(zoo)
	if err != nil {
		t.Fatal(err)
	}
	valid := CloudConfig{
		Edges: 2, Horizon: 10, DownloadCosts: []float64{1, 1},
		InitialCap: 1, EmissionRate: 500, Prices: prices, Seed: 1,
	}
	if _, err := NewCloud(valid, nil); err == nil {
		t.Error("expected error for nil source")
	}
	bad := valid
	bad.Edges = 0
	if _, err := NewCloud(bad, source); err == nil {
		t.Error("expected error for zero edges")
	}
	bad = valid
	bad.DownloadCosts = []float64{1}
	if _, err := NewCloud(bad, source); err == nil {
		t.Error("expected error for mismatched download costs")
	}
	bad = valid
	bad.Prices = nil
	if _, err := NewCloud(bad, source); err == nil {
		t.Error("expected error for nil prices")
	}
	bad = valid
	bad.Horizon = 99
	if _, err := NewCloud(bad, source); err == nil {
		t.Error("expected error for short price series")
	}
}

func TestRunEdgeErrors(t *testing.T) {
	if err := RunEdge(nil, 0, nil); err == nil || !strings.Contains(err.Error(), "nil runtime") {
		t.Errorf("err = %v, want nil-runtime error", err)
	}
}

func TestNNRuntimeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	build := func(int) (*nn.Network, error) { return nil, fmt.Errorf("no") }
	if _, err := NewNNRuntime(nil, nil, nil, nil, nil); err == nil {
		t.Error("expected error for nil deps")
	}
	ds, err := dataset.Generate(dataset.MNISTLike, 2, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewNNRuntime(build, ds.Test, func(int) int { return 1 }, func(int) float64 { return 0.1 }, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Welcome(nil); err == nil {
		t.Error("expected error for empty welcome")
	}
	if err := rt.Welcome([]ModelMeta{{Name: "m", PhiKWh: 1e-8, SizeBytes: 10}}); err != nil {
		t.Fatal(err)
	}
	if err := rt.LoadModel(5, nil); err == nil {
		t.Error("expected error for out-of-range model")
	}
	if err := rt.LoadModel(0, nil); err == nil {
		t.Error("expected error from failing builder")
	}
	if _, err := rt.RunSlot(0, 0); err == nil {
		t.Error("expected error for never-downloaded model")
	}
}
