package deploy

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// The sim/deploy parity test: one world, two drivers. The same slot
// protocol runs once through the in-process engine with local steppers and
// once through the loopback-TCP cloud with remote runtimes. Both sides
// derive every observation from identical per-edge split RNG streams, so if
// the TCP transport is observation-transparent and both paths share the one
// engine, the controller must make identical decisions: same selections,
// same trades, same totals.

type parityWorld struct {
	seed     int64
	metas    []ModelMeta
	meanLoss []float64
	comp     []float64
}

func newParityWorld(seed int64) *parityWorld {
	w := &parityWorld{seed: seed}
	for n := 0; n < 4; n++ {
		w.metas = append(w.metas, ModelMeta{
			Name:      fmt.Sprintf("m%d", n),
			PhiKWh:    1e-5 * float64(n+1),
			SizeBytes: int64(1000 * (n + 1)),
		})
		w.meanLoss = append(w.meanLoss, 0.9-0.2*float64(n))
		w.comp = append(w.comp, 0.02*float64(n+1))
	}
	return w
}

// observe is the shared per-slot measurement both drivers reproduce.
func (w *parityWorld) observe(rng *rand.Rand, edge, slot, modelID int) (avgLoss float64, correct, samples int) {
	samples = 4 + (slot+edge)%5
	avgLoss = w.meanLoss[modelID] + 0.05*rng.NormFloat64()
	if avgLoss < 0 {
		avgLoss = 0
	}
	correct = rng.Intn(samples + 1)
	return avgLoss, correct, samples
}

func (w *parityWorld) edgeRNG(edge int) *rand.Rand {
	return numeric.SplitRNG(w.seed, fmt.Sprintf("parity-edge-%d", edge))
}

// paritySource serves the world's metadata; checkpoints are surrogate
// (empty), as the ModelSource contract allows.
type paritySource struct{ w *parityWorld }

func (s *paritySource) NumModels() int                 { return len(s.w.metas) }
func (s *paritySource) Meta(n int) ModelMeta           { return s.w.metas[n] }
func (s *paritySource) Checkpoint(int) ([]byte, error) { return nil, nil }

// parityRuntime is the TCP-side edge.
type parityRuntime struct {
	w    *parityWorld
	edge int
	rng  *rand.Rand
}

func (r *parityRuntime) Welcome([]ModelMeta) error   { return nil }
func (r *parityRuntime) LoadModel(int, []byte) error { return nil }
func (r *parityRuntime) RunSlot(slot, modelID int) (SlotReport, error) {
	avgLoss, correct, samples := r.w.observe(r.rng, r.edge, slot, modelID)
	return SlotReport{
		AvgLoss:     avgLoss,
		Correct:     correct,
		Samples:     samples,
		EnergyKWh:   r.w.metas[modelID].PhiKWh * float64(samples),
		CompSeconds: r.w.comp[modelID],
	}, nil
}

// parityStepper is the in-process side of the same edge.
type parityStepper struct {
	w    *parityWorld
	edge int
	rng  *rand.Rand
}

func (s *parityStepper) Step(slot, arm int, _ bool) (engine.Observation, error) {
	avgLoss, correct, samples := s.w.observe(s.rng, s.edge, slot, arm)
	return engine.Observation{
		Loss:      avgLoss + s.w.comp[arm],
		InferLoss: avgLoss,
		Compute:   s.w.comp[arm],
		Correct:   correct,
		Samples:   samples,
		InferKWh:  s.w.metas[arm].PhiKWh * float64(samples),
		TransferKWh: energy.TransferEnergy(
			energy.TransferEnergyPerByte, s.w.metas[arm].SizeBytes),
	}, nil
}

func TestSimDeployParity(t *testing.T) {
	const (
		edges   = 3
		horizon = 25
		seed    = int64(21)
	)
	w := newParityWorld(seed)
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), horizon, numeric.SplitRNG(seed, "parity-prices"))
	if err != nil {
		t.Fatal(err)
	}
	downloadCosts := make([]float64, edges)
	for i := range downloadCosts {
		downloadCosts[i] = 0.4 + 0.2*float64(i)
	}
	cloudCfg := CloudConfig{
		Edges:         edges,
		Horizon:       horizon,
		DownloadCosts: downloadCosts,
		InitialCap:    0.01,
		EmissionRate:  500,
		Prices:        prices,
		EmissionScale: 1e-3,
		Seed:          seed,
	}

	// In-process path: the same controller configuration NewCloud builds.
	avgPrice := 0.0
	for t2 := 0; t2 < horizon; t2++ {
		avgPrice += prices.Buy[t2]
	}
	avgPrice /= float64(horizon)
	ctrl, err := core.New(core.Config{
		NumModels:     len(w.metas),
		DownloadCosts: downloadCosts,
		Horizon:       horizon,
		InitialCap:    cloudCfg.InitialCap,
		EmissionScale: cloudCfg.EmissionScale,
		PriceScale:    avgPrice,
		Seed:          seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	steppers := make([]engine.EdgeStepper, edges)
	for i := range steppers {
		steppers[i] = &parityStepper{w: w, edge: i, rng: w.edgeRNG(i)}
	}
	res, err := engine.Run(engine.Config{
		Name:         "parity-local",
		Horizon:      horizon,
		NumModels:    len(w.metas),
		InitialCap:   cloudCfg.InitialCap,
		EmissionRate: cloudCfg.EmissionRate,
		Prices:       prices,
		SwitchCosts:  downloadCosts,
		Workers:      edges,
	}, ctrl, steppers)
	if err != nil {
		t.Fatal(err)
	}

	// Loopback-TCP path through the real cloud server and wire protocol.
	cloud, err := NewCloud(cloudCfg, &paritySource{w: w})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var wg sync.WaitGroup
	edgeErrs := make([]error, edges)
	for i := 0; i < edges; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				edgeErrs[i] = err
				return
			}
			defer conn.Close()
			edgeErrs[i] = RunEdge(conn, i, &parityRuntime{w: w, edge: i, rng: w.edgeRNG(i)})
		}(i)
	}
	sum, err := cloud.Serve(ln)
	if err != nil {
		t.Fatalf("cloud.Serve: %v", err)
	}
	wg.Wait()
	for i, err := range edgeErrs {
		if err != nil {
			t.Fatalf("edge %d: %v", i, err)
		}
	}

	// Same brain, same observations => identical run.
	if !reflect.DeepEqual(res.Selections, sum.Selections) {
		t.Errorf("selections diverge:\n engine: %v\n deploy: %v", res.Selections, sum.Selections)
	}
	if got, want := sum.ObservedLoss, res.Cost.InferLoss+res.Cost.Compute; math.Abs(got-want) > 1e-9 {
		t.Errorf("observed loss: deploy %v vs engine %v", got, want)
	}
	if math.Abs(sum.TradingCost-res.Cost.Trading) > 1e-9 {
		t.Errorf("trading cost: deploy %v vs engine %v", sum.TradingCost, res.Cost.Trading)
	}
	if !reflect.DeepEqual(res.Decisions, sum.Decisions) {
		t.Error("trade decisions diverge")
	}
	if !reflect.DeepEqual(res.Emissions, sum.Emissions) {
		t.Error("emission series diverge")
	}
	if sum.Fit != res.Fit {
		t.Errorf("fit: deploy %v vs engine %v", sum.Fit, res.Fit)
	}
	if sum.Switches != res.Switches {
		t.Errorf("switches: deploy %d vs engine %d", sum.Switches, res.Switches)
	}
	if sum.Accuracy != res.OverallAccuracy {
		t.Errorf("accuracy: deploy %v vs engine %v", sum.Accuracy, res.OverallAccuracy)
	}
}
