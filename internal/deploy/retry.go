package deploy

import (
	"math/rand"
	"time"
)

// RetryConfig bounds the per-slot retry behavior of one edge's assign/report
// exchange. The zero value disables retries entirely, which preserves the
// historical fail-fast deployment semantics (and sim/deploy parity).
type RetryConfig struct {
	// Attempts is the retry budget per slot per edge: after the initial try
	// fails transiently, up to Attempts further tries are made before the
	// edge's Step reports failure. 0 disables retries.
	Attempts int
	// BaseDelay seeds the capped exponential backoff between tries: retry k
	// sleeps a jittered min(BaseDelay«(k-1), MaxDelay). Zero defaults to
	// 10ms (only when Attempts > 0).
	BaseDelay time.Duration
	// MaxDelay caps the backoff. Zero defaults to 1s.
	MaxDelay time.Duration
	// ResumeWait bounds how long each try waits for a live connection when
	// the edge's link is down (i.e. for the edge to redial and resume).
	// Zero defaults to 1s.
	ResumeWait time.Duration
}

// Default backoff parameters applied by withDefaults when Attempts > 0.
const (
	DefaultBaseDelay  = 10 * time.Millisecond
	DefaultMaxDelay   = time.Second
	DefaultResumeWait = time.Second
)

// withDefaults fills zero fields.
func (r RetryConfig) withDefaults() RetryConfig {
	if r.BaseDelay <= 0 {
		r.BaseDelay = DefaultBaseDelay
	}
	if r.MaxDelay <= 0 {
		r.MaxDelay = DefaultMaxDelay
	}
	if r.ResumeWait <= 0 {
		r.ResumeWait = DefaultResumeWait
	}
	return r
}

// backoffDelay returns the jittered backoff before 1-based retry attempt k:
// half the capped exponential delay plus a uniformly random half, drawn from
// the caller's SplitRNG stream so the sleep sequence replays bit-for-bit.
// The sleep itself is performed through the cloud's injectable sleeper, so
// tests compress chaos runs to zero wall time without touching the delays.
func backoffDelay(cfg RetryConfig, attempt int, rng *rand.Rand) time.Duration {
	d := cfg.BaseDelay
	for k := 1; k < attempt && d < cfg.MaxDelay; k++ {
		d *= 2
	}
	if d > cfg.MaxDelay {
		d = cfg.MaxDelay
	}
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(rng.Int63n(int64(half)+1))
}
