package deploy

import (
	"bytes"
	"testing"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/nn"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// benchRuntime builds an NNRuntime with one loaded model, ready to serve
// slots.
func benchRuntime(b testing.TB) *NNRuntime {
	b.Helper()
	spec := dataset.MNISTLike
	rng := numeric.SplitRNG(7, "bench-runtime")
	dist, err := dataset.NewDistribution(spec, rng)
	if err != nil {
		b.Fatal(err)
	}
	pool := dist.Pool(64, rng)
	build := func(modelID int) (*nn.Network, error) {
		return models.NewFamilyNetwork(spec, modelID, numeric.SplitRNG(9, "bench-arch"))
	}
	rt, err := NewNNRuntime(
		build,
		pool,
		func(int) int { return 20 },
		func(int) float64 { return 0.03 },
		rng,
	)
	if err != nil {
		b.Fatal(err)
	}
	metas := make([]ModelMeta, models.FamilySize())
	for i := range metas {
		metas[i] = ModelMeta{Name: "bench", PhiKWh: 0.001}
	}
	if err := rt.Welcome(metas); err != nil {
		b.Fatal(err)
	}
	net, err := build(0)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nn.WriteWeights(&buf, net); err != nil {
		b.Fatal(err)
	}
	if err := rt.LoadModel(0, buf.Bytes()); err != nil {
		b.Fatal(err)
	}
	return rt
}

// BenchmarkNNRuntimeSlot gates the zero-alloc claim: after one warm-up
// slot, a steady-state RunSlot must report 0 allocs/op — all NN scratch
// comes from the runtime-owned arena.
func BenchmarkNNRuntimeSlot(b *testing.B) {
	rt := benchRuntime(b)
	if _, err := rt.RunSlot(0, 0); err != nil { // warm the arena
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.RunSlot(i+1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNNRuntimeSlotZeroAllocs enforces the 0 allocs/op gate in the regular
// test run (benchmarks only execute under -bench).
func TestNNRuntimeSlotZeroAllocs(t *testing.T) {
	rt := benchRuntime(t)
	if _, err := rt.RunSlot(0, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := rt.RunSlot(1, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state RunSlot allocates %v times per slot, want 0", allocs)
	}
}
