package deploy

import (
	"bytes"
	"testing"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/nn"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// benchRuntime builds an NNRuntime with one loaded model, ready to serve
// slots. int8 opts the runtime into the true-INT8 engine before any load.
func benchRuntime(b testing.TB, int8Mode bool) *NNRuntime {
	b.Helper()
	spec := dataset.MNISTLike
	rng := numeric.SplitRNG(7, "bench-runtime")
	dist, err := dataset.NewDistribution(spec, rng)
	if err != nil {
		b.Fatal(err)
	}
	pool := dist.Pool(64, rng)
	build := func(modelID int) (*nn.Network, error) {
		return models.NewFamilyNetwork(spec, modelID, numeric.SplitRNG(9, "bench-arch"))
	}
	rt, err := NewNNRuntime(
		build,
		pool,
		func(int) int { return 20 },
		func(int) float64 { return 0.03 },
		rng,
	)
	if err != nil {
		b.Fatal(err)
	}
	rt.Int8 = int8Mode
	metas := make([]ModelMeta, models.FamilySize())
	for i := range metas {
		metas[i] = ModelMeta{Name: "bench", PhiKWh: 0.001}
	}
	if err := rt.Welcome(metas); err != nil {
		b.Fatal(err)
	}
	net, err := build(0)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nn.WriteWeights(&buf, net); err != nil {
		b.Fatal(err)
	}
	if err := rt.LoadModel(0, buf.Bytes()); err != nil {
		b.Fatal(err)
	}
	return rt
}

// BenchmarkNNRuntimeSlot gates the zero-alloc claim: after one warm-up
// slot, a steady-state RunSlot must report 0 allocs/op — all NN scratch
// comes from the runtime-owned arena.
func BenchmarkNNRuntimeSlot(b *testing.B) {
	rt := benchRuntime(b, false)
	if _, err := rt.RunSlot(0, 0); err != nil { // warm the arena
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.RunSlot(i+1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNRuntimeSlotInt8 is the same slot-serving gate with the true-INT8
// engine: quantized kernels plus the identical zero-alloc steady state.
func BenchmarkNNRuntimeSlotInt8(b *testing.B) {
	rt := benchRuntime(b, true)
	if _, err := rt.RunSlot(0, 0); err != nil { // warm the arena
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.RunSlot(i+1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNNRuntimeSlotZeroAllocs enforces the 0 allocs/op gate in the regular
// test run (benchmarks only execute under -bench), for both engines.
func TestNNRuntimeSlotZeroAllocs(t *testing.T) {
	for _, mode := range []struct {
		name string
		int8 bool
	}{{"float", false}, {"int8", true}} {
		t.Run(mode.name, func(t *testing.T) {
			rt := benchRuntime(t, mode.int8)
			if _, err := rt.RunSlot(0, 0); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := rt.RunSlot(1, 0); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state RunSlot allocates %v times per slot, want 0", allocs)
			}
		})
	}
}

// TestNNRuntimeInt8Serving pins the INT8 execution mode's serving contract:
// the sample draw stream is the float runtime's (identical RNG consumption,
// so Samples/Energy/CompSeconds match bit for bit), repeated runs are
// deterministic, and a model installed before the mode was enabled is
// rejected rather than silently served through the float path.
func TestNNRuntimeInt8Serving(t *testing.T) {
	fp := benchRuntime(t, false)
	q := benchRuntime(t, true)
	for slot := 0; slot < 3; slot++ {
		frep, err := fp.RunSlot(slot, 0)
		if err != nil {
			t.Fatal(err)
		}
		qrep, err := q.RunSlot(slot, 0)
		if err != nil {
			t.Fatal(err)
		}
		if qrep.Samples != frep.Samples || qrep.EnergyKWh != frep.EnergyKWh ||
			qrep.CompSeconds != frep.CompSeconds {
			t.Fatalf("slot %d: int8 report metadata %+v diverges from float %+v", slot, qrep, frep)
		}
		if qrep.AvgLoss < 0 || qrep.Correct < 0 || qrep.Correct > qrep.Samples {
			t.Fatalf("slot %d: malformed int8 report %+v", slot, qrep)
		}
	}
	// Determinism: two fresh int8 runtimes replay identical reports.
	q2, q3 := benchRuntime(t, true), benchRuntime(t, true)
	for slot := 0; slot < 3; slot++ {
		a, err := q2.RunSlot(slot, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := q3.RunSlot(slot, 0)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("slot %d: int8 serving nondeterministic: %+v vs %+v", slot, a, b)
		}
	}

	// A float-loaded model must not be served once Int8 is flipped on.
	late := benchRuntime(t, false)
	late.Int8 = true
	if _, err := late.RunSlot(0, 0); err == nil {
		t.Fatal("RunSlot served a float-loaded model in Int8 mode")
	}
}
