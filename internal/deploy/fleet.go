package deploy

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// fleetConfig parameterizes an edgeFleet: the TCP-facing machinery that
// admits contiguous ranges of edge sessions, carries their connections
// across drops, and exchanges per-slot assignments for reports.
//
// It is the deployment-transport subset of CloudConfig, factored out so both
// the monolithic Cloud (offset 0, the whole fleet) and a regional
// coordinator (offset = the region's shard start) drive identical admission,
// resume, retry, and exchange code.
type fleetConfig struct {
	// count is the number of edges this fleet initially admits; offset is the
	// global id of its first edge: the fleet starts serving global edge ids
	// [offset, offset+count). count may be 0 for a standby fleet that gains
	// its ranges only through mid-run shard adoption.
	count  int
	offset int
	// horizon bounds the resume-position plausibility check.
	horizon int
	// seed drives the resume-token issue and the deterministic backoff
	// jitter streams.
	seed int64
	// timeouts returns the current handshake and slot deadlines (the owner's
	// CloudConfig/RegionConfig fields). It is consulted per use, not
	// snapshotted, preserving the historical behavior that owners may adjust
	// the deadlines between construction and serving.
	timeouts func() (handshake, slot time.Duration)
	// retry is the per-slot transient-failure budget.
	retry RetryConfig
}

// fleetRange is one contiguous block of edge links the fleet serves: the
// initial range from fleetConfig, plus one per adopted shard. Tokens and
// jitter streams are derived from the range's own seed — for an adopted
// range that is the original owner's fleet seed, so the edges' existing
// resume tokens keep verifying.
type fleetRange struct {
	offset int
	seed   int64
	links  []*edgeLink
}

// edgeFleet owns the cloud-side state of the edge sessions it serves: one
// edgeLink per edge (grouped into contiguous ranges), the acceptor that
// admits initial and resumed connections into the links, and the tcpSteppers
// that consume them.
type edgeFleet struct {
	fcfg   fleetConfig
	source ModelSource

	// mu guards ranges: the acceptor reads them concurrently with mid-run
	// adoptions appending new ones.
	mu     sync.RWMutex
	ranges []*fleetRange

	// initial and acceptErr carry initial-admission progress from the
	// acceptor to awaitInitial.
	initial   chan int
	acceptErr chan error

	// sleep performs retry backoff; injectable so chaos tests replay with
	// zero wall time. Defaults to time.Sleep.
	sleep func(time.Duration)
	// done flips once the run is over: the acceptor stops admitting.
	done atomic.Bool
}

// newEdgeFleet builds the fleet's initial links with deterministic resume
// tokens. The caller validates the configuration (see NewCloud / RunRegion).
func newEdgeFleet(cfg fleetConfig, source ModelSource) *edgeFleet {
	f := &edgeFleet{
		fcfg:      cfg,
		source:    source,
		initial:   make(chan int, cfg.count+1),
		acceptErr: make(chan error, 1),
	}
	f.ranges = []*fleetRange{{
		offset: cfg.offset,
		seed:   cfg.seed,
		links:  buildLinks(cfg.offset, cfg.count, cfg.seed, false),
	}}
	//lint:allow nodeterm retry backoff is real wall-clock waiting; chaos tests inject a zero-time sleep
	f.sleep = time.Sleep
	return f
}

// buildLinks derives a contiguous range's links. Resume tokens are
// deterministic from the seed: they bind a redialing connection to the
// session it claims (mis-binding protection inside a trusted deployment),
// not an authentication secret — which is also what lets an adopting
// coordinator reconstruct an orphaned range's tokens from the original
// fleet seed instead of having them shipped.
func buildLinks(offset, count int, seed int64, claimed bool) []*edgeLink {
	tokenRNG := numeric.SplitRNG(seed, "deploy-resume-token")
	links := make([]*edgeLink, count)
	for i := range links {
		links[i] = &edgeLink{
			id:       offset + i,
			token:    fmt.Sprintf("%016x-%02d", tokenRNG.Uint64(), i),
			incoming: make(chan net.Conn, 1),
			claimed:  claimed,
		}
	}
	return links
}

// linkFor resolves a global edge id to its link, or nil when the fleet does
// not (yet) serve it.
func (f *edgeFleet) linkFor(id int) *edgeLink {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, rg := range f.ranges {
		if local := id - rg.offset; local >= 0 && local < len(rg.links) {
			return rg.links[local]
		}
	}
	return nil
}

// adopt installs an orphaned shard's range mid-run from its checkpoint: the
// links are rebuilt with the original fleet's tokens (derived from
// ck.FleetSeed) and pre-claimed, so the shard's edges are admitted through
// the resume path only — exactly the state they are in. It returns the
// range's steppers, with each edge's backoff jitter stream fast-forwarded to
// the checkpointed draw position (jitter paces wall-clock retries only; it
// never reaches Results).
func (f *edgeFleet) adopt(ck *engine.ShardCheckpoint) ([]*tcpStepper, error) {
	f.mu.Lock()
	for _, rg := range f.ranges {
		if ck.Start < rg.offset+len(rg.links) && rg.offset < ck.Start+ck.Count {
			f.mu.Unlock()
			return nil, protocolErrorf("adopted range [%d,%d) overlaps fleet range [%d,%d)",
				ck.Start, ck.Start+ck.Count, rg.offset, rg.offset+len(rg.links))
		}
	}
	rg := &fleetRange{
		offset: ck.Start,
		seed:   ck.FleetSeed,
		links:  buildLinks(ck.Start, ck.Count, ck.FleetSeed, true),
	}
	f.ranges = append(f.ranges, rg)
	f.mu.Unlock()

	tcp := make([]*tcpStepper, len(rg.links))
	for i, link := range rg.links {
		rng := numeric.SplitRNG(ck.FleetSeed, fmt.Sprintf("deploy-retry-%d", i))
		if ck.JitterDraws != nil {
			for k := 0; k < ck.JitterDraws[i]; k++ {
				rng.Int63()
			}
		}
		tcp[i] = &tcpStepper{fleet: f, link: link, id: link.id, rng: rng}
	}
	return tcp, nil
}

// edgeLink is the cloud-side connection slot of one edge: the acceptor
// delivers handshaken connections (initial and resumed) into incoming, and
// the edge's stepper consumes them. A dropped edge leaves its link empty
// until a resume arrives.
type edgeLink struct {
	id       int // global edge id
	token    string
	incoming chan net.Conn

	mu      sync.Mutex
	claimed bool // initial connection admitted (true from birth on adopted links)
	resumes int
}

// deliver hands a fresh connection to the stepper, replacing any stale one
// that was never consumed (latest connection wins).
func (l *edgeLink) deliver(conn net.Conn) {
	for {
		select {
		case l.incoming <- conn:
			return
		default:
			select {
			case stale := <-l.incoming:
				stale.Close()
			default:
			}
		}
	}
}

// start launches the acceptor on ln for the whole run. The returned stop
// function halts admission and unblocks a blocked Accept without closing the
// caller's listener. Call stop exactly once, when the run is over.
func (f *edgeFleet) start(ln net.Listener) (stop func()) {
	go f.acceptLoop(ln)
	return func() {
		f.done.Store(true)
		// Unblock a blocked Accept without closing the caller's listener: a
		// deadline in the distant past forces an immediate timeout.
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Unix(1, 0)) //nolint:errcheck // best-effort unblock
		}
	}
}

// awaitInitial blocks until all fcfg.count initial edge sessions are
// admitted (immediately for a standby fleet).
func (f *edgeFleet) awaitInitial() error {
	connected := 0
	for connected < f.fcfg.count {
		select {
		case <-f.initial:
			connected++
		case err := <-f.acceptErr:
			// The acceptor is gone; drain admissions that completed before
			// it died, then fail if the fleet is still short.
			for {
				select {
				case <-f.initial:
					connected++
					continue
				default:
				}
				break
			}
			if connected < f.fcfg.count {
				return fmt.Errorf("deploy: accept: %w", err)
			}
		}
	}
	return nil
}

// awaitFleet starts the acceptor on ln and blocks until the initial fleet is
// complete. The acceptor keeps running so dropped edges can redial and
// resume mid-run.
func (f *edgeFleet) awaitFleet(ln net.Listener) (stop func(), err error) {
	stop = f.start(ln)
	if err := f.awaitInitial(); err != nil {
		stop()
		return nil, err
	}
	return stop, nil
}

// acceptLoop admits connections for the whole run: initial handshakes first,
// session resumes once the run is underway. Admissions run concurrently so
// one slow (or silent) client cannot wedge the fleet.
func (f *edgeFleet) acceptLoop(ln net.Listener) {
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait() // let in-flight admissions finish before reporting
			if !f.done.Load() {
				select {
				case f.acceptErr <- err:
				default:
				}
			}
			return
		}
		if f.done.Load() {
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.admit(conn)
		}()
	}
}

// admit performs one connection's handshake under the handshake deadline and
// delivers the connection to its edge's link. Bad clients are rejected and
// closed without disturbing the fleet. Edge ids on the wire are global; the
// fleet serves its ranges' ids (initial plus any adopted mid-run).
func (f *edgeFleet) admit(conn net.Conn) {
	admitted := false
	defer func() {
		if !admitted {
			conn.Close()
		}
	}()
	timeout, _ := f.fcfg.timeouts()
	if timeout == 0 {
		timeout = DefaultHandshakeTimeout
	}
	if timeout > 0 {
		//lint:allow nodeterm real I/O deadline on a live connection; wall time is the only clock the kernel honors
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
	}
	m, err := ReadMessage(conn)
	if err != nil {
		return
	}
	if m.Type != MsgHello {
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: "expected Hello"})
		return
	}
	link := f.linkFor(m.EdgeID)
	if link == nil {
		if m.Resume {
			// A resuming edge the fleet does not know (yet): during a shard
			// handoff the edge may redial the adopter before the adopt frame
			// installs its range. Close without a verdict — the edge sees a
			// transient drop and retries; a definitive rejection would kill
			// its session mid-migration.
			return
		}
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("bad edge id %d", m.EdgeID)})
		return
	}

	if m.Resume {
		if m.ResumeToken != link.token {
			_ = WriteMessage(conn, &Message{Type: MsgError, Reason: "bad resume token"})
			return
		}
		if m.DoneSlots < 0 || m.DoneSlots > f.fcfg.horizon {
			_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("implausible resume position %d", m.DoneSlots)})
			return
		}
		// The resume Welcome intentionally omits the zoo metadata: the edge
		// already holds it (and its loaded checkpoints) from the session.
		if err := WriteMessage(conn, &Message{Type: MsgWelcome, EdgeID: m.EdgeID, Resume: true}); err != nil {
			return
		}
		if timeout > 0 {
			conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
		}
		link.mu.Lock()
		link.resumes++
		link.mu.Unlock()
		link.deliver(conn)
		admitted = true
		return
	}

	link.mu.Lock()
	if link.claimed {
		link.mu.Unlock()
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("duplicate edge id %d", m.EdgeID)})
		return
	}
	link.claimed = true
	link.mu.Unlock()
	metas := make([]ModelMeta, f.source.NumModels())
	for n := range metas {
		metas[n] = f.source.Meta(n)
	}
	welcome := &Message{
		Type:        MsgWelcome,
		EdgeID:      m.EdgeID,
		NumModels:   len(metas),
		Models:      metas,
		ResumeToken: link.token,
	}
	if err := WriteMessage(conn, welcome); err != nil {
		link.mu.Lock()
		link.claimed = false
		link.mu.Unlock()
		return
	}
	if timeout > 0 {
		conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	link.deliver(conn)
	f.initial <- m.EdgeID
	admitted = true
}

// steppers builds one tcpStepper per initial-range link, with deterministic
// per-edge backoff jitter streams. Adopted ranges get their steppers from
// adopt.
func (f *edgeFleet) steppers() []*tcpStepper {
	f.mu.RLock()
	links := f.ranges[0].links
	f.mu.RUnlock()
	tcp := make([]*tcpStepper, len(links))
	for i, link := range links {
		tcp[i] = &tcpStepper{
			fleet: f,
			link:  link,
			id:    link.id,
			rng:   numeric.SplitRNG(f.fcfg.seed, fmt.Sprintf("deploy-retry-%d", i)),
		}
	}
	return tcp
}

// closeAll closes every live connection (deferred teardown after a run).
func (f *edgeFleet) closeAll(steppers []*tcpStepper) {
	for _, s := range steppers {
		if conn := s.liveConn(); conn != nil {
			conn.Close()
		}
	}
}

// finish notifies every still-connected edge that the run is over. The loop
// is best-effort by design: one dead edge must not leave the others hanging
// until their read deadlines, so every edge is attempted and the failures
// are reported joined (callers ignore them under Degrade).
func (f *edgeFleet) finish(steppers []*tcpStepper) error {
	var errs []error
	for _, s := range steppers {
		conn := s.liveConn()
		if conn == nil {
			continue // edge is down; nobody to notify
		}
		if err := WriteMessage(conn, &Message{Type: MsgDone}); err != nil {
			errs = append(errs, fmt.Errorf("deploy: send done to edge %d: %w", s.id, err))
		}
	}
	return errors.Join(errs...)
}

// abort tells every still-connected edge the run failed and returns the
// error. Like finish, it attempts every edge before returning.
func (f *edgeFleet) abort(steppers []*tcpStepper, err error) error {
	msg := &Message{Type: MsgError, Reason: err.Error()}
	for _, s := range steppers {
		if conn := s.liveConn(); conn != nil {
			_ = WriteMessage(conn, msg) // best effort; we are already failing
		}
	}
	return err
}

// resumes snapshots the initial range's per-edge accepted-resume counts.
func (f *edgeFleet) resumes() []int {
	f.mu.RLock()
	links := f.ranges[0].links
	f.mu.RUnlock()
	out := make([]int, len(links))
	for i, link := range links {
		link.mu.Lock()
		out[i] = link.resumes
		link.mu.Unlock()
	}
	return out
}

// tcpStepper runs one edge's slot over its current connection: ship the
// assignment (plus checkpoint on a switch), wait for the report, translate
// it into the engine's observation. The reported average loss stands in for
// both the bandit feedback and the accounting term — the deployment has no
// posterior mean, only what the edge measured.
//
// Transient failures (resets, timeouts, mid-frame EOFs) consume the
// per-slot retry budget: each retry backs off deterministically and waits
// for the edge to redial and resume before re-running the exchange. Fatal
// failures (protocol violations, invalid report numbers, edge application
// errors) fail the slot immediately.
type tcpStepper struct {
	fleet *edgeFleet
	link  *edgeLink
	id    int        // global edge id
	rng   *rand.Rand // deterministic backoff jitter stream
	conn  net.Conn   // current connection; nil while the edge is down
}

// Step implements engine.EdgeStepper.
//
//lint:cold a TCP round trip per slot dominates any allocation; the alloc-free contract covers in-process steppers only
func (s *tcpStepper) Step(slot, arm int, download bool) (engine.Observation, error) {
	retry := s.fleet.fcfg.retry.withDefaults()
	attempts := 0
	var lastErr error
	for {
		if s.conn == nil {
			if conn := s.await(retry.ResumeWait); conn != nil {
				s.conn = conn
			} else {
				lastErr = Transientf("edge %d: no live connection within %v", s.id, retry.ResumeWait)
			}
		}
		if s.conn != nil {
			obs, err := s.exchange(s.conn, slot, arm, download)
			if err == nil {
				obs.Retries = attempts
				return obs, nil
			}
			s.conn.Close()
			s.conn = nil
			if !Transient(err) {
				return engine.Observation{Retries: attempts}, err
			}
			lastErr = err
		}
		if attempts >= s.fleet.fcfg.retry.Attempts {
			return engine.Observation{Retries: attempts},
				fmt.Errorf("edge %d slot %d: retry budget exhausted after %d retries: %w", s.id, slot, attempts, lastErr)
		}
		attempts++
		s.fleet.sleep(backoffDelay(retry, attempts, s.rng))
	}
}

// await waits up to d for the acceptor to deliver a (re)connection.
func (s *tcpStepper) await(d time.Duration) net.Conn {
	select {
	case conn := <-s.link.incoming:
		return conn
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case conn := <-s.link.incoming:
		return conn
	case <-t.C:
		return nil
	}
}

// liveConn returns the stepper's current connection, consuming a freshly
// resumed one if the acceptor delivered it after the last step. Callers
// must not race Step (the engine has returned, or never started).
func (s *tcpStepper) liveConn() net.Conn {
	select {
	case conn := <-s.link.incoming:
		if s.conn != nil {
			s.conn.Close()
		}
		s.conn = conn
	default:
	}
	return s.conn
}

// exchange runs one assign/report round trip on conn.
func (s *tcpStepper) exchange(conn net.Conn, slot, arm int, download bool) (engine.Observation, error) {
	f, i := s.fleet, s.id
	if _, slotTimeout := f.fcfg.timeouts(); slotTimeout > 0 {
		//lint:allow nodeterm real I/O deadline on a live TCP connection; wall time is the only clock the kernel honors
		if err := conn.SetDeadline(time.Now().Add(slotTimeout)); err != nil {
			return engine.Observation{}, fmt.Errorf("edge %d deadline: %w", i, err)
		}
		defer conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	assign := &Message{
		Type:    MsgAssign,
		Slot:    slot,
		ModelID: arm,
		Switch:  download,
	}
	if download {
		ckpt, err := f.source.Checkpoint(arm)
		if err != nil {
			return engine.Observation{}, fmt.Errorf("checkpoint model %d: %w", arm, err)
		}
		assign.Weights = ckpt
	}
	if err := WriteMessage(conn, assign); err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d assign: %w", i, err)
	}
	rep, err := ReadMessage(conn)
	if err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d report: %w", i, err)
	}
	if rep.Type == MsgError {
		return engine.Observation{}, &EdgeError{EdgeID: i, Reason: rep.Reason}
	}
	if err := ValidateReport(rep); err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d: %w", i, err)
	}
	if rep.Slot != slot {
		return engine.Observation{}, protocolErrorf("edge %d: report for slot %d, want %d", i, rep.Slot, slot)
	}
	return engine.Observation{
		Loss:      rep.AvgLoss + rep.CompSeconds,
		InferLoss: rep.AvgLoss,
		Compute:   rep.CompSeconds,
		Correct:   rep.Correct,
		Samples:   rep.Samples,
		InferKWh:  rep.EnergyKWh,
		TransferKWh: energy.TransferEnergy(
			energy.TransferEnergyPerByte, f.source.Meta(arm).SizeBytes),
	}, nil
}
