package deploy

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// fleetConfig parameterizes an edgeFleet: the TCP-facing machinery that
// admits a contiguous range of edge sessions, carries their connections
// across drops, and exchanges per-slot assignments for reports.
//
// It is the deployment-transport subset of CloudConfig, factored out so both
// the monolithic Cloud (offset 0, the whole fleet) and a regional
// coordinator (offset = the region's shard start) drive identical admission,
// resume, retry, and exchange code.
type fleetConfig struct {
	// count is the number of edges this fleet admits; offset is the global id
	// of its first edge: the fleet serves global edge ids
	// [offset, offset+count).
	count  int
	offset int
	// horizon bounds the resume-position plausibility check.
	horizon int
	// seed drives the resume-token issue and the deterministic backoff
	// jitter streams.
	seed int64
	// timeouts returns the current handshake and slot deadlines (the owner's
	// CloudConfig/RegionConfig fields). It is consulted per use, not
	// snapshotted, preserving the historical behavior that owners may adjust
	// the deadlines between construction and serving.
	timeouts func() (handshake, slot time.Duration)
	// retry is the per-slot transient-failure budget.
	retry RetryConfig
}

// edgeFleet owns the cloud-side state of a contiguous range of edge
// sessions: one edgeLink per edge, the acceptor that admits initial and
// resumed connections into the links, and the tcpSteppers that consume them.
type edgeFleet struct {
	fcfg   fleetConfig
	source ModelSource
	links  []*edgeLink
	// sleep performs retry backoff; injectable so chaos tests replay with
	// zero wall time. Defaults to time.Sleep.
	sleep func(time.Duration)
	// done flips once the run is over: the acceptor stops admitting.
	done atomic.Bool
}

// newEdgeFleet builds the fleet's links with deterministic resume tokens.
// The caller validates the configuration (see NewCloud / RunRegion).
func newEdgeFleet(cfg fleetConfig, source ModelSource) *edgeFleet {
	// Resume tokens are deterministic from the seed: they bind a redialing
	// connection to the session it claims (mis-binding protection inside a
	// trusted deployment), not an authentication secret.
	tokenRNG := numeric.SplitRNG(cfg.seed, "deploy-resume-token")
	links := make([]*edgeLink, cfg.count)
	for i := range links {
		links[i] = &edgeLink{
			id:       cfg.offset + i,
			token:    fmt.Sprintf("%016x-%02d", tokenRNG.Uint64(), i),
			incoming: make(chan net.Conn, 1),
		}
	}
	//lint:allow nodeterm retry backoff is real wall-clock waiting; chaos tests inject a zero-time sleep
	return &edgeFleet{fcfg: cfg, source: source, links: links, sleep: time.Sleep}
}

// edgeLink is the cloud-side connection slot of one edge: the acceptor
// delivers handshaken connections (initial and resumed) into incoming, and
// the edge's stepper consumes them. A dropped edge leaves its link empty
// until a resume arrives.
type edgeLink struct {
	id       int // global edge id
	token    string
	incoming chan net.Conn

	mu      sync.Mutex
	claimed bool // initial connection admitted
	resumes int
}

// deliver hands a fresh connection to the stepper, replacing any stale one
// that was never consumed (latest connection wins).
func (l *edgeLink) deliver(conn net.Conn) {
	for {
		select {
		case l.incoming <- conn:
			return
		default:
			select {
			case stale := <-l.incoming:
				stale.Close()
			default:
			}
		}
	}
}

// awaitFleet starts the acceptor on ln and blocks until all fcfg.count
// initial edge sessions are admitted. The acceptor keeps running so dropped
// edges can redial and resume mid-run; the returned stop function halts
// admission and unblocks a blocked Accept without closing the caller's
// listener. Call stop exactly once, when the run is over.
func (f *edgeFleet) awaitFleet(ln net.Listener) (stop func(), err error) {
	initial := make(chan int, f.fcfg.count)
	acceptErr := make(chan error, 1)
	go f.acceptLoop(ln, initial, acceptErr)
	stop = func() {
		f.done.Store(true)
		// Unblock a blocked Accept without closing the caller's listener: a
		// deadline in the distant past forces an immediate timeout.
		if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
			d.SetDeadline(time.Unix(1, 0)) //nolint:errcheck // best-effort unblock
		}
	}

	connected := 0
	for connected < f.fcfg.count {
		select {
		case <-initial:
			connected++
		case err := <-acceptErr:
			// The acceptor is gone; drain admissions that completed before
			// it died, then fail if the fleet is still short.
			for {
				select {
				case <-initial:
					connected++
					continue
				default:
				}
				break
			}
			if connected < f.fcfg.count {
				stop()
				return nil, fmt.Errorf("deploy: accept: %w", err)
			}
		}
	}
	return stop, nil
}

// acceptLoop admits connections for the whole run: initial handshakes first,
// session resumes once the run is underway. Admissions run concurrently so
// one slow (or silent) client cannot wedge the fleet.
func (f *edgeFleet) acceptLoop(ln net.Listener, initial chan<- int, acceptErr chan<- error) {
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait() // let in-flight admissions finish before reporting
			if !f.done.Load() {
				select {
				case acceptErr <- err:
				default:
				}
			}
			return
		}
		if f.done.Load() {
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.admit(conn, initial)
		}()
	}
}

// admit performs one connection's handshake under the handshake deadline and
// delivers the connection to its edge's link. Bad clients are rejected and
// closed without disturbing the fleet. Edge ids on the wire are global; the
// fleet serves [offset, offset+count).
func (f *edgeFleet) admit(conn net.Conn, initial chan<- int) {
	admitted := false
	defer func() {
		if !admitted {
			conn.Close()
		}
	}()
	timeout, _ := f.fcfg.timeouts()
	if timeout == 0 {
		timeout = DefaultHandshakeTimeout
	}
	if timeout > 0 {
		//lint:allow nodeterm real I/O deadline on a live connection; wall time is the only clock the kernel honors
		if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
			return
		}
	}
	m, err := ReadMessage(conn)
	if err != nil {
		return
	}
	if m.Type != MsgHello {
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: "expected Hello"})
		return
	}
	local := m.EdgeID - f.fcfg.offset
	if local < 0 || local >= len(f.links) {
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("bad edge id %d", m.EdgeID)})
		return
	}
	link := f.links[local]

	if m.Resume {
		if m.ResumeToken != link.token {
			_ = WriteMessage(conn, &Message{Type: MsgError, Reason: "bad resume token"})
			return
		}
		if m.DoneSlots < 0 || m.DoneSlots > f.fcfg.horizon {
			_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("implausible resume position %d", m.DoneSlots)})
			return
		}
		// The resume Welcome intentionally omits the zoo metadata: the edge
		// already holds it (and its loaded checkpoints) from the session.
		if err := WriteMessage(conn, &Message{Type: MsgWelcome, EdgeID: m.EdgeID, Resume: true}); err != nil {
			return
		}
		if timeout > 0 {
			conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
		}
		link.mu.Lock()
		link.resumes++
		link.mu.Unlock()
		link.deliver(conn)
		admitted = true
		return
	}

	link.mu.Lock()
	if link.claimed {
		link.mu.Unlock()
		_ = WriteMessage(conn, &Message{Type: MsgError, Reason: fmt.Sprintf("duplicate edge id %d", m.EdgeID)})
		return
	}
	link.claimed = true
	link.mu.Unlock()
	metas := make([]ModelMeta, f.source.NumModels())
	for n := range metas {
		metas[n] = f.source.Meta(n)
	}
	welcome := &Message{
		Type:        MsgWelcome,
		EdgeID:      m.EdgeID,
		NumModels:   len(metas),
		Models:      metas,
		ResumeToken: link.token,
	}
	if err := WriteMessage(conn, welcome); err != nil {
		link.mu.Lock()
		link.claimed = false
		link.mu.Unlock()
		return
	}
	if timeout > 0 {
		conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	link.deliver(conn)
	initial <- m.EdgeID
	admitted = true
}

// steppers builds one tcpStepper per link, with deterministic per-edge
// backoff jitter streams.
func (f *edgeFleet) steppers() []*tcpStepper {
	tcp := make([]*tcpStepper, len(f.links))
	for i, link := range f.links {
		tcp[i] = &tcpStepper{
			fleet: f,
			link:  link,
			id:    link.id,
			rng:   numeric.SplitRNG(f.fcfg.seed, fmt.Sprintf("deploy-retry-%d", i)),
		}
	}
	return tcp
}

// closeAll closes every live connection (deferred teardown after a run).
func (f *edgeFleet) closeAll(steppers []*tcpStepper) {
	for _, s := range steppers {
		if conn := s.liveConn(); conn != nil {
			conn.Close()
		}
	}
}

// finish notifies every still-connected edge that the run is over. The loop
// is best-effort by design: one dead edge must not leave the others hanging
// until their read deadlines, so every edge is attempted and the failures
// are reported joined (callers ignore them under Degrade).
func (f *edgeFleet) finish(steppers []*tcpStepper) error {
	var errs []error
	for _, s := range steppers {
		conn := s.liveConn()
		if conn == nil {
			continue // edge is down; nobody to notify
		}
		if err := WriteMessage(conn, &Message{Type: MsgDone}); err != nil {
			errs = append(errs, fmt.Errorf("deploy: send done to edge %d: %w", s.id, err))
		}
	}
	return errors.Join(errs...)
}

// abort tells every still-connected edge the run failed and returns the
// error. Like finish, it attempts every edge before returning.
func (f *edgeFleet) abort(steppers []*tcpStepper, err error) error {
	msg := &Message{Type: MsgError, Reason: err.Error()}
	for _, s := range steppers {
		if conn := s.liveConn(); conn != nil {
			_ = WriteMessage(conn, msg) // best effort; we are already failing
		}
	}
	return err
}

// resumes snapshots the per-edge accepted-resume counts.
func (f *edgeFleet) resumes() []int {
	out := make([]int, len(f.links))
	for i, link := range f.links {
		link.mu.Lock()
		out[i] = link.resumes
		link.mu.Unlock()
	}
	return out
}

// tcpStepper runs one edge's slot over its current connection: ship the
// assignment (plus checkpoint on a switch), wait for the report, translate
// it into the engine's observation. The reported average loss stands in for
// both the bandit feedback and the accounting term — the deployment has no
// posterior mean, only what the edge measured.
//
// Transient failures (resets, timeouts, mid-frame EOFs) consume the
// per-slot retry budget: each retry backs off deterministically and waits
// for the edge to redial and resume before re-running the exchange. Fatal
// failures (protocol violations, invalid report numbers, edge application
// errors) fail the slot immediately.
type tcpStepper struct {
	fleet *edgeFleet
	link  *edgeLink
	id    int        // global edge id
	rng   *rand.Rand // deterministic backoff jitter stream
	conn  net.Conn   // current connection; nil while the edge is down
}

// Step implements engine.EdgeStepper.
//
//lint:cold a TCP round trip per slot dominates any allocation; the alloc-free contract covers in-process steppers only
func (s *tcpStepper) Step(slot, arm int, download bool) (engine.Observation, error) {
	retry := s.fleet.fcfg.retry.withDefaults()
	attempts := 0
	var lastErr error
	for {
		if s.conn == nil {
			if conn := s.await(retry.ResumeWait); conn != nil {
				s.conn = conn
			} else {
				lastErr = Transientf("edge %d: no live connection within %v", s.id, retry.ResumeWait)
			}
		}
		if s.conn != nil {
			obs, err := s.exchange(s.conn, slot, arm, download)
			if err == nil {
				obs.Retries = attempts
				return obs, nil
			}
			s.conn.Close()
			s.conn = nil
			if !Transient(err) {
				return engine.Observation{Retries: attempts}, err
			}
			lastErr = err
		}
		if attempts >= s.fleet.fcfg.retry.Attempts {
			return engine.Observation{Retries: attempts},
				fmt.Errorf("edge %d slot %d: retry budget exhausted after %d retries: %w", s.id, slot, attempts, lastErr)
		}
		attempts++
		s.fleet.sleep(backoffDelay(retry, attempts, s.rng))
	}
}

// await waits up to d for the acceptor to deliver a (re)connection.
func (s *tcpStepper) await(d time.Duration) net.Conn {
	select {
	case conn := <-s.link.incoming:
		return conn
	default:
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case conn := <-s.link.incoming:
		return conn
	case <-t.C:
		return nil
	}
}

// liveConn returns the stepper's current connection, consuming a freshly
// resumed one if the acceptor delivered it after the last step. Callers
// must not race Step (the engine has returned, or never started).
func (s *tcpStepper) liveConn() net.Conn {
	select {
	case conn := <-s.link.incoming:
		if s.conn != nil {
			s.conn.Close()
		}
		s.conn = conn
	default:
	}
	return s.conn
}

// exchange runs one assign/report round trip on conn.
func (s *tcpStepper) exchange(conn net.Conn, slot, arm int, download bool) (engine.Observation, error) {
	f, i := s.fleet, s.id
	if _, slotTimeout := f.fcfg.timeouts(); slotTimeout > 0 {
		//lint:allow nodeterm real I/O deadline on a live TCP connection; wall time is the only clock the kernel honors
		if err := conn.SetDeadline(time.Now().Add(slotTimeout)); err != nil {
			return engine.Observation{}, fmt.Errorf("edge %d deadline: %w", i, err)
		}
		defer conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}
	assign := &Message{
		Type:    MsgAssign,
		Slot:    slot,
		ModelID: arm,
		Switch:  download,
	}
	if download {
		ckpt, err := f.source.Checkpoint(arm)
		if err != nil {
			return engine.Observation{}, fmt.Errorf("checkpoint model %d: %w", arm, err)
		}
		assign.Weights = ckpt
	}
	if err := WriteMessage(conn, assign); err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d assign: %w", i, err)
	}
	rep, err := ReadMessage(conn)
	if err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d report: %w", i, err)
	}
	if rep.Type == MsgError {
		return engine.Observation{}, &EdgeError{EdgeID: i, Reason: rep.Reason}
	}
	if err := ValidateReport(rep); err != nil {
		return engine.Observation{}, fmt.Errorf("edge %d: %w", i, err)
	}
	if rep.Slot != slot {
		return engine.Observation{}, protocolErrorf("edge %d: report for slot %d, want %d", i, rep.Slot, slot)
	}
	return engine.Observation{
		Loss:      rep.AvgLoss + rep.CompSeconds,
		InferLoss: rep.AvgLoss,
		Compute:   rep.CompSeconds,
		Correct:   rep.Correct,
		Samples:   rep.Samples,
		InferKWh:  rep.EnergyKWh,
		TransferKWh: energy.TransferEnergy(
			energy.TransferEnergyPerByte, f.source.Meta(arm).SizeBytes),
	}, nil
}
