// Package profiling wires the standard -cpuprofile/-memprofile flags into
// the repo's commands. Profiles are written with runtime/pprof and read with
// `go tool pprof`; both paths are optional and empty strings disable the
// corresponding profile.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and returns a stop
// function. The stop function ends the CPU profile and, when memPath is
// non-empty, runs a GC and writes an allocs-space heap profile there.
// Callers must invoke stop exactly once, after the workload finishes.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("close cpu profile: %w", err)
			}
		}
		if memPath != "" {
			memFile, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("create mem profile: %w", err)
			}
			defer memFile.Close()
			runtime.GC() // settle live-heap numbers before the snapshot
			if err := pprof.Lookup("allocs").WriteTo(memFile, 0); err != nil {
				return fmt.Errorf("write mem profile: %w", err)
			}
		}
		return nil
	}, nil
}
