// Package core assembles the paper's full online framework — per-edge
// switching-aware bandit model selection (Algorithm 1) plus online
// primal-dual carbon-allowance trading (Algorithm 2) — behind a single
// Controller with a strict per-slot protocol, so that a downstream system
// can drive real inference traffic through it without touching the
// algorithm internals.
//
// Per time slot the caller:
//
//  1. calls SelectModels to obtain the model placement x_{i,n}^t (one model
//     per edge; compare with the previous slot to know which edges must
//     download, i.e. y_i^t),
//  2. calls DecideTrade to obtain the allowance purchase/sale (z^t, w^t),
//  3. runs inference, measures per-edge average losses and the slot's total
//     carbon emission, and
//  4. calls CompleteSlot to feed the observations back.
//
// The controller enforces this ordering and is deterministic given its seed.
package core

import (
	"fmt"
	"math"

	"github.com/carbonedge/carbonedge/internal/bandit"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// Config parameterizes a Controller.
type Config struct {
	// NumModels is N, the size of the cloud's model set.
	NumModels int
	// DownloadCosts holds u_i for each edge (defines the number of edges).
	DownloadCosts []float64
	// Horizon is T, the number of slots the controller will run.
	Horizon int
	// InitialCap is the allowance cap R.
	InitialCap float64
	// EmissionScale is the expected per-slot system emission, used to scale
	// Algorithm 2's step sizes; PriceScale is the expected allowance price
	// magnitude. Zero values default to 1.
	EmissionScale float64
	PriceScale    float64
	// Seed drives all sampling.
	Seed int64
	// PredictivePricing enables the future-work extension: Algorithm 2's
	// primal step is driven by an online AR(1) price forecast instead of
	// the last observed price.
	PredictivePricing bool
	// SellRatio is the market's r/c ratio, needed by predictive pricing
	// (0 defaults to 0.9).
	SellRatio float64
}

// phase tracks the per-slot protocol position.
type phase int

const (
	phaseSelect phase = iota + 1
	phaseTrade
	phaseComplete
)

// Controller is the paper's joint online algorithm.
type Controller struct {
	cfg      Config
	policies []bandit.Policy
	trader   trading.Trader
	lambda   func() float64

	slot       int
	state      phase
	current    []int
	prev       []int
	trade      trading.Decision
	quote      trading.Quote
	switches   int
	selections [][]int
}

// validate checks the configuration fields shared by both constructors.
func (cfg *Config) validate() error {
	if cfg.NumModels <= 0 {
		return fmt.Errorf("core: NumModels must be positive, got %d", cfg.NumModels)
	}
	if len(cfg.DownloadCosts) == 0 {
		return fmt.Errorf("core: need at least one edge")
	}
	if cfg.Horizon <= 0 {
		return fmt.Errorf("core: Horizon must be positive, got %d", cfg.Horizon)
	}
	if cfg.InitialCap < 0 {
		return fmt.Errorf("core: negative InitialCap %g", cfg.InitialCap)
	}
	if cfg.EmissionScale < 0 || cfg.PriceScale < 0 {
		return fmt.Errorf("core: negative scale hints")
	}
	for i, u := range cfg.DownloadCosts {
		if u < 0 {
			return fmt.Errorf("core: negative download cost u[%d]=%g", i, u)
		}
	}
	return nil
}

// newController assembles the protocol state around validated components.
func newController(cfg Config, policies []bandit.Policy, trader trading.Trader) *Controller {
	c := &Controller{
		cfg:        cfg,
		policies:   policies,
		trader:     trader,
		current:    make([]int, len(policies)),
		prev:       make([]int, len(policies)),
		selections: make([][]int, len(policies)),
		state:      phaseSelect,
	}
	for i := range c.prev {
		c.prev[i] = -1
		c.selections[i] = make([]int, cfg.NumModels)
	}
	if l, ok := trader.(interface{ Lambda() float64 }); ok {
		c.lambda = l.Lambda
	} else {
		c.lambda = func() float64 { return 0 }
	}
	return c
}

// New creates a Controller running the paper's own algorithms: Algorithm 1
// (BlockedTsallisINF) on every edge and Algorithm 2 (PrimalDual) for
// trading, with Theorem-2 step sizes derived from the scale hints.
func New(cfg Config) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.EmissionScale == 0 {
		cfg.EmissionScale = 1
	}
	if cfg.PriceScale == 0 {
		cfg.PriceScale = 1
	}

	policies := make([]bandit.Policy, len(cfg.DownloadCosts))
	for i, u := range cfg.DownloadCosts {
		p, err := bandit.NewBlockedTsallisINF(cfg.NumModels, u,
			numeric.SplitRNG(cfg.Seed, fmt.Sprintf("core-policy-%d", i)))
		if err != nil {
			return nil, fmt.Errorf("edge %d policy: %w", i, err)
		}
		policies[i] = p
	}
	tCfg := trading.DefaultPrimalDualConfig(cfg.InitialCap, cfg.Horizon)
	inv3 := 1.0 / math.Cbrt(float64(cfg.Horizon))
	tCfg.Gamma1 = 4 * inv3 * cfg.PriceScale / cfg.EmissionScale
	tCfg.Gamma2 = 4 * inv3 * cfg.EmissionScale / cfg.PriceScale
	tCfg.ZMax = 20 * cfg.EmissionScale
	var trader trading.Trader
	if cfg.PredictivePricing {
		ratio := cfg.SellRatio
		if ratio == 0 {
			ratio = 0.9
		}
		tr, err := trading.NewPredictivePrimalDual(tCfg, market.NewARPredictor(), ratio)
		if err != nil {
			return nil, fmt.Errorf("predictive trader: %w", err)
		}
		trader = tr
	} else {
		tr, err := trading.NewPrimalDual(tCfg)
		if err != nil {
			return nil, fmt.Errorf("trader: %w", err)
		}
		trader = tr
	}
	return newController(cfg, policies, trader), nil
}

// NewWithComponents creates a Controller that drives caller-supplied
// per-edge policies and a caller-supplied trader through the same strict
// slot protocol. This is how the simulator runs the paper's baseline
// combinations (Ran-Ran, UCB-LY, ...) and the clairvoyant Offline scheme
// through the one shared engine: the protocol, switch accounting, and
// selection bookkeeping stay identical regardless of the algorithms inside.
func NewWithComponents(cfg Config, policies []bandit.Policy, trader trading.Trader) (*Controller, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(policies) != len(cfg.DownloadCosts) {
		return nil, fmt.Errorf("core: %d policies for %d edges", len(policies), len(cfg.DownloadCosts))
	}
	if trader == nil {
		return nil, fmt.Errorf("core: nil trader")
	}
	for i, p := range policies {
		if p == nil {
			return nil, fmt.Errorf("core: nil policy for edge %d", i)
		}
		if p.NumArms() != cfg.NumModels {
			return nil, fmt.Errorf("core: edge %d policy has %d arms, config wants %d", i, p.NumArms(), cfg.NumModels)
		}
	}
	return newController(cfg, policies, trader), nil
}

// NumEdges returns the number of edges I.
func (c *Controller) NumEdges() int { return len(c.policies) }

// Slot returns the current 0-indexed slot.
func (c *Controller) Slot() int { return c.slot }

// SelectModels starts a slot and returns the model index for every edge.
// The returned slice is owned by the caller.
func (c *Controller) SelectModels() ([]int, error) {
	if c.state != phaseSelect {
		return nil, fmt.Errorf("core: SelectModels called out of order (state %d)", c.state)
	}
	out := make([]int, len(c.policies))
	for i, p := range c.policies {
		c.current[i] = p.SelectArm()
		out[i] = c.current[i]
		c.selections[i][c.current[i]]++
	}
	c.state = phaseTrade
	return out, nil
}

// Downloads reports, after SelectModels, which edges must download a new
// model this slot (y_i^t = 1).
func (c *Controller) Downloads() ([]bool, error) {
	if c.state != phaseTrade && c.state != phaseComplete {
		return nil, fmt.Errorf("core: Downloads called before SelectModels")
	}
	out := make([]bool, len(c.policies))
	for i := range out {
		out[i] = c.current[i] != c.prev[i]
	}
	return out, nil
}

// DecideTrade returns (z^t, w^t) for the slot. The quote is recorded for the
// trader's history; Algorithm 2 does not use the current slot's prices.
func (c *Controller) DecideTrade(q trading.Quote) (trading.Decision, error) {
	if c.state != phaseTrade {
		return trading.Decision{}, fmt.Errorf("core: DecideTrade called out of order (state %d)", c.state)
	}
	c.trade = c.trader.Decide(c.slot, q)
	c.quote = q
	c.state = phaseComplete
	return c.trade, nil
}

// CompleteSlot feeds back the per-edge observed losses (the paper's
// L_{i,n}^t + v_{i,n}) and the slot's total emission, then advances to the
// next slot.
func (c *Controller) CompleteSlot(losses []float64, emission float64) error {
	return c.CompleteSlotServed(losses, nil, emission)
}

// CompleteSlotServed is CompleteSlot with a per-edge served mask for
// degraded runs: an edge whose slot was never served (served[i] == false)
// gives its policy no loss feedback — the policy's bandit.Skipper hook is
// invoked instead, so importance-weighted estimators stay unbiased over the
// slots actually served. A nil mask means every edge served. Policies that
// do not implement bandit.Skipper receive the fallback loss via Update, so
// callers should pass 0 for unserved edges (every policy in this repository
// implements Skipper, making the fallback moot in practice).
func (c *Controller) CompleteSlotServed(losses []float64, served []bool, emission float64) error {
	if c.state != phaseComplete {
		return fmt.Errorf("core: CompleteSlot called out of order (state %d)", c.state)
	}
	if len(losses) != len(c.policies) {
		return fmt.Errorf("core: got %d losses for %d edges", len(losses), len(c.policies))
	}
	if served != nil && len(served) != len(c.policies) {
		return fmt.Errorf("core: got %d served flags for %d edges", len(served), len(c.policies))
	}
	if emission < 0 {
		return fmt.Errorf("core: negative emission %g", emission)
	}
	for i, p := range c.policies {
		if served == nil || served[i] {
			p.Update(losses[i])
		} else if s, ok := p.(bandit.Skipper); ok {
			s.Skip()
		} else {
			p.Update(losses[i])
		}
		if c.current[i] != c.prev[i] {
			c.switches++
		}
		c.prev[i] = c.current[i]
	}
	c.trader.Observe(c.slot, emission, c.quote, c.trade)
	c.slot++
	c.state = phaseSelect
	return nil
}

// Switches returns total model downloads across edges so far (counted at
// slot completion; every edge's initial download is included).
func (c *Controller) Switches() int { return c.switches }

// Lambda returns Algorithm 2's dual multiplier (diagnostics); 0 when the
// installed trader exposes no dual variable.
func (c *Controller) Lambda() float64 { return c.lambda() }

// Selections returns per-edge per-model slot counts. The returned slices
// are owned by the caller.
func (c *Controller) Selections() [][]int {
	out := make([][]int, len(c.policies))
	for i, row := range c.selections {
		out[i] = make([]int, len(row))
		copy(out[i], row)
	}
	return out
}
