// Package core assembles the paper's full online framework — per-edge
// switching-aware bandit model selection (Algorithm 1) plus online
// primal-dual carbon-allowance trading (Algorithm 2) — behind a single
// Controller with a strict per-slot protocol, so that a downstream system
// can drive real inference traffic through it without touching the
// algorithm internals.
//
// Per time slot the caller:
//
//  1. calls SelectModels to obtain the model placement x_{i,n}^t (one model
//     per edge; compare with the previous slot to know which edges must
//     download, i.e. y_i^t),
//  2. calls DecideTrade to obtain the allowance purchase/sale (z^t, w^t),
//  3. runs inference, measures per-edge average losses and the slot's total
//     carbon emission, and
//  4. calls CompleteSlot to feed the observations back.
//
// The controller enforces this ordering and is deterministic given its seed.
package core

import (
	"fmt"
	"math"

	"github.com/carbonedge/carbonedge/internal/bandit"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// Config parameterizes a Controller.
type Config struct {
	// NumModels is N, the size of the cloud's model set.
	NumModels int
	// DownloadCosts holds u_i for each edge (defines the number of edges).
	DownloadCosts []float64
	// Horizon is T, the number of slots the controller will run.
	Horizon int
	// InitialCap is the allowance cap R.
	InitialCap float64
	// EmissionScale is the expected per-slot system emission, used to scale
	// Algorithm 2's step sizes; PriceScale is the expected allowance price
	// magnitude. Zero values default to 1.
	EmissionScale float64
	PriceScale    float64
	// Seed drives all sampling.
	Seed int64
	// PredictivePricing enables the future-work extension: Algorithm 2's
	// primal step is driven by an online AR(1) price forecast instead of
	// the last observed price.
	PredictivePricing bool
	// SellRatio is the market's r/c ratio, needed by predictive pricing
	// (0 defaults to 0.9).
	SellRatio float64
}

// phase tracks the per-slot protocol position.
type phase int

const (
	phaseSelect phase = iota + 1
	phaseTrade
	phaseComplete
)

// Controller is the paper's joint online algorithm.
type Controller struct {
	cfg      Config
	policies []*bandit.BlockedTsallisINF
	trader   trading.Trader
	lambda   func() float64

	slot    int
	state   phase
	current []int
	prev    []int
	trade   trading.Decision
	quote   trading.Quote
}

// New creates a Controller.
func New(cfg Config) (*Controller, error) {
	if cfg.NumModels <= 0 {
		return nil, fmt.Errorf("core: NumModels must be positive, got %d", cfg.NumModels)
	}
	if len(cfg.DownloadCosts) == 0 {
		return nil, fmt.Errorf("core: need at least one edge")
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("core: Horizon must be positive, got %d", cfg.Horizon)
	}
	if cfg.InitialCap < 0 {
		return nil, fmt.Errorf("core: negative InitialCap %g", cfg.InitialCap)
	}
	if cfg.EmissionScale < 0 || cfg.PriceScale < 0 {
		return nil, fmt.Errorf("core: negative scale hints")
	}
	if cfg.EmissionScale == 0 {
		cfg.EmissionScale = 1
	}
	if cfg.PriceScale == 0 {
		cfg.PriceScale = 1
	}

	c := &Controller{
		cfg:      cfg,
		policies: make([]*bandit.BlockedTsallisINF, len(cfg.DownloadCosts)),
		current:  make([]int, len(cfg.DownloadCosts)),
		prev:     make([]int, len(cfg.DownloadCosts)),
		state:    phaseSelect,
	}
	for i, u := range cfg.DownloadCosts {
		if u < 0 {
			return nil, fmt.Errorf("core: negative download cost u[%d]=%g", i, u)
		}
		p, err := bandit.NewBlockedTsallisINF(cfg.NumModels, u,
			numeric.SplitRNG(cfg.Seed, fmt.Sprintf("core-policy-%d", i)))
		if err != nil {
			return nil, fmt.Errorf("edge %d policy: %w", i, err)
		}
		c.policies[i] = p
		c.prev[i] = -1
	}
	tCfg := trading.DefaultPrimalDualConfig(cfg.InitialCap, cfg.Horizon)
	inv3 := 1.0 / math.Cbrt(float64(cfg.Horizon))
	tCfg.Gamma1 = 4 * inv3 * cfg.PriceScale / cfg.EmissionScale
	tCfg.Gamma2 = 4 * inv3 * cfg.EmissionScale / cfg.PriceScale
	tCfg.ZMax = 20 * cfg.EmissionScale
	if cfg.PredictivePricing {
		ratio := cfg.SellRatio
		if ratio == 0 {
			ratio = 0.9
		}
		trader, err := trading.NewPredictivePrimalDual(tCfg, market.NewARPredictor(), ratio)
		if err != nil {
			return nil, fmt.Errorf("predictive trader: %w", err)
		}
		c.trader = trader
		c.lambda = trader.Lambda
	} else {
		trader, err := trading.NewPrimalDual(tCfg)
		if err != nil {
			return nil, fmt.Errorf("trader: %w", err)
		}
		c.trader = trader
		c.lambda = trader.Lambda
	}
	return c, nil
}

// NumEdges returns the number of edges I.
func (c *Controller) NumEdges() int { return len(c.policies) }

// Slot returns the current 0-indexed slot.
func (c *Controller) Slot() int { return c.slot }

// SelectModels starts a slot and returns the model index for every edge.
// The returned slice is owned by the caller.
func (c *Controller) SelectModels() ([]int, error) {
	if c.state != phaseSelect {
		return nil, fmt.Errorf("core: SelectModels called out of order (state %d)", c.state)
	}
	out := make([]int, len(c.policies))
	for i, p := range c.policies {
		c.current[i] = p.SelectArm()
		out[i] = c.current[i]
	}
	c.state = phaseTrade
	return out, nil
}

// Downloads reports, after SelectModels, which edges must download a new
// model this slot (y_i^t = 1).
func (c *Controller) Downloads() ([]bool, error) {
	if c.state != phaseTrade && c.state != phaseComplete {
		return nil, fmt.Errorf("core: Downloads called before SelectModels")
	}
	out := make([]bool, len(c.policies))
	for i := range out {
		out[i] = c.current[i] != c.prev[i]
	}
	return out, nil
}

// DecideTrade returns (z^t, w^t) for the slot. The quote is recorded for the
// trader's history; Algorithm 2 does not use the current slot's prices.
func (c *Controller) DecideTrade(q trading.Quote) (trading.Decision, error) {
	if c.state != phaseTrade {
		return trading.Decision{}, fmt.Errorf("core: DecideTrade called out of order (state %d)", c.state)
	}
	c.trade = c.trader.Decide(c.slot, q)
	c.quote = q
	c.state = phaseComplete
	return c.trade, nil
}

// CompleteSlot feeds back the per-edge observed losses (the paper's
// L_{i,n}^t + v_{i,n}) and the slot's total emission, then advances to the
// next slot.
func (c *Controller) CompleteSlot(losses []float64, emission float64) error {
	if c.state != phaseComplete {
		return fmt.Errorf("core: CompleteSlot called out of order (state %d)", c.state)
	}
	if len(losses) != len(c.policies) {
		return fmt.Errorf("core: got %d losses for %d edges", len(losses), len(c.policies))
	}
	if emission < 0 {
		return fmt.Errorf("core: negative emission %g", emission)
	}
	for i, p := range c.policies {
		p.Update(losses[i])
		c.prev[i] = c.current[i]
	}
	c.trader.Observe(c.slot, emission, c.quote, c.trade)
	c.slot++
	c.state = phaseSelect
	return nil
}

// Switches returns total model downloads across edges so far.
func (c *Controller) Switches() int {
	total := 0
	for _, p := range c.policies {
		total += p.Switches()
	}
	return total
}

// Lambda returns Algorithm 2's dual multiplier (diagnostics).
func (c *Controller) Lambda() float64 { return c.lambda() }

// Selections returns per-edge per-model slot counts.
func (c *Controller) Selections() [][]int {
	out := make([][]int, len(c.policies))
	for i, p := range c.policies {
		out[i] = p.Selections()
	}
	return out
}
