package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/carbonedge/carbonedge/internal/trading"
)

func validConfig() Config {
	return Config{
		NumModels:     6,
		DownloadCosts: []float64{1.0, 1.5, 0.8},
		Horizon:       160,
		InitialCap:    3,
		EmissionScale: 0.02,
		PriceScale:    80,
		Seed:          1,
	}
}

func TestNewErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero models", func(c *Config) { c.NumModels = 0 }},
		{"no edges", func(c *Config) { c.DownloadCosts = nil }},
		{"zero horizon", func(c *Config) { c.Horizon = 0 }},
		{"negative cap", func(c *Config) { c.InitialCap = -1 }},
		{"negative scale", func(c *Config) { c.EmissionScale = -1 }},
		{"negative download cost", func(c *Config) { c.DownloadCosts = []float64{1, -1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := validConfig()
			tt.mutate(&cfg)
			if _, err := New(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestZeroScaleHintsDefault(t *testing.T) {
	cfg := validConfig()
	cfg.EmissionScale = 0
	cfg.PriceScale = 0
	if _, err := New(cfg); err != nil {
		t.Fatalf("zero hints should default, got %v", err)
	}
}

func TestProtocolHappyPath(t *testing.T) {
	c, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for slot := 0; slot < 160; slot++ {
		if c.Slot() != slot {
			t.Fatalf("Slot = %d, want %d", c.Slot(), slot)
		}
		arms, err := c.SelectModels()
		if err != nil {
			t.Fatal(err)
		}
		if len(arms) != 3 {
			t.Fatalf("got %d arms", len(arms))
		}
		for _, a := range arms {
			if a < 0 || a >= 6 {
				t.Fatalf("arm %d out of range", a)
			}
		}
		downloads, err := c.Downloads()
		if err != nil {
			t.Fatal(err)
		}
		if slot == 0 {
			for i, d := range downloads {
				if !d {
					t.Errorf("edge %d must download at slot 0", i)
				}
			}
		}
		q := trading.Quote{Buy: 60 + rng.Float64()*50}
		q.Sell = q.Buy * 0.9
		d, err := c.DecideTrade(q)
		if err != nil {
			t.Fatal(err)
		}
		if d.Buy < 0 || d.Sell < 0 {
			t.Fatalf("negative trade %+v", d)
		}
		losses := make([]float64, 3)
		for i, arm := range arms {
			losses[i] = 0.2 + 0.1*float64(arm) + rng.NormFloat64()*0.05
		}
		if err := c.CompleteSlot(losses, 0.02); err != nil {
			t.Fatal(err)
		}
	}
	if c.Lambda() < 0 {
		t.Error("negative dual multiplier")
	}
	if c.Switches() < 3 {
		t.Errorf("Switches = %d, want at least initial downloads", c.Switches())
	}
	sels := c.Selections()
	for i, row := range sels {
		total := 0
		for _, v := range row {
			total += v
		}
		if total != 160 {
			t.Errorf("edge %d selections sum to %d", i, total)
		}
	}
}

func TestProtocolOrderingEnforced(t *testing.T) {
	c, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := trading.Quote{Buy: 80, Sell: 72}
	// Trade before select.
	if _, err := c.DecideTrade(q); err == nil {
		t.Error("DecideTrade before SelectModels must fail")
	}
	// Complete before select.
	if err := c.CompleteSlot([]float64{0, 0, 0}, 0); err == nil {
		t.Error("CompleteSlot before SelectModels must fail")
	}
	if _, err := c.Downloads(); err == nil {
		t.Error("Downloads before SelectModels must fail")
	}
	if _, err := c.SelectModels(); err != nil {
		t.Fatal(err)
	}
	// Double select.
	if _, err := c.SelectModels(); err == nil {
		t.Error("double SelectModels must fail")
	}
	// Complete before trade.
	if err := c.CompleteSlot([]float64{0, 0, 0}, 0); err == nil {
		t.Error("CompleteSlot before DecideTrade must fail")
	}
	if _, err := c.DecideTrade(q); err != nil {
		t.Fatal(err)
	}
	// Wrong loss count.
	if err := c.CompleteSlot([]float64{0}, 0); err == nil {
		t.Error("wrong loss count must fail")
	}
	// Negative emission.
	if err := c.CompleteSlot([]float64{0, 0, 0}, -1); err == nil {
		t.Error("negative emission must fail")
	}
	if err := c.CompleteSlot([]float64{0, 0, 0}, 0.5); err != nil {
		t.Fatal(err)
	}
	if c.Slot() != 1 {
		t.Errorf("Slot = %d after one complete cycle", c.Slot())
	}
}

func TestControllerConvergesToGoodModels(t *testing.T) {
	cfg := validConfig()
	cfg.Horizon = 4000
	cfg.DownloadCosts = []float64{0.5}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	meanLoss := []float64{1.0, 0.8, 0.3, 0.9, 1.1, 0.7} // best = 2
	for slot := 0; slot < cfg.Horizon; slot++ {
		arms, err := c.SelectModels()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DecideTrade(trading.Quote{Buy: 80, Sell: 72}); err != nil {
			t.Fatal(err)
		}
		loss := meanLoss[arms[0]] + rng.NormFloat64()*0.1
		if err := c.CompleteSlot([]float64{loss}, 0.02); err != nil {
			t.Fatal(err)
		}
	}
	sel := c.Selections()[0]
	frac := float64(sel[2]) / float64(cfg.Horizon)
	if frac < 0.6 {
		t.Errorf("best-model fraction = %v (selections %v)", frac, sel)
	}
}

func TestControllerPredictivePricing(t *testing.T) {
	cfg := validConfig()
	cfg.PredictivePricing = true
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New with predictive pricing: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	for slot := 0; slot < 60; slot++ {
		arms, err := c.SelectModels()
		if err != nil {
			t.Fatal(err)
		}
		q := trading.Quote{Buy: 70 + rng.Float64()*30}
		q.Sell = q.Buy * 0.9
		d, err := c.DecideTrade(q)
		if err != nil {
			t.Fatal(err)
		}
		if d.Buy < 0 || d.Sell < 0 {
			t.Fatal("negative trade")
		}
		losses := make([]float64, len(arms))
		if err := c.CompleteSlot(losses, 0.02); err != nil {
			t.Fatal(err)
		}
	}
	if c.Lambda() < 0 {
		t.Error("negative lambda under predictive pricing")
	}
	// Bad sell ratio is rejected.
	cfg.SellRatio = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("expected error for sell ratio >= 1")
	}
}

func TestControllerDeterministic(t *testing.T) {
	run := func() float64 {
		c, err := New(validConfig())
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(4))
		total := 0.0
		for slot := 0; slot < 100; slot++ {
			arms, err := c.SelectModels()
			if err != nil {
				t.Fatal(err)
			}
			q := trading.Quote{Buy: 70 + rng.Float64()*30}
			q.Sell = q.Buy * 0.9
			d, err := c.DecideTrade(q)
			if err != nil {
				t.Fatal(err)
			}
			total += d.Cost(q)
			losses := make([]float64, len(arms))
			for i, a := range arms {
				losses[i] = float64(a)*0.1 + rng.Float64()*0.05
				total += losses[i]
			}
			if err := c.CompleteSlot(losses, 0.03); err != nil {
				t.Fatal(err)
			}
		}
		return total
	}
	a, b := run(), run()
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("non-deterministic: %v vs %v", a, b)
	}
}

// TestCompleteSlotServedMask drives the controller through the full protocol
// with a down edge: the served mask must be accepted, validated for length,
// and leave the protocol in a clean state for the next slot; the whole run
// must stay deterministic under a fixed mask pattern.
func TestCompleteSlotServedMask(t *testing.T) {
	run := func() []int {
		c, err := New(validConfig())
		if err != nil {
			t.Fatal(err)
		}
		var armsSeen []int
		for slot := 0; slot < 60; slot++ {
			arms, err := c.SelectModels()
			if err != nil {
				t.Fatal(err)
			}
			armsSeen = append(armsSeen, arms...)
			if _, err := c.DecideTrade(trading.Quote{Buy: 80, Sell: 72}); err != nil {
				t.Fatal(err)
			}
			losses := []float64{0.2, 0.3, 0.4}
			served := []bool{true, slot < 20, true} // edge 1 down from slot 20
			if !served[1] {
				losses[1] = 0 // down edges report the zero fallback
			}
			if err := c.CompleteSlotServed(losses, served, 0.02); err != nil {
				t.Fatal(err)
			}
		}
		return armsSeen
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("length mismatch %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic selections under served mask at %d", i)
		}
	}
}

func TestCompleteSlotServedValidation(t *testing.T) {
	c, err := New(validConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SelectModels(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DecideTrade(trading.Quote{Buy: 80, Sell: 72}); err != nil {
		t.Fatal(err)
	}
	if err := c.CompleteSlotServed([]float64{0.1, 0.1, 0.1}, []bool{true}, 0.01); err == nil {
		t.Error("expected error for short served mask")
	}
	// The protocol state survives the rejected call.
	if err := c.CompleteSlotServed([]float64{0.1, 0.1, 0.1}, nil, 0.01); err != nil {
		t.Fatalf("clean completion after rejected mask: %v", err)
	}
}
