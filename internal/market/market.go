// Package market simulates the carbon-allowance spot market of the paper's
// cap-and-trade program.
//
// The paper samples buying prices from EU Carbon Permit quotes between March
// 2023 and March 2024 (5.9–10.9 cent/kg) and sets the selling price to 90 %
// of the buying price. This package generates a mean-reverting random walk
// clamped to that band — Algorithm 2 makes no distributional assumption on
// prices, so any bounded fluctuating series within the paper's range
// exercises the same trade-offs — and keeps a ledger of every trade so the
// simulation can report spend, revenue, and the net allowance position.
package market

import (
	"fmt"
	"math"
	"math/rand"
)

// Paper-calibrated defaults (EUR cents per kg CO2).
const (
	// DefaultPriceMin and DefaultPriceMax bound the EU-permit-derived band.
	DefaultPriceMin = 5.9
	DefaultPriceMax = 10.9
	// DefaultSellRatio is the sell/buy price ratio from the paper.
	DefaultSellRatio = 0.9
)

// PriceConfig parameterizes the price process.
type PriceConfig struct {
	Min, Max float64
	// SellRatio = r^t / c^t.
	SellRatio float64
	// Reversion in (0, 1]: pull toward the band midpoint per slot.
	Reversion float64
	// Volatility is the per-slot Gaussian step, in price units.
	Volatility float64
	// ShockProb adds occasional jumps (set 0 to disable).
	ShockProb float64
	// ShockSize is the jump magnitude in price units.
	ShockSize float64
}

// DefaultPriceConfig returns the paper-calibrated configuration.
func DefaultPriceConfig() PriceConfig {
	return PriceConfig{
		Min:        DefaultPriceMin,
		Max:        DefaultPriceMax,
		SellRatio:  DefaultSellRatio,
		Reversion:  0.05,
		Volatility: 0.35,
	}
}

// Prices holds aligned buy/sell price series.
type Prices struct {
	Buy  []float64 // c^t
	Sell []float64 // r^t
}

// GeneratePrices produces a price series of the given horizon.
func GeneratePrices(cfg PriceConfig, horizon int, rng *rand.Rand) (*Prices, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("market: non-positive horizon %d", horizon)
	}
	if cfg.Max <= cfg.Min {
		return nil, fmt.Errorf("market: price band [%g, %g] is empty", cfg.Min, cfg.Max)
	}
	if cfg.SellRatio <= 0 || cfg.SellRatio >= 1 {
		return nil, fmt.Errorf("market: SellRatio must be in (0,1), got %g", cfg.SellRatio)
	}
	mid := (cfg.Min + cfg.Max) / 2
	p := &Prices{Buy: make([]float64, horizon), Sell: make([]float64, horizon)}
	c := cfg.Min + rng.Float64()*(cfg.Max-cfg.Min)
	for t := 0; t < horizon; t++ {
		c += cfg.Reversion*(mid-c) + cfg.Volatility*rng.NormFloat64()
		if cfg.ShockProb > 0 && rng.Float64() < cfg.ShockProb {
			sign := 1.0
			if rng.Float64() < 0.5 {
				sign = -1
			}
			c += sign * cfg.ShockSize
		}
		c = math.Min(cfg.Max, math.Max(cfg.Min, c))
		p.Buy[t] = c
		p.Sell[t] = c * cfg.SellRatio
	}
	return p, nil
}

// Horizon returns the series length.
func (p *Prices) Horizon() int { return len(p.Buy) }

// Ledger records allowance trades and the resulting position.
type Ledger struct {
	initialCap float64

	bought, sold   float64 // allowance quantities
	spend, revenue float64 // money
	trades         int
}

// NewLedger creates a ledger seeded with the initial allowance cap R.
func NewLedger(initialCap float64) (*Ledger, error) {
	if initialCap < 0 {
		return nil, fmt.Errorf("market: negative initial cap %g", initialCap)
	}
	return &Ledger{initialCap: initialCap}, nil
}

// Buy records purchasing qty allowances at unit price. Zero-quantity calls
// are ignored so callers can pass raw algorithm output.
func (l *Ledger) Buy(qty, price float64) error {
	if qty < 0 || price < 0 {
		return fmt.Errorf("market: invalid buy qty=%g price=%g", qty, price)
	}
	if qty == 0 {
		return nil
	}
	l.bought += qty
	l.spend += qty * price
	l.trades++
	return nil
}

// Sell records selling qty allowances at unit price.
func (l *Ledger) Sell(qty, price float64) error {
	if qty < 0 || price < 0 {
		return fmt.Errorf("market: invalid sell qty=%g price=%g", qty, price)
	}
	if qty == 0 {
		return nil
	}
	l.sold += qty
	l.revenue += qty * price
	l.trades++
	return nil
}

// Allowances returns the current allowance position R + bought - sold.
func (l *Ledger) Allowances() float64 { return l.initialCap + l.bought - l.sold }

// NetCost returns total spend minus revenue (the trading term of the paper's
// objective).
func (l *Ledger) NetCost() float64 { return l.spend - l.revenue }

// Bought returns total allowances purchased.
func (l *Ledger) Bought() float64 { return l.bought }

// Sold returns total allowances sold.
func (l *Ledger) Sold() float64 { return l.sold }

// Spend returns total money spent buying.
func (l *Ledger) Spend() float64 { return l.spend }

// Revenue returns total money earned selling.
func (l *Ledger) Revenue() float64 { return l.revenue }

// Trades returns the number of non-zero trades recorded.
func (l *Ledger) Trades() int { return l.trades }

// InitialCap returns the cap R the ledger was seeded with.
func (l *Ledger) InitialCap() float64 { return l.initialCap }
