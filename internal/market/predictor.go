package market

import "math"

// Predictor forecasts the next allowance buy price from the history it has
// observed. Implementations must be causal: Predict may only use prices
// passed to Observe.
type Predictor interface {
	// Observe feeds the realized buy price of the current slot.
	Observe(price float64)
	// Predict forecasts the next slot's buy price. Before any observation
	// it returns fallback.
	Predict(fallback float64) float64
}

// ARPredictor is an online AR(1) forecaster: it models
//
//	c_{t+1} - mu = phi * (c_t - mu) + noise
//
// with mu estimated as the running mean and phi by online least squares over
// lag-1 products. This realizes the paper's future-work suggestion of
// integrating price prediction into the trading strategy; see
// trading.NewPredictivePrimalDual for the consumer.
type ARPredictor struct {
	n    int
	mean float64

	// Online sums for phi = sum(x_t * x_{t+1}) / sum(x_t^2) over centered
	// values x = c - mean (mean updated as data arrives; the slight
	// nonstationarity is acceptable for forecasting).
	sumXX, sumXY float64
	prev         float64
	hasPrev      bool
	last         float64
}

var _ Predictor = (*ARPredictor)(nil)

// NewARPredictor creates an empty AR(1) forecaster.
func NewARPredictor() *ARPredictor { return &ARPredictor{} }

// Observe implements Predictor.
func (p *ARPredictor) Observe(price float64) {
	p.n++
	p.mean += (price - p.mean) / float64(p.n)
	x := price - p.mean
	if p.hasPrev {
		p.sumXX += p.prev * p.prev
		p.sumXY += p.prev * x
	}
	p.prev = x
	p.hasPrev = true
	p.last = price
}

// Phi returns the estimated AR(1) coefficient, clamped to [-1, 1].
func (p *ARPredictor) Phi() float64 {
	if p.sumXX <= 0 {
		return 0
	}
	phi := p.sumXY / p.sumXX
	return math.Max(-1, math.Min(1, phi))
}

// Predict implements Predictor.
func (p *ARPredictor) Predict(fallback float64) float64 {
	if p.n == 0 {
		return fallback
	}
	if p.n < 3 {
		return p.last
	}
	return p.mean + p.Phi()*(p.last-p.mean)
}

// EWMAPredictor is a simpler exponentially weighted moving-average
// forecaster, useful as a prediction-quality baseline in ablations.
type EWMAPredictor struct {
	alpha float64
	level float64
	seen  bool
}

var _ Predictor = (*EWMAPredictor)(nil)

// NewEWMAPredictor creates an EWMA forecaster with smoothing alpha in (0,1].
func NewEWMAPredictor(alpha float64) *EWMAPredictor {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &EWMAPredictor{alpha: alpha}
}

// Observe implements Predictor.
func (p *EWMAPredictor) Observe(price float64) {
	if !p.seen {
		p.level = price
		p.seen = true
		return
	}
	p.level += p.alpha * (price - p.level)
}

// Predict implements Predictor.
func (p *EWMAPredictor) Predict(fallback float64) float64 {
	if !p.seen {
		return fallback
	}
	return p.level
}
