package market

import (
	"math"
	"math/rand"
	"testing"
)

func TestARPredictorEmpty(t *testing.T) {
	p := NewARPredictor()
	if got := p.Predict(7.5); got != 7.5 {
		t.Errorf("empty predictor should return fallback, got %v", got)
	}
}

func TestARPredictorConstantSeries(t *testing.T) {
	p := NewARPredictor()
	for i := 0; i < 50; i++ {
		p.Observe(8)
	}
	if got := p.Predict(0); math.Abs(got-8) > 1e-9 {
		t.Errorf("constant series prediction = %v, want 8", got)
	}
}

func TestARPredictorLearnsPhi(t *testing.T) {
	// Strongly autocorrelated AR(1) with known phi.
	const truePhi = 0.9
	rng := rand.New(rand.NewSource(1))
	p := NewARPredictor()
	x := 0.0
	for i := 0; i < 5000; i++ {
		x = truePhi*x + rng.NormFloat64()
		p.Observe(8 + x)
	}
	if got := p.Phi(); math.Abs(got-truePhi) > 0.05 {
		t.Errorf("Phi = %v, want ~%v", got, truePhi)
	}
}

func TestARPredictorBeatsNaiveMeanOnARData(t *testing.T) {
	// One-step-ahead MSE of the AR predictor must beat predicting the
	// global mean when the series is autocorrelated.
	const phi = 0.85
	rng := rand.New(rand.NewSource(2))
	p := NewARPredictor()
	x, mean := 0.0, 8.0
	var mseAR, mseMean float64
	n := 0
	for i := 0; i < 4000; i++ {
		next := phi*x + rng.NormFloat64()*0.3
		price := mean + next
		if i > 100 {
			pred := p.Predict(mean)
			mseAR += (pred - price) * (pred - price)
			mseMean += (mean - price) * (mean - price)
			n++
		}
		p.Observe(price)
		x = next
	}
	if mseAR >= mseMean {
		t.Errorf("AR MSE %v not below mean MSE %v", mseAR/float64(n), mseMean/float64(n))
	}
}

func TestARPredictorPhiClamped(t *testing.T) {
	p := NewARPredictor()
	// A deterministic exploding series would give phi > 1 without clamping.
	v := 1.0
	for i := 0; i < 30; i++ {
		p.Observe(v)
		v *= 1.5
	}
	if phi := p.Phi(); phi > 1 || phi < -1 {
		t.Errorf("Phi = %v outside [-1, 1]", phi)
	}
}

func TestEWMAPredictor(t *testing.T) {
	p := NewEWMAPredictor(0.5)
	if got := p.Predict(3); got != 3 {
		t.Errorf("empty EWMA should return fallback, got %v", got)
	}
	p.Observe(10)
	if got := p.Predict(0); got != 10 {
		t.Errorf("first observation = %v, want 10", got)
	}
	p.Observe(20)
	if got := p.Predict(0); got != 15 {
		t.Errorf("after 10,20 with alpha 0.5: %v, want 15", got)
	}
}

func TestEWMAPredictorBadAlphaDefaults(t *testing.T) {
	for _, alpha := range []float64{-1, 0, 1.5} {
		p := NewEWMAPredictor(alpha)
		p.Observe(10)
		p.Observe(20)
		got := p.Predict(0)
		if got <= 10 || got >= 20 {
			t.Errorf("alpha %v: prediction %v not smoothed", alpha, got)
		}
	}
}
