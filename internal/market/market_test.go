package market

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGeneratePricesBand(t *testing.T) {
	cfg := DefaultPriceConfig()
	p, err := GeneratePrices(cfg, 160, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("GeneratePrices: %v", err)
	}
	if p.Horizon() != 160 {
		t.Fatalf("horizon = %d", p.Horizon())
	}
	for t2 := 0; t2 < p.Horizon(); t2++ {
		c, r := p.Buy[t2], p.Sell[t2]
		if c < cfg.Min || c > cfg.Max {
			t.Fatalf("buy price %v outside [%v, %v]", c, cfg.Min, cfg.Max)
		}
		if math.Abs(r-c*cfg.SellRatio) > 1e-12 {
			t.Fatalf("sell price %v != 0.9 * %v", r, c)
		}
		if r >= c {
			t.Fatal("sell price must stay below buy price")
		}
	}
}

func TestGeneratePricesVariability(t *testing.T) {
	p, err := GeneratePrices(DefaultPriceConfig(), 160, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := p.Buy[0], p.Buy[0]
	for _, c := range p.Buy {
		lo, hi = math.Min(lo, c), math.Max(hi, c)
	}
	if hi-lo < 1 {
		t.Errorf("price range too flat: [%v, %v]", lo, hi)
	}
}

func TestGeneratePricesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if _, err := GeneratePrices(DefaultPriceConfig(), 0, rng); err == nil {
		t.Error("expected error for zero horizon")
	}
	bad := DefaultPriceConfig()
	bad.Max = bad.Min
	if _, err := GeneratePrices(bad, 10, rng); err == nil {
		t.Error("expected error for empty band")
	}
	bad = DefaultPriceConfig()
	bad.SellRatio = 1.2
	if _, err := GeneratePrices(bad, 10, rng); err == nil {
		t.Error("expected error for sell ratio >= 1")
	}
}

func TestGeneratePricesWithShocks(t *testing.T) {
	cfg := DefaultPriceConfig()
	cfg.ShockProb = 0.3
	cfg.ShockSize = 3
	p, err := GeneratePrices(cfg, 200, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Buy {
		if c < cfg.Min || c > cfg.Max {
			t.Fatal("shocked price escaped the band")
		}
	}
}

func TestGeneratePricesDeterministic(t *testing.T) {
	p1, err := GeneratePrices(DefaultPriceConfig(), 50, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GeneratePrices(DefaultPriceConfig(), 50, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range p1.Buy {
		if p1.Buy[i] != p2.Buy[i] {
			t.Fatal("same seed produced different prices")
		}
	}
}

func TestLedgerAccounting(t *testing.T) {
	l, err := NewLedger(500)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	if err := l.Buy(10, 8); err != nil {
		t.Fatal(err)
	}
	if err := l.Sell(4, 7.2); err != nil {
		t.Fatal(err)
	}
	if got := l.Allowances(); got != 506 {
		t.Errorf("Allowances = %v, want 506", got)
	}
	if got := l.NetCost(); math.Abs(got-(80-28.8)) > 1e-12 {
		t.Errorf("NetCost = %v, want 51.2", got)
	}
	if l.Bought() != 10 || l.Sold() != 4 {
		t.Errorf("Bought/Sold = %v/%v", l.Bought(), l.Sold())
	}
	if l.Spend() != 80 || math.Abs(l.Revenue()-28.8) > 1e-12 {
		t.Errorf("Spend/Revenue = %v/%v", l.Spend(), l.Revenue())
	}
	if l.Trades() != 2 {
		t.Errorf("Trades = %d", l.Trades())
	}
	if l.InitialCap() != 500 {
		t.Errorf("InitialCap = %v", l.InitialCap())
	}
}

func TestLedgerZeroAndInvalidTrades(t *testing.T) {
	l, err := NewLedger(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Buy(0, 10); err != nil {
		t.Errorf("zero buy should be a no-op, got %v", err)
	}
	if err := l.Sell(0, 10); err != nil {
		t.Errorf("zero sell should be a no-op, got %v", err)
	}
	if l.Trades() != 0 {
		t.Errorf("zero trades should not count, got %d", l.Trades())
	}
	if err := l.Buy(-1, 10); err == nil {
		t.Error("expected error on negative buy qty")
	}
	if err := l.Sell(1, -1); err == nil {
		t.Error("expected error on negative sell price")
	}
	if _, err := NewLedger(-1); err == nil {
		t.Error("expected error on negative cap")
	}
}

// Property: ledger invariants hold under arbitrary trade sequences.
func TestLedgerInvariantsProperty(t *testing.T) {
	prop := func(ops []struct {
		Buy   bool
		Qty   float64
		Price float64
	}) bool {
		l, err := NewLedger(100)
		if err != nil {
			return false
		}
		wantAllow, wantCost := 100.0, 0.0
		for _, op := range ops {
			qty := math.Abs(op.Qty)
			price := math.Abs(op.Price)
			if math.IsNaN(qty) || qty > 1e9 || math.IsNaN(price) || price > 1e9 {
				continue
			}
			if op.Buy {
				if err := l.Buy(qty, price); err != nil {
					return false
				}
				wantAllow += qty
				wantCost += qty * price
			} else {
				if err := l.Sell(qty, price); err != nil {
					return false
				}
				wantAllow -= qty
				wantCost -= qty * price
			}
		}
		return closeRel(l.Allowances(), wantAllow) && closeRel(l.NetCost(), wantCost)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func closeRel(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}
