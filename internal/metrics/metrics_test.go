package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCostBreakdown(t *testing.T) {
	c := CostBreakdown{InferLoss: 1, Compute: 2, Switching: 3, Trading: -0.5}
	if got := c.Total(); got != 5.5 {
		t.Errorf("Total = %v", got)
	}
	c.Add(CostBreakdown{InferLoss: 1, Compute: 1, Switching: 1, Trading: 1})
	if got := c.Total(); got != 9.5 {
		t.Errorf("after Add, Total = %v", got)
	}
	s := c.String()
	for _, field := range []string{"total=", "loss=", "compute=", "switch=", "trade="} {
		if !strings.Contains(s, field) {
			t.Errorf("String missing %q: %s", field, s)
		}
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 2}, []float64{-4, 2})
	// Max abs = 4.
	want0 := []float64{0.25, 0.5}
	want1 := []float64{-1, 0.5}
	for i := range want0 {
		if out[0][i] != want0[i] {
			t.Errorf("out[0] = %v", out[0])
		}
		if out[1][i] != want1[i] {
			t.Errorf("out[1] = %v", out[1])
		}
	}
	// All-zero series pass through.
	z := Normalize([]float64{0, 0})
	if z[0][0] != 0 || z[0][1] != 0 {
		t.Errorf("zero normalize = %v", z[0])
	}
}

func TestNormalizeBounded(t *testing.T) {
	prop := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		out := Normalize(xs)
		for _, v := range out[0] {
			if math.Abs(v) > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestCumulative(t *testing.T) {
	out := Cumulative([]float64{1, -2, 3})
	want := []float64{1, -1, 2}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("Cumulative = %v", out)
		}
	}
	if len(Cumulative(nil)) != 0 {
		t.Error("Cumulative(nil) should be empty")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(50, 100); got != 0.5 {
		t.Errorf("Reduction = %v, want 0.5", got)
	}
	if got := Reduction(100, 100); got != 0 {
		t.Errorf("equal values = %v", got)
	}
	if got := Reduction(150, 100); got != -0.5 {
		t.Errorf("worse than baseline = %v", got)
	}
	if got := Reduction(1, 0); got != 0 {
		t.Errorf("zero baseline = %v", got)
	}
}

func TestCompareRuns(t *testing.T) {
	totals := map[string]float64{"Ours": 80, "Base": 100, "Bad": 160}
	out, err := CompareRuns("Ours", totals)
	if err != nil {
		t.Fatal(err)
	}
	if out["Ours"] != 0 {
		t.Errorf("self reduction = %v", out["Ours"])
	}
	if math.Abs(out["Base"]-0.2) > 1e-12 {
		t.Errorf("Base reduction = %v", out["Base"])
	}
	if math.Abs(out["Bad"]-0.5) > 1e-12 {
		t.Errorf("Bad reduction = %v", out["Bad"])
	}
	if _, err := CompareRuns("Missing", totals); err == nil {
		t.Error("expected error for missing reference")
	}
}

func TestMeanOf(t *testing.T) {
	out, err := MeanOf([]float64{1, 2}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 2 || out[1] != 3 {
		t.Errorf("MeanOf = %v", out)
	}
	if _, err := MeanOf(); err == nil {
		t.Error("expected error for no series")
	}
	if _, err := MeanOf([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged series")
	}
}
