// Package metrics provides the accounting helpers shared by the simulator
// and the benchmark harness: cost breakdowns, regret and fit series, and
// normalization utilities used to render the paper's normalized figures.
package metrics

import (
	"fmt"
	"math"
)

// CostBreakdown decomposes the paper's objective P into its terms.
type CostBreakdown struct {
	// InferLoss is sum_t sum_i x * E[l_n] (expected inference loss, using
	// the posterior test-pool mean exactly as the paper's Offline does).
	InferLoss float64
	// Compute is sum_t sum_i x * v_{i,n}.
	Compute float64
	// Switching is sum_t sum_i u_i * y_i^t (weighted).
	Switching float64
	// Trading is sum_t (z^t c^t - w^t r^t).
	Trading float64
}

// Total returns the full objective value.
func (c CostBreakdown) Total() float64 {
	return c.InferLoss + c.Compute + c.Switching + c.Trading
}

// Add accumulates another breakdown in place.
func (c *CostBreakdown) Add(o CostBreakdown) {
	c.InferLoss += o.InferLoss
	c.Compute += o.Compute
	c.Switching += o.Switching
	c.Trading += o.Trading
}

// String renders the breakdown compactly.
func (c CostBreakdown) String() string {
	return fmt.Sprintf("total=%.3f (loss=%.3f compute=%.3f switch=%.3f trade=%.3f)",
		c.Total(), c.InferLoss, c.Compute, c.Switching, c.Trading)
}

// Normalize divides every element of series by the largest absolute value
// across all the given series, returning normalized copies (the paper's
// "normalized cumulative total cost" style). A zero max leaves values as-is.
func Normalize(series ...[]float64) [][]float64 {
	maxAbs := 0.0
	for _, s := range series {
		for _, v := range s {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	out := make([][]float64, len(series))
	for i, s := range series {
		out[i] = make([]float64, len(s))
		for j, v := range s {
			if maxAbs > 0 {
				out[i][j] = v / maxAbs
			} else {
				out[i][j] = v
			}
		}
	}
	return out
}

// Cumulative returns the running sum of the series.
func Cumulative(series []float64) []float64 {
	out := make([]float64, len(series))
	sum := 0.0
	for i, v := range series {
		sum += v
		out[i] = sum
	}
	return out
}

// Reduction returns the paper's headline metric: the fractional cost
// reduction of ours relative to a baseline ((baseline - ours) / baseline).
// A zero baseline yields 0.
func Reduction(ours, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - ours) / baseline
}

// CompareRuns summarizes named total costs against a reference entry,
// returning reduction fractions keyed by name (the reference maps to 0).
// It errors when the reference is missing.
func CompareRuns(reference string, totals map[string]float64) (map[string]float64, error) {
	ref, ok := totals[reference]
	if !ok {
		return nil, fmt.Errorf("metrics: reference %q not in totals", reference)
	}
	out := make(map[string]float64, len(totals))
	for name, v := range totals {
		out[name] = Reduction(ref, v)
	}
	return out, nil
}

// MeanOf averages aligned series element-wise; all series must share a
// length.
func MeanOf(series ...[]float64) ([]float64, error) {
	if len(series) == 0 {
		return nil, fmt.Errorf("metrics: no series")
	}
	n := len(series[0])
	for i, s := range series {
		if len(s) != n {
			return nil, fmt.Errorf("metrics: series %d has length %d, want %d", i, len(s), n)
		}
	}
	out := make([]float64, n)
	for _, s := range series {
		for j, v := range s {
			out[j] += v
		}
	}
	for j := range out {
		out[j] /= float64(len(series))
	}
	return out, nil
}
