package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerate(t *testing.T) {
	topo, err := Generate(DefaultConfig(10), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(topo.Edges) != 10 {
		t.Fatalf("edges = %d", len(topo.Edges))
	}
	seen := make(map[string]bool)
	for _, e := range topo.Edges {
		if seen[e.Name] {
			t.Errorf("duplicate edge name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := Generate(Config{Edges: 0, BoxKm: 100}, rng); err == nil {
		t.Error("expected error for zero edges")
	}
	if _, err := Generate(Config{Edges: 5, BoxKm: 0}, rng); err == nil {
		t.Error("expected error for zero box")
	}
	if _, err := Generate(Config{Edges: 5, BoxKm: 100, DelayPerKm: -1}, rng); err == nil {
		t.Error("expected error for negative delay")
	}
}

func TestGreatCircleKnownDistances(t *testing.T) {
	syd := Site{Name: "sydney", Lat: -33.87, Lon: 151.21}
	mel := Site{Name: "melbourne", Lat: -37.81, Lon: 144.96}
	d := GreatCircleKm(syd, mel)
	// Sydney–Melbourne is about 714 km.
	if math.Abs(d-714) > 20 {
		t.Errorf("Sydney-Melbourne = %v km, want ~714", d)
	}
	if GreatCircleKm(syd, syd) != 0 {
		t.Error("distance to self must be zero")
	}
}

func TestGreatCircleSymmetry(t *testing.T) {
	prop := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Site{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Site{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		if math.IsNaN(a.Lat) || math.IsNaN(a.Lon) || math.IsNaN(b.Lat) || math.IsNaN(b.Lon) {
			return true
		}
		d1, d2 := GreatCircleKm(a, b), GreatCircleKm(b, a)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDelaysPositiveAndHeterogeneous(t *testing.T) {
	topo, err := Generate(DefaultConfig(30), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	delays := topo.Delays()
	if len(delays) != 30 {
		t.Fatalf("delays = %d", len(delays))
	}
	lo, hi := delays[0], delays[0]
	for i, d := range delays {
		if d < topo.BaseDelay {
			t.Fatalf("delay[%d] = %v below base %v", i, d, topo.BaseDelay)
		}
		lo, hi = math.Min(lo, d), math.Max(hi, d)
	}
	if hi/lo < 1.2 {
		t.Errorf("delays too uniform: [%v, %v] — heterogeneity drives per-edge block schedules", lo, hi)
	}
}

func TestDelayMatchesDistance(t *testing.T) {
	topo, err := Generate(DefaultConfig(5), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range topo.Edges {
		want := topo.BaseDelay + topo.DelayPerKm*GreatCircleKm(topo.Cloud, topo.Edges[i])
		if got := topo.Delay(i); math.Abs(got-want) > 1e-12 {
			t.Errorf("Delay(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t1, err := Generate(DefaultConfig(8), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Generate(DefaultConfig(8), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1.Edges {
		if t1.Edges[i] != t2.Edges[i] {
			t.Fatal("same seed produced different sites")
		}
	}
}

func TestEdgesWithinBox(t *testing.T) {
	cfg := DefaultConfig(50)
	topo, err := Generate(cfg, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range topo.Edges {
		// Box half-diagonal is BoxKm*sqrt(2); allow small slack for the
		// lat/lon projection.
		if d := GreatCircleKm(topo.Cloud, e); d > cfg.BoxKm*math.Sqrt2*1.05 {
			t.Errorf("edge %s is %v km away, outside the deployment box", e.Name, d)
		}
	}
}
