// Package topology models the cloud–edge deployment: one cloud site and a
// set of edge sites with geographic coordinates, from which the per-edge
// model-download delay u_i and per-byte transfer-energy coefficient are
// derived.
//
// The paper places sites at real Australian cellular base stations and
// estimates network delay from geographic distance. Offline we generate
// deterministic pseudo-geographic sites: edges scattered across a bounding
// box around a cloud location, with great-circle distances mapped linearly
// to download delays in a configurable range. Only the scalar u_i (and the
// transfer-energy coefficient) enter the paper's formulation, so this
// preserves the relevant structure: heterogeneous switching costs across
// edges.
package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Site is a geographic location.
type Site struct {
	Name     string
	Lat, Lon float64 // degrees
}

// Topology is one cloud plus a set of edges.
type Topology struct {
	Cloud Site
	Edges []Site

	// DelayPerKm converts distance to one-way network delay seconds per km
	// of great-circle distance (plus a base latency).
	DelayPerKm float64
	BaseDelay  float64
}

// Config parameterizes generation.
type Config struct {
	Edges int
	// BoxKm is the half-width of the deployment box around the cloud, km.
	BoxKm float64
	// DelayPerKm and BaseDelay map distance to seconds of download delay
	// per unit model size; see Delay.
	DelayPerKm float64
	BaseDelay  float64
}

// DefaultConfig mirrors the paper's setting: edges spread over a few hundred
// km around a Northern-Territory-like cloud site, delays on the order of
// hundreds of milliseconds to seconds for a model download.
func DefaultConfig(edges int) Config {
	return Config{
		Edges:      edges,
		BoxKm:      400,
		DelayPerKm: 0.004, // 4 ms per km
		BaseDelay:  0.05,  // 50 ms floor
	}
}

// Generate builds a pseudo-geographic topology. The cloud sits at a fixed
// reference location; edges are uniform in the surrounding box.
func Generate(cfg Config, rng *rand.Rand) (*Topology, error) {
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("topology: need at least one edge, got %d", cfg.Edges)
	}
	if cfg.BoxKm <= 0 {
		return nil, fmt.Errorf("topology: BoxKm must be positive, got %g", cfg.BoxKm)
	}
	if cfg.DelayPerKm < 0 || cfg.BaseDelay < 0 {
		return nil, fmt.Errorf("topology: negative delay parameters")
	}
	// Reference cloud location (Northern Territory, Australia).
	cloud := Site{Name: "cloud-nt", Lat: -12.46, Lon: 130.84}
	t := &Topology{
		Cloud:      cloud,
		DelayPerKm: cfg.DelayPerKm,
		BaseDelay:  cfg.BaseDelay,
	}
	const kmPerDegLat = 111.0
	kmPerDegLon := kmPerDegLat * math.Cos(cloud.Lat*math.Pi/180)
	t.Edges = make([]Site, cfg.Edges)
	for i := range t.Edges {
		dLatKm := (rng.Float64()*2 - 1) * cfg.BoxKm
		dLonKm := (rng.Float64()*2 - 1) * cfg.BoxKm
		t.Edges[i] = Site{
			Name: fmt.Sprintf("edge-%02d", i),
			Lat:  cloud.Lat + dLatKm/kmPerDegLat,
			Lon:  cloud.Lon + dLonKm/kmPerDegLon,
		}
	}
	return t, nil
}

// GreatCircleKm returns the great-circle distance between two sites in km
// (haversine formula, mean Earth radius).
func GreatCircleKm(a, b Site) float64 {
	const earthRadiusKm = 6371.0
	rad := math.Pi / 180
	lat1, lat2 := a.Lat*rad, b.Lat*rad
	dLat := (b.Lat - a.Lat) * rad
	dLon := (b.Lon - a.Lon) * rad
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Delay returns the per-edge model-download communication cost u_i in
// seconds: base latency plus distance-proportional transfer time.
func (t *Topology) Delay(edge int) float64 {
	d := GreatCircleKm(t.Cloud, t.Edges[edge])
	return t.BaseDelay + t.DelayPerKm*d
}

// Delays returns u_i for all edges.
func (t *Topology) Delays() []float64 {
	out := make([]float64, len(t.Edges))
	for i := range out {
		out[i] = t.Delay(i)
	}
	return out
}
