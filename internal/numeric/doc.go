// Package numeric provides the small numerical-optimization substrate the
// rest of the system is built on: scalar root finding (Brent's method and a
// safeguarded Newton iteration), probability-simplex utilities, weighted
// sampling, deterministic RNG splitting, and summary statistics.
//
// The paper's Algorithm 1 needs an O(log(1/eps) + N) solver for the Tsallis
// online-mirror-descent normalization constant, and Algorithm 2 needs a small
// convex solver for its proximal one-shot problem; both are served from here
// so that the algorithm packages stay free of numerical plumbing.
package numeric
