package numeric

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SimplexTol is the tolerance used when validating probability vectors.
const SimplexTol = 1e-6

// IsDistribution reports whether p is a valid probability vector: all
// entries non-negative (within tolerance) and summing to one.
func IsDistribution(p []float64) bool {
	sum := 0.0
	for _, v := range p {
		if v < -SimplexTol || math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
		sum += v
	}
	return math.Abs(sum-1) <= SimplexTol*float64(len(p)+1)
}

// Normalize scales the non-negative vector p in place so it sums to one.
// A zero vector becomes uniform.
func Normalize(p []float64) {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		u := 1 / float64(len(p))
		for i := range p {
			p[i] = u
		}
		return
	}
	for i := range p {
		p[i] /= sum
	}
}

// ProjectSimplex projects v onto the probability simplex in Euclidean norm
// using the sorting algorithm of Held, Wolfe and Crowder. The result is
// written into out (which may alias v) and returned.
func ProjectSimplex(v []float64, out []float64) []float64 {
	n := len(v)
	if out == nil {
		out = make([]float64, n)
	}
	sorted := make([]float64, n)
	copy(sorted, v)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))

	cum := 0.0
	rho, theta := -1, 0.0
	for i, u := range sorted {
		cum += u
		t := (cum - 1) / float64(i+1)
		if u-t > 0 {
			rho, theta = i, t
		}
	}
	if rho < 0 {
		// Degenerate input (all -inf style); fall back to uniform.
		u := 1 / float64(n)
		for i := range out {
			out[i] = u
		}
		return out
	}
	for i, u := range v {
		out[i] = math.Max(0, u-theta)
	}
	return out
}

// WeightedSampler draws indices proportionally to a weight vector using a
// precomputed prefix-sum table and binary search, matching the paper's
// O(N + log N) sampling step.
type WeightedSampler struct {
	prefix []float64
}

// NewWeightedSampler builds a sampler over the given non-negative weights.
// It returns an error when the weights are empty, contain negatives/NaNs, or
// sum to zero.
func NewWeightedSampler(weights []float64) (*WeightedSampler, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("numeric: empty weight vector")
	}
	prefix := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("numeric: invalid weight %g at index %d", w, i)
		}
		sum += w
		prefix[i] = sum
	}
	if sum <= 0 {
		return nil, fmt.Errorf("numeric: weights sum to zero")
	}
	return &WeightedSampler{prefix: prefix}, nil
}

// Sample draws one index using the provided RNG.
func (s *WeightedSampler) Sample(rng *rand.Rand) int {
	total := s.prefix[len(s.prefix)-1]
	u := rng.Float64() * total
	// First index whose prefix exceeds u.
	i := sort.Search(len(s.prefix), func(i int) bool { return s.prefix[i] > u })
	if i >= len(s.prefix) {
		i = len(s.prefix) - 1
	}
	return i
}

// SampleIndex is a convenience that builds a throwaway sampler; prefer the
// reusable WeightedSampler inside loops.
func SampleIndex(rng *rand.Rand, weights []float64) (int, error) {
	s, err := NewWeightedSampler(weights)
	if err != nil {
		return 0, err
	}
	return s.Sample(rng), nil
}
