package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTsallisWeightsUniformOnEqualLosses(t *testing.T) {
	c := []float64{5, 5, 5, 5}
	p, err := TsallisWeights(c, 0.3, nil)
	if err != nil {
		t.Fatalf("TsallisWeights: %v", err)
	}
	for i := range p {
		if math.Abs(p[i]-0.25) > 1e-9 {
			t.Errorf("p[%d] = %v, want 0.25", i, p[i])
		}
	}
}

func TestTsallisWeightsSingleArm(t *testing.T) {
	p, err := TsallisWeights([]float64{3.2}, 0.5, nil)
	if err != nil {
		t.Fatalf("TsallisWeights: %v", err)
	}
	if p[0] != 1 {
		t.Errorf("p = %v, want [1]", p)
	}
}

func TestTsallisWeightsOrdering(t *testing.T) {
	// Lower cumulative loss must receive higher probability.
	c := []float64{0, 1, 5, 20}
	p, err := TsallisWeights(c, 0.4, nil)
	if err != nil {
		t.Fatalf("TsallisWeights: %v", err)
	}
	for i := 1; i < len(p); i++ {
		if p[i] > p[i-1] {
			t.Errorf("p not monotone with loss: %v", p)
		}
	}
	if !IsDistribution(p) {
		t.Errorf("not a distribution: %v", p)
	}
}

func TestTsallisWeightsShiftInvariance(t *testing.T) {
	// Adding a constant to all losses must not change the distribution
	// (the normalizer absorbs the shift).
	c1 := []float64{1, 2, 3, 10}
	c2 := []float64{101, 102, 103, 110}
	p1, err := TsallisWeights(c1, 0.25, nil)
	if err != nil {
		t.Fatalf("TsallisWeights: %v", err)
	}
	p2, err := TsallisWeights(c2, 0.25, nil)
	if err != nil {
		t.Fatalf("TsallisWeights: %v", err)
	}
	for i := range p1 {
		if math.Abs(p1[i]-p2[i]) > 1e-9 {
			t.Errorf("shift changed weights: %v vs %v", p1, p2)
		}
	}
}

func TestTsallisWeightsErrors(t *testing.T) {
	if _, err := TsallisWeights(nil, 0.5, nil); err == nil {
		t.Error("expected error on empty vector")
	}
	if _, err := TsallisWeights([]float64{1, 2}, 0, nil); err == nil {
		t.Error("expected error on eta = 0")
	}
	if _, err := TsallisWeights([]float64{1, 2}, -1, nil); err == nil {
		t.Error("expected error on eta < 0")
	}
	if _, err := TsallisWeights([]float64{1, 2}, 0.5, make([]float64, 3)); err == nil {
		t.Error("expected error on mismatched out length")
	}
}

func TestTsallisWeightsReusesOut(t *testing.T) {
	out := make([]float64, 3)
	p, err := TsallisWeights([]float64{0, 1, 2}, 0.5, out)
	if err != nil {
		t.Fatalf("TsallisWeights: %v", err)
	}
	if &p[0] != &out[0] {
		t.Error("result did not reuse the provided slice")
	}
}

// Property: the returned vector is a distribution and (approximately)
// minimizes the OMD objective compared to random simplex perturbations.
func TestTsallisWeightsMinimizesObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	prop := func(seed uint32) bool {
		n := int(seed%5) + 2
		eta := 0.05 + float64(seed%97)/97.0
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.Float64() * 50
		}
		p, err := TsallisWeights(c, eta, nil)
		if err != nil || !IsDistribution(p) {
			return false
		}
		best := TsallisObjective(p, c, eta)
		// Compare against random alternatives projected to the simplex.
		for trial := 0; trial < 20; trial++ {
			q := make([]float64, n)
			for i := range q {
				q[i] = math.Abs(p[i] + rng.NormFloat64()*0.1)
			}
			Normalize(q)
			if TsallisObjective(q, c, eta) < best-1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTsallisWeightsExtremeEta(t *testing.T) {
	c := []float64{0, 10, 20}
	// Tiny eta: near-uniform exploration.
	p, err := TsallisWeights(c, 1e-6, nil)
	if err != nil {
		t.Fatalf("TsallisWeights tiny eta: %v", err)
	}
	for i := range p {
		if math.Abs(p[i]-1.0/3) > 0.01 {
			t.Errorf("tiny eta should be near uniform, got %v", p)
		}
	}
	// Large eta: concentrates on the best arm.
	p, err = TsallisWeights(c, 100, nil)
	if err != nil {
		t.Fatalf("TsallisWeights large eta: %v", err)
	}
	if p[0] < 0.99 {
		t.Errorf("large eta should concentrate on arm 0, got %v", p)
	}
}

func BenchmarkTsallisWeights(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const n = 6
	c := make([]float64, n)
	for i := range c {
		c[i] = rng.Float64() * 100
	}
	out := make([]float64, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TsallisWeights(c, 0.3, out); err != nil {
			b.Fatal(err)
		}
	}
}
