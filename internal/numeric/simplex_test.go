package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsDistribution(t *testing.T) {
	tests := []struct {
		name string
		p    []float64
		want bool
	}{
		{"uniform", []float64{0.25, 0.25, 0.25, 0.25}, true},
		{"point mass", []float64{0, 0, 1}, true},
		{"negative entry", []float64{-0.1, 0.6, 0.5}, false},
		{"sums over one", []float64{0.6, 0.6}, false},
		{"sums under one", []float64{0.2, 0.2}, false},
		{"nan entry", []float64{math.NaN(), 1}, false},
		{"inf entry", []float64{math.Inf(1), 0}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := IsDistribution(tt.p); got != tt.want {
				t.Errorf("IsDistribution(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestNormalize(t *testing.T) {
	p := []float64{2, 3, 5}
	Normalize(p)
	want := []float64{0.2, 0.3, 0.5}
	for i := range p {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Errorf("p[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	p := []float64{0, 0, 0, 0}
	Normalize(p)
	for i := range p {
		if math.Abs(p[i]-0.25) > 1e-12 {
			t.Errorf("p[%d] = %v, want 0.25", i, p[i])
		}
	}
}

func TestProjectSimplexAlreadyOnSimplex(t *testing.T) {
	v := []float64{0.3, 0.3, 0.4}
	got := ProjectSimplex(v, nil)
	for i := range v {
		if math.Abs(got[i]-v[i]) > 1e-9 {
			t.Errorf("projection changed a simplex point: %v -> %v", v, got)
		}
	}
}

func TestProjectSimplexKnownCases(t *testing.T) {
	// Projecting a large single coordinate yields a point mass.
	got := ProjectSimplex([]float64{10, 0, 0}, nil)
	want := []float64{1, 0, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("got %v, want %v", got, want)
		}
	}
}

// Property: the projection is a valid distribution and is no farther from
// the input than any vertex of the simplex.
func TestProjectSimplexProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	prop := func(n uint8) bool {
		dim := int(n%6) + 2
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64() * 3
		}
		p := ProjectSimplex(v, nil)
		if !IsDistribution(p) {
			return false
		}
		distP := 0.0
		for i := range v {
			d := v[i] - p[i]
			distP += d * d
		}
		// Compare against each vertex e_j.
		for j := 0; j < dim; j++ {
			distV := 0.0
			for i := range v {
				e := 0.0
				if i == j {
					e = 1
				}
				d := v[i] - e
				distV += d * d
			}
			if distP > distV+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWeightedSamplerErrors(t *testing.T) {
	if _, err := NewWeightedSampler(nil); err == nil {
		t.Error("expected error for empty weights")
	}
	if _, err := NewWeightedSampler([]float64{1, -1}); err == nil {
		t.Error("expected error for negative weight")
	}
	if _, err := NewWeightedSampler([]float64{0, 0}); err == nil {
		t.Error("expected error for zero-sum weights")
	}
	if _, err := NewWeightedSampler([]float64{math.NaN()}); err == nil {
		t.Error("expected error for NaN weight")
	}
}

func TestWeightedSamplerDistribution(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	s, err := NewWeightedSampler(weights)
	if err != nil {
		t.Fatalf("NewWeightedSampler: %v", err)
	}
	rng := rand.New(rand.NewSource(42))
	const draws = 200000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		counts[s.Sample(rng)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Errorf("empirical p[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestWeightedSamplerZeroWeightNeverDrawn(t *testing.T) {
	s, err := NewWeightedSampler([]float64{0, 1, 0})
	if err != nil {
		t.Fatalf("NewWeightedSampler: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if got := s.Sample(rng); got != 1 {
			t.Fatalf("drew zero-weight index %d", got)
		}
	}
}
