package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoBracket is returned when a root finder is called on an interval whose
// endpoints do not bracket a sign change.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// ErrNoConverge is returned when an iterative method exhausts its iteration
// budget without reaching the requested tolerance.
var ErrNoConverge = errors.New("numeric: iteration did not converge")

const (
	// defaultTol is the absolute tolerance used when the caller passes a
	// non-positive tolerance.
	defaultTol = 1e-12

	// maxRootIters bounds every scalar root-finding loop.
	maxRootIters = 200
)

// Brent finds a root of f in [a, b] using Brent's method (inverse quadratic
// interpolation with bisection safeguards). f(a) and f(b) must have opposite
// signs. The returned x satisfies |f(x)| small or |interval| <= tol.
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = defaultTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	// Ensure |f(b)| <= |f(a)| so b is the best current estimate.
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64

	for i := 0; i < maxRootIters; i++ {
		if fb == 0 || math.Abs(b-a) <= tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}

		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}

		fs := f(s)
		d = c
		c, fc = b, fb
		if (fa > 0) != (fs > 0) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return b, fmt.Errorf("%w: Brent after %d iterations", ErrNoConverge, maxRootIters)
}

// NewtonBisect finds a root of f in [lo, hi] combining Newton steps (using
// the derivative df) with bisection safeguards. It assumes f is monotone
// enough on [lo, hi] that f(lo) and f(hi) bracket the root; Newton steps that
// leave the bracket fall back to bisection. This is the workhorse for the
// Tsallis normalization constant, whose defining function is smooth and
// strictly monotone.
func NewtonBisect(f, df func(float64) float64, lo, hi, tol float64) (float64, error) {
	if tol <= 0 {
		tol = defaultTol
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, lo, flo, hi, fhi)
	}
	x := (lo + hi) / 2
	for i := 0; i < maxRootIters; i++ {
		fx := f(x)
		if fx == 0 || hi-lo <= tol {
			return x, nil
		}
		// Shrink the bracket.
		if (fx > 0) == (fhi > 0) {
			hi, fhi = x, fx
		} else {
			lo, flo = x, fx
		}
		// Try a Newton step from x; fall back to bisection when the step
		// leaves the bracket or the derivative is degenerate.
		dfx := df(x)
		next := x - fx/dfx
		if dfx == 0 || math.IsNaN(next) || next <= lo || next >= hi {
			next = (lo + hi) / 2
		}
		if math.Abs(next-x) <= tol {
			return next, nil
		}
		x = next
	}
	return x, fmt.Errorf("%w: NewtonBisect after %d iterations", ErrNoConverge, maxRootIters)
}

// ExpandBracket grows the interval [lo, hi] geometrically in the direction
// needed until f changes sign across it, up to maxExpand doublings. It
// returns the bracketing interval. The initial hi must be > lo.
func ExpandBracket(f func(float64) float64, lo, hi float64, maxExpand int) (float64, float64, error) {
	if hi <= lo {
		return 0, 0, fmt.Errorf("numeric: ExpandBracket needs hi > lo, got [%g, %g]", lo, hi)
	}
	flo, fhi := f(lo), f(hi)
	width := hi - lo
	for i := 0; i < maxExpand; i++ {
		if (flo > 0) != (fhi > 0) || flo == 0 || fhi == 0 {
			return lo, hi, nil
		}
		width *= 2
		if math.Abs(flo) < math.Abs(fhi) {
			lo -= width
			flo = f(lo)
		} else {
			hi += width
			fhi = f(hi)
		}
	}
	return lo, hi, fmt.Errorf("%w: no sign change after %d expansions", ErrNoBracket, maxExpand)
}
