package numeric

import (
	"math"
	"math/rand"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Positive is the rectifier [x]^+ = max(x, 0) used throughout the paper's
// dual updates.
func Positive(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// RunningMean tracks an online mean without storing samples.
type RunningMean struct {
	n   int
	sum float64
}

// Add incorporates one observation.
func (r *RunningMean) Add(x float64) {
	r.n++
	r.sum += x
}

// Mean returns the current mean, or 0 before any observation.
func (r *RunningMean) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Count returns the number of observations added so far.
func (r *RunningMean) Count() int { return r.n }

// SplitRNG derives a child RNG from a parent seed and a stream label so that
// independent subsystems (workload, market, bandit sampling, ...) consume
// decorrelated streams while the whole simulation stays reproducible from a
// single seed.
//
// SplitRNG is the repository's single blessed RNG constructor: the nodeterm
// analyzer (internal/analysis/nodeterm, run by cmd/carbonlint) forbids
// rand.New/rand.NewSource everywhere else, so every random draw in the
// system is reachable from (seed, label) and replays bit-for-bit.
//
// Derivation, in order:
//
//  1. an FNV-1a-style hash over the label's bytes. Audit note: the offset
//     basis 1469598103934665603 is the canonical 64-bit FNV basis
//     14695981039346656037 with its final digit dropped — nonstandard, but
//     the SplitMix64 finalizer below makes the choice of basis immaterial
//     for decorrelation, and the value is load-bearing for every pinned
//     stream, so it is documented rather than corrected;
//  2. XOR of that hash into the seed;
//  3. the SplitMix64 finalizer (Steele et al., "Fast Splittable
//     Pseudorandom Number Generators") for avalanche, so labels differing
//     in one bit yield uncorrelated child seeds;
//  4. rand.NewSource over the mixed value.
//
// The mapping from (seed, label) to the child stream is therefore part of
// the repository's compatibility surface — golden results and pinned test
// streams depend on it. TestSplitRNGStreamPinned locks the exact values;
// changing this derivation is a breaking change to every recorded result.
func SplitRNG(seed int64, stream string) *rand.Rand {
	h := uint64(seed)
	// FNV-1a over the stream label, mixed into the seed.
	const (
		offset = 1469598103934665603
		prime  = 1099511628211
	)
	hh := uint64(offset)
	for i := 0; i < len(stream); i++ {
		hh ^= uint64(stream[i])
		hh *= prime
	}
	h ^= hh
	// SplitMix64 finalizer for avalanche.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return rand.New(rand.NewSource(int64(h)))
}

// ApproxEqual reports whether a and b agree to within tol, measured
// relatively for values of magnitude above 1 and absolutely below. It is
// the repository's approved floating-point comparison: the floateq analyzer
// (run by cmd/carbonlint) forbids raw ==/!= between floats outside this
// package. NaN compares unequal to everything, including itself; tol must
// be non-negative.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		// Covers equal infinities and exact hits.
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		// Unequal when only one side is infinite (or the signs differ);
		// without this guard the infinite scale below would absorb any
		// finite difference.
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}

// Logistic is the standard logistic sigmoid.
func Logistic(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}

// CumSum returns the cumulative sums of xs as a new slice.
func CumSum(xs []float64) []float64 {
	out := make([]float64, len(xs))
	sum := 0.0
	for i, x := range xs {
		sum += x
		out[i] = sum
	}
	return out
}

// ArgMin returns the index of the smallest element (first on ties), or -1
// for an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// ArgMax returns the index of the largest element (first on ties), or -1 for
// an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
