package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		wantMean float64
		wantVar  float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{4}, 4, 0},
		{"pair", []float64{2, 4}, 3, 1},
		{"run", []float64{1, 2, 3, 4, 5}, 3, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.wantMean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.wantMean)
			}
			if got := Variance(tt.xs); math.Abs(got-tt.wantVar) > 1e-12 {
				t.Errorf("Variance = %v, want %v", got, tt.wantVar)
			}
		})
	}
}

func TestClampPositive(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp mid = %v", got)
	}
	if got := Positive(-2); got != 0 {
		t.Errorf("Positive(-2) = %v", got)
	}
	if got := Positive(2); got != 2 {
		t.Errorf("Positive(2) = %v", got)
	}
}

func TestRunningMean(t *testing.T) {
	var r RunningMean
	if r.Mean() != 0 || r.Count() != 0 {
		t.Fatal("zero value should be empty")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		r.Add(x)
	}
	if got := r.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := r.Count(); got != 4 {
		t.Errorf("Count = %v, want 4", got)
	}
}

func TestSplitRNGIndependentStreams(t *testing.T) {
	a := SplitRNG(1, "workload")
	b := SplitRNG(1, "market")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams collided %d times", same)
	}
}

func TestSplitRNGDeterministic(t *testing.T) {
	a := SplitRNG(99, "bandit")
	b := SplitRNG(99, "bandit")
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed+stream must reproduce")
		}
	}
}

func TestCumSum(t *testing.T) {
	got := CumSum([]float64{1, 2, 3})
	want := []float64{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CumSum[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := CumSum(nil); len(out) != 0 {
		t.Errorf("CumSum(nil) = %v", out)
	}
}

func TestArgMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := ArgMin(xs); got != 1 {
		t.Errorf("ArgMin = %d, want 1", got)
	}
	if got := ArgMax(xs); got != 4 {
		t.Errorf("ArgMax = %d, want 4", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Errorf("ArgMin(nil) = %d", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d", got)
	}
}

// Property: Clamp output always lies in [lo, hi] and is idempotent.
func TestClampProperty(t *testing.T) {
	prop := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		y := Clamp(x, lo, hi)
		return y >= lo && y <= hi && Clamp(y, lo, hi) == y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLogistic(t *testing.T) {
	if got := Logistic(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Logistic(0) = %v", got)
	}
	if got := Logistic(100); got < 0.999 {
		t.Errorf("Logistic(100) = %v", got)
	}
	if got := Logistic(-100); got > 0.001 {
		t.Errorf("Logistic(-100) = %v", got)
	}
}

// TestSplitRNGStreamPinned locks the exact (seed, label) -> stream mapping.
// SplitRNG is the repository's single blessed RNG constructor (the nodeterm
// analyzer forbids the alternatives), so this mapping is a compatibility
// surface: golden results across the simulator, figures, and deployment
// parity tests all replay through it. If this test fails, the derivation in
// SplitRNG changed and every recorded result is invalidated — that is a
// breaking change to announce, not a test to update in passing.
func TestSplitRNGStreamPinned(t *testing.T) {
	cases := []struct {
		seed   int64
		stream string
		u64    []uint64
		f64    []float64
	}{
		{1, "topology",
			[]uint64{0x708ef227b1016b9b, 0x225c35255c515a0c, 0x36f8ce3beed783fb, 0xf8d278ab2e2ece2e},
			[]float64{0.8793623632245827, 0.2684389526772389, 0.4294679443971142}},
		{42, "workload",
			[]uint64{0xd3f8ef0f7998da4, 0xf2027020d4c0b368, 0x27d4737e0c1b5df0, 0xaf2a5463610cbb01},
			[]float64{0.1035021473500816, 0.8906994018848359, 0.31117099432614287}},
		{42, "market",
			[]uint64{0x3b37e212292a9750, 0x3885db77b381cad6, 0x1e2126bfdc37b4bc, 0xb99c292fdca842a7},
			[]float64{0.46264291655309786, 0.4415850004652511, 0.2353866993730073}},
		{-7, "loss-Ours-0",
			[]uint64{0xea6f3e52242bf54f, 0x8fc4bd3096945983, 0x80681cb7f9edb4f8, 0xe818e64226615ed8},
			[]float64{0.8315198803978486, 0.12319149849386939, 0.00317725165574037}},
	}
	for _, c := range cases {
		rng := SplitRNG(c.seed, c.stream)
		for i, want := range c.u64 {
			if got := rng.Uint64(); got != want {
				t.Errorf("SplitRNG(%d, %q).Uint64()[%d] = %#x, want %#x", c.seed, c.stream, i, got, want)
			}
		}
		rng = SplitRNG(c.seed, c.stream)
		for i, want := range c.f64 {
			if got := rng.Float64(); got != want {
				t.Errorf("SplitRNG(%d, %q).Float64()[%d] = %v, want %v", c.seed, c.stream, i, got, want)
			}
		}
	}
}

func TestApproxEqual(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},
		{0, 0, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		// Relative scaling: 1e12 vs 1e12+1 differ by 1 but agree to 1e-9.
		{1e12, 1e12 + 1, 1e-9, true},
		// Absolute below magnitude 1: 1e-12 vs 2e-12 agree to 1e-9.
		{1e-12, 2e-12, 1e-9, true},
		{0.1, 0.2, 1e-3, false},
		{inf, inf, 1e-9, true},
		{inf, -inf, 1e-9, false},
		{inf, 1, 1e-9, false},
		{nan, nan, 1e-9, false},
		{nan, 1, 1e-9, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}
