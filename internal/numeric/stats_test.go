package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		wantMean float64
		wantVar  float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{4}, 4, 0},
		{"pair", []float64{2, 4}, 3, 1},
		{"run", []float64{1, 2, 3, 4, 5}, 3, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.wantMean) > 1e-12 {
				t.Errorf("Mean = %v, want %v", got, tt.wantMean)
			}
			if got := Variance(tt.xs); math.Abs(got-tt.wantVar) > 1e-12 {
				t.Errorf("Variance = %v, want %v", got, tt.wantVar)
			}
		})
	}
}

func TestClampPositive(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 3); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp mid = %v", got)
	}
	if got := Positive(-2); got != 0 {
		t.Errorf("Positive(-2) = %v", got)
	}
	if got := Positive(2); got != 2 {
		t.Errorf("Positive(2) = %v", got)
	}
}

func TestRunningMean(t *testing.T) {
	var r RunningMean
	if r.Mean() != 0 || r.Count() != 0 {
		t.Fatal("zero value should be empty")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		r.Add(x)
	}
	if got := r.Mean(); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := r.Count(); got != 4 {
		t.Errorf("Count = %v, want 4", got)
	}
}

func TestSplitRNGIndependentStreams(t *testing.T) {
	a := SplitRNG(1, "workload")
	b := SplitRNG(1, "market")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams collided %d times", same)
	}
}

func TestSplitRNGDeterministic(t *testing.T) {
	a := SplitRNG(99, "bandit")
	b := SplitRNG(99, "bandit")
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed+stream must reproduce")
		}
	}
}

func TestCumSum(t *testing.T) {
	got := CumSum([]float64{1, 2, 3})
	want := []float64{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CumSum[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := CumSum(nil); len(out) != 0 {
		t.Errorf("CumSum(nil) = %v", out)
	}
}

func TestArgMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := ArgMin(xs); got != 1 {
		t.Errorf("ArgMin = %d, want 1", got)
	}
	if got := ArgMax(xs); got != 4 {
		t.Errorf("ArgMax = %d, want 4", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Errorf("ArgMin(nil) = %d", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d", got)
	}
}

// Property: Clamp output always lies in [lo, hi] and is idempotent.
func TestClampProperty(t *testing.T) {
	prop := func(x, a, b float64) bool {
		if math.IsNaN(x) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		y := Clamp(x, lo, hi)
		return y >= lo && y <= hi && Clamp(y, lo, hi) == y
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestLogistic(t *testing.T) {
	if got := Logistic(0); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Logistic(0) = %v", got)
	}
	if got := Logistic(100); got < 0.999 {
		t.Errorf("Logistic(100) = %v", got)
	}
	if got := Logistic(-100); got > 0.001 {
		t.Errorf("Logistic(-100) = %v", got)
	}
}
