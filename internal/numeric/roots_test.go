package numeric

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBrentSimpleRoots(t *testing.T) {
	tests := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return 2*x - 4 }, 0, 10, 2},
		{"quadratic", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cubic", func(x float64) float64 { return x*x*x - 27 }, 0, 10, 3},
		{"cosine", math.Cos, 0, 3, math.Pi / 2},
		{"exp shifted", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
		{"root at left endpoint", func(x float64) float64 { return x }, 0, 1, 0},
		{"root at right endpoint", func(x float64) float64 { return x - 1 }, 0, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Brent(tt.f, tt.a, tt.b, 1e-12)
			if err != nil {
				t.Fatalf("Brent: %v", err)
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("root = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBrentNoBracket(t *testing.T) {
	_, err := Brent(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12)
	if !errors.Is(err, ErrNoBracket) {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBrentFlatRegion(t *testing.T) {
	// A function flat near the root still converges via bisection fallback.
	f := func(x float64) float64 {
		d := x - 0.7
		return d * d * d
	}
	got, err := Brent(f, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	if math.Abs(got-0.7) > 1e-4 {
		t.Errorf("root = %v, want 0.7", got)
	}
}

func TestNewtonBisect(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 8 }
	df := func(x float64) float64 { return 3 * x * x }
	got, err := NewtonBisect(f, df, 0, 10, 1e-13)
	if err != nil {
		t.Fatalf("NewtonBisect: %v", err)
	}
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("root = %v, want 2", got)
	}
}

func TestNewtonBisectBadDerivative(t *testing.T) {
	// A derivative that is wrong (always zero) must still converge via the
	// bisection safeguard.
	f := func(x float64) float64 { return x - 0.3 }
	df := func(float64) float64 { return 0 }
	got, err := NewtonBisect(f, df, 0, 1, 1e-12)
	if err != nil {
		t.Fatalf("NewtonBisect: %v", err)
	}
	if math.Abs(got-0.3) > 1e-9 {
		t.Errorf("root = %v, want 0.3", got)
	}
}

func TestNewtonBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x + 10 }
	df := func(float64) float64 { return 1 }
	if _, err := NewtonBisect(f, df, 0, 1, 1e-12); !errors.Is(err, ErrNoBracket) {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestExpandBracket(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	lo, hi, err := ExpandBracket(f, 0, 1, 20)
	if err != nil {
		t.Fatalf("ExpandBracket: %v", err)
	}
	if !(f(lo) <= 0 && f(hi) >= 0) {
		t.Errorf("[%v, %v] does not bracket the root", lo, hi)
	}
}

func TestExpandBracketFailure(t *testing.T) {
	f := func(float64) float64 { return 1 }
	if _, _, err := ExpandBracket(f, 0, 1, 5); err == nil {
		t.Fatal("expected error for sign-preserving function")
	}
}

// Property: Brent finds the root of any monotone cubic with a root placed
// uniformly inside the bracket.
func TestBrentPropertyMonotoneCubic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prop := func(rootSeed uint32) bool {
		root := float64(rootSeed%1000)/1000*8 - 4 // in [-4, 4]
		scale := 1 + rng.Float64()*10
		f := func(x float64) float64 {
			d := x - root
			return scale * (d + d*d*d)
		}
		got, err := Brent(f, -5, 5, 1e-12)
		return err == nil && math.Abs(got-root) < 1e-7
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
