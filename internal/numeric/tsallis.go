package numeric

import (
	"fmt"
	"math"
)

// TsallisWeights solves the online-mirror-descent step of the paper's
// Algorithm 1 (line 3):
//
//	p = argmin_{p in simplex} { <p, C> - sum_n (4*sqrt(p_n) - 2*p_n)/eta }
//
// which is mirror descent with the alpha=1/2 Tsallis entropy regularizer
// (Zimmert & Seldin's Tsallis-INF). The KKT stationarity condition gives
//
//	sqrt(p_n) = 2 / (eta * (C_n + 2/eta + lambda))
//
// for a normalizing multiplier lambda chosen so that sum_n p_n = 1. The sum
// is strictly decreasing in lambda, so the multiplier is found by a
// safeguarded Newton iteration on a provable bracket, matching the paper's
// O(log(1/eps) + N) complexity for this step.
//
// out may be nil or a reusable slice of len(C); the resulting probability
// vector is returned.
func TsallisWeights(c []float64, eta float64, out []float64) ([]float64, error) {
	n := len(c)
	if n == 0 {
		return nil, fmt.Errorf("numeric: TsallisWeights on empty loss vector")
	}
	if eta <= 0 || math.IsNaN(eta) || math.IsInf(eta, 0) {
		return nil, fmt.Errorf("numeric: TsallisWeights needs eta > 0, got %g", eta)
	}
	if out == nil {
		out = make([]float64, n)
	}
	if len(out) != n {
		return nil, fmt.Errorf("numeric: out length %d != %d", len(out), n)
	}
	if n == 1 {
		out[0] = 1
		return out, nil
	}

	// Shift losses so the smallest is zero: d_n = C_n - min C >= 0 and
	// parametrize t = lambda + min C + 2/eta > 0 so that
	// p_n(t) = 4 / (eta^2 (d_n + t)^2).
	minC := c[0]
	for _, v := range c[1:] {
		if v < minC {
			minC = v
		}
	}
	d := make([]float64, n)
	for i, v := range c {
		d[i] = v - minC
	}

	sum := func(t float64) float64 {
		s := 0.0
		for _, di := range d {
			x := eta * (di + t)
			s += 4 / (x * x)
		}
		return s
	}
	f := func(t float64) float64 { return sum(t) - 1 }
	df := func(t float64) float64 {
		s := 0.0
		for _, di := range d {
			x := di + t
			s += -8 / (eta * eta * x * x * x)
		}
		return s
	}

	// Bracket: at t = 2/eta the d=0 term alone contributes exactly 1, so
	// f(2/eta) >= 0; at t = 2*sqrt(n)/eta every term is at most 1/n, so
	// f <= 0 there up to rounding. Nudge the upper end outward until the
	// sign change is numerically visible (at most a few doublings, since f
	// decreases to -1).
	lo := 2 / eta
	hi := 2 * math.Sqrt(float64(n)) / eta
	for i := 0; f(hi) > 0 && i < 64; i++ {
		hi *= 1 + math.Ldexp(1, i-30) // 1+2^-30, 1+2^-29, ... then doubling
	}
	t, err := NewtonBisect(f, df, lo, hi, 1e-13*lo)
	if err != nil {
		return nil, fmt.Errorf("tsallis normalization: %w", err)
	}

	total := 0.0
	for i, di := range d {
		x := eta * (di + t)
		out[i] = 4 / (x * x)
		total += out[i]
	}
	// The root is accurate to ~1e-13 relative; renormalize the residual so
	// downstream samplers see an exact distribution.
	for i := range out {
		out[i] /= total
	}
	return out, nil
}

// TsallisObjective evaluates the OMD objective <p, C> - sum(4*sqrt(p)-2p)/eta
// for a candidate distribution p. Exposed for verification tests that check
// TsallisWeights really minimizes the objective.
func TsallisObjective(p, c []float64, eta float64) float64 {
	obj := 0.0
	for i, pi := range p {
		obj += pi*c[i] - (4*math.Sqrt(pi)-2*pi)/eta
	}
	return obj
}
