package engine

import (
	"encoding/json"
	"fmt"
	"io"
)

// resultJSON is the stable serialized form of a Result.
type resultJSON struct {
	Name            string    `json:"name"`
	TotalCost       float64   `json:"totalCost"`
	InferLoss       float64   `json:"inferLoss"`
	Compute         float64   `json:"compute"`
	Switching       float64   `json:"switching"`
	Trading         float64   `json:"trading"`
	Fit             float64   `json:"fit"`
	Switches        int       `json:"switches"`
	OverallAccuracy float64   `json:"overallAccuracy"`
	AvgBuyPrice     float64   `json:"avgBuyPrice"`
	CumTotal        []float64 `json:"cumTotal"`
	Emissions       []float64 `json:"emissions"`
	NetBuy          []float64 `json:"netBuy"`
	WorkloadTotal   []int     `json:"workloadTotal"`
	Accuracy        []float64 `json:"accuracy"`
	Selections      [][]int   `json:"selections"`
	Downtime        []int     `json:"downtime,omitempty"`
	DroppedSlots    int       `json:"droppedSlots,omitempty"`
	Retries         []int     `json:"retries,omitempty"`
	DownErrors      []string  `json:"downErrors,omitempty"`
}

// WriteJSON serializes the result (indented) for downstream analysis.
func (r *Result) WriteJSON(w io.Writer) error {
	out := resultJSON{
		Name:            r.Name,
		TotalCost:       r.Cost.Total(),
		InferLoss:       r.Cost.InferLoss,
		Compute:         r.Cost.Compute,
		Switching:       r.Cost.Switching,
		Trading:         r.Cost.Trading,
		Fit:             r.Fit,
		Switches:        r.Switches,
		OverallAccuracy: r.OverallAccuracy,
		AvgBuyPrice:     r.AvgBuyPrice,
		CumTotal:        r.CumTotal,
		Emissions:       r.Emissions,
		NetBuy:          r.NetBuySeries(),
		WorkloadTotal:   r.WorkloadTotal,
		Accuracy:        r.Accuracy,
		Selections:      r.Selections,
	}
	// Fault counters are emitted only when the run saw faults, keeping
	// historical result files byte-identical for fault-free runs.
	faulted := r.DroppedSlots > 0
	for _, n := range r.Retries {
		faulted = faulted || n > 0
	}
	if faulted {
		out.Downtime = r.Downtime
		out.DroppedSlots = r.DroppedSlots
		out.Retries = r.Retries
		out.DownErrors = r.DownErrors
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("engine: encode result: %w", err)
	}
	return nil
}
