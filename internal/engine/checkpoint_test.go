package engine

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestSlotDeduperWatermark pins the admission discipline: exactly the
// watermark slot is admitted (advancing it), replays and future slots are
// rejected, and Seen tracks the folded prefix.
func TestSlotDeduperWatermark(t *testing.T) {
	var d SlotDeduper
	if d.Next() != 0 {
		t.Fatalf("fresh deduper watermark = %d, want 0", d.Next())
	}
	if d.Admit(1) {
		t.Error("admitted future slot 1 at watermark 0")
	}
	if !d.Admit(0) {
		t.Error("rejected watermark slot 0")
	}
	if d.Admit(0) {
		t.Error("admitted slot 0 twice")
	}
	if !d.Seen(0) || d.Seen(1) {
		t.Errorf("Seen(0)=%v Seen(1)=%v, want true false", d.Seen(0), d.Seen(1))
	}
	for s := 1; s <= 3; s++ {
		if !d.Admit(s) {
			t.Fatalf("rejected watermark slot %d", s)
		}
	}
	if d.Next() != 4 {
		t.Errorf("watermark = %d after folding 4 slots, want 4", d.Next())
	}
	// A replayed prefix after a resume: everything already folded is seen
	// and nothing is re-admitted.
	for s := 0; s < 4; s++ {
		if !d.Seen(s) {
			t.Errorf("Seen(%d) = false for a folded slot", s)
		}
		if d.Admit(s) {
			t.Errorf("re-admitted folded slot %d", s)
		}
	}
}

// TestShardCheckpointValidate covers the checkpoint's consistency checks and
// its JSON round trip (it is a wire unit of the regional tier).
func TestShardCheckpointValidate(t *testing.T) {
	valid := ShardCheckpoint{
		Start:       2,
		Count:       3,
		DoneSlots:   5,
		FleetSeed:   77,
		Down:        []bool{false, true, false},
		DownErrors:  []string{"", "edge lost", ""},
		JitterDraws: []int{0, 4, 1},
	}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid checkpoint rejected: %v", err)
	}
	b, err := json.Marshal(&valid)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardCheckpoint
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(valid, back) {
		t.Errorf("checkpoint JSON round trip diverged:\n sent: %+v\n got:  %+v", valid, back)
	}

	for name, mutate := range map[string]func(*ShardCheckpoint){
		"negative start":       func(c *ShardCheckpoint) { c.Start = -1 },
		"empty range":          func(c *ShardCheckpoint) { c.Count = 0 },
		"negative watermark":   func(c *ShardCheckpoint) { c.DoneSlots = -1 },
		"down length":          func(c *ShardCheckpoint) { c.Down = []bool{true} },
		"down errors length":   func(c *ShardCheckpoint) { c.DownErrors = []string{"x"} },
		"jitter length":        func(c *ShardCheckpoint) { c.JitterDraws = []int{1, 2} },
		"negative jitter draw": func(c *ShardCheckpoint) { c.JitterDraws = []int{0, -1, 2} },
	} {
		ck := valid
		mutate(&ck)
		if err := ck.Validate(); err == nil {
			t.Errorf("%s: expected a validation error", name)
		}
	}
}
