package engine

import (
	"fmt"
	"sync"
)

// ShardStepper steps one contiguous edge range for one slot and returns its
// SlotDelta. The engine's root loop (RunSharded) fans each slot out to its
// shards, merges the deltas in canonical shard order, and folds the merged
// delta in edge-index order — so any ShardStepper that reports faithful
// per-edge deltas (an in-process Shard, or a regional coordinator across a
// TCP hop) yields a bit-identical Result.
type ShardStepper interface {
	// Range returns the shard's contiguous edge range as (start, count) in
	// global edge indices.
	Range() (start, count int)
	// Step serves slot `slot` on every edge of the shard. arms and downloads
	// are shard-local slices: index j corresponds to global edge start+j.
	// The returned delta is valid until the next Step call.
	//
	// Under FailFast an edge failure aborts the step with the shard's
	// lowest-local-edge-index error (already wrapped with the global edge id
	// and slot). Under Degrade edge failures are absorbed into the delta
	// (WentDown/DownError) and Step only fails on misuse or a shard-level
	// fault (e.g. a lost regional link), which aborts the run regardless of
	// policy.
	Step(slot int, arms []int, downloads []bool) (SlotDelta, error)
}

// ShardConfig parameterizes an in-process Shard.
type ShardConfig struct {
	// Start is the global index of the shard's first edge.
	Start int
	// Workers bounds how many of the shard's edges step concurrently.
	// 0 or 1 steps serially; the delta is identical for every value.
	Workers int
	// Policy selects the failure reaction (see ShardStepper.Step).
	Policy ErrorPolicy
}

// Shard owns a contiguous range of edges and steps them with its own worker
// pool. It carries the per-edge down state across slots, so Degrade-mode
// fault handling is shard-local: a failed edge contributes the zeroed
// fallback delta (keeping the retries it burned) in the slot it goes down
// and empty deltas afterwards, exactly as the serial engine's accounting
// defines.
type Shard struct {
	start    int
	edges    []EdgeStepper
	workers  int
	policy   ErrorPolicy
	down     []bool
	obs      []Observation
	errs     []error
	downErrs []error
	buf      []EdgeDelta
}

var _ ShardStepper = (*Shard)(nil)

// NewShard builds a shard over the given steppers, which serve global edges
// cfg.Start through cfg.Start+len(edges)-1.
func NewShard(cfg ShardConfig, edges []EdgeStepper) (*Shard, error) {
	if cfg.Start < 0 {
		return nil, fmt.Errorf("engine: negative shard start %d", cfg.Start)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("engine: shard with no edges")
	}
	for j, e := range edges {
		if e == nil {
			return nil, fmt.Errorf("engine: nil stepper for edge %d", cfg.Start+j)
		}
	}
	if cfg.Policy != FailFast && cfg.Policy != Degrade {
		return nil, fmt.Errorf("engine: unknown error policy %d", cfg.Policy)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(edges) {
		workers = len(edges)
	}
	return &Shard{
		start:    cfg.Start,
		edges:    edges,
		workers:  workers,
		policy:   cfg.Policy,
		down:     make([]bool, len(edges)),
		obs:      make([]Observation, len(edges)),
		errs:     make([]error, len(edges)),
		downErrs: make([]error, len(edges)),
		buf:      make([]EdgeDelta, 0, len(edges)),
	}, nil
}

// Range implements ShardStepper.
func (s *Shard) Range() (start, count int) { return s.start, len(s.edges) }

// RestoreDown restores the per-edge down state of a checkpointed shard (a
// ShardCheckpoint's Down slice) after a mid-run handoff. Restored edges keep
// contributing the down fallback (Served=false, zero terms) without
// re-announcing WentDown — the root already folded their transition slot, so
// re-emitting it would double-fire down callbacks and corrupt DownErrors.
func (s *Shard) RestoreDown(down []bool) error {
	if down == nil {
		return nil
	}
	if len(down) != len(s.edges) {
		return fmt.Errorf("engine: shard [%d,%d): restoring %d down flags for %d edges",
			s.start, s.start+len(s.edges), len(down), len(s.edges))
	}
	copy(s.down, down)
	return nil
}

// Step implements ShardStepper.
//
//lint:hotroot stepped once per slot per shard; the 100k-edge budget allows no allocation here
func (s *Shard) Step(slot int, arms []int, downloads []bool) (SlotDelta, error) {
	if len(arms) != len(s.edges) || len(downloads) != len(s.edges) {
		return SlotDelta{}, fmt.Errorf("engine: shard [%d,%d): %d arms / %d downloads for %d edges",
			s.start, s.start+len(s.edges), len(arms), len(downloads), len(s.edges))
	}

	if s.workers == 1 {
		for j, e := range s.edges {
			if s.down[j] {
				s.obs[j], s.errs[j] = Observation{}, nil
				continue
			}
			s.obs[j], s.errs[j] = safeStep(e, slot, arms[j], downloads[j])
		}
	} else {
		var wg sync.WaitGroup
		jobs := make(chan int) //lint:allow hotalloc worker fan-out setup runs only when workers>1; the 100k-edge single-core config steps alloc-free
		for w := 0; w < s.workers; w++ {
			wg.Add(1)
			go func() { //lint:allow hotalloc one closure per worker per step, amortized over the shard's edges

				defer wg.Done()
				for j := range jobs {
					s.obs[j], s.errs[j] = safeStep(s.edges[j], slot, arms[j], downloads[j])
				}
			}()
		}
		for j := range s.edges {
			if s.down[j] {
				s.obs[j], s.errs[j] = Observation{}, nil
				continue
			}
			jobs <- j
		}
		close(jobs)
		wg.Wait()
	}

	// Failures resolve serially in local edge order, so the outcome (the
	// aborting error under FailFast, the down-marking under Degrade) is
	// deterministic regardless of step completion order — and, because
	// shards cover ascending contiguous ranges, scanning shard errors in
	// canonical shard order at the root yields the slot's globally
	// lowest-indexed failure, the serial FailFast outcome.
	for j, err := range s.errs {
		if err == nil {
			continue
		}
		if s.policy == FailFast {
			return SlotDelta{}, fmt.Errorf("engine: edge %d slot %d: %w", s.start+j, slot, err)
		}
		// Degrade: keep the retries the stepper burned, zero the rest of the
		// failed observation, and mark the edge down for the rest of the run.
		s.down[j] = true
		s.obs[j] = Observation{Retries: s.obs[j].Retries}
		s.errs[j] = nil
		s.downErrs[j] = err
	}

	d := SlotDelta{Start: s.start, Edges: s.buf[:0]}
	for j := range s.edges {
		o := s.obs[j]
		ed := EdgeDelta{
			Loss:        o.Loss,
			InferLoss:   o.InferLoss,
			Compute:     o.Compute,
			Correct:     o.Correct,
			Samples:     o.Samples,
			InferKWh:    o.InferKWh,
			TransferKWh: o.TransferKWh,
			Retries:     o.Retries,
			Served:      !s.down[j],
		}
		if s.downErrs[j] != nil {
			ed.WentDown = true
			ed.DownError = s.downErrs[j].Error()
			ed.downErr = s.downErrs[j]
			s.downErrs[j] = nil
		}
		d.Edges = append(d.Edges, ed) //lint:allow hotalloc appends into the recycled slot buffer; capacity is grown once and reused
	}
	s.buf = d.Edges[:0]
	return d, nil
}

// stepShard runs one shard step, converting a panic into an error so a
// misbehaving ShardStepper implementation cannot wedge the root's per-slot
// barrier (in-process Shards already recover stepper panics via safeStep).
func stepShard(sh ShardStepper, slot int, arms []int, downloads []bool) (d SlotDelta, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: shard panic: %v", r)
		}
	}()
	return sh.Step(slot, arms, downloads)
}
