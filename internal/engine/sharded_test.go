package engine

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"github.com/carbonedge/carbonedge/internal/numeric"
)

// randomPartition draws a random contiguous cover of [0, n): between 1 and n
// shards, each of random positive size.
func randomPartition(rng *rand.Rand, n int) []Range {
	var out []Range
	for start := 0; start < n; {
		count := 1 + rng.Intn(n-start)
		out = append(out, Range{Start: start, Count: count})
		start += count
	}
	return out
}

// propSteppers builds one fleet instance for a property-test run: plain fake
// steppers plus optional injected faults (ordinary failures, panics, retry
// reporters). Every call returns freshly-seeded steppers so the serial and
// sharded runs observe identical streams.
func propSteppers(edges int, seed int64, failAt, panicAt map[int]int, retries map[int]int) []EdgeStepper {
	out := make([]EdgeStepper, edges)
	for i := range out {
		f := newFakeStepper(i, seed)
		if at, ok := failAt[i]; ok {
			f.failAt = at
		}
		var s EdgeStepper = f
		if at, ok := panicAt[i]; ok {
			s = &panicStepper{fakeStepper: f, panicAt: at}
		}
		if n, ok := retries[i]; ok {
			s = &retryStepper{fakeStepper: f, retriesPerSlot: n}
		}
		out[i] = s
	}
	return out
}

// resultBytes serializes a Result the way every committed results/*.txt is
// produced, so "byte-identical" means what the golden files mean.
func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

type downEvent struct {
	edge, slot int
	msg        string
}

// TestShardedMatchesSerialProperty is the reduction's bit-identity pin:
// random contiguous shard partitions with random per-shard worker counts
// produce a byte-identical serialized Result — and identical OnEdgeDown
// event sequences — versus the retained serial oracle, both fault-free and
// under Degrade with injected failures, panics, and retry reporters.
func TestShardedMatchesSerialProperty(t *testing.T) {
	const edges, horizon = 13, 40
	scenarios := []struct {
		name    string
		policy  ErrorPolicy
		failAt  map[int]int
		panicAt map[int]int
		retries map[int]int
	}{
		{name: "fault-free", policy: FailFast},
		{name: "fault-free-degrade", policy: Degrade},
		{
			name:    "degrade-faulted",
			policy:  Degrade,
			failAt:  map[int]int{2: 7, 9: 3},
			panicAt: map[int]int{5: 11},
			retries: map[int]int{4: 2},
		},
		{
			name:   "degrade-two-in-one-slot",
			policy: Degrade,
			failAt: map[int]int{1: 6, 12: 6},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			runOnce := func(shards []Range, workers func(k int) int) (*Result, []downEvent, error) {
				cfg := testConfig(edges, horizon)
				cfg.Policy = sc.policy
				var events []downEvent
				cfg.OnEdgeDown = func(edge, slot int, err error) {
					events = append(events, downEvent{edge, slot, err.Error()})
				}
				ctrl := testController(t, edges, 4, horizon)
				steppers := propSteppers(edges, 17, sc.failAt, sc.panicAt, sc.retries)
				if shards == nil {
					res, err := runSerial(cfg, ctrl, steppers)
					return res, events, err
				}
				built := make([]ShardStepper, 0, len(shards))
				for k, r := range shards {
					sh, err := NewShard(ShardConfig{Start: r.Start, Workers: workers(k), Policy: sc.policy},
						steppers[r.Start:r.Start+r.Count])
					if err != nil {
						t.Fatal(err)
					}
					built = append(built, sh)
				}
				res, err := RunSharded(cfg, ctrl, built)
				return res, events, err
			}

			serialRes, serialEvents, err := runOnce(nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			serialJSON := resultBytes(t, serialRes)

			rng := numeric.SplitRNG(99, "sharded-property-"+sc.name)
			for trial := 0; trial < 12; trial++ {
				part := randomPartition(rng, edges)
				workers := func(int) int { return 1 + rng.Intn(4) }
				got, gotEvents, err := runOnce(part, workers)
				if err != nil {
					t.Fatalf("trial %d partition %v: %v", trial, part, err)
				}
				if !reflect.DeepEqual(serialRes, got) {
					t.Fatalf("trial %d partition %v: Result diverged from serial", trial, part)
				}
				if !bytes.Equal(serialJSON, resultBytes(t, got)) {
					t.Fatalf("trial %d partition %v: serialized Result not byte-identical", trial, part)
				}
				if !reflect.DeepEqual(serialEvents, gotEvents) {
					t.Fatalf("trial %d partition %v: OnEdgeDown events %v, serial %v",
						trial, part, gotEvents, serialEvents)
				}
			}
		})
	}
}

// TestShardedFailFastMatchesSerialError pins the FailFast path: for every
// decomposition the run aborts with the serial loop's exact error — the
// slot's lowest-indexed failure — even when a later shard fails too.
func TestShardedFailFastMatchesSerialError(t *testing.T) {
	const edges, horizon = 9, 20
	failAt := map[int]int{3: 5, 7: 5}
	run := func(shards int, workers int) error {
		cfg := testConfig(edges, horizon)
		cfg.Shards = shards
		cfg.Workers = workers
		_, err := Run(cfg, testController(t, edges, 4, horizon), propSteppers(edges, 23, failAt, nil, nil))
		return err
	}
	serialErr := func() error {
		cfg := testConfig(edges, horizon)
		_, err := runSerial(cfg, testController(t, edges, 4, horizon), propSteppers(edges, 23, failAt, nil, nil))
		return err
	}()
	if serialErr == nil || !strings.Contains(serialErr.Error(), "edge 3 slot 5") {
		t.Fatalf("serial oracle error = %v, want edge 3 slot 5", serialErr)
	}
	for _, shards := range []int{1, 2, 3, edges, edges + 4} {
		for _, workers := range []int{1, 3} {
			err := run(shards, workers)
			if err == nil || err.Error() != serialErr.Error() {
				t.Errorf("shards=%d workers=%d: err = %v, want %v", shards, workers, err, serialErr)
			}
		}
	}
}

// TestRunShardCountsDeterministic drives the public Run API across shard
// counts (the carbonsim -shards path) and pins DeepEqual identity.
func TestRunShardCountsDeterministic(t *testing.T) {
	const edges, horizon = 8, 30
	runWith := func(shards, workers int) *Result {
		cfg := testConfig(edges, horizon)
		cfg.Shards = shards
		cfg.Workers = workers
		res, err := Run(cfg, testController(t, edges, 4, horizon), propSteppers(edges, 31, nil, nil, nil))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := runWith(1, 1)
	for _, shards := range []int{2, 3, 4, edges, edges + 7} {
		for _, workers := range []int{1, 2, 5} {
			if got := runWith(shards, workers); !reflect.DeepEqual(want, got) {
				t.Errorf("shards=%d workers=%d diverged", shards, workers)
			}
		}
	}
}

func TestMergeRejectsNonContiguous(t *testing.T) {
	base := SlotDelta{Start: 0, Edges: make([]EdgeDelta, 3)}
	for _, bad := range []SlotDelta{
		{Start: 4, Edges: make([]EdgeDelta, 2)}, // gap
		{Start: 2, Edges: make([]EdgeDelta, 2)}, // overlap
		{Start: 0, Edges: make([]EdgeDelta, 1)}, // out of order
	} {
		d := base
		d.Edges = append([]EdgeDelta(nil), base.Edges...)
		if err := d.Merge(bad); err == nil {
			t.Errorf("Merge accepted non-adjacent range starting at %d", bad.Start)
		}
	}
	d := SlotDelta{Start: 0, Edges: []EdgeDelta{{Samples: 2}}}
	if err := d.Merge(SlotDelta{Start: 1, Edges: []EdgeDelta{{Samples: 3}}}); err != nil {
		t.Fatal(err)
	}
	if len(d.Edges) != 2 || d.Workload() != 5 {
		t.Errorf("merged delta = %+v, want 2 edges / workload 5", d)
	}
}

func TestPartitionEdgesCoversContiguously(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{1, 1}, {5, 2}, {7, 3}, {8, 8}, {3, 9}, {100000, 4}} {
		ranges := PartitionEdges(tc.n, tc.k)
		next := 0
		for _, r := range ranges {
			if r.Start != next || r.Count <= 0 {
				t.Fatalf("PartitionEdges(%d,%d) = %v: not a contiguous positive cover", tc.n, tc.k, ranges)
			}
			next += r.Count
		}
		if next != tc.n {
			t.Fatalf("PartitionEdges(%d,%d) covers %d edges", tc.n, tc.k, next)
		}
		if want := tc.k; want > tc.n {
			want = tc.n
		} else if len(ranges) != tc.k {
			t.Fatalf("PartitionEdges(%d,%d) made %d shards", tc.n, tc.k, len(ranges))
		}
	}
}

// TestSlotDeltaJSONRoundTrip pins the wire property the regional tier relies
// on: a delta that crosses an encoding/json hop decodes to the identical
// terms, so the root's fold is bit-identical either way.
func TestSlotDeltaJSONRoundTrip(t *testing.T) {
	in := SlotDelta{Start: 3, Edges: []EdgeDelta{
		{Loss: 0.1 + 0.2, InferLoss: 1e-17, Compute: 0.3333333333333333, Correct: 3, Samples: 7,
			InferKWh: 4.9406564584124654e-324, TransferKWh: 1.7976931348623157e308, Retries: 2, Served: true},
		{Retries: 1, WentDown: true, DownError: "injected failure"},
		{},
	}}
	blob, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out SlotDelta
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed the delta:\n in: %+v\nout: %+v", in, out)
	}
	if out.Edges[1].err().Error() != "injected failure" {
		t.Errorf("reconstructed down error = %q", out.Edges[1].err())
	}
}

// TestRunShardedValidation covers the root loop's own misuse checks.
func TestRunShardedValidation(t *testing.T) {
	const edges, horizon = 4, 10
	mkShard := func(start, count, numEdges int) ShardStepper {
		sh, err := NewShard(ShardConfig{Start: start},
			propSteppers(numEdges, 1, nil, nil, nil)[start:start+count])
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}
	cfg := testConfig(edges, horizon)
	tests := []struct {
		name   string
		shards []ShardStepper
	}{
		{"no shards", nil},
		{"nil shard", []ShardStepper{nil}},
		{"gap", []ShardStepper{mkShard(0, 2, edges), mkShard(3, 1, edges)}},
		{"overlap", []ShardStepper{mkShard(0, 3, edges), mkShard(2, 2, edges)}},
		{"short cover", []ShardStepper{mkShard(0, 3, edges)}},
		{"non-zero start", []ShardStepper{mkShard(1, 3, edges)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := RunSharded(cfg, testController(t, edges, 4, horizon), tt.shards); err == nil {
				t.Error("expected error")
			}
		})
	}
	if _, err := NewShard(ShardConfig{Start: -1}, propSteppers(1, 1, nil, nil, nil)); err == nil {
		t.Error("NewShard accepted a negative start")
	}
	if _, err := NewShard(ShardConfig{}, nil); err == nil {
		t.Error("NewShard accepted an empty shard")
	}
	sh, err := NewShard(ShardConfig{}, propSteppers(2, 1, nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Step(0, []int{0}, []bool{false, false}); err == nil {
		t.Error("Shard.Step accepted mismatched arm/download lengths")
	}
}
