// Package engine owns the paper's per-slot execution protocol — Algorithm 1
// model placement, inference on the slot's data stream, Algorithm 2
// allowance trading, and emission accounting — exactly once, for every
// driver in the repository. The in-process simulator (internal/sim), the
// clairvoyant Offline scheme, and the TCP cloud server (internal/deploy)
// all supply their own EdgeStepper implementations and let Run drive the
// slots; core.Controller remains the single algorithmic brain.
//
// Per-slot accounting is an associative, mergeable reduction: contiguous
// edge ranges (Shards) step concurrently — each with its own worker pool —
// and report SlotDeltas of per-edge terms, which the root merges in
// canonical shard order and folds serially in edge-index order. Results are
// bit-for-bit deterministic for any shard×worker decomposition because
// every source of randomness is confined to one edge's stepper (each edge
// carries its own split RNG streams and scratch buffers), Merge is exact
// ordered concatenation, and every non-associative float accumulation
// happens once, at the root, in the canonical serial order.
// Shards=1, Workers=1 reproduces that order literally.
package engine

import (
	"fmt"
	"sync"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/metrics"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// Observation is what one edge reports after serving one slot.
type Observation struct {
	// Loss is the bandit feedback for the edge's policy: the observed
	// average inference loss plus the computation cost (the paper's
	// L_{i,n}^t + v_{i,n}).
	Loss float64
	// InferLoss and Compute are the cost-accounting terms: the expected
	// inference loss of the served model and the computation cost. The
	// simulator uses the posterior mean loss (as the paper's accounting
	// does); the deployment uses the observed loss, the only one it has.
	InferLoss float64
	Compute   float64
	// Correct and Samples feed the accuracy series.
	Correct int
	Samples int
	// InferKWh is the slot's inference energy; TransferKWh is the energy a
	// model download would cost. TransferKWh is consulted only when the
	// slot began with a download, so steppers may always fill it in.
	InferKWh    float64
	TransferKWh float64
	// Retries counts transport-level retries the stepper burned to produce
	// this observation (0 for in-process steppers). Steppers may report it
	// alongside an error; the engine accumulates it either way.
	Retries int
}

// EdgeStepper serves one edge's traffic for one slot. Each edge has its own
// stepper instance; Step is never called concurrently on the same instance,
// but steppers of different edges run concurrently, so implementations must
// not share mutable state (RNGs, scratch buffers) across edges.
type EdgeStepper interface {
	// Step runs slot `slot` with model `arm`; download reports whether the
	// controller scheduled a model switch for this edge this slot.
	Step(slot, arm int, download bool) (Observation, error)
}

// Config parameterizes one engine run.
type Config struct {
	// Name labels the run's Result.
	Name string
	// Horizon is the number of slots T.
	Horizon int
	// NumModels is the zoo size N (sizes the selection counts).
	NumModels int
	// InitialCap (grams) seeds the allowance ledger; EmissionRate (g/kWh)
	// converts energy into emissions.
	InitialCap   float64
	EmissionRate float64
	// Prices is the allowance quote series (length >= Horizon).
	Prices *market.Prices
	// SwitchCosts holds the per-edge download cost u_i charged whenever the
	// controller schedules a switch; length must equal the edge count.
	SwitchCosts []float64
	// Workers bounds how many edges step concurrently within each shard.
	// 0 or 1 runs the canonical serial order; the result is identical for
	// every value.
	Workers int
	// Shards splits the edges into this many contiguous shards, each stepping
	// with its own worker pool of up to Workers goroutines. 0 or 1 runs a
	// single shard. The Result is bit-identical for every shard count (see
	// RunSharded), so Shards is purely a throughput knob for large fleets.
	Shards int
	// Policy selects how the run reacts to a failing edge stepper. The zero
	// value (FailFast) aborts on the first error, preserving historical
	// sim/deploy parity semantics.
	Policy ErrorPolicy
	// OnEdgeDown, when non-nil and Policy is Degrade, is invoked serially in
	// edge-index order each time an edge is marked down (once per edge).
	OnEdgeDown func(edge, slot int, err error)
}

// ErrorPolicy selects how Run treats a failing edge stepper.
type ErrorPolicy int

const (
	// FailFast aborts the run on the first stepper error, reported
	// deterministically as the slot's lowest-indexed failure.
	FailFast ErrorPolicy = iota
	// Degrade marks a failing edge down and completes the run without it:
	// every remaining slot of a down edge contributes a fallback observation
	// (zero samples served, zero energy, no bandit feedback for the selected
	// arm), so the carbon accounting stays exact over the slots actually
	// served and the surviving edges are undisturbed.
	Degrade
)

// Result captures everything a run produces.
type Result struct {
	Name string
	Cost metrics.CostBreakdown

	// CumTotal[t] is the cumulative total cost through slot t.
	CumTotal []float64
	// Emissions[t] is grams of CO2 emitted in slot t.
	Emissions []float64
	// Decisions[t] is the trade executed in slot t.
	Decisions []trading.Decision
	// WorkloadTotal[t] is sum_i M_i^t.
	WorkloadTotal []int
	// Accuracy[t] is the fraction of correct predictions in slot t.
	Accuracy []float64
	// OverallAccuracy aggregates over all samples.
	OverallAccuracy float64
	// Fit is the paper's constraint-violation metric.
	Fit float64
	// Switches counts model downloads across all edges (including each
	// edge's initial download).
	Switches int
	// Selections[i][n] counts slots edge i spent on model n. Under Degrade
	// a down edge's slots are not counted, so row i sums to
	// Horizon - Downtime[i].
	Selections [][]int
	// AvgBuyPrice is spend / allowances bought (0 if none bought).
	AvgBuyPrice float64

	// Fault-tolerance accounting (all zero under FailFast).
	//
	// Downtime[i] counts slots edge i did not serve (including the slot in
	// which it was marked down); DroppedSlots is their sum. Retries[i]
	// accumulates the transport retries edge i's stepper reported.
	// DownErrors[i] is the error that took edge i down ("" while up).
	Downtime     []int
	DroppedSlots int
	Retries      []int
	DownErrors   []string
}

// Run drives the full horizon: it partitions the edges into cfg.Shards
// contiguous in-process Shards (each stepping with its own worker pool of up
// to cfg.Workers goroutines) and hands them to RunSharded, which per slot
// asks the controller for the placement, fans the slot out to the shards,
// merges their deltas in canonical shard order, accounts costs and emissions
// in edge-index order, executes the controller's trade against the ledger,
// and feeds the observations back.
func Run(cfg Config, ctrl *core.Controller, edges []EdgeStepper) (*Result, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("engine: nil controller")
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("engine: no edges")
	}
	if ctrl.NumEdges() != len(edges) {
		return nil, fmt.Errorf("engine: controller has %d edges, got %d steppers", ctrl.NumEdges(), len(edges))
	}
	for i, e := range edges {
		if e == nil {
			return nil, fmt.Errorf("engine: nil stepper for edge %d", i)
		}
	}
	nshards := cfg.Shards
	if nshards <= 0 {
		nshards = 1
	}
	ranges := PartitionEdges(len(edges), nshards)
	shards := make([]ShardStepper, 0, len(ranges))
	for _, r := range ranges {
		sh, err := NewShard(ShardConfig{
			Start:   r.Start,
			Workers: cfg.Workers,
			Policy:  cfg.Policy,
		}, edges[r.Start:r.Start+r.Count])
		if err != nil {
			return nil, err
		}
		shards = append(shards, sh)
	}
	return RunSharded(cfg, ctrl, shards)
}

// RunSharded is the engine's root loop over an explicit shard decomposition:
// per slot it fans the controller's placement out to every shard, merges the
// shard deltas in canonical shard order, and runs the unchanged global
// accounting/trade/ledger/controller feedback over the merged delta.
//
// The Result is bit-identical for every contiguous shard decomposition and
// every per-shard worker count, including Degrade and FailFast runs: shards
// report per-edge terms (never partial float sums), Merge is exact ordered
// concatenation, and the root folds the merged delta serially in edge-index
// order — the very accumulation order the single-shard serial loop performs.
// Shards must cover [0, ctrl.NumEdges()) contiguously in ascending order.
//
// A shard-level Step error (as opposed to an edge-level failure, which the
// shard's ErrorPolicy governs internally) aborts the run regardless of
// cfg.Policy: the root scans shard errors in canonical shard order, so under
// FailFast the reported error is the slot's lowest-indexed failing edge,
// exactly as the serial path reports it.
func RunSharded(cfg Config, ctrl *core.Controller, shards []ShardStepper) (*Result, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("engine: nil controller")
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("engine: no shards")
	}
	numEdges := 0
	for k, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("engine: nil shard %d", k)
		}
		start, count := sh.Range()
		if start != numEdges || count <= 0 {
			return nil, fmt.Errorf("engine: shard %d covers [%d,%d), want a positive range starting at edge %d",
				k, start, start+count, numEdges)
		}
		numEdges += count
	}
	if ctrl.NumEdges() != numEdges {
		return nil, fmt.Errorf("engine: controller has %d edges, shards cover %d", ctrl.NumEdges(), numEdges)
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("engine: Horizon must be positive, got %d", cfg.Horizon)
	}
	if cfg.NumModels <= 0 {
		return nil, fmt.Errorf("engine: NumModels must be positive, got %d", cfg.NumModels)
	}
	if len(cfg.SwitchCosts) != numEdges {
		return nil, fmt.Errorf("engine: %d switch costs for %d edges", len(cfg.SwitchCosts), numEdges)
	}
	if cfg.Prices == nil || cfg.Prices.Horizon() < cfg.Horizon {
		return nil, fmt.Errorf("engine: price series shorter than horizon")
	}
	meter, err := energy.NewMeter(cfg.EmissionRate)
	if err != nil {
		return nil, err
	}
	ledger, err := market.NewLedger(cfg.InitialCap)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:          cfg.Name,
		CumTotal:      make([]float64, cfg.Horizon),
		Emissions:     make([]float64, cfg.Horizon),
		Decisions:     make([]trading.Decision, cfg.Horizon),
		WorkloadTotal: make([]int, cfg.Horizon),
		Accuracy:      make([]float64, cfg.Horizon),
		Selections:    make([][]int, numEdges),
		Downtime:      make([]int, numEdges),
		Retries:       make([]int, numEdges),
		DownErrors:    make([]string, numEdges),
	}
	for i := range res.Selections {
		res.Selections[i] = make([]int, cfg.NumModels)
	}

	deltas := make([]SlotDelta, len(shards))
	stepErrs := make([]error, len(shards))
	accEdges := make([]EdgeDelta, 0, numEdges)
	losses := make([]float64, numEdges)
	served := make([]bool, numEdges)
	totalCorrect, totalSamples := 0, 0

	for t := 0; t < cfg.Horizon; t++ {
		arms, err := ctrl.SelectModels()
		if err != nil {
			return nil, err
		}
		downloads, err := ctrl.Downloads()
		if err != nil {
			return nil, err
		}

		if len(shards) == 1 {
			deltas[0], stepErrs[0] = stepShard(shards[0], t, arms, downloads)
		} else {
			var wg sync.WaitGroup
			for k, sh := range shards {
				start, count := sh.Range()
				wg.Add(1)
				go func(k int, sh ShardStepper, arms []int, downloads []bool) {
					defer wg.Done()
					deltas[k], stepErrs[k] = stepShard(sh, t, arms, downloads)
				}(k, sh, arms[start:start+count], downloads[start:start+count])
			}
			wg.Wait()
		}
		// Shard errors resolve in canonical shard order after the per-slot
		// barrier; shards cover ascending ranges and report their own
		// lowest-local-edge failure, so the first error here is the slot's
		// lowest-indexed failing edge — the serial FailFast outcome.
		for k := range shards {
			if stepErrs[k] != nil {
				return nil, stepErrs[k]
			}
		}

		// Merge in canonical shard order. Merging is exact concatenation, so
		// every contiguous decomposition yields the identical merged delta;
		// the non-associative float folding happens below, serially, in
		// edge-index order.
		acc := SlotDelta{Edges: accEdges[:0]}
		for k := range shards {
			if err := acc.Merge(deltas[k]); err != nil {
				return nil, fmt.Errorf("engine: shard %d: %w", k, err)
			}
		}
		accEdges = acc.Edges[:0]

		// Down-marking callbacks fire serially in edge-index order, exactly
		// once per edge, before the slot's accounting — as the serial path
		// interleaves them.
		for i := range acc.Edges {
			ed := &acc.Edges[i]
			if !ed.WentDown {
				continue
			}
			res.DownErrors[i] = ed.DownError
			if cfg.OnEdgeDown != nil {
				cfg.OnEdgeDown(i, t, ed.err())
			}
		}

		// Cross-edge accounting is SlotDelta.Fold — serial, in edge-index
		// order, and the only place per-edge terms enter float accumulations.
		fold := SlotFold{
			Meter:       meter,
			Arms:        arms,
			Downloads:   downloads,
			SwitchCosts: cfg.SwitchCosts,
			Res:         res,
			Losses:      losses,
			Served:      served,
		}
		acc.Fold(&fold)
		slotCost := fold.Cost
		slotEmission := fold.Emission
		slotCorrect, slotSamples := fold.Correct, fold.Samples

		q := trading.Quote{Buy: cfg.Prices.Buy[t], Sell: cfg.Prices.Sell[t]}
		d, err := ctrl.DecideTrade(q)
		if err != nil {
			return nil, err
		}
		if err := ledger.Buy(d.Buy, q.Buy); err != nil {
			return nil, err
		}
		if err := ledger.Sell(d.Sell, q.Sell); err != nil {
			return nil, err
		}
		if err := ctrl.CompleteSlotServed(losses, served, slotEmission); err != nil {
			return nil, err
		}
		slotCost.Trading = d.Cost(q)

		res.Cost.Add(slotCost)
		res.CumTotal[t] = res.Cost.Total()
		res.Emissions[t] = slotEmission
		res.Decisions[t] = d
		res.WorkloadTotal[t] = slotSamples
		if slotSamples > 0 {
			res.Accuracy[t] = float64(slotCorrect) / float64(slotSamples)
		}
		totalCorrect += slotCorrect
		totalSamples += slotSamples
	}
	if totalSamples > 0 {
		res.OverallAccuracy = float64(totalCorrect) / float64(totalSamples)
	}
	fit, err := trading.Fit(res.Emissions, res.Decisions, cfg.InitialCap)
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	if ledger.Bought() > 0 {
		res.AvgBuyPrice = ledger.Spend() / ledger.Bought()
	}
	return res, nil
}

// safeStep runs one stepper call, converting a panic into an error. A
// panicking stepper must not kill the process (one bad edge in a fleet) or
// wedge the worker pool: the worker keeps draining jobs, the slot barrier
// completes, and Run surfaces the failure as the slot's first error in edge
// order — the same deterministic path an ordinary Step error takes.
func safeStep(e EdgeStepper, slot, arm int, download bool) (o Observation, err error) {
	defer func() { //lint:allow hotalloc the recover barrier must capture err; the open-coded defer keeps the closure off the heap
		if r := recover(); r != nil {
			err = fmt.Errorf("stepper panic: %v", r)
		}
	}()
	return e.Step(slot, arm, download)
}

// NetBuySeries returns z^t - w^t for every slot.
func (r *Result) NetBuySeries() []float64 {
	out := make([]float64, len(r.Decisions))
	for t, d := range r.Decisions {
		out[t] = d.Buy - d.Sell
	}
	return out
}
