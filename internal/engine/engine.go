// Package engine owns the paper's per-slot execution protocol — Algorithm 1
// model placement, inference on the slot's data stream, Algorithm 2
// allowance trading, and emission accounting — exactly once, for every
// driver in the repository. The in-process simulator (internal/sim), the
// clairvoyant Offline scheme, and the TCP cloud server (internal/deploy)
// all supply their own EdgeStepper implementations and let Run drive the
// slots; core.Controller remains the single algorithmic brain.
//
// Within a slot, edges step concurrently on a bounded worker pool. Results
// are bit-for-bit deterministic for any worker count because every source
// of randomness is confined to one edge's stepper (each edge carries its
// own split RNG streams and scratch buffers) and all cross-edge accounting
// happens serially, in edge-index order, after a per-slot barrier.
// Workers=1 reproduces the canonical serial order.
package engine

import (
	"fmt"
	"sync"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/metrics"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// Observation is what one edge reports after serving one slot.
type Observation struct {
	// Loss is the bandit feedback for the edge's policy: the observed
	// average inference loss plus the computation cost (the paper's
	// L_{i,n}^t + v_{i,n}).
	Loss float64
	// InferLoss and Compute are the cost-accounting terms: the expected
	// inference loss of the served model and the computation cost. The
	// simulator uses the posterior mean loss (as the paper's accounting
	// does); the deployment uses the observed loss, the only one it has.
	InferLoss float64
	Compute   float64
	// Correct and Samples feed the accuracy series.
	Correct int
	Samples int
	// InferKWh is the slot's inference energy; TransferKWh is the energy a
	// model download would cost. TransferKWh is consulted only when the
	// slot began with a download, so steppers may always fill it in.
	InferKWh    float64
	TransferKWh float64
	// Retries counts transport-level retries the stepper burned to produce
	// this observation (0 for in-process steppers). Steppers may report it
	// alongside an error; the engine accumulates it either way.
	Retries int
}

// EdgeStepper serves one edge's traffic for one slot. Each edge has its own
// stepper instance; Step is never called concurrently on the same instance,
// but steppers of different edges run concurrently, so implementations must
// not share mutable state (RNGs, scratch buffers) across edges.
type EdgeStepper interface {
	// Step runs slot `slot` with model `arm`; download reports whether the
	// controller scheduled a model switch for this edge this slot.
	Step(slot, arm int, download bool) (Observation, error)
}

// Config parameterizes one engine run.
type Config struct {
	// Name labels the run's Result.
	Name string
	// Horizon is the number of slots T.
	Horizon int
	// NumModels is the zoo size N (sizes the selection counts).
	NumModels int
	// InitialCap (grams) seeds the allowance ledger; EmissionRate (g/kWh)
	// converts energy into emissions.
	InitialCap   float64
	EmissionRate float64
	// Prices is the allowance quote series (length >= Horizon).
	Prices *market.Prices
	// SwitchCosts holds the per-edge download cost u_i charged whenever the
	// controller schedules a switch; length must equal the edge count.
	SwitchCosts []float64
	// Workers bounds how many edges step concurrently within a slot.
	// 0 or 1 runs the canonical serial order; the result is identical for
	// every value.
	Workers int
	// Policy selects how the run reacts to a failing edge stepper. The zero
	// value (FailFast) aborts on the first error, preserving historical
	// sim/deploy parity semantics.
	Policy ErrorPolicy
	// OnEdgeDown, when non-nil and Policy is Degrade, is invoked serially in
	// edge-index order each time an edge is marked down (once per edge).
	OnEdgeDown func(edge, slot int, err error)
}

// ErrorPolicy selects how Run treats a failing edge stepper.
type ErrorPolicy int

const (
	// FailFast aborts the run on the first stepper error, reported
	// deterministically as the slot's lowest-indexed failure.
	FailFast ErrorPolicy = iota
	// Degrade marks a failing edge down and completes the run without it:
	// every remaining slot of a down edge contributes a fallback observation
	// (zero samples served, zero energy, no bandit feedback for the selected
	// arm), so the carbon accounting stays exact over the slots actually
	// served and the surviving edges are undisturbed.
	Degrade
)

// Result captures everything a run produces.
type Result struct {
	Name string
	Cost metrics.CostBreakdown

	// CumTotal[t] is the cumulative total cost through slot t.
	CumTotal []float64
	// Emissions[t] is grams of CO2 emitted in slot t.
	Emissions []float64
	// Decisions[t] is the trade executed in slot t.
	Decisions []trading.Decision
	// WorkloadTotal[t] is sum_i M_i^t.
	WorkloadTotal []int
	// Accuracy[t] is the fraction of correct predictions in slot t.
	Accuracy []float64
	// OverallAccuracy aggregates over all samples.
	OverallAccuracy float64
	// Fit is the paper's constraint-violation metric.
	Fit float64
	// Switches counts model downloads across all edges (including each
	// edge's initial download).
	Switches int
	// Selections[i][n] counts slots edge i spent on model n. Under Degrade
	// a down edge's slots are not counted, so row i sums to
	// Horizon - Downtime[i].
	Selections [][]int
	// AvgBuyPrice is spend / allowances bought (0 if none bought).
	AvgBuyPrice float64

	// Fault-tolerance accounting (all zero under FailFast).
	//
	// Downtime[i] counts slots edge i did not serve (including the slot in
	// which it was marked down); DroppedSlots is their sum. Retries[i]
	// accumulates the transport retries edge i's stepper reported.
	// DownErrors[i] is the error that took edge i down ("" while up).
	Downtime     []int
	DroppedSlots int
	Retries      []int
	DownErrors   []string
}

// Run drives the full horizon: per slot it asks the controller for the
// placement, steps every edge (in parallel up to cfg.Workers), accounts
// costs and emissions in edge-index order, executes the controller's trade
// against the ledger, and feeds the observations back.
func Run(cfg Config, ctrl *core.Controller, edges []EdgeStepper) (*Result, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("engine: nil controller")
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("engine: no edges")
	}
	if ctrl.NumEdges() != len(edges) {
		return nil, fmt.Errorf("engine: controller has %d edges, got %d steppers", ctrl.NumEdges(), len(edges))
	}
	for i, e := range edges {
		if e == nil {
			return nil, fmt.Errorf("engine: nil stepper for edge %d", i)
		}
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("engine: Horizon must be positive, got %d", cfg.Horizon)
	}
	if cfg.NumModels <= 0 {
		return nil, fmt.Errorf("engine: NumModels must be positive, got %d", cfg.NumModels)
	}
	if len(cfg.SwitchCosts) != len(edges) {
		return nil, fmt.Errorf("engine: %d switch costs for %d edges", len(cfg.SwitchCosts), len(edges))
	}
	if cfg.Prices == nil || cfg.Prices.Horizon() < cfg.Horizon {
		return nil, fmt.Errorf("engine: price series shorter than horizon")
	}
	meter, err := energy.NewMeter(cfg.EmissionRate)
	if err != nil {
		return nil, err
	}
	ledger, err := market.NewLedger(cfg.InitialCap)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:          cfg.Name,
		CumTotal:      make([]float64, cfg.Horizon),
		Emissions:     make([]float64, cfg.Horizon),
		Decisions:     make([]trading.Decision, cfg.Horizon),
		WorkloadTotal: make([]int, cfg.Horizon),
		Accuracy:      make([]float64, cfg.Horizon),
		Selections:    make([][]int, len(edges)),
		Downtime:      make([]int, len(edges)),
		Retries:       make([]int, len(edges)),
		DownErrors:    make([]string, len(edges)),
	}
	for i := range res.Selections {
		res.Selections[i] = make([]int, cfg.NumModels)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(edges) {
		workers = len(edges)
	}

	obs := make([]Observation, len(edges))
	stepErrs := make([]error, len(edges))
	losses := make([]float64, len(edges))
	served := make([]bool, len(edges))
	down := make([]bool, len(edges))
	totalCorrect, totalSamples := 0, 0

	for t := 0; t < cfg.Horizon; t++ {
		arms, err := ctrl.SelectModels()
		if err != nil {
			return nil, err
		}
		downloads, err := ctrl.Downloads()
		if err != nil {
			return nil, err
		}

		if workers == 1 {
			for i, e := range edges {
				if down[i] {
					obs[i], stepErrs[i] = Observation{}, nil
					continue
				}
				obs[i], stepErrs[i] = safeStep(e, t, arms[i], downloads[i])
			}
		} else {
			var wg sync.WaitGroup
			jobs := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range jobs {
						obs[i], stepErrs[i] = safeStep(edges[i], t, arms[i], downloads[i])
					}
				}()
			}
			for i := range edges {
				if down[i] {
					obs[i], stepErrs[i] = Observation{}, nil
					continue
				}
				jobs <- i
			}
			close(jobs)
			wg.Wait()
		}
		// Failures are handled serially in edge-index order, so the outcome
		// (the aborting error under FailFast, the down-marking order under
		// Degrade) is deterministic regardless of step completion order.
		for i, err := range stepErrs {
			if err == nil {
				continue
			}
			if cfg.Policy == FailFast {
				return nil, fmt.Errorf("engine: edge %d slot %d: %w", i, t, err)
			}
			// Degrade: keep the retries the stepper burned, zero the rest of
			// the failed observation, and mark the edge down for the
			// remainder of the run.
			down[i] = true
			res.DownErrors[i] = err.Error()
			obs[i] = Observation{Retries: obs[i].Retries}
			stepErrs[i] = nil
			if cfg.OnEdgeDown != nil {
				cfg.OnEdgeDown(i, t, err)
			}
		}

		// Cross-edge accounting is serial and in edge-index order so the
		// result is independent of step completion order. A down edge
		// contributes the well-defined fallback: zero samples, zero energy,
		// no switch charge (nothing was shipped), and no bandit feedback.
		var slotCost metrics.CostBreakdown
		slotEmission := 0.0
		slotCorrect, slotSamples := 0, 0
		for i := range edges {
			o := obs[i]
			losses[i] = o.Loss
			served[i] = !down[i]
			res.Retries[i] += o.Retries
			if down[i] {
				res.Downtime[i]++
				res.DroppedSlots++
				continue
			}
			res.Selections[i][arms[i]]++
			slotCost.InferLoss += o.InferLoss
			slotCost.Compute += o.Compute
			if downloads[i] {
				slotCost.Switching += cfg.SwitchCosts[i]
				res.Switches++
				slotEmission += meter.RecordTransfer(o.TransferKWh)
			}
			slotEmission += meter.RecordInference(o.InferKWh)
			slotCorrect += o.Correct
			slotSamples += o.Samples
		}

		q := trading.Quote{Buy: cfg.Prices.Buy[t], Sell: cfg.Prices.Sell[t]}
		d, err := ctrl.DecideTrade(q)
		if err != nil {
			return nil, err
		}
		if err := ledger.Buy(d.Buy, q.Buy); err != nil {
			return nil, err
		}
		if err := ledger.Sell(d.Sell, q.Sell); err != nil {
			return nil, err
		}
		if err := ctrl.CompleteSlotServed(losses, served, slotEmission); err != nil {
			return nil, err
		}
		slotCost.Trading = d.Cost(q)

		res.Cost.Add(slotCost)
		res.CumTotal[t] = res.Cost.Total()
		res.Emissions[t] = slotEmission
		res.Decisions[t] = d
		res.WorkloadTotal[t] = slotSamples
		if slotSamples > 0 {
			res.Accuracy[t] = float64(slotCorrect) / float64(slotSamples)
		}
		totalCorrect += slotCorrect
		totalSamples += slotSamples
	}
	if totalSamples > 0 {
		res.OverallAccuracy = float64(totalCorrect) / float64(totalSamples)
	}
	fit, err := trading.Fit(res.Emissions, res.Decisions, cfg.InitialCap)
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	if ledger.Bought() > 0 {
		res.AvgBuyPrice = ledger.Spend() / ledger.Bought()
	}
	return res, nil
}

// safeStep runs one stepper call, converting a panic into an error. A
// panicking stepper must not kill the process (one bad edge in a fleet) or
// wedge the worker pool: the worker keeps draining jobs, the slot barrier
// completes, and Run surfaces the failure as the slot's first error in edge
// order — the same deterministic path an ordinary Step error takes.
func safeStep(e EdgeStepper, slot, arm int, download bool) (o Observation, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("stepper panic: %v", r)
		}
	}()
	return e.Step(slot, arm, download)
}

// NetBuySeries returns z^t - w^t for every slot.
func (r *Result) NetBuySeries() []float64 {
	out := make([]float64, len(r.Decisions))
	for t, d := range r.Decisions {
		out[t] = d.Buy - d.Sell
	}
	return out
}
