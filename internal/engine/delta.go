package engine

import (
	"errors"
	"fmt"

	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/metrics"
)

// EdgeDelta is one edge's fully-resolved contribution to one slot: the
// observation terms the accounting fold consumes, plus the serving state the
// fault accounting needs. It deliberately carries *terms*, not partial sums:
// energy stays in kWh (the root's meter converts it to emissions), and no
// float has been folded across edges yet. That is what makes SlotDelta.Merge
// exact — merging is pure ordered concatenation, and every non-associative
// float addition happens exactly once, at the root, in canonical edge-index
// order, replaying the serial accumulation op for op.
//
// The JSON tags make the delta the wire unit of the regional-aggregator tier
// (internal/deploy): encoding/json round-trips float64 exactly, so a delta
// that crosses a TCP hop folds to the same bits as one that never left the
// process.
type EdgeDelta struct {
	// Loss, InferLoss, Compute, Correct, Samples, InferKWh, TransferKWh, and
	// Retries mirror Observation (zeroed while the edge is down, except
	// Retries in the slot the edge went down).
	Loss        float64 `json:"loss,omitempty"`
	InferLoss   float64 `json:"inferLoss,omitempty"`
	Compute     float64 `json:"compute,omitempty"`
	Correct     int     `json:"correct,omitempty"`
	Samples     int     `json:"samples,omitempty"`
	InferKWh    float64 `json:"inferKwh,omitempty"`
	TransferKWh float64 `json:"transferKwh,omitempty"`
	Retries     int     `json:"retries,omitempty"`
	// Served reports whether the edge served this slot (false from the slot
	// it went down onward).
	Served bool `json:"served,omitempty"`
	// WentDown marks the slot in which a Degrade shard marked this edge down;
	// DownError is the error that took it down.
	WentDown  bool   `json:"wentDown,omitempty"`
	DownError string `json:"downError,omitempty"`

	// downErr preserves the original error object for in-process OnEdgeDown
	// callbacks; deltas that crossed a wire reconstruct it from DownError.
	downErr error
}

// err returns the error that took the edge down.
func (d *EdgeDelta) err() error {
	if d.downErr != nil {
		return d.downErr
	}
	return errors.New(d.DownError)
}

// SlotDelta is the mergeable per-slot reduction unit: the deltas of one
// contiguous edge range [Start, Start+len(Edges)), in edge-index order.
type SlotDelta struct {
	Start int         `json:"start"`
	Edges []EdgeDelta `json:"edges"`
}

// Merge appends the delta of the adjacent range on the right. Merging is
// associative and exact — it is ordered concatenation, with no arithmetic —
// so folding shard deltas left-to-right in canonical shard order produces
// the identical merged delta for every contiguous decomposition. Ranges that
// are not adjacent (a gap, an overlap, or out-of-order shards) are rejected.
func (d *SlotDelta) Merge(o SlotDelta) error {
	if want := d.Start + len(d.Edges); o.Start != want {
		return fmt.Errorf("engine: cannot merge delta starting at edge %d onto range [%d,%d)", o.Start, d.Start, want)
	}
	d.Edges = append(d.Edges, o.Edges...)
	return nil
}

// SlotFold is the accounting state Fold reads and writes for one slot: the
// inputs the fold consumes (meter, placement, per-edge switch costs, the
// Result under construction, and the controller feedback buffers) and the
// slot totals it produces.
type SlotFold struct {
	Meter       *energy.Meter
	Arms        []int
	Downloads   []bool
	SwitchCosts []float64
	Res         *Result
	Losses      []float64
	Served      []bool

	// Outputs, accumulated over the delta's edges.
	Cost     metrics.CostBreakdown
	Emission float64
	Correct  int
	Samples  int
}

// Fold runs the slot's cross-edge accounting serially in edge-index order —
// the one place a per-edge term may enter a float accumulation. Deltas carry
// raw terms and Merge is pure concatenation precisely so that every
// non-associative addition happens here, once, in canonical order: the
// result is independent of shard decomposition and completion order. A down
// edge contributes the well-defined fallback: zero samples, zero energy, no
// switch charge (nothing was shipped), and no bandit feedback.
func (d *SlotDelta) Fold(f *SlotFold) {
	for i := range d.Edges {
		ed := &d.Edges[i]
		g := d.Start + i
		f.Losses[g] = ed.Loss
		f.Served[g] = ed.Served
		f.Res.Retries[g] += ed.Retries
		if !ed.Served {
			f.Res.Downtime[g]++
			f.Res.DroppedSlots++
			continue
		}
		f.Res.Selections[g][f.Arms[g]]++
		f.Cost.InferLoss += ed.InferLoss
		f.Cost.Compute += ed.Compute
		if f.Downloads[g] {
			f.Cost.Switching += f.SwitchCosts[g]
			f.Res.Switches++
			f.Emission += f.Meter.RecordTransfer(ed.TransferKWh)
		}
		f.Emission += f.Meter.RecordInference(ed.InferKWh)
		f.Correct += ed.Correct
		f.Samples += ed.Samples
	}
}

// Workload returns the delta's total served samples.
func (d *SlotDelta) Workload() int {
	n := 0
	for i := range d.Edges {
		n += d.Edges[i].Samples
	}
	return n
}

// Range is a contiguous block of edges, the unit a shard owns.
type Range struct{ Start, Count int }

// PartitionEdges splits n edges into k near-equal contiguous ranges: shard j
// owns [j*n/k, (j+1)*n/k). This is the canonical decomposition Run uses;
// any other contiguous cover produces the same Result bit for bit.
func PartitionEdges(n, k int) []Range {
	if n <= 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	out := make([]Range, k)
	for j := 0; j < k; j++ {
		start := j * n / k
		end := (j + 1) * n / k
		out[j] = Range{Start: start, Count: end - start}
	}
	return out
}
