package engine

import "fmt"

// ShardCheckpoint is the serializable root-visible state of one shard: what
// a surviving (or newly joined) regional coordinator needs to adopt the
// shard's contiguous edge range mid-run. It deliberately contains no bandit
// or accounting floats — the controller state lives at the root and the
// per-edge serving RNG streams live on the edges themselves (they travel
// with the edge sessions when the edges redial the adopter) — so handing a
// shard over cannot perturb Results: the fold still replays canonical
// edge-index order over the same per-edge terms.
//
// The JSON tags make the checkpoint a wire unit of the regional tier
// (internal/deploy ships it inside a MsgShardAdopt frame).
type ShardCheckpoint struct {
	// Start and Count are the shard's contiguous global edge range
	// [Start, Start+Count).
	Start int `json:"start"`
	Count int `json:"count"`
	// DoneSlots is the root's fold watermark for the shard: slots
	// [0, DoneSlots) have been folded, so the adopter resumes at DoneSlots.
	DoneSlots int `json:"doneSlots,omitempty"`
	// FleetSeed is the seed of the fleet that first admitted the shard's
	// edges. Edge resume tokens and backoff jitter streams are derived
	// deterministically from it, so the adopting coordinator reconstructs
	// them locally instead of having secrets shipped.
	FleetSeed int64 `json:"fleetSeed"`
	// Down marks edges already down (length Count when non-nil). A restored
	// shard keeps them down without re-announcing the transition — the root
	// already folded their WentDown slot.
	Down []bool `json:"down,omitempty"`
	// DownErrors records why each down edge went down ("" while up). The
	// adopter does not act on them; they make the serialized state
	// self-describing for operators replaying a handoff.
	DownErrors []string `json:"downErrors,omitempty"`
	// JitterDraws counts the backoff-jitter draws each edge's retry stream
	// has consumed (the stream position to fast-forward to). Jitter paces
	// wall-clock retries only — it never reaches Results.
	JitterDraws []int `json:"jitterDraws,omitempty"`
}

// Validate checks the checkpoint's internal consistency.
func (c *ShardCheckpoint) Validate() error {
	if c.Start < 0 || c.Count <= 0 {
		return fmt.Errorf("engine: checkpoint covers [%d,%d), want a positive range", c.Start, c.Start+c.Count)
	}
	if c.DoneSlots < 0 {
		return fmt.Errorf("engine: checkpoint with negative fold watermark %d", c.DoneSlots)
	}
	if c.Down != nil && len(c.Down) != c.Count {
		return fmt.Errorf("engine: checkpoint has %d down flags for %d edges", len(c.Down), c.Count)
	}
	if c.DownErrors != nil && len(c.DownErrors) != c.Count {
		return fmt.Errorf("engine: checkpoint has %d down errors for %d edges", len(c.DownErrors), c.Count)
	}
	if c.JitterDraws != nil && len(c.JitterDraws) != c.Count {
		return fmt.Errorf("engine: checkpoint has %d jitter positions for %d edges", len(c.JitterDraws), c.Count)
	}
	for i, n := range c.JitterDraws {
		if n < 0 {
			return fmt.Errorf("engine: checkpoint edge %d has negative jitter position %d", c.Start+i, n)
		}
	}
	return nil
}

// SlotDeduper tracks one shard's fold watermark so a replayed delta stream
// folds each slot exactly once. A resumed region link replays deltas from its
// last unacked slot; the root admits the first delta for each slot (in
// order) and skips duplicates, making the fold idempotent under duplicate,
// reordered, and partially-overlapping replays: the admitted subsequence of
// any such stream is exactly the clean stream.
type SlotDeduper struct {
	next int
}

// Admit reports whether the delta for slot should be folded: true exactly
// when slot is the watermark (the next unfolded slot), advancing it. Replays
// of already-folded slots and out-of-order future slots return false.
func (d *SlotDeduper) Admit(slot int) bool {
	if slot != d.next {
		return false
	}
	d.next++
	return true
}

// Seen reports whether slot was already folded (a replayed duplicate).
func (d *SlotDeduper) Seen(slot int) bool { return slot < d.next }

// Next returns the watermark: the next slot the deduper will admit.
func (d *SlotDeduper) Next() int { return d.next }
