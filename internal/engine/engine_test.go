package engine

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/market"
)

// fakeStepper is a deterministic pure-function edge: every observation is
// derived from (edge, slot, arm) plus a private RNG stream, mimicking how
// real steppers confine randomness per edge.
type fakeStepper struct {
	edge int
	rng  *rand.Rand
	// failAt, when >= 0, makes Step fail at that slot.
	failAt int
}

func newFakeStepper(edge int, seed int64) *fakeStepper {
	return &fakeStepper{edge: edge, rng: rand.New(rand.NewSource(seed + int64(edge))), failAt: -1}
}

func (f *fakeStepper) Step(slot, arm int, download bool) (Observation, error) {
	if f.failAt == slot {
		return Observation{}, fmt.Errorf("injected failure")
	}
	m := 3 + (slot+f.edge)%4
	return Observation{
		Loss:        0.5 + 0.1*float64(arm) + 0.01*f.rng.Float64(),
		InferLoss:   0.4 + 0.1*float64(arm),
		Compute:     0.05 * float64(f.edge+1),
		Correct:     m - 1,
		Samples:     m,
		InferKWh:    1e-4 * float64(m),
		TransferKWh: 1e-3,
	}, nil
}

func testPrices(horizon int) *market.Prices {
	p := &market.Prices{Buy: make([]float64, horizon), Sell: make([]float64, horizon)}
	for t := range p.Buy {
		p.Buy[t] = 8 + math.Sin(float64(t))
		p.Sell[t] = p.Buy[t] * 0.9
	}
	return p
}

func testController(t *testing.T, edges, models, horizon int) *core.Controller {
	t.Helper()
	costs := make([]float64, edges)
	for i := range costs {
		costs[i] = 0.5 + 0.1*float64(i)
	}
	ctrl, err := core.New(core.Config{
		NumModels:     models,
		DownloadCosts: costs,
		Horizon:       horizon,
		InitialCap:    2,
		EmissionScale: 0.01,
		PriceScale:    8,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ctrl
}

func testConfig(edges, horizon int) Config {
	costs := make([]float64, edges)
	for i := range costs {
		costs[i] = 0.5 + 0.1*float64(i)
	}
	return Config{
		Name:         "test",
		Horizon:      horizon,
		NumModels:    4,
		InitialCap:   2,
		EmissionRate: 500,
		Prices:       testPrices(horizon),
		SwitchCosts:  costs,
	}
}

func TestRunValidation(t *testing.T) {
	const edges, horizon = 3, 10
	mkSteppers := func() []EdgeStepper {
		out := make([]EdgeStepper, edges)
		for i := range out {
			out[i] = newFakeStepper(i, 1)
		}
		return out
	}
	tests := []struct {
		name string
		run  func() error
	}{
		{"nil controller", func() error {
			_, err := Run(testConfig(edges, horizon), nil, mkSteppers())
			return err
		}},
		{"no edges", func() error {
			_, err := Run(testConfig(edges, horizon), testController(t, edges, 4, horizon), nil)
			return err
		}},
		{"edge count mismatch", func() error {
			_, err := Run(testConfig(edges, horizon), testController(t, edges+1, 4, horizon), mkSteppers())
			return err
		}},
		{"nil stepper", func() error {
			s := mkSteppers()
			s[1] = nil
			_, err := Run(testConfig(edges, horizon), testController(t, edges, 4, horizon), s)
			return err
		}},
		{"zero horizon", func() error {
			cfg := testConfig(edges, horizon)
			cfg.Horizon = 0
			_, err := Run(cfg, testController(t, edges, 4, horizon), mkSteppers())
			return err
		}},
		{"zero models", func() error {
			cfg := testConfig(edges, horizon)
			cfg.NumModels = 0
			_, err := Run(cfg, testController(t, edges, 4, horizon), mkSteppers())
			return err
		}},
		{"switch cost mismatch", func() error {
			cfg := testConfig(edges, horizon)
			cfg.SwitchCosts = cfg.SwitchCosts[:1]
			_, err := Run(cfg, testController(t, edges, 4, horizon), mkSteppers())
			return err
		}},
		{"short prices", func() error {
			cfg := testConfig(edges, horizon)
			cfg.Prices = testPrices(horizon - 1)
			_, err := Run(cfg, testController(t, edges, 4, horizon), mkSteppers())
			return err
		}},
		{"negative rate", func() error {
			cfg := testConfig(edges, horizon)
			cfg.EmissionRate = -1
			_, err := Run(cfg, testController(t, edges, 4, horizon), mkSteppers())
			return err
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.run(); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestRunAccounting(t *testing.T) {
	const edges, horizon = 3, 40
	steppers := make([]EdgeStepper, edges)
	for i := range steppers {
		steppers[i] = newFakeStepper(i, 2)
	}
	res, err := Run(testConfig(edges, horizon), testController(t, edges, 4, horizon), steppers)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CumTotal) != horizon || len(res.Emissions) != horizon || len(res.Decisions) != horizon {
		t.Fatal("series lengths wrong")
	}
	if math.Abs(res.CumTotal[horizon-1]-res.Cost.Total()) > 1e-9 {
		t.Errorf("CumTotal end %v != Cost.Total %v", res.CumTotal[horizon-1], res.Cost.Total())
	}
	for i, row := range res.Selections {
		total := 0
		for _, c := range row {
			total += c
		}
		if total != horizon {
			t.Errorf("edge %d selections sum to %d, want %d", i, total, horizon)
		}
	}
	if res.Switches < edges {
		t.Errorf("Switches = %d, want at least one initial download per edge", res.Switches)
	}
	if res.OverallAccuracy <= 0 || res.OverallAccuracy > 1 {
		t.Errorf("OverallAccuracy = %v", res.OverallAccuracy)
	}
	for tt, e := range res.Emissions {
		if e <= 0 {
			t.Errorf("slot %d emission %v, want positive", tt, e)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	const edges, horizon = 8, 60
	runWith := func(workers int) *Result {
		steppers := make([]EdgeStepper, edges)
		for i := range steppers {
			steppers[i] = newFakeStepper(i, 3)
		}
		cfg := testConfig(edges, horizon)
		cfg.Workers = workers
		res, err := Run(cfg, testController(t, edges, 4, horizon), steppers)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := runWith(1)
	for _, workers := range []int{2, 4, edges, edges + 5} {
		if got := runWith(workers); !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d diverged from serial result", workers)
		}
	}
}

func TestRunReportsFirstFailingEdge(t *testing.T) {
	const edges, horizon = 4, 20
	steppers := make([]EdgeStepper, edges)
	for i := range steppers {
		f := newFakeStepper(i, 4)
		if i == 1 || i == 3 {
			f.failAt = 5
		}
		steppers[i] = f
	}
	cfg := testConfig(edges, horizon)
	cfg.Workers = edges
	_, err := Run(cfg, testController(t, edges, 4, horizon), steppers)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "edge 1 slot 5") {
		t.Errorf("err = %v, want deterministic first failure (edge 1 slot 5)", err)
	}
}

func TestResultWriteJSONAndNetBuy(t *testing.T) {
	const edges, horizon = 2, 15
	steppers := make([]EdgeStepper, edges)
	for i := range steppers {
		steppers[i] = newFakeStepper(i, 5)
	}
	res, err := Run(testConfig(edges, horizon), testController(t, edges, 4, horizon), steppers)
	if err != nil {
		t.Fatal(err)
	}
	nb := res.NetBuySeries()
	if len(nb) != horizon {
		t.Fatalf("net buy length %d", len(nb))
	}
	for t2, v := range nb {
		if want := res.Decisions[t2].Buy - res.Decisions[t2].Sell; v != want {
			t.Fatalf("net buy mismatch at %d", t2)
		}
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"totalCost"`, `"cumTotal"`, `"selections"`} {
		if !strings.Contains(sb.String(), key) {
			t.Errorf("JSON missing %s", key)
		}
	}
}

// panicStepper panics at a chosen slot; other slots delegate to a fake.
type panicStepper struct {
	*fakeStepper
	panicAt int
}

func (p *panicStepper) Step(slot, arm int, download bool) (Observation, error) {
	if slot == p.panicAt {
		panic(fmt.Sprintf("edge %d exploded", p.fakeStepper.edge))
	}
	return p.fakeStepper.Step(slot, arm, download)
}

// TestRunSurvivesStepperPanic is the regression test for the worker pool's
// panic recovery: a stepper that panics mid-slot must not crash the process
// or deadlock the pool, and must surface as the slot's first error in edge
// order, for every worker count.
func TestRunSurvivesStepperPanic(t *testing.T) {
	const edges, horizon = 4, 20
	for _, workers := range []int{1, 2, edges} {
		steppers := make([]EdgeStepper, edges)
		for i := range steppers {
			f := newFakeStepper(i, 4)
			if i == 2 {
				steppers[i] = &panicStepper{fakeStepper: f, panicAt: 7}
			} else {
				steppers[i] = f
			}
		}
		cfg := testConfig(edges, horizon)
		cfg.Workers = workers
		done := make(chan error, 1)
		go func() {
			_, err := Run(cfg, testController(t, edges, 4, horizon), steppers)
			done <- err
		}()
		select {
		case err := <-done:
			if err == nil {
				t.Fatalf("workers=%d: expected error", workers)
			}
			for _, frag := range []string{"edge 2 slot 7", "stepper panic", "exploded"} {
				if !strings.Contains(err.Error(), frag) {
					t.Errorf("workers=%d: err = %v, want it to mention %q", workers, err, frag)
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: Run deadlocked after stepper panic", workers)
		}
	}
}

// TestRunPanicBeatenByEarlierError pins the first-error-in-edge-order rule
// when a panic and an ordinary error land in the same slot: the lower edge
// index wins regardless of which goroutine finished first.
func TestRunPanicBeatenByEarlierError(t *testing.T) {
	const edges, horizon = 4, 20
	steppers := make([]EdgeStepper, edges)
	for i := range steppers {
		f := newFakeStepper(i, 4)
		switch i {
		case 1:
			f.failAt = 5
			steppers[i] = f
		case 3:
			steppers[i] = &panicStepper{fakeStepper: f, panicAt: 5}
		default:
			steppers[i] = f
		}
	}
	cfg := testConfig(edges, horizon)
	cfg.Workers = edges
	_, err := Run(cfg, testController(t, edges, 4, horizon), steppers)
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "edge 1 slot 5") || strings.Contains(err.Error(), "panic") {
		t.Errorf("err = %v, want the ordinary edge-1 error to win over edge 3's panic", err)
	}
}

// retryStepper reports transport retries alongside success or failure.
type retryStepper struct {
	*fakeStepper
	retriesPerSlot int
}

func (r *retryStepper) Step(slot, arm int, download bool) (Observation, error) {
	obs, err := r.fakeStepper.Step(slot, arm, download)
	obs.Retries = r.retriesPerSlot
	return obs, err
}

// TestRunDegradeMarksEdgeDown pins graceful degradation: a failing edge is
// marked down once, serves nothing afterwards, and contributes exactly the
// documented fallback — no selections, no emissions, no switch charges —
// while the surviving edges and the run's determinism are untouched.
func TestRunDegradeMarksEdgeDown(t *testing.T) {
	const edges, horizon, failAt = 4, 30, 5
	type downEvent struct{ edge, slot int }
	runWith := func(workers int) (*Result, []downEvent) {
		steppers := make([]EdgeStepper, edges)
		for i := range steppers {
			f := newFakeStepper(i, 6)
			if i == 1 {
				f.failAt = failAt
				steppers[i] = &retryStepper{fakeStepper: f, retriesPerSlot: 2}
			} else {
				steppers[i] = f
			}
		}
		cfg := testConfig(edges, horizon)
		cfg.Workers = workers
		cfg.Policy = Degrade
		var events []downEvent
		cfg.OnEdgeDown = func(edge, slot int, err error) {
			events = append(events, downEvent{edge, slot})
		}
		res, err := Run(cfg, testController(t, edges, 4, horizon), steppers)
		if err != nil {
			t.Fatal(err)
		}
		return res, events
	}

	res, events := runWith(1)
	if got, want := res.Downtime[1], horizon-failAt; got != want {
		t.Errorf("Downtime[1] = %d, want %d", got, want)
	}
	if got, want := res.DroppedSlots, horizon-failAt; got != want {
		t.Errorf("DroppedSlots = %d, want %d", got, want)
	}
	if !strings.Contains(res.DownErrors[1], "injected failure") {
		t.Errorf("DownErrors[1] = %q, want the stepper's error", res.DownErrors[1])
	}
	// The down slot keeps the retries the stepper burned; served slots add
	// theirs: failAt slots at 2 retries each plus the failing one.
	if got, want := res.Retries[1], (failAt+1)*2; got != want {
		t.Errorf("Retries[1] = %d, want %d", got, want)
	}
	if len(events) != 1 || events[0] != (downEvent{1, failAt}) {
		t.Errorf("OnEdgeDown events = %v, want exactly [{1 %d}]", events, failAt)
	}
	for i, row := range res.Selections {
		total := 0
		for _, c := range row {
			total += c
		}
		want := horizon
		if i == 1 {
			want = failAt
		}
		if total != want {
			t.Errorf("edge %d selections sum to %d, want %d", i, total, want)
		}
	}
	for i := range res.Downtime {
		if i != 1 && (res.Downtime[i] != 0 || res.DownErrors[i] != "") {
			t.Errorf("healthy edge %d shows fault accounting", i)
		}
	}

	// The degraded result is deterministic across worker counts.
	for _, workers := range []int{2, edges} {
		if got, _ := runWith(workers); !reflect.DeepEqual(res, got) {
			t.Errorf("workers=%d degraded run diverged from serial", workers)
		}
	}

	// The JSON export surfaces the fault counters on faulted runs.
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"downtime"`, `"droppedSlots"`, `"retries"`, `"downErrors"`} {
		if !strings.Contains(sb.String(), key) {
			t.Errorf("faulted JSON export missing %s", key)
		}
	}
}

// TestRunDegradeSurvivesPanic extends the panic-recovery contract to the
// Degrade policy: a panicking stepper is marked down like any failing one —
// the process survives, the pool drains, and the run completes without it.
func TestRunDegradeSurvivesPanic(t *testing.T) {
	const edges, horizon, panicAt = 4, 20, 7
	for _, workers := range []int{1, 2, edges} {
		steppers := make([]EdgeStepper, edges)
		for i := range steppers {
			f := newFakeStepper(i, 4)
			if i == 2 {
				steppers[i] = &panicStepper{fakeStepper: f, panicAt: panicAt}
			} else {
				steppers[i] = f
			}
		}
		cfg := testConfig(edges, horizon)
		cfg.Workers = workers
		cfg.Policy = Degrade
		done := make(chan *Result, 1)
		go func() {
			res, err := Run(cfg, testController(t, edges, 4, horizon), steppers)
			if err != nil {
				t.Errorf("workers=%d: %v", workers, err)
			}
			done <- res
		}()
		select {
		case res := <-done:
			if res == nil {
				return // error already reported
			}
			if got, want := res.Downtime[2], horizon-panicAt; got != want {
				t.Errorf("workers=%d: Downtime[2] = %d, want %d", workers, got, want)
			}
			if !strings.Contains(res.DownErrors[2], "stepper panic") {
				t.Errorf("workers=%d: DownErrors[2] = %q, want the recovered panic", workers, res.DownErrors[2])
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: Run deadlocked after stepper panic under Degrade", workers)
		}
	}
}

// TestRunDegradeAllEdgesDown drives every edge down and checks the run still
// completes with a fully-dropped tail instead of wedging or dividing by zero.
func TestRunDegradeAllEdgesDown(t *testing.T) {
	const edges, horizon, failAt = 2, 10, 3
	steppers := make([]EdgeStepper, edges)
	for i := range steppers {
		f := newFakeStepper(i, 8)
		f.failAt = failAt
		steppers[i] = f
	}
	cfg := testConfig(edges, horizon)
	cfg.Policy = Degrade
	res, err := Run(cfg, testController(t, edges, 4, horizon), steppers)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.DroppedSlots, edges*(horizon-failAt); got != want {
		t.Errorf("DroppedSlots = %d, want %d", got, want)
	}
	for t2 := failAt; t2 < horizon; t2++ {
		if res.WorkloadTotal[t2] != 0 {
			t.Errorf("slot %d served %d samples with all edges down", t2, res.WorkloadTotal[t2])
		}
		if res.Emissions[t2] != 0 {
			t.Errorf("slot %d emitted %v with all edges down", t2, res.Emissions[t2])
		}
	}
}
