package engine

import (
	"fmt"
	"sync"

	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/metrics"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// runSerial is the engine's historical single-loop implementation, retained
// verbatim as the reference oracle for the sharded reduction: the property
// test (sharded_test.go) pins RunSharded byte-identical to this path for
// random shard partitions and worker counts, including Degrade runs with
// injected faults. It is deliberately not exported and not used by any
// production caller — Run partitions into Shards and goes through
// RunSharded. Keep this in lockstep with any accounting change to
// RunSharded's fold (and vice versa); the property test fails loudly if the
// two drift.
func runSerial(cfg Config, ctrl *core.Controller, edges []EdgeStepper) (*Result, error) {
	if ctrl == nil {
		return nil, fmt.Errorf("engine: nil controller")
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("engine: no edges")
	}
	if ctrl.NumEdges() != len(edges) {
		return nil, fmt.Errorf("engine: controller has %d edges, got %d steppers", ctrl.NumEdges(), len(edges))
	}
	for i, e := range edges {
		if e == nil {
			return nil, fmt.Errorf("engine: nil stepper for edge %d", i)
		}
	}
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("engine: Horizon must be positive, got %d", cfg.Horizon)
	}
	if cfg.NumModels <= 0 {
		return nil, fmt.Errorf("engine: NumModels must be positive, got %d", cfg.NumModels)
	}
	if len(cfg.SwitchCosts) != len(edges) {
		return nil, fmt.Errorf("engine: %d switch costs for %d edges", len(cfg.SwitchCosts), len(edges))
	}
	if cfg.Prices == nil || cfg.Prices.Horizon() < cfg.Horizon {
		return nil, fmt.Errorf("engine: price series shorter than horizon")
	}
	meter, err := energy.NewMeter(cfg.EmissionRate)
	if err != nil {
		return nil, err
	}
	ledger, err := market.NewLedger(cfg.InitialCap)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:          cfg.Name,
		CumTotal:      make([]float64, cfg.Horizon),
		Emissions:     make([]float64, cfg.Horizon),
		Decisions:     make([]trading.Decision, cfg.Horizon),
		WorkloadTotal: make([]int, cfg.Horizon),
		Accuracy:      make([]float64, cfg.Horizon),
		Selections:    make([][]int, len(edges)),
		Downtime:      make([]int, len(edges)),
		Retries:       make([]int, len(edges)),
		DownErrors:    make([]string, len(edges)),
	}
	for i := range res.Selections {
		res.Selections[i] = make([]int, cfg.NumModels)
	}

	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > len(edges) {
		workers = len(edges)
	}

	obs := make([]Observation, len(edges))
	stepErrs := make([]error, len(edges))
	losses := make([]float64, len(edges))
	served := make([]bool, len(edges))
	down := make([]bool, len(edges))
	totalCorrect, totalSamples := 0, 0

	for t := 0; t < cfg.Horizon; t++ {
		arms, err := ctrl.SelectModels()
		if err != nil {
			return nil, err
		}
		downloads, err := ctrl.Downloads()
		if err != nil {
			return nil, err
		}

		if workers == 1 {
			for i, e := range edges {
				if down[i] {
					obs[i], stepErrs[i] = Observation{}, nil
					continue
				}
				obs[i], stepErrs[i] = safeStep(e, t, arms[i], downloads[i])
			}
		} else {
			var wg sync.WaitGroup
			jobs := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range jobs {
						obs[i], stepErrs[i] = safeStep(edges[i], t, arms[i], downloads[i])
					}
				}()
			}
			for i := range edges {
				if down[i] {
					obs[i], stepErrs[i] = Observation{}, nil
					continue
				}
				jobs <- i
			}
			close(jobs)
			wg.Wait()
		}
		// Failures are handled serially in edge-index order, so the outcome
		// (the aborting error under FailFast, the down-marking order under
		// Degrade) is deterministic regardless of step completion order.
		for i, err := range stepErrs {
			if err == nil {
				continue
			}
			if cfg.Policy == FailFast {
				return nil, fmt.Errorf("engine: edge %d slot %d: %w", i, t, err)
			}
			// Degrade: keep the retries the stepper burned, zero the rest of
			// the failed observation, and mark the edge down for the
			// remainder of the run.
			down[i] = true
			res.DownErrors[i] = err.Error()
			obs[i] = Observation{Retries: obs[i].Retries}
			stepErrs[i] = nil
			if cfg.OnEdgeDown != nil {
				cfg.OnEdgeDown(i, t, err)
			}
		}

		// Cross-edge accounting is serial and in edge-index order so the
		// result is independent of step completion order. A down edge
		// contributes the well-defined fallback: zero samples, zero energy,
		// no switch charge (nothing was shipped), and no bandit feedback.
		var slotCost metrics.CostBreakdown
		slotEmission := 0.0
		slotCorrect, slotSamples := 0, 0
		for i := range edges {
			o := obs[i]
			losses[i] = o.Loss
			served[i] = !down[i]
			res.Retries[i] += o.Retries
			if down[i] {
				res.Downtime[i]++
				res.DroppedSlots++
				continue
			}
			res.Selections[i][arms[i]]++
			slotCost.InferLoss += o.InferLoss
			slotCost.Compute += o.Compute
			if downloads[i] {
				slotCost.Switching += cfg.SwitchCosts[i]
				res.Switches++
				slotEmission += meter.RecordTransfer(o.TransferKWh)
			}
			slotEmission += meter.RecordInference(o.InferKWh)
			slotCorrect += o.Correct
			slotSamples += o.Samples
		}

		q := trading.Quote{Buy: cfg.Prices.Buy[t], Sell: cfg.Prices.Sell[t]}
		d, err := ctrl.DecideTrade(q)
		if err != nil {
			return nil, err
		}
		if err := ledger.Buy(d.Buy, q.Buy); err != nil {
			return nil, err
		}
		if err := ledger.Sell(d.Sell, q.Sell); err != nil {
			return nil, err
		}
		if err := ctrl.CompleteSlotServed(losses, served, slotEmission); err != nil {
			return nil, err
		}
		slotCost.Trading = d.Cost(q)

		res.Cost.Add(slotCost)
		res.CumTotal[t] = res.Cost.Total()
		res.Emissions[t] = slotEmission
		res.Decisions[t] = d
		res.WorkloadTotal[t] = slotSamples
		if slotSamples > 0 {
			res.Accuracy[t] = float64(slotCorrect) / float64(slotSamples)
		}
		totalCorrect += slotCorrect
		totalSamples += slotSamples
	}
	if totalSamples > 0 {
		res.OverallAccuracy = float64(totalCorrect) / float64(totalSamples)
	}
	fit, err := trading.Fit(res.Emissions, res.Decisions, cfg.InitialCap)
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	if ledger.Bought() > 0 {
		res.AvgBuyPrice = ledger.Spend() / ledger.Bought()
	}
	return res, nil
}
