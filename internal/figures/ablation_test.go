package figures

import (
	"testing"
)

func TestAblationSubstrateShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a neural zoo")
	}
	o := Options{Runs: 1, Seed: 4, Edges: 4, Horizon: 120}
	fig, err := AblationSubstrate(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	// The headline conclusion — Ours beats the *learning* baselines — must
	// hold on both substrates. Greedy (index 0) is substrate-fragile: when
	// the cheapest model happens to be near-best (as on the easy trained
	// MNIST zoo) Greedy wins, exactly the deviation EXPERIMENTS.md
	// documents for Fig. 13; we log it rather than assert it.
	for _, label := range []string{"Surrogate", "TrainedNN"} {
		s, ok := series[label]
		if !ok {
			t.Fatalf("missing %s series", label)
		}
		t.Logf("%s reductions (Greedy-LY, TINF-LY, UCB-LY): %v", label, s.Y)
		for i, red := range s.Y {
			if i == 0 {
				continue // Greedy-LY: reported, not asserted
			}
			if red <= 0 {
				t.Errorf("%s: learning baseline %d reduction = %v, want positive", label, i, red)
			}
		}
	}
}

func TestAblationRegistry(t *testing.T) {
	names := AblationNames()
	want := []string{"blocking", "prediction", "stepsizes", "substrate"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestAblationBlockingShape(t *testing.T) {
	o := fastOpts()
	o.Runs = 2
	fig, err := AblationBlocking(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	blocked := series["Blocked"]
	unblocked := series["Unblocked"]
	n := len(blocked.Y)
	// At the largest weight, blocking must save a large factor.
	if blocked.Y[n-1]*2 > unblocked.Y[n-1] {
		t.Errorf("blocking saves too little at weight 16: %v vs %v",
			blocked.Y[n-1], unblocked.Y[n-1])
	}
	// The blocked learner's switching cost grows sub-linearly with weight:
	// a 16x weight must cost well under 16x.
	if blocked.Y[n-1] > blocked.Y[0]*8 {
		t.Errorf("blocked switching not sublinear in weight: %v", blocked.Y)
	}
}

func TestAblationStepSizesShape(t *testing.T) {
	o := fastOpts()
	o.Runs = 2
	fig, err := AblationStepSizes(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	fit := series["Fit"]
	// Fit decreases as steps grow (more aggressive constraint coverage).
	if fit.Y[0] < fit.Y[len(fit.Y)-1] {
		t.Errorf("fit should shrink with larger steps: %v", fit.Y)
	}
	if _, ok := series["TradingCost"]; !ok {
		t.Error("missing TradingCost series")
	}
}

func TestAblationPricePredictionShape(t *testing.T) {
	o := fastOpts()
	o.Runs = 2
	fig, err := AblationPricePrediction(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	vanilla := series["Vanilla"]
	pred := series["Predictive"]
	// Across the sweep, prediction must not lose more than 5% in total.
	var vSum, pSum float64
	for i := range vanilla.Y {
		vSum += vanilla.Y[i]
		pSum += pred.Y[i]
	}
	t.Logf("trading cost: vanilla=%.2f predictive=%.2f", vSum, pSum)
	if pSum > vSum*1.05 {
		t.Errorf("predictive trading cost %v clearly above vanilla %v", pSum, vSum)
	}
}
