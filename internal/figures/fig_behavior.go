package figures

import (
	"github.com/carbonedge/carbonedge/internal/metrics"
	"github.com/carbonedge/carbonedge/internal/sim"
)

// Fig8SelectionHistogram reproduces Fig. 8: for a single randomly chosen
// edge, the number of times each model is selected against that model's
// expected loss. Ours selects low-loss models most; Greedy sticks to the
// cheapest; Offline sticks to the best.
func Fig8SelectionHistogram(o Options) (*Figure, error) {
	o = o.normalized()
	cfg := sim.DefaultConfig(o.Edges)
	cfg.Horizon = o.Horizon
	cfg.Seed = o.Seed
	s, err := surrogateScenario(cfg)
	if err != nil {
		return nil, err
	}
	edge := newRNG(o.Seed, "fig8-edge").Intn(cfg.Edges)

	fig := &Figure{
		ID:     "Fig8",
		Title:  "Selections per model vs expected loss (one edge)",
		XLabel: "expected loss",
		YLabel: "selections",
	}
	// X axis: per-model expected loss, in model-index order.
	x := make([]float64, s.NumModels())
	for n := range x {
		x[n] = s.Zoo.MeanLoss(n)
	}
	// The three combos share the scenario; ComboViews hands each a
	// pre-drawn stream window so they can run concurrently with draws
	// identical to the sequential order.
	names := []string{"Ours", "Greedy-LY", "Offline"}
	views := s.ComboViews(len(names))
	results := make([]*sim.Result, len(names))
	err = runJobs(o.Workers, len(names), func(idx int) error {
		res, err := runCombo(views[idx], names[idx])
		if err != nil {
			return err
		}
		results[idx] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range names {
		ys := make([]float64, s.NumModels())
		for n := range ys {
			ys[n] = float64(results[ni].Selections[edge][n])
		}
		fig.Series = append(fig.Series, Series{Label: name, X: x, Y: ys})
	}
	return fig, nil
}

// Fig9TradingVolume reproduces Fig. 9: the normalized net allowance
// purchase per slot against the inference workload, plus the average unit
// purchase price per scheme. Ours tracks the workload; UCB-Ran and UCB-TH
// do not.
func Fig9TradingVolume(o Options) (*Figure, error) {
	o = o.normalized()
	names := []string{"Ours", "UCB-Ran", "UCB-TH"}
	curves, err := meanCurves(o, names, func(r *sim.Result) []float64 {
		return r.NetBuySeries()
	}, nil)
	if err != nil {
		return nil, err
	}
	workload, err := meanCurves(o, []string{"Ours"}, func(r *sim.Result) []float64 {
		out := make([]float64, len(r.WorkloadTotal))
		for i, w := range r.WorkloadTotal {
			out[i] = float64(w)
		}
		return out
	}, nil)
	if err != nil {
		return nil, err
	}

	fig := &Figure{
		ID:     "Fig9",
		Title:  "Normalized net allowance purchase vs workload",
		XLabel: "slot",
		YLabel: "normalized value",
	}
	x := slotAxis(o.Horizon)
	wNorm := metrics.Normalize(workload["Ours"])
	fig.Series = append(fig.Series, Series{Label: "Workload", X: x, Y: wNorm[0]})
	for _, name := range names {
		norm := metrics.Normalize(curves[name])
		fig.Series = append(fig.Series, Series{Label: name, X: x, Y: norm[0]})
	}

	// Companion series: average unit purchase price per scheme (single X
	// point per scheme index).
	priceX := make([]float64, len(names))
	priceY := make([]float64, len(names))
	for i, name := range names {
		avg, err := avgUnitBuyPrice(o, name)
		if err != nil {
			return nil, err
		}
		priceX[i] = float64(i)
		priceY[i] = avg
	}
	fig.Series = append(fig.Series, Series{Label: "UnitBuyPrice", X: priceX, Y: priceY})
	return fig, nil
}

// avgUnitBuyPrice averages Result.AvgBuyPrice over runs, one independent
// (fresh-scenario) job per run, reduced in run order.
func avgUnitBuyPrice(o Options, name string) (float64, error) {
	o = o.normalized()
	results := make([]*sim.Result, o.Runs)
	err := runJobs(o.Workers, o.Runs, func(r int) error {
		s, err := surrogateScenario(runScenarioCfg(o, r, nil))
		if err != nil {
			return err
		}
		res, err := runCombo(s, name)
		if err != nil {
			return err
		}
		results[r] = res
		return nil
	})
	if err != nil {
		return 0, err
	}
	total, counted := 0.0, 0
	for _, res := range results {
		if res.AvgBuyPrice > 0 {
			total += res.AvgBuyPrice
			counted++
		}
	}
	if counted == 0 {
		return 0, nil
	}
	return total / float64(counted), nil
}
