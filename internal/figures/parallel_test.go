package figures

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

// TestFiguresWorkerInvariance pins the core contract of the parallel
// generators: the rendered output is byte-identical at any worker count.
// The set below covers every job-decomposition shape — a single cost cell
// (Fig3), a (spec, point) grid (Fig5), shared-scenario ComboViews (Fig8),
// an Offline-then-combo pair per job (Fig10), and per-run fresh scenarios
// with surrogate/trained substrates (ablation substrate is too slow here;
// stepsizes covers per-run results reduction).
func TestFiguresWorkerInvariance(t *testing.T) {
	o := Options{Runs: 2, Seed: 1, Edges: 3, Horizon: 40}
	gens := map[string]func(Options) (*Figure, error){
		"Fig3":         Fig3CumulativeCost,
		"Fig5":         Fig5SwitchWeight,
		"Fig8":         Fig8SelectionHistogram,
		"Fig10":        Fig10Regret,
		"AblStepSizes": AblationStepSizes,
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			serial := o
			serial.Workers = 1
			a, err := gen(serial)
			if err != nil {
				t.Fatal(err)
			}
			wide := o
			wide.Workers = 4
			b, err := gen(wide)
			if err != nil {
				t.Fatal(err)
			}
			ra, rb := Render(a), Render(b)
			if ra != rb {
				t.Fatalf("workers=1 vs workers=4 rendered output differs:\n--- serial ---\n%s\n--- parallel ---\n%s", ra, rb)
			}
		})
	}
}

// TestRunJobsFirstErrorInIndexOrder: regardless of which job fails first in
// wall-clock time, the reported error is the lowest-index failure — what the
// serial loop would have returned.
func TestRunJobsFirstErrorInIndexOrder(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 4} {
		err := runJobs(workers, 8, func(idx int) error {
			switch idx {
			case 2:
				return errLow
			case 6:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: got %v, want first-index error %v", workers, err, errLow)
		}
	}
}

// TestRunJobsRunsEveryIndex: all n jobs run exactly once at any worker
// count, including workers > n.
func TestRunJobsRunsEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var counts [10]int32
		if err := runJobs(workers, len(counts), func(idx int) error {
			atomic.AddInt32(&counts[idx], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestOptionsWorkersNormalized: non-positive Workers clamp to 1.
func TestOptionsWorkersNormalized(t *testing.T) {
	for _, w := range []int{-1, 0} {
		o := Options{Runs: 1, Seed: 1, Edges: 2, Horizon: 10, Workers: w}
		if got := o.normalized().Workers; got != 1 {
			t.Fatalf("Workers=%d normalized to %d, want 1", w, got)
		}
	}
	o := Options{Runs: 1, Seed: 1, Edges: 2, Horizon: 10, Workers: 7}
	if got := o.normalized().Workers; got != 7 {
		t.Fatal(fmt.Sprintf("Workers=7 normalized to %d, want 7", got))
	}
}
