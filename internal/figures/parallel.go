package figures

import (
	"sync"

	"github.com/carbonedge/carbonedge/internal/sim"
)

// Parallel figure generation. Every figure decomposes into independent
// (scenario, run, scheme) simulation jobs: each job owns its scenario (or a
// pre-drawn ComboView of a shared one) and every RNG it touches, so jobs
// can run concurrently without coordination. Results land in
// index-addressed slots and are reduced serially in the canonical order of
// the old sequential loops, so every float accumulation — and therefore
// every rendered figure — is bit-for-bit identical at any worker count
// (TestFiguresWorkerInvariance pins this).

// runJobs executes jobs 0..n-1 on up to workers goroutines. Results must
// be written to index-addressed slots by the job itself. On failure the
// first error in index order is returned — the same error the serial loop
// would have hit first — regardless of completion order.
func runJobs(workers, n int, job func(idx int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}
	idxCh := make(chan int)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runScenarioCfg builds the run-r config for the normalized options.
func runScenarioCfg(o Options, r int, mutate func(*sim.Config)) sim.Config {
	cfg := sim.DefaultConfig(o.Edges)
	cfg.Horizon = o.Horizon
	cfg.Seed = o.Seed + int64(r)
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// costSpec is one cell of a total-cost grid: a combo name plus a config
// mutation.
type costSpec struct {
	name   string
	mutate func(*sim.Config)
}

// avgTotalCosts evaluates every spec's run-averaged total cost, fanning
// the (spec, run) grid out over o.Workers. Each job materializes a fresh
// scenario (seed o.Seed+r) and plays one combo; per-spec sums accumulate
// in run order, exactly like the serial loop this replaced.
func avgTotalCosts(o Options, specs []costSpec) ([]float64, error) {
	o = o.normalized()
	vals := make([]float64, len(specs)*o.Runs)
	err := runJobs(o.Workers, len(vals), func(idx int) error {
		si, r := idx/o.Runs, idx%o.Runs
		s, err := surrogateScenario(runScenarioCfg(o, r, specs[si].mutate))
		if err != nil {
			return err
		}
		res, err := runCombo(s, specs[si].name)
		if err != nil {
			return err
		}
		vals[idx] = res.Cost.Total()
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(specs))
	for si := range specs {
		total := 0.0
		for r := 0; r < o.Runs; r++ {
			total += vals[si*o.Runs+r]
		}
		out[si] = total / float64(o.Runs)
	}
	return out, nil
}
