package figures

import (
	"sort"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/metrics"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/sim"
)

// The ablations quantify the design choices DESIGN.md calls out: what the
// block schedule buys under switching cost, how sensitive Algorithm 2 is to
// its step sizes, and whether the price-prediction extension (the paper's
// future work) pays off.

// Ablations returns the named ablation generators.
func Ablations() map[string]func(Options) (*Figure, error) {
	return map[string]func(Options) (*Figure, error){
		"blocking":   AblationBlocking,
		"stepsizes":  AblationStepSizes,
		"prediction": AblationPricePrediction,
		"substrate":  AblationSubstrate,
	}
}

// AblationNames returns the ablation keys in sorted order.
func AblationNames() []string {
	m := Ablations()
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// AblationBlocking isolates the paper's Insight 1: the same Tsallis-INF
// learner with and without the block schedule, under a sweep of the
// switching-cost weight. Blocking must keep the cumulative switching cost
// bounded while the unblocked learner's grows roughly linearly with the
// weight.
func AblationBlocking(o Options) (*Figure, error) {
	o = o.normalized()
	weights := []float64{1, 2, 4, 8, 16}
	fig := &Figure{
		ID:     "AblBlocking",
		Title:  "Switching cost: blocked vs unblocked Tsallis-INF",
		XLabel: "switch weight",
		YLabel: "cumulative switching cost",
	}
	entries := []struct {
		label  string
		policy sim.PolicyFactory
	}{
		{"Blocked", sim.PolicyOurs},
		{"Unblocked", sim.PolicyTsallisINF},
	}
	vals := make([]float64, len(entries)*len(weights)*o.Runs)
	err := runJobs(o.Workers, len(vals), func(idx int) error {
		ei := idx / (len(weights) * o.Runs)
		xi := idx / o.Runs % len(weights)
		r := idx % o.Runs
		s, err := surrogateScenario(runScenarioCfg(o, r, func(c *sim.Config) { c.SwitchWeight = weights[xi] }))
		if err != nil {
			return err
		}
		res, err := sim.Run(s, entries[ei].label, entries[ei].policy, sim.TraderOurs)
		if err != nil {
			return err
		}
		vals[idx] = res.Cost.Switching
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ei, entry := range entries {
		ys := make([]float64, len(weights))
		for xi := range weights {
			var sum float64
			for r := 0; r < o.Runs; r++ {
				sum += vals[(ei*len(weights)+xi)*o.Runs+r]
			}
			ys[xi] = sum / float64(o.Runs)
		}
		fig.Series = append(fig.Series, Series{Label: entry.label, X: weights, Y: ys})
	}
	return fig, nil
}

// AblationStepSizes sweeps a common multiplier on Algorithm 2's step sizes
// gamma1/gamma2 and reports trading cost and fit: too-small steps leave the
// constraint uncovered (large fit), too-large steps churn volume (higher
// cost). The Theorem-2 defaults sit in the flat middle.
func AblationStepSizes(o Options) (*Figure, error) {
	o = o.normalized()
	multipliers := []float64{0.25, 0.5, 1, 2, 4}
	results := make([]*sim.Result, len(multipliers)*o.Runs)
	err := runJobs(o.Workers, len(results), func(idx int) error {
		xi, r := idx/o.Runs, idx%o.Runs
		s, err := surrogateScenario(runScenarioCfg(o, r, nil))
		if err != nil {
			return err
		}
		res, err := sim.Run(s, "Ours", sim.PolicyOurs, sim.TraderOursScaled(multipliers[xi]))
		if err != nil {
			return err
		}
		results[idx] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	costs := make([]float64, len(multipliers))
	fits := make([]float64, len(multipliers))
	for xi := range multipliers {
		for r := 0; r < o.Runs; r++ {
			res := results[xi*o.Runs+r]
			costs[xi] += res.Cost.Trading / float64(o.Runs)
			fits[xi] += res.Fit / float64(o.Runs)
		}
	}
	return &Figure{
		ID:     "AblStepSizes",
		Title:  "Algorithm 2 sensitivity to step-size scaling",
		XLabel: "gamma multiplier",
		YLabel: "value",
		Series: []Series{
			{Label: "TradingCost", X: multipliers, Y: costs},
			{Label: "Fit", X: multipliers, Y: fits},
		},
	}, nil
}

// AblationSubstrate checks that the headline conclusion — Ours beats the
// strongest baseline family — is substrate-independent: the same comparison
// on the surrogate (parametric-loss) zoo and on a genuinely trained
// neural-network zoo. Series report the fractional cost reduction of Ours
// against each baseline (positive = Ours cheaper), one X point per
// baseline, for the two substrates.
func AblationSubstrate(o Options) (*Figure, error) {
	o = o.normalized()
	baselines := []string{"Greedy-LY", "TINF-LY", "UCB-LY"}
	fig := &Figure{
		ID:     "AblSubstrate",
		Title:  "Ours vs baselines: surrogate vs trained-NN loss substrate",
		XLabel: "baseline index",
		YLabel: "cost reduction of Ours",
	}
	x := make([]float64, len(baselines))
	for i := range x {
		x[i] = float64(i)
	}

	run := func(zoo models.Zoo, seed int64) (map[string]float64, error) {
		cfg := sim.DefaultConfig(o.Edges)
		cfg.Horizon = o.Horizon
		cfg.Seed = seed
		s, err := sim.NewScenario(cfg, zoo)
		if err != nil {
			return nil, err
		}
		totals := make(map[string]float64, len(baselines)+1)
		for _, name := range append([]string{"Ours"}, baselines...) {
			res, err := runCombo(s, name)
			if err != nil {
				return nil, err
			}
			totals[name] = res.Cost.Total()
		}
		return totals, nil
	}

	// Surrogate substrate: one job per run, each owning its zoo and
	// scenario (the combos within a run stay sequential — they consume
	// consecutive windows of the run's streams).
	surrogateTotals := make([]map[string]float64, o.Runs)
	err := runJobs(o.Workers, o.Runs, func(r int) error {
		zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(o.Seed+int64(r), "zoo"))
		if err != nil {
			return err
		}
		totals, err := run(zoo, o.Seed+int64(r))
		if err != nil {
			return err
		}
		surrogateTotals[r] = totals
		return nil
	})
	if err != nil {
		return nil, err
	}
	surrogate := make([]float64, len(baselines))
	for r := 0; r < o.Runs; r++ {
		for i, name := range baselines {
			surrogate[i] += metrics.Reduction(surrogateTotals[r]["Ours"], surrogateTotals[r][name]) / float64(o.Runs)
		}
	}
	fig.Series = append(fig.Series, Series{Label: "Surrogate", X: x, Y: surrogate})

	// Trained-NN substrate (one zoo, kept small; workload/seeds vary). The
	// zoo is shared across run jobs — read-only during simulation.
	zooCfg := models.TrainedZooConfig{
		Dataset: dataset.MNISTLike,
		TrainN:  500, TestN: 500, Epochs: 2, LR: 0.05, BatchSize: 16,
	}
	zoo, err := models.CachedTrainedZoo(zooCfg, o.Seed, "abl-zoo")
	if err != nil {
		return nil, err
	}
	trainedTotals := make([]map[string]float64, o.Runs)
	err = runJobs(o.Workers, o.Runs, func(r int) error {
		totals, err := run(zoo, o.Seed+int64(r))
		if err != nil {
			return err
		}
		trainedTotals[r] = totals
		return nil
	})
	if err != nil {
		return nil, err
	}
	trained := make([]float64, len(baselines))
	for r := 0; r < o.Runs; r++ {
		for i, name := range baselines {
			trained[i] += metrics.Reduction(trainedTotals[r]["Ours"], trainedTotals[r][name]) / float64(o.Runs)
		}
	}
	fig.Series = append(fig.Series, Series{Label: "TrainedNN", X: x, Y: trained})
	return fig, nil
}

// AblationPricePrediction compares vanilla Algorithm 2 against the
// AR(1)-predictive variant (the paper's future-work extension) on scenarios
// with strongly mean-reverting (predictable) allowance prices and a
// structural deficit. Reported series: trading cost and fit per variant
// across a volatility sweep.
func AblationPricePrediction(o Options) (*Figure, error) {
	o = o.normalized()
	volatilities := []float64{0.35, 0.7, 1.4}
	fig := &Figure{
		ID:     "AblPrediction",
		Title:  "Vanilla vs AR(1)-predictive primal-dual trading",
		XLabel: "price volatility",
		YLabel: "trading cost",
	}
	entries := []struct {
		label  string
		trader sim.TraderFactory
	}{
		{"Vanilla", sim.TraderOurs},
		{"Predictive", sim.TraderPredictive},
	}
	vals := make([]float64, len(entries)*len(volatilities)*o.Runs)
	err := runJobs(o.Workers, len(vals), func(idx int) error {
		ei := idx / (len(volatilities) * o.Runs)
		xi := idx / o.Runs % len(volatilities)
		r := idx % o.Runs
		s, err := surrogateScenario(runScenarioCfg(o, r, func(c *sim.Config) {
			c.Prices = market.DefaultPriceConfig()
			c.Prices.Reversion = 0.25 // predictable regime
			c.Prices.Volatility = volatilities[xi]
			// A tight cap forces sustained buying so price timing
			// matters.
			c.InitialCap = 0.5
		}))
		if err != nil {
			return err
		}
		res, err := sim.Run(s, entries[ei].label, sim.PolicyOurs, entries[ei].trader)
		if err != nil {
			return err
		}
		vals[idx] = res.Cost.Trading
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ei, entry := range entries {
		ys := make([]float64, len(volatilities))
		for xi := range volatilities {
			var sum float64
			for r := 0; r < o.Runs; r++ {
				sum += vals[(ei*len(volatilities)+xi)*o.Runs+r]
			}
			ys[xi] = sum / float64(o.Runs)
		}
		fig.Series = append(fig.Series, Series{Label: entry.label, X: volatilities, Y: ys})
	}
	return fig, nil
}
