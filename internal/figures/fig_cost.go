package figures

import (
	"github.com/carbonedge/carbonedge/internal/metrics"
	"github.com/carbonedge/carbonedge/internal/sim"
)

// fig3Combos is the subset of schemes the paper plots in Fig. 3 (for
// visualization clarity it omits some of the twelve combinations).
var fig3Combos = []string{"Ours", "Ran-Ran", "Greedy-LY", "TINF-Ran", "UCB-LY", "Offline"}

// Fig3CumulativeCost reproduces Fig. 3: normalized cumulative total cost
// over time with 10 edges for the main schemes plus Offline.
func Fig3CumulativeCost(o Options) (*Figure, error) {
	o = o.normalized()
	curves, err := meanCurves(o, fig3Combos, func(r *sim.Result) []float64 {
		return r.CumTotal
	}, nil)
	if err != nil {
		return nil, err
	}
	// Normalize all curves jointly, as the paper does.
	ordered := make([][]float64, len(fig3Combos))
	for i, name := range fig3Combos {
		ordered[i] = curves[name]
	}
	norm := metrics.Normalize(ordered...)
	fig := &Figure{
		ID:     "Fig3",
		Title:  "Normalized cumulative total cost over time (10 edges)",
		XLabel: "slot",
		YLabel: "normalized cumulative cost",
	}
	x := slotAxis(o.Horizon)
	for i, name := range fig3Combos {
		fig.Series = append(fig.Series, Series{Label: name, X: x, Y: norm[i]})
	}
	return fig, nil
}

// fig4Combos is the bar set of Fig. 4.
var fig4Combos = []string{
	"Ours",
	"Ran-Ran", "Ran-LY",
	"Greedy-Ran", "Greedy-LY",
	"TINF-Ran", "TINF-LY",
	"UCB-Ran", "UCB-LY",
	"Offline",
}

// Fig4CostVsEdges reproduces Fig. 4: total cost as the number of edges grows
// from 10 to 50, normalized by the largest value.
func Fig4CostVsEdges(o Options) (*Figure, error) {
	o = o.normalized()
	edgeCounts := []int{10, 20, 30, 40, 50}
	fig := &Figure{
		ID:     "Fig4",
		Title:  "Normalized total cost vs number of edges",
		XLabel: "edges",
		YLabel: "normalized total cost",
	}
	specs := make([]costSpec, 0, len(edgeCounts)*len(fig4Combos))
	for _, edges := range edgeCounts {
		edges := edges
		for _, name := range fig4Combos {
			specs = append(specs, costSpec{name: name, mutate: func(c *sim.Config) {
				c.Edges = edges
				// Cap scales with system size so the trading subproblem
				// keeps the same character at every scale.
				c.InitialCap = sim.DefaultConfig(10).InitialCap * float64(edges) / 10
			}})
		}
	}
	vals, err := avgTotalCosts(o, specs)
	if err != nil {
		return nil, err
	}
	raw := make([][]float64, len(fig4Combos))
	for i := range raw {
		raw[i] = make([]float64, len(edgeCounts))
	}
	for xi := range edgeCounts {
		for ci := range fig4Combos {
			raw[ci][xi] = vals[xi*len(fig4Combos)+ci]
		}
	}
	norm := metrics.Normalize(raw...)
	x := make([]float64, len(edgeCounts))
	for i, e := range edgeCounts {
		x[i] = float64(e)
	}
	for ci, name := range fig4Combos {
		fig.Series = append(fig.Series, Series{Label: name, X: x, Y: norm[ci]})
	}
	return fig, nil
}

// fig5Combos follows the paper's Fig. 5 line-up.
var fig5Combos = []string{"Ours", "Greedy-LY", "TINF-LY", "UCB-LY", "Offline"}

// Fig5SwitchWeight reproduces Fig. 5: total cost as the weight on the
// switching cost grows; Ours stays nearly flat because its block lengths
// grow with u_i.
func Fig5SwitchWeight(o Options) (*Figure, error) {
	o = o.normalized()
	weights := []float64{1, 2, 4, 8, 16}
	fig := &Figure{
		ID:     "Fig5",
		Title:  "Total cost vs switching-cost weight",
		XLabel: "weight",
		YLabel: "total cost",
	}
	specs := make([]costSpec, 0, len(fig5Combos)*len(weights))
	for _, name := range fig5Combos {
		for _, w := range weights {
			weight := w
			specs = append(specs, costSpec{name: name, mutate: func(c *sim.Config) { c.SwitchWeight = weight }})
		}
	}
	vals, err := avgTotalCosts(o, specs)
	if err != nil {
		return nil, err
	}
	for ci, name := range fig5Combos {
		fig.Series = append(fig.Series, Series{Label: name, X: weights, Y: vals[ci*len(weights) : (ci+1)*len(weights)]})
	}
	return fig, nil
}

// Fig6EmissionRate reproduces Fig. 6: total cost as the carbon emission rate
// rho grows (multiples of the paper's 500 g/kWh). The sweep stays in the
// regime where the cost of honestly offsetting the deficit is below the
// inference advantage of the learned placement; beyond it, schemes that
// simply ignore the neutrality constraint (huge fit, see Fig. 11) would
// win the raw-cost comparison by construction.
func Fig6EmissionRate(o Options) (*Figure, error) {
	o = o.normalized()
	multipliers := []float64{0.5, 1, 1.5, 2, 2.5}
	combos := []string{"Ours", "UCB-Ran", "UCB-TH", "UCB-LY", "Offline"}
	fig := &Figure{
		ID:     "Fig6",
		Title:  "Total cost vs carbon emission rate (x500 g/kWh)",
		XLabel: "rate multiplier",
		YLabel: "total cost",
	}
	specs := make([]costSpec, 0, len(combos)*len(multipliers))
	for _, name := range combos {
		for _, m := range multipliers {
			mult := m
			specs = append(specs, costSpec{name: name, mutate: func(c *sim.Config) { c.EmissionRate *= mult }})
		}
	}
	vals, err := avgTotalCosts(o, specs)
	if err != nil {
		return nil, err
	}
	for ci, name := range combos {
		fig.Series = append(fig.Series, Series{Label: name, X: multipliers, Y: vals[ci*len(multipliers) : (ci+1)*len(multipliers)]})
	}
	return fig, nil
}

// Fig7CarbonCap reproduces Fig. 7: total cost as the initial carbon cap R
// grows. Caps are expressed relative to the default scenario's total
// emissions so the sweep crosses the deficit/surplus boundary like the
// paper's 100..500 range does.
func Fig7CarbonCap(o Options) (*Figure, error) {
	o = o.normalized()
	base := sim.DefaultConfig(o.Edges).InitialCap
	caps := []float64{0.2 * base, 0.6 * base, base, 1.4 * base, 1.8 * base}
	combos := []string{"Ours", "UCB-Ran", "UCB-TH", "UCB-LY", "Offline"}
	fig := &Figure{
		ID:     "Fig7",
		Title:  "Total cost vs initial carbon cap",
		XLabel: "cap (g)",
		YLabel: "total cost",
	}
	specs := make([]costSpec, 0, len(combos)*len(caps))
	for _, name := range combos {
		for _, r := range caps {
			cap := r
			specs = append(specs, costSpec{name: name, mutate: func(c *sim.Config) { c.InitialCap = cap }})
		}
	}
	vals, err := avgTotalCosts(o, specs)
	if err != nil {
		return nil, err
	}
	for ci, name := range combos {
		fig.Series = append(fig.Series, Series{Label: name, X: caps, Y: vals[ci*len(caps) : (ci+1)*len(caps)]})
	}
	return fig, nil
}
