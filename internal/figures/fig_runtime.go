package figures

import (
	"github.com/carbonedge/carbonedge/internal/bandit"
	"github.com/carbonedge/carbonedge/internal/sim"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// Fig14AlgRuntime reproduces Fig. 14: wall-clock execution time per time
// slot of Algorithm 1 (all edges) and Algorithm 2 as the number of edges
// grows. The paper reports seconds per 15-minute slot on a commodity CPU;
// our pure-Go implementation runs in microseconds, but the shape — linear
// growth for Algorithm 1 in the edge count, constant for Algorithm 2 — is
// the claim being reproduced.
func Fig14AlgRuntime(o Options) (*Figure, error) {
	o = o.normalized()
	edgeCounts := []float64{10, 20, 30, 40, 50}
	alg1 := make([]float64, len(edgeCounts))
	alg2 := make([]float64, len(edgeCounts))
	for xi, ec := range edgeCounts {
		edges := int(ec)
		cfg := sim.DefaultConfig(edges)
		cfg.Horizon = o.Horizon
		cfg.Seed = o.Seed
		s, err := surrogateScenario(cfg)
		if err != nil {
			return nil, err
		}
		// Algorithm 1: time SelectArm+Update per slot across all edges.
		policies := make([]*bandit.BlockedTsallisINF, edges)
		for i := range policies {
			p, err := bandit.NewBlockedTsallisINF(s.NumModels(), s.Delays[i], newRNG(o.Seed, "fig14"))
			if err != nil {
				return nil, err
			}
			policies[i] = p
		}
		start := o.Clock()
		for t := 0; t < o.Horizon; t++ {
			for i := range policies {
				arm := policies[i].SelectArm()
				policies[i].Update(s.Zoo.MeanLoss(arm))
			}
		}
		alg1[xi] = o.Clock().Sub(start).Seconds() / float64(o.Horizon)

		// Algorithm 2: time Decide+Observe per slot.
		trader, err := sim.TraderOurs(s, newRNG(o.Seed, "fig14-trader"))
		if err != nil {
			return nil, err
		}
		emission := s.MeanEmissionPerSlot()
		start = o.Clock()
		for t := 0; t < o.Horizon; t++ {
			q := trading.Quote{Buy: s.Prices.Buy[t], Sell: s.Prices.Sell[t]}
			d := trader.Decide(t, q)
			trader.Observe(t, emission, q, d)
		}
		alg2[xi] = o.Clock().Sub(start).Seconds() / float64(o.Horizon)
	}
	return &Figure{
		ID:     "Fig14",
		Title:  "Algorithm running time per slot vs number of edges",
		XLabel: "edges",
		YLabel: "seconds/slot",
		Series: []Series{
			{Label: "Algorithm1", X: edgeCounts, Y: alg1},
			{Label: "Algorithm2", X: edgeCounts, Y: alg2},
		},
	}, nil
}
