package figures

import (
	"os"
	"sort"
	"strings"
	"testing"
)

// TestFig3MatchesCommittedGolden regenerates Fig. 3 at the committed options
// (benchgen -fig 3 -runs 3, the invocation that produced results/fig3.txt)
// and requires the rendered table to be byte-identical to the committed file.
// This is the regression fence for the Result export/golden coupling: any
// change that perturbs the simulation's float stream or the renderer — the
// engine's sharded reduction included — fails here before it silently skews
// the committed artifacts.
//
// Note it diffs against results/fig3.txt; the full-suite fence over
// results/figures.txt lives in TestFiguresMatchCommittedGolden below.
func TestFig3MatchesCommittedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating Fig. 3 runs 18 simulations")
	}
	fig, err := Fig3CumulativeCost(Options{Runs: 3, Seed: 1, Edges: 10, Horizon: 160})
	if err != nil {
		t.Fatal(err)
	}
	rendered := Render(fig)
	golden, err := os.ReadFile("../../results/fig3.txt")
	if err != nil {
		t.Fatal(err)
	}
	if rendered != string(golden) {
		t.Fatalf("regenerated Fig. 3 diverged from the committed results/fig3.txt;\n"+
			"if the change is intentional, regenerate with "+
			"`go run ./cmd/benchgen -fig 3 -runs 3 -out results/fig3.txt`.\nregenerated:\n%s", rendered)
	}
}

// TestFiguresMatchCommittedGolden regenerates every deterministic figure
// (Figs. 3-13) at the committed options (benchgen -runs 3, the invocation
// that produced results/figures.txt) and requires the rendered tables to be
// byte-identical to the committed file. Fig. 14 is excluded: its y-axis is
// wall time (Options.Clock), so its committed section is provenance, not a
// golden. Together with the Fig. 3 fence above this makes every
// deterministic committed artifact a regression gate on `make test`.
func TestFiguresMatchCommittedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating Figs. 3-13 runs the full simulation grid")
	}
	golden, err := os.ReadFile("../../results/figures.txt")
	if err != nil {
		t.Fatal(err)
	}
	idx := strings.Index(string(golden), "== Fig14:")
	if idx < 0 {
		t.Fatal("results/figures.txt has no Fig14 section; regenerate it with `go run ./cmd/benchgen -runs 3 -out results/figures.txt`")
	}
	want := string(golden[:idx])

	opts := Options{Runs: 3, Seed: 1, Edges: 10, Horizon: 160}
	var b strings.Builder
	gens := All()
	ids := make([]int, 0, len(gens))
	for id := range gens {
		if id != 14 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		fig, err := gens[id](opts)
		if err != nil {
			t.Fatalf("figure %d: %v", id, err)
		}
		b.WriteString(Render(fig))
		b.WriteString("\n")
	}
	if got := b.String(); got != want {
		t.Fatalf("regenerated Figs. 3-13 diverged from the committed results/figures.txt;\n" +
			"if the change is intentional, regenerate with " +
			"`go run ./cmd/benchgen -runs 3 -out results/figures.txt`.")
	}
}
