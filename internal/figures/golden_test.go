package figures

import (
	"os"
	"testing"
)

// TestFig3MatchesCommittedGolden regenerates Fig. 3 at the committed options
// (benchgen -fig 3 -runs 3, the invocation that produced results/fig3.txt)
// and requires the rendered table to be byte-identical to the committed file.
// This is the regression fence for the Result export/golden coupling: any
// change that perturbs the simulation's float stream or the renderer — the
// engine's sharded reduction included — fails here before it silently skews
// the committed artifacts.
//
// Note it diffs against results/fig3.txt, a golden pinned at the revision
// that introduced this test; the older results/figures.txt predates earlier
// accuracy-affecting changes and is retained as-committed.
func TestFig3MatchesCommittedGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerating Fig. 3 runs 18 simulations")
	}
	fig, err := Fig3CumulativeCost(Options{Runs: 3, Seed: 1, Edges: 10, Horizon: 160})
	if err != nil {
		t.Fatal(err)
	}
	rendered := Render(fig)
	golden, err := os.ReadFile("../../results/fig3.txt")
	if err != nil {
		t.Fatal(err)
	}
	if rendered != string(golden) {
		t.Fatalf("regenerated Fig. 3 diverged from the committed results/fig3.txt;\n"+
			"if the change is intentional, regenerate with "+
			"`go run ./cmd/benchgen -fig 3 -runs 3 -out results/fig3.txt`.\nregenerated:\n%s", rendered)
	}
}
