// Package figures regenerates the data behind every figure in the paper's
// evaluation (Figs. 3-14). Each FigN function runs the required simulations
// and returns a Figure — labeled data series — that cmd/benchgen renders as
// aligned text tables and the repository's benchmarks time. Absolute values
// are substrate-dependent; the claims the paper makes about each figure's
// *shape* are asserted by this package's tests.
package figures

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"github.com/carbonedge/carbonedge/internal/metrics"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/sim"
)

// Series is one labeled curve.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is the data behind one paper figure.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Options tunes figure generation globally.
type Options struct {
	// Runs averages each data point over this many seeds (paper: 10).
	Runs int
	// Seed is the base seed.
	Seed int64
	// Edges and Horizon default to the paper's 10 and 160.
	Edges   int
	Horizon int
	// Clock supplies the timestamps behind Fig. 14's runtime measurement —
	// the one figure whose y-axis is wall time. It defaults to the system
	// clock; tests inject a fake to keep the figure harness deterministic.
	Clock func() time.Time
	// Workers bounds how many independent (scenario, run, scheme)
	// simulation jobs run concurrently within each figure. Output is
	// bit-for-bit identical at every worker count: jobs own their RNG
	// streams (fresh scenarios, or pre-drawn ComboViews of shared ones)
	// and reductions happen serially in canonical order. Defaults to 1.
	// Fig. 14 ignores it — its y-axis is wall time, which parallel
	// interleaving would distort.
	Workers int
}

// DefaultOptions mirrors the paper at a quick-to-run number of repetitions.
func DefaultOptions() Options {
	return Options{Runs: 3, Seed: 1, Edges: 10, Horizon: 160}
}

func (o Options) normalized() Options {
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Edges <= 0 {
		o.Edges = 10
	}
	if o.Horizon <= 0 {
		o.Horizon = 160
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Clock == nil {
		// Fig. 14 measures real runtime, so the default clock is the wall
		// clock; every other figure is seed-deterministic and never ticks it.
		//lint:allow nodeterm Fig. 14's y-axis is wall-clock seconds; this is the injected default, overridable in tests
		o.Clock = time.Now
	}
	return o
}

// surrogateScenario builds a scenario over a fresh surrogate zoo.
func surrogateScenario(cfg sim.Config) (*sim.Scenario, error) {
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(cfg.Seed, "zoo"))
	if err != nil {
		return nil, err
	}
	return sim.NewScenario(cfg, zoo)
}

// runCombo runs a named combo ("Ours", "UCB-LY", ..., or "Offline").
func runCombo(s *sim.Scenario, name string) (*sim.Result, error) {
	if name == "Offline" {
		return sim.Offline(s)
	}
	combo, err := sim.ComboByName(name)
	if err != nil {
		return nil, err
	}
	return sim.Run(s, combo.Name, combo.Policy, combo.Trader)
}

// avgTotalCost averages a combo's total cost over o.Runs seeds for the
// given config mutation (a one-cell avgTotalCosts grid).
func avgTotalCost(o Options, name string, mutate func(*sim.Config)) (float64, error) {
	vals, err := avgTotalCosts(o, []costSpec{{name: name, mutate: mutate}})
	if err != nil {
		return 0, err
	}
	return vals[0], nil
}

// Render prints a figure as an aligned text table: the X column followed by
// one column per series.
func Render(f *Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%-14s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%16s", s.Label)
	}
	b.WriteString("\n")
	// Assume aligned X across series (true for all our figures); use the
	// longest series' X as the axis.
	axis := f.Series[0].X
	for _, s := range f.Series[1:] {
		if len(s.X) > len(axis) {
			axis = s.X
		}
	}
	for i := range axis {
		fmt.Fprintf(&b, "%-14.4g", axis[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%16.5g", s.Y[i])
			} else {
				fmt.Fprintf(&b, "%16s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// All returns every figure generator keyed by its paper number.
func All() map[int]func(Options) (*Figure, error) {
	return map[int]func(Options) (*Figure, error){
		3:  Fig3CumulativeCost,
		4:  Fig4CostVsEdges,
		5:  Fig5SwitchWeight,
		6:  Fig6EmissionRate,
		7:  Fig7CarbonCap,
		8:  Fig8SelectionHistogram,
		9:  Fig9TradingVolume,
		10: Fig10Regret,
		11: Fig11Fit,
		12: Fig12AccuracyMNIST,
		13: Fig13AccuracyCIFAR,
		14: Fig14AlgRuntime,
	}
}

// sortedKeys returns the figure IDs in order.
func sortedKeys(m map[int]func(Options) (*Figure, error)) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// RenderAll generates and renders every figure.
func RenderAll(o Options) (string, error) {
	var b strings.Builder
	gens := All()
	for _, id := range sortedKeys(gens) {
		fig, err := gens[id](o)
		if err != nil {
			return "", fmt.Errorf("figure %d: %w", id, err)
		}
		b.WriteString(Render(fig))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// meanCurves averages per-slot series across runs for several combos. The
// combos of one run share a scenario — sequentially they would consume
// consecutive windows of its stream RNGs — so each run's scenario is split
// into per-combo ComboViews and the (run, combo) grid fans out over
// o.Workers with draws identical to the serial order.
func meanCurves(o Options, names []string, extract func(*sim.Result) []float64, mutate func(*sim.Config)) (map[string][]float64, error) {
	o = o.normalized()
	views := make([][]*sim.Scenario, o.Runs)
	for r := 0; r < o.Runs; r++ {
		s, err := surrogateScenario(runScenarioCfg(o, r, mutate))
		if err != nil {
			return nil, err
		}
		views[r] = s.ComboViews(len(names))
	}
	results := make([]*sim.Result, o.Runs*len(names))
	err := runJobs(o.Workers, len(results), func(idx int) error {
		r, c := idx/len(names), idx%len(names)
		res, err := runCombo(views[r][c], names[c])
		if err != nil {
			return err
		}
		results[idx] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	curves := make(map[string][][]float64, len(names))
	for r := 0; r < o.Runs; r++ {
		for c, name := range names {
			curves[name] = append(curves[name], extract(results[r*len(names)+c]))
		}
	}
	out := make(map[string][]float64, len(names))
	for name, runs := range curves {
		mean, err := metrics.MeanOf(runs...)
		if err != nil {
			return nil, err
		}
		out[name] = mean
	}
	return out, nil
}

// slotAxis builds the X axis 1..T.
func slotAxis(horizon int) []float64 {
	x := make([]float64, horizon)
	for i := range x {
		x[i] = float64(i + 1)
	}
	return x
}

// newRNG is a helper for figure-local randomness.
func newRNG(seed int64, label string) *rand.Rand {
	return numeric.SplitRNG(seed, label)
}
