package figures

import (
	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/sim"
)

// accuracyCombos mirrors the paper's Figs. 12-13 line-up.
var accuracyCombos = []string{"Ours", "Greedy-Ran", "TINF-Ran", "UCB-Ran", "Offline"}

// AccuracyZooConfig lets callers trade zoo fidelity for speed; the zero
// value takes models.DefaultTrainedZooConfig.
type AccuracyZooConfig = models.TrainedZooConfig

// figAccuracy generates an accuracy-per-slot figure over a trained zoo.
func figAccuracy(o Options, id, title string, zooCfg models.TrainedZooConfig) (*Figure, error) {
	o = o.normalized()
	zoo, err := models.NewTrainedZoo(zooCfg, newRNG(o.Seed, "zoo-"+id))
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "slot",
		YLabel: "accuracy",
	}
	x := slotAxis(o.Horizon)
	// Average per-slot accuracy over runs. The zoo (trained models) is
	// shared; workload and streams vary with the seed.
	acc := make(map[string][]float64, len(accuracyCombos))
	for _, name := range accuracyCombos {
		acc[name] = make([]float64, o.Horizon)
	}
	for r := 0; r < o.Runs; r++ {
		cfg := sim.DefaultConfig(o.Edges)
		cfg.Horizon = o.Horizon
		cfg.Seed = o.Seed + int64(r)
		s, err := sim.NewScenario(cfg, zoo)
		if err != nil {
			return nil, err
		}
		for _, name := range accuracyCombos {
			res, err := runCombo(s, name)
			if err != nil {
				return nil, err
			}
			for t, a := range res.Accuracy {
				acc[name][t] += a / float64(o.Runs)
			}
		}
	}
	for _, name := range accuracyCombos {
		fig.Series = append(fig.Series, Series{Label: name, X: x, Y: acc[name]})
	}
	return fig, nil
}

// Fig12AccuracyMNIST reproduces Fig. 12: per-slot inference accuracy over
// the MNIST-like streams.
func Fig12AccuracyMNIST(o Options) (*Figure, error) {
	return figAccuracy(o, "Fig12", "Inference accuracy over MNIST-like streams",
		models.DefaultTrainedZooConfig(dataset.MNISTLike))
}

// Fig13AccuracyCIFAR reproduces Fig. 13: per-slot inference accuracy over
// the CIFAR-like streams.
func Fig13AccuracyCIFAR(o Options) (*Figure, error) {
	return figAccuracy(o, "Fig13", "Inference accuracy over CIFAR-like streams",
		models.DefaultTrainedZooConfig(dataset.CIFARLike))
}
