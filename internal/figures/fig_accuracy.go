package figures

import (
	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/sim"
)

// accuracyCombos mirrors the paper's Figs. 12-13 line-up.
var accuracyCombos = []string{"Ours", "Greedy-Ran", "TINF-Ran", "UCB-Ran", "Offline"}

// AccuracyZooConfig lets callers trade zoo fidelity for speed; the zero
// value takes models.DefaultTrainedZooConfig.
type AccuracyZooConfig = models.TrainedZooConfig

// figAccuracy generates an accuracy-per-slot figure over a trained zoo.
func figAccuracy(o Options, id, title string, zooCfg models.TrainedZooConfig) (*Figure, error) {
	o = o.normalized()
	// The "zoo-"+id stream feeds nothing but zoo construction, so serving
	// a cache hit (identical bits, no RNG draws) is observation-free.
	zoo, err := models.CachedTrainedZoo(zooCfg, o.Seed, "zoo-"+id)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "slot",
		YLabel: "accuracy",
	}
	x := slotAxis(o.Horizon)
	// Average per-slot accuracy over runs. The zoo (trained models) is
	// shared and read-only during runs; workload and streams vary with the
	// seed. Each run's combos get ComboViews of that run's scenario, so
	// the (run, combo) grid fans out over o.Workers with stream draws
	// identical to the sequential order.
	views := make([][]*sim.Scenario, o.Runs)
	for r := 0; r < o.Runs; r++ {
		cfg := sim.DefaultConfig(o.Edges)
		cfg.Horizon = o.Horizon
		cfg.Seed = o.Seed + int64(r)
		s, err := sim.NewScenario(cfg, zoo)
		if err != nil {
			return nil, err
		}
		views[r] = s.ComboViews(len(accuracyCombos))
	}
	results := make([]*sim.Result, o.Runs*len(accuracyCombos))
	err = runJobs(o.Workers, len(results), func(idx int) error {
		r, c := idx/len(accuracyCombos), idx%len(accuracyCombos)
		res, err := runCombo(views[r][c], accuracyCombos[c])
		if err != nil {
			return err
		}
		results[idx] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	acc := make(map[string][]float64, len(accuracyCombos))
	for _, name := range accuracyCombos {
		acc[name] = make([]float64, o.Horizon)
	}
	for r := 0; r < o.Runs; r++ {
		for c, name := range accuracyCombos {
			for t, a := range results[r*len(accuracyCombos)+c].Accuracy {
				acc[name][t] += a / float64(o.Runs)
			}
		}
	}
	for _, name := range accuracyCombos {
		fig.Series = append(fig.Series, Series{Label: name, X: x, Y: acc[name]})
	}
	return fig, nil
}

// Fig12AccuracyMNIST reproduces Fig. 12: per-slot inference accuracy over
// the MNIST-like streams.
func Fig12AccuracyMNIST(o Options) (*Figure, error) {
	return Fig12At(o, models.DefaultTrainedZooConfig(dataset.MNISTLike))
}

// Fig12At generates Fig. 12 with an explicit zoo configuration, so
// benchmarks can shrink the training stage without changing the pipeline.
func Fig12At(o Options, zooCfg AccuracyZooConfig) (*Figure, error) {
	return figAccuracy(o, "Fig12", "Inference accuracy over MNIST-like streams", zooCfg)
}

// Fig13AccuracyCIFAR reproduces Fig. 13: per-slot inference accuracy over
// the CIFAR-like streams.
func Fig13AccuracyCIFAR(o Options) (*Figure, error) {
	return figAccuracy(o, "Fig13", "Inference accuracy over CIFAR-like streams",
		models.DefaultTrainedZooConfig(dataset.CIFARLike))
}
