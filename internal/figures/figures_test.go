package figures

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/models"
)

// fastOpts keeps test runtime small while preserving shape claims.
func fastOpts() Options {
	return Options{Runs: 2, Seed: 1, Edges: 5, Horizon: 120}
}

// last returns the final value of a series.
func last(s Series) float64 { return s.Y[len(s.Y)-1] }

// byLabel indexes a figure's series.
func byLabel(t *testing.T, f *Figure) map[string]Series {
	t.Helper()
	out := make(map[string]Series, len(f.Series))
	for _, s := range f.Series {
		out[s.Label] = s
	}
	return out
}

func TestFig3ShapeOursLowestOnline(t *testing.T) {
	fig, err := Fig3CumulativeCost(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	ours := last(series["Ours"])
	for _, name := range []string{"Ran-Ran", "Greedy-LY", "TINF-Ran", "UCB-LY"} {
		if ours >= last(series[name]) {
			t.Errorf("Ours (%v) not below %s (%v)", ours, name, last(series[name]))
		}
	}
	// Cumulative curves are non-decreasing apart from trading revenue; the
	// total must end positive and normalized to <= 1.
	for _, s := range fig.Series {
		if last(s) > 1+1e-9 {
			t.Errorf("%s not normalized: %v", s.Label, last(s))
		}
	}
}

func TestFig4ShapeOursLowestAtEveryScale(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scale sweep")
	}
	o := fastOpts()
	o.Runs = 1
	o.Horizon = 160 // Greedy only loses once exploration has paid off
	fig, err := Fig4CostVsEdges(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	ours := series["Ours"]
	for xi := range ours.Y {
		for _, name := range fig4Combos {
			if name == "Ours" || name == "Offline" {
				continue
			}
			if ours.Y[xi] >= series[name].Y[xi] {
				t.Errorf("edges=%v: Ours (%v) not below %s (%v)",
					ours.X[xi], ours.Y[xi], name, series[name].Y[xi])
			}
		}
	}
	// Total cost grows with system size.
	if ours.Y[len(ours.Y)-1] <= ours.Y[0] {
		t.Errorf("Ours cost did not grow with edges: %v", ours.Y)
	}
}

func TestFig5ShapeOursFlat(t *testing.T) {
	if testing.Short() {
		t.Skip("weight sweep")
	}
	o := fastOpts()
	o.Runs = 2
	fig, err := Fig5SwitchWeight(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	ours := series["Ours"]
	tinf := series["TINF-LY"]
	// The paper's claim: as the switching weight grows 16x, Ours stays
	// nearly flat while switching-oblivious TINF inflates. Compare relative
	// growth.
	oursGrowth := ours.Y[len(ours.Y)-1] / ours.Y[0]
	tinfGrowth := tinf.Y[len(tinf.Y)-1] / tinf.Y[0]
	if oursGrowth > tinfGrowth {
		t.Errorf("Ours growth %v exceeds TINF growth %v", oursGrowth, tinfGrowth)
	}
	if oursGrowth > 2.0 {
		t.Errorf("Ours not flat across 16x weight: growth %v", oursGrowth)
	}
}

func TestFig6ShapeCostRisesWithEmissionRate(t *testing.T) {
	if testing.Short() {
		t.Skip("rate sweep")
	}
	o := fastOpts()
	o.Runs = 2
	fig, err := Fig6EmissionRate(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	ours := series["Ours"]
	if ours.Y[len(ours.Y)-1] <= ours.Y[0] {
		t.Errorf("Ours cost did not rise with emission rate: %v", ours.Y)
	}
	// Ours below the UCB baselines at every rate.
	for xi := range ours.Y {
		for _, name := range []string{"UCB-Ran", "UCB-TH"} {
			if ours.Y[xi] >= series[name].Y[xi] {
				t.Errorf("rate x%v: Ours (%v) not below %s (%v)",
					ours.X[xi], ours.Y[xi], name, series[name].Y[xi])
			}
		}
	}
}

func TestFig7ShapeCostFallsWithCap(t *testing.T) {
	if testing.Short() {
		t.Skip("cap sweep")
	}
	o := fastOpts()
	o.Runs = 2
	fig, err := Fig7CarbonCap(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	// Schemes whose trading reacts to the cap (Ours, Offline) get cheaper
	// as the cap grows.
	for _, name := range []string{"Ours", "Offline"} {
		s := series[name]
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Errorf("%s cost did not fall with cap: %v", name, s.Y)
		}
	}
	// UCB-Ran and UCB-TH ignore the cap: flat within noise. Compare their
	// spread to Ours' spread.
	spread := func(s Series) float64 {
		lo, hi := s.Y[0], s.Y[0]
		for _, v := range s.Y {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return hi - lo
	}
	if spread(series["UCB-TH"]) > spread(series["Ours"]) {
		t.Errorf("cap-oblivious UCB-TH varied (%v) more than Ours (%v)",
			spread(series["UCB-TH"]), spread(series["Ours"]))
	}
}

func TestFig8ShapeSelectionAntiCorrelatesWithLoss(t *testing.T) {
	o := fastOpts()
	fig, err := Fig8SelectionHistogram(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	ours := series["Ours"]
	// The paper's claim: as the expected loss decreases, the selection
	// frequency increases — i.e. loss and selections anti-correlate. (The
	// bandit optimizes loss + compute cost, so the raw-loss winner need not
	// be the most-selected arm.)
	if c := correlation(ours.X, ours.Y); c >= 0 {
		t.Errorf("selections correlate positively (%v) with expected loss: losses %v, selections %v",
			c, ours.X, ours.Y)
	}
	// The worst-loss model is never the most selected.
	worst, most := 0, 0
	for n := range ours.Y {
		if ours.X[n] > ours.X[worst] {
			worst = n
		}
		if ours.Y[n] > ours.Y[most] {
			most = n
		}
	}
	if worst == most {
		t.Errorf("worst model is the most selected: losses %v, selections %v", ours.X, ours.Y)
	}
	// Offline concentrates on exactly one model.
	off := series["Offline"]
	nonzero := 0
	for _, v := range off.Y {
		if v > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Errorf("Offline used %d models", nonzero)
	}
}

func TestFig9ShapeNetPurchaseTracksWorkload(t *testing.T) {
	o := fastOpts()
	fig, err := Fig9TradingVolume(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	w := series["Workload"]
	ours := series["Ours"]
	ucbRan := series["UCB-Ran"]
	// Correlation between net purchase and workload: Ours positive and
	// stronger than UCB-Ran (which ignores workload).
	oursCorr := correlation(w.Y, ours.Y)
	ranCorr := correlation(w.Y, ucbRan.Y)
	if oursCorr <= math.Abs(ranCorr) {
		t.Errorf("Ours workload correlation %v not above UCB-Ran %v", oursCorr, ranCorr)
	}
	if _, ok := series["UnitBuyPrice"]; !ok {
		t.Error("missing UnitBuyPrice companion series")
	}
}

func TestFig10ShapeRegretSublinear(t *testing.T) {
	if testing.Short() {
		t.Skip("horizon sweep")
	}
	o := fastOpts()
	o.Runs = 2
	fig, err := Fig10Regret(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	ours := series["Ours"]
	n := len(ours.Y)
	// Sub-linearity: regret/T shrinks from the smallest to the largest
	// horizon.
	first := ours.Y[0] / ours.X[0]
	lastAvg := ours.Y[n-1] / ours.X[n-1]
	if lastAvg >= first {
		t.Errorf("Ours regret/T did not shrink: %v -> %v (regret %v)", first, lastAvg, ours.Y)
	}
	// Ours has the smallest regret at the paper's horizon (T=160)...
	t160 := -1
	for i, x := range ours.X {
		if x == 160 {
			t160 = i
		}
	}
	if t160 < 0 {
		t.Fatal("sweep does not include T=160")
	}
	for _, name := range []string{"TINF-LY", "UCB-LY", "Greedy-LY"} {
		if ours.Y[t160] >= series[name].Y[t160] {
			t.Errorf("T=160: Ours regret %v not below %s %v", ours.Y[t160], name, series[name].Y[t160])
		}
	}
	// ...and stays at worst within 15%% of the best baseline at the longest
	// horizon (UCB2's logarithmic switching catches up asymptotically in
	// easy stochastic instances).
	for _, name := range []string{"TINF-LY", "UCB-LY", "Greedy-LY"} {
		if ours.Y[n-1] >= series[name].Y[n-1]*1.15 {
			t.Errorf("longest T: Ours regret %v well above %s %v", ours.Y[n-1], name, series[name].Y[n-1])
		}
	}
}

func TestFig11ShapeFitVanishes(t *testing.T) {
	if testing.Short() {
		t.Skip("horizon sweep")
	}
	o := fastOpts()
	o.Runs = 2
	fig, err := Fig11Fit(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	ours := series["Ours"]
	n := len(ours.Y)
	firstAvg := ours.Y[0] / ours.X[0]
	lastAvg := ours.Y[n-1] / ours.X[n-1]
	if lastAvg > firstAvg && lastAvg > 1e-6 {
		t.Errorf("Ours time-averaged fit did not vanish: %v -> %v", firstAvg, lastAvg)
	}
}

func TestFigAccuracySmallZoo(t *testing.T) {
	// Exercise the Fig. 12/13 pipeline with a tiny zoo; assert the paper's
	// ordering claim: Ours is above Greedy-Ran and close to Offline.
	o := Options{Runs: 1, Seed: 2, Edges: 3, Horizon: 60}
	zooCfg := models.TrainedZooConfig{
		Dataset: dataset.MNISTLike,
		TrainN:  400, TestN: 400, Epochs: 1, LR: 0.05, BatchSize: 16,
	}
	fig, err := figAccuracy(o, "Fig12", "test", zooCfg)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	mean := func(s Series) float64 {
		sum := 0.0
		for _, v := range s.Y {
			sum += v
		}
		return sum / float64(len(s.Y))
	}
	oursAcc := mean(series["Ours"])
	offAcc := mean(series["Offline"])
	greedyAcc := mean(series["Greedy-Ran"])
	t.Logf("accuracy: ours=%.3f offline=%.3f greedy=%.3f", oursAcc, offAcc, greedyAcc)
	if oursAcc < greedyAcc-0.05 {
		t.Errorf("Ours accuracy %v clearly below Greedy %v", oursAcc, greedyAcc)
	}
	if oursAcc < offAcc-0.25 {
		t.Errorf("Ours accuracy %v far from Offline %v", oursAcc, offAcc)
	}
}

func TestFig14Runtime(t *testing.T) {
	o := Options{Runs: 1, Seed: 1, Edges: 10, Horizon: 40}
	fig, err := Fig14AlgRuntime(o)
	if err != nil {
		t.Fatal(err)
	}
	series := byLabel(t, fig)
	for _, name := range []string{"Algorithm1", "Algorithm2"} {
		s, ok := series[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		for _, v := range s.Y {
			if v < 0 {
				t.Errorf("%s negative runtime", name)
			}
			// The paper's bar: well within a 15-minute slot.
			if v > 900 {
				t.Errorf("%s exceeds a slot: %v s", name, v)
			}
		}
	}
}

func TestRenderOutput(t *testing.T) {
	fig := &Figure{
		ID: "FigX", Title: "test", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{5}},
		},
	}
	out := Render(fig)
	for _, want := range []string{"FigX", "a", "b", "3", "5", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	empty := Render(&Figure{ID: "E", Title: "none"})
	if !strings.Contains(empty, "no data") {
		t.Error("empty figure should say so")
	}
}

func TestAllRegistryComplete(t *testing.T) {
	gens := All()
	for id := 3; id <= 14; id++ {
		if _, ok := gens[id]; !ok {
			t.Errorf("missing generator for Fig %d", id)
		}
	}
	keys := sortedKeys(gens)
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Error("keys not sorted")
		}
	}
}

// correlation computes the Pearson correlation of two aligned series.
func correlation(a, b []float64) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return 0
	}
	var ma, mb float64
	for i := range a {
		ma += a[i]
		mb += b[i]
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// TestFig14InjectedClock pins the clock-injection seam: with a fake clock
// ticking a fixed step per reading, Fig. 14 is fully deterministic — each
// per-slot runtime is exactly one tick divided by the horizon.
func TestFig14InjectedClock(t *testing.T) {
	const step = time.Millisecond
	var now time.Time
	o := Options{Runs: 1, Seed: 1, Edges: 10, Horizon: 40, Clock: func() time.Time {
		now = now.Add(step)
		return now
	}}
	fig, err := Fig14AlgRuntime(o)
	if err != nil {
		t.Fatal(err)
	}
	want := step.Seconds() / float64(o.Horizon)
	series := byLabel(t, fig)
	for _, name := range []string{"Algorithm1", "Algorithm2"} {
		s, ok := series[name]
		if !ok {
			t.Fatalf("missing %s", name)
		}
		for i, v := range s.Y {
			if v != want {
				t.Errorf("%s[%d] = %v, want exactly %v (one fake tick per measurement)", name, i, v, want)
			}
		}
	}
}
