package figures

import (
	"github.com/carbonedge/carbonedge/internal/sim"
)

// horizonSweep is the T axis of the regret/fit figures, centered on the
// paper's two-day, 160-slot horizon.
var horizonSweep = []int{40, 80, 160, 240, 320}

// Fig10Regret reproduces Fig. 10: the regret for P0 (total cost of the
// online scheme minus the Offline optimum on the same instance) as the
// horizon grows. Sub-linear growth means regret/T shrinks; Ours grows
// slowest.
func Fig10Regret(o Options) (*Figure, error) {
	o = o.normalized()
	combos := []string{"Ours", "TINF-LY", "UCB-LY", "Greedy-LY"}
	fig := &Figure{
		ID:     "Fig10",
		Title:  "Regret for P0 vs time horizon",
		XLabel: "horizon T",
		YLabel: "regret",
	}
	x := make([]float64, len(horizonSweep))
	for i, h := range horizonSweep {
		x[i] = float64(h)
	}
	// One job per (combo, horizon, run): the job owns its scenario and
	// runs Offline then the combo on it sequentially (the pair consumes
	// consecutive stream windows, as in the serial loop).
	regrets := make([]float64, len(combos)*len(horizonSweep)*o.Runs)
	err := runJobs(o.Workers, len(regrets), func(idx int) error {
		ni := idx / (len(horizonSweep) * o.Runs)
		xi := idx / o.Runs % len(horizonSweep)
		r := idx % o.Runs
		horizon := horizonSweep[xi]
		cfg := sim.DefaultConfig(o.Edges)
		cfg.Horizon = horizon
		// Scale the cap with T so the trading subproblem stays
		// comparable across horizons.
		cfg.InitialCap = cfg.InitialCap * float64(horizon) / 160
		cfg.Seed = o.Seed + int64(r)
		s, err := surrogateScenario(cfg)
		if err != nil {
			return err
		}
		off, err := sim.Offline(s)
		if err != nil {
			return err
		}
		res, err := runCombo(s, combos[ni])
		if err != nil {
			return err
		}
		regrets[idx] = sim.RegretP0(res, off)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range combos {
		ys := make([]float64, len(horizonSweep))
		for xi := range horizonSweep {
			var sum float64
			for r := 0; r < o.Runs; r++ {
				sum += regrets[(ni*len(horizonSweep)+xi)*o.Runs+r]
			}
			ys[xi] = sum / float64(o.Runs)
		}
		fig.Series = append(fig.Series, Series{Label: name, X: x, Y: ys})
	}
	return fig, nil
}

// Fig11Fit reproduces Fig. 11: the long-term constraint violation (fit) as
// the horizon grows; sub-linear for Ours (time-averaged fit vanishes).
func Fig11Fit(o Options) (*Figure, error) {
	o = o.normalized()
	combos := []string{"Ours", "UCB-Ran", "UCB-TH", "UCB-LY"}
	fig := &Figure{
		ID:     "Fig11",
		Title:  "Fit (long-term constraint violation) vs time horizon",
		XLabel: "horizon T",
		YLabel: "fit",
	}
	x := make([]float64, len(horizonSweep))
	for i, h := range horizonSweep {
		x[i] = float64(h)
	}
	fits := make([]float64, len(combos)*len(horizonSweep)*o.Runs)
	err := runJobs(o.Workers, len(fits), func(idx int) error {
		ni := idx / (len(horizonSweep) * o.Runs)
		xi := idx / o.Runs % len(horizonSweep)
		r := idx % o.Runs
		horizon := horizonSweep[xi]
		cfg := sim.DefaultConfig(o.Edges)
		cfg.Horizon = horizon
		cfg.InitialCap = cfg.InitialCap * float64(horizon) / 160
		cfg.Seed = o.Seed + int64(r)
		s, err := surrogateScenario(cfg)
		if err != nil {
			return err
		}
		res, err := runCombo(s, combos[ni])
		if err != nil {
			return err
		}
		fits[idx] = res.Fit
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ni, name := range combos {
		ys := make([]float64, len(horizonSweep))
		for xi := range horizonSweep {
			var sum float64
			for r := 0; r < o.Runs; r++ {
				sum += fits[(ni*len(horizonSweep)+xi)*o.Runs+r]
			}
			ys[xi] = sum / float64(o.Runs)
		}
		fig.Series = append(fig.Series, Series{Label: name, X: x, Y: ys})
	}
	return fig, nil
}
