package models

import (
	"github.com/carbonedge/carbonedge/internal/nn"
)

// evalChunk bounds the batched scorer's working set: chunks of this many
// samples go through one ForwardBatch each, so peak scratch is one chunk's
// activations regardless of pool size. The chunk boundary does not affect
// results — every sample's float operations are independent and replay the
// per-sample path exactly.
const evalChunk = 64

// batchScorer is the execution engine scorePool drives: the float network
// or the true-INT8 nn.QuantizedNetwork, selected by TrainedZooConfig.Int8.
// Both return [B, classes] float64 logits from arena-backed scratch.
type batchScorer interface {
	ForwardBatch(in *nn.Tensor, a *nn.Arena) *nn.Tensor
	InShape() []int
}

// scorePool evaluates net over pool through the chunked batched inference
// path, returning the per-sample loss/correctness caches plus their means.
// With the float engine, results are bit-for-bit identical to the per-sample
// loop it replaced (losses accumulate in sample order; nn's equivalence
// suite pins the kernels) — the zoo's cached streams, and every figure
// derived from them, do not move. The INT8 engine is reached only through
// the opt-in Int8 config, so the committed results stay the float oracle's.
func scorePool(net batchScorer, pool []nn.Sample, arena *nn.Arena) (losses []float64, correct []bool, meanLoss, meanAcc float64) {
	losses = make([]float64, len(pool))
	correct = make([]bool, len(pool))
	shape := net.InShape()
	sampleLen := 1
	for _, d := range shape {
		sampleLen *= d
	}
	batchShape := append([]int{0}, shape...)
	sumLoss, nCorrect := 0.0, 0
	for start := 0; start < len(pool); start += evalChunk {
		end := start + evalChunk
		if end > len(pool) {
			end = len(pool)
		}
		b := end - start
		arena.Reset()
		batchShape[0] = b
		in := arena.Tensor(batchShape...)
		for j := 0; j < b; j++ {
			copy(in.Data[j*sampleLen:(j+1)*sampleLen], pool[start+j].X.Data)
		}
		logits := net.ForwardBatch(in, arena)
		classes := logits.Shape[1]
		scratch := arena.Floats(classes)
		for j := 0; j < b; j++ {
			row := logits.Data[j*classes : (j+1)*classes]
			loss := nn.SquaredLossRow(row, pool[start+j].Label, scratch)
			losses[start+j] = loss
			ok := nn.ArgmaxRow(row) == pool[start+j].Label
			correct[start+j] = ok
			sumLoss += loss
			if ok {
				nCorrect++
			}
		}
	}
	if len(pool) > 0 {
		meanLoss = sumLoss / float64(len(pool))
		meanAcc = float64(nCorrect) / float64(len(pool))
	}
	return losses, correct, meanLoss, meanAcc
}
