package models

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/nn"
)

func TestQuantizedZooShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewQuantizedTrainedZoo(smallZooConfig(dataset.MNISTLike), rng)
	if err != nil {
		t.Fatalf("NewQuantizedTrainedZoo: %v", err)
	}
	if z.NumModels() != 12 {
		t.Fatalf("NumModels = %d, want 12 (6 fp + 6 int8)", z.NumModels())
	}
	for i := 0; i < 6; i++ {
		fp := z.Info(i)
		q := z.Info(i + 6)
		if !strings.HasSuffix(q.Name, "-q8") {
			t.Errorf("quantized name %q missing suffix", q.Name)
		}
		if !strings.HasPrefix(q.Name, fp.Name) {
			t.Errorf("pairing broken: %q vs %q", fp.Name, q.Name)
		}
		// Quantized checkpoints are about a quarter the size.
		ratio := float64(q.SizeBytes) / float64(fp.SizeBytes)
		if ratio > 0.35 || ratio < 0.15 {
			t.Errorf("%s size ratio = %v, want ~0.25", q.Name, ratio)
		}
		if q.PhiKWh >= fp.PhiKWh {
			t.Errorf("%s energy %v not below fp %v", q.Name, q.PhiKWh, fp.PhiKWh)
		}
		if q.BaseLatencySec >= fp.BaseLatencySec {
			t.Errorf("%s latency not reduced", q.Name)
		}
	}
}

func TestQuantizedZooAccuracyClose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := smallZooConfig(dataset.MNISTLike)
	cfg.TrainN, cfg.TestN, cfg.Epochs = 400, 400, 2
	z, err := NewQuantizedTrainedZoo(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Int8 quantization of these small nets should cost only a little
	// accuracy relative to the full-precision sibling (scored on the
	// identical pool).
	for i := 0; i < 6; i++ {
		fp, q := z.MeanAccuracy(i), z.MeanAccuracy(i+6)
		if q < fp-0.10 {
			t.Errorf("%s: quantized accuracy %v far below fp %v", z.Info(i).Name, q, fp)
		}
	}
}

// TestQuantizedZooSharesInt8Storage pins the quantized zoo's memory
// contract: q8 arms keep no resident float64 network — only the shared int8
// buffer plus per-tensor scales, well under a quarter (in fact ~1/8) of the
// full-precision sibling's resident parameter bytes — and Network() still
// materializes, on demand, a fake-quant network whose scores replay the
// cached ones bit for bit.
func TestQuantizedZooSharesInt8Storage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z, err := NewQuantizedTrainedZoo(smallZooConfig(dataset.MNISTLike), rng)
	if err != nil {
		t.Fatal(err)
	}
	n := z.NumModels() / 2
	for i := 0; i < n; i++ {
		if z.nets[n+i] != nil {
			t.Fatalf("%s retains a resident float64 network", z.Info(n+i).Name)
		}
		fp, q8 := z.ResidentParamBytes(i), z.ResidentParamBytes(n + i)
		if q8*4 > fp {
			t.Errorf("%s resident %d B is not < 1/4 of fp %d B", z.Info(n+i).Name, q8, fp)
		}
	}
	// Materialized q8 networks reproduce the cached score stream exactly.
	for _, i := range []int{0, n - 1} {
		net := z.Network(n + i)
		losses, _, meanLoss, meanAcc := scorePool(net, z.testPool, nn.NewArena())
		if meanLoss != z.MeanLoss(n+i) || meanAcc != z.MeanAccuracy(n+i) {
			t.Fatalf("%s: materialized scores (%v, %v) != cached (%v, %v)",
				net.Name, meanLoss, meanAcc, z.MeanLoss(n+i), z.MeanAccuracy(n+i))
		}
		for s, l := range losses {
			if l != z.losses[n+i][s] {
				t.Fatalf("%s sample %d: materialized loss %v != cached %v", net.Name, s, l, z.losses[n+i][s])
			}
		}
	}
}

// TestQuantizedZooInt8Mode runs the opt-in INT8 engine end to end: the zoo
// builds, the q8 arms' caches come from integer kernels, and their accuracy
// stays close to the fake-quant oracle's (the engine's accuracy contract;
// exact bits are pinned in nn). The fp arms are untouched by the mode.
func TestQuantizedZooInt8Mode(t *testing.T) {
	cfg := smallZooConfig(dataset.MNISTLike)
	oracle, err := NewQuantizedTrainedZoo(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Int8 = true
	z, err := NewQuantizedTrainedZoo(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	n := z.NumModels() / 2
	for i := 0; i < n; i++ {
		if z.MeanLoss(i) != oracle.MeanLoss(i) || z.MeanAccuracy(i) != oracle.MeanAccuracy(i) {
			t.Errorf("fp arm %s moved under -int8", z.Info(i).Name)
		}
		fq, q := oracle.MeanAccuracy(n+i), z.MeanAccuracy(n+i)
		if q < fq-0.10 {
			t.Errorf("%s: INT8 accuracy %v far below fake-quant %v", z.Info(n+i).Name, q, fq)
		}
	}
}

func TestQuantizedZooBatchLossConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z, err := NewQuantizedTrainedZoo(smallZooConfig(dataset.MNISTLike), rng)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, z.PoolSize())
	for i := range all {
		all[i] = i
	}
	for n := 0; n < z.NumModels(); n++ {
		avg, _ := z.BatchLoss(n, all, nil)
		if diff := avg - z.MeanLoss(n); diff > 1e-12 || diff < -1e-12 {
			t.Errorf("model %d: cache inconsistent", n)
		}
	}
}
