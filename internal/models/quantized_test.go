package models

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/carbonedge/carbonedge/internal/dataset"
)

func TestQuantizedZooShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewQuantizedTrainedZoo(smallZooConfig(dataset.MNISTLike), rng)
	if err != nil {
		t.Fatalf("NewQuantizedTrainedZoo: %v", err)
	}
	if z.NumModels() != 12 {
		t.Fatalf("NumModels = %d, want 12 (6 fp + 6 int8)", z.NumModels())
	}
	for i := 0; i < 6; i++ {
		fp := z.Info(i)
		q := z.Info(i + 6)
		if !strings.HasSuffix(q.Name, "-q8") {
			t.Errorf("quantized name %q missing suffix", q.Name)
		}
		if !strings.HasPrefix(q.Name, fp.Name) {
			t.Errorf("pairing broken: %q vs %q", fp.Name, q.Name)
		}
		// Quantized checkpoints are about a quarter the size.
		ratio := float64(q.SizeBytes) / float64(fp.SizeBytes)
		if ratio > 0.35 || ratio < 0.15 {
			t.Errorf("%s size ratio = %v, want ~0.25", q.Name, ratio)
		}
		if q.PhiKWh >= fp.PhiKWh {
			t.Errorf("%s energy %v not below fp %v", q.Name, q.PhiKWh, fp.PhiKWh)
		}
		if q.BaseLatencySec >= fp.BaseLatencySec {
			t.Errorf("%s latency not reduced", q.Name)
		}
	}
}

func TestQuantizedZooAccuracyClose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := smallZooConfig(dataset.MNISTLike)
	cfg.TrainN, cfg.TestN, cfg.Epochs = 400, 400, 2
	z, err := NewQuantizedTrainedZoo(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Int8 quantization of these small nets should cost only a little
	// accuracy relative to the full-precision sibling (scored on the
	// identical pool).
	for i := 0; i < 6; i++ {
		fp, q := z.MeanAccuracy(i), z.MeanAccuracy(i+6)
		if q < fp-0.10 {
			t.Errorf("%s: quantized accuracy %v far below fp %v", z.Info(i).Name, q, fp)
		}
	}
}

func TestQuantizedZooBatchLossConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z, err := NewQuantizedTrainedZoo(smallZooConfig(dataset.MNISTLike), rng)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, z.PoolSize())
	for i := range all {
		all[i] = i
	}
	for n := 0; n < z.NumModels(); n++ {
		avg, _ := z.BatchLoss(n, all, nil)
		if diff := avg - z.MeanLoss(n); diff > 1e-12 || diff < -1e-12 {
			t.Errorf("model %d: cache inconsistent", n)
		}
	}
}
