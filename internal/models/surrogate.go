package models

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/energy"
)

// SurrogateZoo draws per-sample losses from parametric distributions instead
// of running real networks. It exercises identical algorithm code paths —
// the bandit only ever sees loss samples and metadata — at negligible cost,
// which makes the large parameter sweeps (Figs. 3–11) fast. The DESIGN.md
// ablation compares conclusions across the trained and surrogate substrates.
type SurrogateZoo struct {
	infos    []Info
	meanLoss []float64
	sigma    []float64
	meanAcc  []float64
	poolSize int
}

var _ Zoo = (*SurrogateZoo)(nil)

// SurrogateModel describes one parametric model.
type SurrogateModel struct {
	Name string
	// MeanLoss and LossSigma parameterize the per-sample squared-loss
	// distribution (clamped to [0, 2), the range of squared loss between a
	// softmax output and a one-hot label).
	MeanLoss, LossSigma float64
	// Accuracy is the probability a prediction is correct.
	Accuracy float64
	// SizeBytes, PhiKWh, BaseLatencySec mirror Info.
	SizeBytes      int64
	PhiKWh         float64
	BaseLatencySec float64
}

// NewSurrogateZoo builds a zoo from explicit model descriptions.
func NewSurrogateZoo(ms []SurrogateModel, poolSize int) (*SurrogateZoo, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("models: empty surrogate zoo")
	}
	if poolSize <= 0 {
		return nil, fmt.Errorf("models: poolSize must be positive, got %d", poolSize)
	}
	z := &SurrogateZoo{
		infos:    make([]Info, len(ms)),
		meanLoss: make([]float64, len(ms)),
		sigma:    make([]float64, len(ms)),
		meanAcc:  make([]float64, len(ms)),
		poolSize: poolSize,
	}
	for i, m := range ms {
		if m.MeanLoss < 0 || m.LossSigma < 0 || m.Accuracy < 0 || m.Accuracy > 1 {
			return nil, fmt.Errorf("models: invalid surrogate model %q: %+v", m.Name, m)
		}
		if m.PhiKWh <= 0 || m.SizeBytes <= 0 || m.BaseLatencySec <= 0 {
			return nil, fmt.Errorf("models: invalid metadata for %q: %+v", m.Name, m)
		}
		z.infos[i] = Info{
			Name:           m.Name,
			SizeBytes:      m.SizeBytes,
			PhiKWh:         m.PhiKWh,
			BaseLatencySec: m.BaseLatencySec,
		}
		z.meanLoss[i] = m.MeanLoss
		z.sigma[i] = m.LossSigma
		z.meanAcc[i] = m.Accuracy
	}
	return z, nil
}

// DefaultSurrogateZoo builds a paper-shaped six-model zoo: model quality
// anti-correlates loosely with energy (bigger models are better but
// costlier), with one cheap-and-bad and one expensive-and-good outlier so
// Greedy (lowest energy) is clearly suboptimal, as in the paper's Fig. 12.
func DefaultSurrogateZoo(rng *rand.Rand) (*SurrogateZoo, error) {
	type proto struct {
		name     string
		loss     float64
		acc      float64
		sizeMB   float64
		energyAt float64 // position in [0,1] within the energy band
	}
	protos := []proto{
		{"mlp-s", 1.15, 0.32, 0.4, 0.00},
		{"mlp-l", 0.70, 0.62, 1.6, 0.25},
		{"lenet-s", 0.55, 0.71, 0.25, 0.35},
		{"lenet-l", 0.42, 0.78, 0.9, 0.55},
		{"cnn-s", 0.38, 0.81, 1.8, 0.75},
		{"cnn-l", 0.30, 0.86, 6.5, 1.00},
	}
	ms := make([]SurrogateModel, 0, len(protos))
	for _, p := range protos {
		jitter := 1 + 0.02*rng.NormFloat64()
		ms = append(ms, SurrogateModel{
			Name:      p.name,
			MeanLoss:  p.loss * jitter,
			LossSigma: 0.25,
			Accuracy:  p.acc,
			SizeBytes: int64(p.sizeMB * 1e6),
			PhiKWh: energy.MinInferEnergy +
				p.energyAt*(energy.MaxInferEnergy-energy.MinInferEnergy),
			BaseLatencySec: MinLatencySec + p.energyAt*(MaxLatencySec-MinLatencySec),
		})
	}
	return NewSurrogateZoo(ms, 8000)
}

// NumModels implements Zoo.
func (z *SurrogateZoo) NumModels() int { return len(z.infos) }

// Info implements Zoo.
func (z *SurrogateZoo) Info(n int) Info {
	validateIndex(n, len(z.infos))
	return z.infos[n]
}

// MeanLoss implements Zoo.
func (z *SurrogateZoo) MeanLoss(n int) float64 {
	validateIndex(n, len(z.meanLoss))
	return z.meanLoss[n]
}

// MeanAccuracy implements Zoo.
func (z *SurrogateZoo) MeanAccuracy(n int) float64 {
	validateIndex(n, len(z.meanAcc))
	return z.meanAcc[n]
}

// PoolSize implements Zoo.
func (z *SurrogateZoo) PoolSize() int { return z.poolSize }

// BatchLoss implements Zoo by sampling the batch-average loss directly:
// the mean of m IID per-sample losses has standard deviation sigma/sqrt(m),
// and the correct count is Binomial(m, accuracy) (drawn exactly for small
// batches, via normal approximation for large ones).
func (z *SurrogateZoo) BatchLoss(n int, indices []int, rng *rand.Rand) (float64, int) {
	validateIndex(n, len(z.meanLoss))
	m := len(indices)
	if m == 0 {
		return 0, 0
	}
	avg := z.meanLoss[n] + z.sigma[n]/math.Sqrt(float64(m))*rng.NormFloat64()
	if avg < 0 {
		avg = 0
	}
	acc := z.meanAcc[n]
	var correct int
	if m <= 64 {
		for i := 0; i < m; i++ {
			if rng.Float64() < acc {
				correct++
			}
		}
	} else {
		mean := float64(m) * acc
		sd := math.Sqrt(float64(m) * acc * (1 - acc))
		c := int(mean + sd*rng.NormFloat64() + 0.5)
		if c < 0 {
			c = 0
		}
		if c > m {
			c = m
		}
		correct = c
	}
	return avg, correct
}
