package models

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/nn"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// Int8 inference typically runs at a fraction of float energy and latency;
// these factors calibrate the quantized variants' metadata.
const (
	quantEnergyFactor  = 0.6
	quantLatencyFactor = 0.7
)

// NewQuantizedTrainedZoo builds the quantization-aware zoo of the paper's
// future-work direction: every trained model appears twice — once at full
// precision and once int8-quantized (suffix "-q8") with a quarter of the
// download size, reduced inference energy/latency, and whatever accuracy
// the quantization actually costs (measured, not assumed). The bandit then
// chooses among 2N arms, trading quality against carbon per model *and* per
// precision.
func NewQuantizedTrainedZoo(cfg TrainedZooConfig, rng *rand.Rand) (*TrainedZoo, error) {
	base, err := NewTrainedZoo(cfg, rng)
	if err != nil {
		return nil, err
	}
	return quantizedFromBase(cfg, base, rng)
}

// quantizedFromBase layers the int8 variants on an already-trained base
// zoo. The result does not depend on rng's state: cloneNetwork consumes
// draws rebuilding each architecture, but the wire-format round-trip then
// overwrites every parameter tensor, so a cached base plus any RNG stream
// yields bit-identical quantized zoos (pinned by the cache tests).
//
// The q8 arms retain only the shared int8 weight buffers (QuantizeWeights),
// not a float64 network clone — the float clone exists transiently for
// scoring and is dropped before the zoo is returned, cutting each q8 arm's
// resident parameter bytes to ~1/8 of its full-precision sibling
// (TestQuantizedZooSharesInt8Storage pins the bound). Scoring runs through
// the fake-quant float oracle by default, or through the true-INT8 engine
// when cfg.Int8 is set.
func quantizedFromBase(cfg TrainedZooConfig, base *TrainedZoo, rng *rand.Rand) (*TrainedZoo, error) {
	n := base.NumModels()
	z := &TrainedZoo{
		testPool:  base.testPool,
		spec:      cfg.Dataset,
		baseCount: n,
		nets:      make([]*nn.Network, 0, 2*n),
		qweights:  make([]*nn.QuantizedWeights, 2*n),
		infos:     make([]Info, 0, 2*n),
		meanLoss:  make([]float64, 0, 2*n),
		meanAcc:   make([]float64, 0, 2*n),
		losses:    make([][]float64, 0, 2*n),
		correct:   make([][]bool, 0, 2*n),
	}
	// Keep the full-precision entries as-is.
	z.nets = append(z.nets, base.nets...)
	z.infos = append(z.infos, base.infos...)
	z.meanLoss = append(z.meanLoss, base.meanLoss...)
	z.meanAcc = append(z.meanAcc, base.meanAcc...)
	z.losses = append(z.losses, base.losses...)
	z.correct = append(z.correct, base.correct...)

	// The quantized variants are scored on the identical test pool through
	// the shared chunked batched scorer, so the per-sample caches stay
	// aligned across all 2N models.
	pool := base.testPool
	arena := nn.NewArena()
	var calib *nn.Tensor
	if cfg.Int8 {
		var err error
		if calib, err = calibBatch(pool); err != nil {
			return nil, err
		}
	}

	for i := 0; i < n; i++ {
		q, err := cloneNetwork(cfg.Dataset, i, base.nets[i], rng)
		if err != nil {
			return nil, err
		}
		qw := nn.QuantizeWeights(q)
		if err := qw.ApplyTo(q); err != nil { // bit-identical to QuantizeInPlace
			return nil, err
		}
		q.Name = base.infos[i].Name + "-q8"

		scorer := batchScorer(q)
		if cfg.Int8 {
			qn, err := nn.NewQuantizedNetwork(q, qw, calib)
			if err != nil {
				return nil, fmt.Errorf("compile INT8 %s: %w", q.Name, err)
			}
			scorer = qn
		}
		losses, correct, meanLoss, meanAcc := scorePool(scorer, pool, arena)
		z.nets = append(z.nets, nil) // no float64 clone retained; q is dropped here
		z.qweights[n+i] = qw
		z.infos = append(z.infos, Info{
			Name:           q.Name,
			SizeBytes:      nn.QuantizedWireSize(q),
			PhiKWh:         base.infos[i].PhiKWh * quantEnergyFactor,
			BaseLatencySec: base.infos[i].BaseLatencySec * quantLatencyFactor,
		})
		z.meanLoss = append(z.meanLoss, meanLoss)
		z.meanAcc = append(z.meanAcc, meanAcc)
		z.losses = append(z.losses, losses)
		z.correct = append(z.correct, correct)
	}
	return z, nil
}

// calibBatch assembles the INT8 engines' calibration batch from the head of
// the shared test pool — deterministic, and representative of the stream the
// activation scales will see.
func calibBatch(pool []nn.Sample) (*nn.Tensor, error) {
	b := evalChunk
	if b > len(pool) {
		b = len(pool)
	}
	if b == 0 {
		return nil, fmt.Errorf("models: INT8 scoring requires a non-empty test pool")
	}
	t := nn.NewTensor(append([]int{b}, pool[0].X.Shape...)...)
	sampleLen := pool[0].X.Len()
	for j := 0; j < b; j++ {
		copy(t.Data[j*sampleLen:(j+1)*sampleLen], pool[j].X.Data)
	}
	return t, nil
}

// materializeQ8 rebuilds a q8 arm's fake-quant float network on demand:
// clone the trained base arm (wire round-trip; the RNG only feeds the
// architecture rebuild, every parameter is overwritten), then install the
// shared int8 weights. Zero-scale tensors are skipped by ApplyTo and keep
// the base's values — which are exactly the all-zero values a zero scale
// encodes — so the result is bit-identical to the clone-and-quantize path
// that produced the arm's score caches.
func (z *TrainedZoo) materializeQ8(n int) (*nn.Network, error) {
	base := n - z.baseCount
	if base < 0 || base >= z.baseCount || z.qweights[n] == nil {
		return nil, fmt.Errorf("models: model %d has no quantized weights", n)
	}
	// The RNG only feeds the architecture rebuild and every draw is then
	// overwritten by the wire round-trip, but it still must be a properly
	// derived stream so no shared stream is perturbed.
	q, err := cloneNetwork(z.spec, base, z.nets[base], numeric.SplitRNG(0, "materialize-q8"))
	if err != nil {
		return nil, err
	}
	if err := z.qweights[n].ApplyTo(q); err != nil {
		return nil, err
	}
	q.Name = z.infos[n].Name
	return q, nil
}

// cloneNetwork copies a trained network by rebuilding its architecture and
// round-tripping the weights through the wire format.
func cloneNetwork(spec dataset.Spec, modelID int, src *nn.Network, rng *rand.Rand) (*nn.Network, error) {
	dst, err := NewFamilyNetwork(spec, modelID, rng)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := nn.WriteWeights(&buf, src); err != nil {
		return nil, fmt.Errorf("clone %s: %w", src.Name, err)
	}
	if err := nn.ReadWeights(&buf, dst); err != nil {
		return nil, fmt.Errorf("clone %s: %w", src.Name, err)
	}
	return dst, nil
}
