package models

import (
	"bytes"
	"fmt"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/nn"
)

// Int8 inference typically runs at a fraction of float energy and latency;
// these factors calibrate the quantized variants' metadata.
const (
	quantEnergyFactor  = 0.6
	quantLatencyFactor = 0.7
)

// NewQuantizedTrainedZoo builds the quantization-aware zoo of the paper's
// future-work direction: every trained model appears twice — once at full
// precision and once int8-quantized (suffix "-q8") with a quarter of the
// download size, reduced inference energy/latency, and whatever accuracy
// the quantization actually costs (measured, not assumed). The bandit then
// chooses among 2N arms, trading quality against carbon per model *and* per
// precision.
func NewQuantizedTrainedZoo(cfg TrainedZooConfig, rng *rand.Rand) (*TrainedZoo, error) {
	base, err := NewTrainedZoo(cfg, rng)
	if err != nil {
		return nil, err
	}
	return quantizedFromBase(cfg, base, rng)
}

// quantizedFromBase layers the int8 variants on an already-trained base
// zoo. The result does not depend on rng's state: cloneNetwork consumes
// draws rebuilding each architecture, but the wire-format round-trip then
// overwrites every parameter tensor, so a cached base plus any RNG stream
// yields bit-identical quantized zoos (pinned by the cache tests).
func quantizedFromBase(cfg TrainedZooConfig, base *TrainedZoo, rng *rand.Rand) (*TrainedZoo, error) {
	n := base.NumModels()
	z := &TrainedZoo{
		testPool: base.testPool,
		nets:     make([]*nn.Network, 0, 2*n),
		infos:    make([]Info, 0, 2*n),
		meanLoss: make([]float64, 0, 2*n),
		meanAcc:  make([]float64, 0, 2*n),
		losses:   make([][]float64, 0, 2*n),
		correct:  make([][]bool, 0, 2*n),
	}
	// Keep the full-precision entries as-is.
	z.nets = append(z.nets, base.nets...)
	z.infos = append(z.infos, base.infos...)
	z.meanLoss = append(z.meanLoss, base.meanLoss...)
	z.meanAcc = append(z.meanAcc, base.meanAcc...)
	z.losses = append(z.losses, base.losses...)
	z.correct = append(z.correct, base.correct...)

	// The quantized variants are scored on the identical test pool through
	// the shared chunked batched scorer, so the per-sample caches stay
	// aligned across all 2N models.
	pool := base.testPool
	arena := nn.NewArena()

	for i := 0; i < n; i++ {
		q, err := cloneNetwork(cfg.Dataset, i, base.nets[i], rng)
		if err != nil {
			return nil, err
		}
		nn.QuantizeInPlace(q)
		q.Name = base.infos[i].Name + "-q8"

		losses, correct, meanLoss, meanAcc := scorePool(q, pool, arena)
		z.nets = append(z.nets, q)
		z.infos = append(z.infos, Info{
			Name:           q.Name,
			SizeBytes:      nn.QuantizedWireSize(q),
			PhiKWh:         base.infos[i].PhiKWh * quantEnergyFactor,
			BaseLatencySec: base.infos[i].BaseLatencySec * quantLatencyFactor,
		})
		z.meanLoss = append(z.meanLoss, meanLoss)
		z.meanAcc = append(z.meanAcc, meanAcc)
		z.losses = append(z.losses, losses)
		z.correct = append(z.correct, correct)
	}
	return z, nil
}

// cloneNetwork copies a trained network by rebuilding its architecture and
// round-tripping the weights through the wire format.
func cloneNetwork(spec dataset.Spec, modelID int, src *nn.Network, rng *rand.Rand) (*nn.Network, error) {
	dst, err := NewFamilyNetwork(spec, modelID, rng)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := nn.WriteWeights(&buf, src); err != nil {
		return nil, fmt.Errorf("clone %s: %w", src.Name, err)
	}
	if err := nn.ReadWeights(&buf, dst); err != nil {
		return nil, fmt.Errorf("clone %s: %w", src.Name, err)
	}
	return dst, nil
}
