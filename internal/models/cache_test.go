package models

import (
	"math"
	"sync"
	"testing"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// tinyZooConfig keeps the cache tests' cold builds cheap.
func tinyZooConfig(spec dataset.Spec) TrainedZooConfig {
	return TrainedZooConfig{
		Dataset:   spec,
		TrainN:    60,
		TestN:     50,
		Epochs:    1,
		LR:        0.05,
		BatchSize: 16,
	}
}

// zoosBitIdentical fails unless the two zoos' infos and per-sample caches
// match bit for bit (the full observable surface of a Zoo).
func zoosBitIdentical(t *testing.T, name string, got, want *TrainedZoo) {
	t.Helper()
	if got.NumModels() != want.NumModels() {
		t.Fatalf("%s: %d models, want %d", name, got.NumModels(), want.NumModels())
	}
	for n := 0; n < got.NumModels(); n++ {
		if got.infos[n] != want.infos[n] {
			t.Fatalf("%s: model %d info %+v, want %+v", name, n, got.infos[n], want.infos[n])
		}
		if math.Float64bits(got.meanLoss[n]) != math.Float64bits(want.meanLoss[n]) {
			t.Fatalf("%s: model %d mean loss %v, want %v", name, n, got.meanLoss[n], want.meanLoss[n])
		}
		if math.Float64bits(got.meanAcc[n]) != math.Float64bits(want.meanAcc[n]) {
			t.Fatalf("%s: model %d mean acc %v, want %v", name, n, got.meanAcc[n], want.meanAcc[n])
		}
		for s := range got.losses[n] {
			if math.Float64bits(got.losses[n][s]) != math.Float64bits(want.losses[n][s]) {
				t.Fatalf("%s: model %d sample %d loss %v, want %v", name, n, s, got.losses[n][s], want.losses[n][s])
			}
			if got.correct[n][s] != want.correct[n][s] {
				t.Fatalf("%s: model %d sample %d correctness mismatch", name, n, s)
			}
		}
	}
}

func TestCachedZooHitIsBitIdenticalToColdBuild(t *testing.T) {
	cfg := tinyZooConfig(dataset.MNISTLike)
	const seed, stream = 9001, "cache-test-cold"

	cold, err := NewTrainedZoo(cfg, numeric.SplitRNG(seed, stream))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := CachedTrainedZoo(cfg, seed, stream)
	if err != nil {
		t.Fatal(err)
	}
	zoosBitIdentical(t, "cached-vs-cold", cached, cold)

	again, err := CachedTrainedZoo(cfg, seed, stream)
	if err != nil {
		t.Fatal(err)
	}
	if again != cached {
		t.Fatal("second lookup of the same key rebuilt the zoo")
	}
}

func TestCachedQuantizedZooHitIsBitIdenticalToColdBuild(t *testing.T) {
	cfg := tinyZooConfig(dataset.MNISTLike)
	const seed, stream = 9002, "cache-test-q8"

	cold, err := NewQuantizedTrainedZoo(cfg, numeric.SplitRNG(seed, stream))
	if err != nil {
		t.Fatal(err)
	}
	cached, err := CachedQuantizedTrainedZoo(cfg, seed, stream)
	if err != nil {
		t.Fatal(err)
	}
	zoosBitIdentical(t, "cached-q8-vs-cold", cached, cold)

	// The quantized entry must layer on the cached full-precision base,
	// sharing its networks rather than retraining them.
	base, err := CachedTrainedZoo(cfg, seed, stream)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < base.NumModels(); n++ {
		if cached.nets[n] != base.nets[n] {
			t.Fatalf("quantized zoo model %d is not the cached base network", n)
		}
	}
}

func TestCachedZooDistinctKeysMiss(t *testing.T) {
	cfg := tinyZooConfig(dataset.MNISTLike)
	const seed, stream = 9003, "cache-test-miss"
	z, err := CachedTrainedZoo(cfg, seed, stream)
	if err != nil {
		t.Fatal(err)
	}

	otherSeed, err := CachedTrainedZoo(cfg, seed+1, stream)
	if err != nil {
		t.Fatal(err)
	}
	if otherSeed == z {
		t.Fatal("different seed hit the same cache entry")
	}
	otherStream, err := CachedTrainedZoo(cfg, seed, stream+"-b")
	if err != nil {
		t.Fatal(err)
	}
	if otherStream == z {
		t.Fatal("different stream hit the same cache entry")
	}
	otherCfg := cfg
	otherCfg.Epochs = 2
	changed, err := CachedTrainedZoo(otherCfg, seed, stream)
	if err != nil {
		t.Fatal(err)
	}
	if changed == z {
		t.Fatal("different config hit the same cache entry")
	}
	if q, err := CachedQuantizedTrainedZoo(cfg, seed, stream); err != nil {
		t.Fatal(err)
	} else if q == z {
		t.Fatal("quantized lookup returned the full-precision entry")
	}
}

func TestCachedZooPinnedDistBypassesCache(t *testing.T) {
	cfg := tinyZooConfig(dataset.MNISTLike)
	dist, err := dataset.NewDistribution(cfg.Dataset, numeric.SplitRNG(9004, "cache-test-dist"))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Dist = dist
	a, err := CachedTrainedZoo(cfg, 9004, "cache-test-pinned")
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedTrainedZoo(cfg, 9004, "cache-test-pinned")
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pinned-Dist config was cached (Dist is pointer-identified, not content-keyed)")
	}
	zoosBitIdentical(t, "pinned-dist-rebuild", a, b)
}

// TestCachedZooConcurrent exercises the single-flight path from many
// goroutines (figure workers build zoos concurrently); `make check` runs
// this under -race.
func TestCachedZooConcurrent(t *testing.T) {
	cfg := tinyZooConfig(dataset.MNISTLike)
	const seed, stream = 9005, "cache-test-race"
	const workers = 8
	zoos := make([]*TrainedZoo, workers)
	quantized := make([]*TrainedZoo, workers)
	errs := make([]error, 2*workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			zoos[i], errs[2*i] = CachedTrainedZoo(cfg, seed, stream)
		}(i)
		go func(i int) {
			defer wg.Done()
			quantized[i], errs[2*i+1] = CachedQuantizedTrainedZoo(cfg, seed, stream)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < workers; i++ {
		if zoos[i] != zoos[0] {
			t.Fatalf("worker %d got a different zoo instance", i)
		}
		if quantized[i] != quantized[0] {
			t.Fatalf("worker %d got a different quantized zoo instance", i)
		}
	}
	// Every concurrent reader can consume the shared zoo's full surface.
	var wg2 sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			z := zoos[0]
			idx := []int{0, 1, 2}
			for n := 0; n < z.NumModels(); n++ {
				z.Info(n)
				z.MeanLoss(n)
				z.BatchLoss(n, idx, nil)
			}
		}()
	}
	wg2.Wait()
}
