// Package models provides the model zoo: the set of N machine-learning
// models the cloud holds and ships to edges, together with the per-model
// metadata the paper's formulation needs — size W_n, per-sample inference
// energy phi_n, and base computation latency (from which the per-edge
// posterior cost v_{i,n} is derived).
//
// Two implementations are provided behind the Zoo interface:
//
//   - TrainedZoo actually builds and trains six neural networks per dataset
//     family (two sizes each of three architectures, mirroring the paper's
//     MNIST and CIFAR-10 zoos) on the synthetic datasets, then precomputes
//     per-test-sample losses so streaming inference is an O(1) lookup.
//   - SurrogateZoo draws losses from parametric distributions; it exercises
//     the identical algorithm code paths at a fraction of the cost and is
//     used for the large sweep experiments (Figs. 3–11), where only the loss
//     statistics matter, not the pixels.
package models

import (
	"fmt"
	"math/rand"
)

// Info is the static metadata of one model.
type Info struct {
	Name string
	// SizeBytes is the paper's W_n.
	SizeBytes int64
	// PhiKWh is the per-sample inference energy phi_n.
	PhiKWh float64
	// BaseLatencySec is the model's computation latency on a reference
	// edge; the simulator scales it per edge to obtain v_{i,n}.
	BaseLatencySec float64
}

// Zoo is the model set shared by all edges.
type Zoo interface {
	// NumModels returns N.
	NumModels() int
	// Info returns static metadata for model n.
	Info(n int) Info
	// MeanLoss returns the posterior mean inference loss E[l_n],
	// approximated over the test pool exactly as the paper's Offline does.
	MeanLoss(n int) float64
	// MeanAccuracy returns the test-pool classification accuracy of model n.
	MeanAccuracy(n int) float64
	// PoolSize returns the number of streamable test samples.
	PoolSize() int
	// BatchLoss runs model n over the batch of stream sample indices and
	// returns the average per-sample squared loss and the number of correct
	// predictions. rng supplies any stochasticity (surrogate zoos).
	BatchLoss(n int, indices []int, rng *rand.Rand) (avgLoss float64, correct int)
}

// Latency and energy calibration bands from the paper (Sec. V).
const (
	// MinLatencySec and MaxLatencySec bound computation latency: 25-150 ms.
	MinLatencySec = 0.025
	MaxLatencySec = 0.150
)

// scaleToBand maps x (relative position of value within [lo, hi] of raw
// units) into the band [bandLo, bandHi].
func scaleToBand(value, rawLo, rawHi, bandLo, bandHi float64) float64 {
	if rawHi <= rawLo {
		return (bandLo + bandHi) / 2
	}
	frac := (value - rawLo) / (rawHi - rawLo)
	return bandLo + frac*(bandHi-bandLo)
}

// validateIndex panics on out-of-range model indices; zoos are internal
// infrastructure and an invalid index is a programmer error.
func validateIndex(n, numModels int) {
	if n < 0 || n >= numModels {
		panic(fmt.Sprintf("models: model index %d out of range [0, %d)", n, numModels))
	}
}
