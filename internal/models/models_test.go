package models

import (
	"math"
	"math/rand"
	"testing"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/energy"
)

// smallZooConfig keeps trained-zoo tests fast.
func smallZooConfig(spec dataset.Spec) TrainedZooConfig {
	return TrainedZooConfig{
		Dataset:   spec,
		TrainN:    300,
		TestN:     300,
		Epochs:    1,
		LR:        0.05,
		BatchSize: 16,
	}
}

func TestScaleToBand(t *testing.T) {
	if got := scaleToBand(5, 0, 10, 100, 200); got != 150 {
		t.Errorf("midpoint = %v", got)
	}
	if got := scaleToBand(0, 0, 10, 100, 200); got != 100 {
		t.Errorf("low end = %v", got)
	}
	if got := scaleToBand(10, 0, 10, 100, 200); got != 200 {
		t.Errorf("high end = %v", got)
	}
	// Degenerate raw range maps to the band midpoint.
	if got := scaleToBand(5, 7, 7, 100, 200); got != 150 {
		t.Errorf("degenerate = %v", got)
	}
}

func TestTrainedZooMNIST(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z, err := NewTrainedZoo(smallZooConfig(dataset.MNISTLike), rng)
	if err != nil {
		t.Fatalf("NewTrainedZoo: %v", err)
	}
	if z.NumModels() != 6 {
		t.Fatalf("NumModels = %d, want 6", z.NumModels())
	}
	if z.PoolSize() != 300 {
		t.Fatalf("PoolSize = %d", z.PoolSize())
	}
	names := make(map[string]bool)
	for n := 0; n < z.NumModels(); n++ {
		info := z.Info(n)
		if names[info.Name] {
			t.Errorf("duplicate model name %q", info.Name)
		}
		names[info.Name] = true
		if info.SizeBytes <= 0 {
			t.Errorf("%s size = %d", info.Name, info.SizeBytes)
		}
		if info.PhiKWh < energy.MinInferEnergy-1e-15 || info.PhiKWh > energy.MaxInferEnergy+1e-15 {
			t.Errorf("%s phi = %v outside paper band", info.Name, info.PhiKWh)
		}
		if info.BaseLatencySec < MinLatencySec-1e-12 || info.BaseLatencySec > MaxLatencySec+1e-12 {
			t.Errorf("%s latency = %v outside paper band", info.Name, info.BaseLatencySec)
		}
		ml := z.MeanLoss(n)
		if ml < 0 || ml >= 2 {
			t.Errorf("%s mean loss = %v outside [0,2)", info.Name, ml)
		}
		acc := z.MeanAccuracy(n)
		if acc < 0 || acc > 1 {
			t.Errorf("%s accuracy = %v", info.Name, acc)
		}
	}
	// Trained models must beat chance on the easy dataset (10 classes).
	bestAcc := 0.0
	for n := 0; n < z.NumModels(); n++ {
		bestAcc = math.Max(bestAcc, z.MeanAccuracy(n))
	}
	if bestAcc < 0.3 {
		t.Errorf("best accuracy = %v, want above chance", bestAcc)
	}
}

func TestTrainedZooBatchLossMatchesCache(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	z, err := NewTrainedZoo(smallZooConfig(dataset.MNISTLike), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Full-pool batch must reproduce the posterior means exactly.
	all := make([]int, z.PoolSize())
	for i := range all {
		all[i] = i
	}
	for n := 0; n < z.NumModels(); n++ {
		avg, correct := z.BatchLoss(n, all, nil)
		if math.Abs(avg-z.MeanLoss(n)) > 1e-12 {
			t.Errorf("model %d: batch avg %v != mean loss %v", n, avg, z.MeanLoss(n))
		}
		wantAcc := z.MeanAccuracy(n)
		if math.Abs(float64(correct)/float64(len(all))-wantAcc) > 1e-12 {
			t.Errorf("model %d: batch accuracy mismatch", n)
		}
	}
	// Empty batch is safe.
	if avg, c := z.BatchLoss(0, nil, nil); avg != 0 || c != 0 {
		t.Errorf("empty batch = %v, %d", avg, c)
	}
}

func TestTrainedZooErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := smallZooConfig(dataset.MNISTLike)
	cfg.Epochs = 0
	if _, err := NewTrainedZoo(cfg, rng); err == nil {
		t.Error("expected error for zero epochs")
	}
	cfg = smallZooConfig(dataset.MNISTLike)
	cfg.TrainN = 0
	if _, err := NewTrainedZoo(cfg, rng); err == nil {
		t.Error("expected error for empty train pool")
	}
}

func TestTrainedZooIndexPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	z, err := NewTrainedZoo(smallZooConfig(dataset.MNISTLike), rng)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range model index")
		}
	}()
	z.Info(99)
}

func TestSurrogateZooErrors(t *testing.T) {
	if _, err := NewSurrogateZoo(nil, 10); err == nil {
		t.Error("expected error for empty zoo")
	}
	valid := SurrogateModel{
		Name: "m", MeanLoss: 0.5, LossSigma: 0.1, Accuracy: 0.8,
		SizeBytes: 100, PhiKWh: 7e-8, BaseLatencySec: 0.05,
	}
	if _, err := NewSurrogateZoo([]SurrogateModel{valid}, 0); err == nil {
		t.Error("expected error for zero pool")
	}
	bad := valid
	bad.Accuracy = 1.5
	if _, err := NewSurrogateZoo([]SurrogateModel{bad}, 10); err == nil {
		t.Error("expected error for accuracy > 1")
	}
	bad = valid
	bad.PhiKWh = 0
	if _, err := NewSurrogateZoo([]SurrogateModel{bad}, 10); err == nil {
		t.Error("expected error for zero energy")
	}
	bad = valid
	bad.MeanLoss = -1
	if _, err := NewSurrogateZoo([]SurrogateModel{bad}, 10); err == nil {
		t.Error("expected error for negative loss")
	}
}

func TestDefaultSurrogateZooShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z, err := DefaultSurrogateZoo(rng)
	if err != nil {
		t.Fatal(err)
	}
	if z.NumModels() != 6 {
		t.Fatalf("NumModels = %d", z.NumModels())
	}
	// The lowest-energy model must NOT be the lowest-loss model, otherwise
	// Greedy would be optimal and the paper's comparison collapses.
	minPhi, minLoss := 0, 0
	for n := 1; n < z.NumModels(); n++ {
		if z.Info(n).PhiKWh < z.Info(minPhi).PhiKWh {
			minPhi = n
		}
		if z.MeanLoss(n) < z.MeanLoss(minLoss) {
			minLoss = n
		}
	}
	if minPhi == minLoss {
		t.Error("cheapest model is also the best — Greedy would be optimal")
	}
}

func TestSurrogateBatchLossStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	z, err := DefaultSurrogateZoo(rng)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 100
	indices := make([]int, batch)
	var sumLoss float64
	var sumCorrect int
	const trials = 3000
	for i := 0; i < trials; i++ {
		avg, correct := z.BatchLoss(2, indices, rng)
		sumLoss += avg
		sumCorrect += correct
	}
	if got, want := sumLoss/trials, z.MeanLoss(2); math.Abs(got-want) > 0.01 {
		t.Errorf("empirical mean loss %v, want %v", got, want)
	}
	if got, want := float64(sumCorrect)/(trials*batch), z.MeanAccuracy(2); math.Abs(got-want) > 0.01 {
		t.Errorf("empirical accuracy %v, want %v", got, want)
	}
}

func TestSurrogateBatchLossSmallAndLargeBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	z, err := DefaultSurrogateZoo(rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 5, 64, 65, 500} {
		indices := make([]int, m)
		avg, correct := z.BatchLoss(0, indices, rng)
		if avg < 0 {
			t.Errorf("batch %d: negative loss %v", m, avg)
		}
		if correct < 0 || correct > m {
			t.Errorf("batch %d: correct = %d", m, correct)
		}
	}
	if avg, c := z.BatchLoss(0, nil, rng); avg != 0 || c != 0 {
		t.Error("empty batch should be zero")
	}
}
