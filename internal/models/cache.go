package models

import (
	"sync"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// In-process zoo cache. Training the six-model zoo is the dominant serial
// cost of every accuracy figure, ablation, and CLI run, and the same
// (config, RNG stream) pair is rebuilt many times per process — every
// figure run and every test that shares a seed. The cache keys a build by
// its full content identity (config minus the uncacheable Dist pointer,
// plus the RNG stream that would have seeded it) and returns the one shared
// immutable zoo, so each distinct zoo is trained once per process.
//
// Safety argument for skipping the RNG draws on a hit: every caller routes
// a dedicated numeric.SplitRNG(seed, stream) stream into zoo construction
// and discards it afterwards, so serving a memoized zoo consumes no draws
// from any stream another component observes. A TrainedZoo is immutable
// after construction (readers only touch precomputed caches and serialize
// weights), which makes sharing one instance across figure workers
// race-free — pinned by TestCachedZooConcurrent under -race.

// zooCacheKey identifies a build by everything that determines its content.
type zooCacheKey struct {
	dataset       dataset.Spec
	trainN, testN int
	epochs        int
	lr            float64
	batchSize     int
	seed          int64
	stream        string
	quantized     bool
	int8Mode      bool
}

// zooCacheEntry single-flights one build: concurrent lookups of the same
// key block on the winner's once instead of training twice.
type zooCacheEntry struct {
	once sync.Once
	zoo  *TrainedZoo
	err  error
}

var zooCache = struct {
	sync.Mutex
	m map[zooCacheKey]*zooCacheEntry
}{m: make(map[zooCacheKey]*zooCacheEntry)}

// CachedTrainedZoo returns the process-wide shared zoo for (cfg, seed,
// stream), training it on first use with numeric.SplitRNG(seed, stream) —
// bit-identical to NewTrainedZoo(cfg, numeric.SplitRNG(seed, stream)).
// Configs that pin a Distribution (cfg.Dist != nil) are identified by
// pointer rather than content and therefore bypass the cache.
func CachedTrainedZoo(cfg TrainedZooConfig, seed int64, stream string) (*TrainedZoo, error) {
	return cachedZoo(cfg, seed, stream, false)
}

// CachedQuantizedTrainedZoo is CachedTrainedZoo for the 2N-arm quantized
// zoo. It layers the int8 variants on the cached full-precision base (the
// quantized extension's content is RNG-independent: cloned architectures
// have every weight overwritten by the wire-format round-trip), so the
// expensive training cost is shared with CachedTrainedZoo callers.
func CachedQuantizedTrainedZoo(cfg TrainedZooConfig, seed int64, stream string) (*TrainedZoo, error) {
	return cachedZoo(cfg, seed, stream, true)
}

func cachedZoo(cfg TrainedZooConfig, seed int64, stream string, quantized bool) (*TrainedZoo, error) {
	if cfg.Dist != nil {
		rng := numeric.SplitRNG(seed, stream)
		if quantized {
			return NewQuantizedTrainedZoo(cfg, rng)
		}
		return NewTrainedZoo(cfg, rng)
	}
	key := zooCacheKey{
		dataset:   cfg.Dataset,
		trainN:    cfg.TrainN,
		testN:     cfg.TestN,
		epochs:    cfg.Epochs,
		lr:        cfg.LR,
		batchSize: cfg.BatchSize,
		seed:      seed,
		stream:    stream,
		quantized: quantized,
		int8Mode:  cfg.Int8,
	}
	zooCache.Lock()
	e, ok := zooCache.m[key]
	if !ok {
		e = &zooCacheEntry{}
		zooCache.m[key] = e
	}
	zooCache.Unlock()
	e.once.Do(func() {
		if quantized {
			// Reuse (or populate) the cached full-precision base; only the
			// cheap quantize-and-score extension runs here. Int8 affects the
			// quantized extension alone, so the base lookup strips it and is
			// shared between float-oracle and INT8-engine quantized zoos.
			baseCfg := cfg
			baseCfg.Int8 = false
			base, err := cachedZoo(baseCfg, seed, stream, false)
			if err != nil {
				e.err = err
				return
			}
			e.zoo, e.err = quantizedFromBase(cfg, base, numeric.SplitRNG(seed, stream))
			return
		}
		e.zoo, e.err = NewTrainedZoo(cfg, numeric.SplitRNG(seed, stream))
	})
	return e.zoo, e.err
}
