package models

import (
	"fmt"
	"math/rand"
	"sync"

	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/nn"
)

// TrainedZoo holds six genuinely trained networks over a synthetic dataset
// and precomputed per-sample loss/correctness caches for O(1) streaming.
type TrainedZoo struct {
	infos    []Info
	nets     []*nn.Network
	meanLoss []float64
	meanAcc  []float64

	// losses[n][s] is the squared loss of model n on test sample s;
	// correct[n][s] records prediction correctness.
	losses  [][]float64
	correct [][]bool

	// testPool keeps the evaluation samples so zoo extensions (e.g. the
	// quantized variants) can score new models on the identical pool.
	testPool []nn.Sample

	// Quantized-zoo storage: q8 arms do not retain a float64 network clone.
	// nets[i] is nil for them; qweights[i] holds the shared int8 weights
	// (one buffer per arm, ~1/8 the float resident bytes) and Network(i)
	// materializes a fake-quant float network on demand from the base arm
	// plus qweights. spec and baseCount support that materialization.
	qweights  []*nn.QuantizedWeights
	spec      dataset.Spec
	baseCount int
}

var _ Zoo = (*TrainedZoo)(nil)

// TrainedZooConfig controls zoo construction.
type TrainedZooConfig struct {
	// Dataset selects the family (dataset.MNISTLike or dataset.CIFARLike).
	Dataset dataset.Spec
	// Dist optionally pins the generative distribution D to share with
	// other parties (e.g. distributed edge agents). When nil a fresh D is
	// drawn from the zoo's RNG.
	Dist *dataset.Distribution
	// TrainN and TestN are the pool sizes. TestN is the streamable pool
	// (the paper streams 8000 samples per edge; smaller pools keep tests
	// fast and only coarsen the loss distribution granularity).
	TrainN, TestN int
	// Epochs and LR drive SGD; BatchSize defaults to 16.
	Epochs    int
	LR        float64
	BatchSize int
	// Int8 opts the quantized arms into the true-INT8 execution engine
	// (nn.QuantizedNetwork): their score caches are produced by integer
	// kernels instead of the fake-quant float oracle. Off by default — the
	// committed results are the float oracle's and must not move.
	Int8 bool
}

// DefaultTrainedZooConfig returns a configuration sized for interactive use.
func DefaultTrainedZooConfig(spec dataset.Spec) TrainedZooConfig {
	return TrainedZooConfig{
		Dataset:   spec,
		TrainN:    1500,
		TestN:     2000,
		Epochs:    3,
		LR:        0.05,
		BatchSize: 16,
	}
}

// buildFamily enumerates the paper's six models for a dataset family: two
// sizes each of three architectures. Channel counts are scaled down from
// the paper's (32/64 and 64/128) so pure-Go training stays tractable; the
// capacity ordering — which is what differentiates model quality, energy,
// and size — is preserved.
func buildFamily(spec dataset.Spec, rng *rand.Rand) []*nn.Network {
	in := []int{spec.Channels, spec.Height, spec.Width}
	k := spec.Classes
	if spec.Channels == 1 {
		// MNIST-like family: CNN x2, LeNet-5 x2, MLP x2.
		return []*nn.Network{
			nn.BuildCNN("cnn-s", in, 8, 16, 32, k, rng),
			nn.BuildCNN("cnn-l", in, 16, 32, 64, k, rng),
			nn.BuildLeNet5("lenet-s", in, 1, k, rng),
			nn.BuildLeNet5("lenet-l", in, 2, k, rng),
			nn.BuildMLP("mlp-s", in, 64, 32, k, rng),
			nn.BuildMLP("mlp-l", in, 256, 128, k, rng),
		}
	}
	// CIFAR-like family: CNN x2, LeNet-5 x2, MobileNet-style x2. The small
	// MobileNet variant is deliberately slim: it anchors the cheap end of
	// the zoo's energy-accuracy trade-off (the model Greedy locks onto).
	return []*nn.Network{
		nn.BuildCNN("cnn-s", in, 8, 16, 32, k, rng),
		nn.BuildCNN("cnn-l", in, 16, 32, 64, k, rng),
		nn.BuildLeNet5("lenet-s", in, 1, k, rng),
		nn.BuildLeNet5("lenet-l", in, 2, k, rng),
		nn.BuildMobileCNN("mobile-s", in, 4, 8, k, rng),
		nn.BuildMobileCNN("mobile-l", in, 16, 32, k, rng),
	}
}

// NewFamilyNetwork builds the untrained architecture of model n for the
// given dataset family — what an edge agent reconstructs locally before
// installing a checkpoint shipped by the cloud. Model indices match the
// zoo's ordering.
func NewFamilyNetwork(spec dataset.Spec, n int, rng *rand.Rand) (*nn.Network, error) {
	family := buildFamily(spec, rng)
	if n < 0 || n >= len(family) {
		return nil, fmt.Errorf("models: family model index %d out of range [0, %d)", n, len(family))
	}
	return family[n], nil
}

// FamilySize returns the number of models in every family zoo.
func FamilySize() int { return 6 }

// NewTrainedZoo generates the dataset, trains all six models, and
// precomputes the streaming caches. Deterministic given rng.
func NewTrainedZoo(cfg TrainedZooConfig, rng *rand.Rand) (*TrainedZoo, error) {
	if cfg.Epochs <= 0 || cfg.LR <= 0 {
		return nil, fmt.Errorf("models: invalid training config epochs=%d lr=%g", cfg.Epochs, cfg.LR)
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 16
	}
	if cfg.Dist == nil {
		dist, err := dataset.NewDistribution(cfg.Dataset, rng)
		if err != nil {
			return nil, fmt.Errorf("distribution: %w", err)
		}
		cfg.Dist = dist
	}
	ds, err := dataset.GenerateFrom(cfg.Dist, cfg.TrainN, cfg.TestN, rng)
	if err != nil {
		return nil, fmt.Errorf("generate dataset: %w", err)
	}
	nets := buildFamily(cfg.Dataset, rng)
	z := &TrainedZoo{
		testPool: ds.Test,
		spec:     cfg.Dataset,
		nets:     nets,
		infos:    make([]Info, len(nets)),
		meanLoss: make([]float64, len(nets)),
		meanAcc:  make([]float64, len(nets)),
		losses:   make([][]float64, len(nets)),
		correct:  make([][]bool, len(nets)),
	}

	// Train every model and evaluate it over the full test pool once,
	// through the chunked batched scorer (bit-identical to the old
	// per-sample loop, just faster).
	//
	// The models train in parallel: the shared zoo RNG feeds nothing but the
	// per-epoch sample shuffles, so every shuffle's swap sequence is
	// pre-recorded here in the serial loop's exact draw order and replayed
	// inside the workers. Each model's arithmetic is otherwise independent
	// (family nets share no state; dropout masks, where present, come from
	// layer-owned RNGs), so the trained weights, the score caches, and the
	// RNG state handed back to the caller all match the serial build bit for
	// bit regardless of scheduling.
	swaps := make([][][][2]int, len(nets)) // [model][epoch][]{i, j}
	for n := range nets {
		swaps[n] = make([][][2]int, cfg.Epochs)
		for e := 0; e < cfg.Epochs; e++ {
			var rec [][2]int
			rng.Shuffle(len(ds.Train), func(i, j int) { rec = append(rec, [2]int{i, j}) })
			swaps[n][e] = rec
		}
	}
	errs := make([]error, len(nets))
	var wg sync.WaitGroup
	for n := range nets {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			epoch := 0
			replay := func(_ int, swap func(i, j int)) {
				for _, s := range swaps[n][epoch] {
					swap(s[0], s[1])
				}
				epoch++
			}
			if _, err := nn.TrainShuffled(nets[n], ds.Train, nn.TrainConfig{
				Epochs:    cfg.Epochs,
				BatchSize: cfg.BatchSize,
				LR:        cfg.LR,
				Loss:      nn.LossCrossEntropy,
			}, replay); err != nil {
				errs[n] = fmt.Errorf("train %s: %w", nets[n].Name, err)
				return
			}
			z.losses[n], z.correct[n], z.meanLoss[n], z.meanAcc[n] = scorePool(nets[n], ds.Test, nn.NewArena())
		}(n)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Derive the paper-calibrated metadata from real parameter/FLOP counts.
	minF, maxF := nets[0].ForwardFLOPs(), nets[0].ForwardFLOPs()
	for _, net := range nets[1:] {
		f := net.ForwardFLOPs()
		if f < minF {
			minF = f
		}
		if f > maxF {
			maxF = f
		}
	}
	for n, net := range nets {
		f := float64(net.ForwardFLOPs())
		z.infos[n] = Info{
			Name: net.Name,
			// W_n is the exact size of the serialized checkpoint the cloud
			// would ship to an edge.
			SizeBytes: nn.WireSize(net),
			PhiKWh: scaleToBand(f, float64(minF), float64(maxF),
				energy.MinInferEnergy, energy.MaxInferEnergy),
			BaseLatencySec: scaleToBand(f, float64(minF), float64(maxF),
				MinLatencySec, MaxLatencySec),
		}
	}
	return z, nil
}

// NumModels implements Zoo.
func (z *TrainedZoo) NumModels() int { return len(z.nets) }

// Info implements Zoo.
func (z *TrainedZoo) Info(n int) Info {
	validateIndex(n, len(z.infos))
	return z.infos[n]
}

// MeanLoss implements Zoo.
func (z *TrainedZoo) MeanLoss(n int) float64 {
	validateIndex(n, len(z.meanLoss))
	return z.meanLoss[n]
}

// MeanAccuracy implements Zoo.
func (z *TrainedZoo) MeanAccuracy(n int) float64 {
	validateIndex(n, len(z.meanAcc))
	return z.meanAcc[n]
}

// PoolSize implements Zoo.
func (z *TrainedZoo) PoolSize() int { return len(z.losses[0]) }

// BatchLoss implements Zoo via the precomputed per-sample caches.
func (z *TrainedZoo) BatchLoss(n int, indices []int, _ *rand.Rand) (float64, int) {
	validateIndex(n, len(z.losses))
	if len(indices) == 0 {
		return 0, 0
	}
	sum, correct := 0.0, 0
	for _, s := range indices {
		sum += z.losses[n][s]
		if z.correct[n][s] {
			correct++
		}
	}
	return sum / float64(len(indices)), correct
}

// Network exposes the trained network for model n (diagnostics, checkpoint
// serialization). Full-precision arms return the resident network; q8 arms
// hold no float64 clone, so a fake-quant network is materialized on demand
// from the base arm and the shared int8 weights — callers should not retain
// it if they care about the quantized zoo's memory footprint.
func (z *TrainedZoo) Network(n int) *nn.Network {
	validateIndex(n, len(z.nets))
	if z.nets[n] != nil {
		return z.nets[n]
	}
	net, err := z.materializeQ8(n)
	if err != nil {
		//lint:allow panicpolicy materialization replays the construction-validated clone+ApplyTo path; failure here is a programmer error
		panic(fmt.Sprintf("models: materialize %s: %v", z.infos[n].Name, err))
	}
	return net
}

// ResidentParamBytes reports the parameter bytes model n keeps resident in
// the zoo: float64 tensors for full-precision arms, the shared int8 buffer
// plus per-tensor scales for q8 arms.
func (z *TrainedZoo) ResidentParamBytes(n int) int64 {
	validateIndex(n, len(z.nets))
	if z.nets[n] != nil {
		return int64(z.nets[n].NumParams()) * 8
	}
	return z.qweights[n].ParamBytes()
}
