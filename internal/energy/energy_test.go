package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestInferenceEnergy(t *testing.T) {
	tests := []struct {
		name string
		phi  float64
		m    int
		want float64
	}{
		{"zero samples", 8e-8, 0, 0},
		{"negative samples", 8e-8, -3, 0},
		{"hundred samples", 8e-8, 100, 8e-6},
		{"one sample", 6e-8, 1, 6e-8},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := InferenceEnergy(tt.phi, tt.m); math.Abs(got-tt.want) > 1e-20 {
				t.Errorf("InferenceEnergy = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTransferEnergy(t *testing.T) {
	if got := TransferEnergy(TransferEnergyPerByte, 0); got != 0 {
		t.Errorf("zero size = %v", got)
	}
	if got := TransferEnergy(TransferEnergyPerByte, -5); got != 0 {
		t.Errorf("negative size = %v", got)
	}
	want := 1.02e-16 * 1e6
	if got := TransferEnergy(TransferEnergyPerByte, 1e6); math.Abs(got-want) > 1e-24 {
		t.Errorf("1MB transfer = %v, want %v", got, want)
	}
}

func TestMeterAccumulation(t *testing.T) {
	m, err := NewMeter(DefaultEmissionRate)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	e1 := m.RecordInference(2) // 2 kWh -> 1 kg
	e2 := m.RecordTransfer(4)  // 4 kWh -> 2 kg
	if e1 != 1 || e2 != 2 {
		t.Errorf("emissions = %v, %v", e1, e2)
	}
	if m.TotalKWh() != 6 {
		t.Errorf("TotalKWh = %v", m.TotalKWh())
	}
	if m.InferenceKWh() != 2 || m.TransferKWh() != 4 {
		t.Errorf("split = %v/%v", m.InferenceKWh(), m.TransferKWh())
	}
	if m.TotalEmission() != 3 {
		t.Errorf("TotalEmission = %v", m.TotalEmission())
	}
	if m.Rate() != DefaultEmissionRate {
		t.Errorf("Rate = %v", m.Rate())
	}
	if m.Emission(10) != 5 {
		t.Errorf("Emission(10) = %v", m.Emission(10))
	}
}

func TestNewMeterNegativeRate(t *testing.T) {
	if _, err := NewMeter(-0.1); err == nil {
		t.Error("expected error for negative rate")
	}
}

func TestPaperConstantsSane(t *testing.T) {
	if MinInferEnergy >= MaxInferEnergy {
		t.Error("energy band inverted")
	}
	// A 1 MB model transfer must cost far less energy than inferring one
	// slot of typical workload (the paper's transfer energy is tiny).
	transfer := TransferEnergy(TransferEnergyPerByte, 1<<20)
	infer := InferenceEnergy(MinInferEnergy, 100)
	if transfer > infer {
		t.Errorf("transfer %v > inference %v", transfer, infer)
	}
}

// Property: emission is linear in energy and never negative for non-negative
// inputs.
func TestEmissionLinearityProperty(t *testing.T) {
	m, err := NewMeter(0.5)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lhs := m.Emission(a + b)
		rhs := m.Emission(a) + m.Emission(b)
		scale := math.Max(1, lhs)
		return math.Abs(lhs-rhs) <= 1e-9*scale && lhs >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
