// Package energy implements the paper's energy and carbon accounting:
//
//	E_{i,n}^t = phi_n * M_i^t        (inference energy, kWh)
//	F_{i,n}   = vartheta_i * W_n     (model transfer energy, kWh)
//	emission  = rho * energy         (kg CO2)
//
// with the paper's constants: per-sample inference energy in [6,10]e-8 kWh,
// transfer energy 1.02e-16 kWh per byte, and a carbon emission rate of
// 500 g/kWh (0.5 kg/kWh).
package energy

import "fmt"

// Paper-calibrated constants.
const (
	// DefaultEmissionRate is kg CO2 emitted per kWh (500 g/kWh).
	DefaultEmissionRate = 0.5
	// MinInferEnergy and MaxInferEnergy bound per-sample inference energy
	// across models (kWh/sample).
	MinInferEnergy = 6e-8
	MaxInferEnergy = 10e-8
	// TransferEnergyPerByte is kWh consumed per byte of model shipped from
	// the cloud to an edge.
	TransferEnergyPerByte = 1.02e-16
)

// Meter accumulates energy and emissions for one simulation run.
type Meter struct {
	rate float64 // kg CO2 per kWh

	inferKWh    float64
	transferKWh float64
}

// NewMeter creates a meter with the given emission rate (kg CO2 per kWh).
func NewMeter(rate float64) (*Meter, error) {
	if rate < 0 {
		return nil, fmt.Errorf("energy: negative emission rate %g", rate)
	}
	return &Meter{rate: rate}, nil
}

// InferenceEnergy returns E = phi * m for m samples at phi kWh each.
func InferenceEnergy(phiKWh float64, m int) float64 {
	if m <= 0 {
		return 0
	}
	return phiKWh * float64(m)
}

// TransferEnergy returns F = vartheta * W for a model of sizeBytes shipped at
// varthetaKWhPerByte.
func TransferEnergy(varthetaKWhPerByte float64, sizeBytes int64) float64 {
	if sizeBytes <= 0 {
		return 0
	}
	return varthetaKWhPerByte * float64(sizeBytes)
}

// RecordInference adds inference energy to the meter and returns the
// resulting emission in kg.
func (m *Meter) RecordInference(kwh float64) float64 {
	m.inferKWh += kwh
	return kwh * m.rate
}

// RecordTransfer adds model-transfer energy to the meter and returns the
// resulting emission in kg.
func (m *Meter) RecordTransfer(kwh float64) float64 {
	m.transferKWh += kwh
	return kwh * m.rate
}

// Emission converts energy to emission at the meter's rate.
func (m *Meter) Emission(kwh float64) float64 { return kwh * m.rate }

// Rate returns the configured emission rate.
func (m *Meter) Rate() float64 { return m.rate }

// TotalKWh returns cumulative energy recorded.
func (m *Meter) TotalKWh() float64 { return m.inferKWh + m.transferKWh }

// InferenceKWh returns cumulative inference energy.
func (m *Meter) InferenceKWh() float64 { return m.inferKWh }

// TransferKWh returns cumulative transfer energy.
func (m *Meter) TransferKWh() float64 { return m.transferKWh }

// TotalEmission returns cumulative emissions in kg CO2.
func (m *Meter) TotalEmission() float64 { return m.TotalKWh() * m.rate }
