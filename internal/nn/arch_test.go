package nn

import (
	"math/rand"
	"testing"
)

func TestArchitecturesForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mnistIn := []int{1, 28, 28}
	cifarIn := []int{3, 32, 32}
	tests := []struct {
		name string
		net  *Network
		in   []int
	}{
		{"cnn-mnist", BuildCNN("cnn", mnistIn, 8, 16, 32, 10, rng), mnistIn},
		{"lenet-mnist", BuildLeNet5("lenet", mnistIn, 1, 10, rng), mnistIn},
		{"mlp-mnist", BuildMLP("mlp", mnistIn, 64, 32, 10, rng), mnistIn},
		{"cnn-cifar", BuildCNN("cnn", cifarIn, 8, 16, 32, 10, rng), cifarIn},
		{"lenet-cifar", BuildLeNet5("lenet", cifarIn, 1, 10, rng), cifarIn},
		{"mobile-cifar", BuildMobileCNN("mobile", cifarIn, 8, 16, 10, rng), cifarIn},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, err := tt.net.OutDim()
			if err != nil {
				t.Fatalf("OutDim: %v", err)
			}
			if out != 10 {
				t.Fatalf("OutDim = %d, want 10", out)
			}
			x := randomTensor(rng, tt.in...)
			logits := tt.net.Forward(x)
			if logits.Len() != 10 {
				t.Fatalf("logits len = %d", logits.Len())
			}
			if tt.net.NumParams() <= 0 {
				t.Error("no parameters")
			}
			if tt.net.ForwardFLOPs() <= 0 {
				t.Error("no FLOPs")
			}
		})
	}
}

func TestCapacityOrdering(t *testing.T) {
	// Bigger variants of the same family must have more parameters and more
	// FLOPs — the model zoo relies on this to derive distinct energy/sizes.
	rng := rand.New(rand.NewSource(22))
	in := []int{1, 28, 28}
	small := BuildCNN("small", in, 8, 16, 32, 10, rng)
	large := BuildCNN("large", in, 16, 32, 64, 10, rng)
	if small.NumParams() >= large.NumParams() {
		t.Errorf("params: small %d >= large %d", small.NumParams(), large.NumParams())
	}
	if small.ForwardFLOPs() >= large.ForwardFLOPs() {
		t.Errorf("flops: small %d >= large %d", small.ForwardFLOPs(), large.ForwardFLOPs())
	}

	l1 := BuildLeNet5("l1", in, 1, 10, rng)
	l2 := BuildLeNet5("l2", in, 2, 10, rng)
	if l1.NumParams() >= l2.NumParams() {
		t.Errorf("lenet params: %d >= %d", l1.NumParams(), l2.NumParams())
	}
}

func TestLeNetScaleDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	in := []int{1, 28, 28}
	n := BuildLeNet5("l", in, 0, 10, rng) // scale <= 0 falls back to 1
	ref := BuildLeNet5("r", in, 1, 10, rng)
	if n.NumParams() != ref.NumParams() {
		t.Errorf("default scale mismatch: %d vs %d", n.NumParams(), ref.NumParams())
	}
}

func TestMobileCheaperThanCNN(t *testing.T) {
	// The MobileNet stand-in must be cheaper per inference than the plain
	// CNN with similar channel counts (that is its entire point).
	rng := rand.New(rand.NewSource(24))
	in := []int{3, 32, 32}
	mobile := BuildMobileCNN("mobile", in, 8, 16, 10, rng)
	cnn := BuildCNN("cnn", in, 8, 16, 32, 10, rng)
	if mobile.ForwardFLOPs() >= cnn.ForwardFLOPs() {
		t.Errorf("mobile FLOPs %d >= cnn FLOPs %d", mobile.ForwardFLOPs(), cnn.ForwardFLOPs())
	}
}
