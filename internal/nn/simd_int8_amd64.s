// Integer SIMD kernels for the INT8 inference path. See simd_int8_amd64.go
// for the dispatch layer and qkernels.go (qdotRowRef) for the reference
// semantics. All accumulation is int32 two's-complement wraparound, which is
// associative — the vector lane regrouping below is therefore bit-identical
// to the scalar reference by construction, with no rounding to pin.

#include "textflag.h"

// 0x80 in every byte: XORing an int8 with it adds 128 (mod 256), i.e. maps
// signed [-128,127] onto unsigned [0,255]. The VNNI kernel uses this to feed
// VPDPBUSD's unsigned operand; see qgemm2VNNI below for the compensation.
DATA qflip<>+0(SB)/8, $0x8080808080808080
GLOBL qflip<>(SB), RODATA|NOPTR, $8

// func qdotRowSSE2(out []int32, a, b []int8, n, k int)
//
// out[j] = sum_{p<k} int32(a[p]) * int32(b[j*k+p]) for j < n.
//
// Per 16-byte step: load 16 int8s of a and of the b row, sign-extend each
// half to words via a self-interleaving PUNPCK + arithmetic shift, PMADDWD
// the word pairs (exact: |pair sum| <= 2*127*127 << 2^31), and PADDD into a
// 4-lane accumulator. The scalar tail accumulates in a GPR and joins the
// lane sum after the horizontal reduction.
TEXT ·qdotRowSSE2(SB), NOSPLIT, $0-88
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	MOVQ n+72(FP), CX
	MOVQ k+80(FP), DX
	MOVQ DX, R11
	SUBQ $16, R11 // R11 = k-16 (vector loop bound)
	XORQ R8, R8   // j

sse2_jloop:
	CMPQ R8, CX
	JGE  sse2_done
	MOVQ  R8, R9
	IMULQ DX, R9
	ADDQ  BX, R9 // R9 = &b[j*k]
	PXOR X7, X7  // 4-lane int32 accumulator
	XORQ R12, R12 // scalar tail accumulator
	XORQ R10, R10 // p
	CMPQ R11, $0
	JL   sse2_tail // k < 16: straight to scalar

sse2_vloop:
	MOVOU (SI)(R10*1), X0 // 16 int8s of a
	MOVOU (R9)(R10*1), X2 // 16 int8s of the b row
	MOVO  X0, X1
	MOVO  X2, X3
	PUNPCKLBW X0, X0 // low 8 bytes duplicated into words
	PSRAW     $8, X0 // sign-extend: word = int16(byte)
	PUNPCKLBW X2, X2
	PSRAW     $8, X2
	PMADDWL   X2, X0 // 8 products -> 4 pair sums
	PADDD     X0, X7
	PUNPCKHBW X1, X1 // high 8 bytes
	PSRAW     $8, X1
	PUNPCKHBW X3, X3
	PSRAW     $8, X3
	PMADDWL   X3, X1
	PADDD     X1, X7
	ADDQ $16, R10
	CMPQ R10, R11
	JLE  sse2_vloop

sse2_tail:
	CMPQ R10, DX
	JGE  sse2_reduce
	MOVBQSX (SI)(R10*1), AX
	MOVBQSX (R9)(R10*1), R13
	IMULQ   R13, AX
	ADDQ    AX, R12
	INCQ R10
	JMP  sse2_tail

sse2_reduce:
	MOVO  X7, X6
	PSRLO $8, X6 // lanes {2,3} -> {0,1}
	PADDD X6, X7
	MOVO  X7, X6
	PSRLO $4, X6 // lane 1 -> 0
	PADDD X6, X7
	MOVQ X7, AX
	ADDL R12, AX // wraparound join of the scalar tail
	MOVL AX, (DI)(R8*4)
	INCQ R8
	JMP  sse2_jloop

sse2_done:
	RET

// func qdotRowAVX2(out []int32, a, b []int8, n, k int)
//
// The wide tier: VPMOVSXBW sign-extends 16 int8s straight into a ymm of
// words, VPMADDWD pairs them into 8 int32 lanes. The main loop retires 32
// bytes per iteration (two extend+madd chains into one accumulator), a
// single 16-byte step drains p <= k-16, and the scalar tail joins after the
// cross-lane reduction. Dispatch guarantees k >= 16 here.
TEXT ·qdotRowAVX2(SB), NOSPLIT, $0-88
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	MOVQ n+72(FP), CX
	MOVQ k+80(FP), DX
	MOVQ DX, R11
	SUBQ $32, R11 // R11 = k-32 (main loop bound)
	MOVQ DX, R14
	SUBQ $16, R14 // R14 = k-16 (single-step bound)
	XORQ R8, R8   // j

avx2_jloop:
	CMPQ R8, CX
	JGE  avx2_done
	MOVQ  R8, R9
	IMULQ DX, R9
	ADDQ  BX, R9 // R9 = &b[j*k]
	VPXOR Y7, Y7, Y7 // 8-lane int32 accumulator
	XORQ  R12, R12   // scalar tail accumulator
	XORQ  R10, R10   // p
	CMPQ  R11, $0
	JL    avx2_step16

avx2_vloop:
	VPMOVSXBW (SI)(R10*1), Y0
	VPMOVSXBW (R9)(R10*1), Y1
	VPMADDWD  Y1, Y0, Y0
	VPADDD    Y0, Y7, Y7
	VPMOVSXBW 16(SI)(R10*1), Y2
	VPMOVSXBW 16(R9)(R10*1), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y7, Y7
	ADDQ $32, R10
	CMPQ R10, R11
	JLE  avx2_vloop

avx2_step16:
	CMPQ R10, R14
	JG   avx2_tail
	VPMOVSXBW (SI)(R10*1), Y0
	VPMOVSXBW (R9)(R10*1), Y1
	VPMADDWD  Y1, Y0, Y0
	VPADDD    Y0, Y7, Y7
	ADDQ $16, R10

avx2_tail:
	CMPQ R10, DX
	JGE  avx2_reduce
	MOVBQSX (SI)(R10*1), AX
	MOVBQSX (R9)(R10*1), R13
	IMULQ   R13, AX
	ADDQ    AX, R12
	INCQ R10
	JMP  avx2_tail

avx2_reduce:
	VEXTRACTI128 $1, Y7, X6
	VPADDD  X6, X7, X7 // fold high 128 into low
	VPSRLDQ $8, X7, X6
	VPADDD  X6, X7, X7 // lanes {2,3} -> {0,1}
	VPSRLDQ $4, X7, X6
	VPADDD  X6, X7, X7 // lane 1 -> 0
	MOVQ X7, AX
	ADDL R12, AX // wraparound join of the scalar tail
	MOVL AX, (DI)(R8*4)
	INCQ R8
	JMP  avx2_jloop

avx2_done:
	VZEROUPPER
	RET

// func qgemm2SSE2(out0, out1 []int32, a0, a1, b []int8, n, k int)
//
// Batch-tiled dual-row kernel: two a rows against the same n rows of b, the
// columns blocked 4 at a time into a 2x4 register tile of int32 accumulators
// (X0..X7). Each 16-byte k-step sign-extends a0/a1 once (X8..X11) and each
// of the four b rows once (X12/X13), so the expensive extension work is
// amortized over 8 accumulators instead of 2. int32 wraparound addition is
// associative, so this regrouping is bit-identical to eight qdotRowRef calls
// — no accumulation-order contract constrains the blocking. The dispatcher
// guarantees k >= 16 and k % 16 == 0 (the engine pads every weight and
// im2col row to padTo16), so there is no scalar tail; a trailing n % 4
// column loop reuses the shared-b dual-row pattern.
TEXT ·qgemm2SSE2(SB), NOSPLIT, $0-136
	MOVQ out0_base+0(FP), DI
	MOVQ out1_base+24(FP), AX
	MOVQ a0_base+48(FP), SI
	MOVQ a1_base+72(FP), R13
	MOVQ b_base+96(FP), BX
	MOVQ n+120(FP), CX
	MOVQ k+128(FP), DX
	MOVQ DX, R11
	SUBQ $16, R11        // R11 = k-16 (k-loop bound; k >= 16 guaranteed)
	LEAQ (DX)(DX*2), R12 // R12 = 3k (b row 3 offset)
	XORQ R8, R8          // j

g2s_jquad:
	LEAQ 3(R8), R14
	CMPQ R14, CX
	JGE  g2s_jtail // fewer than 4 columns left
	MOVQ  R8, R9
	IMULQ DX, R9
	ADDQ  BX, R9 // R9 = &b[j*k], advanced 16 per k-step
	PXOR X0, X0  // acc[a0][j+0]
	PXOR X1, X1  // acc[a1][j+0]
	PXOR X2, X2  // acc[a0][j+1]
	PXOR X3, X3  // acc[a1][j+1]
	PXOR X4, X4  // acc[a0][j+2]
	PXOR X5, X5  // acc[a1][j+2]
	PXOR X6, X6  // acc[a0][j+3]
	PXOR X7, X7  // acc[a1][j+3]
	XORQ R10, R10

g2s_kloop:
	MOVOU (SI)(R10*1), X8 // a0: low/high word extends in X8/X9
	MOVO  X8, X9
	PUNPCKLBW X8, X8
	PSRAW     $8, X8
	PUNPCKHBW X9, X9
	PSRAW     $8, X9
	MOVOU (R13)(R10*1), X10 // a1: X10/X11
	MOVO  X10, X11
	PUNPCKLBW X10, X10
	PSRAW     $8, X10
	PUNPCKHBW X11, X11
	PSRAW     $8, X11
	MOVOU (R9), X12 // b row j+0
	MOVO  X12, X13
	PUNPCKLBW X12, X12
	PSRAW     $8, X12
	PUNPCKHBW X13, X13
	PSRAW     $8, X13
	MOVO    X12, X14
	PMADDWL X8, X14
	PADDD   X14, X0
	MOVO    X13, X14
	PMADDWL X9, X14
	PADDD   X14, X0
	MOVO    X12, X14
	PMADDWL X10, X14
	PADDD   X14, X1
	MOVO    X13, X14
	PMADDWL X11, X14
	PADDD   X14, X1
	MOVOU (R9)(DX*1), X12 // b row j+1
	MOVO  X12, X13
	PUNPCKLBW X12, X12
	PSRAW     $8, X12
	PUNPCKHBW X13, X13
	PSRAW     $8, X13
	MOVO    X12, X14
	PMADDWL X8, X14
	PADDD   X14, X2
	MOVO    X13, X14
	PMADDWL X9, X14
	PADDD   X14, X2
	MOVO    X12, X14
	PMADDWL X10, X14
	PADDD   X14, X3
	MOVO    X13, X14
	PMADDWL X11, X14
	PADDD   X14, X3
	MOVOU (R9)(DX*2), X12 // b row j+2
	MOVO  X12, X13
	PUNPCKLBW X12, X12
	PSRAW     $8, X12
	PUNPCKHBW X13, X13
	PSRAW     $8, X13
	MOVO    X12, X14
	PMADDWL X8, X14
	PADDD   X14, X4
	MOVO    X13, X14
	PMADDWL X9, X14
	PADDD   X14, X4
	MOVO    X12, X14
	PMADDWL X10, X14
	PADDD   X14, X5
	MOVO    X13, X14
	PMADDWL X11, X14
	PADDD   X14, X5
	MOVOU (R9)(R12*1), X12 // b row j+3
	MOVO  X12, X13
	PUNPCKLBW X12, X12
	PSRAW     $8, X12
	PUNPCKHBW X13, X13
	PSRAW     $8, X13
	MOVO    X12, X14
	PMADDWL X8, X14
	PADDD   X14, X6
	MOVO    X13, X14
	PMADDWL X9, X14
	PADDD   X14, X6
	MOVO    X12, X14
	PMADDWL X10, X14
	PADDD   X14, X7
	MOVO    X13, X14
	PMADDWL X11, X14
	PADDD   X14, X7
	ADDQ $16, R9
	ADDQ $16, R10
	CMPQ R10, R11
	JLE  g2s_kloop

	// Transpose-reduce: interleave the four accumulators of each out row so
	// one PADDD tree yields [j, j+1, j+2, j+3] in a single xmm, stored with
	// one 16-byte write (PHADDD is SSSE3, so the SSE2 baseline transposes
	// with unpacks instead). 10 ops per 4 outputs instead of 7 per 1.
	MOVO X0, X8
	PUNPCKLLQ X2, X8 // [a0 b0 a1 b1]
	PUNPCKHLQ X2, X0 // [a2 b2 a3 b3]
	PADDD X0, X8
	MOVO X4, X9
	PUNPCKLLQ X6, X9
	PUNPCKHLQ X6, X4
	PADDD X4, X9     // [c02 d02 c13 d13]
	MOVO X8, X10
	PUNPCKLQDQ X9, X10
	PUNPCKHQDQ X9, X8
	PADDD X8, X10
	MOVOU X10, (DI)(R8*4)
	MOVO X1, X8
	PUNPCKLLQ X3, X8
	PUNPCKHLQ X3, X1
	PADDD X1, X8
	MOVO X5, X9
	PUNPCKLLQ X7, X9
	PUNPCKHLQ X7, X5
	PADDD X5, X9
	MOVO X8, X10
	PUNPCKLQDQ X9, X10
	PUNPCKHQDQ X9, X8
	PADDD X8, X10
	MOVOU X10, (AX)(R8*4)
	ADDQ $4, R8
	JMP  g2s_jquad

g2s_jtail:
	CMPQ R8, CX
	JGE  g2s_done
	MOVQ  R8, R9
	IMULQ DX, R9
	ADDQ  BX, R9 // R9 = &b[j*k]
	PXOR X6, X6  // accumulator for a0
	PXOR X7, X7  // accumulator for a1
	XORQ R10, R10

g2s_tloop:
	MOVOU (R9)(R10*1), X0 // 16 int8s of the shared b row
	MOVO  X0, X1
	PUNPCKLBW X0, X0
	PSRAW     $8, X0
	PUNPCKHBW X1, X1
	PSRAW     $8, X1
	MOVOU (SI)(R10*1), X2 // a0
	MOVO  X2, X3
	PUNPCKLBW X2, X2
	PSRAW     $8, X2
	PUNPCKHBW X3, X3
	PSRAW     $8, X3
	PMADDWL X0, X2
	PADDD   X2, X6
	PMADDWL X1, X3
	PADDD   X3, X6
	MOVOU (R13)(R10*1), X4 // a1
	MOVO  X4, X5
	PUNPCKLBW X4, X4
	PSRAW     $8, X4
	PUNPCKHBW X5, X5
	PSRAW     $8, X5
	PMADDWL X0, X4
	PADDD   X4, X7
	PMADDWL X1, X5
	PADDD   X5, X7
	ADDQ $16, R10
	CMPQ R10, R11
	JLE  g2s_tloop

	MOVO  X6, X0
	PSRLO $8, X0
	PADDD X0, X6
	MOVO  X6, X0
	PSRLO $4, X0
	PADDD X0, X6
	MOVQ X6, R14
	MOVL R14, (DI)(R8*4)
	MOVO  X7, X0
	PSRLO $8, X0
	PADDD X0, X7
	MOVO  X7, X0
	PSRLO $4, X0
	PADDD X0, X7
	MOVQ X7, R14
	MOVL R14, (AX)(R8*4)
	INCQ R8
	JMP  g2s_jtail

g2s_done:
	RET

// func qgemm2AVX2(out0, out1 []int32, a0, a1, b []int8, n, k int)
//
// Wide batch-tiled kernel, same 2x4 int32 tile as qgemm2SSE2 in Y0..Y7.
// Per 16-byte k-step the two a rows are sign-extended once (Y8/Y9) and each
// b row once (Y10), giving 6 VPMOVSXBW per 128 MACs versus 8 per 64 in the
// single-row kernel — 0.375 extends per madd instead of 1.5. Same
// k >= 16 && k % 16 == 0 precondition, same bit-exactness argument.
TEXT ·qgemm2AVX2(SB), NOSPLIT, $0-136
	MOVQ out0_base+0(FP), DI
	MOVQ out1_base+24(FP), AX
	MOVQ a0_base+48(FP), SI
	MOVQ a1_base+72(FP), R13
	MOVQ b_base+96(FP), BX
	MOVQ n+120(FP), CX
	MOVQ k+128(FP), DX
	MOVQ DX, R11
	SUBQ $16, R11        // R11 = k-16
	LEAQ (DX)(DX*2), R12 // R12 = 3k
	XORQ R8, R8          // j

g2a_jquad:
	LEAQ 3(R8), R14
	CMPQ R14, CX
	JGE  g2a_jtail
	MOVQ  R8, R9
	IMULQ DX, R9
	ADDQ  BX, R9 // R9 = &b[j*k], advanced 16 per k-step
	VPXOR Y0, Y0, Y0 // acc[a0][j+0]
	VPXOR Y1, Y1, Y1 // acc[a1][j+0]
	VPXOR Y2, Y2, Y2 // acc[a0][j+1]
	VPXOR Y3, Y3, Y3 // acc[a1][j+1]
	VPXOR Y4, Y4, Y4 // acc[a0][j+2]
	VPXOR Y5, Y5, Y5 // acc[a1][j+2]
	VPXOR Y6, Y6, Y6 // acc[a0][j+3]
	VPXOR Y7, Y7, Y7 // acc[a1][j+3]
	XORQ  R10, R10

g2a_kloop:
	VPMOVSXBW (SI)(R10*1), Y8   // a0 words
	VPMOVSXBW (R13)(R10*1), Y9  // a1 words
	VPMOVSXBW (R9), Y10         // b row j+0
	VPMADDWD  Y10, Y8, Y11
	VPADDD    Y11, Y0, Y0
	VPMADDWD  Y10, Y9, Y11
	VPADDD    Y11, Y1, Y1
	VPMOVSXBW (R9)(DX*1), Y10   // b row j+1
	VPMADDWD  Y10, Y8, Y11
	VPADDD    Y11, Y2, Y2
	VPMADDWD  Y10, Y9, Y11
	VPADDD    Y11, Y3, Y3
	VPMOVSXBW (R9)(DX*2), Y10   // b row j+2
	VPMADDWD  Y10, Y8, Y11
	VPADDD    Y11, Y4, Y4
	VPMADDWD  Y10, Y9, Y11
	VPADDD    Y11, Y5, Y5
	VPMOVSXBW (R9)(R12*1), Y10  // b row j+3
	VPMADDWD  Y10, Y8, Y11
	VPADDD    Y11, Y6, Y6
	VPMADDWD  Y10, Y9, Y11
	VPADDD    Y11, Y7, Y7
	ADDQ $16, R9
	ADDQ $16, R10
	CMPQ R10, R11
	JLE  g2a_kloop

	// VPHADDD tree: three hadds collapse four 8-lane accumulators into one
	// xmm of [j, j+1, j+2, j+3] column sums per out row, stored with a
	// single 16-byte write — 6 ops per 4 outputs instead of 8 per 1, which
	// is what makes the tile pay off at small k (conv1 is k=16).
	VPHADDD Y2, Y0, Y8
	VPHADDD Y6, Y4, Y9
	VPHADDD Y9, Y8, Y8
	VEXTRACTI128 $1, Y8, X9
	VPADDD  X9, X8, X8
	VMOVDQU X8, (DI)(R8*4)
	VPHADDD Y3, Y1, Y8
	VPHADDD Y7, Y5, Y9
	VPHADDD Y9, Y8, Y8
	VEXTRACTI128 $1, Y8, X9
	VPADDD  X9, X8, X8
	VMOVDQU X8, (AX)(R8*4)
	ADDQ $4, R8
	JMP  g2a_jquad

g2a_jtail:
	CMPQ R8, CX
	JGE  g2a_done
	MOVQ  R8, R9
	IMULQ DX, R9
	ADDQ  BX, R9
	VPXOR Y6, Y6, Y6 // accumulator for a0
	VPXOR Y7, Y7, Y7 // accumulator for a1
	XORQ  R10, R10

g2a_tloop:
	VPMOVSXBW (R9)(R10*1), Y10 // shared b
	VPMOVSXBW (SI)(R10*1), Y8
	VPMADDWD  Y10, Y8, Y8
	VPADDD    Y8, Y6, Y6
	VPMOVSXBW (R13)(R10*1), Y9
	VPMADDWD  Y10, Y9, Y9
	VPADDD    Y9, Y7, Y7
	ADDQ $16, R10
	CMPQ R10, R11
	JLE  g2a_tloop

	VEXTRACTI128 $1, Y6, X8
	VPADDD  X8, X6, X6
	VPSRLDQ $8, X6, X8
	VPADDD  X8, X6, X6
	VPSRLDQ $4, X6, X8
	VPADDD  X8, X6, X6
	MOVQ X6, R14
	MOVL R14, (DI)(R8*4)
	VEXTRACTI128 $1, Y7, X8
	VPADDD  X8, X7, X7
	VPSRLDQ $8, X7, X8
	VPADDD  X8, X7, X7
	VPSRLDQ $4, X7, X8
	VPADDD  X8, X7, X7
	MOVQ X7, R14
	MOVL R14, (AX)(R8*4)
	INCQ R8
	JMP  g2a_jtail

g2a_done:
	VZEROUPPER
	RET

// func qgemm2VNNI(out0, out1 []int32, a0, a1, b []int8, n, k int)
//
// AVX-512 VNNI tier: VPDPBUSD fuses the extend+madd+add chain into one
// instruction that retires 64 int8 MACs per accumulator, but its first
// operand is UNSIGNED. The standard fixup applies: XOR each b byte with
// 0x80 (= b+128 viewed unsigned, exact in the mod-2^32 ring VPDPBUSD
// accumulates in, since the instruction's dword adds wrap rather than
// saturate), so each lane accumulates sum((b[p]+128)*a[p]) =
// dot + 128*sum(a). The preamble computes comp_i = 128*sum_p a_i[p] once
// per call with the exact-by-range VPMADDWD-by-ones trick, and the stores
// subtract it — every step is exact mod 2^32, and the true dot fits int32,
// so the result is bit-identical to qdotRowRef.
//
// Same 2x4 column tile as the other qgemm2 kernels (accumulators Z0..Z7,
// 16 lanes each), 64-byte main k-steps with a 16-byte xmm-load remainder:
// the xmm loads zero the upper 48 bytes of both operand registers, so after
// the flip the upper b bytes become +128 against zero a bytes — zero
// products — and full-width VPDPBUSD into the live zmm accumulators stays
// exact without clobbering them. Precondition k >= 16 && k % 16 == 0 as
// with the other tiers.
TEXT ·qgemm2VNNI(SB), NOSPLIT, $0-136
	MOVQ out0_base+0(FP), DI
	MOVQ out1_base+24(FP), AX
	MOVQ a0_base+48(FP), SI
	MOVQ a1_base+72(FP), R13
	MOVQ b_base+96(FP), BX
	MOVQ n+120(FP), CX
	MOVQ k+128(FP), DX

	// comp_i = 128 * sum_p a_i[p], computed as VPMADDWD against words of 1
	// (exact: |pair sum| <= 2*127). Stored negated: R14 = -comp0 and
	// X15 = -comp1 (spilled so the GPRs stay free for addressing).
	VPCMPEQD Y12, Y12, Y12
	VPSRLW   $15, Y12, Y12 // Y12 = 16 words of 1
	VPXOR    Y13, Y13, Y13 // sum(a0) lanes
	VPXOR    Y14, Y14, Y14 // sum(a1) lanes
	MOVQ DX, R11
	SUBQ $16, R11 // R11 = k-16
	XORQ R10, R10

vnni_comp:
	VPMOVSXBW (SI)(R10*1), Y8
	VPMADDWD  Y12, Y8, Y8
	VPADDD    Y8, Y13, Y13
	VPMOVSXBW (R13)(R10*1), Y9
	VPMADDWD  Y12, Y9, Y9
	VPADDD    Y9, Y14, Y14
	ADDQ $16, R10
	CMPQ R10, R11
	JLE  vnni_comp

	VEXTRACTI128 $1, Y13, X8
	VPADDD  X8, X13, X13
	VPSRLDQ $8, X13, X8
	VPADDD  X8, X13, X13
	VPSRLDQ $4, X13, X8
	VPADDD  X8, X13, X13
	MOVQ X13, R14
	SHLL $7, R14
	NEGL R14 // R14 = -comp0
	VEXTRACTI128 $1, Y14, X8
	VPADDD  X8, X14, X14
	VPSRLDQ $8, X14, X8
	VPADDD  X8, X14, X14
	VPSRLDQ $4, X14, X8
	VPADDD  X8, X14, X14
	MOVQ X14, R9
	SHLL $7, R9
	NEGL R9
	MOVQ R9, X15 // X15 = -comp1 (scalar, for the column tail)

	// Vector forms of the compensations for the quad stores.
	MOVL R14, X12
	VPBROADCASTD X12, X12 // X12 = [-comp0] x4
	VPBROADCASTD X15, X13 // X13 = [-comp1] x4

	VPBROADCASTQ qflip<>(SB), Z10 // 0x80 in every byte
	MOVQ DX, R11
	SUBQ $64, R11        // R11 = k-64 (main loop bound)
	LEAQ (DX)(DX*2), R12 // R12 = 3k
	XORQ R8, R8          // j

vnni_jquad:
	LEAQ 3(R8), R9
	CMPQ R9, CX
	JGE  vnni_jtail
	MOVQ  R8, R9
	IMULQ DX, R9
	ADDQ  BX, R9 // R9 = &b[j*k], advanced per k-step
	VPXORD Z0, Z0, Z0 // acc[a0][j+0]
	VPXORD Z1, Z1, Z1 // acc[a1][j+0]
	VPXORD Z2, Z2, Z2 // acc[a0][j+1]
	VPXORD Z3, Z3, Z3 // acc[a1][j+1]
	VPXORD Z4, Z4, Z4 // acc[a0][j+2]
	VPXORD Z5, Z5, Z5 // acc[a1][j+2]
	VPXORD Z6, Z6, Z6 // acc[a0][j+3]
	VPXORD Z7, Z7, Z7 // acc[a1][j+3]
	XORQ R10, R10
	CMPQ R11, $0
	JL   vnni_krem // k < 64: 16-byte steps only

vnni_kmain:
	VMOVDQU64 (SI)(R10*1), Z8  // a0
	VMOVDQU64 (R13)(R10*1), Z9 // a1
	VMOVDQU64 (R9), Z11        // b row j+0
	VPXORD   Z10, Z11, Z11
	VPDPBUSD Z8, Z11, Z0
	VPDPBUSD Z9, Z11, Z1
	VMOVDQU64 (R9)(DX*1), Z11 // b row j+1
	VPXORD   Z10, Z11, Z11
	VPDPBUSD Z8, Z11, Z2
	VPDPBUSD Z9, Z11, Z3
	VMOVDQU64 (R9)(DX*2), Z11 // b row j+2
	VPXORD   Z10, Z11, Z11
	VPDPBUSD Z8, Z11, Z4
	VPDPBUSD Z9, Z11, Z5
	VMOVDQU64 (R9)(R12*1), Z11 // b row j+3
	VPXORD   Z10, Z11, Z11
	VPDPBUSD Z8, Z11, Z6
	VPDPBUSD Z9, Z11, Z7
	ADDQ $64, R9
	ADDQ $64, R10
	CMPQ R10, R11
	JLE  vnni_kmain

vnni_krem:
	CMPQ R10, DX
	JGE  vnni_reduce
	VMOVDQU (SI)(R10*1), X8  // upper 48 a bytes zeroed
	VMOVDQU (R13)(R10*1), X9
	VMOVDQU (R9), X11
	VPXORD   Z10, Z11, Z11 // upper b bytes flip to +128; a there is 0
	VPDPBUSD Z8, Z11, Z0
	VPDPBUSD Z9, Z11, Z1
	VMOVDQU (R9)(DX*1), X11
	VPXORD   Z10, Z11, Z11
	VPDPBUSD Z8, Z11, Z2
	VPDPBUSD Z9, Z11, Z3
	VMOVDQU (R9)(DX*2), X11
	VPXORD   Z10, Z11, Z11
	VPDPBUSD Z8, Z11, Z4
	VPDPBUSD Z9, Z11, Z5
	VMOVDQU (R9)(R12*1), X11
	VPXORD   Z10, Z11, Z11
	VPDPBUSD Z8, Z11, Z6
	VPDPBUSD Z9, Z11, Z7
	ADDQ $16, R9
	ADDQ $16, R10
	JMP  vnni_krem

vnni_reduce:
	// Fold each zmm accumulator to its low ymm, then the same VPHADDD tree
	// as qgemm2AVX2 collapses each 4-column row into one xmm, plus the
	// broadcast compensation, stored with a single 16-byte write.
	VEXTRACTI64X4 $1, Z0, Y8
	VPADDD Y8, Y0, Y0
	VEXTRACTI64X4 $1, Z1, Y8
	VPADDD Y8, Y1, Y1
	VEXTRACTI64X4 $1, Z2, Y8
	VPADDD Y8, Y2, Y2
	VEXTRACTI64X4 $1, Z3, Y8
	VPADDD Y8, Y3, Y3
	VEXTRACTI64X4 $1, Z4, Y8
	VPADDD Y8, Y4, Y4
	VEXTRACTI64X4 $1, Z5, Y8
	VPADDD Y8, Y5, Y5
	VEXTRACTI64X4 $1, Z6, Y8
	VPADDD Y8, Y6, Y6
	VEXTRACTI64X4 $1, Z7, Y8
	VPADDD Y8, Y7, Y7
	VPHADDD Y2, Y0, Y8
	VPHADDD Y6, Y4, Y9
	VPHADDD Y9, Y8, Y8
	VEXTRACTI128 $1, Y8, X9
	VPADDD  X9, X8, X8
	VPADDD  X12, X8, X8 // -comp0 on all four columns
	VMOVDQU X8, (DI)(R8*4)
	VPHADDD Y3, Y1, Y8
	VPHADDD Y7, Y5, Y9
	VPHADDD Y9, Y8, Y8
	VEXTRACTI128 $1, Y8, X9
	VPADDD  X9, X8, X8
	VPADDD  X13, X8, X8 // -comp1
	VMOVDQU X8, (AX)(R8*4)
	ADDQ $4, R8
	JMP  vnni_jquad

vnni_jtail:
	CMPQ R8, CX
	JGE  vnni_done
	MOVQ  R8, R9
	IMULQ DX, R9
	ADDQ  BX, R9
	VPXORD Z0, Z0, Z0 // accumulator for a0
	VPXORD Z1, Z1, Z1 // accumulator for a1
	XORQ R10, R10
	CMPQ R11, $0
	JL   vnni_trem

vnni_tmain:
	VMOVDQU64 (SI)(R10*1), Z8
	VMOVDQU64 (R13)(R10*1), Z9
	VMOVDQU64 (R9)(R10*1), Z11
	VPXORD   Z10, Z11, Z11
	VPDPBUSD Z8, Z11, Z0
	VPDPBUSD Z9, Z11, Z1
	ADDQ $64, R10
	CMPQ R10, R11
	JLE  vnni_tmain

vnni_trem:
	CMPQ R10, DX
	JGE  vnni_treduce
	VMOVDQU (SI)(R10*1), X8
	VMOVDQU (R13)(R10*1), X9
	VMOVDQU (R9)(R10*1), X11
	VPXORD   Z10, Z11, Z11
	VPDPBUSD Z8, Z11, Z0
	VPDPBUSD Z9, Z11, Z1
	ADDQ $16, R10
	JMP  vnni_trem

vnni_treduce:
	MOVQ X15, R10 // -comp1
	VEXTRACTI64X4 $1, Z0, Y8
	VPADDD  Y8, Y0, Y0
	VEXTRACTI128 $1, Y0, X8
	VPADDD  X8, X0, X0
	VPSRLDQ $8, X0, X8
	VPADDD  X8, X0, X0
	VPSRLDQ $4, X0, X8
	VPADDD  X8, X0, X0
	MOVQ X0, R9
	ADDL R14, R9
	MOVL R9, (DI)(R8*4)
	VEXTRACTI64X4 $1, Z1, Y8
	VPADDD  Y8, Y1, Y1
	VEXTRACTI128 $1, Y1, X8
	VPADDD  X8, X1, X1
	VPSRLDQ $8, X1, X8
	VPADDD  X8, X1, X1
	VPSRLDQ $4, X1, X8
	VPADDD  X8, X1, X1
	MOVQ X1, R9
	ADDL R10, R9
	MOVL R9, (AX)(R8*4)
	INCQ R8
	JMP  vnni_jtail

vnni_done:
	VZEROUPPER
	RET

// func requantizeRowAVX512(dst []int8, acc []int32, bias, m int32, shift int, lo int8)
//
// 8 accumulators per step. Dword bias add wraps exactly like Go's int32 +,
// VPMOVSXDQ/VPMULDQ form the exact signed int64 product (v+bias)*m, VPADDQ
// adds the hoisted rounding constant 1<<(shift-1), VPSRAQ floors like Go's
// arithmetic >>, and VPMAXSQ/VPMINSQ clamp to [lo, 127] so the VPMOVQB
// truncation never drops significant bits. Preconditions (dispatcher):
// len(acc) > 0, len(acc) % 8 == 0, 0 < shift < 62.
TEXT ·requantizeRowAVX512(SB), NOSPLIT, $0-65
	MOVQ dst_base+0(FP), DI
	MOVQ acc_base+24(FP), SI
	MOVQ acc_len+32(FP), R12

	MOVL bias+48(FP), AX
	VMOVD AX, X1
	VPBROADCASTD X1, Y1     // bias in every dword
	MOVL m+52(FP), AX
	VMOVD AX, X2
	VPBROADCASTD X2, Z2     // m in every dword (VPMULDQ reads the even ones)

	MOVQ shift+56(FP), CX
	DECQ CX
	MOVQ $1, AX
	SHLQ CL, AX             // rnd = 1 << (shift-1)
	VMOVQ AX, X3
	VPBROADCASTQ X3, Z3
	INCQ CX
	MOVQ CX, X4             // VPSRAQ count

	MOVBQSX lo+64(FP), AX
	VMOVQ AX, X5
	VPBROADCASTQ X5, Z5     // lower clamp bound as int64 lanes
	MOVQ $127, AX
	VMOVQ AX, X6
	VPBROADCASTQ X6, Z6     // upper clamp bound

	XORQ BX, BX

rq_loop:
	VMOVDQU (SI)(BX*4), Y7
	VPADDD  Y1, Y7, Y7      // v + bias, int32 wraparound
	VPMOVSXDQ Y7, Z7        // 8 x int64
	VPMULDQ Z2, Z7, Z7      // p = int64(v+bias) * int64(m), exact
	VPADDQ  Z3, Z7, Z7      // p + rnd
	VPSRAQ  X4, Z7, Z7      // >> shift (arithmetic)
	VPMAXSQ Z5, Z7, Z7      // max(r, lo)
	VPMINSQ Z6, Z7, Z7      // min(r, 127)
	VPMOVQB Z7, X7          // truncate qwords to 8 bytes
	VMOVQ X7, (DI)(BX*1)
	ADDQ $8, BX
	CMPQ BX, R12
	JL   rq_loop

	VZEROUPPER
	RET
