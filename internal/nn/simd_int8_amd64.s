// Integer SIMD kernels for the INT8 inference path. See simd_int8_amd64.go
// for the dispatch layer and qkernels.go (qdotRowRef) for the reference
// semantics. All accumulation is int32 two's-complement wraparound, which is
// associative — the vector lane regrouping below is therefore bit-identical
// to the scalar reference by construction, with no rounding to pin.

#include "textflag.h"

// func qdotRowSSE2(out []int32, a, b []int8, n, k int)
//
// out[j] = sum_{p<k} int32(a[p]) * int32(b[j*k+p]) for j < n.
//
// Per 16-byte step: load 16 int8s of a and of the b row, sign-extend each
// half to words via a self-interleaving PUNPCK + arithmetic shift, PMADDWD
// the word pairs (exact: |pair sum| <= 2*127*127 << 2^31), and PADDD into a
// 4-lane accumulator. The scalar tail accumulates in a GPR and joins the
// lane sum after the horizontal reduction.
TEXT ·qdotRowSSE2(SB), NOSPLIT, $0-88
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	MOVQ n+72(FP), CX
	MOVQ k+80(FP), DX
	MOVQ DX, R11
	SUBQ $16, R11 // R11 = k-16 (vector loop bound)
	XORQ R8, R8   // j

sse2_jloop:
	CMPQ R8, CX
	JGE  sse2_done
	MOVQ  R8, R9
	IMULQ DX, R9
	ADDQ  BX, R9 // R9 = &b[j*k]
	PXOR X7, X7  // 4-lane int32 accumulator
	XORQ R12, R12 // scalar tail accumulator
	XORQ R10, R10 // p
	CMPQ R11, $0
	JL   sse2_tail // k < 16: straight to scalar

sse2_vloop:
	MOVOU (SI)(R10*1), X0 // 16 int8s of a
	MOVOU (R9)(R10*1), X2 // 16 int8s of the b row
	MOVO  X0, X1
	MOVO  X2, X3
	PUNPCKLBW X0, X0 // low 8 bytes duplicated into words
	PSRAW     $8, X0 // sign-extend: word = int16(byte)
	PUNPCKLBW X2, X2
	PSRAW     $8, X2
	PMADDWL   X2, X0 // 8 products -> 4 pair sums
	PADDD     X0, X7
	PUNPCKHBW X1, X1 // high 8 bytes
	PSRAW     $8, X1
	PUNPCKHBW X3, X3
	PSRAW     $8, X3
	PMADDWL   X3, X1
	PADDD     X1, X7
	ADDQ $16, R10
	CMPQ R10, R11
	JLE  sse2_vloop

sse2_tail:
	CMPQ R10, DX
	JGE  sse2_reduce
	MOVBQSX (SI)(R10*1), AX
	MOVBQSX (R9)(R10*1), R13
	IMULQ   R13, AX
	ADDQ    AX, R12
	INCQ R10
	JMP  sse2_tail

sse2_reduce:
	MOVO  X7, X6
	PSRLO $8, X6 // lanes {2,3} -> {0,1}
	PADDD X6, X7
	MOVO  X7, X6
	PSRLO $4, X6 // lane 1 -> 0
	PADDD X6, X7
	MOVQ X7, AX
	ADDL R12, AX // wraparound join of the scalar tail
	MOVL AX, (DI)(R8*4)
	INCQ R8
	JMP  sse2_jloop

sse2_done:
	RET

// func qdotRowAVX2(out []int32, a, b []int8, n, k int)
//
// The wide tier: VPMOVSXBW sign-extends 16 int8s straight into a ymm of
// words, VPMADDWD pairs them into 8 int32 lanes. The main loop retires 32
// bytes per iteration (two extend+madd chains into one accumulator), a
// single 16-byte step drains p <= k-16, and the scalar tail joins after the
// cross-lane reduction. Dispatch guarantees k >= 16 here.
TEXT ·qdotRowAVX2(SB), NOSPLIT, $0-88
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ b_base+48(FP), BX
	MOVQ n+72(FP), CX
	MOVQ k+80(FP), DX
	MOVQ DX, R11
	SUBQ $32, R11 // R11 = k-32 (main loop bound)
	MOVQ DX, R14
	SUBQ $16, R14 // R14 = k-16 (single-step bound)
	XORQ R8, R8   // j

avx2_jloop:
	CMPQ R8, CX
	JGE  avx2_done
	MOVQ  R8, R9
	IMULQ DX, R9
	ADDQ  BX, R9 // R9 = &b[j*k]
	VPXOR Y7, Y7, Y7 // 8-lane int32 accumulator
	XORQ  R12, R12   // scalar tail accumulator
	XORQ  R10, R10   // p
	CMPQ  R11, $0
	JL    avx2_step16

avx2_vloop:
	VPMOVSXBW (SI)(R10*1), Y0
	VPMOVSXBW (R9)(R10*1), Y1
	VPMADDWD  Y1, Y0, Y0
	VPADDD    Y0, Y7, Y7
	VPMOVSXBW 16(SI)(R10*1), Y2
	VPMOVSXBW 16(R9)(R10*1), Y3
	VPMADDWD  Y3, Y2, Y2
	VPADDD    Y2, Y7, Y7
	ADDQ $32, R10
	CMPQ R10, R11
	JLE  avx2_vloop

avx2_step16:
	CMPQ R10, R14
	JG   avx2_tail
	VPMOVSXBW (SI)(R10*1), Y0
	VPMOVSXBW (R9)(R10*1), Y1
	VPMADDWD  Y1, Y0, Y0
	VPADDD    Y0, Y7, Y7
	ADDQ $16, R10

avx2_tail:
	CMPQ R10, DX
	JGE  avx2_reduce
	MOVBQSX (SI)(R10*1), AX
	MOVBQSX (R9)(R10*1), R13
	IMULQ   R13, AX
	ADDQ    AX, R12
	INCQ R10
	JMP  avx2_tail

avx2_reduce:
	VEXTRACTI128 $1, Y7, X6
	VPADDD  X6, X7, X7 // fold high 128 into low
	VPSRLDQ $8, X7, X6
	VPADDD  X6, X7, X7 // lanes {2,3} -> {0,1}
	VPSRLDQ $4, X7, X6
	VPADDD  X6, X7, X7 // lane 1 -> 0
	MOVQ X7, AX
	ADDL R12, AX // wraparound join of the scalar tail
	MOVL AX, (DI)(R8*4)
	INCQ R8
	JMP  avx2_jloop

avx2_done:
	VZEROUPPER
	RET

// func qdot2SSE2(out0, out1 []int32, a0, a1, b []int8, n, k int)
//
// Dual-row variant: two a rows against the same n rows of b, sharing every
// b load and sign-extension between the two accumulators — the b operand is
// the expensive stream (the im2col patch matrix, re-read once per output
// channel), so amortizing it across channel pairs nearly halves the memory
// and shuffle traffic. The dispatcher guarantees k >= 16 and k % 16 == 0
// (the engine pads every weight row to the vector width), so there is no
// scalar tail. Same wraparound-sum bits as two qdotRowRef calls.
TEXT ·qdot2SSE2(SB), NOSPLIT, $0-136
	MOVQ out0_base+0(FP), DI
	MOVQ out1_base+24(FP), AX
	MOVQ a0_base+48(FP), SI
	MOVQ a1_base+72(FP), R13
	MOVQ b_base+96(FP), BX
	MOVQ n+120(FP), CX
	MOVQ k+128(FP), DX
	MOVQ DX, R11
	SUBQ $16, R11 // R11 = k-16 (loop bound; k >= 16 guaranteed)
	XORQ R8, R8   // j
	MOVQ BX, R9   // b row pointer, advanced by k per row

q2s_jloop:
	CMPQ R8, CX
	JGE  q2s_done
	PXOR X6, X6 // accumulator for a0
	PXOR X7, X7 // accumulator for a1
	XORQ R10, R10

q2s_vloop:
	MOVOU (R9)(R10*1), X0 // 16 int8s of the shared b row
	MOVO  X0, X1
	PUNPCKLBW X0, X0
	PSRAW     $8, X0 // b low words
	PUNPCKHBW X1, X1
	PSRAW     $8, X1 // b high words
	MOVOU (SI)(R10*1), X2 // a0
	MOVO  X2, X3
	PUNPCKLBW X2, X2
	PSRAW     $8, X2
	PUNPCKHBW X3, X3
	PSRAW     $8, X3
	PMADDWL X0, X2
	PADDD   X2, X6
	PMADDWL X1, X3
	PADDD   X3, X6
	MOVOU (R13)(R10*1), X4 // a1
	MOVO  X4, X5
	PUNPCKLBW X4, X4
	PSRAW     $8, X4
	PUNPCKHBW X5, X5
	PSRAW     $8, X5
	PMADDWL X0, X4
	PADDD   X4, X7
	PMADDWL X1, X5
	PADDD   X5, X7
	ADDQ $16, R10
	CMPQ R10, R11
	JLE  q2s_vloop

	MOVO  X6, X0
	PSRLO $8, X0
	PADDD X0, X6
	MOVO  X6, X0
	PSRLO $4, X0
	PADDD X0, X6
	MOVQ X6, R12
	MOVL R12, (DI)(R8*4)
	MOVO  X7, X0
	PSRLO $8, X0
	PADDD X0, X7
	MOVO  X7, X0
	PSRLO $4, X0
	PADDD X0, X7
	MOVQ X7, R12
	MOVL R12, (AX)(R8*4)
	ADDQ DX, R9
	INCQ R8
	JMP  q2s_jloop

q2s_done:
	RET

// func qdot2AVX2(out0, out1 []int32, a0, a1, b []int8, n, k int)
//
// Wide dual-row tier: per 32-byte step the shared b chunk is sign-extended
// once (two VPMOVSXBW) and VPMADDWD'd against both a rows — six shuffle-port
// ops per 128 MACs instead of eight per 64 in the single-row kernel. As in
// qdot2SSE2, the dispatcher guarantees k >= 16 and k % 16 == 0, so the only
// remainder is a possible single 16-byte step.
TEXT ·qdot2AVX2(SB), NOSPLIT, $0-136
	MOVQ out0_base+0(FP), DI
	MOVQ out1_base+24(FP), AX
	MOVQ a0_base+48(FP), SI
	MOVQ a1_base+72(FP), R13
	MOVQ b_base+96(FP), BX
	MOVQ n+120(FP), CX
	MOVQ k+128(FP), DX
	MOVQ DX, R11
	SUBQ $32, R11 // R11 = k-32 (main loop bound)
	MOVQ DX, R14
	SUBQ $16, R14 // R14 = k-16 (single-step bound)
	XORQ R8, R8   // j
	MOVQ BX, R9   // b row pointer, advanced by k per row

q2a_jloop:
	CMPQ R8, CX
	JGE  q2a_done
	VPXOR Y6, Y6, Y6 // accumulator for a0
	VPXOR Y7, Y7, Y7 // accumulator for a1
	XORQ  R10, R10
	CMPQ  R11, $0
	JL    q2a_step16 // k == 16

q2a_vloop:
	VPMOVSXBW (R9)(R10*1), Y0   // shared b, low 16 bytes
	VPMOVSXBW 16(R9)(R10*1), Y1 // shared b, high 16 bytes
	VPMOVSXBW (SI)(R10*1), Y2
	VPMADDWD  Y0, Y2, Y2
	VPADDD    Y2, Y6, Y6
	VPMOVSXBW (R13)(R10*1), Y3
	VPMADDWD  Y0, Y3, Y3
	VPADDD    Y3, Y7, Y7
	VPMOVSXBW 16(SI)(R10*1), Y4
	VPMADDWD  Y1, Y4, Y4
	VPADDD    Y4, Y6, Y6
	VPMOVSXBW 16(R13)(R10*1), Y5
	VPMADDWD  Y1, Y5, Y5
	VPADDD    Y5, Y7, Y7
	ADDQ $32, R10
	CMPQ R10, R11
	JLE  q2a_vloop

q2a_step16:
	CMPQ R10, R14
	JG   q2a_reduce
	VPMOVSXBW (R9)(R10*1), Y0
	VPMOVSXBW (SI)(R10*1), Y2
	VPMADDWD  Y0, Y2, Y2
	VPADDD    Y2, Y6, Y6
	VPMOVSXBW (R13)(R10*1), Y3
	VPMADDWD  Y0, Y3, Y3
	VPADDD    Y3, Y7, Y7

q2a_reduce:
	VEXTRACTI128 $1, Y6, X0
	VPADDD  X0, X6, X6
	VPSRLDQ $8, X6, X0
	VPADDD  X0, X6, X6
	VPSRLDQ $4, X6, X0
	VPADDD  X0, X6, X6
	MOVQ X6, R12
	MOVL R12, (DI)(R8*4)
	VEXTRACTI128 $1, Y7, X0
	VPADDD  X0, X7, X7
	VPSRLDQ $8, X7, X0
	VPADDD  X0, X7, X7
	VPSRLDQ $4, X7, X0
	VPADDD  X0, X7, X7
	MOVQ X7, R12
	MOVL R12, (AX)(R8*4)
	ADDQ DX, R9
	INCQ R8
	JMP  q2a_jloop

q2a_done:
	VZEROUPPER
	RET
