package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// Training equivalence suite: batched minibatch SGD (Train/TrainWith over
// ForwardBatchTrain/BackwardBatch) must produce bit-identical trained
// weights to the retained per-sample reference loop (trainNaive) — same
// float64 parameter bits AND byte-identical serialized checkpoints — for
// every family architecture, both loss kinds, and dropout-bearing nets.

// trainCase pairs an architecture builder with a deterministic init seed.
// Builders cover every constructor buildFamily (internal/models) uses, both
// capacity tiers, at a reduced 20x20 input so the suite stays fast.
type trainCase struct {
	name  string
	build func(rng *rand.Rand) *Network
}

func trainFamily() []trainCase {
	in := []int{1, 20, 20}
	const k = 10
	return []trainCase{
		{"cnn-s", func(rng *rand.Rand) *Network { return BuildCNN("cnn-s", in, 8, 16, 32, k, rng) }},
		{"cnn-l", func(rng *rand.Rand) *Network { return BuildCNN("cnn-l", in, 16, 32, 64, k, rng) }},
		{"lenet-s", func(rng *rand.Rand) *Network { return BuildLeNet5("lenet-s", in, 1, k, rng) }},
		{"lenet-l", func(rng *rand.Rand) *Network { return BuildLeNet5("lenet-l", in, 2, k, rng) }},
		{"mlp-s", func(rng *rand.Rand) *Network { return BuildMLP("mlp-s", in, 64, 32, k, rng) }},
		{"mlp-l", func(rng *rand.Rand) *Network { return BuildMLP("mlp-l", in, 256, 128, k, rng) }},
		{"mobile-s", func(rng *rand.Rand) *Network { return BuildMobileCNN("mobile-s", in, 4, 8, k, rng) }},
		{"mobile-l", func(rng *rand.Rand) *Network { return BuildMobileCNN("mobile-l", in, 16, 32, k, rng) }},
		{"mlp-layernorm", func(rng *rand.Rand) *Network {
			ln, err := NewLayerNorm(64)
			if err != nil {
				panic(err)
			}
			return NewNetwork("mlp-layernorm", in,
				NewFlatten(),
				NewDense(400, 64, rng),
				ln,
				NewReLU(),
				NewDense(64, k, rng),
			)
		}},
	}
}

func randSamples(rng *rand.Rand, n int, shape []int, classes int) []Sample {
	samples := make([]Sample, n)
	for i := range samples {
		samples[i] = Sample{X: randTensor(rng, shape...), Label: rng.Intn(classes)}
	}
	return samples
}

// paramsBitsEqual compares every parameter tensor of two networks bit for
// bit (stronger than the float32 wire format, which could mask low bits).
func paramsBitsEqual(t *testing.T, name string, got, want *Network) {
	t.Helper()
	for li, l := range got.Layers {
		wp := want.Layers[li].Params()
		for pi, p := range l.Params() {
			bitsEqual(t, name, p.Data, wp[pi].Data)
		}
	}
}

func serialized(t *testing.T, net *Network) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteWeights(&buf, net); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTrainBatchedMatchesNaiveBitForBit(t *testing.T) {
	for _, tc := range trainFamily() {
		for _, loss := range []LossKind{LossCrossEntropy, LossSquared} {
			sampleRng := rand.New(rand.NewSource(61))
			samples := randSamples(sampleRng, 33, []int{1, 20, 20}, 10)
			cfg := TrainConfig{Epochs: 2, BatchSize: 7, LR: 0.05, LRDecay: 0.9, Loss: loss}

			naiveNet := tc.build(rand.New(rand.NewSource(62)))
			batchNet := tc.build(rand.New(rand.NewSource(62)))
			naiveAvg, err := trainNaive(naiveNet, samples, cfg, rand.New(rand.NewSource(63)))
			if err != nil {
				t.Fatal(err)
			}
			batchAvg, err := Train(batchNet, samples, cfg, rand.New(rand.NewSource(63)))
			if err != nil {
				t.Fatal(err)
			}
			name := tc.name + "/" + lossName(loss)
			if math.Float64bits(naiveAvg) != math.Float64bits(batchAvg) {
				t.Fatalf("%s: final avg loss %v (batched) != %v (naive)", name, batchAvg, naiveAvg)
			}
			paramsBitsEqual(t, name, batchNet, naiveNet)
			if !bytes.Equal(serialized(t, batchNet), serialized(t, naiveNet)) {
				t.Fatalf("%s: serialized checkpoints differ", name)
			}
		}
	}
}

func lossName(l LossKind) string {
	if l == LossSquared {
		return "squared"
	}
	return "xent"
}

// TestTrainDropoutBatchedMatchesNaive covers the RNG-ordering contract:
// dropout masks must be drawn in the per-sample loop's (sample, layer)
// order, including when two dropout layers share one RNG stream.
func TestTrainDropoutBatchedMatchesNaive(t *testing.T) {
	in := []int{1, 12, 12}
	builders := []struct {
		name  string
		build func(initRng, dropRng *rand.Rand) *Network
	}{
		{"dense-two-dropouts", func(initRng, dropRng *rand.Rand) *Network {
			d1, err := NewDropout(0.3, dropRng)
			if err != nil {
				panic(err)
			}
			d2, err := NewDropout(0.5, dropRng)
			if err != nil {
				panic(err)
			}
			return NewNetwork("dense-two-dropouts", in,
				NewFlatten(),
				NewDense(144, 48, initRng),
				NewReLU(),
				d1,
				NewDense(48, 24, initRng),
				NewReLU(),
				d2,
				NewDense(24, 10, initRng),
			)
		}},
		{"conv-dropout", func(initRng, dropRng *rand.Rand) *Network {
			d1, err := NewDropout(0.25, dropRng)
			if err != nil {
				panic(err)
			}
			conv := NewConv2D(1, 6, 3, initRng)
			front := []Layer{conv, NewReLU(), NewMaxPool2D(), NewFlatten()}
			flat := flattenDim(in, front...)
			layers := append(front, d1, NewDense(flat, 10, initRng))
			return NewNetwork("conv-dropout", in, layers...)
		}},
	}
	for _, b := range builders {
		for _, loss := range []LossKind{LossCrossEntropy, LossSquared} {
			samples := randSamples(rand.New(rand.NewSource(71)), 19, in, 10)
			cfg := TrainConfig{Epochs: 2, BatchSize: 5, LR: 0.1, Loss: loss}

			naiveNet := b.build(rand.New(rand.NewSource(72)), rand.New(rand.NewSource(73)))
			batchNet := b.build(rand.New(rand.NewSource(72)), rand.New(rand.NewSource(73)))
			naiveAvg, err := trainNaive(naiveNet, samples, cfg, rand.New(rand.NewSource(74)))
			if err != nil {
				t.Fatal(err)
			}
			batchAvg, err := Train(batchNet, samples, cfg, rand.New(rand.NewSource(74)))
			if err != nil {
				t.Fatal(err)
			}
			name := b.name + "/" + lossName(loss)
			if math.Float64bits(naiveAvg) != math.Float64bits(batchAvg) {
				t.Fatalf("%s: final avg loss %v (batched) != %v (naive)", name, batchAvg, naiveAvg)
			}
			paramsBitsEqual(t, name, batchNet, naiveNet)
		}
	}
}

// TestTrainWithBatchedMatchesNaive pins TrainWith's rewired engine: with a
// plain SGD optimizer it must reproduce trainNaive (constant LR) exactly.
func TestTrainWithBatchedMatchesNaive(t *testing.T) {
	in := []int{1, 20, 20}
	samples := randSamples(rand.New(rand.NewSource(81)), 26, in, 10)
	cfg := TrainConfig{Epochs: 2, BatchSize: 8, LR: 0.05, Loss: LossCrossEntropy}

	naiveNet := BuildCNN("cnn", in, 4, 8, 16, 10, rand.New(rand.NewSource(82)))
	batchNet := BuildCNN("cnn", in, 4, 8, 16, 10, rand.New(rand.NewSource(82)))
	naiveAvg, err := trainNaive(naiveNet, samples, cfg, rand.New(rand.NewSource(83)))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := NewSGD(cfg.LR)
	if err != nil {
		t.Fatal(err)
	}
	batchAvg, err := TrainWith(batchNet, samples, cfg, opt, rand.New(rand.NewSource(83)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(naiveAvg) != math.Float64bits(batchAvg) {
		t.Fatalf("final avg loss %v (TrainWith) != %v (naive)", batchAvg, naiveAvg)
	}
	paramsBitsEqual(t, "trainwith-sgd", batchNet, naiveNet)
}

// evaluateNaive is the historical per-sample Evaluate loop, retained as the
// reference the batched Evaluate is pinned against.
func evaluateNaive(net *Network, samples []Sample) (accuracy, meanSquaredLoss float64) {
	correct := 0
	totalLoss := 0.0
	for _, s := range samples {
		logits := net.Forward(s.X)
		if logits.MaxIndex() == s.Label {
			correct++
		}
		l, _ := SquaredLoss(logits, s.Label)
		totalLoss += l
	}
	n := float64(len(samples))
	return float64(correct) / n, totalLoss / n
}

func TestEvaluateMatchesNaiveBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, net := range zooForTest(rng) {
		// 71 samples spans a full evalChunk plus a ragged tail.
		samples := randSamples(rng, 71, net.InShape(), 10)
		wantAcc, wantLoss := evaluateNaive(net, samples)
		gotAcc, gotLoss := Evaluate(net, samples)
		if math.Float64bits(gotAcc) != math.Float64bits(wantAcc) {
			t.Fatalf("%s: accuracy %v, want %v", net.Name, gotAcc, wantAcc)
		}
		if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
			t.Fatalf("%s: mean loss %v, want %v", net.Name, gotLoss, wantLoss)
		}
	}
	if acc, loss := Evaluate(zooForTest(rng)[0], nil); acc != 0 || loss != 0 {
		t.Fatalf("empty evaluation = (%v, %v), want (0, 0)", acc, loss)
	}
}

// TestConvForwardZeroAllocsSteadyState pins the satellite win: after the
// warm-up call, Conv2D.Forward serves output and im2col scratch from the
// layer-owned arena with zero heap allocations.
func TestConvForwardZeroAllocsSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	conv := NewConv2D(6, 16, 5, rng)
	in := randTensor(rng, 6, 14, 14)
	conv.Forward(in)
	allocs := testing.AllocsPerRun(100, func() { conv.Forward(in) })
	if allocs > 0 {
		t.Fatalf("steady-state Conv2D.Forward allocates %.1f/op, want 0", allocs)
	}
}

// TestLossRowGradsMatchPerSampleBitForBit pins the row-variant loss
// gradients (the value-only SquaredLossRow is covered in batch_equiv_test).
func TestLossRowGradsMatchPerSampleBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	gradRow := make([]float64, 10)
	scratch := make([]float64, 10)
	for i := 0; i < 50; i++ {
		logits := randTensor(rng, 10)
		label := rng.Intn(10)

		wantLoss, wantGrad := CrossEntropyLoss(randClone(logits), label)
		gotLoss := CrossEntropyLossRow(logits.Data, label, gradRow)
		if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
			t.Fatalf("xent loss %v, want %v", gotLoss, wantLoss)
		}
		bitsEqual(t, "xent grad", gradRow, wantGrad.Data)

		wantLoss, wantGrad = SquaredLoss(logits, label)
		gotLoss = SquaredLossRowGrad(logits.Data, label, gradRow, scratch)
		if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
			t.Fatalf("squared loss %v, want %v", gotLoss, wantLoss)
		}
		bitsEqual(t, "squared grad", gradRow, wantGrad.Data)
	}
}

// randClone deep-copies a tensor (CrossEntropyLoss mutates its softmax
// buffer, which aliases nothing here but keeps inputs pristine).
func randClone(t *Tensor) *Tensor {
	c := NewTensor(t.Shape...)
	copy(c.Data, t.Data)
	return c
}
