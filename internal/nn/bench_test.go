package nn

import (
	"math/rand"
	"testing"
)

// Kernel-level benchmarks. BenchmarkConvForwardNaive is the retained
// pre-GEMM implementation, so the ConvForward/ConvForwardNaive ratio is the
// kernel speedup on this host; cmd/nnbench snapshots both into
// BENCH_nn.json.

func BenchmarkGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m, n, k = 64, 64, 256
	a := make([]float64, m*k)
	bm := make([]float64, n*k)
	bias := make([]float64, n)
	out := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range bm {
		bm[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNTBiasJ(out, a, bm, bias, m, n, k)
	}
}

func benchConv(b *testing.B, naive bool) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D(6, 16, 5, rng)
	in := randTensor(rng, 6, 14, 14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			conv.forwardNaive(in)
		} else {
			conv.Forward(in)
		}
	}
}

func BenchmarkConvForward(b *testing.B)      { benchConv(b, false) }
func BenchmarkConvForwardNaive(b *testing.B) { benchConv(b, true) }

// benchTrainEpoch measures one SGD epoch over 256 samples on the family's
// small-CNN shape; the Naive variant is the retained per-sample reference,
// so the TrainEpoch/TrainEpochNaive ratio is the batched-training speedup.
func benchTrainEpoch(b *testing.B, naive bool) {
	rng := rand.New(rand.NewSource(21))
	net := BuildCNN("bench-train", []int{1, 14, 14}, 8, 16, 32, 10, rng)
	samples := make([]Sample, 256)
	for i := range samples {
		samples[i] = Sample{X: randTensor(rng, 1, 14, 14), Label: rng.Intn(10)}
	}
	cfg := TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.05}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if naive {
			_, err = trainNaive(net, samples, cfg, rand.New(rand.NewSource(22)))
		} else {
			_, err = Train(net, samples, cfg, rand.New(rand.NewSource(22)))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpoch(b *testing.B)      { benchTrainEpoch(b, false) }
func BenchmarkTrainEpochNaive(b *testing.B) { benchTrainEpoch(b, true) }

func BenchmarkNetworkForwardBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := BuildCNN("bench-cnn", []int{1, 14, 14}, 8, 16, 64, 10, rng)
	arena := NewArena()
	const batch = 32
	in := arena.Tensor(batch, 1, 14, 14)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	// Warm the arena so the measured loop is the steady state.
	net.ForwardBatch(in, arena)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		in := arena.Tensor(batch, 1, 14, 14)
		net.ForwardBatch(in, arena)
	}
}
