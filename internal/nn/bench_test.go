package nn

import (
	"math/rand"
	"testing"
)

// Kernel-level benchmarks. BenchmarkConvForwardNaive is the retained
// pre-GEMM implementation, so the ConvForward/ConvForwardNaive ratio is the
// kernel speedup on this host; cmd/nnbench snapshots both into
// BENCH_nn.json.

func BenchmarkGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m, n, k = 64, 64, 256
	a := make([]float64, m*k)
	bm := make([]float64, n*k)
	bias := make([]float64, n)
	out := make([]float64, m*n)
	for i := range a {
		a[i] = rng.NormFloat64()
	}
	for i := range bm {
		bm[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmNTBiasJ(out, a, bm, bias, m, n, k)
	}
}

func benchConv(b *testing.B, naive bool) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D(6, 16, 5, rng)
	in := randTensor(rng, 6, 14, 14)
	// Warm the layer-owned arena so the measured loop is the steady state:
	// without this the first timed iteration's grow-only allocations smear
	// a few bytes/op across the run and the zero-alloc gate can't assert 0.
	conv.Forward(in)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if naive {
			conv.forwardNaive(in)
		} else {
			conv.Forward(in)
		}
	}
}

func BenchmarkConvForward(b *testing.B)      { benchConv(b, false) }
func BenchmarkConvForwardNaive(b *testing.B) { benchConv(b, true) }

// benchTrainEpoch measures one SGD epoch over 256 samples on the family's
// small-CNN shape; the Naive variant is the retained per-sample reference,
// so the TrainEpoch/TrainEpochNaive ratio is the batched-training speedup.
func benchTrainEpoch(b *testing.B, naive bool) {
	rng := rand.New(rand.NewSource(21))
	net := BuildCNN("bench-train", []int{1, 14, 14}, 8, 16, 32, 10, rng)
	samples := make([]Sample, 256)
	for i := range samples {
		samples[i] = Sample{X: randTensor(rng, 1, 14, 14), Label: rng.Intn(10)}
	}
	cfg := TrainConfig{Epochs: 1, BatchSize: 16, LR: 0.05}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if naive {
			_, err = trainNaive(net, samples, cfg, rand.New(rand.NewSource(22)))
		} else {
			_, err = Train(net, samples, cfg, rand.New(rand.NewSource(22)))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainEpoch(b *testing.B)      { benchTrainEpoch(b, false) }
func BenchmarkTrainEpochNaive(b *testing.B) { benchTrainEpoch(b, true) }

// BenchmarkQuantConvForward measures the INT8 convolution stage on
// BenchmarkConvForward's exact shapes (6->16 channels, 5x5 kernel, 14x14
// input), exactly as the engine runs it: padded-stride im2colQ, the qgemmNT
// dual-row dot sweep over zero-padded weight rows, and the requantize sweep.
// The QuantConvForward/ConvForward ratio is the true-int8 speedup tracked in
// BENCH_nn.json.
func BenchmarkQuantConvForward(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	const inC, outC, kh, h, w = 6, 16, 5, 14, 14
	const oh, ow = h - kh + 1, w - kh + 1
	const kk, np = inC * kh * kh, oh * ow
	wq, kkPad := padWeightRows(randInt8(rng, outC*kk), outC, kk)
	src := randInt8(rng, inC*h*w)
	col := make([]int8, np*kkPad)
	acc := make([]int32, outC*np)
	dst := make([]int8, outC*np)
	biasQ := make([]int32, outC)
	for oc := range biasQ {
		biasQ[oc] = int32(rng.Intn(2000) - 1000)
	}
	m, shift := quantMultiplier(0.0013)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im2colQ(col, src, inC, h, w, kh, oh, ow, kkPad)
		qgemmNT(acc, wq, col, outC, np, kkPad)
		for oc := 0; oc < outC; oc++ {
			bq := biasQ[oc]
			arow := acc[oc*np : (oc+1)*np]
			drow := dst[oc*np : (oc+1)*np]
			for j, v := range arow {
				drow[j] = requantize(v+bq, m, shift)
			}
		}
	}
}

// BenchmarkQuantNetworkForwardBatch is BenchmarkNetworkForwardBatch through
// the INT8 engine: same architecture, same batch, quantized execution.
//
// The pair is a RELATIVE contract, not two independent numbers: the int8
// path exists to be faster than the float path, so compare the two
// ns/op figures whenever either moves. Absolute per-benchmark thresholds
// once let the quantized side decay to ~1.0x of the float side without any
// single entry regressing enough to trip a gate; `make bench-diff`
// (cmd/nnbench's checkInt8Wins) now fails outright when
// QuantForwardBatch >= ForwardBatch or QuantSlotStep >= SlotStep.
func BenchmarkQuantNetworkForwardBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := BuildCNN("bench-cnn", []int{1, 14, 14}, 8, 16, 64, 10, rng)
	qw := QuantizeWeights(net)
	if err := qw.ApplyTo(net); err != nil {
		b.Fatal(err)
	}
	calib := NewTensor(8, 1, 14, 14)
	for i := range calib.Data {
		calib.Data[i] = rng.NormFloat64()
	}
	qn, err := NewQuantizedNetwork(net, qw, calib)
	if err != nil {
		b.Fatal(err)
	}
	arena := NewArena()
	const batch = 32
	in := arena.Tensor(batch, 1, 14, 14)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	// Warm the arena so the measured loop is the steady state.
	qn.ForwardBatch(in, arena)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		in := arena.Tensor(batch, 1, 14, 14)
		qn.ForwardBatch(in, arena)
	}
}

func BenchmarkNetworkForwardBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	net := BuildCNN("bench-cnn", []int{1, 14, 14}, 8, 16, 64, 10, rng)
	arena := NewArena()
	const batch = 32
	in := arena.Tensor(batch, 1, 14, 14)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	// Warm the arena so the measured loop is the steady state.
	net.ForwardBatch(in, arena)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arena.Reset()
		in := arena.Tensor(batch, 1, 14, 14)
		net.ForwardBatch(in, arena)
	}
}
