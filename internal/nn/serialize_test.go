package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func buildTestNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return BuildCNN("cnn", []int{1, 12, 12}, 4, 8, 16, 10, rng)
}

func TestWeightsRoundTrip(t *testing.T) {
	src := buildTestNet(1)
	var buf bytes.Buffer
	if err := WriteWeights(&buf, src); err != nil {
		t.Fatalf("WriteWeights: %v", err)
	}
	dst := buildTestNet(99) // different init, same architecture
	if err := ReadWeights(&buf, dst); err != nil {
		t.Fatalf("ReadWeights: %v", err)
	}
	// All parameters must match at float32 precision.
	srcParams, dstParams := allParams(src), allParams(dst)
	for i := range srcParams {
		for j := range srcParams[i].Data {
			want := float64(float32(srcParams[i].Data[j]))
			if dstParams[i].Data[j] != want {
				t.Fatalf("tensor %d value %d: %v != %v", i, j, dstParams[i].Data[j], want)
			}
		}
	}
	// Behaviorally identical (up to float32 rounding) on a probe input.
	rng := rand.New(rand.NewSource(3))
	x := randomTensor(rng, 1, 12, 12)
	a, b := src.Forward(x), dst.Forward(x)
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-4 {
			t.Fatalf("logit %d differs: %v vs %v", i, a.Data[i], b.Data[i])
		}
	}
}

func allParams(n *Network) []*Tensor {
	var out []*Tensor
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

func TestWireSizeMatchesPayload(t *testing.T) {
	net := buildTestNet(2)
	var buf bytes.Buffer
	if err := WriteWeights(&buf, net); err != nil {
		t.Fatal(err)
	}
	if got, want := int64(buf.Len()), WireSize(net); got != want {
		t.Errorf("payload %d bytes, WireSize %d", got, want)
	}
	// WireSize tracks NumParams within the header overhead.
	if WireSize(net) < net.NumParams()*4 {
		t.Error("WireSize below raw parameter bytes")
	}
}

func TestReadWeightsRejectsCorruptHeaders(t *testing.T) {
	net := buildTestNet(4)
	var good bytes.Buffer
	if err := WriteWeights(&good, net); err != nil {
		t.Fatal(err)
	}
	payload := good.Bytes()

	tests := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad magic", func(b []byte) []byte {
			out := append([]byte{}, b...)
			out[0] ^= 0xff
			return out
		}},
		{"bad version", func(b []byte) []byte {
			out := append([]byte{}, b...)
			out[4] = 0xff
			return out
		}},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"huge count", func(b []byte) []byte {
			out := append([]byte{}, b...)
			out[8], out[9], out[10], out[11] = 0xff, 0xff, 0xff, 0xff
			return out
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			dst := buildTestNet(5)
			if err := ReadWeights(bytes.NewReader(tt.mutate(payload)), dst); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestReadWeightsRejectsArchitectureMismatch(t *testing.T) {
	src := buildTestNet(6)
	var buf bytes.Buffer
	if err := WriteWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	other := BuildMLP("mlp", []int{1, 12, 12}, 8, 4, 10, rng)
	if err := ReadWeights(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("expected error for mismatched architecture")
	}
}

func TestReadWeightsRejectsNonFinite(t *testing.T) {
	src := buildTestNet(8)
	params := allParams(src)
	params[0].Data[0] = math.NaN()
	var buf bytes.Buffer
	if err := WriteWeights(&buf, src); err != nil {
		t.Fatal(err)
	}
	dst := buildTestNet(9)
	if err := ReadWeights(bytes.NewReader(buf.Bytes()), dst); err == nil {
		t.Error("expected error for NaN weight")
	}
}
