package nn

import (
	"math"
	"math/rand"
	"testing"
)

// The SIMD kernels must match the scalar references bit for bit on every
// lane, every tail length, and the awkward IEEE corners (-0, NaN, Inf): the
// training path's bit-identity guarantee rests on these primitives being
// exact drop-ins for the loops they replaced.

// sameBits is exact bit equality except that any two NaNs match: NaN
// payload propagation depends on hardware operand order, which the scalar
// reference does not pin down (see the contract note in simd_amd64.go).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b) || (math.IsNaN(a) && math.IsNaN(b))
}

// simdCases builds inputs covering vector bodies and all tail lengths, with
// special values scattered through both lanes and tails.
func simdCases(rng *rand.Rand, n int) []float64 {
	specials := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1), -1e-308, 1e308}
	s := make([]float64, n)
	for i := range s {
		if rng.Intn(4) == 0 {
			s[i] = specials[rng.Intn(len(specials))]
		} else {
			s[i] = rng.NormFloat64()
		}
	}
	return s
}

func TestAxpySIMDMatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for n := 0; n <= 35; n++ {
		for _, alpha := range []float64{0, math.Copysign(0, -1), 1, -2.5, rng.NormFloat64()} {
			x := simdCases(rng, n)
			y := simdCases(rng, n)
			want := append([]float64(nil), y...)
			for i := range want {
				want[i] += alpha * x[i]
			}
			got := append([]float64(nil), y...)
			axpySIMD(alpha, x, got)
			for i := range want {
				if !sameBits(got[i], want[i]) {
					t.Fatalf("axpy n=%d alpha=%v i=%d: got %x want %x", n, alpha, i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

func TestReluFwdSIMDMatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for n := 0; n <= 35; n++ {
		src := simdCases(rng, n)
		want := make([]float64, n)
		for i, v := range src {
			if v > 0 {
				want[i] = v
			} else {
				want[i] = 0
			}
		}
		got := simdCases(rng, n) // pre-fill with garbage to catch skipped lanes
		reluFwdSIMD(got, src)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("relu fwd n=%d i=%d src=%v: got %x want %x", n, i, src[i],
					math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}

func TestNNDot8SIMDMatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for _, k := range []int{0, 1, 2, 3, 7, 8, 17, 64} {
		for _, n := range []int{8, 9, 16, 23} {
			a := simdCases(rng, k)
			var bt []float64
			if k > 0 {
				bt = simdCases(rng, (k-1)*n+8)
			}
			init := simdCases(rng, 8)
			want := make([]float64, 8)
			for l := 0; l < 8; l++ {
				s := init[l]
				for c := 0; c < k; c++ {
					s += a[c] * bt[c*n+l]
				}
				want[l] = s
			}
			got := simdCases(rng, 8)
			nnDot8SIMD(got, init, a, bt, n)
			for l := range want {
				if !sameBits(got[l], want[l]) {
					t.Fatalf("nnDot8 k=%d n=%d l=%d: got %x want %x", k, n, l,
						math.Float64bits(got[l]), math.Float64bits(want[l]))
				}
			}
		}
	}
}

// TestGemmNNMatchesGemmNT pins the NN-form kernels (and their 16/8/scalar
// tail blocking) against the NT references across shapes with every tail
// length, including the special-value lanes simdCases injects.
func TestGemmNNMatchesGemmNT(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for _, dims := range [][3]int{{1, 8, 1}, {3, 16, 9}, {2, 23, 5}, {4, 33, 7}, {8, 17, 3}, {5, 40, 12}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := simdCases(rng, m*k)
		b := simdCases(rng, n*k)
		bt := make([]float64, k*n)
		for c := 0; c < k; c++ {
			for j := 0; j < n; j++ {
				bt[c*n+j] = b[j*k+c]
			}
		}
		biasI := simdCases(rng, m)
		biasJ := simdCases(rng, n)
		wantI := make([]float64, m*n)
		gotI := make([]float64, m*n)
		GemmNTBiasI(wantI, a, b, biasI, m, n, k)
		GemmNNBiasI(gotI, a, bt, biasI, m, n, k)
		wantJ := make([]float64, m*n)
		gotJ := make([]float64, m*n)
		GemmNTBiasJ(wantJ, a, b, biasJ, m, n, k)
		GemmNNBiasJ(gotJ, a, bt, biasJ, m, n, k)
		for i := range wantI {
			if !sameBits(gotI[i], wantI[i]) {
				t.Fatalf("BiasI m=%d n=%d k=%d elem %d: got %x want %x", m, n, k, i,
					math.Float64bits(gotI[i]), math.Float64bits(wantI[i]))
			}
			if !sameBits(gotJ[i], wantJ[i]) {
				t.Fatalf("BiasJ m=%d n=%d k=%d elem %d: got %x want %x", m, n, k, i,
					math.Float64bits(gotJ[i]), math.Float64bits(wantJ[i]))
			}
		}
	}
}

// TestGemmNNStridedAndAccVariants pins the column-sub-view kernel
// (GemmNNBiasILd reading bt at a wider stride) and the in-place accumulate
// kernel (GemmNNAccI) against scalar replays of their per-element dot
// sequences, covering the 4x8 tile, the 16/8 blocks, and scalar tails.
func TestGemmNNStridedAndAccVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	for _, dims := range [][3]int{{1, 8, 1}, {4, 9, 5}, {8, 16, 7}, {5, 23, 3}, {6, 40, 12}} {
		m, n, k := dims[0], dims[1], dims[2]
		ld := n + 5
		a := simdCases(rng, m*k)
		bt := simdCases(rng, k*ld)
		bias := simdCases(rng, m)
		want := make([]float64, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := bias[i]
				for c := 0; c < k; c++ {
					s += a[i*k+c] * bt[c*ld+j]
				}
				want[i*n+j] = s
			}
		}
		got := make([]float64, m*n)
		GemmNNBiasILd(got, a, bt, bias, m, n, k, ld)
		for i := range want {
			if !sameBits(got[i], want[i]) {
				t.Fatalf("BiasILd m=%d n=%d k=%d elem %d: got %x want %x", m, n, k, i,
					math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
		acc := simdCases(rng, m*n)
		wantAcc := make([]float64, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := acc[i*n+j]
				for c := 0; c < k; c++ {
					s += a[i*k+c] * bt[c*ld+j]
				}
				wantAcc[i*n+j] = s
			}
		}
		GemmNNAccI(acc, a, bt, m, n, k, ld)
		for i := range wantAcc {
			if !sameBits(acc[i], wantAcc[i]) {
				t.Fatalf("AccI m=%d n=%d k=%d elem %d: got %x want %x", m, n, k, i,
					math.Float64bits(acc[i]), math.Float64bits(wantAcc[i]))
			}
		}
	}
}

func TestStepSIMDMatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for n := 0; n <= 35; n++ {
		for _, pair := range [][2]float64{{0.01, 64}, {0.5, 1}, {-2, 3}, {rng.NormFloat64(), 7}} {
			lr, scale := pair[0], pair[1]
			g := simdCases(rng, n)
			p := simdCases(rng, n)
			want := append([]float64(nil), p...)
			for j := range want {
				want[j] -= lr * g[j] / scale
			}
			got := append([]float64(nil), p...)
			stepSIMD(lr, scale, g, got)
			for j := range want {
				if !sameBits(got[j], want[j]) {
					t.Fatalf("step n=%d lr=%v j=%d: got %x want %x", n, lr, j,
						math.Float64bits(got[j]), math.Float64bits(want[j]))
				}
			}
		}
	}
}

// TestTransposeSIMDMatchesScalar pins the blocked transpose (even region
// plus both odd tails) with strict bit equality — it moves data untouched.
func TestTransposeSIMDMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, rows := range []int{1, 2, 3, 5, 8, 13} {
		for _, cols := range []int{1, 2, 4, 7, 9, 16} {
			src := simdCases(rng, rows*cols)
			got := simdCases(rng, rows*cols)
			transposeSIMD(got, src, rows, cols)
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					if math.Float64bits(got[c*rows+r]) != math.Float64bits(src[r*cols+c]) {
						t.Fatalf("rows=%d cols=%d (%d,%d): got %x want %x", rows, cols, r, c,
							math.Float64bits(got[c*rows+r]), math.Float64bits(src[r*cols+c]))
					}
				}
			}
		}
	}
}

// TestConv3x3BwdSIMDMatchesScalarBitForBit pins the fused 3x3 backward
// kernel against a scalar replay of its per-accumulator mul-then-add
// sequences over several channel counts, strides, and special-value lanes.
func TestConv3x3BwdSIMDMatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, inC := range []int{1, 2, 3, 8} {
		for _, dims := range [][2]int{{5, 35}, {7, 63}, {28, 784}} {
			w, hw := dims[0], dims[1]
			gv := rng.NormFloat64()
			wr := simdCases(rng, inC*9)
			cr := simdCases(rng, inC*9)
			gwWant := simdCases(rng, inC*9)
			gwGot := append([]float64(nil), gwWant...)
			giWant := simdCases(rng, inC*hw)
			giGot := append([]float64(nil), giWant...)
			for ic := 0; ic < inC; ic++ {
				for j := 0; j < 9; j++ {
					gwWant[ic*9+j] += gv * cr[ic*9+j]
				}
				for r := 0; r < 3; r++ {
					for j := 0; j < 3; j++ {
						giWant[ic*hw+r*w+j] += gv * wr[ic*9+r*3+j]
					}
				}
			}
			conv3x3BwdSIMD(gv, wr, cr, gwGot, giGot, w, hw, inC)
			for i := range gwWant {
				if !sameBits(gwGot[i], gwWant[i]) {
					t.Fatalf("gw inC=%d w=%d i=%d: got %x want %x", inC, w, i,
						math.Float64bits(gwGot[i]), math.Float64bits(gwWant[i]))
				}
			}
			for i := range giWant {
				if !sameBits(giGot[i], giWant[i]) {
					t.Fatalf("gi inC=%d w=%d i=%d: got %x want %x", inC, w, i,
						math.Float64bits(giGot[i]), math.Float64bits(giWant[i]))
				}
			}
		}
	}
}

// TestPool2x2SIMDMatchesScalarBitForBit pins the pooling kernel with strict
// bit equality (no NaN allowance: the result is always one of the inputs, so
// even NaN payloads must survive untouched), covering the scalar strict->
// candidate order on ties, -0 vs +0, and NaN in every window position.
func TestPool2x2SIMDMatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for n := 0; n <= 33; n++ {
		row0 := simdCases(rng, 2*n+1)
		row1 := simdCases(rng, 2*n+1)
		want := make([]float64, n)
		for x := 0; x < n; x++ {
			best := row0[2*x]
			if v := row0[2*x+1]; v > best {
				best = v
			}
			if v := row1[2*x]; v > best {
				best = v
			}
			if v := row1[2*x+1]; v > best {
				best = v
			}
			want[x] = best
		}
		got := simdCases(rng, n)
		pool2x2SIMD(got, row0, row1)
		for x := range want {
			if math.Float64bits(got[x]) != math.Float64bits(want[x]) {
				t.Fatalf("pool n=%d x=%d window=[%v %v %v %v]: got %x want %x", n, x,
					row0[2*x], row0[2*x+1], row1[2*x], row1[2*x+1],
					math.Float64bits(got[x]), math.Float64bits(want[x]))
			}
		}
	}
}

func TestReluBwdSIMDMatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for n := 0; n <= 35; n++ {
		in := simdCases(rng, n)
		grad := simdCases(rng, n)
		want := make([]float64, n)
		for i := range want {
			if in[i] > 0 {
				want[i] = grad[i]
			} else {
				want[i] = 0
			}
		}
		got := simdCases(rng, n)
		reluBwdSIMD(got, grad, in)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("relu bwd n=%d i=%d in=%v grad=%v: got %x want %x", n, i, in[i], grad[i],
					math.Float64bits(got[i]), math.Float64bits(want[i]))
			}
		}
	}
}
