package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewLayerNormErrors(t *testing.T) {
	if _, err := NewLayerNorm(0); err == nil {
		t.Error("expected error for zero dim")
	}
}

func TestLayerNormForwardStatistics(t *testing.T) {
	l, err := NewLayerNorm(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	in := randomTensor(rng, 8)
	out := l.Forward(in)
	// With unit gain and zero bias the output has ~zero mean and ~unit
	// variance.
	mean := 0.0
	for _, v := range out.Data {
		mean += v
	}
	mean /= 8
	if math.Abs(mean) > 1e-9 {
		t.Errorf("mean = %v", mean)
	}
	varSum := 0.0
	for _, v := range out.Data {
		varSum += (v - mean) * (v - mean)
	}
	if sd := math.Sqrt(varSum / 8); math.Abs(sd-1) > 0.01 {
		t.Errorf("std = %v", sd)
	}
}

func TestLayerNormGradients(t *testing.T) {
	l, err := NewLayerNorm(6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Non-trivial gain/bias so parameter gradients are exercised.
	for i := range l.gain.Data {
		l.gain.Data[i] = 0.5 + rng.Float64()
		l.bias.Data[i] = rng.NormFloat64() * 0.2
	}
	checkLayerGradients(t, l, randomTensor(rng, 6), 1e-5)
}

func TestLayerNormShapePanic(t *testing.T) {
	l, err := NewLayerNorm(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong input size")
		}
	}()
	l.Forward(NewTensor(5))
}

func TestLayerNormInNetworkTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ln, err := NewLayerNorm(16)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork("ln", []int{2},
		NewDense(2, 16, rng), ln, NewReLU(), NewDense(16, 2, rng))
	samples := separableData(rng, 80)
	if _, err := Train(net, samples, TrainConfig{Epochs: 40, BatchSize: 8, LR: 0.1}, rng); err != nil {
		t.Fatal(err)
	}
	acc, _ := Evaluate(net, samples)
	if acc < 0.9 {
		t.Errorf("accuracy with layer norm = %v", acc)
	}
}
