package nn

import (
	"math"
	"math/rand"
	"testing"
)

func buildQuantArchs(rng *rand.Rand) []*Network {
	return []*Network{
		BuildCNN("cnn", []int{1, 28, 28}, 8, 16, 32, 10, rng),
		BuildLeNet5("lenet", []int{1, 28, 28}, 1, 10, rng),
		BuildMLP("mlp", []int{1, 28, 28}, 64, 32, 10, rng),
		BuildMobileCNN("mobile", []int{1, 28, 28}, 8, 16, 10, rng),
	}
}

func randBatch(rng *rand.Rand, batch int, shape []int) *Tensor {
	dims := append([]int{batch}, shape...)
	t := NewTensor(dims...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

// quantizeForTest applies the fake-quant oracle to net and returns the
// shared int8 weights plus a compiled INT8 engine calibrated on calib.
func quantizeForTest(t *testing.T, net *Network, calib *Tensor) (*QuantizedWeights, *QuantizedNetwork) {
	t.Helper()
	qw := QuantizeWeights(net)
	if err := qw.ApplyTo(net); err != nil {
		t.Fatal(err)
	}
	qn, err := NewQuantizedNetwork(net, qw, calib)
	if err != nil {
		t.Fatal(err)
	}
	return qw, qn
}

// TestQuantizedNetworkTracksFakeQuant compiles every zoo architecture and
// checks the INT8 logits stay close to the fake-quant float logits — the
// engine's accuracy contract (the exact contract is cross-tier bit-identity,
// pinned elsewhere; closeness to the float oracle is what makes the -int8
// mode a usable stand-in for the q8 arms).
func TestQuantizedNetworkTracksFakeQuant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, net := range buildQuantArchs(rng) {
		calib := randBatch(rng, 16, net.InShape())
		_, qn := quantizeForTest(t, net, calib)
		in := randBatch(rng, 32, net.InShape())
		arena := NewArena()
		arena.Reset()
		qout := qn.ForwardBatch(in, arena)
		fa := NewArena()
		fa.Reset()
		fout := net.ForwardBatch(in, fa)
		outDim := qn.OutDim()
		maxAbs, sumErr, agree := 0.0, 0.0, 0
		for i, v := range fout.Data {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
			sumErr += math.Abs(qout.Data[i] - v)
		}
		for s := 0; s < 32; s++ {
			if ArgmaxRow(qout.Data[s*outDim:(s+1)*outDim]) == ArgmaxRow(fout.Data[s*outDim:(s+1)*outDim]) {
				agree++
			}
		}
		meanErr := sumErr / float64(len(fout.Data))
		if maxAbs == 0 || meanErr > 0.15*maxAbs {
			t.Errorf("%s: mean INT8 logit error %g too large vs float logit range %g", net.Name, meanErr, maxAbs)
		}
		if agree < 20 { // 32 samples; quantization may flip near-ties only
			t.Errorf("%s: INT8 argmax agrees with fake-quant on only %d/32 samples", net.Name, agree)
		}
	}
}

// TestQuantizedNetworkDeterministic pins bit-exact reproducibility: two
// independently compiled engines over the same weights and calibration batch
// produce identical logits bits, and repeated runs are stable.
func TestQuantizedNetworkDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := BuildCNN("cnn", []int{1, 14, 14}, 4, 8, 16, 10, rng)
	calib := randBatch(rng, 8, net.InShape())
	qw := QuantizeWeights(net)
	if err := qw.ApplyTo(net); err != nil {
		t.Fatal(err)
	}
	qn1, err := NewQuantizedNetwork(net, qw, calib)
	if err != nil {
		t.Fatal(err)
	}
	qn2, err := NewQuantizedNetwork(net, qw, calib)
	if err != nil {
		t.Fatal(err)
	}
	in := randBatch(rng, 8, net.InShape())
	a1, a2 := NewArena(), NewArena()
	a1.Reset()
	first := append([]float64(nil), qn1.ForwardBatch(in, a1).Data...)
	for run := 0; run < 3; run++ {
		a1.Reset()
		o1 := qn1.ForwardBatch(in, a1)
		a2.Reset()
		o2 := qn2.ForwardBatch(in, a2)
		for i := range first {
			if math.Float64bits(o1.Data[i]) != math.Float64bits(first[i]) ||
				math.Float64bits(o2.Data[i]) != math.Float64bits(first[i]) {
				t.Fatalf("run %d: INT8 logits drifted at %d", run, i)
			}
		}
	}
}

// TestQuantizedNetworkBatchInvariance: the engine processes samples
// independently, so a batch of B must reproduce B batches of 1 bit for bit.
func TestQuantizedNetworkBatchInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net := BuildLeNet5("lenet", []int{1, 28, 28}, 1, 10, rng)
	calib := randBatch(rng, 8, net.InShape())
	_, qn := quantizeForTest(t, net, calib)
	in := randBatch(rng, 6, net.InShape())
	arena := NewArena()
	arena.Reset()
	batched := append([]float64(nil), qn.ForwardBatch(in, arena).Data...)
	sampleLen := in.Len() / 6
	outDim := qn.OutDim()
	for s := 0; s < 6; s++ {
		one := NewTensor(append([]int{1}, net.InShape()...)...)
		copy(one.Data, in.Data[s*sampleLen:(s+1)*sampleLen])
		arena.Reset()
		out := qn.ForwardBatch(one, arena)
		for o := 0; o < outDim; o++ {
			if math.Float64bits(out.Data[o]) != math.Float64bits(batched[s*outDim+o]) {
				t.Fatalf("sample %d logit %d: single %v != batched %v", s, o, out.Data[o], batched[s*outDim+o])
			}
		}
	}
}

// TestQuantizedNetworkZeroScaleTensors: all-zero weight tensors compile into
// the bias-only path instead of dividing by a zero scale, for both a hidden
// conv and the Dense head.
func TestQuantizedNetworkZeroScaleTensors(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	net := BuildCNN("cnn", []int{1, 14, 14}, 4, 8, 16, 10, rng)
	// Zero the first conv's weights; give it a bias so the path is visible.
	conv := net.Layers[0].(*Conv2D)
	for i := range conv.w.Data {
		conv.w.Data[i] = 0
	}
	for i := range conv.b.Data {
		conv.b.Data[i] = 0.5 * float64(i+1)
	}
	// Zero the head entirely: logits must be exactly the head bias.
	head := net.Layers[len(net.Layers)-1].(*Dense)
	for i := range head.w.Data {
		head.w.Data[i] = 0
	}
	for i := range head.b.Data {
		head.b.Data[i] = float64(i) - 4.5
	}
	calib := randBatch(rng, 4, net.InShape())
	_, qn := quantizeForTest(t, net, calib)
	if !qn.ops[0].zeroScale {
		t.Fatal("zeroed conv did not compile to the zero-scale path")
	}
	in := randBatch(rng, 3, net.InShape())
	arena := NewArena()
	arena.Reset()
	out := qn.ForwardBatch(in, arena)
	outDim := qn.OutDim()
	for s := 0; s < 3; s++ {
		for o := 0; o < outDim; o++ {
			got := out.Data[s*outDim+o]
			want := head.b.Data[o]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("sample %d logit %d: %v, want head bias %v", s, o, got, want)
			}
		}
	}
}

// TestQuantizedNetworkSteadyStateZeroAlloc: after one warm-up batch, the
// engine's Reset/quantize/forward cycle allocates nothing — the same arena
// discipline the float path's hotalloc gate enforces.
func TestQuantizedNetworkSteadyStateZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	net := BuildCNN("cnn", []int{1, 14, 14}, 4, 8, 16, 10, rng)
	calib := randBatch(rng, 4, net.InShape())
	_, qn := quantizeForTest(t, net, calib)
	in := randBatch(rng, 8, net.InShape())
	arena := NewArena()
	arena.Reset()
	qn.ForwardBatch(in, arena) // warm the arena
	allocs := testing.AllocsPerRun(10, func() {
		arena.Reset()
		qn.ForwardBatch(in, arena)
	})
	if allocs != 0 {
		t.Fatalf("steady-state quantized forward allocates %v objects/op, want 0", allocs)
	}
}

// TestQuantizedNetworkRejectsUnsupported: layers without an INT8 lowering
// and networks without a Dense head are compile-time errors, not runtime
// surprises.
func TestQuantizedNetworkRejectsUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ln, err := NewLayerNorm(16)
	if err != nil {
		t.Fatal(err)
	}
	bad := NewNetwork("ln", []int{16}, NewFlatten(), ln, NewDense(16, 4, rng))
	calib := randBatch(rng, 2, bad.InShape())
	if _, err := NewQuantizedNetwork(bad, QuantizeWeights(bad), calib); err == nil {
		t.Fatal("LayerNorm network compiled; want an unsupported-layer error")
	}
	tailless := NewNetwork("relu-tail", []int{16}, NewFlatten(), NewDense(16, 4, rng), NewReLU())
	if _, err := NewQuantizedNetwork(tailless, QuantizeWeights(tailless), calib); err == nil {
		t.Fatal("network without a Dense head compiled; want an error")
	}
}
