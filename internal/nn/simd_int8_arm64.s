// NEON tier of the INT8 kernels. Same contract as the amd64 tiers: int32
// two's-complement wraparound accumulation, associative, so any lane
// regrouping is bit-identical to qdotRowRef. The multiply-accumulate core is
// SMULL/SMULL2 (exact: |product| <= 127*127, far inside int16) followed by
// SADALP, which pairwise-widens the int16 products into the int32
// accumulator lanes. Go's arm64 assembler has no mnemonics for the vector
// forms of SMULL/SMULL2/SADALP, so those three are WORD-encoded; the
// encodings are fixed register assignments documented per line and verified
// against `go tool objdump` (see simd_int8_arm64_test.go for the runtime
// pin on arm64 hosts).
//
// Both kernels require k >= 16 and k % 16 == 0 — the dispatcher
// (simd_int8_arm64.go) routes everything else to the scalar reference.

#include "textflag.h"

// func qdotRowNEON(out []int32, a, b []int8, n, k int)
//
// out[j] = sum_{p<k} int32(a[p]) * int32(b[j*k+p]) for j < n.
TEXT ·qdotRowNEON(SB), NOSPLIT, $0-88
	MOVD out_base+0(FP), R0
	MOVD a_base+24(FP), R1
	MOVD b_base+48(FP), R2
	MOVD n+72(FP), R3
	MOVD k+80(FP), R4
	MOVD $0, R5 // j

nrow_jloop:
	CMP  R3, R5
	BGE  nrow_done
	MUL  R4, R5, R6
	ADD  R2, R6, R6 // R6 = &b[j*k]
	MOVD R1, R7     // a cursor
	VEOR V4.B16, V4.B16, V4.B16 // 4-lane int32 accumulator
	MOVD R4, R8     // bytes remaining

nrow_kloop:
	VLD1.P 16(R7), [V0.B16]
	VLD1.P 16(R6), [V1.B16]
	WORD $0x0E21C008 // SMULL  V8.8H, V0.8B, V1.8B   (low 8 products)
	WORD $0x4E21C009 // SMULL2 V9.8H, V0.16B, V1.16B (high 8 products)
	WORD $0x4E606904 // SADALP V4.4S, V8.8H          (pairwise widen-add)
	WORD $0x4E606924 // SADALP V4.4S, V9.8H
	SUBS $16, R8
	BNE  nrow_kloop

	VADDV V4.S4, V4 // wraparound sum of the 4 lanes
	VMOV  V4.S[0], R9
	MOVW  R9, (R0)(R5<<2)
	ADD   $1, R5
	B     nrow_jloop

nrow_done:
	RET

// func qdot2NEON(out0, out1 []int32, a0, a1, b []int8, n, k int)
//
// Dual-row form: each 16-byte step of the b row is loaded once and multiplied
// against both a rows, halving the b traffic exactly like the amd64
// batch-tiled kernels (the engine's ForwardBatch pairs rows through this).
TEXT ·qdot2NEON(SB), NOSPLIT, $0-136
	MOVD out0_base+0(FP), R0
	MOVD out1_base+24(FP), R1
	MOVD a0_base+48(FP), R2
	MOVD a1_base+72(FP), R3
	MOVD b_base+96(FP), R4
	MOVD n+120(FP), R5
	MOVD k+128(FP), R6
	MOVD $0, R7 // j

n2_jloop:
	CMP  R5, R7
	BGE  n2_done
	MUL  R6, R7, R8
	ADD  R4, R8, R8 // R8 = &b[j*k]
	MOVD R2, R9     // a0 cursor
	MOVD R3, R10    // a1 cursor
	VEOR V4.B16, V4.B16, V4.B16 // acc row 0
	VEOR V5.B16, V5.B16, V5.B16 // acc row 1
	MOVD R6, R11    // bytes remaining

n2_kloop:
	VLD1.P 16(R9), [V0.B16]
	VLD1.P 16(R10), [V1.B16]
	VLD1.P 16(R8), [V2.B16]
	WORD $0x0E22C008 // SMULL  V8.8H, V0.8B, V2.8B
	WORD $0x4E22C009 // SMULL2 V9.8H, V0.16B, V2.16B
	WORD $0x4E606904 // SADALP V4.4S, V8.8H
	WORD $0x4E606924 // SADALP V4.4S, V9.8H
	WORD $0x0E22C02A // SMULL  V10.8H, V1.8B, V2.8B
	WORD $0x4E22C02B // SMULL2 V11.8H, V1.16B, V2.16B
	WORD $0x4E606945 // SADALP V5.4S, V10.8H
	WORD $0x4E606965 // SADALP V5.4S, V11.8H
	SUBS $16, R11
	BNE  n2_kloop

	VADDV V4.S4, V4
	VADDV V5.S4, V5
	VMOV  V4.S[0], R12
	VMOV  V5.S[0], R13
	MOVW  R12, (R0)(R7<<2)
	MOVW  R13, (R1)(R7<<2)
	ADD   $1, R7
	B     n2_jloop

n2_done:
	RET
