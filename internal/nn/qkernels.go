package nn

import "math"

// Integer kernels for the true-INT8 inference path (see DESIGN.md §9 "INT8
// fast path"). Everything here is exact integer arithmetic: int8 operands,
// int32 accumulation with two's-complement wraparound, and a fixed-point
// requantization whose rounding rule is specified to the bit. Wraparound
// addition is associative and commutative, so the SIMD tiers
// (simd_int8_amd64.s) may regroup lanes freely and still produce the same
// bits as qdotRowRef on every platform — the cross-tier identity the float
// kernels have to earn by never splitting an accumulation, the integer
// kernels get for free. The only rounding in the whole path lives in
// requantize and quantMultiplier below, shared scalar Go on all tiers.

// qdotRowRef is the reference integer dot-product kernel:
//
//	out[j] = sum_{p<k} int32(a[p]) * int32(b[j*k+p])   for j < n
//
// with int32 wraparound accumulation. a has k values; b holds n rows of k.
// The convolution uses a = one output channel's int8 weights and b = the
// im2colQ patch matrix; Dense uses a = the input activations and b = the
// weight rows. qdotRowSIMD dispatches to the SSE2/AVX2 kernels on amd64 and
// to this loop elsewhere; simd_int8_test.go pins all tiers to these bits.
func qdotRowRef(out []int32, a, b []int8, n, k int) {
	for j := 0; j < n; j++ {
		br := b[j*k : j*k+k]
		var s int32
		for p, av := range a[:k] {
			s += int32(av) * int32(br[p])
		}
		out[j] = s
	}
}

// quantMultiplier decomposes a real requantization ratio M = (sx*sw)/sy into
// a fixed-point multiplier: M ≈ m * 2^-shift with m an int32 normalized into
// [2^30, 2^31) (31 fractional bits of precision regardless of magnitude).
// M = 0 returns (0, 0), the all-zero-tensor marker. M must be finite and
// non-negative — scales are maxAbs/127 by construction.
func quantMultiplier(M float64) (m int32, shift int) {
	if M == 0 {
		return 0, 0
	}
	frac, exp := math.Frexp(M) // M = frac * 2^exp, frac in [0.5, 1)
	q := int64(math.Round(frac * (1 << 31)))
	if q == 1<<31 { // frac rounded up to exactly 1.0
		q >>= 1
		exp++
	}
	return int32(q), 31 - exp
}

// requantize maps an int32 accumulator back to int8: round(acc * m * 2^-shift)
// clamped to [-127, 127]. The rounding rule, pinned by golden vectors in
// simd_int8_test.go, is round-to-nearest with ties toward +infinity —
// (p + 2^(shift-1)) >> shift on the int64 product, the arithmetic shift
// flooring negative values, so e.g. -0.5 rounds to 0 and +0.5 rounds to 1.
// A non-positive shift (ratio >= 2^31, only reachable with degenerate
// scales) clamps the product first so the left shift cannot overflow.
func requantize(acc, m int32, shift int) int8 {
	p := int64(acc) * int64(m)
	var r int64
	if shift > 0 {
		r = (p + 1<<(shift-1)) >> shift
	} else {
		if p > 127 {
			p = 127
		}
		if p < -127 {
			p = -127
		}
		r = p << -shift
	}
	if r > 127 {
		r = 127
	}
	if r < -127 {
		r = -127
	}
	return int8(r)
}

// requantizeRowScalar is the batch-path form of requantize: one bias for the
// whole row (a conv output-channel row) with the shift>0 branch and the
// rounding constant hoisted out of the element loop. lo is the lower clamp
// bound: -127 normally, 0 when the following ReLU has been fused into the
// store — exact, because relu(clamp(r, -127, 127)) == clamp(r, 0, 127). Each
// element computes the identical (p + 2^(shift-1)) >> shift expression as
// requantize, so the single-rounding-site contract pinned by the golden
// vectors holds; the requantizeRow-vs-spec test replays it against
// requantize + max. The hot path dispatches through requantizeRow, which on
// amd64 routes full 8-lane blocks to the AVX-512 kernel when available.
func requantizeRowScalar(dst []int8, acc []int32, bias, m int32, shift int, lo int8) {
	dst = dst[:len(acc)]
	if shift <= 0 { // degenerate-scale cold path: keep the spec's clamp order
		for j, v := range acc {
			dst[j] = max(requantize(v+bias, m, shift), lo)
		}
		return
	}
	rnd := int64(1) << (shift - 1)
	l, mm := int64(lo), int64(m)
	for j, v := range acc {
		r := (int64(v+bias)*mm + rnd) >> shift
		dst[j] = int8(min(max(r, l), 127))
	}
}

// requantizeRowPerCol is requantizeRow with a per-column bias vector — the
// dense-layer form, where acc is one sample's output row and bias[o] is the
// o-th unit's bias in accumulator units.
func requantizeRowPerCol(dst []int8, acc []int32, bias []int32, m int32, shift int, lo int8) {
	dst = dst[:len(acc)]
	bias = bias[:len(acc)]
	if shift <= 0 {
		for j, v := range acc {
			dst[j] = max(requantize(v+bias[j], m, shift), lo)
		}
		return
	}
	rnd := int64(1) << (shift - 1)
	l, mm := int64(lo), int64(m)
	for j, v := range acc {
		r := (int64(v+bias[j])*mm + rnd) >> shift
		dst[j] = int8(min(max(r, l), 127))
	}
}

// quantizeActs quantizes a float activation slice symmetrically at the given
// scale: q = round(v/scale) clamped to [-127, 127], round-half-away-from-zero
// (math.Round, the weight rule). NaN quantizes to 0 and ±Inf saturate to
// ±127 — int8(NaN) is unspecified in Go, so the NaN branch is explicit; the
// output is always a well-formed int8 whatever the floats contain.
// Activation scales are calibrated with a zero→one fallback, so scale > 0.
func quantizeActs(dst []int8, src []float64, scale float64) {
	for i, v := range src {
		q := math.Round(v / scale)
		switch {
		case math.IsNaN(q):
			dst[i] = 0
		case q > 127:
			dst[i] = 127
		case q < -127:
			dst[i] = -127
		default:
			dst[i] = int8(q)
		}
	}
}

// padTo16 rounds a K dimension up to the kernel vector width. The engine
// zero-pads every weight row to this stride so the SIMD dots never run a
// scalar tail; the padded products are 0*garbage = 0 and int32 wraparound
// addition of zeros is exact, so padding cannot change a single bit.
func padTo16(k int) int { return (k + 15) &^ 15 }

// qgemmNT drives the integer row-dot kernels over an m-by-k int8 matrix a
// (rows at stride k) against n rows of b: out[i*n+j] = dot(a row i, b row
// j). Pairs of a rows go through qdot2SIMD, which shares each b load across
// both accumulators; the odd row falls back to qdotRowSIMD. The convolution
// calls this with a = padded weight rows and b = the im2colQ patch matrix;
// Dense calls it with n = 1 and b = one padded activation row.
func qgemmNT(out []int32, a, b []int8, m, n, k int) {
	i := 0
	for ; i+2 <= m; i += 2 {
		qdot2SIMD(out[i*n:(i+1)*n], out[(i+1)*n:(i+2)*n], a[i*k:(i+1)*k], a[(i+1)*k:(i+2)*k], b, n, k)
	}
	if i < m {
		qdotRowSIMD(out[i*n:(i+1)*n], a[i*k:(i+1)*k], b, n, k)
	}
}

// im2colQ lowers one int8 CHW sample to the patch matrix the quantized
// convolution consumes: dst[p*ld+c] = the c-th element of output pixel p's
// receptive field, p walking output pixels row-major (y, then x) and c
// walking the patch in (ic, ky, kx) order — the float im2col's exact patch
// layout, at a caller-chosen row stride ld >= inC*kh*kh (the engine passes
// the 16-padded stride; bytes between the patch and the stride are left
// untouched, which is safe because the matching weight pad is zero). dst
// must have oh*ow*ld elements. The ubiquitous 3x3 and 5x5 kernels get
// unrolled bodies; other sizes copy each kh-length run.
func im2colQ(dst, src []int8, inC, h, w, kh, oh, ow, ld int) {
	switch kh {
	case 3:
		for y := 0; y < oh; y++ {
			di := y * ow * ld
			for x := 0; x < ow; x++ {
				for ic := 0; ic < inC; ic++ {
					base := (ic*h+y)*w + x
					r0 := src[base : base+3]
					r1 := src[base+w : base+w+3]
					r2 := src[base+2*w : base+2*w+3]
					d := dst[di+ic*9 : di+ic*9+9]
					d[0], d[1], d[2] = r0[0], r0[1], r0[2]
					d[3], d[4], d[5] = r1[0], r1[1], r1[2]
					d[6], d[7], d[8] = r2[0], r2[1], r2[2]
				}
				di += ld
			}
		}
	case 5:
		for y := 0; y < oh; y++ {
			di := y * ow * ld
			for x := 0; x < ow; x++ {
				for ic := 0; ic < inC; ic++ {
					base := (ic*h+y)*w + x
					d := dst[di+ic*25 : di+ic*25+25]
					for r := 0; r < 5; r++ {
						s := src[base+r*w : base+r*w+5]
						d5 := d[r*5 : r*5+5]
						d5[0], d5[1], d5[2], d5[3], d5[4] = s[0], s[1], s[2], s[3], s[4]
					}
				}
				di += ld
			}
		}
	default:
		for y := 0; y < oh; y++ {
			di := y * ow * ld
			for x := 0; x < ow; x++ {
				c := 0
				for ic := 0; ic < inC; ic++ {
					for ky := 0; ky < kh; ky++ {
						copy(dst[di+c:di+c+kh], src[(ic*h+y+ky)*w+x:(ic*h+y+ky)*w+x+kh])
						c += kh
					}
				}
				di += ld
			}
		}
	}
}
