package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Golden equivalence suite: the GEMM/im2col kernels and the batched
// inference path must agree bit for bit with the naive per-sample
// reference implementations. Comparisons go through math.Float64bits so
// even sign-of-zero or NaN-payload drift would fail.

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d = %x (%g), want %x (%g)",
				name, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := NewTensor(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func TestDenseGEMMMatchesNaiveBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dims := range [][2]int{{1, 1}, {3, 4}, {7, 5}, {64, 10}, {129, 33}} {
		d := NewDense(dims[0], dims[1], rng)
		in := randTensor(rng, dims[0])
		bitsEqual(t, "dense", d.Forward(in).Data, d.forwardNaive(in).Data)
	}
}

func TestConv2DGEMMMatchesNaiveBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct{ inC, outC, k, h, w int }{
		{1, 1, 1, 1, 1},
		{1, 4, 3, 8, 8},
		{3, 8, 3, 14, 14},
		{6, 16, 5, 12, 12},
		{8, 8, 1, 7, 9}, // pointwise, non-square input
		{2, 5, 3, 5, 11},
	}
	for _, c := range cases {
		conv := NewConv2D(c.inC, c.outC, c.k, rng)
		in := randTensor(rng, c.inC, c.h, c.w)
		bitsEqual(t, "conv", conv.Forward(in).Data, conv.forwardNaive(in).Data)
	}
}

// networkForwardNaive runs the per-sample reference path over a whole
// network: naive Dense/Conv2D kernels, regular Forward for the rest.
func networkForwardNaive(n *Network, in *Tensor) *Tensor {
	out := in
	for _, l := range n.Layers {
		switch layer := l.(type) {
		case *Dense:
			layer.lastIn = out
			out = layer.forwardNaive(out)
		case *Conv2D:
			layer.lastIn = out
			out = layer.forwardNaive(out)
		default:
			out = l.Forward(out)
		}
	}
	return out
}

func zooForTest(rng *rand.Rand) []*Network {
	in := []int{1, 14, 14}
	return []*Network{
		BuildCNN("cnn", in, 4, 8, 32, 10, rng),
		BuildLeNet5("lenet", []int{1, 28, 28}, 1, 10, rng),
		BuildMobileCNN("mobile", in, 6, 8, 10, rng),
		BuildMLP("mlp", in, 32, 16, 10, rng),
	}
}

func TestNetworkForwardMatchesNaiveBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, net := range zooForTest(rng) {
		for s := 0; s < 5; s++ {
			in := randTensor(rng, net.InShape()...)
			got := net.Forward(in)
			want := networkForwardNaive(net, in)
			bitsEqual(t, net.Name, got.Data, want.Data)
		}
	}
}

func TestForwardBatchMatchesPerSampleBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, net := range zooForTest(rng) {
		arena := NewArena()
		classes, err := net.OutDim()
		if err != nil {
			t.Fatal(err)
		}
		shape := net.InShape()
		sampleLen := 1
		for _, d := range shape {
			sampleLen *= d
		}
		for _, batch := range []int{1, 2, 3, 7, 16} {
			samples := make([]*Tensor, batch)
			for s := range samples {
				samples[s] = randTensor(rng, shape...)
			}
			// Run the batch twice on the same arena: the second pass reuses
			// warmed buffers and must produce the same bits.
			var first []float64
			for pass := 0; pass < 2; pass++ {
				arena.Reset()
				in := arena.Tensor(append([]int{batch}, shape...)...)
				for s, smp := range samples {
					copy(in.Data[s*sampleLen:(s+1)*sampleLen], smp.Data)
				}
				logits := net.ForwardBatch(in, arena)
				if logits.Shape[0] != batch || logits.Shape[1] != classes {
					t.Fatalf("%s: batch logits shape %v, want [%d %d]", net.Name, logits.Shape, batch, classes)
				}
				for s, smp := range samples {
					want := net.Forward(smp)
					bitsEqual(t, net.Name, logits.Data[s*classes:(s+1)*classes], want.Data)
				}
				if pass == 0 {
					first = append([]float64(nil), logits.Data...)
				} else {
					bitsEqual(t, net.Name+" warm-arena pass", logits.Data, first)
				}
			}
		}
	}
}

func TestRowHelpersMatchPerSampleBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	scratch := make([]float64, 16)
	for i := 0; i < 50; i++ {
		logits := randTensor(rng, 10)
		label := rng.Intn(10)

		wantLoss, _ := SquaredLoss(logits, label)
		gotLoss := SquaredLossRow(logits.Data, label, scratch)
		if math.Float64bits(gotLoss) != math.Float64bits(wantLoss) {
			t.Fatalf("loss %v, want %v", gotLoss, wantLoss)
		}
		if got, want := ArgmaxRow(logits.Data), logits.MaxIndex(); got != want {
			t.Fatalf("argmax %d, want %d", got, want)
		}
		sm := Softmax(logits)
		dst := make([]float64, 10)
		SoftmaxRowInto(dst, logits.Data)
		bitsEqual(t, "softmax", dst, sm.Data)
	}
}

func TestLayerNormForwardBatchMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	ln, err := NewLayerNorm(12)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ln.gain.Data {
		ln.gain.Data[i] = rng.NormFloat64()
		ln.bias.Data[i] = rng.NormFloat64()
	}
	arena := NewArena()
	const batch = 5
	in := arena.Tensor(batch, 12)
	samples := make([]*Tensor, batch)
	for s := range samples {
		samples[s] = randTensor(rng, 12)
		copy(in.Data[s*12:(s+1)*12], samples[s].Data)
	}
	out := ln.ForwardBatch(in, arena)
	for s, smp := range samples {
		bitsEqual(t, "layernorm", out.Data[s*12:(s+1)*12], ln.Forward(smp).Data)
	}
}

func TestArenaReuseIsGrowOnly(t *testing.T) {
	a := NewArena()
	f1 := a.Floats(8)
	a.Reset()
	f2 := a.Floats(4)
	if &f1[0] != &f2[0] {
		t.Fatal("arena did not reuse the first float buffer after Reset")
	}
	a.Reset()
	f3 := a.Floats(16) // larger: must grow, not alias a stale smaller cap
	if len(f3) != 16 {
		t.Fatalf("grown buffer has length %d", len(f3))
	}
	tn := a.Tensor(2, 3)
	if tn.Len() != 6 {
		t.Fatalf("arena tensor length %d", tn.Len())
	}
	v := a.View(tn.Data, 3, 2)
	if &v.Data[0] != &tn.Data[0] {
		t.Fatal("view copied data")
	}
}

func TestDropoutForwardBatchPanicsInTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	d, err := NewDropout(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	d.SetTraining(true)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for training-mode batched dropout")
		}
	}()
	a := NewArena()
	d.ForwardBatch(a.Tensor(1, 4), a)
}
