//go:build amd64

package nn

// SIMD kernels for the element-parallel hot loops. Bit-identity with the
// scalar references is structural, not approximate: every output element is
// produced by exactly the same IEEE-754 operations in the same order as the
// scalar loop — SIMD only computes independent elements side by side, never
// splits or reorders a single element's accumulation, and never uses FMA
// (whose single rounding would differ from the scalar mul-then-add). SSE2 is
// part of the amd64 baseline; the wider AVX2 variants dispatch behind
// hasAVX2 (cpu_amd64.go) and perform the identical per-element operations,
// so results do not depend on which variant ran. simd_generic.go carries the
// scalar fallback for other architectures; simd_test.go pins every variant
// against the scalar references bit for bit, including -0, NaN, and Inf
// lanes and every tail length.
//
// One deliberate carve-out: NaN payload bits. When both operands of an add
// or multiply are NaN, hardware propagates the first operand's payload, and
// the Go compiler does not specify scalar operand order — so a kernel may
// return a different NaN than the scalar loop (never a NaN where the scalar
// is finite, or vice versa). No network computation produces NaN from the
// finite inputs these kernels see, and the equivalence suites pin all real
// data paths bit for bit.

//go:noescape
func axpySSE2(alpha float64, x, y []float64)

//go:noescape
func axpyAVX2(alpha float64, x, y []float64)

//go:noescape
func reluFwdSSE2(dst, src []float64)

//go:noescape
func reluFwdAVX2(dst, src []float64)

//go:noescape
func reluBwdSSE2(dst, grad, in []float64)

//go:noescape
func reluBwdAVX2(dst, grad, in []float64)

//go:noescape
func nnDot8SSE2(out, init, a, bt []float64, n int)

//go:noescape
func nnDot16AVX2(out, init, a, bt []float64, n int)

//go:noescape
func nnDot4x8AVX2(out []float64, on int, init, a []float64, k int, bt []float64, ld int) //lint:allow simdcover register-tiled quad kernel with no scalar twin; on !amd64 the quad drivers hand every row to the row path, and simd_test.go pins the drivers

//go:noescape
func pool2x2SSE2(dst, row0, row1 []float64)

//go:noescape
func conv3x3BwdSSE2(gv float64, wr, cr, gw, gi []float64, w, hw, inC int)

//go:noescape
func transpose2x2SSE2(dst, src []float64, rows, cols int)

//go:noescape
func stepSSE2(lr, scale float64, g, p []float64)

//go:noescape
func stepAVX2(lr, scale float64, g, p []float64)

// axpySIMD computes y[i] += alpha * x[i] over len(y) elements.
// x must be at least as long as y.
func axpySIMD(alpha float64, x, y []float64) {
	if hasAVX2 && len(y) >= 8 {
		axpyAVX2(alpha, x, y)
		return
	}
	axpySSE2(alpha, x, y)
}

// reluFwdSIMD computes dst[i] = max(src[i], 0): src[i] if src[i] > 0,
// else +0 (also for NaN and -0 inputs, matching the scalar branch).
// src must be at least as long as dst.
func reluFwdSIMD(dst, src []float64) {
	if hasAVX2 && len(dst) >= 8 {
		reluFwdAVX2(dst, src)
		return
	}
	reluFwdSSE2(dst, src)
}

// stepSIMD applies the SGD update p[i] -= lr*g[i]/scale: per element one
// multiply, one divide, one subtract in that exact order (lr*g[i] is never
// folded into (lr/scale)*g[i], which would round differently).
// g must be at least as long as p.
func stepSIMD(lr, scale float64, g, p []float64) {
	if hasAVX2 && len(p) >= 8 {
		stepAVX2(lr, scale, g, p)
		return
	}
	stepSSE2(lr, scale, g, p)
}

// pool2x2SIMD computes one output row of a 2x2/stride-2 max pool:
// dst[x] = the maximum of row0[2x], row0[2x+1], row1[2x], row1[2x+1],
// scanned in that order with strict-> updates. MAXPD returns its source
// operand on ties and NaN candidates, which with the running best as source
// reproduces the scalar branch exactly — bit for bit, with no carve-outs
// (the result is always one of the inputs, untouched). row0 and row1 must
// have at least 2*len(dst) elements.
func pool2x2SIMD(dst, row0, row1 []float64) {
	pool2x2SSE2(dst, row0, row1)
}

// transposeSIMD writes dst[c*rows+r] = src[r*cols+c] — the out-of-place
// matrix transpose behind the Dense NN-form GEMMs. The 2x2-block kernel
// covers the even region (UNPCKLPD/UNPCKHPD, contiguous stores down two dst
// rows); the odd row/column tails finish scalar. Pure data movement, so the
// result is bit-exact trivially.
func transposeSIMD(dst, src []float64, rows, cols int) {
	r2, c2 := rows&^1, cols&^1
	transpose2x2SSE2(dst, src, rows, cols)
	for r := r2; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dst[c*rows+r] = src[r*cols+c]
		}
	}
	for c := c2; c < cols; c++ {
		for r := 0; r < r2; r++ {
			dst[c*rows+r] = src[r*cols+c]
		}
	}
}

// conv3x3BwdSIMD applies one surviving gradient element gv of a 3x3
// convolution backward pass across all input channels: the weight gradient
// gets gw[ic*9+j] += gv*cr[ic*9+j] (cr is the patch's im2col row) and the
// input gradient gets gi[ic*hw + r*w + j] += gv*wr[ic*9+r*3+j] for the three
// rows r of the receptive field. Each target element receives exactly one
// mul-then-add, matching the scalar loops' per-accumulator sequences. gi
// must be sliced at the scatter origin; w and hw are element strides.
func conv3x3BwdSIMD(gv float64, wr, cr, gw, gi []float64, w, hw, inC int) {
	conv3x3BwdSSE2(gv, wr, cr, gw, gi, w, hw, inC)
}

// reluBwdSIMD computes dst[i] = grad[i] if in[i] > 0, else +0.
// grad and in must be at least as long as dst.
func reluBwdSIMD(dst, grad, in []float64) {
	if hasAVX2 && len(dst) >= 8 {
		reluBwdAVX2(dst, grad, in)
		return
	}
	reluBwdSSE2(dst, grad, in)
}

// nnDot8SIMD accumulates eight adjacent output columns of an NN-form GEMM
// entirely in registers: out[l] = init[l] + sum_c a[c]*bt[c*n+l] for
// l in [0, 8), with c strictly ascending per column (the reference dot
// order — lanes are independent columns, no sum is ever split). out and
// init must have at least 8 elements; bt at least (len(a)-1)*n+8.
func nnDot8SIMD(out, init, a, bt []float64, n int) {
	nnDot8SSE2(out, init, a, bt, n)
}

// gemmNNRowI computes one output row of an NN-form GEMM with a per-row bias:
// orow[j] = bi + sum_c ar[c]*bt[c*ld+j] for j < n. Sixteen columns per pass
// under AVX2, eight under SSE2, scalar for the tail — all the same
// per-column dot order. ld is the bt row stride (>= n for sub-views).
func gemmNNRowI(orow []float64, bi float64, ar, bt []float64, n, ld int) {
	var init [16]float64
	for l := range init {
		init[l] = bi
	}
	j := 0
	if hasAVX2 {
		for ; j+16 <= n; j += 16 {
			nnDot16AVX2(orow[j:j+16], init[:], ar, bt[j:], ld)
		}
	}
	for ; j+8 <= n; j += 8 {
		nnDot8SSE2(orow[j:j+8], init[:8], ar, bt[j:], ld)
	}
	for ; j < n; j++ {
		s := bi
		for c, av := range ar {
			s += av * bt[c*ld+j]
		}
		orow[j] = s
	}
}

// gemmNNRowJ is gemmNNRowI with a per-column bias: orow[j] = bias[j] + ...,
// the Dense orientation. bias must have length n.
func gemmNNRowJ(orow, bias, ar, bt []float64, n, ld int) {
	j := 0
	if hasAVX2 {
		for ; j+16 <= n; j += 16 {
			nnDot16AVX2(orow[j:j+16], bias[j:j+16], ar, bt[j:], ld)
		}
	}
	for ; j+8 <= n; j += 8 {
		nnDot8SSE2(orow[j:j+8], bias[j:j+8], ar, bt[j:], ld)
	}
	for ; j < n; j++ {
		s := bias[j]
		for c, av := range ar {
			s += av * bt[c*ld+j]
		}
		orow[j] = s
	}
}

// gemmNNAccRow accumulates one NN-form GEMM row in place:
// orow[j] += sum_c ar[c]*bt[c*ld+j]. The dot kernels take their init vector
// from orow itself (loaded before any store), so each element continues its
// own running sum with c ascending.
func gemmNNAccRow(orow, ar, bt []float64, n, ld int) {
	j := 0
	if hasAVX2 {
		for ; j+16 <= n; j += 16 {
			nnDot16AVX2(orow[j:j+16], orow[j:j+16], ar, bt[j:], ld)
		}
	}
	for ; j+8 <= n; j += 8 {
		nnDot8SSE2(orow[j:j+8], orow[j:j+8], ar, bt[j:], ld)
	}
	for ; j < n; j++ {
		s := orow[j]
		for c, av := range ar {
			s += av * bt[c*ld+j]
		}
		orow[j] = s
	}
}

// gemmNNQuadI runs the 4x8 register-tiled kernel over as many groups of
// four output rows as fit, returning the number of rows consumed (callers
// finish the remainder row by row). Tiling over rows loads each bt element
// once per four rows instead of once per row; every output element still
// owns one accumulator walking c in ascending order.
func gemmNNQuadI(out, a, bt, bias []float64, m, n, k, ld int) int {
	if !hasAVX2 || n < 8 {
		return 0
	}
	var init [32]float64
	i := 0
	for ; i+4 <= m; i += 4 {
		for r := 0; r < 4; r++ {
			bi := bias[i+r]
			for l := 0; l < 8; l++ {
				init[r*8+l] = bi
			}
		}
		j := 0
		for ; j+8 <= n; j += 8 {
			nnDot4x8AVX2(out[i*n+j:], n, init[:], a[i*k:], k, bt[j:], ld)
		}
		for ; j < n; j++ {
			for r := 0; r < 4; r++ {
				s := bias[i+r]
				ar := a[(i+r)*k : (i+r)*k+k]
				for c, av := range ar {
					s += av * bt[c*ld+j]
				}
				out[(i+r)*n+j] = s
			}
		}
	}
	return i
}

// gemmNNQuadJ is gemmNNQuadI with the Dense per-column bias: all four rows
// of a tile start from bias[j:j+8].
func gemmNNQuadJ(out, a, bt, bias []float64, m, n, k, ld int) int {
	if !hasAVX2 || n < 8 {
		return 0
	}
	var init [32]float64
	i := 0
	for ; i+4 <= m; i += 4 {
		j := 0
		for ; j+8 <= n; j += 8 {
			b8 := bias[j : j+8]
			copy(init[0:8], b8)
			copy(init[8:16], b8)
			copy(init[16:24], b8)
			copy(init[24:32], b8)
			nnDot4x8AVX2(out[i*n+j:], n, init[:], a[i*k:], k, bt[j:], ld)
		}
		for ; j < n; j++ {
			for r := 0; r < 4; r++ {
				s := bias[j]
				ar := a[(i+r)*k : (i+r)*k+k]
				for c, av := range ar {
					s += av * bt[c*ld+j]
				}
				out[(i+r)*n+j] = s
			}
		}
	}
	return i
}

// gemmNNQuadAcc is gemmNNQuadI accumulating in place: each tile's init is
// gathered from the four output rows' current values.
func gemmNNQuadAcc(out, a, bt []float64, m, n, k, ld int) int {
	if !hasAVX2 || n < 8 {
		return 0
	}
	var init [32]float64
	i := 0
	for ; i+4 <= m; i += 4 {
		j := 0
		for ; j+8 <= n; j += 8 {
			copy(init[0:8], out[i*n+j:])
			copy(init[8:16], out[(i+1)*n+j:])
			copy(init[16:24], out[(i+2)*n+j:])
			copy(init[24:32], out[(i+3)*n+j:])
			nnDot4x8AVX2(out[i*n+j:], n, init[:], a[i*k:], k, bt[j:], ld)
		}
		for ; j < n; j++ {
			for r := 0; r < 4; r++ {
				s := out[(i+r)*n+j]
				ar := a[(i+r)*k : (i+r)*k+k]
				for c, av := range ar {
					s += av * bt[c*ld+j]
				}
				out[(i+r)*n+j] = s
			}
		}
	}
	return i
}
