package nn

// Arena is a grow-only scratch allocator for the batched inference path.
// One arena belongs to exactly one owner — an edge runtime, an evaluation
// loop — and is never shared across goroutines (no sync.Pool: pooled
// buffers migrate between goroutines, which both breaks the engine's
// per-edge ownership discipline and trips the race detector on the
// determinism tests).
//
// Buffers are keyed by call order: a fixed layer sequence requests the same
// buffers in the same order every batch, so after the first (warm-up) batch
// every request is served from the cache and a steady-state slot step
// performs zero heap allocations (pinned by BenchmarkNNRuntimeSlot's
// ReportAllocs gate in internal/deploy).
//
// Protocol: call Reset once per batch, build the input batch from the
// arena, run Network.ForwardBatch, consume the outputs, repeat. Reset
// recycles every buffer handed out since the previous Reset, so values must
// not be retained across batches.
type Arena struct {
	floats  [][]float64
	nfloats int
	ints    [][]int
	nints   int
	i8s     [][]int8
	ni8     int
	i32s    [][]int32
	ni32    int
	tensors []*Tensor
	nten    int
}

// NewArena creates an empty arena.
func NewArena() *Arena { return &Arena{} }

// Reset recycles every buffer handed out since the previous Reset. The
// buffers keep their capacity, so a warmed arena serves subsequent batches
// without allocating.
func (a *Arena) Reset() {
	a.nfloats, a.nints, a.nten = 0, 0, 0
	a.ni8, a.ni32 = 0, 0
}

// Floats returns a float64 scratch slice of length n. Contents are
// unspecified: callers must fully overwrite before reading.
func (a *Arena) Floats(n int) []float64 {
	if a.nfloats == len(a.floats) {
		a.floats = append(a.floats, make([]float64, n)) //lint:allow hotalloc grow-only arena pool; steady state reuses capacity
	} else if cap(a.floats[a.nfloats]) < n {
		a.floats[a.nfloats] = make([]float64, n) //lint:allow hotalloc grow-only arena pool; steady state reuses capacity
	}
	buf := a.floats[a.nfloats][:n]
	a.nfloats++
	return buf
}

// Ints returns an int scratch slice of length n. Contents are unspecified.
func (a *Arena) Ints(n int) []int {
	if a.nints == len(a.ints) {
		a.ints = append(a.ints, make([]int, n))
	} else if cap(a.ints[a.nints]) < n {
		a.ints[a.nints] = make([]int, n)
	}
	buf := a.ints[a.nints][:n]
	a.nints++
	return buf
}

// Int8s returns an int8 scratch slice of length n for the quantized
// inference path. Contents are unspecified: callers must fully overwrite
// before reading.
func (a *Arena) Int8s(n int) []int8 {
	if a.ni8 == len(a.i8s) {
		a.i8s = append(a.i8s, make([]int8, n)) //lint:allow hotalloc grow-only arena pool; steady state reuses capacity
	} else if cap(a.i8s[a.ni8]) < n {
		a.i8s[a.ni8] = make([]int8, n) //lint:allow hotalloc grow-only arena pool; steady state reuses capacity
	}
	buf := a.i8s[a.ni8][:n]
	a.ni8++
	return buf
}

// Int32s returns an int32 scratch slice of length n — the quantized GEMM's
// accumulator scratch. Contents are unspecified.
func (a *Arena) Int32s(n int) []int32 {
	if a.ni32 == len(a.i32s) {
		a.i32s = append(a.i32s, make([]int32, n)) //lint:allow hotalloc grow-only arena pool; steady state reuses capacity
	} else if cap(a.i32s[a.ni32]) < n {
		a.i32s[a.ni32] = make([]int32, n) //lint:allow hotalloc grow-only arena pool; steady state reuses capacity
	}
	buf := a.i32s[a.ni32][:n]
	a.ni32++
	return buf
}

// Tensor returns a tensor of the given shape backed by arena scratch.
// Unlike NewTensor the data is NOT zeroed; every kernel in the batched path
// writes all of its output elements, and callers building inputs copy over
// the full extent.
func (a *Arena) Tensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			//lint:allow panicpolicy mirrors NewTensor: a non-positive dimension is a programmer error on the inference hot path
			panic("nn: non-positive dimension in arena tensor shape")
		}
		n *= d
	}
	t := a.header()
	t.Shape = append(t.Shape[:0], shape...) //lint:allow hotalloc shape header grows once to its max rank, then reuses capacity
	t.Data = a.Floats(n)
	return t
}

// View returns a tensor header over existing data (no copy) — the batched
// Flatten uses it to reshape without touching the payload. The element
// count of shape must equal len(data).
func (a *Arena) View(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		//lint:allow panicpolicy mirrors NewTensor: a shape/payload mismatch is a programmer error on the inference hot path
		panic("nn: arena view shape does not match data length")
	}
	t := a.header()
	t.Shape = append(t.Shape[:0], shape...) //lint:allow hotalloc shape header grows once to its max rank, then reuses capacity
	t.Data = data
	return t
}

// zeroFloats clears s (the compiler lowers the range-clear to memclr).
// Arena buffers are handed out dirty, so every batched accumulation target
// clears explicitly before its += loop.
func zeroFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// header hands out a recycled tensor header.
func (a *Arena) header() *Tensor {
	if a.nten == len(a.tensors) {
		a.tensors = append(a.tensors, &Tensor{}) //lint:allow hotalloc grow-only header pool; steady state reuses capacity
	}
	t := a.tensors[a.nten]
	a.nten++
	return t
}
