package nn

// The INT8 kernel tier registry: an enumerable view of every dual-row
// dot-product implementation compiled into this binary and usable on this
// host. nnbench drives it to emit one micro-benchmark per tier (so a perf
// regression in a single tier is visible even when dispatch would hide it
// behind a faster one), and the dispatch-override tests walk it to prove
// tier selection can never change results.

// A QdotTier is one dual-row int8 kernel implementation. Asm tiers require
// k >= 16 and k % 16 == 0 — the same domain the dispatcher guarantees them
// (the engine pads every weight and im2col row to padTo16); callers of the
// registry must respect it.
type QdotTier struct {
	Name string
	// Qdot2 computes out0[j] = dot(a0, b row j) and out1[j] = dot(a1, b
	// row j) for j < n, rows of length k.
	Qdot2 func(out0, out1 []int32, a0, a1, b []int8, n, k int)
}

// QdotTiers lists the tiers available on this host, the generic reference
// first — every later entry must be bit-identical to it on every input
// (the cross-tier equivalence tests pin exactly that).
func QdotTiers() []QdotTier {
	ref := QdotTier{Name: "generic", Qdot2: func(out0, out1 []int32, a0, a1, b []int8, n, k int) {
		qdotRowRef(out0, a0, b, n, k)
		qdotRowRef(out1, a1, b, n, k)
	}}
	return append([]QdotTier{ref}, archQdotTiers()...)
}
