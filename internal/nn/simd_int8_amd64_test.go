package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Cross-tier bit-identity for the INT8 row-dot kernels: qdotRowSSE2 and
// qdotRowAVX2 must reproduce qdotRowRef's int32 wraparound bits on every
// tail length — the engine's only platform-varying stage, so this test IS
// the SSE2 == AVX2 == generic guarantee on amd64 (the generic tier simply
// calls qdotRowRef). Both kernels are exercised on every k, including below
// the dispatch thresholds, so tier selection can never change results.
func TestQdotRowTiersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func(name string, kern func(out []int32, a, b []int8, n, k int), a, b []int8, n, k int, want []int32) {
		t.Helper()
		got := make([]int32, n)
		kern(got, a, b, n, k)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s n=%d k=%d row %d: %d != ref %d", name, n, k, j, got[j], want[j])
			}
		}
	}
	for k := 0; k <= 70; k++ {
		for _, n := range []int{1, 3, 7} {
			a := randInt8(rng, k)
			b := randInt8(rng, n*k)
			for p := 0; p < k; p++ { // ±127 extremes in row 0
				if p%2 == 0 {
					b[p] = 127
				} else {
					b[p] = -127
				}
			}
			want := make([]int32, n)
			qdotRowRef(want, a, b, n, k)
			check("qdotRowSSE2", qdotRowSSE2, a, b, n, k, want)
			if hasAVX2 {
				check("qdotRowAVX2", qdotRowAVX2, a, b, n, k, want)
			}
		}
	}
	// Random-shape sweep over both kernels with identical operands.
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(10)
		k := rng.Intn(300)
		a := randInt8(rng, k)
		b := randInt8(rng, n*k)
		want := make([]int32, n)
		qdotRowRef(want, a, b, n, k)
		check("qdotRowSSE2", qdotRowSSE2, a, b, n, k, want)
		if hasAVX2 {
			check("qdotRowAVX2", qdotRowAVX2, a, b, n, k, want)
		}
	}
}

// TestRequantizeRowAVX512BitIdentical pins the AVX-512 requantize kernel
// against the scalar loop on its whole domain: 8-lane-multiple rows, shifts
// across (0, 62), both clamp bounds, and accumulators spanning the full
// int32 range so the bias add wraps exactly like Go's int32 arithmetic.
func TestRequantizeRowAVX512BitIdentical(t *testing.T) {
	if !hasAVX512 {
		t.Skip("no AVX-512 support on this host")
	}
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 400; iter++ {
		n := 8 * (1 + rng.Intn(12))
		acc := make([]int32, n)
		for j := range acc {
			acc[j] = int32(rng.Uint32()) // full wraparound range
		}
		bias := int32(rng.Uint32())
		m := int32(1<<30 + rng.Intn(1<<30))
		shift := 1 + rng.Intn(61)
		for _, lo := range []int8{-127, 0} {
			want := make([]int8, n)
			got := make([]int8, n)
			requantizeRowScalar(want, acc, bias, m, shift, lo)
			requantizeRowAVX512(got, acc, bias, m, shift, lo)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("requantizeRowAVX512(n=%d bias=%d m=%d shift=%d lo=%d)[%d]: %d != scalar %d",
						n, bias, m, shift, lo, j, got[j], want[j])
				}
			}
		}
	}
}

// TestDispatchFeatureOverrideBitIdentical force-disables the CPUID feature
// flags tier by tier — VNNI off, then AVX-512 off, then AVX2 off, leaving
// the SSE2 + scalar floor — and replays both the raw dispatchers and a full
// quantized-network forward under every configuration. The outputs must be
// bit-identical to the native-flag run: tier selection is a pure performance
// decision and can never change results. Flags are only ever force-DISABLED
// (forcing one on would execute instructions the host may lack), and the
// natural probe must already satisfy the implication chain
// VNNI => AVX-512 => AVX2.
func TestDispatchFeatureOverrideBitIdentical(t *testing.T) {
	if hasVNNI && !hasAVX512 {
		t.Fatal("CPUID probe inconsistency: hasVNNI set without hasAVX512")
	}
	if hasAVX512 && !hasAVX2 {
		t.Fatal("CPUID probe inconsistency: hasAVX512 set without hasAVX2")
	}
	saveAVX2, saveVNNI, saveAVX512 := hasAVX2, hasVNNI, hasAVX512
	defer func() { hasAVX2, hasVNNI, hasAVX512 = saveAVX2, saveVNNI, saveAVX512 }()

	// A quantized network end to end: flags steer qdot2SIMD inside qgemmNT
	// and requantizeRow inside runConv/runDense, so the forward output is the
	// integration-level witness that dispatch cannot leak into results.
	rng := rand.New(rand.NewSource(31))
	net := BuildCNN("dispatch-cnn", []int{1, 14, 14}, 8, 16, 64, 10, rng)
	qw := QuantizeWeights(net)
	if err := qw.ApplyTo(net); err != nil {
		t.Fatal(err)
	}
	calib := NewTensor(8, 1, 14, 14)
	for i := range calib.Data {
		calib.Data[i] = rng.NormFloat64()
	}
	qn, err := NewQuantizedNetwork(net, qw, calib)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 7
	inData := make([]float64, batch*14*14)
	for i := range inData {
		inData[i] = rng.NormFloat64()
	}
	forward := func() []float64 {
		arena := NewArena()
		in := arena.Tensor(batch, 1, 14, 14)
		copy(in.Data, inData)
		out := qn.ForwardBatch(in, arena)
		return append([]float64(nil), out.Data...)
	}

	// Kernel-level witness on the asm fast-path domain, plus a requantize row
	// long enough to cross the AVX-512 dispatch threshold.
	a0, a1 := randInt8(rng, 128), randInt8(rng, 128)
	bmat := randInt8(rng, 9*128)
	acc := make([]int32, 512)
	for j := range acc {
		acc[j] = int32(rng.Uint32())
	}
	kernels := func() ([]int32, []int8) {
		d0, d1 := make([]int32, 9), make([]int32, 9)
		qdot2SIMD(d0, d1, a0, a1, bmat, 9, 128)
		rq := make([]int8, len(acc))
		requantizeRow(rq, acc, 12345, 1<<30+77, 31, -127)
		return append(d0, d1...), rq
	}

	wantOut := forward()
	wantDots, wantRq := kernels()
	steps := []struct {
		name    string
		disable func()
	}{
		{"native", func() {}},
		{"no-vnni", func() { hasVNNI = false }},
		{"no-avx512", func() { hasAVX512 = false }},
		{"no-avx2 (sse2+scalar floor)", func() { hasAVX2 = false }},
	}
	for _, step := range steps {
		step.disable()
		gotDots, gotRq := kernels()
		for j := range wantDots {
			if gotDots[j] != wantDots[j] {
				t.Fatalf("%s: qdot2SIMD[%d] = %d, native %d", step.name, j, gotDots[j], wantDots[j])
			}
		}
		for j := range wantRq {
			if gotRq[j] != wantRq[j] {
				t.Fatalf("%s: requantizeRow[%d] = %d, native %d", step.name, j, gotRq[j], wantRq[j])
			}
		}
		gotOut := forward()
		for j := range wantOut {
			if math.Float64bits(gotOut[j]) != math.Float64bits(wantOut[j]) {
				t.Fatalf("%s: ForwardBatch output %d = %v, native %v", step.name, j, gotOut[j], wantOut[j])
			}
		}
	}
}

// qgemm2Tiers lists every batch-tiled dual-row asm kernel available on this
// host, widest last. The SSE2 tier is unconditionally present; AVX2 and
// VNNI join when the CPU+OS support them (on a VNNI host all three run).
func qgemm2Tiers() []struct {
	name string
	kern func(out0, out1 []int32, a0, a1, b []int8, n, k int)
} {
	tiers := []struct {
		name string
		kern func(out0, out1 []int32, a0, a1, b []int8, n, k int)
	}{{"qgemm2SSE2", qgemm2SSE2}}
	if hasAVX2 {
		tiers = append(tiers, struct {
			name string
			kern func(out0, out1 []int32, a0, a1, b []int8, n, k int)
		}{"qgemm2AVX2", qgemm2AVX2})
	}
	if hasVNNI {
		tiers = append(tiers, struct {
			name string
			kern func(out0, out1 []int32, a0, a1, b []int8, n, k int)
		}{"qgemm2VNNI", qgemm2VNNI})
	}
	return tiers
}

// TestQdot2TiersBitIdentical pins every batch-tiled dual-row asm kernel —
// qgemm2SSE2, qgemm2AVX2, and qgemm2VNNI where available — against the
// scalar reference on their vector-width-multiple domain (the dispatcher
// routes everything else to the single-row kernels, covered above). Every
// available tier runs regardless of which one dispatch would pick, so tier
// selection can never change results. n spans below, at, and across the 4-
// column tile boundary so both the quad loop and the column tail are hit;
// the ±127 lanes stress the VNNI compensation with extreme row sums.
func TestQdot2TiersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	check := func(name string, kern func(out0, out1 []int32, a0, a1, b []int8, n, k int), a0, a1, b []int8, n, k int, want0, want1 []int32) {
		t.Helper()
		got0, got1 := make([]int32, n), make([]int32, n)
		kern(got0, got1, a0, a1, b, n, k)
		for j := 0; j < n; j++ {
			if got0[j] != want0[j] || got1[j] != want1[j] {
				t.Fatalf("%s n=%d k=%d row %d: (%d, %d) != ref (%d, %d)", name, n, k, j, got0[j], got1[j], want0[j], want1[j])
			}
		}
	}
	for _, k := range []int{16, 32, 48, 64, 160, 400} {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 11} {
			a0 := randInt8(rng, k)
			a1 := randInt8(rng, k)
			b := randInt8(rng, n*k)
			for p := 0; p < k; p++ { // ±127 extremes in row 0 of b
				if p%2 == 0 {
					b[p] = 127
				} else {
					b[p] = -127
				}
			}
			for p := 0; p < k; p++ { // all-(-128) a1: worst-case VNNI comp
				a1[p] = -128
			}
			want0, want1 := make([]int32, n), make([]int32, n)
			qdotRowRef(want0, a0, b, n, k)
			qdotRowRef(want1, a1, b, n, k)
			for _, tier := range qgemm2Tiers() {
				check(tier.name, tier.kern, a0, a1, b, n, k, want0, want1)
			}
		}
	}
	// Random fuzz over the same domain with fully random operands.
	for iter := 0; iter < 150; iter++ {
		k := 16 * (1 + rng.Intn(25))
		n := 1 + rng.Intn(13)
		a0 := randInt8(rng, k)
		a1 := randInt8(rng, k)
		b := randInt8(rng, n*k)
		want0, want1 := make([]int32, n), make([]int32, n)
		qdotRowRef(want0, a0, b, n, k)
		qdotRowRef(want1, a1, b, n, k)
		for _, tier := range qgemm2Tiers() {
			check(tier.name, tier.kern, a0, a1, b, n, k, want0, want1)
		}
	}
}
