package nn

import (
	"math/rand"
	"testing"
)

// Cross-tier bit-identity for the INT8 row-dot kernels: qdotRowSSE2 and
// qdotRowAVX2 must reproduce qdotRowRef's int32 wraparound bits on every
// tail length — the engine's only platform-varying stage, so this test IS
// the SSE2 == AVX2 == generic guarantee on amd64 (the generic tier simply
// calls qdotRowRef). Both kernels are exercised on every k, including below
// the dispatch thresholds, so tier selection can never change results.
func TestQdotRowTiersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func(name string, kern func(out []int32, a, b []int8, n, k int), a, b []int8, n, k int, want []int32) {
		t.Helper()
		got := make([]int32, n)
		kern(got, a, b, n, k)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s n=%d k=%d row %d: %d != ref %d", name, n, k, j, got[j], want[j])
			}
		}
	}
	for k := 0; k <= 70; k++ {
		for _, n := range []int{1, 3, 7} {
			a := randInt8(rng, k)
			b := randInt8(rng, n*k)
			for p := 0; p < k; p++ { // ±127 extremes in row 0
				if p%2 == 0 {
					b[p] = 127
				} else {
					b[p] = -127
				}
			}
			want := make([]int32, n)
			qdotRowRef(want, a, b, n, k)
			check("qdotRowSSE2", qdotRowSSE2, a, b, n, k, want)
			if hasAVX2 {
				check("qdotRowAVX2", qdotRowAVX2, a, b, n, k, want)
			}
		}
	}
	// Random-shape sweep over both kernels with identical operands.
	for iter := 0; iter < 200; iter++ {
		n := 1 + rng.Intn(10)
		k := rng.Intn(300)
		a := randInt8(rng, k)
		b := randInt8(rng, n*k)
		want := make([]int32, n)
		qdotRowRef(want, a, b, n, k)
		check("qdotRowSSE2", qdotRowSSE2, a, b, n, k, want)
		if hasAVX2 {
			check("qdotRowAVX2", qdotRowAVX2, a, b, n, k, want)
		}
	}
}

// TestQdot2TiersBitIdentical pins both dual-row asm kernels — qdot2SSE2 and
// qdot2AVX2 — against the scalar reference on their vector-width-multiple
// domain (the dispatcher routes everything else to the single-row kernels,
// covered above). Both tiers run regardless of which one dispatch would
// pick, so tier selection can never change results.
func TestQdot2TiersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	check := func(name string, kern func(out0, out1 []int32, a0, a1, b []int8, n, k int), a0, a1, b []int8, n, k int, want0, want1 []int32) {
		t.Helper()
		got0, got1 := make([]int32, n), make([]int32, n)
		kern(got0, got1, a0, a1, b, n, k)
		for j := 0; j < n; j++ {
			if got0[j] != want0[j] || got1[j] != want1[j] {
				t.Fatalf("%s n=%d k=%d row %d: (%d, %d) != ref (%d, %d)", name, n, k, j, got0[j], got1[j], want0[j], want1[j])
			}
		}
	}
	for _, k := range []int{16, 32, 48, 64, 160, 400} {
		for _, n := range []int{1, 2, 7} {
			a0 := randInt8(rng, k)
			a1 := randInt8(rng, k)
			b := randInt8(rng, n*k)
			for p := 0; p < k; p++ { // ±127 extremes in row 0 of b
				if p%2 == 0 {
					b[p] = 127
				} else {
					b[p] = -127
				}
			}
			want0, want1 := make([]int32, n), make([]int32, n)
			qdotRowRef(want0, a0, b, n, k)
			qdotRowRef(want1, a1, b, n, k)
			check("qdot2SSE2", qdot2SSE2, a0, a1, b, n, k, want0, want1)
			if hasAVX2 {
				check("qdot2AVX2", qdot2AVX2, a0, a1, b, n, k, want0, want1)
			}
		}
	}
}
