package nn

import (
	"fmt"
	"math"
)

// Network is a feed-forward sequence of layers with a classification head.
type Network struct {
	Name   string
	Layers []Layer

	inShape []int
}

// NewNetwork assembles a network over the given input shape. The input shape
// is recorded so parameter/FLOP accounting can be computed statically.
func NewNetwork(name string, inShape []int, layers ...Layer) *Network {
	s := make([]int, len(inShape))
	copy(s, inShape)
	return &Network{Name: name, Layers: layers, inShape: s}
}

// InShape returns the expected input shape.
func (n *Network) InShape() []int {
	s := make([]int, len(n.inShape))
	copy(s, n.inShape)
	return s
}

// Forward runs all layers on one sample and returns the logits.
func (n *Network) Forward(in *Tensor) *Tensor {
	out := in
	for _, l := range n.Layers {
		out = l.Forward(out)
	}
	return out
}

// Predict returns the argmax class for one sample.
func (n *Network) Predict(in *Tensor) int {
	return n.Forward(in).MaxIndex()
}

// Backward propagates a logits-gradient through all layers.
func (n *Network) Backward(gradLogits *Tensor) {
	g := gradLogits
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].Backward(g)
	}
}

// ZeroGrads clears all parameter-gradient accumulators.
func (n *Network) ZeroGrads() {
	for _, l := range n.Layers {
		for _, g := range l.Grads() {
			g.Zero()
		}
	}
}

// Step applies one SGD update with the given learning rate and then clears
// the gradients. scale divides accumulated gradients (minibatch size).
func (n *Network) Step(lr float64, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	for _, l := range n.Layers {
		params, grads := l.Params(), l.Grads()
		for i, p := range params {
			stepSIMD(lr, scale, grads[i].Data, p.Data)
		}
	}
	n.ZeroGrads()
}

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int64 {
	total := int64(0)
	for _, l := range n.Layers {
		for _, p := range l.Params() {
			total += int64(p.Len())
		}
	}
	return total
}

// SizeBytes returns the serialized model size assuming float32 storage,
// which feeds the paper's model size W_n.
func (n *Network) SizeBytes() int64 { return n.NumParams() * 4 }

// ForwardFLOPs estimates multiply-accumulate operations of one inference.
func (n *Network) ForwardFLOPs() int64 {
	shape := n.InShape()
	total := int64(0)
	for _, l := range n.Layers {
		total += l.FLOPs(shape)
		shape = l.OutShape(shape)
	}
	return total
}

// OutDim returns the network's output dimensionality (number of classes).
func (n *Network) OutDim() (int, error) {
	shape := n.InShape()
	for _, l := range n.Layers {
		shape = l.OutShape(shape)
	}
	if len(shape) != 1 {
		return 0, fmt.Errorf("nn: network %q output shape %v is not a vector", n.Name, shape)
	}
	return shape[0], nil
}

// Softmax writes the softmax of logits into a new tensor, using the
// max-subtraction trick for numerical stability.
func Softmax(logits *Tensor) *Tensor {
	out := NewTensor(logits.Shape...)
	maxV := math.Inf(-1)
	for _, v := range logits.Data {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range logits.Data {
		e := math.Exp(v - maxV)
		out.Data[i] = e
		sum += e
	}
	for i := range out.Data {
		out.Data[i] /= sum
	}
	return out
}

// CrossEntropyLoss returns the cross-entropy loss for one sample together
// with the gradient w.r.t. the logits.
func CrossEntropyLoss(logits *Tensor, label int) (float64, *Tensor) {
	p := Softmax(logits)
	const eps = 1e-12
	loss := -math.Log(p.Data[label] + eps)
	grad := p // softmax - onehot
	grad.Data[label] -= 1
	return loss, grad
}

// SquaredLoss returns the paper's squared inference loss for one sample,
// computed between the softmax output and the one-hot label:
// l = sum_k (p_k - y_k)^2, together with the gradient w.r.t. the logits.
func SquaredLoss(logits *Tensor, label int) (float64, *Tensor) {
	p := Softmax(logits)
	loss := 0.0
	diff := NewTensor(logits.Shape...)
	for k, pk := range p.Data {
		y := 0.0
		if k == label {
			y = 1
		}
		d := pk - y
		diff.Data[k] = d
		loss += d * d
	}
	// d loss / d logit_j = sum_k 2*(p_k - y_k) * p_k * (delta_kj - p_j)
	grad := NewTensor(logits.Shape...)
	dot := 0.0
	for k := range p.Data {
		dot += 2 * diff.Data[k] * p.Data[k]
	}
	for j := range p.Data {
		grad.Data[j] = p.Data[j] * (2*diff.Data[j] - dot)
	}
	return loss, grad
}
