// Package nn is a small from-scratch neural-network substrate (pure Go,
// stdlib only) used to stand in for the paper's MNIST/CIFAR-10 model zoo.
//
// It provides dense and 2-D convolutional layers, max pooling, ReLU,
// softmax/cross-entropy and squared-loss heads, and a minibatch SGD trainer.
// Networks report their parameter counts and per-inference FLOPs, from which
// the model-zoo package derives the paper's model size W_n, per-sample
// inference energy, and computation latency.
//
// The implementation favors clarity and determinism over raw speed: all
// weight initialization flows from an explicit RNG so that a simulation seed
// fully reproduces the trained models.
package nn
