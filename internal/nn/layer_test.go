package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad estimates d(loss)/d(x_i) by central differences where loss
// is computed by lossOf on a fresh forward pass.
func numericalGrad(x []float64, i int, lossOf func() float64) float64 {
	const h = 1e-6
	orig := x[i]
	x[i] = orig + h
	up := lossOf()
	x[i] = orig - h
	down := lossOf()
	x[i] = orig
	return (up - down) / (2 * h)
}

// checkLayerGradients verifies Backward against numerical differentiation of
// a quadratic loss 0.5*||out||^2 (so gradOut = out).
func checkLayerGradients(t *testing.T, l Layer, in *Tensor, tol float64) {
	t.Helper()
	lossOf := func() float64 {
		out := l.Forward(in)
		s := 0.0
		for _, v := range out.Data {
			s += 0.5 * v * v
		}
		return s
	}

	// Analytic input gradient.
	out := l.Forward(in)
	for _, g := range l.Grads() {
		g.Zero()
	}
	gradIn := l.Backward(out.Clone())

	for i := range in.Data {
		want := numericalGrad(in.Data, i, lossOf)
		if math.Abs(gradIn.Data[i]-want) > tol {
			t.Fatalf("input grad[%d] = %v, want %v", i, gradIn.Data[i], want)
		}
	}

	// Analytic parameter gradients. Re-run forward/backward after the
	// numeric probes to restore state.
	for _, g := range l.Grads() {
		g.Zero()
	}
	out = l.Forward(in)
	l.Backward(out.Clone())
	params, grads := l.Params(), l.Grads()
	for pi, p := range params {
		for i := range p.Data {
			want := numericalGrad(p.Data, i, lossOf)
			if math.Abs(grads[pi].Data[i]-want) > tol {
				t.Fatalf("param %d grad[%d] = %v, want %v", pi, i, grads[pi].Data[i], want)
			}
		}
	}
}

func randomTensor(rng *rand.Rand, shape ...int) *Tensor {
	ts := NewTensor(shape...)
	for i := range ts.Data {
		ts.Data[i] = rng.NormFloat64()
	}
	return ts
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewDense(5, 3, rng)
	checkLayerGradients(t, l, randomTensor(rng, 5), 1e-5)
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewConv2D(2, 3, 3, rng)
	checkLayerGradients(t, l, randomTensor(rng, 2, 6, 6), 1e-4)
}

func TestConv2DPointwiseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewConv2D(3, 2, 1, rng)
	checkLayerGradients(t, l, randomTensor(rng, 3, 4, 4), 1e-5)
}

func TestDenseForwardKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewDense(2, 1, rng)
	// Overwrite weights deterministically: out = 2*x0 + 3*x1 + 1.
	l.w.Data[0], l.w.Data[1] = 2, 3
	l.b.Data[0] = 1
	in, err := FromSlice([]float64{4, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := l.Forward(in)
	if got := out.Data[0]; got != 24 {
		t.Errorf("Dense forward = %v, want 24", got)
	}
}

func TestConv2DForwardKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewConv2D(1, 1, 2, rng)
	// Identity-ish kernel summing the 2x2 patch.
	for i := range l.w.Data {
		l.w.Data[i] = 1
	}
	l.b.Data[0] = 0
	in, err := FromSlice([]float64{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}, 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := l.Forward(in)
	want := []float64{12, 16, 24, 28}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("conv out[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
	if out.Shape[1] != 2 || out.Shape[2] != 2 {
		t.Errorf("out shape = %v, want [1,2,2]", out.Shape)
	}
}

func TestMaxPoolForwardBackward(t *testing.T) {
	p := NewMaxPool2D()
	in, err := FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 1, 1,
		1, 1, 1, 2,
	}, 1, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	out := p.Forward(in)
	want := []float64{4, 8, 9, 2}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("pool out[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
	g, err := FromSlice([]float64{1, 2, 3, 4}, 1, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	gin := p.Backward(g)
	// Gradient routes to the argmax positions only.
	if gin.At3(0, 1, 1) != 1 || gin.At3(0, 1, 3) != 2 || gin.At3(0, 2, 0) != 3 || gin.At3(0, 3, 3) != 4 {
		t.Errorf("pool backward misrouted: %v", gin.Data)
	}
	sum := 0.0
	for _, v := range gin.Data {
		sum += v
	}
	if sum != 10 {
		t.Errorf("pool backward total = %v, want 10", sum)
	}
}

func TestMaxPoolDropsOddEdges(t *testing.T) {
	p := NewMaxPool2D()
	in := NewTensor(1, 5, 5)
	out := p.Forward(in)
	if out.Shape[1] != 2 || out.Shape[2] != 2 {
		t.Errorf("odd input should floor: got %v", out.Shape)
	}
}

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	in, err := FromSlice([]float64{-1, 0, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Forward(in)
	if out.Data[0] != 0 || out.Data[1] != 0 || out.Data[2] != 2 {
		t.Errorf("relu forward = %v", out.Data)
	}
	g, err := FromSlice([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	gin := r.Backward(g)
	if gin.Data[0] != 0 || gin.Data[1] != 0 || gin.Data[2] != 5 {
		t.Errorf("relu backward = %v", gin.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten()
	in := randomTensor(rand.New(rand.NewSource(6)), 2, 3, 4)
	out := f.Forward(in)
	if len(out.Shape) != 1 || out.Shape[0] != 24 {
		t.Errorf("flatten shape = %v", out.Shape)
	}
	back := f.Backward(out)
	if !SameShape(back, in) {
		t.Errorf("backward shape = %v, want %v", back.Shape, in.Shape)
	}
}

func TestOutShapeChain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conv := NewConv2D(1, 8, 3, rng)
	pool := NewMaxPool2D()
	shape := []int{1, 28, 28}
	shape = conv.OutShape(shape) // [8, 26, 26]
	if shape[0] != 8 || shape[1] != 26 || shape[2] != 26 {
		t.Fatalf("conv OutShape = %v", shape)
	}
	shape = pool.OutShape(shape) // [8, 13, 13]
	if shape[0] != 8 || shape[1] != 13 || shape[2] != 13 {
		t.Fatalf("pool OutShape = %v", shape)
	}
}

func TestFLOPsPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	layers := []struct {
		name string
		l    Layer
		in   []int
	}{
		{"dense", NewDense(10, 5, rng), []int{10}},
		{"conv", NewConv2D(1, 4, 3, rng), []int{1, 8, 8}},
		{"pool", NewMaxPool2D(), []int{4, 8, 8}},
		{"relu", NewReLU(), []int{16}},
	}
	for _, tt := range layers {
		if f := tt.l.FLOPs(tt.in); f <= 0 {
			t.Errorf("%s FLOPs = %d", tt.name, f)
		}
	}
}
