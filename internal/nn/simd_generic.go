//go:build !amd64

package nn

// Scalar fallbacks for the SIMD kernels (see simd_amd64.go). These are the
// reference semantics the assembly reproduces bit for bit; simd_test.go runs
// on every architecture, pinning whichever implementation is active against
// the same scalar loops.

func axpySIMD(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

func reluFwdSIMD(dst, src []float64) {
	for i := range dst {
		if v := src[i]; v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

func reluBwdSIMD(dst, grad, in []float64) {
	for i := range dst {
		if in[i] > 0 {
			dst[i] = grad[i]
		} else {
			dst[i] = 0
		}
	}
}

func stepSIMD(lr, scale float64, g, p []float64) {
	for j := range p {
		p[j] -= lr * g[j] / scale
	}
}

func transposeSIMD(dst, src []float64, rows, cols int) {
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dst[c*rows+r] = src[r*cols+c]
		}
	}
}

func conv3x3BwdSIMD(gv float64, wr, cr, gw, gi []float64, w, hw, inC int) {
	for ic := 0; ic < inC; ic++ {
		c9 := cr[ic*9 : ic*9+9]
		g9 := gw[ic*9 : ic*9+9]
		for j, cv := range c9 {
			g9[j] += gv * cv
		}
		w9 := wr[ic*9 : ic*9+9]
		for r := 0; r < 3; r++ {
			row := gi[ic*hw+r*w : ic*hw+r*w+3]
			row[0] += gv * w9[r*3]
			row[1] += gv * w9[r*3+1]
			row[2] += gv * w9[r*3+2]
		}
	}
}

func pool2x2SIMD(dst, row0, row1 []float64) {
	for x := range dst {
		best := row0[2*x]
		if v := row0[2*x+1]; v > best {
			best = v
		}
		if v := row1[2*x]; v > best {
			best = v
		}
		if v := row1[2*x+1]; v > best {
			best = v
		}
		dst[x] = best
	}
}

func gemmNNRowI(orow []float64, bi float64, ar, bt []float64, n, ld int) {
	var init [8]float64
	for l := range init {
		init[l] = bi
	}
	j := 0
	for ; j+8 <= n; j += 8 {
		nnDot8SIMD(orow[j:j+8], init[:], ar, bt[j:], ld)
	}
	for ; j < n; j++ {
		s := bi
		for c, av := range ar {
			s += av * bt[c*ld+j]
		}
		orow[j] = s
	}
}

func gemmNNRowJ(orow, bias, ar, bt []float64, n, ld int) {
	j := 0
	for ; j+8 <= n; j += 8 {
		nnDot8SIMD(orow[j:j+8], bias[j:j+8], ar, bt[j:], ld)
	}
	for ; j < n; j++ {
		s := bias[j]
		for c, av := range ar {
			s += av * bt[c*ld+j]
		}
		orow[j] = s
	}
}

func gemmNNAccRow(orow, ar, bt []float64, n, ld int) {
	j := 0
	for ; j+8 <= n; j += 8 {
		nnDot8SIMD(orow[j:j+8], orow[j:j+8], ar, bt[j:], ld)
	}
	for ; j < n; j++ {
		s := orow[j]
		for c, av := range ar {
			s += av * bt[c*ld+j]
		}
		orow[j] = s
	}
}

// The 4x8 register tile is an amd64-only specialization; other
// architectures fall through to the row drivers.
func gemmNNQuadI(out, a, bt, bias []float64, m, n, k, ld int) int { return 0 }

func gemmNNQuadJ(out, a, bt, bias []float64, m, n, k, ld int) int { return 0 }

func gemmNNQuadAcc(out, a, bt []float64, m, n, k, ld int) int { return 0 }

func nnDot8SIMD(out, init, a, bt []float64, n int) {
	s0, s1, s2, s3 := init[0], init[1], init[2], init[3]
	s4, s5, s6, s7 := init[4], init[5], init[6], init[7]
	for c, av := range a {
		row := bt[c*n : c*n+8]
		s0 += av * row[0]
		s1 += av * row[1]
		s2 += av * row[2]
		s3 += av * row[3]
		s4 += av * row[4]
		s5 += av * row[5]
		s6 += av * row[6]
		s7 += av * row[7]
	}
	out[0], out[1], out[2], out[3] = s0, s1, s2, s3
	out[4], out[5], out[6], out[7] = s4, s5, s6, s7
}
