package nn

import (
	"fmt"
	"math"
)

// QuantizedTensor is one parameter tensor stored once in its int8 form:
// values q with a single symmetric per-tensor scale, so the dequantized
// value is q*Scale. Scale is maxAbs/127 in float64 — the exact scale
// QuantizeInPlace uses — so applying a QuantizedTensor back onto a float
// network replays the fake-quant oracle bit for bit. A Scale of zero marks
// an all-zero tensor (the dequantized values are all zero, and applying it
// leaves the target untouched, matching QuantizeInPlace's skip).
type QuantizedTensor struct {
	Scale float64
	Data  []int8
}

// QuantizedWeights holds a network's parameters in int8 form, aligned with
// the network's Params() order. This is the shared storage behind every
// "-q8" zoo arm: one int8 buffer per tensor instead of a cloned float64
// network (8 bytes/param down to ~1), with the float view materialized on
// demand via ApplyTo.
type QuantizedWeights struct {
	Tensors []QuantizedTensor
}

// quantizeSlice quantizes one float tensor symmetrically: scale = maxAbs/127
// (0 for an all-zero tensor), q = round(v/scale) clamped to [-127, 127],
// with round-half-away-from-zero (math.Round) — the committed wire format's
// exact rule (WriteQuantized).
func quantizeSlice(dst []int8, src []float64) (scale float64) {
	maxAbs := 0.0
	for _, v := range src {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	scale = maxAbs / 127
	if scale == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return 0
	}
	for i, v := range src {
		q := math.Round(v / scale)
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		dst[i] = int8(q)
	}
	return scale
}

// QuantizeWeights captures the network's parameters in int8 form without
// modifying the network.
func QuantizeWeights(net *Network) *QuantizedWeights {
	qw := &QuantizedWeights{}
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			qt := QuantizedTensor{Data: make([]int8, p.Len())}
			qt.Scale = quantizeSlice(qt.Data, p.Data)
			qw.Tensors = append(qw.Tensors, qt)
		}
	}
	return qw
}

// ApplyTo writes the dequantized values q*Scale into an identically shaped
// network's parameters — bit-identical to QuantizeInPlace on the float
// weights these were captured from (q is integral in [-127, 127], so
// float64(int8) reproduces the float q exactly; zero-scale tensors are
// skipped, leaving the target's values, which QuantizeInPlace also leaves).
func (qw *QuantizedWeights) ApplyTo(net *Network) error {
	i := 0
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			if i >= len(qw.Tensors) {
				return fmt.Errorf("nn: quantized weights have %d tensors, network %q wants more", len(qw.Tensors), net.Name)
			}
			qt := qw.Tensors[i]
			if len(qt.Data) != p.Len() {
				return fmt.Errorf("nn: quantized tensor %d has %d values, network %q expects %d", i, len(qt.Data), net.Name, p.Len())
			}
			if qt.Scale != 0 {
				for j, q := range qt.Data {
					p.Data[j] = float64(q) * qt.Scale
				}
			}
			i++
		}
	}
	if i != len(qw.Tensors) {
		return fmt.Errorf("nn: quantized weights have %d tensors, network %q has %d", len(qw.Tensors), net.Name, i)
	}
	return nil
}

// ParamBytes returns the resident size of the int8 representation: one byte
// per value plus one float64 scale per tensor.
func (qw *QuantizedWeights) ParamBytes() int64 {
	size := int64(0)
	for _, t := range qw.Tensors {
		size += int64(len(t.Data)) + 8
	}
	return size
}

// WireSize returns the serialized size of the CEQ8 wire format for these
// tensors — identical to QuantizedWireSize of the source network.
func (qw *QuantizedWeights) WireSize() int64 {
	size := int64(12) // magic + version + count
	for _, t := range qw.Tensors {
		size += 4 + 4 + int64(len(t.Data)) // scale + len + int8 data
	}
	return size
}
