package nn

import (
	"fmt"
	"math/rand"
)

// Dropout is inverted dropout: during training each activation is zeroed
// with probability p and survivors are scaled by 1/(1-p); during inference
// it is the identity. Training mode is toggled through Network.SetTraining
// (Train/TrainWith flip it automatically).
type Dropout struct {
	p   float64
	rng *rand.Rand

	training bool
	mask     []float64
	// maskBatch is the batched training mask: batchFeat scale factors per
	// sample, pre-drawn sample-major by Network.ForwardBatchTrain so the RNG
	// consumes draws in the per-sample loop's exact (sample, layer) order.
	// It points into the training arena (valid until its Reset); nil when
	// the last batched forward was an inactive identity.
	maskBatch []float64
	batchFeat int
}

var _ Layer = (*Dropout)(nil)

// NewDropout creates a dropout layer with drop probability p in [0, 1).
func NewDropout(p float64, rng *rand.Rand) (*Dropout, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("nn: dropout probability must be in [0,1), got %g", p)
	}
	if rng == nil {
		return nil, fmt.Errorf("nn: dropout needs an RNG")
	}
	return &Dropout{p: p, rng: rng}, nil
}

// SetTraining toggles training mode.
func (d *Dropout) SetTraining(on bool) { d.training = on }

// Forward implements Layer.
func (d *Dropout) Forward(in *Tensor) *Tensor {
	if !d.training || d.p == 0 {
		d.mask = nil
		return in
	}
	out := NewTensor(in.Shape...)
	if cap(d.mask) < in.Len() {
		d.mask = make([]float64, in.Len())
	}
	d.mask = d.mask[:in.Len()]
	keep := 1 - d.p
	inv := 1 / keep
	for i, v := range in.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = inv
			out.Data[i] = v * inv
		} else {
			d.mask[i] = 0
		}
	}
	return out
}

// ForwardBatch implements Layer. The batched path is inference-only, where
// dropout is the identity; a training-mode call would need per-sample RNG
// draws that the batched path deliberately does not support.
func (d *Dropout) ForwardBatch(in *Tensor, _ *Arena) *Tensor {
	if d.training && d.p != 0 {
		//lint:allow panicpolicy batched inference path: training-mode dropout here is a programmer error and the interface has no error channel
		panic("nn: Dropout.ForwardBatch called in training mode")
	}
	return in
}

// active reports whether dropout currently transforms activations.
func (d *Dropout) active() bool { return d.training && d.p != 0 }

// allocBatchMask reserves the batched mask (batch rows of feat factors) in
// the arena ahead of the layer-major forward pass.
func (d *Dropout) allocBatchMask(batch, feat int, a *Arena) {
	d.maskBatch = a.Floats(batch * feat)
	d.batchFeat = feat
}

// drawMaskRow draws sample s's mask row, replaying Forward's per-element
// draw sequence exactly (one Float64 per activation, kept iff < keep).
func (d *Dropout) drawMaskRow(s int) {
	keep := 1 - d.p
	inv := 1 / keep
	row := d.maskBatch[s*d.batchFeat : (s+1)*d.batchFeat]
	for i := range row {
		if d.rng.Float64() < keep {
			row[i] = inv
		} else {
			row[i] = 0
		}
	}
}

// ForwardBatchTrain implements Layer: identity when inactive, otherwise it
// applies the pre-drawn batch mask — kept activations scale by 1/(1-p),
// dropped ones are written as literal zeros so the output bits match
// Forward's zero-initialized tensor (never v*0, which can produce -0).
func (d *Dropout) ForwardBatchTrain(in *Tensor, a *Arena) *Tensor {
	if !d.active() {
		d.maskBatch = nil
		return in
	}
	if d.maskBatch == nil {
		//lint:allow panicpolicy batched training path: an undrawn mask means the caller bypassed Network.ForwardBatchTrain, a programmer error with no error channel
		panic("nn: Dropout.ForwardBatchTrain without pre-drawn masks; drive training batches through Network.ForwardBatchTrain")
	}
	out := a.Tensor(in.Shape...)
	for i, v := range in.Data {
		if m := d.maskBatch[i]; m != 0 {
			out.Data[i] = v * m
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// BackwardBatch implements Layer: like Backward, the gradient is multiplied
// by the mask at every element (including zeros, so -0 products round
// identically to the per-sample path).
func (d *Dropout) BackwardBatch(gradOut *Tensor, a *Arena) *Tensor {
	if d.maskBatch == nil {
		return gradOut
	}
	gradIn := a.Tensor(gradOut.Shape...)
	for i, g := range gradOut.Data {
		gradIn.Data[i] = g * d.maskBatch[i]
	}
	return gradIn
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *Tensor) *Tensor {
	if d.mask == nil {
		return gradOut
	}
	gradIn := NewTensor(gradOut.Shape...)
	for i, m := range d.mask {
		gradIn.Data[i] = gradOut.Data[i] * m
	}
	return gradIn
}

// Params implements Layer.
func (d *Dropout) Params() []*Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int { return in }

// FLOPs implements Layer.
func (d *Dropout) FLOPs(in []int) int64 {
	n := int64(1)
	for _, dim := range in {
		n *= int64(dim)
	}
	return n
}

// modeSetter is implemented by layers that behave differently during
// training (currently Dropout).
type modeSetter interface {
	SetTraining(bool)
}

// SetTraining flips training mode on every mode-aware layer.
func (n *Network) SetTraining(on bool) {
	for _, l := range n.Layers {
		if m, ok := l.(modeSetter); ok {
			m.SetTraining(on)
		}
	}
}
