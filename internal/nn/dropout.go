package nn

import (
	"fmt"
	"math/rand"
)

// Dropout is inverted dropout: during training each activation is zeroed
// with probability p and survivors are scaled by 1/(1-p); during inference
// it is the identity. Training mode is toggled through Network.SetTraining
// (Train/TrainWith flip it automatically).
type Dropout struct {
	p   float64
	rng *rand.Rand

	training bool
	mask     []float64
}

var _ Layer = (*Dropout)(nil)

// NewDropout creates a dropout layer with drop probability p in [0, 1).
func NewDropout(p float64, rng *rand.Rand) (*Dropout, error) {
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("nn: dropout probability must be in [0,1), got %g", p)
	}
	if rng == nil {
		return nil, fmt.Errorf("nn: dropout needs an RNG")
	}
	return &Dropout{p: p, rng: rng}, nil
}

// SetTraining toggles training mode.
func (d *Dropout) SetTraining(on bool) { d.training = on }

// Forward implements Layer.
func (d *Dropout) Forward(in *Tensor) *Tensor {
	if !d.training || d.p == 0 {
		d.mask = nil
		return in
	}
	out := NewTensor(in.Shape...)
	if cap(d.mask) < in.Len() {
		d.mask = make([]float64, in.Len())
	}
	d.mask = d.mask[:in.Len()]
	keep := 1 - d.p
	inv := 1 / keep
	for i, v := range in.Data {
		if d.rng.Float64() < keep {
			d.mask[i] = inv
			out.Data[i] = v * inv
		} else {
			d.mask[i] = 0
		}
	}
	return out
}

// ForwardBatch implements Layer. The batched path is inference-only, where
// dropout is the identity; a training-mode call would need per-sample RNG
// draws that the batched path deliberately does not support.
func (d *Dropout) ForwardBatch(in *Tensor, _ *Arena) *Tensor {
	if d.training && d.p != 0 {
		//lint:allow panicpolicy batched inference path: training-mode dropout here is a programmer error and the interface has no error channel
		panic("nn: Dropout.ForwardBatch called in training mode")
	}
	return in
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *Tensor) *Tensor {
	if d.mask == nil {
		return gradOut
	}
	gradIn := NewTensor(gradOut.Shape...)
	for i, m := range d.mask {
		gradIn.Data[i] = gradOut.Data[i] * m
	}
	return gradIn
}

// Params implements Layer.
func (d *Dropout) Params() []*Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (d *Dropout) OutShape(in []int) []int { return in }

// FLOPs implements Layer.
func (d *Dropout) FLOPs(in []int) int64 {
	n := int64(1)
	for _, dim := range in {
		n *= int64(dim)
	}
	return n
}

// modeSetter is implemented by layers that behave differently during
// training (currently Dropout).
type modeSetter interface {
	SetTraining(bool)
}

// SetTraining flips training mode on every mode-aware layer.
func (n *Network) SetTraining(on bool) {
	for _, l := range n.Layers {
		if m, ok := l.(modeSetter); ok {
			m.SetTraining(on)
		}
	}
}
