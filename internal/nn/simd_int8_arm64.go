//go:build arm64

package nn

// NEON tier of the INT8 inference kernels (simd_int8_arm64.s). The contract
// is identical to the amd64 tiers: int32 wraparound accumulation is
// associative, so the vector lane regrouping reproduces qdotRowRef's bits
// exactly — SSE2 == AVX2 == VNNI == NEON == generic on every input. The
// arm64 bit-identity tests (simd_int8_arm64_test.go) pin both kernels
// against the scalar reference when run on arm64 hardware or under
// emulation; amd64 CI additionally cross-builds and vets this file so
// encoding regressions surface without an arm64 host.

// qdotRowNEON is the single-row NEON kernel: 16 int8 MACs per step via
// SMULL/SMULL2 into int16 products (exact, |p| <= 127*127) and SADALP
// pairwise widening accumulation into four int32 lanes. Requires k >= 16 and
// k % 16 == 0 — the dispatcher enforces it.
//
//go:noescape
func qdotRowNEON(out []int32, a, b []int8, n, k int)

// qdot2NEON is the dual-row NEON kernel: each 16-byte block of the b row is
// loaded once and multiplied against both a rows, mirroring the amd64
// batch-tiled kernels' b-sharing. Same k preconditions.
//
//go:noescape
func qdot2NEON(out0, out1 []int32, a0, a1, b []int8, n, k int)

// archQdotTiers lists the arm64 asm tiers: NEON is part of the ARMv8
// baseline, so it is unconditional. Same caller-respected k preconditions as
// the dispatcher.
func archQdotTiers() []QdotTier {
	return []QdotTier{{Name: "neon", Qdot2: qdot2NEON}}
}

// qdotRowSIMD dispatches the integer row-dot kernel: vector-width-multiple
// K dimensions (the engine pads every weight and im2col row to padTo16, so
// this is the hot case) run on NEON, everything else on the scalar
// reference.
func qdotRowSIMD(out []int32, a, b []int8, n, k int) {
	if k >= 16 && k%16 == 0 {
		qdotRowNEON(out, a, b, n, k)
		return
	}
	qdotRowRef(out, a, b, n, k)
}

// qdot2SIMD dispatches the dual-row kernel exactly like the amd64 version:
// the asm tier only handles vector-width multiples.
func qdot2SIMD(out0, out1 []int32, a0, a1, b []int8, n, k int) {
	if k >= 16 && k%16 == 0 {
		qdot2NEON(out0, out1, a0, a1, b, n, k)
		return
	}
	qdotRowRef(out0, a0, b, n, k)
	qdotRowRef(out1, a1, b, n, k)
}

// requantizeRow has no NEON tier yet: the scalar loop in qkernels.go is the
// semantics, and profiling on amd64 showed it only dominates once the GEMM
// itself is vectorized wider than this tier goes.
func requantizeRow(dst []int8, acc []int32, bias, m int32, shift int, lo int8) {
	requantizeRowScalar(dst, acc, bias, m, shift, lo)
}
