package nn

import (
	"fmt"
	"math"
)

// Optimizer applies one parameter update from the accumulated gradients.
// Implementations keep per-parameter state keyed by tensor identity, so an
// optimizer instance must be used with a single network.
type Optimizer interface {
	// Step updates all parameters of net from its gradient accumulators
	// (divided by scale, the minibatch size) and clears the gradients.
	Step(net *Network, scale float64)
}

// SGD is plain stochastic gradient descent.
type SGD struct {
	LR float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD creates a plain SGD optimizer.
func NewSGD(lr float64) (*SGD, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: learning rate must be positive, got %g", lr)
	}
	return &SGD{LR: lr}, nil
}

// Step implements Optimizer.
func (s *SGD) Step(net *Network, scale float64) {
	net.Step(s.LR, scale)
}

// Momentum is SGD with classical (heavy-ball) momentum.
type Momentum struct {
	LR, Beta float64

	velocity map[*Tensor][]float64
}

var _ Optimizer = (*Momentum)(nil)

// NewMomentum creates a momentum optimizer; beta in [0, 1).
func NewMomentum(lr, beta float64) (*Momentum, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: learning rate must be positive, got %g", lr)
	}
	if beta < 0 || beta >= 1 {
		return nil, fmt.Errorf("nn: momentum beta must be in [0,1), got %g", beta)
	}
	return &Momentum{LR: lr, Beta: beta, velocity: make(map[*Tensor][]float64)}, nil
}

// Step implements Optimizer.
func (m *Momentum) Step(net *Network, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	for _, l := range net.Layers {
		params, grads := l.Params(), l.Grads()
		for i, p := range params {
			v, ok := m.velocity[p]
			if !ok {
				v = make([]float64, p.Len())
				m.velocity[p] = v
			}
			g := grads[i]
			for j := range p.Data {
				v[j] = m.Beta*v[j] + g.Data[j]/scale
				p.Data[j] -= m.LR * v[j]
			}
		}
	}
	net.ZeroGrads()
}

// Adam is the Adam optimizer (Kingma & Ba 2015) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Tensor][]float64
	v map[*Tensor][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam creates an Adam optimizer with the canonical defaults for any
// zero-valued hyperparameter.
func NewAdam(lr float64) (*Adam, error) {
	if lr <= 0 {
		return nil, fmt.Errorf("nn: learning rate must be positive, got %g", lr)
	}
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*Tensor][]float64),
		v:     make(map[*Tensor][]float64),
	}, nil
}

// Step implements Optimizer.
func (a *Adam) Step(net *Network, scale float64) {
	if scale <= 0 {
		scale = 1
	}
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, l := range net.Layers {
		params, grads := l.Params(), l.Grads()
		for i, p := range params {
			mBuf, ok := a.m[p]
			if !ok {
				mBuf = make([]float64, p.Len())
				a.m[p] = mBuf
			}
			vBuf, ok := a.v[p]
			if !ok {
				vBuf = make([]float64, p.Len())
				a.v[p] = vBuf
			}
			g := grads[i]
			for j := range p.Data {
				gj := g.Data[j] / scale
				mBuf[j] = a.Beta1*mBuf[j] + (1-a.Beta1)*gj
				vBuf[j] = a.Beta2*vBuf[j] + (1-a.Beta2)*gj*gj
				mHat := mBuf[j] / bc1
				vHat := vBuf[j] / bc2
				p.Data[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
			}
		}
	}
	net.ZeroGrads()
}

// TrainWith runs minibatch training like Train but with an explicit
// optimizer instead of plain SGD. cfg.LR is ignored (the optimizer carries
// its own rate); all other fields behave as in Train. Like Train it drives
// whole minibatches through the batched GEMM path with bit-identical
// results to a per-sample loop.
func TrainWith(net *Network, samples []Sample, cfg TrainConfig, opt Optimizer, rng interface {
	Shuffle(n int, swap func(i, j int))
}) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("nn: no training samples")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 {
		return 0, fmt.Errorf("nn: invalid train config %+v", cfg)
	}
	if opt == nil {
		return 0, fmt.Errorf("nn: nil optimizer")
	}
	if cfg.Loss == 0 {
		cfg.Loss = LossCrossEntropy
	}
	return trainBatched(net, samples, cfg, rng.Shuffle,
		func(batch float64) { opt.Step(net, batch) }, nil)
}
