package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestSoftmaxProperties(t *testing.T) {
	logits, err := FromSlice([]float64{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := Softmax(logits)
	sum := 0.0
	for _, v := range p.Data {
		if v <= 0 || v >= 1 {
			t.Errorf("softmax value out of (0,1): %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %v", sum)
	}
	if !(p.Data[2] > p.Data[1] && p.Data[1] > p.Data[0]) {
		t.Errorf("softmax not order preserving: %v", p.Data)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits, err := FromSlice([]float64{1000, 1000, 999}, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := Softmax(logits)
	for _, v := range p.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", p.Data)
		}
	}
}

func TestCrossEntropyGradient(t *testing.T) {
	logits, err := FromSlice([]float64{0.5, -1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	label := 1
	_, grad := CrossEntropyLoss(logits.Clone(), label)
	// Numerical check.
	for i := range logits.Data {
		const h = 1e-6
		up := logits.Clone()
		up.Data[i] += h
		lUp, _ := CrossEntropyLoss(up, label)
		down := logits.Clone()
		down.Data[i] -= h
		lDown, _ := CrossEntropyLoss(down, label)
		want := (lUp - lDown) / (2 * h)
		if math.Abs(grad.Data[i]-want) > 1e-5 {
			t.Errorf("CE grad[%d] = %v, want %v", i, grad.Data[i], want)
		}
	}
}

func TestSquaredLossGradient(t *testing.T) {
	logits, err := FromSlice([]float64{0.3, -0.7, 1.1, 0.2}, 4)
	if err != nil {
		t.Fatal(err)
	}
	label := 2
	_, grad := SquaredLoss(logits.Clone(), label)
	for i := range logits.Data {
		const h = 1e-6
		up := logits.Clone()
		up.Data[i] += h
		lUp, _ := SquaredLoss(up, label)
		down := logits.Clone()
		down.Data[i] -= h
		lDown, _ := SquaredLoss(down, label)
		want := (lUp - lDown) / (2 * h)
		if math.Abs(grad.Data[i]-want) > 1e-5 {
			t.Errorf("squared grad[%d] = %v, want %v", i, grad.Data[i], want)
		}
	}
}

func TestSquaredLossRange(t *testing.T) {
	// Squared loss between softmax and one-hot lies in [0, 2).
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		logits := randomTensor(rng, 5)
		l, _ := SquaredLoss(logits, trial%5)
		if l < 0 || l >= 2 {
			t.Fatalf("squared loss out of range: %v", l)
		}
	}
}

func TestNetworkParamAndFLOPAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	net := NewNetwork("tiny", []int{4},
		NewDense(4, 3, rng), // 4*3 + 3 = 15 params, 12 FLOPs
		NewReLU(),
		NewDense(3, 2, rng), // 3*2 + 2 = 8 params, 6 FLOPs
	)
	if got := net.NumParams(); got != 23 {
		t.Errorf("NumParams = %d, want 23", got)
	}
	if got := net.SizeBytes(); got != 92 {
		t.Errorf("SizeBytes = %d, want 92", got)
	}
	// 12 + 3 (relu) + 6 = 21
	if got := net.ForwardFLOPs(); got != 21 {
		t.Errorf("ForwardFLOPs = %d, want 21", got)
	}
	out, err := net.OutDim()
	if err != nil {
		t.Fatal(err)
	}
	if out != 2 {
		t.Errorf("OutDim = %d", out)
	}
}

func TestNetworkTrainsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := NewNetwork("xor", []int{2},
		NewDense(2, 8, rng),
		NewReLU(),
		NewDense(8, 2, rng),
	)
	var samples []Sample
	cases := [][3]float64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	for _, c := range cases {
		x, err := FromSlice([]float64{c[0], c[1]}, 2)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Sample{X: x, Label: int(c[2])})
	}
	if _, err := Train(net, samples, TrainConfig{Epochs: 400, BatchSize: 4, LR: 0.5}, rng); err != nil {
		t.Fatalf("Train: %v", err)
	}
	acc, _ := Evaluate(net, samples)
	if acc != 1 {
		t.Errorf("XOR accuracy = %v, want 1", acc)
	}
}

func TestTrainErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewNetwork("t", []int{2}, NewDense(2, 2, rng))
	if _, err := Train(net, nil, TrainConfig{Epochs: 1, BatchSize: 1, LR: 0.1}, rng); err == nil {
		t.Error("expected error on empty samples")
	}
	x, err := FromSlice([]float64{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := []Sample{{X: x, Label: 0}}
	if _, err := Train(net, s, TrainConfig{Epochs: 0, BatchSize: 1, LR: 0.1}, rng); err == nil {
		t.Error("expected error on zero epochs")
	}
	if _, err := Train(net, s, TrainConfig{Epochs: 1, BatchSize: 0, LR: 0.1}, rng); err == nil {
		t.Error("expected error on zero batch size")
	}
	if _, err := Train(net, s, TrainConfig{Epochs: 1, BatchSize: 1, LR: 0}, rng); err == nil {
		t.Error("expected error on zero LR")
	}
}

func TestTrainWithSquaredLossConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewNetwork("sq", []int{2},
		NewDense(2, 8, rng),
		NewReLU(),
		NewDense(8, 2, rng),
	)
	// Linearly separable toy data.
	var samples []Sample
	for i := 0; i < 60; i++ {
		label := i % 2
		off := float64(label*2 - 1)
		x, err := FromSlice([]float64{off + rng.NormFloat64()*0.2, off + rng.NormFloat64()*0.2}, 2)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, Sample{X: x, Label: label})
	}
	if _, err := Train(net, samples, TrainConfig{Epochs: 60, BatchSize: 8, LR: 0.5, Loss: LossSquared}, rng); err != nil {
		t.Fatalf("Train: %v", err)
	}
	acc, msl := Evaluate(net, samples)
	if acc < 0.95 {
		t.Errorf("accuracy = %v, want >= 0.95", acc)
	}
	if msl > 0.5 {
		t.Errorf("mean squared loss = %v, want <= 0.5", msl)
	}
}

func TestTrainDeterministicFromSeed(t *testing.T) {
	build := func() (*Network, []Sample, *rand.Rand) {
		rng := rand.New(rand.NewSource(77))
		net := NewNetwork("d", []int{2}, NewDense(2, 4, rng), NewReLU(), NewDense(4, 2, rng))
		var samples []Sample
		for i := 0; i < 20; i++ {
			x, _ := FromSlice([]float64{rng.NormFloat64(), rng.NormFloat64()}, 2)
			samples = append(samples, Sample{X: x, Label: i % 2})
		}
		return net, samples, rng
	}
	n1, s1, r1 := build()
	n2, s2, r2 := build()
	l1, err := Train(n1, s1, TrainConfig{Epochs: 5, BatchSize: 4, LR: 0.1}, r1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Train(n2, s2, TrainConfig{Epochs: 5, BatchSize: 4, LR: 0.1}, r2)
	if err != nil {
		t.Fatal(err)
	}
	if l1 != l2 {
		t.Errorf("training not deterministic: %v vs %v", l1, l2)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewNetwork("e", []int{2}, NewDense(2, 2, rng))
	acc, loss := Evaluate(net, nil)
	if acc != 0 || loss != 0 {
		t.Errorf("Evaluate(empty) = %v, %v", acc, loss)
	}
}
