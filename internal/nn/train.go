package nn

import (
	"fmt"
	"math/rand"
)

// Sample is one labeled example.
type Sample struct {
	X     *Tensor
	Label int
}

// LossKind selects the training objective.
type LossKind int

// Supported training losses.
const (
	// LossCrossEntropy is standard softmax cross-entropy.
	LossCrossEntropy LossKind = iota + 1
	// LossSquared is the paper's squared loss between the softmax output
	// and the one-hot label.
	LossSquared
)

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// LRDecay multiplies LR after each epoch (1 = constant).
	LRDecay float64
	Loss    LossKind
	// Silent training has no progress callback; set OnEpoch to observe.
	OnEpoch func(epoch int, avgLoss float64)
}

// Train runs minibatch SGD over samples using rng for shuffling. It returns
// the average training loss of the final epoch.
func Train(net *Network, samples []Sample, cfg TrainConfig, rng *rand.Rand) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("nn: no training samples")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return 0, fmt.Errorf("nn: invalid train config %+v", cfg)
	}
	if cfg.Loss == 0 {
		cfg.Loss = LossCrossEntropy
	}
	if cfg.LRDecay == 0 {
		cfg.LRDecay = 1
	}

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	net.SetTraining(true)
	defer net.SetTraining(false)
	lr := cfg.LR
	lastAvg := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		batchCount := 0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			net.ZeroGrads()
			for _, si := range idx[start:end] {
				s := samples[si]
				logits := net.Forward(s.X)
				var loss float64
				var grad *Tensor
				switch cfg.Loss {
				case LossSquared:
					loss, grad = SquaredLoss(logits, s.Label)
				default:
					loss, grad = CrossEntropyLoss(logits, s.Label)
				}
				totalLoss += loss
				net.Backward(grad)
			}
			net.Step(lr, float64(end-start))
			batchCount++
		}
		lastAvg = totalLoss / float64(len(idx))
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, lastAvg)
		}
		lr *= cfg.LRDecay
	}
	return lastAvg, nil
}

// Evaluate returns classification accuracy and mean squared loss of net over
// samples.
func Evaluate(net *Network, samples []Sample) (accuracy, meanSquaredLoss float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	correct := 0
	totalLoss := 0.0
	for _, s := range samples {
		logits := net.Forward(s.X)
		if logits.MaxIndex() == s.Label {
			correct++
		}
		l, _ := SquaredLoss(logits, s.Label)
		totalLoss += l
	}
	n := float64(len(samples))
	return float64(correct) / n, totalLoss / n
}
