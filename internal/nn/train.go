package nn

import (
	"fmt"
	"math/rand"
)

// Sample is one labeled example.
type Sample struct {
	X     *Tensor
	Label int
}

// LossKind selects the training objective.
type LossKind int

// Supported training losses.
const (
	// LossCrossEntropy is standard softmax cross-entropy.
	LossCrossEntropy LossKind = iota + 1
	// LossSquared is the paper's squared loss between the softmax output
	// and the one-hot label.
	LossSquared
)

// TrainConfig controls SGD training.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	// LRDecay multiplies LR after each epoch (1 = constant).
	LRDecay float64
	Loss    LossKind
	// Silent training has no progress callback; set OnEpoch to observe.
	OnEpoch func(epoch int, avgLoss float64)
}

// Train runs minibatch SGD over samples using rng for shuffling. It returns
// the average training loss of the final epoch.
//
// Whole minibatches flow through the batched GEMM path
// (ForwardBatchTrain/BackwardBatch on one arena); the result is bit-for-bit
// identical to the retained per-sample reference loop (trainNaive) — same
// shuffle draws, same dropout mask draws, same gradient and loss bits
// (train_equiv_test.go pins the serialized trained weights byte-identical).
func Train(net *Network, samples []Sample, cfg TrainConfig, rng *rand.Rand) (float64, error) {
	return TrainShuffled(net, samples, cfg, rng.Shuffle)
}

// TrainShuffled is Train with a caller-supplied epoch shuffle in place of an
// *rand.Rand. Callers that must interleave shuffle draws across several
// trainings — the zoo builder pre-records every model's per-epoch shuffles
// from one shared stream so the models can then train in parallel — replay
// the recorded draw sequence here; the result is bit-identical to Train with
// the rng the shuffles were drawn from.
func TrainShuffled(net *Network, samples []Sample, cfg TrainConfig, shuffle func(n int, swap func(i, j int))) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("nn: no training samples")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return 0, fmt.Errorf("nn: invalid train config %+v", cfg)
	}
	if cfg.Loss == 0 {
		cfg.Loss = LossCrossEntropy
	}
	if cfg.LRDecay == 0 {
		cfg.LRDecay = 1
	}
	lr := cfg.LR
	return trainBatched(net, samples, cfg, shuffle,
		func(batch float64) { net.Step(lr, batch) },
		func() { lr *= cfg.LRDecay })
}

// trainBatched is the shared minibatch engine behind Train and TrainWith.
// Per batch it assembles the shuffled samples into one [B, sampleShape...]
// arena tensor, runs ForwardBatchTrain, computes per-row losses and logit
// gradients, back-propagates the whole batch, and hands the minibatch size
// to step (which applies the update and clears gradients).
//
// Bit-identity to the per-sample loop is preserved by construction: the
// shuffle is the caller's, dropout masks pre-draw in (sample, layer) order,
// the epoch loss accumulates row by row in shuffled sample order (never via
// batch partial sums), and every layer's BackwardBatch replays the
// per-sample gradient add sequence.
func trainBatched(net *Network, samples []Sample, cfg TrainConfig,
	shuffle func(n int, swap func(i, j int)),
	step func(batch float64),
	afterEpoch func(),
) (float64, error) {
	sampleLen := samples[0].X.Len()
	for i := range samples {
		if samples[i].X.Len() != sampleLen {
			return 0, fmt.Errorf("nn: sample %d has %d features, want %d", i, samples[i].X.Len(), sampleLen)
		}
	}
	batchShape := append([]int{0}, samples[0].X.Shape...)

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	net.SetTraining(true)
	defer net.SetTraining(false)
	a := NewArena()
	lastAvg := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := min(start+cfg.BatchSize, len(idx))
			b := end - start
			net.ZeroGrads()
			a.Reset()
			batchShape[0] = b
			in := a.Tensor(batchShape...)
			for bi, si := range idx[start:end] {
				copy(in.Data[bi*sampleLen:(bi+1)*sampleLen], samples[si].X.Data)
			}
			logits := net.ForwardBatchTrain(in, a)
			classes := logits.Shape[1]
			grad := a.Tensor(b, classes)
			scratch := a.Floats(classes)
			for bi, si := range idx[start:end] {
				row := logits.Data[bi*classes : (bi+1)*classes]
				gradRow := grad.Data[bi*classes : (bi+1)*classes]
				switch cfg.Loss {
				case LossSquared:
					totalLoss += SquaredLossRowGrad(row, samples[si].Label, gradRow, scratch)
				default:
					totalLoss += CrossEntropyLossRow(row, samples[si].Label, gradRow)
				}
			}
			net.BackwardBatch(grad, a)
			step(float64(b))
		}
		lastAvg = totalLoss / float64(len(idx))
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, lastAvg)
		}
		if afterEpoch != nil {
			afterEpoch()
		}
	}
	return lastAvg, nil
}

// trainNaive is the original one-sample-at-a-time SGD loop, retained
// verbatim as the reference implementation the equivalence tests pin the
// batched path against (serialized trained weights must match byte for
// byte).
func trainNaive(net *Network, samples []Sample, cfg TrainConfig, rng *rand.Rand) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("nn: no training samples")
	}
	if cfg.Epochs <= 0 || cfg.BatchSize <= 0 || cfg.LR <= 0 {
		return 0, fmt.Errorf("nn: invalid train config %+v", cfg)
	}
	if cfg.Loss == 0 {
		cfg.Loss = LossCrossEntropy
	}
	if cfg.LRDecay == 0 {
		cfg.LRDecay = 1
	}

	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	net.SetTraining(true)
	defer net.SetTraining(false)
	lr := cfg.LR
	lastAvg := 0.0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		totalLoss := 0.0
		for start := 0; start < len(idx); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			net.ZeroGrads()
			for _, si := range idx[start:end] {
				s := samples[si]
				logits := net.Forward(s.X)
				var loss float64
				var grad *Tensor
				switch cfg.Loss {
				case LossSquared:
					loss, grad = SquaredLoss(logits, s.Label)
				default:
					loss, grad = CrossEntropyLoss(logits, s.Label)
				}
				totalLoss += loss
				net.Backward(grad)
			}
			net.Step(lr, float64(end-start))
		}
		lastAvg = totalLoss / float64(len(idx))
		if cfg.OnEpoch != nil {
			cfg.OnEpoch(epoch, lastAvg)
		}
		lr *= cfg.LRDecay
	}
	return lastAvg, nil
}

// evalChunk bounds Evaluate's batch size: big enough to amortize the GEMM
// setup (and the Dense weight transpose, which is rebuilt per chunk), small
// enough to keep the arena footprint modest. Chunking cannot change result
// bits — every sample's float ops are independent of its batch neighbours.
const evalChunk = 256

// Evaluate returns classification accuracy and mean squared loss of net over
// samples. Samples flow through the batched inference path in chunks; the
// row helpers replay the per-sample argmax and loss ops exactly, and the
// loss accumulates in sample order, so the result bits match the historical
// per-sample loop.
func Evaluate(net *Network, samples []Sample) (accuracy, meanSquaredLoss float64) {
	if len(samples) == 0 {
		return 0, 0
	}
	sampleLen := samples[0].X.Len()
	batchShape := append([]int{0}, samples[0].X.Shape...)
	a := NewArena()
	correct := 0
	totalLoss := 0.0
	for start := 0; start < len(samples); start += evalChunk {
		end := min(start+evalChunk, len(samples))
		b := end - start
		a.Reset()
		batchShape[0] = b
		in := a.Tensor(batchShape...)
		for bi := 0; bi < b; bi++ {
			x := samples[start+bi].X
			if x.Len() != sampleLen {
				//lint:allow panicpolicy mirrors the Forward shape guards: a ragged evaluation set is a programmer error and the historical signature has no error channel
				panic(fmt.Sprintf("nn: eval sample %d has %d features, want %d", start+bi, x.Len(), sampleLen))
			}
			copy(in.Data[bi*sampleLen:(bi+1)*sampleLen], x.Data)
		}
		logits := net.ForwardBatch(in, a)
		classes := logits.Shape[1]
		scratch := a.Floats(classes)
		for bi := 0; bi < b; bi++ {
			row := logits.Data[bi*classes : (bi+1)*classes]
			label := samples[start+bi].Label
			if ArgmaxRow(row) == label {
				correct++
			}
			totalLoss += SquaredLossRow(row, label, scratch)
		}
	}
	n := float64(len(samples))
	return float64(correct) / n, totalLoss / n
}
