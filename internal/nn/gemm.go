package nn

// Deterministic blocked GEMM kernels. These are the single inference hot
// path of the repository: Dense and Conv2D (via im2col) both lower to a
// "NT" matrix product — dot products of two row-major matrices that share a
// contiguous K dimension.
//
// The kernels are blocked over the *output* coordinates only (eight columns
// of C per pass, so each element of A is loaded once per eight outputs);
// the K dimension is never split. That restriction is load-bearing: every
// output element accumulates its K products strictly in index order, one
// accumulator per element, which makes the float summation sequence — and
// therefore every result file derived from it — bit-for-bit identical to
// the naive loops these kernels replaced (batch_equiv_test.go pins this
// against the retained naive references).

// GemmNTBiasJ computes out[i*n+j] = bias[j] + sum_k a[i*k+p]*b[j*k+p] for
// an m-by-k matrix a and an n-by-k matrix b, both row-major. It is the
// batched Dense kernel: a holds one sample per row, b one output unit's
// weights per row. bias must have length n.
func GemmNTBiasJ(out, a, b, bias []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : i*k+k]
		orow := out[i*n : i*n+n]
		j := 0
		for ; j+8 <= n; j += 8 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			b4 := b[(j+4)*k : (j+4)*k+k]
			b5 := b[(j+5)*k : (j+5)*k+k]
			b6 := b[(j+6)*k : (j+6)*k+k]
			b7 := b[(j+7)*k : (j+7)*k+k]
			s0, s1, s2, s3 := bias[j], bias[j+1], bias[j+2], bias[j+3]
			s4, s5, s6, s7 := bias[j+4], bias[j+5], bias[j+6], bias[j+7]
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
				s4 += av * b4[p]
				s5 += av * b5[p]
				s6 += av * b6[p]
				s7 += av * b7[p]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			orow[j+4], orow[j+5], orow[j+6], orow[j+7] = s4, s5, s6, s7
		}
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			s0, s1, s2, s3 := bias[j], bias[j+1], bias[j+2], bias[j+3]
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			br := b[j*k : j*k+k]
			s := bias[j]
			for p, av := range ar {
				s += av * br[p]
			}
			orow[j] = s
		}
	}
}

// GemmNTBiasI is GemmNTBiasJ with the bias indexed by the row instead of
// the column: out[i*n+j] = bias[i] + sum_k a[i*k+p]*b[j*k+p]. It is the
// convolution kernel: a holds one output channel's weights per row, b one
// output pixel's im2col patch per row. bias must have length m.
func GemmNTBiasI(out, a, b, bias []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : i*k+k]
		orow := out[i*n : i*n+n]
		bi := bias[i]
		j := 0
		for ; j+8 <= n; j += 8 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			b4 := b[(j+4)*k : (j+4)*k+k]
			b5 := b[(j+5)*k : (j+5)*k+k]
			b6 := b[(j+6)*k : (j+6)*k+k]
			b7 := b[(j+7)*k : (j+7)*k+k]
			s0, s1, s2, s3 := bi, bi, bi, bi
			s4, s5, s6, s7 := bi, bi, bi, bi
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
				s4 += av * b4[p]
				s5 += av * b5[p]
				s6 += av * b6[p]
				s7 += av * b7[p]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			orow[j+4], orow[j+5], orow[j+6], orow[j+7] = s4, s5, s6, s7
		}
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			s0, s1, s2, s3 := bi, bi, bi, bi
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			br := b[j*k : j*k+k]
			s := bi
			for p, av := range ar {
				s += av * br[p]
			}
			orow[j] = s
		}
	}
}

// im2col lowers one CHW sample to the patch matrix the convolution GEMM
// consumes: dst[p*kk+c] = the c-th element of output pixel p's receptive
// field, where p walks the output pixels row-major (y, then x) and c walks
// the patch in (ic, ky, kx) order — the exact accumulation order of the
// naive convolution loop, so the GEMM's K-sequential dot products replay
// the naive float summation term for term. dst must have oh*ow*inC*kh*kh
// elements.
func im2col(dst, src []float64, inC, h, w, kh, oh, ow int) {
	di := 0
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for ic := 0; ic < inC; ic++ {
				for ky := 0; ky < kh; ky++ {
					srow := src[(ic*h+y+ky)*w+x : (ic*h+y+ky)*w+x+kh]
					for kx := 0; kx < kh; kx++ {
						dst[di] = srow[kx]
						di++
					}
				}
			}
		}
	}
}
