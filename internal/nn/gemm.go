package nn

// Deterministic blocked GEMM kernels. These are the single inference hot
// path of the repository: Dense and Conv2D (via im2col) both lower to a
// "NT" matrix product — dot products of two row-major matrices that share a
// contiguous K dimension.
//
// The kernels are blocked over the *output* coordinates only (eight columns
// of C per pass, so each element of A is loaded once per eight outputs);
// the K dimension is never split. That restriction is load-bearing: every
// output element accumulates its K products strictly in index order, one
// accumulator per element, which makes the float summation sequence — and
// therefore every result file derived from it — bit-for-bit identical to
// the naive loops these kernels replaced (batch_equiv_test.go pins this
// against the retained naive references).

// GemmNTBiasJ computes out[i*n+j] = bias[j] + sum_k a[i*k+p]*b[j*k+p] for
// an m-by-k matrix a and an n-by-k matrix b, both row-major. It is the
// batched Dense kernel: a holds one sample per row, b one output unit's
// weights per row. bias must have length n.
func GemmNTBiasJ(out, a, b, bias []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : i*k+k]
		orow := out[i*n : i*n+n]
		j := 0
		for ; j+8 <= n; j += 8 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			b4 := b[(j+4)*k : (j+4)*k+k]
			b5 := b[(j+5)*k : (j+5)*k+k]
			b6 := b[(j+6)*k : (j+6)*k+k]
			b7 := b[(j+7)*k : (j+7)*k+k]
			s0, s1, s2, s3 := bias[j], bias[j+1], bias[j+2], bias[j+3]
			s4, s5, s6, s7 := bias[j+4], bias[j+5], bias[j+6], bias[j+7]
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
				s4 += av * b4[p]
				s5 += av * b5[p]
				s6 += av * b6[p]
				s7 += av * b7[p]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			orow[j+4], orow[j+5], orow[j+6], orow[j+7] = s4, s5, s6, s7
		}
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			s0, s1, s2, s3 := bias[j], bias[j+1], bias[j+2], bias[j+3]
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			br := b[j*k : j*k+k]
			s := bias[j]
			for p, av := range ar {
				s += av * br[p]
			}
			orow[j] = s
		}
	}
}

// GemmNTBiasI is GemmNTBiasJ with the bias indexed by the row instead of
// the column: out[i*n+j] = bias[i] + sum_k a[i*k+p]*b[j*k+p]. It is the
// convolution kernel: a holds one output channel's weights per row, b one
// output pixel's im2col patch per row. bias must have length m.
func GemmNTBiasI(out, a, b, bias []float64, m, n, k int) {
	for i := 0; i < m; i++ {
		ar := a[i*k : i*k+k]
		orow := out[i*n : i*n+n]
		bi := bias[i]
		j := 0
		for ; j+8 <= n; j += 8 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			b4 := b[(j+4)*k : (j+4)*k+k]
			b5 := b[(j+5)*k : (j+5)*k+k]
			b6 := b[(j+6)*k : (j+6)*k+k]
			b7 := b[(j+7)*k : (j+7)*k+k]
			s0, s1, s2, s3 := bi, bi, bi, bi
			s4, s5, s6, s7 := bi, bi, bi, bi
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
				s4 += av * b4[p]
				s5 += av * b5[p]
				s6 += av * b6[p]
				s7 += av * b7[p]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			orow[j+4], orow[j+5], orow[j+6], orow[j+7] = s4, s5, s6, s7
		}
		for ; j+4 <= n; j += 4 {
			b0 := b[(j+0)*k : (j+0)*k+k]
			b1 := b[(j+1)*k : (j+1)*k+k]
			b2 := b[(j+2)*k : (j+2)*k+k]
			b3 := b[(j+3)*k : (j+3)*k+k]
			s0, s1, s2, s3 := bi, bi, bi, bi
			for p, av := range ar {
				s0 += av * b0[p]
				s1 += av * b1[p]
				s2 += av * b2[p]
				s3 += av * b3[p]
			}
			orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			br := b[j*k : j*k+k]
			s := bi
			for p, av := range ar {
				s += av * br[p]
			}
			orow[j] = s
		}
	}
}

// GemmNNBiasI computes out[i*n+j] = bias[i] + sum_c a[i*k+c]*bt[c*n+j] for
// an m-by-k row-major matrix a and a k-by-n row-major matrix bt. It is
// GemmNTBiasI with the patch matrix pre-transposed (bt = b transposed, see
// im2colT): every output element still starts from the bias and accumulates
// its K products strictly in index order, so results are bit-identical to
// GemmNTBiasI — but adjacent output columns now read adjacent bt elements,
// so eight columns accumulate side by side in SIMD registers (nnDot8SIMD)
// without any sum being split or reordered. bias must have length m.
func GemmNNBiasI(out, a, bt, bias []float64, m, n, k int) {
	GemmNNBiasILd(out, a, bt, bias, m, n, k, n)
}

// GemmNNBiasILd is GemmNNBiasI over a column sub-view of a wider bt matrix:
// bt rows are read at stride ld (>= n), so a batch can pack every sample's
// im2colT columns side by side and convolve each sample's slice straight
// into its own output rows. Groups of four output rows go through the 4x8
// register tile (gemmNNQuadI); the remainder runs row by row.
func GemmNNBiasILd(out, a, bt, bias []float64, m, n, k, ld int) {
	i := gemmNNQuadI(out, a, bt, bias, m, n, k, ld)
	for ; i < m; i++ {
		gemmNNRowI(out[i*n:i*n+n], bias[i], a[i*k:i*k+k], bt, n, ld)
	}
}

// GemmNNAccI accumulates an NN-form product in place:
// out[i*n+j] += sum_c a[i*k+c]*bt[c*ld+j]. Each output element continues
// its own running sum with c strictly ascending, so calling this once per
// sample replays a per-sample accumulation loop bit for bit. It is the
// batched weight-gradient kernel: a holds one sample's output-channel
// gradients, bt the recorded im2col rows (c walks output pixels).
func GemmNNAccI(out, a, bt []float64, m, n, k, ld int) {
	i := gemmNNQuadAcc(out, a, bt, m, n, k, ld)
	for ; i < m; i++ {
		gemmNNAccRow(out[i*n:i*n+n], a[i*k:i*k+k], bt, n, ld)
	}
}

// GemmNNBiasJ computes out[i*n+j] = bias[j] + sum_c a[i*k+c]*bt[c*n+j]: the
// Dense orientation of GemmNNBiasI, consuming the weight matrix transposed
// (bt[c*n+j] = w[j*k+c]) so adjacent output units read adjacent elements.
// Each output's accumulation starts at its bias and walks c strictly
// ascending — the exact dot sequence of GemmNTBiasJ, so results are
// bit-identical. bias must have length n.
func GemmNNBiasJ(out, a, bt, bias []float64, m, n, k int) {
	i := gemmNNQuadJ(out, a, bt, bias, m, n, k, n)
	for ; i < m; i++ {
		gemmNNRowJ(out[i*n:i*n+n], bias, a[i*k:i*k+k], bt, n, n)
	}
}

// im2colT writes one CHW sample into the transposed patch matrix consumed by
// GemmNNBiasI: dst[c*ld + off + p] = the c-th element of output pixel p's
// receptive field, with c in (ic, ky, kx) order and p walking output pixels
// row-major — the same (p, c) values as im2col, laid out c-major so the GEMM
// inner loop streams contiguous rows. ld is the row stride (>= off + oh*ow),
// letting a batch pack every sample's columns side by side in one matrix.
// Each (c, y) run is a contiguous ow-length copy from the source row.
func im2colT(dst []float64, off, ld int, src []float64, inC, h, w, kh, oh, ow int) {
	c := 0
	for ic := 0; ic < inC; ic++ {
		for ky := 0; ky < kh; ky++ {
			for kx := 0; kx < kh; kx++ {
				base := c*ld + off
				for y := 0; y < oh; y++ {
					srow := src[(ic*h+y+ky)*w+kx : (ic*h+y+ky)*w+kx+ow]
					copy(dst[base+y*ow:base+y*ow+ow], srow)
				}
				c++
			}
		}
	}
}

// im2col lowers one CHW sample to the patch matrix the convolution GEMM
// consumes: dst[p*kk+c] = the c-th element of output pixel p's receptive
// field, where p walks the output pixels row-major (y, then x) and c walks
// the patch in (ic, ky, kx) order — the exact accumulation order of the
// naive convolution loop, so the GEMM's K-sequential dot products replay
// the naive float summation term for term. dst must have oh*ow*inC*kh*kh
// elements.
func im2col(dst, src []float64, inC, h, w, kh, oh, ow int) {
	if kh == 3 {
		di := 0
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				for ic := 0; ic < inC; ic++ {
					base := (ic*h+y)*w + x
					r0 := src[base : base+3]
					r1 := src[base+w : base+w+3]
					r2 := src[base+2*w : base+2*w+3]
					d := dst[di : di+9]
					d[0], d[1], d[2] = r0[0], r0[1], r0[2]
					d[3], d[4], d[5] = r1[0], r1[1], r1[2]
					d[6], d[7], d[8] = r2[0], r2[1], r2[2]
					di += 9
				}
			}
		}
		return
	}
	di := 0
	for y := 0; y < oh; y++ {
		for x := 0; x < ow; x++ {
			for ic := 0; ic < inC; ic++ {
				for ky := 0; ky < kh; ky++ {
					srow := src[(ic*h+y+ky)*w+x : (ic*h+y+ky)*w+x+kh]
					for kx := 0; kx < kh; kx++ {
						dst[di] = srow[kx]
						di++
					}
				}
			}
		}
	}
}
