package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestNewDropoutErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewDropout(-0.1, rng); err == nil {
		t.Error("expected error for negative p")
	}
	if _, err := NewDropout(1, rng); err == nil {
		t.Error("expected error for p = 1")
	}
	if _, err := NewDropout(0.5, nil); err == nil {
		t.Error("expected error for nil rng")
	}
}

func TestDropoutIdentityInEval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, err := NewDropout(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	in := randomTensor(rng, 10)
	out := d.Forward(in) // not training
	for i := range in.Data {
		if out.Data[i] != in.Data[i] {
			t.Fatal("dropout modified activations in eval mode")
		}
	}
	g := randomTensor(rng, 10)
	back := d.Backward(g)
	for i := range g.Data {
		if back.Data[i] != g.Data[i] {
			t.Fatal("dropout modified gradients in eval mode")
		}
	}
}

func TestDropoutTrainingStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const p = 0.3
	d, err := NewDropout(p, rng)
	if err != nil {
		t.Fatal(err)
	}
	d.SetTraining(true)
	in := NewTensor(10000)
	for i := range in.Data {
		in.Data[i] = 1
	}
	out := d.Forward(in)
	zeros, sum := 0, 0.0
	for _, v := range out.Data {
		if v == 0 {
			zeros++
		}
		sum += v
	}
	// Roughly p of activations dropped; inverted scaling preserves the
	// expected sum.
	if frac := float64(zeros) / 10000; math.Abs(frac-p) > 0.02 {
		t.Errorf("dropped fraction = %v, want ~%v", frac, p)
	}
	if math.Abs(sum-10000) > 300 {
		t.Errorf("expected-sum preservation broke: %v", sum)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d, err := NewDropout(0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	d.SetTraining(true)
	in := randomTensor(rng, 50)
	out := d.Forward(in)
	g := NewTensor(50)
	for i := range g.Data {
		g.Data[i] = 1
	}
	back := d.Backward(g)
	for i := range out.Data {
		if (out.Data[i] == 0) != (back.Data[i] == 0) {
			t.Fatal("gradient mask mismatches activation mask")
		}
	}
}

func TestNetworkSetTrainingPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	drop, err := NewDropout(0.9, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork("d", []int{20}, NewDense(20, 20, rng), drop)
	in := randomTensor(rng, 20)

	net.SetTraining(false)
	a := net.Forward(in)
	b := net.Forward(in)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("eval mode must be deterministic")
		}
	}
	net.SetTraining(true)
	c := net.Forward(in)
	zeros := 0
	for _, v := range c.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros == 0 {
		t.Error("training mode dropped nothing at p=0.9")
	}
}

func TestTrainingWithDropoutConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	drop, err := NewDropout(0.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := NewNetwork("dn", []int{2},
		NewDense(2, 16, rng), NewReLU(), drop, NewDense(16, 2, rng))
	samples := separableData(rng, 100)
	if _, err := Train(net, samples, TrainConfig{Epochs: 40, BatchSize: 8, LR: 0.3}, rng); err != nil {
		t.Fatal(err)
	}
	// Train must leave the network in eval mode so Evaluate is
	// deterministic and undropped.
	acc, _ := Evaluate(net, samples)
	if acc < 0.9 {
		t.Errorf("accuracy with dropout = %v", acc)
	}
}
