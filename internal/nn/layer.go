package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable stage of a network. Forward consumes an input
// tensor and produces an output tensor; Backward consumes the gradient of
// the loss w.r.t. the output and returns the gradient w.r.t. the input,
// accumulating parameter gradients internally. Layers process one sample at
// a time; minibatching is handled by the trainer accumulating gradients.
type Layer interface {
	// Forward runs the layer on one sample.
	Forward(in *Tensor) *Tensor
	// Backward back-propagates the output gradient from the most recent
	// Forward call and returns the input gradient.
	Backward(gradOut *Tensor) *Tensor
	// Params returns the layer's parameter slices (possibly empty).
	Params() []*Tensor
	// Grads returns the gradient accumulators aligned with Params.
	Grads() []*Tensor
	// OutShape maps an input shape to the layer's output shape.
	OutShape(in []int) []int
	// FLOPs estimates multiply-accumulate operations for one forward pass
	// given the input shape.
	FLOPs(in []int) int64
}

// Dense is a fully connected layer: out = W*in + b.
type Dense struct {
	InDim, OutDim int

	w, b   *Tensor
	gw, gb *Tensor
	lastIn *Tensor
}

var _ Layer = (*Dense)(nil)

// NewDense creates a dense layer with He-style initialization from rng.
func NewDense(inDim, outDim int, rng *rand.Rand) *Dense {
	d := &Dense{
		InDim:  inDim,
		OutDim: outDim,
		w:      NewTensor(outDim, inDim),
		b:      NewTensor(outDim),
		gw:     NewTensor(outDim, inDim),
		gb:     NewTensor(outDim),
	}
	scale := math.Sqrt(2 / float64(inDim))
	for i := range d.w.Data {
		d.w.Data[i] = rng.NormFloat64() * scale
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(in *Tensor) *Tensor {
	if in.Len() != d.InDim {
		//lint:allow panicpolicy Layer.Forward hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Dense expected %d inputs, got %d", d.InDim, in.Len()))
	}
	d.lastIn = in
	out := NewTensor(d.OutDim)
	for o := 0; o < d.OutDim; o++ {
		row := d.w.Data[o*d.InDim : (o+1)*d.InDim]
		sum := d.b.Data[o]
		for i, x := range in.Data {
			sum += row[i] * x
		}
		out.Data[o] = sum
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *Tensor) *Tensor {
	gradIn := NewTensor(d.InDim)
	for o := 0; o < d.OutDim; o++ {
		g := gradOut.Data[o]
		d.gb.Data[o] += g
		row := d.w.Data[o*d.InDim : (o+1)*d.InDim]
		grow := d.gw.Data[o*d.InDim : (o+1)*d.InDim]
		for i, x := range d.lastIn.Data {
			grow[i] += g * x
			gradIn.Data[i] += g * row[i]
		}
	}
	return gradIn
}

// Params implements Layer.
func (d *Dense) Params() []*Tensor { return []*Tensor{d.w, d.b} }

// Grads implements Layer.
func (d *Dense) Grads() []*Tensor { return []*Tensor{d.gw, d.gb} }

// OutShape implements Layer.
func (d *Dense) OutShape([]int) []int { return []int{d.OutDim} }

// FLOPs implements Layer.
func (d *Dense) FLOPs([]int) int64 { return int64(d.InDim) * int64(d.OutDim) }

// Conv2D is a 2-D convolution with stride 1 and valid padding over CHW
// tensors.
type Conv2D struct {
	InC, OutC, K int

	w, b   *Tensor // w: [OutC, InC, K, K]
	gw, gb *Tensor
	lastIn *Tensor
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D creates a convolution layer with He initialization.
func NewConv2D(inC, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC:  inC,
		OutC: outC,
		K:    k,
		w:    NewTensor(outC, inC, k, k),
		b:    NewTensor(outC),
		gw:   NewTensor(outC, inC, k, k),
		gb:   NewTensor(outC),
	}
	fanIn := float64(inC * k * k)
	scale := math.Sqrt(2 / fanIn)
	for i := range c.w.Data {
		c.w.Data[i] = rng.NormFloat64() * scale
	}
	return c
}

func (c *Conv2D) wAt(oc, ic, ky, kx int) float64 {
	return c.w.Data[((oc*c.InC+ic)*c.K+ky)*c.K+kx]
}

func (c *Conv2D) gwAdd(oc, ic, ky, kx int, v float64) {
	c.gw.Data[((oc*c.InC+ic)*c.K+ky)*c.K+kx] += v
}

// Forward implements Layer.
func (c *Conv2D) Forward(in *Tensor) *Tensor {
	if len(in.Shape) != 3 || in.Shape[0] != c.InC {
		//lint:allow panicpolicy Layer.Forward hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Conv2D expected [%d,H,W], got %v", c.InC, in.Shape))
	}
	c.lastIn = in
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := h-c.K+1, w-c.K+1
	out := NewTensor(c.OutC, oh, ow)
	for oc := 0; oc < c.OutC; oc++ {
		bias := c.b.Data[oc]
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				sum := bias
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						inRow := in.Data[(ic*h+y+ky)*w+x:]
						wRow := c.w.Data[((oc*c.InC+ic)*c.K+ky)*c.K:]
						for kx := 0; kx < c.K; kx++ {
							sum += wRow[kx] * inRow[kx]
						}
					}
				}
				out.Data[(oc*oh+y)*ow+x] = sum
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *Tensor) *Tensor {
	in := c.lastIn
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := gradOut.Shape[1], gradOut.Shape[2]
	gradIn := NewTensor(c.InC, h, w)
	for oc := 0; oc < c.OutC; oc++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				g := gradOut.Data[(oc*oh+y)*ow+x]
				if g == 0 {
					continue
				}
				c.gb.Data[oc] += g
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						inRow := in.Data[(ic*h+y+ky)*w+x:]
						giRow := gradIn.Data[(ic*h+y+ky)*w+x:]
						wRow := c.w.Data[((oc*c.InC+ic)*c.K+ky)*c.K:]
						gwRow := c.gw.Data[((oc*c.InC+ic)*c.K+ky)*c.K:]
						for kx := 0; kx < c.K; kx++ {
							gwRow[kx] += g * inRow[kx]
							giRow[kx] += g * wRow[kx]
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*Tensor { return []*Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*Tensor { return []*Tensor{c.gw, c.gb} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	return []int{c.OutC, in[1] - c.K + 1, in[2] - c.K + 1}
}

// FLOPs implements Layer.
func (c *Conv2D) FLOPs(in []int) int64 {
	oh, ow := in[1]-c.K+1, in[2]-c.K+1
	return int64(c.OutC) * int64(oh) * int64(ow) * int64(c.InC) * int64(c.K*c.K)
}

// MaxPool2D is a 2x2 max pooling layer with stride 2 over CHW tensors.
// Odd trailing rows/columns are dropped, matching common framework defaults.
type MaxPool2D struct {
	argmax  []int
	inShape []int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D creates a 2x2/stride-2 max-pool layer.
func NewMaxPool2D() *MaxPool2D { return &MaxPool2D{} }

// Forward implements Layer.
func (m *MaxPool2D) Forward(in *Tensor) *Tensor {
	ch, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := h/2, w/2
	out := NewTensor(ch, oh, ow)
	m.inShape = in.Shape
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]
	for c := 0; c < ch; c++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				bestIdx := (c*h+2*y)*w + 2*x
				best := in.Data[bestIdx]
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						idx := (c*h+2*y+dy)*w + 2*x + dx
						if in.Data[idx] > best {
							best, bestIdx = in.Data[idx], idx
						}
					}
				}
				o := (c*oh+y)*ow + x
				out.Data[o] = best
				m.argmax[o] = bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(gradOut *Tensor) *Tensor {
	gradIn := NewTensor(m.inShape...)
	for o, idx := range m.argmax {
		gradIn.Data[idx] += gradOut.Data[o]
	}
	return gradIn
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Tensor { return nil }

// Grads implements Layer.
func (m *MaxPool2D) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (m *MaxPool2D) OutShape(in []int) []int {
	return []int{in[0], in[1] / 2, in[2] / 2}
}

// FLOPs implements Layer.
func (m *MaxPool2D) FLOPs(in []int) int64 {
	return int64(in[0]) * int64(in[1]/2) * int64(in[2]/2) * 4
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU creates a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.Shape...)
	if cap(r.mask) < in.Len() {
		r.mask = make([]bool, in.Len())
	}
	r.mask = r.mask[:in.Len()]
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *Tensor) *Tensor {
	gradIn := NewTensor(gradOut.Shape...)
	for i, on := range r.mask {
		if on {
			gradIn.Data[i] = gradOut.Data[i]
		}
	}
	return gradIn
}

// Params implements Layer.
func (r *ReLU) Params() []*Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return in }

// FLOPs implements Layer.
func (r *ReLU) FLOPs(in []int) int64 {
	n := int64(1)
	for _, d := range in {
		n *= int64(d)
	}
	return n
}

// Flatten reshapes any tensor to a vector.
type Flatten struct {
	inShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten creates a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(in *Tensor) *Tensor {
	f.inShape = in.Shape
	out := &Tensor{Shape: []int{in.Len()}, Data: in.Data}
	return out
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *Tensor) *Tensor {
	return &Tensor{Shape: f.inShape, Data: gradOut.Data}
}

// Params implements Layer.
func (f *Flatten) Params() []*Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// FLOPs implements Layer.
func (f *Flatten) FLOPs([]int) int64 { return 0 }
