package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable stage of a network. Forward consumes an input
// tensor and produces an output tensor; Backward consumes the gradient of
// the loss w.r.t. the output and returns the gradient w.r.t. the input,
// accumulating parameter gradients internally. Layers process one sample at
// a time; minibatching is handled by the trainer accumulating gradients.
type Layer interface {
	// Forward runs the layer on one sample.
	Forward(in *Tensor) *Tensor
	// ForwardBatch runs the layer on a batch laid out [B, d...], one sample
	// per contiguous row, writing output to arena scratch. It is
	// inference-only: no state is recorded for Backward. Per sample the
	// float operations replay Forward exactly, so batched and per-sample
	// inference agree bit for bit at every batch size.
	ForwardBatch(in *Tensor, a *Arena) *Tensor
	// Backward back-propagates the output gradient from the most recent
	// Forward call and returns the input gradient.
	Backward(gradOut *Tensor) *Tensor
	// Params returns the layer's parameter slices (possibly empty).
	Params() []*Tensor
	// Grads returns the gradient accumulators aligned with Params.
	Grads() []*Tensor
	// OutShape maps an input shape to the layer's output shape.
	OutShape(in []int) []int
	// FLOPs estimates multiply-accumulate operations for one forward pass
	// given the input shape.
	FLOPs(in []int) int64
}

// Dense is a fully connected layer: out = W*in + b.
type Dense struct {
	InDim, OutDim int

	w, b   *Tensor
	gw, gb *Tensor
	lastIn *Tensor
}

var _ Layer = (*Dense)(nil)

// NewDense creates a dense layer with He-style initialization from rng.
func NewDense(inDim, outDim int, rng *rand.Rand) *Dense {
	d := &Dense{
		InDim:  inDim,
		OutDim: outDim,
		w:      NewTensor(outDim, inDim),
		b:      NewTensor(outDim),
		gw:     NewTensor(outDim, inDim),
		gb:     NewTensor(outDim),
	}
	scale := math.Sqrt(2 / float64(inDim))
	for i := range d.w.Data {
		d.w.Data[i] = rng.NormFloat64() * scale
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(in *Tensor) *Tensor {
	if in.Len() != d.InDim {
		//lint:allow panicpolicy Layer.Forward hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Dense expected %d inputs, got %d", d.InDim, in.Len()))
	}
	d.lastIn = in
	out := NewTensor(d.OutDim)
	GemmNTBiasJ(out.Data, in.Data, d.w.Data, d.b.Data, 1, d.OutDim, d.InDim)
	return out
}

// forwardNaive is the pre-GEMM reference implementation, retained so the
// equivalence tests can pin the kernel's float summation sequence to it bit
// for bit.
func (d *Dense) forwardNaive(in *Tensor) *Tensor {
	out := NewTensor(d.OutDim)
	for o := 0; o < d.OutDim; o++ {
		row := d.w.Data[o*d.InDim : (o+1)*d.InDim]
		sum := d.b.Data[o]
		for i, x := range in.Data {
			sum += row[i] * x
		}
		out.Data[o] = sum
	}
	return out
}

// ForwardBatch implements Layer: one GEMM over the whole batch.
func (d *Dense) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	batch := in.Shape[0]
	if in.Len() != batch*d.InDim {
		//lint:allow panicpolicy Layer.ForwardBatch hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Dense expected %d inputs per sample, got shape %v", d.InDim, in.Shape))
	}
	out := a.Tensor(batch, d.OutDim)
	GemmNTBiasJ(out.Data, in.Data, d.w.Data, d.b.Data, batch, d.OutDim, d.InDim)
	return out
}

// Backward implements Layer, blocked four output units per pass so each
// input activation and each gradIn element is loaded once per four o's.
// Every accumulator still receives its terms as separate adds in strictly
// increasing o order — the chained s += g*row[i] statements round exactly
// like the unblocked loop — so gradients are bit-identical.
func (d *Dense) Backward(gradOut *Tensor) *Tensor {
	gradIn := NewTensor(d.InDim)
	gi := gradIn.Data
	in := d.lastIn.Data
	n := d.InDim
	o := 0
	for ; o+4 <= d.OutDim; o += 4 {
		g0, g1, g2, g3 := gradOut.Data[o], gradOut.Data[o+1], gradOut.Data[o+2], gradOut.Data[o+3]
		d.gb.Data[o] += g0
		d.gb.Data[o+1] += g1
		d.gb.Data[o+2] += g2
		d.gb.Data[o+3] += g3
		row0 := d.w.Data[(o+0)*n : (o+1)*n]
		row1 := d.w.Data[(o+1)*n : (o+2)*n]
		row2 := d.w.Data[(o+2)*n : (o+3)*n]
		row3 := d.w.Data[(o+3)*n : (o+4)*n]
		grow0 := d.gw.Data[(o+0)*n : (o+1)*n]
		grow1 := d.gw.Data[(o+1)*n : (o+2)*n]
		grow2 := d.gw.Data[(o+2)*n : (o+3)*n]
		grow3 := d.gw.Data[(o+3)*n : (o+4)*n]
		for i, x := range in {
			grow0[i] += g0 * x
			grow1[i] += g1 * x
			grow2[i] += g2 * x
			grow3[i] += g3 * x
			s := gi[i]
			s += g0 * row0[i]
			s += g1 * row1[i]
			s += g2 * row2[i]
			s += g3 * row3[i]
			gi[i] = s
		}
	}
	for ; o < d.OutDim; o++ {
		g := gradOut.Data[o]
		d.gb.Data[o] += g
		row := d.w.Data[o*n : (o+1)*n]
		grow := d.gw.Data[o*n : (o+1)*n]
		for i, x := range in {
			grow[i] += g * x
			gi[i] += g * row[i]
		}
	}
	return gradIn
}

// Params implements Layer.
func (d *Dense) Params() []*Tensor { return []*Tensor{d.w, d.b} }

// Grads implements Layer.
func (d *Dense) Grads() []*Tensor { return []*Tensor{d.gw, d.gb} }

// OutShape implements Layer.
func (d *Dense) OutShape([]int) []int { return []int{d.OutDim} }

// FLOPs implements Layer.
func (d *Dense) FLOPs([]int) int64 { return int64(d.InDim) * int64(d.OutDim) }

// Conv2D is a 2-D convolution with stride 1 and valid padding over CHW
// tensors.
type Conv2D struct {
	InC, OutC, K int

	w, b   *Tensor // w: [OutC, InC, K, K]
	gw, gb *Tensor
	lastIn *Tensor
	// col is the layer-owned im2col scratch for single-sample Forward
	// (training shares a network per caller, never across goroutines);
	// grow-only, so steady-state forwards do not reallocate it.
	col []float64
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D creates a convolution layer with He initialization.
func NewConv2D(inC, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC:  inC,
		OutC: outC,
		K:    k,
		w:    NewTensor(outC, inC, k, k),
		b:    NewTensor(outC),
		gw:   NewTensor(outC, inC, k, k),
		gb:   NewTensor(outC),
	}
	fanIn := float64(inC * k * k)
	scale := math.Sqrt(2 / fanIn)
	for i := range c.w.Data {
		c.w.Data[i] = rng.NormFloat64() * scale
	}
	return c
}

func (c *Conv2D) wAt(oc, ic, ky, kx int) float64 {
	return c.w.Data[((oc*c.InC+ic)*c.K+ky)*c.K+kx]
}

func (c *Conv2D) gwAdd(oc, ic, ky, kx int, v float64) {
	c.gw.Data[((oc*c.InC+ic)*c.K+ky)*c.K+kx] += v
}

// Forward implements Layer: im2col then one GEMM. The im2col patch order
// matches the naive loop's (ic, ky, kx) accumulation order and the GEMM
// never splits the K dimension, so the output is bit-for-bit identical to
// forwardNaive (pinned by the equivalence tests).
func (c *Conv2D) Forward(in *Tensor) *Tensor {
	if len(in.Shape) != 3 || in.Shape[0] != c.InC {
		//lint:allow panicpolicy Layer.Forward hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Conv2D expected [%d,H,W], got %v", c.InC, in.Shape))
	}
	c.lastIn = in
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := h-c.K+1, w-c.K+1
	out := NewTensor(c.OutC, oh, ow)
	kk := c.InC * c.K * c.K
	if n := oh * ow * kk; cap(c.col) < n {
		c.col = make([]float64, n)
	}
	col := c.col[:oh*ow*kk]
	im2col(col, in.Data, c.InC, h, w, c.K, oh, ow)
	GemmNTBiasI(out.Data, c.w.Data, col, c.b.Data, c.OutC, oh*ow, kk)
	return out
}

// forwardNaive is the pre-im2col reference implementation, retained so the
// equivalence tests can pin the kernel's float summation sequence to it bit
// for bit.
func (c *Conv2D) forwardNaive(in *Tensor) *Tensor {
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := h-c.K+1, w-c.K+1
	out := NewTensor(c.OutC, oh, ow)
	for oc := 0; oc < c.OutC; oc++ {
		bias := c.b.Data[oc]
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				sum := bias
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						inRow := in.Data[(ic*h+y+ky)*w+x:]
						wRow := c.w.Data[((oc*c.InC+ic)*c.K+ky)*c.K:]
						for kx := 0; kx < c.K; kx++ {
							sum += wRow[kx] * inRow[kx]
						}
					}
				}
				out.Data[(oc*oh+y)*ow+x] = sum
			}
		}
	}
	return out
}

// ForwardBatch implements Layer: per-sample im2col into one arena buffer,
// one GEMM per sample into the batched output.
func (c *Conv2D) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	if len(in.Shape) != 4 || in.Shape[1] != c.InC {
		//lint:allow panicpolicy Layer.ForwardBatch hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Conv2D expected [B,%d,H,W], got %v", c.InC, in.Shape))
	}
	batch, h, w := in.Shape[0], in.Shape[2], in.Shape[3]
	oh, ow := h-c.K+1, w-c.K+1
	kk := c.InC * c.K * c.K
	out := a.Tensor(batch, c.OutC, oh, ow)
	col := a.Floats(oh * ow * kk)
	inStride, outStride := c.InC*h*w, c.OutC*oh*ow
	for s := 0; s < batch; s++ {
		im2col(col, in.Data[s*inStride:(s+1)*inStride], c.InC, h, w, c.K, oh, ow)
		GemmNTBiasI(out.Data[s*outStride:(s+1)*outStride], c.w.Data, col, c.b.Data, c.OutC, oh*ow, kk)
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *Tensor) *Tensor {
	in := c.lastIn
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := gradOut.Shape[1], gradOut.Shape[2]
	gradIn := NewTensor(c.InC, h, w)
	for oc := 0; oc < c.OutC; oc++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				g := gradOut.Data[(oc*oh+y)*ow+x]
				if g == 0 {
					continue
				}
				c.gb.Data[oc] += g
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						inRow := in.Data[(ic*h+y+ky)*w+x:]
						giRow := gradIn.Data[(ic*h+y+ky)*w+x:]
						wRow := c.w.Data[((oc*c.InC+ic)*c.K+ky)*c.K:]
						gwRow := c.gw.Data[((oc*c.InC+ic)*c.K+ky)*c.K:]
						for kx := 0; kx < c.K; kx++ {
							gwRow[kx] += g * inRow[kx]
							giRow[kx] += g * wRow[kx]
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*Tensor { return []*Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*Tensor { return []*Tensor{c.gw, c.gb} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	return []int{c.OutC, in[1] - c.K + 1, in[2] - c.K + 1}
}

// FLOPs implements Layer.
func (c *Conv2D) FLOPs(in []int) int64 {
	oh, ow := in[1]-c.K+1, in[2]-c.K+1
	return int64(c.OutC) * int64(oh) * int64(ow) * int64(c.InC) * int64(c.K*c.K)
}

// MaxPool2D is a 2x2 max pooling layer with stride 2 over CHW tensors.
// Odd trailing rows/columns are dropped, matching common framework defaults.
type MaxPool2D struct {
	argmax  []int
	inShape []int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D creates a 2x2/stride-2 max-pool layer.
func NewMaxPool2D() *MaxPool2D { return &MaxPool2D{} }

// Forward implements Layer.
func (m *MaxPool2D) Forward(in *Tensor) *Tensor {
	ch, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := h/2, w/2
	out := NewTensor(ch, oh, ow)
	m.inShape = in.Shape
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]
	for c := 0; c < ch; c++ {
		for y := 0; y < oh; y++ {
			// The 2x2 window unrolls in the (dy, dx) scan order of the
			// original loop; strict > keeps the same argmax tie-breaking.
			base0 := (c*h + 2*y) * w
			base1 := base0 + w
			o := (c*oh + y) * ow
			for x := 0; x < ow; x++ {
				i00 := base0 + 2*x
				best, bestIdx := in.Data[i00], i00
				if v := in.Data[i00+1]; v > best {
					best, bestIdx = v, i00+1
				}
				i10 := base1 + 2*x
				if v := in.Data[i10]; v > best {
					best, bestIdx = v, i10
				}
				if v := in.Data[i10+1]; v > best {
					best, bestIdx = v, i10+1
				}
				out.Data[o+x] = best
				m.argmax[o+x] = bestIdx
			}
		}
	}
	return out
}

// ForwardBatch implements Layer: the same pooling comparisons per sample,
// no argmax recording (inference-only).
func (m *MaxPool2D) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	batch, ch, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := h/2, w/2
	out := a.Tensor(batch, ch, oh, ow)
	inStride, outStride := ch*h*w, ch*oh*ow
	for s := 0; s < batch; s++ {
		src := in.Data[s*inStride : (s+1)*inStride]
		dst := out.Data[s*outStride : (s+1)*outStride]
		for c := 0; c < ch; c++ {
			for y := 0; y < oh; y++ {
				row0 := src[(c*h+2*y)*w : (c*h+2*y)*w+w]
				row1 := src[(c*h+2*y+1)*w : (c*h+2*y+1)*w+w]
				drow := dst[(c*oh+y)*ow : (c*oh+y)*ow+ow]
				for x := 0; x < ow; x++ {
					best := row0[2*x]
					if v := row0[2*x+1]; v > best {
						best = v
					}
					if v := row1[2*x]; v > best {
						best = v
					}
					if v := row1[2*x+1]; v > best {
						best = v
					}
					drow[x] = best
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(gradOut *Tensor) *Tensor {
	gradIn := NewTensor(m.inShape...)
	for o, idx := range m.argmax {
		gradIn.Data[idx] += gradOut.Data[o]
	}
	return gradIn
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Tensor { return nil }

// Grads implements Layer.
func (m *MaxPool2D) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (m *MaxPool2D) OutShape(in []int) []int {
	return []int{in[0], in[1] / 2, in[2] / 2}
}

// FLOPs implements Layer.
func (m *MaxPool2D) FLOPs(in []int) int64 {
	return int64(in[0]) * int64(in[1]/2) * int64(in[2]/2) * 4
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask []bool
}

var _ Layer = (*ReLU)(nil)

// NewReLU creates a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.Shape...)
	if cap(r.mask) < in.Len() {
		r.mask = make([]bool, in.Len())
	}
	r.mask = r.mask[:in.Len()]
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// ForwardBatch implements Layer: elementwise rectification, no mask
// recording (inference-only).
func (r *ReLU) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	out := a.Tensor(in.Shape...)
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *Tensor) *Tensor {
	gradIn := NewTensor(gradOut.Shape...)
	for i, on := range r.mask {
		if on {
			gradIn.Data[i] = gradOut.Data[i]
		}
	}
	return gradIn
}

// Params implements Layer.
func (r *ReLU) Params() []*Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return in }

// FLOPs implements Layer.
func (r *ReLU) FLOPs(in []int) int64 {
	n := int64(1)
	for _, d := range in {
		n *= int64(d)
	}
	return n
}

// Flatten reshapes any tensor to a vector.
type Flatten struct {
	inShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten creates a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(in *Tensor) *Tensor {
	f.inShape = in.Shape
	out := &Tensor{Shape: []int{in.Len()}, Data: in.Data}
	return out
}

// ForwardBatch implements Layer: a reshaping view [B, d...] -> [B, n].
func (f *Flatten) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	batch := in.Shape[0]
	return a.View(in.Data, batch, in.Len()/batch)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *Tensor) *Tensor {
	return &Tensor{Shape: f.inShape, Data: gradOut.Data}
}

// Params implements Layer.
func (f *Flatten) Params() []*Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// FLOPs implements Layer.
func (f *Flatten) FLOPs([]int) int64 { return 0 }
