package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable stage of a network. Forward consumes an input
// tensor and produces an output tensor; Backward consumes the gradient of
// the loss w.r.t. the output and returns the gradient w.r.t. the input,
// accumulating parameter gradients internally. The per-sample pair
// (Forward/Backward) and the batched pair (ForwardBatchTrain/BackwardBatch)
// are bit-for-bit interchangeable: training a minibatch through either path
// produces identical parameter gradients (train_equiv_test.go pins this).
type Layer interface {
	// Forward runs the layer on one sample.
	Forward(in *Tensor) *Tensor
	// ForwardBatch runs the layer on a batch laid out [B, d...], one sample
	// per contiguous row, writing output to arena scratch. It is
	// inference-only: no state is recorded for Backward. Per sample the
	// float operations replay Forward exactly, so batched and per-sample
	// inference agree bit for bit at every batch size.
	ForwardBatch(in *Tensor, a *Arena) *Tensor
	// ForwardBatchTrain is ForwardBatch recording the per-sample state
	// BackwardBatch needs (inputs, pooling argmaxes, masks). The recorded
	// state lives in the arena or points into it, so it is only valid until
	// the arena's next Reset — forward, loss, and backward of one minibatch
	// must share one Reset window.
	ForwardBatchTrain(in *Tensor, a *Arena) *Tensor
	// BackwardBatch back-propagates a [B, d...] output gradient from the
	// most recent ForwardBatchTrain call and returns the [B, ...] input
	// gradient. Parameter gradients accumulate across the batch in strictly
	// ascending sample order, and within a sample in Backward's exact
	// per-accumulator term order — the same "never split or reorder an
	// accumulation" discipline as the GEMM kernels — so the accumulated
	// gradients equal a per-sample Forward/Backward loop bit for bit.
	BackwardBatch(gradOut *Tensor, a *Arena) *Tensor
	// Backward back-propagates the output gradient from the most recent
	// Forward call and returns the input gradient.
	Backward(gradOut *Tensor) *Tensor
	// Params returns the layer's parameter slices (possibly empty).
	Params() []*Tensor
	// Grads returns the gradient accumulators aligned with Params.
	Grads() []*Tensor
	// OutShape maps an input shape to the layer's output shape.
	OutShape(in []int) []int
	// FLOPs estimates multiply-accumulate operations for one forward pass
	// given the input shape.
	FLOPs(in []int) int64
}

// Dense is a fully connected layer: out = W*in + b.
type Dense struct {
	InDim, OutDim int

	w, b        *Tensor
	gw, gb      *Tensor
	lastIn      *Tensor
	lastInBatch *Tensor
}

var _ Layer = (*Dense)(nil)

// NewDense creates a dense layer with He-style initialization from rng.
func NewDense(inDim, outDim int, rng *rand.Rand) *Dense {
	d := &Dense{
		InDim:  inDim,
		OutDim: outDim,
		w:      NewTensor(outDim, inDim),
		b:      NewTensor(outDim),
		gw:     NewTensor(outDim, inDim),
		gb:     NewTensor(outDim),
	}
	scale := math.Sqrt(2 / float64(inDim))
	for i := range d.w.Data {
		d.w.Data[i] = rng.NormFloat64() * scale
	}
	return d
}

// Forward implements Layer.
func (d *Dense) Forward(in *Tensor) *Tensor {
	if in.Len() != d.InDim {
		//lint:allow panicpolicy Layer.Forward hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Dense expected %d inputs, got %d", d.InDim, in.Len()))
	}
	d.lastIn = in
	out := NewTensor(d.OutDim)
	GemmNTBiasJ(out.Data, in.Data, d.w.Data, d.b.Data, 1, d.OutDim, d.InDim)
	return out
}

// forwardNaive is the pre-GEMM reference implementation, retained so the
// equivalence tests can pin the kernel's float summation sequence to it bit
// for bit.
func (d *Dense) forwardNaive(in *Tensor) *Tensor {
	out := NewTensor(d.OutDim)
	for o := 0; o < d.OutDim; o++ {
		row := d.w.Data[o*d.InDim : (o+1)*d.InDim]
		sum := d.b.Data[o]
		for i, x := range in.Data {
			sum += row[i] * x
		}
		out.Data[o] = sum
	}
	return out
}

// ForwardBatch implements Layer: one GEMM over the whole batch. Batches of
// four or more amortize transposing the weights into arena scratch, which
// turns the GEMM into the SIMD NN form (GemmNNBiasJ, bit-identical to
// GemmNTBiasJ); tiny batches keep the transpose-free kernel.
func (d *Dense) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	batch := in.Shape[0]
	if in.Len() != batch*d.InDim {
		//lint:allow panicpolicy Layer.ForwardBatch hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Dense expected %d inputs per sample, got shape %v", d.InDim, in.Shape))
	}
	out := a.Tensor(batch, d.OutDim)
	if batch < 4 {
		GemmNTBiasJ(out.Data, in.Data, d.w.Data, d.b.Data, batch, d.OutDim, d.InDim)
		return out
	}
	wT := a.Floats(d.InDim * d.OutDim)
	transposeSIMD(wT, d.w.Data, d.OutDim, d.InDim)
	GemmNNBiasJ(out.Data, in.Data, wT, d.b.Data, batch, d.OutDim, d.InDim)
	return out
}

// ForwardBatchTrain implements Layer: the inference GEMM plus recording the
// input batch for BackwardBatch.
func (d *Dense) ForwardBatchTrain(in *Tensor, a *Arena) *Tensor {
	d.lastInBatch = in
	return d.ForwardBatch(in, a)
}

// BackwardBatch implements Layer. Batches of four or more run as two
// NN-form GEMMs whose per-element add sequences equal
// the per-sample backwardRow loop exactly: the input gradient
// gi[s][i] = sum_o gout[s][o]*w[o][i] walks o strictly ascending
// (backwardRow's axpy order, with w consumed directly as the transposed
// operand), and the weight gradient gw[o][i] += sum_s goutT[o][s]*in[s][i]
// walks samples strictly ascending (the per-sample accumulation order).
// gb accumulates from the same transposed gradient, samples ascending.
// Tiny batches keep the row loop — both paths produce identical bits.
func (d *Dense) BackwardBatch(gradOut *Tensor, a *Arena) *Tensor {
	batch := gradOut.Shape[0]
	gradIn := a.Tensor(batch, d.InDim)
	if batch < 4 {
		for s := 0; s < batch; s++ {
			gi := gradIn.Data[s*d.InDim : (s+1)*d.InDim]
			zeroFloats(gi)
			d.backwardRow(
				gradOut.Data[s*d.OutDim:(s+1)*d.OutDim],
				d.lastInBatch.Data[s*d.InDim:(s+1)*d.InDim],
				gi,
			)
		}
		return gradIn
	}
	// A zero per-row bias starts every gi accumulator at +0, the same value
	// the zeroed-then-accumulated reference starts from, without paying a
	// batch*InDim clear.
	zb := a.Floats(batch)
	zeroFloats(zb)
	GemmNNBiasILd(gradIn.Data, gradOut.Data, d.w.Data, zb, batch, d.InDim, d.OutDim, d.InDim)
	goutT := a.Floats(d.OutDim * batch)
	transposeSIMD(goutT, gradOut.Data, batch, d.OutDim)
	for o := 0; o < d.OutDim; o++ {
		s := d.gb.Data[o]
		for _, g := range goutT[o*batch : (o+1)*batch] {
			s += g
		}
		d.gb.Data[o] = s
	}
	GemmNNAccI(d.gw.Data, goutT, d.lastInBatch.Data, d.OutDim, d.InDim, batch, d.InDim)
	return gradIn
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *Tensor) *Tensor {
	gradIn := NewTensor(d.InDim)
	d.backwardRow(gradOut.Data, d.lastIn.Data, gradIn.Data)
	return gradIn
}

// backwardRow is the shared one-sample backward kernel: it accumulates gw/gb
// from (gradOut, in) and adds the input gradient into gi (callers pass a
// zeroed gi). Both the per-sample and batched paths funnel through it, which
// is what makes their gradients bit-identical by construction. Both inner
// loops are axpys: each gw element gets one add per sample and each gi
// element gets its adds in strictly increasing o order, the reference
// accumulation sequence, so the SIMD kernels preserve bits exactly.
func (d *Dense) backwardRow(gradOut, in, gi []float64) {
	n := d.InDim
	for o := 0; o < d.OutDim; o++ {
		g := gradOut[o]
		d.gb.Data[o] += g
		axpySIMD(g, in, d.gw.Data[o*n:(o+1)*n])
		axpySIMD(g, d.w.Data[o*n:(o+1)*n], gi)
	}
}

// Params implements Layer.
func (d *Dense) Params() []*Tensor { return []*Tensor{d.w, d.b} }

// Grads implements Layer.
func (d *Dense) Grads() []*Tensor { return []*Tensor{d.gw, d.gb} }

// OutShape implements Layer.
func (d *Dense) OutShape([]int) []int { return []int{d.OutDim} }

// FLOPs implements Layer.
func (d *Dense) FLOPs([]int) int64 { return int64(d.InDim) * int64(d.OutDim) }

// Conv2D is a 2-D convolution with stride 1 and valid padding over CHW
// tensors.
type Conv2D struct {
	InC, OutC, K int

	w, b   *Tensor // w: [OutC, InC, K, K]
	gw, gb *Tensor
	lastIn *Tensor
	// fwd is the layer-owned arena backing single-sample Forward's im2col
	// scratch AND its output tensor (training shares a network per caller,
	// never across goroutines); grow-only, so steady-state forwards perform
	// zero heap allocations. The returned output is therefore only valid
	// until the layer's next Forward call — every in-repo consumer (the next
	// layer's Forward, loss helpers) reads it immediately.
	fwd Arena
	// lastColBatch is the im2col batch recorded by ForwardBatchTrain for the
	// weight-gradient accumulation in BackwardBatch; it points into the
	// caller's arena and is valid until that arena's next Reset.
	lastColBatch []float64
}

var _ Layer = (*Conv2D)(nil)

// NewConv2D creates a convolution layer with He initialization.
func NewConv2D(inC, outC, k int, rng *rand.Rand) *Conv2D {
	c := &Conv2D{
		InC:  inC,
		OutC: outC,
		K:    k,
		w:    NewTensor(outC, inC, k, k),
		b:    NewTensor(outC),
		gw:   NewTensor(outC, inC, k, k),
		gb:   NewTensor(outC),
	}
	fanIn := float64(inC * k * k)
	scale := math.Sqrt(2 / fanIn)
	for i := range c.w.Data {
		c.w.Data[i] = rng.NormFloat64() * scale
	}
	return c
}

func (c *Conv2D) wAt(oc, ic, ky, kx int) float64 {
	return c.w.Data[((oc*c.InC+ic)*c.K+ky)*c.K+kx]
}

func (c *Conv2D) gwAdd(oc, ic, ky, kx int, v float64) {
	c.gw.Data[((oc*c.InC+ic)*c.K+ky)*c.K+kx] += v
}

// Forward implements Layer: transposed im2col then one NN-form GEMM. The
// patch order matches the naive loop's (ic, ky, kx) accumulation order and
// the GEMM never splits the K dimension, so the output is bit-for-bit
// identical to forwardNaive (pinned by the equivalence tests). Output and
// scratch live in the layer-owned arena: the returned tensor is valid until
// the next Forward call on this layer, and steady-state calls do not
// allocate.
func (c *Conv2D) Forward(in *Tensor) *Tensor {
	if len(in.Shape) != 3 || in.Shape[0] != c.InC {
		//lint:allow panicpolicy Layer.Forward hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Conv2D expected [%d,H,W], got %v", c.InC, in.Shape))
	}
	c.lastIn = in
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := h-c.K+1, w-c.K+1
	kk := c.InC * c.K * c.K
	np := oh * ow
	c.fwd.Reset()
	out := c.fwd.Tensor(c.OutC, oh, ow)
	colT := c.fwd.Floats(np * kk)
	im2colT(colT, 0, np, in.Data, c.InC, h, w, c.K, oh, ow)
	GemmNNBiasI(out.Data, c.w.Data, colT, c.b.Data, c.OutC, np, kk)
	return out
}

// forwardNaive is the pre-im2col reference implementation, retained so the
// equivalence tests can pin the kernel's float summation sequence to it bit
// for bit.
func (c *Conv2D) forwardNaive(in *Tensor) *Tensor {
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := h-c.K+1, w-c.K+1
	out := NewTensor(c.OutC, oh, ow)
	for oc := 0; oc < c.OutC; oc++ {
		bias := c.b.Data[oc]
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				sum := bias
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						inRow := in.Data[(ic*h+y+ky)*w+x:]
						wRow := c.w.Data[((oc*c.InC+ic)*c.K+ky)*c.K:]
						for kx := 0; kx < c.K; kx++ {
							sum += wRow[kx] * inRow[kx]
						}
					}
				}
				out.Data[(oc*oh+y)*ow+x] = sum
			}
		}
	}
	return out
}

// ForwardBatch implements Layer: every sample's transposed im2col columns
// are packed side by side into one wide matrix, and each sample's column
// slice is convolved straight into its own [OutC, oh, ow] output rows with
// the strided NN-form GEMM (GemmNNBiasILd) — no intermediate scratch or
// permutation pass. Each output element's accumulation sequence is unchanged
// from the per-sample GEMM, so outputs stay bit-identical.
func (c *Conv2D) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	if len(in.Shape) != 4 || in.Shape[1] != c.InC {
		//lint:allow panicpolicy Layer.ForwardBatch hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Conv2D expected [B,%d,H,W], got %v", c.InC, in.Shape))
	}
	return c.forwardBatchNN(in, a)
}

func (c *Conv2D) forwardBatchNN(in *Tensor, a *Arena) *Tensor {
	batch, h, w := in.Shape[0], in.Shape[2], in.Shape[3]
	oh, ow := h-c.K+1, w-c.K+1
	kk := c.InC * c.K * c.K
	np := oh * ow
	ld := batch * np
	out := a.Tensor(batch, c.OutC, oh, ow)
	colT := a.Floats(kk * ld)
	inStride := c.InC * h * w
	for s := 0; s < batch; s++ {
		im2colT(colT, s*np, ld, in.Data[s*inStride:(s+1)*inStride], c.InC, h, w, c.K, oh, ow)
	}
	outStride := c.OutC * np
	for s := 0; s < batch; s++ {
		GemmNNBiasILd(out.Data[s*outStride:(s+1)*outStride], c.w.Data, colT[s*np:], c.b.Data, c.OutC, np, kk, ld)
	}
	return out
}

// ForwardBatchTrain implements Layer: the batch-wide NN-form GEMM plus a
// p-major im2col recording of every sample (in the caller's arena) so
// BackwardBatch can accumulate weight gradients from contiguous patch rows.
func (c *Conv2D) ForwardBatchTrain(in *Tensor, a *Arena) *Tensor {
	if len(in.Shape) != 4 || in.Shape[1] != c.InC {
		//lint:allow panicpolicy Layer.ForwardBatchTrain hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: Conv2D expected [B,%d,H,W], got %v", c.InC, in.Shape))
	}
	out := c.forwardBatchNN(in, a)
	batch, h, w := in.Shape[0], in.Shape[2], in.Shape[3]
	oh, ow := h-c.K+1, w-c.K+1
	colStride := oh * ow * c.InC * c.K * c.K
	c.lastColBatch = a.Floats(batch * colStride)
	inStride := c.InC * h * w
	for s := 0; s < batch; s++ {
		im2col(c.lastColBatch[s*colStride:(s+1)*colStride],
			in.Data[s*inStride:(s+1)*inStride], c.InC, h, w, c.K, oh, ow)
	}
	return out
}

// BackwardBatch implements Layer: per sample in ascending sample order,
// backwardSample accumulates the weight, bias, and input gradients from the
// recorded im2col rows — exactly Backward's per-element add order. The
// pooling argmax scatter and ReLU masking upstream leave most gradient
// entries zero, so the g == 0 skip (shared with Backward) prunes the bulk of
// the work; a dense GEMM over the same rows was measured slower for exactly
// that reason. The input gradient keeps Backward's naive scatter because a
// col2im-style pre-reduction over output channels would reassociate sums.
func (c *Conv2D) BackwardBatch(gradOut *Tensor, a *Arena) *Tensor {
	batch, oh, ow := gradOut.Shape[0], gradOut.Shape[2], gradOut.Shape[3]
	h, w := oh+c.K-1, ow+c.K-1
	kk := c.InC * c.K * c.K
	np := oh * ow
	colStride := np * kk
	gradIn := a.Tensor(batch, c.InC, h, w)
	zeroFloats(gradIn.Data)
	inStride, outStride := c.InC*h*w, c.OutC*np
	for s := 0; s < batch; s++ {
		g := gradOut.Data[s*outStride : (s+1)*outStride]
		c.backwardSample(g, c.lastColBatch[s*colStride:(s+1)*colStride],
			gradIn.Data[s*inStride:(s+1)*inStride], h, w, oh, ow)
	}
	return gradIn
}

// backwardSample accumulates one sample's contribution to gw and gb and adds
// its input gradient into gi (callers pass a zeroed gi). It replays
// Backward's loop nest — (oc, y, x) outer with the g == 0 skip, so each
// gradient row is scanned exactly once — term for term: per surviving
// element, gw gets one axpy over the patch's im2col row (the (ic, ky, kx)
// order Backward walks), then gi gets the weight-row scatter, with the
// ubiquitous 3x3 case handled by the fused conv3x3BwdSIMD kernel.
func (c *Conv2D) backwardSample(g, col, gi []float64, h, w, oh, ow int) {
	kk := c.InC * c.K * c.K
	for oc := 0; oc < c.OutC; oc++ {
		wAll := c.w.Data[oc*kk : (oc+1)*kk]
		gwAll := c.gw.Data[oc*kk : (oc+1)*kk]
		for y := 0; y < oh; y++ {
			grow := g[(oc*oh+y)*ow : (oc*oh+y)*ow+ow]
			if c.K == 3 {
				for x, gv := range grow {
					if gv == 0 {
						continue
					}
					c.gb.Data[oc] += gv
					crow := col[(y*ow+x)*kk : (y*ow+x+1)*kk]
					conv3x3BwdSIMD(gv, wAll, crow, gwAll, gi[y*w+x:], w, h*w, c.InC)
				}
				continue
			}
			for x, gv := range grow {
				if gv == 0 {
					continue
				}
				c.gb.Data[oc] += gv
				crow := col[(y*ow+x)*kk : (y*ow+x+1)*kk]
				if kk >= 48 {
					axpySIMD(gv, crow, gwAll)
				} else {
					for i, cv := range crow {
						gwAll[i] += gv * cv
					}
				}
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						giRow := gi[(ic*h+y+ky)*w+x:]
						wRow := wAll[(ic*c.K+ky)*c.K:]
						for kx := 0; kx < c.K; kx++ {
							giRow[kx] += gv * wRow[kx]
						}
					}
				}
			}
		}
	}
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *Tensor) *Tensor {
	in := c.lastIn
	h, w := in.Shape[1], in.Shape[2]
	oh, ow := gradOut.Shape[1], gradOut.Shape[2]
	gradIn := NewTensor(c.InC, h, w)
	for oc := 0; oc < c.OutC; oc++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				g := gradOut.Data[(oc*oh+y)*ow+x]
				if g == 0 {
					continue
				}
				c.gb.Data[oc] += g
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.K; ky++ {
						inRow := in.Data[(ic*h+y+ky)*w+x:]
						giRow := gradIn.Data[(ic*h+y+ky)*w+x:]
						wRow := c.w.Data[((oc*c.InC+ic)*c.K+ky)*c.K:]
						gwRow := c.gw.Data[((oc*c.InC+ic)*c.K+ky)*c.K:]
						for kx := 0; kx < c.K; kx++ {
							gwRow[kx] += g * inRow[kx]
							giRow[kx] += g * wRow[kx]
						}
					}
				}
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []*Tensor { return []*Tensor{c.w, c.b} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*Tensor { return []*Tensor{c.gw, c.gb} }

// OutShape implements Layer.
func (c *Conv2D) OutShape(in []int) []int {
	return []int{c.OutC, in[1] - c.K + 1, in[2] - c.K + 1}
}

// FLOPs implements Layer.
func (c *Conv2D) FLOPs(in []int) int64 {
	oh, ow := in[1]-c.K+1, in[2]-c.K+1
	return int64(c.OutC) * int64(oh) * int64(ow) * int64(c.InC) * int64(c.K*c.K)
}

// MaxPool2D is a 2x2 max pooling layer with stride 2 over CHW tensors.
// Odd trailing rows/columns are dropped, matching common framework defaults.
type MaxPool2D struct {
	argmax  []int
	inShape []int
	// argmaxBatch points into the training arena (valid until its Reset);
	// batchInShape is a layer-owned grow-only copy of the last batch shape.
	argmaxBatch  []int
	batchInShape []int
}

var _ Layer = (*MaxPool2D)(nil)

// NewMaxPool2D creates a 2x2/stride-2 max-pool layer.
func NewMaxPool2D() *MaxPool2D { return &MaxPool2D{} }

// Forward implements Layer.
func (m *MaxPool2D) Forward(in *Tensor) *Tensor {
	ch, h, w := in.Shape[0], in.Shape[1], in.Shape[2]
	oh, ow := h/2, w/2
	out := NewTensor(ch, oh, ow)
	m.inShape = in.Shape
	if cap(m.argmax) < out.Len() {
		m.argmax = make([]int, out.Len())
	}
	m.argmax = m.argmax[:out.Len()]
	for c := 0; c < ch; c++ {
		for y := 0; y < oh; y++ {
			// The 2x2 window unrolls in the (dy, dx) scan order of the
			// original loop; strict > keeps the same argmax tie-breaking.
			base0 := (c*h + 2*y) * w
			base1 := base0 + w
			o := (c*oh + y) * ow
			for x := 0; x < ow; x++ {
				i00 := base0 + 2*x
				best, bestIdx := in.Data[i00], i00
				if v := in.Data[i00+1]; v > best {
					best, bestIdx = v, i00+1
				}
				i10 := base1 + 2*x
				if v := in.Data[i10]; v > best {
					best, bestIdx = v, i10
				}
				if v := in.Data[i10+1]; v > best {
					best, bestIdx = v, i10+1
				}
				out.Data[o+x] = best
				m.argmax[o+x] = bestIdx
			}
		}
	}
	return out
}

// ForwardBatch implements Layer: the same pooling comparisons per sample,
// no argmax recording (inference-only).
func (m *MaxPool2D) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	batch, ch, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := h/2, w/2
	out := a.Tensor(batch, ch, oh, ow)
	inStride, outStride := ch*h*w, ch*oh*ow
	for s := 0; s < batch; s++ {
		src := in.Data[s*inStride : (s+1)*inStride]
		dst := out.Data[s*outStride : (s+1)*outStride]
		for c := 0; c < ch; c++ {
			for y := 0; y < oh; y++ {
				row0 := src[(c*h+2*y)*w : (c*h+2*y)*w+w]
				row1 := src[(c*h+2*y+1)*w : (c*h+2*y+1)*w+w]
				drow := dst[(c*oh+y)*ow : (c*oh+y)*ow+ow]
				pool2x2SIMD(drow, row0, row1)
			}
		}
	}
	return out
}

// ForwardBatchTrain implements Layer: the inference comparisons plus a
// per-sample argmax record (sample-relative indices, mirroring Forward's
// in-sample absolute indices and its strict-> tie-breaking).
func (m *MaxPool2D) ForwardBatchTrain(in *Tensor, a *Arena) *Tensor {
	batch, ch, h, w := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	oh, ow := h/2, w/2
	out := a.Tensor(batch, ch, oh, ow)
	m.batchInShape = append(m.batchInShape[:0], in.Shape...)
	inStride, outStride := ch*h*w, ch*oh*ow
	m.argmaxBatch = a.Ints(batch * outStride)
	for s := 0; s < batch; s++ {
		src := in.Data[s*inStride : (s+1)*inStride]
		dst := out.Data[s*outStride : (s+1)*outStride]
		am := m.argmaxBatch[s*outStride : (s+1)*outStride]
		for c := 0; c < ch; c++ {
			for y := 0; y < oh; y++ {
				base0 := (c*h + 2*y) * w
				base1 := base0 + w
				o := (c*oh + y) * ow
				for x := 0; x < ow; x++ {
					i00 := base0 + 2*x
					best, bestIdx := src[i00], i00
					if v := src[i00+1]; v > best {
						best, bestIdx = v, i00+1
					}
					i10 := base1 + 2*x
					if v := src[i10]; v > best {
						best, bestIdx = v, i10
					}
					if v := src[i10+1]; v > best {
						best, bestIdx = v, i10+1
					}
					dst[o+x] = best
					am[o+x] = bestIdx
				}
			}
		}
	}
	return out
}

// BackwardBatch implements Layer: Backward's argmax scatter per sample.
func (m *MaxPool2D) BackwardBatch(gradOut *Tensor, a *Arena) *Tensor {
	gradIn := a.Tensor(m.batchInShape...)
	zeroFloats(gradIn.Data)
	batch := m.batchInShape[0]
	inStride := gradIn.Len() / batch
	outStride := gradOut.Len() / batch
	for s := 0; s < batch; s++ {
		gi := gradIn.Data[s*inStride : (s+1)*inStride]
		g := gradOut.Data[s*outStride : (s+1)*outStride]
		am := m.argmaxBatch[s*outStride : (s+1)*outStride]
		for o, idx := range am {
			gi[idx] += g[o]
		}
	}
	return gradIn
}

// Backward implements Layer.
func (m *MaxPool2D) Backward(gradOut *Tensor) *Tensor {
	gradIn := NewTensor(m.inShape...)
	for o, idx := range m.argmax {
		gradIn.Data[idx] += gradOut.Data[o]
	}
	return gradIn
}

// Params implements Layer.
func (m *MaxPool2D) Params() []*Tensor { return nil }

// Grads implements Layer.
func (m *MaxPool2D) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (m *MaxPool2D) OutShape(in []int) []int {
	return []int{in[0], in[1] / 2, in[2] / 2}
}

// FLOPs implements Layer.
func (m *MaxPool2D) FLOPs(in []int) int64 {
	return int64(in[0]) * int64(in[1]/2) * int64(in[2]/2) * 4
}

// ReLU is the rectified linear activation.
type ReLU struct {
	mask        []bool
	lastInBatch *Tensor
}

var _ Layer = (*ReLU)(nil)

// NewReLU creates a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(in *Tensor) *Tensor {
	out := NewTensor(in.Shape...)
	if cap(r.mask) < in.Len() {
		r.mask = make([]bool, in.Len())
	}
	r.mask = r.mask[:in.Len()]
	for i, v := range in.Data {
		if v > 0 {
			out.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return out
}

// ForwardBatch implements Layer: elementwise rectification, no mask
// recording (inference-only).
func (r *ReLU) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	out := a.Tensor(in.Shape...)
	reluFwdSIMD(out.Data, in.Data)
	return out
}

// ForwardBatchTrain implements Layer: rectification recording the input
// batch (v > 0 is the backward mask, recomputed from it).
func (r *ReLU) ForwardBatchTrain(in *Tensor, a *Arena) *Tensor {
	r.lastInBatch = in
	return r.ForwardBatch(in, a)
}

// BackwardBatch implements Layer: gradient passes where the input was
// positive, literal zero elsewhere (matching Backward's zeroed gradIn).
func (r *ReLU) BackwardBatch(gradOut *Tensor, a *Arena) *Tensor {
	gradIn := a.Tensor(gradOut.Shape...)
	reluBwdSIMD(gradIn.Data, gradOut.Data, r.lastInBatch.Data)
	return gradIn
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *Tensor) *Tensor {
	gradIn := NewTensor(gradOut.Shape...)
	for i, on := range r.mask {
		if on {
			gradIn.Data[i] = gradOut.Data[i]
		}
	}
	return gradIn
}

// Params implements Layer.
func (r *ReLU) Params() []*Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return in }

// FLOPs implements Layer.
func (r *ReLU) FLOPs(in []int) int64 {
	n := int64(1)
	for _, d := range in {
		n *= int64(d)
	}
	return n
}

// Flatten reshapes any tensor to a vector.
type Flatten struct {
	inShape      []int
	batchInShape []int
}

var _ Layer = (*Flatten)(nil)

// NewFlatten creates a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(in *Tensor) *Tensor {
	f.inShape = in.Shape
	out := &Tensor{Shape: []int{in.Len()}, Data: in.Data}
	return out
}

// ForwardBatch implements Layer: a reshaping view [B, d...] -> [B, n].
func (f *Flatten) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	batch := in.Shape[0]
	return a.View(in.Data, batch, in.Len()/batch)
}

// ForwardBatchTrain implements Layer: the reshaping view plus recording the
// batch shape for the backward reshape.
func (f *Flatten) ForwardBatchTrain(in *Tensor, a *Arena) *Tensor {
	f.batchInShape = append(f.batchInShape[:0], in.Shape...)
	return f.ForwardBatch(in, a)
}

// BackwardBatch implements Layer: a reshaping view back to the input shape.
func (f *Flatten) BackwardBatch(gradOut *Tensor, a *Arena) *Tensor {
	return a.View(gradOut.Data, f.batchInShape...)
}

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *Tensor) *Tensor {
	return &Tensor{Shape: f.inShape, Data: gradOut.Data}
}

// Params implements Layer.
func (f *Flatten) Params() []*Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*Tensor { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// FLOPs implements Layer.
func (f *Flatten) FLOPs([]int) int64 { return 0 }
