//go:build arm64

package nn

import (
	"math/rand"
	"testing"
)

// Cross-tier bit-identity for the NEON INT8 kernels: qdotRowNEON and
// qdot2NEON must reproduce qdotRowRef's int32 wraparound bits on their whole
// vector-width-multiple domain (the dispatcher routes everything else to the
// reference). This is the arm64 counterpart of TestQdotRowTiersBitIdentical
// / TestQdot2TiersBitIdentical: it runs on arm64 hardware or under
// emulation, and is the runtime pin for the WORD-encoded
// SMULL/SMULL2/SADALP core.
func TestQdotNEONTiersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for _, k := range []int{16, 32, 48, 64, 160, 400} {
		for _, n := range []int{1, 2, 3, 5, 7, 8, 11} {
			a0 := randInt8(rng, k)
			a1 := randInt8(rng, k)
			b := randInt8(rng, n*k)
			for p := 0; p < k; p++ { // ±127 extremes in row 0 of b
				if p%2 == 0 {
					b[p] = 127
				} else {
					b[p] = -127
				}
			}
			for p := 0; p < k; p++ { // all-(-128) a1: extreme row sums
				a1[p] = -128
			}
			want0, want1 := make([]int32, n), make([]int32, n)
			qdotRowRef(want0, a0, b, n, k)
			qdotRowRef(want1, a1, b, n, k)
			got := make([]int32, n)
			qdotRowNEON(got, a0, b, n, k)
			for j := range want0 {
				if got[j] != want0[j] {
					t.Fatalf("qdotRowNEON n=%d k=%d row %d: %d != ref %d", n, k, j, got[j], want0[j])
				}
			}
			got0, got1 := make([]int32, n), make([]int32, n)
			qdot2NEON(got0, got1, a0, a1, b, n, k)
			for j := range want0 {
				if got0[j] != want0[j] || got1[j] != want1[j] {
					t.Fatalf("qdot2NEON n=%d k=%d row %d: (%d, %d) != ref (%d, %d)",
						n, k, j, got0[j], got1[j], want0[j], want1[j])
				}
			}
		}
	}
	// Random fuzz over the same domain.
	for iter := 0; iter < 150; iter++ {
		k := 16 * (1 + rng.Intn(25))
		n := 1 + rng.Intn(13)
		a0 := randInt8(rng, k)
		a1 := randInt8(rng, k)
		b := randInt8(rng, n*k)
		want0, want1 := make([]int32, n), make([]int32, n)
		qdotRowRef(want0, a0, b, n, k)
		qdotRowRef(want1, a1, b, n, k)
		got0, got1 := make([]int32, n), make([]int32, n)
		qdot2NEON(got0, got1, a0, a1, b, n, k)
		qdotRowNEON(got0, a0, b, n, k) // row kernel overwrites row 0: must agree too
		for j := range want0 {
			if got0[j] != want0[j] || got1[j] != want1[j] {
				t.Fatalf("NEON fuzz n=%d k=%d row %d: (%d, %d) != ref (%d, %d)",
					n, k, j, got0[j], got1[j], want0[j], want1[j])
			}
		}
	}
}
