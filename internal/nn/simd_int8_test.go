package nn

import (
	"math"
	"math/rand"
	"testing"
)

// Platform-independent pinning of the INT8 kernel layer: the requantization
// golden vectors below are the spec (DESIGN.md §9) — every tier funnels
// through the same scalar requantize, and qdotRowSIMD (whatever tier is
// active) must reproduce qdotRowRef's int32 wraparound bits exactly.

func TestQuantMultiplierGolden(t *testing.T) {
	cases := []struct {
		M     float64
		m     int32
		shift int
	}{
		{0, 0, 0},
		{1, 1 << 30, 30},
		{0.5, 1 << 30, 31},
		{0.25, 1 << 30, 32},
		{2, 1 << 30, 29},
		{0.75, 3 << 29, 31},
		{1.0 / 3, 1431655765, 32},
		// frac rounds up to exactly 1.0: must renormalize, not overflow.
		{math.Nextafter(1, 0), 1 << 30, 30},
		// Degenerate huge ratio: negative shift (left-shift requant path).
		{float64(uint64(1) << 33), 1 << 30, -3},
	}
	for _, c := range cases {
		m, shift := quantMultiplier(c.M)
		if m != c.m || shift != c.shift {
			t.Errorf("quantMultiplier(%g) = (%d, %d), want (%d, %d)", c.M, m, shift, c.m, c.shift)
		}
	}
	// Normalization invariant: m in [2^30, 2^31) for any positive M.
	for _, M := range []float64{1e-9, 0.1, 0.9, 1.1, 3.7, 126.99, 1e9} {
		m, _ := quantMultiplier(M)
		if m < 1<<30 || int64(m) >= 1<<31 {
			t.Errorf("quantMultiplier(%g) multiplier %d outside [2^30, 2^31)", M, m)
		}
	}
}

func TestRequantizeGolden(t *testing.T) {
	mHalf, sHalf := quantMultiplier(0.5) // (2^30, 31)
	mOne, sOne := quantMultiplier(1)     // (2^30, 30)
	cases := []struct {
		name      string
		acc, m    int32
		shift     int
		want      int8
	}{
		{"exact", 2, mHalf, sHalf, 1},
		{"tie-positive-rounds-up", 1, mHalf, sHalf, 1},    // +0.5 -> 1
		{"tie-negative-rounds-up", -1, mHalf, sHalf, 0},   // -0.5 -> 0
		{"tie-positive-odd", 3, mHalf, sHalf, 2},          // +1.5 -> 2
		{"tie-negative-odd", -3, mHalf, sHalf, -1},        // -1.5 -> -1
		{"identity", 100, mOne, sOne, 100},
		{"saturate-positive", 1000, mOne, sOne, 127},
		{"saturate-negative", -1000, mOne, sOne, -127},
		{"zero-multiplier", 12345, 0, 0, 0},
		{"negative-shift-saturates", 1, 1 << 30, -2, 127},
		{"negative-shift-saturates-neg", -1, 1 << 30, -2, -127},
	}
	for _, c := range cases {
		if got := requantize(c.acc, c.m, c.shift); got != c.want {
			t.Errorf("%s: requantize(%d, %d, %d) = %d, want %d", c.name, c.acc, c.m, c.shift, got, c.want)
		}
	}
	// Symmetric clamp: no input reaches -128.
	for acc := int32(-100000); acc <= 100000; acc += 37 {
		if got := requantize(acc, mOne, sOne); got < -127 {
			t.Fatalf("requantize(%d) = %d breaches the symmetric clamp", acc, got)
		}
	}
}

// TestRequantizeRowMatchesSpec pins the hoisted row helpers against the
// scalar spec: requantizeRow / requantizeRowPerCol must produce exactly
// max(requantize(acc+bias, m, shift), lo) for every element — including the
// degenerate shift <= 0 path and both clamp bounds (lo = -127 plain, lo = 0
// fused ReLU, which is exact because relu ∘ clamp == clamp-to-[0,127]).
func TestRequantizeRowMatchesSpec(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(40)
		m := int32(1<<30 + rng.Intn(1<<30)) // quantMultiplier range [2^30, 2^31)
		shift := rng.Intn(40) - 3           // includes the shift <= 0 cold path
		bias := make([]int32, n)
		acc := make([]int32, n)
		for j := range acc {
			acc[j] = int32(rng.Uint32()) % 2_000_000
			bias[j] = int32(rng.Intn(1<<20) - 1<<19)
		}
		for _, lo := range []int8{-127, 0} {
			got := make([]int8, n)
			requantizeRow(got, acc, bias[0], m, shift, lo)
			for j, v := range acc {
				if want := max(requantize(v+bias[0], m, shift), lo); got[j] != want {
					t.Fatalf("requantizeRow(m=%d shift=%d lo=%d)[%d]: %d != spec %d", m, shift, lo, j, got[j], want)
				}
			}
			requantizeRowPerCol(got, acc, bias, m, shift, lo)
			for j, v := range acc {
				if want := max(requantize(v+bias[j], m, shift), lo); got[j] != want {
					t.Fatalf("requantizeRowPerCol(m=%d shift=%d lo=%d)[%d]: %d != spec %d", m, shift, lo, j, got[j], want)
				}
			}
		}
	}
}

func TestQuantizeActsSpecials(t *testing.T) {
	src := []float64{
		0, 1, -1, 0.5, -0.5, 1.5, -1.5, // ties: round-half-away-from-zero
		math.NaN(), math.Inf(1), math.Inf(-1),
		200, -200, 126.4, 127.5,
	}
	dst := make([]int8, len(src))
	quantizeActs(dst, src, 1)
	want := []int8{0, 1, -1, 1, -1, 2, -2, 0, 127, -127, 127, -127, 126, 127}
	for i, w := range want {
		if dst[i] != w {
			t.Errorf("quantizeActs[%d] (src %g) = %d, want %d", i, src[i], dst[i], w)
		}
	}
}

func TestQuantizeWeightsRoundTripsOracle(t *testing.T) {
	// ApplyTo must replay QuantizeInPlace bit for bit — the boundary that
	// keeps the shared int8 zoo storage byte-identical to the committed
	// fake-quant results. Includes an all-zero tensor (zero-scale skip).
	rng := rand.New(rand.NewSource(7))
	net := BuildMLP("m", []int{16}, 12, 8, 4, rng)
	zeroed := BuildMLP("z", []int{16}, 12, 8, 4, rng)
	for _, p := range zeroed.Layers[1].Params() {
		for i := range p.Data {
			p.Data[i] = 0
		}
	}
	for _, n := range []*Network{net, zeroed} {
		var oracleBuf, sharedBuf [][]float64
		oracle := clone(t, n)
		QuantizeInPlace(oracle)
		shared := clone(t, n)
		qw := QuantizeWeights(shared)
		if err := qw.ApplyTo(shared); err != nil {
			t.Fatal(err)
		}
		for _, l := range oracle.Layers {
			for _, p := range l.Params() {
				oracleBuf = append(oracleBuf, p.Data)
			}
		}
		for _, l := range shared.Layers {
			for _, p := range l.Params() {
				sharedBuf = append(sharedBuf, p.Data)
			}
		}
		for i := range oracleBuf {
			for j := range oracleBuf[i] {
				if math.Float64bits(oracleBuf[i][j]) != math.Float64bits(sharedBuf[i][j]) {
					t.Fatalf("tensor %d value %d: ApplyTo %v != QuantizeInPlace %v", i, j, sharedBuf[i][j], oracleBuf[i][j])
				}
			}
		}
		if qw.ParamBytes() >= n.NumParams()*8/4 {
			t.Fatalf("ParamBytes %d is not < 1/4 of the float64 resident size %d", qw.ParamBytes(), n.NumParams()*8)
		}
	}
}

func clone(t *testing.T, n *Network) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	c := BuildMLP(n.Name, n.InShape(), 12, 8, 4, rng)
	src, dst := paramsOf(n), paramsOf(c)
	for i := range src {
		copy(dst[i].Data, src[i].Data)
	}
	return c
}

func paramsOf(n *Network) []*Tensor {
	var ps []*Tensor
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// TestQdotRowSIMDMatchesRef pins the active qdotRowSIMD tier against the
// scalar reference on every tail length (the SSE2 kernel's vector loop
// engages at k=16, AVX2's at 16 and 32, so 0..70 crosses every boundary),
// with ±127 saturation patterns mixed into the random operands.
func TestQdotRowSIMDMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for k := 0; k <= 70; k++ {
		for _, n := range []int{1, 2, 3, 5, 8} {
			a := randInt8(rng, k)
			b := randInt8(rng, n*k)
			// Saturation extremes in the first row.
			for p := 0; p < k; p++ {
				if p%2 == 0 {
					b[p] = 127
				} else {
					b[p] = -127
				}
			}
			want := make([]int32, n)
			got := make([]int32, n)
			qdotRowRef(want, a, b, n, k)
			qdotRowSIMD(got, a, b, n, k)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("n=%d k=%d row %d: qdotRowSIMD %d != ref %d", n, k, j, got[j], want[j])
				}
			}
		}
	}
}

// TestQdotRowSIMDSaturationExtremes drives maximum-magnitude accumulations
// (all ±127) across the vector-width boundaries.
func TestQdotRowSIMDSaturationExtremes(t *testing.T) {
	for _, k := range []int{1, 15, 16, 17, 31, 32, 33, 64, 100} {
		for _, sign := range []int8{127, -127} {
			a := make([]int8, k)
			b := make([]int8, 2*k)
			for i := range a {
				a[i] = 127
			}
			for i := range b {
				b[i] = sign
			}
			want := make([]int32, 2)
			got := make([]int32, 2)
			qdotRowRef(want, a, b, 2, k)
			qdotRowSIMD(got, a, b, 2, k)
			if got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("k=%d sign=%d: qdotRowSIMD %v != ref %v", k, sign, got, want)
			}
			if want[0] != int32(k)*127*int32(sign) {
				t.Fatalf("k=%d sign=%d: reference %d is not k*127*sign", k, sign, want[0])
			}
		}
	}
}

// TestQdotRowSIMDFuzzShapes is the fuzz-style random-shape equivalence run:
// 300 random (n, k) shapes with random operands against the naive int32
// reference.
func TestQdotRowSIMDFuzzShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(12)
		k := rng.Intn(200)
		a := randInt8(rng, k)
		b := randInt8(rng, n*k)
		want := make([]int32, n)
		got := make([]int32, n)
		qdotRowRef(want, a, b, n, k)
		qdotRowSIMD(got, a, b, n, k)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iter %d n=%d k=%d row %d: %d != %d", iter, n, k, j, got[j], want[j])
			}
		}
	}
}

func TestIm2colQMatchesFloatLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, c := range []struct{ inC, h, w, kh int }{
		{1, 8, 8, 3}, {3, 10, 9, 3}, {2, 9, 9, 5}, {4, 7, 6, 2}, {1, 5, 5, 1},
	} {
		oh, ow := c.h-c.kh+1, c.w-c.kh+1
		src8 := randInt8(rng, c.inC*c.h*c.w)
		srcF := make([]float64, len(src8))
		for i, v := range src8 {
			srcF[i] = float64(v)
		}
		kk := c.inC * c.kh * c.kh
		dst8 := make([]int8, oh*ow*kk)
		dstF := make([]float64, oh*ow*kk)
		im2colQ(dst8, src8, c.inC, c.h, c.w, c.kh, oh, ow, kk)
		im2col(dstF, srcF, c.inC, c.h, c.w, c.kh, oh, ow)
		for i := range dst8 {
			if float64(dst8[i]) != dstF[i] {
				t.Fatalf("%+v: im2colQ[%d] = %d, float im2col has %g", c, i, dst8[i], dstF[i])
			}
		}
		// Padded stride: every patch must land at p*ld with the pad bytes
		// untouched (the engine relies on exactly this to skip re-zeroing).
		ld := padTo16(kk)
		pad := make([]int8, oh*ow*ld)
		for i := range pad {
			pad[i] = -86 // sentinel
		}
		im2colQ(pad, src8, c.inC, c.h, c.w, c.kh, oh, ow, ld)
		for p := 0; p < oh*ow; p++ {
			for j := 0; j < kk; j++ {
				if pad[p*ld+j] != dst8[p*kk+j] {
					t.Fatalf("%+v: padded im2colQ patch %d elem %d = %d, want %d", c, p, j, pad[p*ld+j], dst8[p*kk+j])
				}
			}
			for j := kk; j < ld; j++ {
				if pad[p*ld+j] != -86 {
					t.Fatalf("%+v: padded im2colQ wrote pad byte %d of patch %d", c, j, p)
				}
			}
		}
	}
}

// TestQdot2SIMDMatchesRef pins the dual-row kernel (whatever tier is active)
// against two reference passes: shared-b amortization regroups the
// wraparound sums but cannot change them. Covers the asm fast path (k a
// multiple of 16), the fallback path (odd k), and the qgemmNT driver that
// pairs rows over it, with ±127 extremes mixed in.
func TestQdot2SIMDMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, k := range []int{0, 1, 7, 15, 16, 17, 31, 32, 33, 48, 100, 160} {
		for _, n := range []int{1, 2, 5} {
			a0 := randInt8(rng, k)
			a1 := randInt8(rng, k)
			b := randInt8(rng, n*k)
			for p := 0; p < k; p++ { // saturation extremes in a1
				if p%2 == 0 {
					a1[p] = 127
				} else {
					a1[p] = -127
				}
			}
			want0, want1 := make([]int32, n), make([]int32, n)
			qdotRowRef(want0, a0, b, n, k)
			qdotRowRef(want1, a1, b, n, k)
			got0, got1 := make([]int32, n), make([]int32, n)
			qdot2SIMD(got0, got1, a0, a1, b, n, k)
			for j := 0; j < n; j++ {
				if got0[j] != want0[j] || got1[j] != want1[j] {
					t.Fatalf("n=%d k=%d row %d: qdot2SIMD (%d, %d) != ref (%d, %d)", n, k, j, got0[j], got1[j], want0[j], want1[j])
				}
			}
		}
	}
	// qgemmNT: odd and even m, against a row-by-row reference.
	for _, m := range []int{1, 2, 3, 8, 9} {
		const n, k = 6, 48
		a := randInt8(rng, m*k)
		b := randInt8(rng, n*k)
		want := make([]int32, m*n)
		for i := 0; i < m; i++ {
			qdotRowRef(want[i*n:(i+1)*n], a[i*k:(i+1)*k], b, n, k)
		}
		got := make([]int32, m*n)
		qgemmNT(got, a, b, m, n, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("qgemmNT m=%d elem %d: %d != %d", m, i, got[i], want[i])
			}
		}
	}
}

// TestQgemmNTFuzzOracle is the batch-tiled driver's fuzz gate: random
// (M, N, K) shapes — including empty batches on both axes and K both at and
// off the engine's padTo16 widths — against a retained row-by-row scalar
// oracle. Engine-shaped inputs carry explicit zero-padded tails (real kk
// columns padded with zeros to padTo16(kk), exactly what im2colQ +
// quantizeWeights produce) and ±127 saturation rows, so the register tile's
// column blocking, the odd-row fallback, and every dispatch tier below it
// are all exercised on the layouts the quantized network actually feeds in.
func TestQgemmNTFuzzOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))

	// Empty batches first: m == 0 and n == 0 must be exact no-ops.
	qgemmNT(nil, nil, randInt8(rng, 4*32), 0, 4, 32)
	qgemmNT([]int32{}, randInt8(rng, 3*32), nil, 3, 0, 32)

	oracle := func(out []int32, a, b []int8, m, n, k int) {
		for i := 0; i < m; i++ {
			qdotRowRef(out[i*n:(i+1)*n], a[i*k:(i+1)*k], b, n, k)
		}
	}
	for iter := 0; iter < 250; iter++ {
		m := rng.Intn(10)  // includes the empty batch
		n := rng.Intn(12)  // includes zero output columns
		var k, kk int
		if iter%2 == 0 {
			// Engine-shaped: kk real columns zero-padded to the next
			// 16-multiple, the layout the asm fast path runs on.
			kk = 1 + rng.Intn(150)
			k = padTo16(kk)
		} else {
			// Arbitrary K, exercising the k%16 != 0 fallback path too.
			kk = rng.Intn(180)
			k = kk
		}
		a := randInt8(rng, m*k)
		b := randInt8(rng, n*k)
		for i := 0; i < m; i++ { // zero the pad tail, like im2colQ's caller
			for j := kk; j < k; j++ {
				a[i*k+j] = 0
			}
		}
		for i := 0; i < n; i++ {
			for j := kk; j < k; j++ {
				b[i*k+j] = 0
			}
		}
		if m > 0 { // ±127 extremes in the last a row (odd-row fallback when m is odd)
			for j := 0; j < kk; j++ {
				if j%2 == 0 {
					a[(m-1)*k+j] = 127
				} else {
					a[(m-1)*k+j] = -127
				}
			}
		}
		if n > 0 {
			for j := 0; j < kk; j++ {
				b[j] = 127
			}
		}
		want := make([]int32, m*n)
		got := make([]int32, m*n)
		oracle(want, a, b, m, n, k)
		qgemmNT(got, a, b, m, n, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d m=%d n=%d k=%d (kk=%d) elem %d: qgemmNT %d != oracle %d",
					iter, m, n, k, kk, i, got[i], want[i])
			}
		}
	}
}

// TestQdotTierRegistryBitIdentical walks the QdotTiers registry — the same
// enumeration nnbench uses for per-tier micro-benchmarks — and pins every
// tier against the generic reference head entry. This is the portable
// cross-tier gate: on amd64 it covers SSE2/AVX2/VNNI, on arm64 NEON, and on
// anything else it degenerates to checking the reference against itself.
func TestQdotTierRegistryBitIdentical(t *testing.T) {
	tiers := QdotTiers()
	if len(tiers) == 0 || tiers[0].Name != "generic" {
		t.Fatalf("QdotTiers() = %v, want generic reference first", tiers)
	}
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 60; iter++ {
		k := 16 * (1 + rng.Intn(12)) // asm-tier domain: k >= 16, k % 16 == 0
		n := 1 + rng.Intn(9)
		a0 := randInt8(rng, k)
		a1 := randInt8(rng, k)
		b := randInt8(rng, n*k)
		for j := 0; j < k; j++ { // saturation extremes in a1
			if j%2 == 0 {
				a1[j] = 127
			} else {
				a1[j] = -127
			}
		}
		want0, want1 := make([]int32, n), make([]int32, n)
		tiers[0].Qdot2(want0, want1, a0, a1, b, n, k)
		for _, tier := range tiers[1:] {
			got0, got1 := make([]int32, n), make([]int32, n)
			tier.Qdot2(got0, got1, a0, a1, b, n, k)
			for j := 0; j < n; j++ {
				if got0[j] != want0[j] || got1[j] != want1[j] {
					t.Fatalf("tier %s n=%d k=%d row %d: (%d, %d) != generic (%d, %d)",
						tier.Name, n, k, j, got0[j], got1[j], want0[j], want1[j])
				}
			}
		}
	}
}

func randInt8(rng *rand.Rand, n int) []int8 {
	s := make([]int8, n)
	for i := range s {
		s[i] = int8(rng.Intn(255) - 127) // [-127, 127]
	}
	return s
}
