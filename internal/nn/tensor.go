package nn

import (
	"fmt"
	"math"
)

// Tensor is a dense n-dimensional array of float64 in row-major order.
type Tensor struct {
	Shape []int
	Data  []float64
}

// NewTensor allocates a zero tensor with the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("nn: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The data is not
// copied; it must have exactly the product of the shape elements.
func FromSlice(data []float64, shape ...int) (*Tensor, error) {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		return nil, fmt.Errorf("nn: shape %v needs %d elements, got %d", shape, n, len(data))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{Shape: s, Data: data}, nil
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := NewTensor(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// Zero sets all elements to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// At3 reads element (c, y, x) of a CHW tensor.
func (t *Tensor) At3(c, y, x int) float64 {
	_, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	return t.Data[(c*h+y)*w+x]
}

// Set3 writes element (c, y, x) of a CHW tensor.
func (t *Tensor) Set3(c, y, x int, v float64) {
	_, h, w := t.Shape[0], t.Shape[1], t.Shape[2]
	t.Data[(c*h+y)*w+x] = v
}

// SameShape reports whether two tensors share identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// MaxIndex returns the index of the largest element (argmax).
func (t *Tensor) MaxIndex() int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range t.Data {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
