package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// The wire format realizes the paper's model-download mechanism: the cloud
// serializes a model's parameters and ships them to an edge. Weights are
// stored as float32 (the precision models are actually distributed at), so
// Network.SizeBytes — the paper's W_n — matches the serialized payload up to
// the small header.
//
// Layout (little endian):
//
//	magic  uint32  'C','E','N','N'
//	count  uint32  number of parameter tensors
//	repeat count times:
//	  len  uint32  number of float32 values
//	  data len * float32
const (
	wireMagic   = 0x4345_4e4e // "CENN"
	maxWireLen  = 1 << 28     // 256M parameters; guards corrupt headers
	maxWireCnt  = 1 << 16
	wireVersion = 1
)

// WriteWeights serializes all parameter tensors of the network.
func WriteWeights(w io.Writer, net *Network) error {
	bw := bufio.NewWriter(w)
	var params []*Tensor
	for _, l := range net.Layers {
		params = append(params, l.Params()...)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(wireMagic)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(wireVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Len())); err != nil {
			return err
		}
		for _, v := range p.Data {
			if err := binary.Write(bw, binary.LittleEndian, float32(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadWeights deserializes parameters into an already-constructed network
// of the identical architecture. It validates the header and every tensor
// length against the receiving network.
func ReadWeights(r io.Reader, net *Network) error {
	br := bufio.NewReader(r)
	var magic, version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("nn: read magic: %w", err)
	}
	if magic != wireMagic {
		return fmt.Errorf("nn: bad magic 0x%08x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("nn: read version: %w", err)
	}
	if version != wireVersion {
		return fmt.Errorf("nn: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: read count: %w", err)
	}
	if count > maxWireCnt {
		return fmt.Errorf("nn: implausible tensor count %d", count)
	}
	var params []*Tensor
	for _, l := range net.Layers {
		params = append(params, l.Params()...)
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: payload has %d tensors, network %q has %d", count, net.Name, len(params))
	}
	for i, p := range params {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("nn: read tensor %d length: %w", i, err)
		}
		if n > maxWireLen {
			return fmt.Errorf("nn: implausible tensor length %d", n)
		}
		if int(n) != p.Len() {
			return fmt.Errorf("nn: tensor %d has %d values, network expects %d", i, n, p.Len())
		}
		for j := 0; j < int(n); j++ {
			var v float32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return fmt.Errorf("nn: read tensor %d value %d: %w", i, j, err)
			}
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				return fmt.Errorf("nn: non-finite weight in tensor %d", i)
			}
			p.Data[j] = float64(v)
		}
	}
	return nil
}

// WireSize returns the exact serialized payload size in bytes for the
// network, which the model zoo uses as the paper's model size W_n.
func WireSize(net *Network) int64 {
	size := int64(12) // magic + version + count
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			size += 4 + 4*int64(p.Len())
		}
	}
	return size
}
