package nn

import (
	"testing"
)

func TestNewTensorAndLen(t *testing.T) {
	ts := NewTensor(2, 3, 4)
	if ts.Len() != 24 {
		t.Errorf("Len = %d, want 24", ts.Len())
	}
	for _, v := range ts.Data {
		if v != 0 {
			t.Fatal("new tensor not zeroed")
		}
	}
}

func TestNewTensorPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero dimension")
		}
	}()
	NewTensor(2, 0)
}

func TestFromSlice(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	ts, err := FromSlice(data, 2, 3)
	if err != nil {
		t.Fatalf("FromSlice: %v", err)
	}
	if ts.Shape[0] != 2 || ts.Shape[1] != 3 {
		t.Errorf("shape = %v", ts.Shape)
	}
	if _, err := FromSlice(data, 4, 2); err == nil {
		t.Error("expected shape mismatch error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewTensor(3)
	a.Data[0] = 7
	b := a.Clone()
	b.Data[0] = 9
	if a.Data[0] != 7 {
		t.Error("Clone shares storage")
	}
}

func TestAt3Set3(t *testing.T) {
	ts := NewTensor(2, 3, 4)
	ts.Set3(1, 2, 3, 42)
	if got := ts.At3(1, 2, 3); got != 42 {
		t.Errorf("At3 = %v", got)
	}
	// Row-major layout: index (1,2,3) = (1*3+2)*4+3 = 23.
	if ts.Data[23] != 42 {
		t.Error("unexpected memory layout")
	}
}

func TestSameShape(t *testing.T) {
	if !SameShape(NewTensor(2, 3), NewTensor(2, 3)) {
		t.Error("identical shapes reported different")
	}
	if SameShape(NewTensor(2, 3), NewTensor(3, 2)) {
		t.Error("different shapes reported same")
	}
	if SameShape(NewTensor(6), NewTensor(2, 3)) {
		t.Error("different ranks reported same")
	}
}

func TestMaxIndex(t *testing.T) {
	ts, err := FromSlice([]float64{1, 9, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := ts.MaxIndex(); got != 1 {
		t.Errorf("MaxIndex = %d", got)
	}
}

func TestZero(t *testing.T) {
	ts, err := FromSlice([]float64{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts.Zero()
	for _, v := range ts.Data {
		if v != 0 {
			t.Fatal("Zero did not clear")
		}
	}
}
