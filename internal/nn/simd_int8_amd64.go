//go:build amd64

package nn

// Integer SIMD kernels for the INT8 inference path (simd_int8_amd64.s).
// Every tier computes the same int32 wraparound sums as qdotRowRef; because
// two's-complement addition is associative, the lane regrouping the vector
// reductions perform cannot change the resulting bits, so SSE2 == AVX2 ==
// VNNI == generic on every input (pinned exhaustively by
// simd_int8_amd64_test.go and the qgemm fuzz gate in simd_int8_test.go).

// qdotRowSSE2 is the baseline tier: 16 int8 MACs per iteration via
// sign-extending unpacks and PMADDWD (pair sums max out at 2*127*127, far
// from the instruction's saturation point, so products are exact).
//
//go:noescape
func qdotRowSSE2(out []int32, a, b []int8, n, k int)

// qdotRowAVX2 is the wide tier: 32 int8 MACs per iteration via VPMOVSXBW
// and VPMADDWD.
//
//go:noescape
func qdotRowAVX2(out []int32, a, b []int8, n, k int)

// qgemm2SSE2 is the batch-tiled dual-row baseline tier: two a rows against
// the same b rows, the columns blocked four at a time into a 2x4 int32
// register tile so the sign-extensions are amortized over eight
// accumulators. Requires k >= 16 and k % 16 == 0 (no scalar tail) — the
// dispatcher enforces it.
//
//go:noescape
func qgemm2SSE2(out0, out1 []int32, a0, a1, b []int8, n, k int)

// qgemm2AVX2 is the batch-tiled wide tier: same 2x4 tile with ymm
// accumulators, 0.375 extends per madd instead of the single-row kernel's
// 1.5. Same k preconditions.
//
//go:noescape
func qgemm2AVX2(out0, out1 []int32, a0, a1, b []int8, n, k int)

// qgemm2VNNI is the AVX-512 VNNI tier: VPDPBUSD retires 64 int8 MACs per
// accumulator per step. Its unsigned-operand requirement is met by flipping
// b with 0x80 and subtracting the precomputed 128*sum(a) compensation at
// store time — exact in the mod-2^32 ring, so still bit-identical. Same k
// preconditions.
//
//go:noescape
func qgemm2VNNI(out0, out1 []int32, a0, a1, b []int8, n, k int)

// requantizeRowAVX512 requantizes 8 accumulators per step: dword add of the
// broadcast bias (int32 wraparound, same as Go), VPMOVSXDQ widen, VPMULDQ
// signed 32x32->64 against the broadcast multiplier, VPADDQ the rounding
// constant, VPSRAQ by shift, VPMAXSQ/VPMINSQ clamp to [lo, 127], VPMOVQB
// narrow. Every lane computes the identical int64 expression as
// requantizeRowScalar's shift>0 path, so the bits cannot differ. Requires
// len(acc) > 0 and len(acc) % 8 == 0 and 0 < shift < 62 — the dispatcher
// enforces both and routes everything else (plus the block tail) to the
// scalar loop.
//
//go:noescape
func requantizeRowAVX512(dst []int8, acc []int32, bias, m int32, shift int, lo int8)

// requantizeRow dispatches the row requantizer: full 8-lane blocks go to the
// AVX-512 kernel when the CPU+OS support it, the shift is in the kernel's
// domain (shift >= 62 only arises from degenerate scale ratios; the scalar
// path keeps the spec's exact semantics there), and the row is long enough
// to amortize the kernel's fixed cost (the per-call zmm state transition
// after VZEROUPPER — measured crossover between 128 and 256 elements on a
// Sapphire Rapids class host; the engine's conv rows span the whole batch,
// 4k+ elements, where the kernel runs ~3.5x the scalar loop). The remainder
// goes to the scalar loop.
func requantizeRow(dst []int8, acc []int32, bias, m int32, shift int, lo int8) {
	if hasAVX512 && shift > 0 && shift < 62 && len(acc) >= 192 {
		n8 := len(acc) &^ 7
		requantizeRowAVX512(dst[:n8], acc[:n8], bias, m, shift, lo)
		if n8 == len(acc) {
			return
		}
		requantizeRowScalar(dst[n8:len(acc)], acc[n8:], bias, m, shift, lo)
		return
	}
	requantizeRowScalar(dst, acc, bias, m, shift, lo)
}

// archQdotTiers lists the amd64 asm tiers this host can execute, narrowest
// first. SSE2 is unconditional (part of the amd64 baseline); AVX2 and VNNI
// gate on the CPUID/XCR0 probes. The registry exposes the raw kernels — the
// k >= 16 && k%16 == 0 precondition is the caller's to respect, exactly as
// it is the dispatcher's.
func archQdotTiers() []QdotTier {
	tiers := []QdotTier{{Name: "sse2", Qdot2: qgemm2SSE2}}
	if hasAVX2 {
		tiers = append(tiers, QdotTier{Name: "avx2", Qdot2: qgemm2AVX2})
	}
	if hasVNNI {
		tiers = append(tiers, QdotTier{Name: "vnni", Qdot2: qgemm2VNNI})
	}
	return tiers
}

// qdotRowSIMD dispatches the integer row-dot kernel. Short K dimensions stay
// on SSE2: the AVX2 kernel's 16-byte minimum vector step never engages below
// k=16 and the VZEROUPPER transition costs more than it saves.
func qdotRowSIMD(out []int32, a, b []int8, n, k int) {
	if hasAVX2 && k >= 16 {
		qdotRowAVX2(out, a, b, n, k)
		return
	}
	qdotRowSSE2(out, a, b, n, k)
}

// qdot2SIMD dispatches the batch-tiled dual-row kernel: out0[j] =
// dot(a0, b row j) and out1[j] = dot(a1, b row j). The asm tiers only
// handle vector-width multiples (the engine pads every weight and im2col
// row to padTo16, so this is the hot case); any other k falls back to two
// single-row calls. Tier order is widest-first: VNNI when the CPU+OS
// support AVX-512 and k is large enough for its 64-byte main loop to engage
// (below that the zmm zeroing/reduce overhead on mostly-empty vectors loses
// to AVX2 — conv k=16 layers measured ~1.4x slower on VNNI), then AVX2,
// then the SSE2 baseline.
func qdot2SIMD(out0, out1 []int32, a0, a1, b []int8, n, k int) {
	if k < 16 || k%16 != 0 {
		qdotRowSIMD(out0, a0, b, n, k)
		qdotRowSIMD(out1, a1, b, n, k)
		return
	}
	if hasVNNI && k >= 64 {
		qgemm2VNNI(out0, out1, a0, a1, b, n, k)
		return
	}
	if hasAVX2 {
		qgemm2AVX2(out0, out1, a0, a1, b, n, k)
		return
	}
	qgemm2SSE2(out0, out1, a0, a1, b, n, k)
}
