//go:build amd64

package nn

// Integer SIMD kernels for the INT8 inference path (simd_int8_amd64.s).
// Both tiers compute the same int32 wraparound sums as qdotRowRef; because
// two's-complement addition is associative, the lane regrouping the vector
// reductions perform cannot change the resulting bits, so SSE2 == AVX2 ==
// generic on every input (pinned exhaustively by simd_int8_amd64_test.go).

// qdotRowSSE2 is the baseline tier: 16 int8 MACs per iteration via
// sign-extending unpacks and PMADDWD (pair sums max out at 2*127*127, far
// from the instruction's saturation point, so products are exact).
//
//go:noescape
func qdotRowSSE2(out []int32, a, b []int8, n, k int)

// qdotRowAVX2 is the wide tier: 32 int8 MACs per iteration via VPMOVSXBW
// and VPMADDWD.
//
//go:noescape
func qdotRowAVX2(out []int32, a, b []int8, n, k int)

// qdot2SSE2 is the dual-row baseline tier: two a rows against the same b
// rows, sharing every b load and sign-extension. Requires k >= 16 and
// k % 16 == 0 (no scalar tail) — the dispatcher enforces it.
//
//go:noescape
func qdot2SSE2(out0, out1 []int32, a0, a1, b []int8, n, k int)

// qdot2AVX2 is the dual-row wide tier: the shared b chunk is extended once
// per 32 bytes and VPMADDWD'd against both a rows. Same k preconditions.
//
//go:noescape
func qdot2AVX2(out0, out1 []int32, a0, a1, b []int8, n, k int)

// qdotRowSIMD dispatches the integer row-dot kernel. Short K dimensions stay
// on SSE2: the AVX2 kernel's 16-byte minimum vector step never engages below
// k=16 and the VZEROUPPER transition costs more than it saves.
func qdotRowSIMD(out []int32, a, b []int8, n, k int) {
	if hasAVX2 && k >= 16 {
		qdotRowAVX2(out, a, b, n, k)
		return
	}
	qdotRowSSE2(out, a, b, n, k)
}

// qdot2SIMD dispatches the dual-row kernel: out0[j] = dot(a0, b row j) and
// out1[j] = dot(a1, b row j). The asm tiers only handle vector-width
// multiples (the engine pads every weight row to padTo16, so this is the
// hot case); any other k falls back to two single-row calls.
func qdot2SIMD(out0, out1 []int32, a0, a1, b []int8, n, k int) {
	if k < 16 || k%16 != 0 {
		qdotRowSIMD(out0, a0, b, n, k)
		qdotRowSIMD(out1, a1, b, n, k)
		return
	}
	if hasAVX2 {
		qdot2AVX2(out0, out1, a0, a1, b, n, k)
		return
	}
	qdot2SSE2(out0, out1, a0, a1, b, n, k)
}
