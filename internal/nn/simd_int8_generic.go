//go:build !amd64 && !arm64

package nn

// Generic tier of the INT8 kernels: the scalar reference loops ARE the
// semantics every vector tier (amd64 SSE2/AVX2/VNNI, arm64 NEON) reproduces
// bit for bit — int32 wraparound accumulation is associative, so lane
// regrouping cannot change the result. The float fallbacks live in
// simd_generic.go (!amd64); this file is split out because arm64 has its own
// int8 dispatch (simd_int8_arm64.go) but shares the generic float path.

// archQdotTiers is empty off amd64/arm64: the generic reference tier that
// QdotTiers always includes is the only implementation.
func archQdotTiers() []QdotTier { return nil }

// qdotRowSIMD is the generic tier of the INT8 row-dot kernel (see
// qkernels.go).
func qdotRowSIMD(out []int32, a, b []int8, n, k int) {
	qdotRowRef(out, a, b, n, k)
}

// qdot2SIMD is the generic tier of the dual-row INT8 kernel: the vector
// versions share b loads across both rows, which cannot change the
// wraparound sums, so two reference passes are bit-identical.
func qdot2SIMD(out0, out1 []int32, a0, a1, b []int8, n, k int) {
	qdotRowRef(out0, a0, b, n, k)
	qdotRowRef(out1, a1, b, n, k)
}

// requantizeRow is the generic tier of the row requantizer: the scalar loop
// in qkernels.go IS the semantics (the amd64 AVX-512 kernel replays the same
// int64 expression lane for lane).
func requantizeRow(dst []int8, acc []int32, bias, m int32, shift int, lo int8) {
	requantizeRowScalar(dst, acc, bias, m, shift, lo)
}
