//go:build amd64

package nn

import (
	"math"
	"math/rand"
	"testing"
)

// The dispatch wrappers pick one variant per length, so on any given host
// half the bodies would go untested through them. Pin every variant
// directly: SSE2 always, AVX2 when the host has it.

func TestAxpyVariantsMatchScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	variants := map[string]func(float64, []float64, []float64){"sse2": axpySSE2}
	if hasAVX2 {
		variants["avx2"] = axpyAVX2
	} else {
		t.Log("host lacks AVX2; avx2 variant untested here")
	}
	for name, fn := range variants {
		for n := 0; n <= 40; n++ {
			alpha := rng.NormFloat64()
			x := simdCases(rng, n)
			y := simdCases(rng, n)
			want := append([]float64(nil), y...)
			for i := range want {
				want[i] += alpha * x[i]
			}
			got := append([]float64(nil), y...)
			fn(alpha, x, got)
			for i := range want {
				if !sameBits(got[i], want[i]) {
					t.Fatalf("%s n=%d i=%d: got %x want %x", name, n, i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

func TestReluVariantsMatchScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	fwd := map[string]func([]float64, []float64){"sse2": reluFwdSSE2}
	bwd := map[string]func([]float64, []float64, []float64){"sse2": reluBwdSSE2}
	if hasAVX2 {
		fwd["avx2"] = reluFwdAVX2
		bwd["avx2"] = reluBwdAVX2
	}
	for name, fn := range fwd {
		for n := 0; n <= 40; n++ {
			src := simdCases(rng, n)
			got := simdCases(rng, n)
			fn(got, src)
			for i, v := range src {
				want := 0.0
				if v > 0 {
					want = v
				}
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("fwd %s n=%d i=%d src=%v: got %x want %x", name, n, i, v,
						math.Float64bits(got[i]), math.Float64bits(want))
				}
			}
		}
	}
	for name, fn := range bwd {
		for n := 0; n <= 40; n++ {
			in := simdCases(rng, n)
			grad := simdCases(rng, n)
			got := simdCases(rng, n)
			fn(got, grad, in)
			for i := range in {
				want := 0.0
				if in[i] > 0 {
					want = grad[i]
				}
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("bwd %s n=%d i=%d in=%v grad=%v: got %x want %x", name, n, i,
						in[i], grad[i], math.Float64bits(got[i]), math.Float64bits(want))
				}
			}
		}
	}
}

func TestStepVariantsMatchScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	variants := map[string]func(float64, float64, []float64, []float64){"sse2": stepSSE2}
	if hasAVX2 {
		variants["avx2"] = stepAVX2
	}
	for name, fn := range variants {
		for n := 0; n <= 40; n++ {
			lr, scale := rng.NormFloat64(), rng.NormFloat64()
			g := simdCases(rng, n)
			p := simdCases(rng, n)
			want := append([]float64(nil), p...)
			for j := range want {
				want[j] -= lr * g[j] / scale
			}
			got := append([]float64(nil), p...)
			fn(lr, scale, g, got)
			for j := range want {
				if !sameBits(got[j], want[j]) {
					t.Fatalf("%s n=%d j=%d: got %x want %x", name, n, j,
						math.Float64bits(got[j]), math.Float64bits(want[j]))
				}
			}
		}
	}
}

func TestNNDot16AVX2MatchesScalarBitForBit(t *testing.T) {
	if !hasAVX2 {
		t.Skip("host lacks AVX2")
	}
	rng := rand.New(rand.NewSource(83))
	for _, k := range []int{0, 1, 2, 3, 7, 9, 25, 72} {
		for _, n := range []int{16, 17, 24, 31} {
			a := simdCases(rng, k)
			var bt []float64
			if k > 0 {
				bt = simdCases(rng, (k-1)*n+16)
			}
			init := simdCases(rng, 16)
			got := simdCases(rng, 16)
			nnDot16AVX2(got, init, a, bt, n)
			for l := 0; l < 16; l++ {
				s := init[l]
				for c := 0; c < k; c++ {
					s += a[c] * bt[c*n+l]
				}
				if !sameBits(got[l], s) {
					t.Fatalf("k=%d n=%d l=%d: got %x want %x", k, n, l,
						math.Float64bits(got[l]), math.Float64bits(s))
				}
			}
		}
	}
}

func TestNNDot8SSE2MatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for _, k := range []int{0, 1, 2, 3, 7, 9, 25, 72} {
		for _, n := range []int{8, 9, 16, 23} {
			a := simdCases(rng, k)
			var bt []float64
			if k > 0 {
				bt = simdCases(rng, (k-1)*n+8)
			}
			init := simdCases(rng, 8)
			got := simdCases(rng, 8)
			nnDot8SSE2(got, init, a, bt, n)
			for l := 0; l < 8; l++ {
				s := init[l]
				for c := 0; c < k; c++ {
					s += a[c] * bt[c*n+l]
				}
				if !sameBits(got[l], s) {
					t.Fatalf("k=%d n=%d l=%d: got %x want %x", k, n, l,
						math.Float64bits(got[l]), math.Float64bits(s))
				}
			}
		}
	}
}

func TestPool2x2SSE2MatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	for n := 0; n <= 33; n++ {
		row0 := simdCases(rng, 2*n)
		row1 := simdCases(rng, 2*n)
		got := simdCases(rng, n)
		pool2x2SSE2(got, row0, row1)
		for x := 0; x < n; x++ {
			best := row0[2*x]
			for _, c := range []float64{row0[2*x+1], row1[2*x], row1[2*x+1]} {
				if c > best {
					best = c
				}
			}
			if !sameBits(got[x], best) {
				t.Fatalf("n=%d x=%d: got %x want %x", n, x,
					math.Float64bits(got[x]), math.Float64bits(best))
			}
		}
	}
}

func TestTranspose2x2SSE2CoversEvenRegionBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	for _, rows := range []int{0, 1, 2, 3, 5, 8, 13} {
		for _, cols := range []int{0, 1, 2, 3, 4, 7, 16} {
			src := simdCases(rng, rows*cols)
			const sentinel = -12345.5
			got := make([]float64, rows*cols)
			for i := range got {
				got[i] = sentinel
			}
			transpose2x2SSE2(got, src, rows, cols)
			r2, c2 := rows&^1, cols&^1
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					want := sentinel // odd-tail elements are the wrapper's job
					if r < r2 && c < c2 {
						want = src[r*cols+c]
					}
					if !sameBits(got[c*rows+r], want) {
						t.Fatalf("rows=%d cols=%d r=%d c=%d: got %x want %x", rows, cols, r, c,
							math.Float64bits(got[c*rows+r]), math.Float64bits(want))
					}
				}
			}
		}
	}
}

func TestConv3x3BwdSSE2MatchesScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	const w, h, inC = 5, 4, 3
	const hw = w * h
	for trial := 0; trial < 20; trial++ {
		gv := rng.NormFloat64()
		wr := simdCases(rng, inC*9)
		cr := simdCases(rng, inC*9)
		gw := simdCases(rng, inC*9)
		gi := simdCases(rng, inC*hw)
		wantGW := append([]float64(nil), gw...)
		wantGI := append([]float64(nil), gi...)
		for ic := 0; ic < inC; ic++ {
			for j := 0; j < 9; j++ {
				wantGW[ic*9+j] += gv * cr[ic*9+j]
			}
			for r := 0; r < 3; r++ {
				for j := 0; j < 3; j++ {
					wantGI[ic*hw+r*w+j] += gv * wr[ic*9+r*3+j]
				}
			}
		}
		conv3x3BwdSSE2(gv, wr, cr, gw, gi, w, hw, inC)
		for i := range wantGW {
			if !sameBits(gw[i], wantGW[i]) {
				t.Fatalf("trial=%d gw[%d]: got %x want %x", trial, i,
					math.Float64bits(gw[i]), math.Float64bits(wantGW[i]))
			}
		}
		for i := range wantGI {
			if !sameBits(gi[i], wantGI[i]) {
				t.Fatalf("trial=%d gi[%d]: got %x want %x", trial, i,
					math.Float64bits(gi[i]), math.Float64bits(wantGI[i]))
			}
		}
	}
}
