//go:build amd64

package nn

import (
	"math"
	"math/rand"
	"testing"
)

// The dispatch wrappers pick one variant per length, so on any given host
// half the bodies would go untested through them. Pin every variant
// directly: SSE2 always, AVX2 when the host has it.

func TestAxpyVariantsMatchScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	variants := map[string]func(float64, []float64, []float64){"sse2": axpySSE2}
	if hasAVX2 {
		variants["avx2"] = axpyAVX2
	} else {
		t.Log("host lacks AVX2; avx2 variant untested here")
	}
	for name, fn := range variants {
		for n := 0; n <= 40; n++ {
			alpha := rng.NormFloat64()
			x := simdCases(rng, n)
			y := simdCases(rng, n)
			want := append([]float64(nil), y...)
			for i := range want {
				want[i] += alpha * x[i]
			}
			got := append([]float64(nil), y...)
			fn(alpha, x, got)
			for i := range want {
				if !sameBits(got[i], want[i]) {
					t.Fatalf("%s n=%d i=%d: got %x want %x", name, n, i,
						math.Float64bits(got[i]), math.Float64bits(want[i]))
				}
			}
		}
	}
}

func TestReluVariantsMatchScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	fwd := map[string]func([]float64, []float64){"sse2": reluFwdSSE2}
	bwd := map[string]func([]float64, []float64, []float64){"sse2": reluBwdSSE2}
	if hasAVX2 {
		fwd["avx2"] = reluFwdAVX2
		bwd["avx2"] = reluBwdAVX2
	}
	for name, fn := range fwd {
		for n := 0; n <= 40; n++ {
			src := simdCases(rng, n)
			got := simdCases(rng, n)
			fn(got, src)
			for i, v := range src {
				want := 0.0
				if v > 0 {
					want = v
				}
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("fwd %s n=%d i=%d src=%v: got %x want %x", name, n, i, v,
						math.Float64bits(got[i]), math.Float64bits(want))
				}
			}
		}
	}
	for name, fn := range bwd {
		for n := 0; n <= 40; n++ {
			in := simdCases(rng, n)
			grad := simdCases(rng, n)
			got := simdCases(rng, n)
			fn(got, grad, in)
			for i := range in {
				want := 0.0
				if in[i] > 0 {
					want = grad[i]
				}
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Fatalf("bwd %s n=%d i=%d in=%v grad=%v: got %x want %x", name, n, i,
						in[i], grad[i], math.Float64bits(got[i]), math.Float64bits(want))
				}
			}
		}
	}
}

func TestStepVariantsMatchScalarBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	variants := map[string]func(float64, float64, []float64, []float64){"sse2": stepSSE2}
	if hasAVX2 {
		variants["avx2"] = stepAVX2
	}
	for name, fn := range variants {
		for n := 0; n <= 40; n++ {
			lr, scale := rng.NormFloat64(), rng.NormFloat64()
			g := simdCases(rng, n)
			p := simdCases(rng, n)
			want := append([]float64(nil), p...)
			for j := range want {
				want[j] -= lr * g[j] / scale
			}
			got := append([]float64(nil), p...)
			fn(lr, scale, g, got)
			for j := range want {
				if !sameBits(got[j], want[j]) {
					t.Fatalf("%s n=%d j=%d: got %x want %x", name, n, j,
						math.Float64bits(got[j]), math.Float64bits(want[j]))
				}
			}
		}
	}
}

func TestNNDot16AVX2MatchesScalarBitForBit(t *testing.T) {
	if !hasAVX2 {
		t.Skip("host lacks AVX2")
	}
	rng := rand.New(rand.NewSource(83))
	for _, k := range []int{0, 1, 2, 3, 7, 9, 25, 72} {
		for _, n := range []int{16, 17, 24, 31} {
			a := simdCases(rng, k)
			var bt []float64
			if k > 0 {
				bt = simdCases(rng, (k-1)*n+16)
			}
			init := simdCases(rng, 16)
			got := simdCases(rng, 16)
			nnDot16AVX2(got, init, a, bt, n)
			for l := 0; l < 16; l++ {
				s := init[l]
				for c := 0; c < k; c++ {
					s += a[c] * bt[c*n+l]
				}
				if !sameBits(got[l], s) {
					t.Fatalf("k=%d n=%d l=%d: got %x want %x", k, n, l,
						math.Float64bits(got[l]), math.Float64bits(s))
				}
			}
		}
	}
}
