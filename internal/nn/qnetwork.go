package nn

import (
	"fmt"
	"math"
)

// QuantizedNetwork is the true-INT8 execution engine (DESIGN.md §9 "INT8
// fast path"): a compiled form of a fake-quant network that stores weights
// as int8 rows plus one float64 scale per tensor (aliasing the zoo's
// QuantizedWeights buffers, or a zero-padded int8 copy when a row length is
// not a vector-width multiple — never a float64 clone), runs conv/dense
// layers as
// integer im2col + row-dot kernels with int32 accumulation, and carries
// activations between layers as int8 at statically calibrated per-boundary
// scales. ReLU and 2x2 max-pool are exact in the quantized domain
// (max/clamp commute with a positive scale), so the only rounding beyond
// weight/input quantization is the pinned fixed-point requantization after
// each conv/dense. The final Dense head dequantizes its int32 accumulators
// straight to float64 logits, so downstream softmax/loss code is unchanged.
//
// It is an opt-in execution mode: the fake-quant float path remains the
// committed-results oracle, and this engine is reached only through the
// -int8 flags (models.TrainedZooConfig.Int8, deploy.NNRuntime.Int8).
type QuantizedNetwork struct {
	Name string

	inShape []int
	inScale float64 // input activation scale
	ops     []qOp
	outDim  int

	// Per-sample scratch high-water marks, fixed at build time so every
	// ForwardBatch performs the same four arena requests (zero steady-state
	// allocations, same discipline as the float path). Each is multiplied by
	// the batch size at request time: the engine lowers a whole chunk into
	// one im2col buffer / one accumulator block so each conv or dense stage
	// is a single batch GEMM rather than per-sample row-dots.
	maxAct int // widest activation boundary
	maxCol int // widest im2col patch matrix / padded activation row
	maxAcc int // widest accumulator row block
}

type qOpKind uint8

const (
	qConv qOpKind = iota
	qDense
	qHead
	qRelu
	qPool
)

// qOp is one compiled stage. Conv and Dense requantize back to int8 at the
// next boundary's scale; the head produces float64 logits.
type qOp struct {
	kind qOpKind

	// wq holds the int8 weight rows at stride kPad = padTo16(row length):
	// when the natural row length is already a vector-width multiple it
	// aliases the QuantizedWeights storage directly; otherwise it is a
	// zero-padded copy (still int8 — at most 15 extra bytes per row), so
	// the SIMD dots never run a scalar tail. The zero pad multiplies
	// whatever garbage sits in the matching patch/activation pad, and
	// adding zeros to an int32 wraparound sum is exact.
	wq    []int8
	kPad  int
	biasQ []int32 // bias in accumulator units: round(b/(sx*sw)), |.| <= 2^30
	m     int32   // fixed-point requant multiplier (quantMultiplier)
	shift int
	relu  bool // fused following ReLU: requantize clamps to [0, 127]

	// zeroScale marks an all-zero weight tensor (sw == 0): the accumulator
	// units are undefined, so the op's output is the bias alone, quantized
	// at the output scale.
	zeroScale bool
	biasAtSy  []int8

	// head
	sxw   float64 // sx*sw: int32 accumulator -> float64 logits
	biasF []float64

	// geometry
	inC, outC, k   int // conv; pool reuses inC/h/w
	h, w, oh, ow   int
	inDim, outDim  int // dense/head
	inLen, outLen  int // per-sample activation lengths
}

// actScale maps a calibrated activation maxAbs to a quantization scale,
// falling back to 1 for an all-zero boundary so activation scales are
// always positive (the wire format's WriteQuantized rule).
func actScale(maxAbs float64) float64 {
	s := maxAbs / 127
	if s == 0 {
		return 1
	}
	return s
}

// maxAbsOf ignores NaNs (comparisons with NaN are false); quantizeActs
// handles them explicitly at inference time.
func maxAbsOf(data []float64) float64 {
	m := 0.0
	for _, v := range data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

const biasQLimit = 1 << 30 // headroom: |dot| <= kk*127*127 << 2^31 - 2^30

func clampBiasQ(v float64) int32 {
	q := math.Round(v)
	if q > biasQLimit {
		q = biasQLimit
	}
	if q < -biasQLimit {
		q = -biasQLimit
	}
	return int32(q)
}

func clampRoundInt8(v float64) int8 {
	q := math.Round(v)
	switch {
	case math.IsNaN(q):
		return 0
	case q > 127:
		return 127
	case q < -127:
		return -127
	}
	return int8(q)
}

// NewQuantizedNetwork compiles net — a fake-quant network whose parameters
// are the dequantized values of qw (QuantizedWeights.ApplyTo) — into the
// INT8 engine. calib is a [B, inShape...] batch of representative samples;
// the float network runs over it once, layer by layer, to calibrate one
// static activation scale per layer boundary (maxAbs/127, zero->one
// fallback). Weight scales come from qw; biases are read from net's float
// tensors in accumulator units. Supported layers are the inference set
// (Conv2D, Dense, ReLU, MaxPool2D, Flatten, inference-identity Dropout)
// and the final layer must be Dense — every zoo architecture qualifies.
func NewQuantizedNetwork(net *Network, qw *QuantizedWeights, calib *Tensor) (*QuantizedNetwork, error) {
	inShape := net.InShape()
	if len(calib.Shape) != len(inShape)+1 || calib.Shape[0] < 1 {
		return nil, fmt.Errorf("nn: calibration batch shape %v does not cover input shape %v", calib.Shape, inShape)
	}
	for i, d := range inShape {
		if calib.Shape[i+1] != d {
			return nil, fmt.Errorf("nn: calibration batch shape %v does not cover input shape %v", calib.Shape, inShape)
		}
	}
	if len(net.Layers) == 0 {
		return nil, fmt.Errorf("nn: network %q has no layers", net.Name)
	}
	if _, ok := net.Layers[len(net.Layers)-1].(*Dense); !ok {
		return nil, fmt.Errorf("nn: network %q does not end in a Dense head; the INT8 engine needs float logits", net.Name)
	}

	// Calibrate: one float pass over the batch, recording each boundary's
	// maxAbs. actMax[i] is the input to layer i; actMax[len(Layers)] the
	// logits (unused: the head dequantizes, it does not requantize).
	arena := NewArena()
	cur := calib
	actMax := make([]float64, 0, len(net.Layers)+1)
	actMax = append(actMax, maxAbsOf(cur.Data))
	for _, l := range net.Layers {
		cur = l.ForwardBatch(cur, arena)
		actMax = append(actMax, maxAbsOf(cur.Data))
	}

	q := &QuantizedNetwork{Name: net.Name, inShape: inShape}
	q.inScale = actScale(actMax[0])
	s := q.inScale // running activation scale
	shape := inShape
	inLen := 1
	for _, d := range shape {
		inLen *= d
	}
	q.maxAct = inLen
	ti := 0
	for li, l := range net.Layers {
		outShape := l.OutShape(shape)
		outLen := 1
		for _, d := range outShape {
			outLen *= d
		}
		isHead := li == len(net.Layers)-1
		op := qOp{inLen: inLen, outLen: outLen}
		switch t := l.(type) {
		case *Conv2D:
			if ti+2 > len(qw.Tensors) {
				return nil, fmt.Errorf("nn: quantized weights exhausted at layer %d of %q", li, net.Name)
			}
			wt := qw.Tensors[ti]
			bias := l.Params()[1]
			ti += 2
			op.kind = qConv
			op.inC, op.outC, op.k = t.InC, t.OutC, t.K
			op.h, op.w = shape[1], shape[2]
			op.oh, op.ow = outShape[1], outShape[2]
			sy := actScale(actMax[li+1])
			kk := op.inC * op.k * op.k
			compileRequantOp(&op, wt, bias.Data, s, sy, op.outC, kk)
			np := op.oh * op.ow
			if c := np * op.kPad; c > q.maxCol {
				q.maxCol = c
			}
			if a := op.outC * np; a > q.maxAcc {
				q.maxAcc = a
			}
			s = sy
		case *Dense:
			if ti+2 > len(qw.Tensors) {
				return nil, fmt.Errorf("nn: quantized weights exhausted at layer %d of %q", li, net.Name)
			}
			wt := qw.Tensors[ti]
			bias := l.Params()[1]
			ti += 2
			op.inDim, op.outDim = t.InDim, t.OutDim
			if op.outDim > q.maxAcc {
				q.maxAcc = op.outDim
			}
			if isHead {
				op.kind = qHead
				op.wq, op.kPad = padWeightRows(wt.Data, t.OutDim, t.InDim)
				op.sxw = s * wt.Scale
				op.biasF = bias.Data
				q.outDim = op.outDim
			} else {
				op.kind = qDense
				sy := actScale(actMax[li+1])
				compileRequantOp(&op, wt, bias.Data, s, sy, t.OutDim, t.InDim)
				s = sy
			}
			if op.kPad != op.inDim && op.kPad > q.maxCol {
				q.maxCol = op.kPad // padded activation scratch (runDense/runHead)
			}
		case *ReLU:
			// Peephole: a ReLU directly after a requantizing conv/dense fuses
			// into that op's store — requantizeRow clamps to [0, 127] instead
			// of [-127, 127], which is exactly relu ∘ clamp, so the standalone
			// pass (and its full activation read+write) disappears. Every zoo
			// architecture places its ReLUs this way; the standalone qRelu op
			// remains for any network that does not.
			if n := len(q.ops); n > 0 {
				if prev := &q.ops[n-1]; prev.kind == qConv || prev.kind == qDense {
					if prev.zeroScale {
						for o, b := range prev.biasAtSy {
							prev.biasAtSy[o] = max(b, 0)
						}
					} else {
						prev.relu = true
					}
					shape = outShape
					continue
				}
			}
			op.kind = qRelu // exact: max(q, 0) at an unchanged positive scale
		case *MaxPool2D:
			op.kind = qPool // exact: int8 comparisons replay the float ones
			op.inC, op.h, op.w = shape[0], shape[1], shape[2]
			op.oh, op.ow = outShape[1], outShape[2]
		case *Flatten:
			shape = outShape // activations are already flat CHW rows
			continue
		case *Dropout:
			shape = outShape // identity at inference
			continue
		default:
			return nil, fmt.Errorf("nn: layer %d of %q (%T) has no INT8 lowering", li, net.Name, l)
		}
		if outLen > q.maxAct {
			q.maxAct = outLen
		}
		q.ops = append(q.ops, op)
		shape = outShape
		inLen = outLen
	}
	if ti != len(qw.Tensors) {
		return nil, fmt.Errorf("nn: network %q consumed %d of %d quantized tensors", net.Name, ti, len(qw.Tensors))
	}
	return q, nil
}

// padWeightRows lays rows of rowLen int8s out at stride padTo16(rowLen),
// zero-filling the pad. When rowLen is already a vector-width multiple the
// QuantizedWeights storage is aliased as is — no copy.
func padWeightRows(data []int8, rows, rowLen int) ([]int8, int) {
	lp := padTo16(rowLen)
	if lp == rowLen {
		return data, lp
	}
	out := make([]int8, rows*lp)
	for r := 0; r < rows; r++ {
		copy(out[r*lp:r*lp+rowLen], data[r*rowLen:(r+1)*rowLen])
	}
	return out, lp
}

// compileRequantOp fills the requantizing conv/dense fields: the padded int8
// weight rows, the fixed-point multiplier for (sx*sw)/sy, and the bias in
// int32 accumulator units — or, for an all-zero weight tensor, the bias
// quantized directly at the output scale.
func compileRequantOp(op *qOp, wt QuantizedTensor, bias []float64, sx, sy float64, rows, rowLen int) {
	op.wq, op.kPad = padWeightRows(wt.Data, rows, rowLen)
	if wt.Scale == 0 {
		op.zeroScale = true
		op.biasAtSy = make([]int8, len(bias))
		for o, b := range bias {
			op.biasAtSy[o] = clampRoundInt8(b / sy)
		}
		return
	}
	sxw := sx * wt.Scale
	op.m, op.shift = quantMultiplier(sxw / sy)
	op.biasQ = make([]int32, len(bias))
	for o, b := range bias {
		op.biasQ[o] = clampBiasQ(b / sxw)
	}
}

// InShape returns the expected input shape (excluding the batch dimension).
func (q *QuantizedNetwork) InShape() []int {
	s := make([]int, len(q.inShape))
	copy(s, q.inShape)
	return s
}

// OutDim returns the number of classes.
func (q *QuantizedNetwork) OutDim() int { return q.outDim }

// ParamBytes returns the resident int8 parameter bytes (shared with the
// QuantizedWeights the network was compiled from).
func (q *QuantizedNetwork) ParamBytes() int64 {
	n := int64(0)
	for _, op := range q.ops {
		n += int64(len(op.wq))
	}
	return n
}

// ForwardBatch runs the INT8 engine on a [B, inShape...] float batch and
// returns [B, classes] float64 logits. All scratch comes from a (caller
// Resets between batches, same contract as Network.ForwardBatch); the call
// always issues the same four scratch requests plus the output tensor, so a
// warmed arena serves it without allocating.
//
//lint:hotroot quantized inference inner loop; all scratch comes from the arena
func (q *QuantizedNetwork) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	batch := in.Shape[0]
	inLen := 1
	for _, d := range q.inShape {
		inLen *= d
	}
	if in.Len() != batch*inLen {
		//lint:allow panicpolicy inference hot path: a shape mismatch is a programmer error, mirroring Network.ForwardBatch's layer guards
		panic(fmt.Sprintf("nn: QuantizedNetwork %q expected %d values per sample, got shape %v", q.Name, inLen, in.Shape))
	}
	out := a.Tensor(batch, q.outDim)
	cur := a.Int8s(batch * q.maxAct)
	nxt := a.Int8s(batch * q.maxAct)
	col := a.Int8s(batch * q.maxCol)
	acc := a.Int32s(batch * q.maxAcc)

	quantizeActs(cur[:batch*inLen], in.Data, q.inScale)
	for i := range q.ops {
		op := &q.ops[i]
		switch op.kind {
		case qConv:
			q.runConv(op, batch, cur, nxt, col, acc)
		case qDense:
			q.runDense(op, batch, cur, nxt, col, acc)
		case qHead:
			q.runHead(op, batch, cur, col, acc, out.Data)
			return out
		case qRelu:
			n := batch * op.inLen
			for j, v := range cur[:n] {
				// Branchless max(v, 0): v>>7 is the sign mask, so negative
				// values clear to zero with no data-dependent branch.
				nxt[j] = v &^ (v >> 7)
			}
		case qPool:
			q.runPool(op, batch, cur, nxt)
		}
		cur, nxt = nxt, cur
	}
	return out // unreachable: compilation guarantees a qHead terminator
}

// runConv lowers the WHOLE chunk at once: every sample's patch rows go into
// one shared im2col buffer (batch*np rows at the padded stride) and a single
// qgemmNT call computes all outC x (batch*np) accumulators, so the weight
// rows stream through the batch-tiled dual-row kernels once per chunk
// instead of once per sample. int32 wraparound addition is associative, so
// the batch-tiled accumulation is bit-identical to the per-sample row-dots
// it replaced. The accumulator block is laid out [oc][s*np+j] and the
// requantize pass scatters it back to the per-sample [s][oc][j] activation
// layout.
func (q *QuantizedNetwork) runConv(op *qOp, batch int, cur, nxt, col []int8, acc []int32) {
	np := op.oh * op.ow
	if op.zeroScale {
		for s := 0; s < batch; s++ {
			dst := nxt[s*op.outLen : (s+1)*op.outLen]
			for oc := 0; oc < op.outC; oc++ {
				b := op.biasAtSy[oc]
				row := dst[oc*np : (oc+1)*np]
				for j := range row {
					row[j] = b
				}
			}
		}
		return
	}
	// Patch rows at the padded stride; the bytes between the patch and the
	// stride are whatever the arena held, annihilated by the zero weight pad.
	spl := np * op.kPad // per-sample patch block
	for s := 0; s < batch; s++ {
		im2colQ(col[s*spl:(s+1)*spl], cur[s*op.inLen:(s+1)*op.inLen], op.inC, op.h, op.w, op.k, op.oh, op.ow, op.kPad)
	}
	cols := batch * np
	qgemmNT(acc[:op.outC*cols], op.wq, col[:batch*spl], op.outC, cols, op.kPad)
	lo := int8(-127)
	if op.relu {
		lo = 0
	}
	// The accumulator row for one output channel is contiguous across the
	// whole batch and shares one bias, so it requantizes as a single long row
	// — long enough for the AVX-512 tier to engage — into the col scratch
	// (dead once the GEMM has consumed it), and a per-sample copy scatters
	// the bytes back to the [s][oc][j] activation layout.
	rq := col[:cols]
	for oc := 0; oc < op.outC; oc++ {
		requantizeRow(rq, acc[oc*cols:(oc+1)*cols], op.biasQ[oc], op.m, op.shift, lo)
		for s := 0; s < batch; s++ {
			copy(nxt[s*op.outLen+oc*np:s*op.outLen+(oc+1)*np], rq[s*np:(s+1)*np])
		}
	}
}

// denseInputBatch returns the batch's activation rows at the kPad stride the
// GEMM consumes as its a operand: the cur block itself when inDim is already
// the padded stride (the rows are contiguous), else a strided copy into the
// col scratch (the pad bytes are garbage — the weight pad is zero, so the
// extra products vanish).
func denseInputBatch(op *qOp, batch int, cur, col []int8) []int8 {
	if op.kPad == op.inDim {
		return cur[:batch*op.inDim]
	}
	for s := 0; s < batch; s++ {
		copy(col[s*op.kPad:s*op.kPad+op.inDim], cur[s*op.inLen:(s+1)*op.inLen])
	}
	return col[:batch*op.kPad]
}

// Dense layers run ONE qgemmNT per chunk with the batch's activation rows as
// a (m = batch) and the weight rows as b (n = outDim): sample pairs stream
// through the batch-tiled dual-row kernels, so the weight matrix is
// sign-extended once per sample pair and per column quad instead of once per
// sample. The accumulator block lands per-sample contiguous (acc[s*outDim+o])
// so the requantize pass reads and writes sequentially.
func (q *QuantizedNetwork) runDense(op *qOp, batch int, cur, nxt, col []int8, acc []int32) {
	if op.zeroScale {
		for s := 0; s < batch; s++ {
			copy(nxt[s*op.outLen:(s+1)*op.outLen], op.biasAtSy)
		}
		return
	}
	qgemmNT(acc[:batch*op.outDim], denseInputBatch(op, batch, cur, col), op.wq, batch, op.outDim, op.kPad)
	lo := int8(-127)
	if op.relu {
		lo = 0
	}
	for s := 0; s < batch; s++ {
		dst := nxt[s*op.outLen : (s+1)*op.outLen]
		arow := acc[s*op.outDim : (s+1)*op.outDim]
		requantizeRowPerCol(dst, arow, op.biasQ, op.m, op.shift, lo)
	}
}

// runHead dequantizes the final Dense's int32 accumulators straight to
// float64 logits: logits[o] = acc[o]*sx*sw + b[o]. Shared scalar Go on
// every tier, so the logits are cross-tier identical whenever the
// accumulators are. Batched exactly like runDense (one GEMM per chunk). An
// all-zero head weight tensor needs no special case: wq is all zeros, so
// acc == 0 and sxw == 0 leave exactly the bias.
func (q *QuantizedNetwork) runHead(op *qOp, batch int, cur, col []int8, acc []int32, out []float64) {
	qgemmNT(acc[:batch*op.outDim], denseInputBatch(op, batch, cur, col), op.wq, batch, op.outDim, op.kPad)
	for s := 0; s < batch; s++ {
		orow := out[s*op.outDim : (s+1)*op.outDim]
		arow := acc[s*op.outDim : (s+1)*op.outDim]
		for o, v := range arow {
			orow[o] = float64(v)*op.sxw + op.biasF[o]
		}
	}
}

// runPool is the exact int8 2x2/stride-2 max pool. Max is associative and
// total on int8, so any comparison order reproduces the float layer's
// result; the windows are promoted to int and reduced with the builtin max
// so the compiler emits conditional moves instead of data-dependent
// branches (random activations mispredict ~50% and dominated the profile).
func (q *QuantizedNetwork) runPool(op *qOp, batch int, cur, nxt []int8) {
	ch, h, w, oh, ow := op.inC, op.h, op.w, op.oh, op.ow
	for s := 0; s < batch; s++ {
		src := cur[s*op.inLen : (s+1)*op.inLen]
		dst := nxt[s*op.outLen : (s+1)*op.outLen]
		for c := 0; c < ch; c++ {
			for y := 0; y < oh; y++ {
				row0 := src[(c*h+2*y)*w : (c*h+2*y)*w+w]
				row1 := src[(c*h+2*y+1)*w : (c*h+2*y+1)*w+w]
				drow := dst[(c*oh+y)*ow : (c*oh+y)*ow+ow]
				for x := range drow {
					m := max(int(row0[2*x]), int(row0[2*x+1]), int(row1[2*x]), int(row1[2*x+1]))
					drow[x] = int8(m)
				}
			}
		}
	}
}
