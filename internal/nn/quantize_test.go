package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestQuantizedRoundTrip(t *testing.T) {
	src := buildTestNet(31)
	var buf bytes.Buffer
	if err := WriteQuantized(&buf, src); err != nil {
		t.Fatalf("WriteQuantized: %v", err)
	}
	dst := buildTestNet(77)
	if err := ReadQuantized(&buf, dst); err != nil {
		t.Fatalf("ReadQuantized: %v", err)
	}
	// Dequantized weights differ from the originals by at most one
	// quantization step per tensor.
	srcParams, dstParams := allParams(src), allParams(dst)
	for i := range srcParams {
		maxAbs := 0.0
		for _, v := range srcParams[i].Data {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		step := maxAbs / 127
		for j := range srcParams[i].Data {
			if d := math.Abs(srcParams[i].Data[j] - dstParams[i].Data[j]); d > step/2+1e-9 {
				t.Fatalf("tensor %d value %d off by %v (step %v)", i, j, d, step)
			}
		}
	}
}

func TestQuantizedSizeIsQuarter(t *testing.T) {
	net := buildTestNet(32)
	var fbuf, qbuf bytes.Buffer
	if err := WriteWeights(&fbuf, net); err != nil {
		t.Fatal(err)
	}
	if err := WriteQuantized(&qbuf, net); err != nil {
		t.Fatal(err)
	}
	if int64(qbuf.Len()) != QuantizedWireSize(net) {
		t.Errorf("payload %d != QuantizedWireSize %d", qbuf.Len(), QuantizedWireSize(net))
	}
	ratio := float64(qbuf.Len()) / float64(fbuf.Len())
	if ratio > 0.30 {
		t.Errorf("quantized/float32 size ratio = %v, want ~0.25", ratio)
	}
}

func TestQuantizeInPlacePreservesBehavior(t *testing.T) {
	// On a trained network, int8 quantization must change most predictions
	// little: compare argmax agreement between the float and quantized nets.
	rng := rand.New(rand.NewSource(33))
	net := NewNetwork("q", []int{2},
		NewDense(2, 16, rng), NewReLU(), NewDense(16, 2, rng))
	samples := separableData(rng, 100)
	if _, err := Train(net, samples, TrainConfig{Epochs: 30, BatchSize: 8, LR: 0.3}, rng); err != nil {
		t.Fatal(err)
	}
	accBefore, _ := Evaluate(net, samples)
	QuantizeInPlace(net)
	accAfter, _ := Evaluate(net, samples)
	if accAfter < accBefore-0.05 {
		t.Errorf("quantization dropped accuracy %v -> %v", accBefore, accAfter)
	}
}

func TestQuantizeInPlaceZeroNetworkSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	net := NewNetwork("z", []int{2}, NewDense(2, 2, rng))
	for _, p := range allParams(net) {
		p.Zero()
	}
	QuantizeInPlace(net) // must not divide by zero
	for _, p := range allParams(net) {
		for _, v := range p.Data {
			if v != 0 {
				t.Fatal("zero weights changed")
			}
		}
	}
}

func TestReadQuantizedRejectsCorruptInput(t *testing.T) {
	net := buildTestNet(35)
	var good bytes.Buffer
	if err := WriteQuantized(&good, net); err != nil {
		t.Fatal(err)
	}
	payload := good.Bytes()

	// Float32 checkpoint is rejected by the quantized reader and vice
	// versa (magic mismatch).
	var fbuf bytes.Buffer
	if err := WriteWeights(&fbuf, net); err != nil {
		t.Fatal(err)
	}
	if err := ReadQuantized(bytes.NewReader(fbuf.Bytes()), buildTestNet(36)); err == nil {
		t.Error("expected magic mismatch for float checkpoint")
	}
	if err := ReadWeights(bytes.NewReader(payload), buildTestNet(36)); err == nil {
		t.Error("expected magic mismatch for quantized checkpoint")
	}
	// Truncation.
	if err := ReadQuantized(bytes.NewReader(payload[:len(payload)/3]), buildTestNet(37)); err == nil {
		t.Error("expected error for truncated payload")
	}
	// Architecture mismatch.
	rng := rand.New(rand.NewSource(38))
	other := BuildMLP("mlp", []int{1, 12, 12}, 8, 4, 10, rng)
	if err := ReadQuantized(bytes.NewReader(payload), other); err == nil {
		t.Error("expected error for mismatched architecture")
	}
}
