package nn

import (
	"fmt"
	"math"
)

// Batched inference driver and per-row loss helpers. The contract for the
// whole file is bit-for-bit agreement with the one-sample-at-a-time path:
// every helper replays the exact floating-point operation sequence of its
// per-sample counterpart (Softmax, SquaredLoss, Tensor.MaxIndex), so
// evaluating a batch produces the same bits as a per-sample loop and every
// result file stays byte-identical (batch_equiv_test.go pins this).

// ForwardBatch runs all layers on a batch of samples laid out as
// [B, sampleShape...] and returns the [B, classes] logits. All scratch is
// drawn from a, which the caller owns and must Reset between batches
// (ForwardBatch itself does not Reset: callers build the input batch from
// the same arena). The batched path is inference-only — no layer records
// backward state.
func (n *Network) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	out := in
	for _, l := range n.Layers {
		out = l.ForwardBatch(out, a)
	}
	return out
}

// ArgmaxRow returns the index of the largest element of one logits row,
// replicating Tensor.MaxIndex (first maximum wins via strict >).
func ArgmaxRow(row []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range row {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// SoftmaxRowInto writes the softmax of one logits row into dst, replaying
// Softmax's operation order exactly (max-subtraction, exponentials summed
// in index order, then one divide per element). dst must have the row's
// length; aliasing dst with row is allowed.
func SoftmaxRowInto(dst, row []float64) {
	if len(dst) != len(row) {
		//lint:allow panicpolicy inference hot path: a length mismatch is a programmer error and mirrors the Forward shape guards
		panic(fmt.Sprintf("nn: softmax dst length %d does not match row length %d", len(dst), len(row)))
	}
	maxV := math.Inf(-1)
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range row {
		e := math.Exp(v - maxV)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// SquaredLossRow returns the value of SquaredLoss for one logits row using
// scratch for the softmax probabilities (len(scratch) >= len(row)); it
// replays the per-sample summation order term for term but skips the
// gradient, which the inference path never consumes.
func SquaredLossRow(row []float64, label int, scratch []float64) float64 {
	p := scratch[:len(row)]
	SoftmaxRowInto(p, row)
	loss := 0.0
	for k, pk := range p {
		y := 0.0
		if k == label {
			y = 1
		}
		d := pk - y
		loss += d * d
	}
	return loss
}
